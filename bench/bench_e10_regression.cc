// E10 — downstream payoff: sketched least-squares residual quality vs m for
// each family, on incoherent and coherent (high-leverage) designs. This is
// the application-level rendering of the m*(d) landscape from E8.
#include <cstdio>

#include "bench_util.h"
#include "apps/regression.h"
#include "core/flags.h"
#include "core/random.h"
#include "core/stats.h"
#include "core/table.h"
#include "sketch/registry.h"
#include "workload/generators.h"

int main(int argc, char** argv) {
  sose::FlagParser flags(argc, argv);
  sose::bench::ApplyKernelsFlag(flags);
  sose::Stopwatch watch;
  const int64_t n = flags.GetInt("n", 4096);
  const int64_t d = flags.GetInt("d", 10);
  const int64_t repeats = flags.GetInt("repeats", 12);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 17));

  sose::bench::PrintHeader(
      "E10: sketch-and-solve regression quality vs m",
      "an (eps, delta)-OSE for span([A b]) makes the sketched solution's "
      "residual a (1+eps)/(1-eps) approximation; families reach a given "
      "quality at very different m",
      "ratio -> 1 as m grows; countsketch needs larger m than osnap than "
      "gaussian at equal quality, and coherent designs do not break any of "
      "them (obliviousness)");

  for (sose::DesignKind kind :
       {sose::DesignKind::kIncoherent, sose::DesignKind::kCoherent}) {
    std::printf("--- design: %s ---\n",
                kind == sose::DesignKind::kIncoherent ? "incoherent gaussian"
                                                      : "coherent (spiky)");
    sose::AsciiTable table(
        {"sketch", "m", "mean residual ratio", "p95 ratio", "failures>2x"});
    for (const std::string family : {"countsketch", "osnap", "gaussian"}) {
      for (int64_t m : {2 * d, 8 * d, 32 * d, 128 * d}) {
        sose::RunningStats ratios;
        std::vector<double> all_ratios;
        int bad = 0;
        for (int64_t r = 0; r < repeats; ++r) {
          sose::Rng rng(sose::DeriveSeed(seed, static_cast<uint64_t>(r)));
          auto instance = sose::MakeRegressionInstance(n, d, 1.0, kind, &rng);
          instance.status().CheckOK();
          sose::SketchConfig config;
          config.rows = m;
          config.cols = n;
          config.sparsity = 4;
          config.seed = sose::DeriveSeed(
              seed + 1, static_cast<uint64_t>(m * repeats + r));
          auto sketch = sose::CreateSketch(family, config);
          sketch.status().CheckOK();
          auto solution = sose::SketchAndSolve(
              *sketch.value(), instance.value().a, instance.value().b);
          if (!solution.ok()) {
            // Rank-deficient sketched system (possible at tiny m): count as
            // a failure.
            ++bad;
            all_ratios.push_back(10.0);
            ratios.Add(10.0);
            continue;
          }
          auto ratio = sose::ResidualRatio(
              instance.value().a, instance.value().b, solution.value().x);
          ratio.status().CheckOK();
          ratios.Add(ratio.value());
          all_ratios.push_back(ratio.value());
          if (ratio.value() > 2.0) ++bad;
        }
        table.NewRow();
        table.AddCell(family);
        table.AddInt(m);
        table.AddDouble(ratios.Mean(), 5);
        table.AddDouble(sose::Quantile(all_ratios, 0.95), 5);
        table.AddInt(bad);
      }
    }
    std::printf("%s\n", table.ToString().c_str());
  }
  sose::bench::FinishBench(flags, "e10", /*requested_threads=*/1,
                           watch.ElapsedSeconds(), repeats)
      .CheckOK();
  return 0;
}
