// E11 — Algorithm 1 statistics (Lemmas 12, 13, 16 and Corollary 17): run
// the greedy disjoint-colliding-pair process on real sketch draws and
// measure (i) how many pairs it finds, (ii) how often an emitted pair has
// the (8−κ)ε inner product that triggers Lemma 4, as m sweeps through d².
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/flags.h"
#include "core/random.h"
#include "core/stats.h"
#include "core/table.h"
#include "hardinstance/d_beta.h"
#include "lowerbound/collision.h"
#include "lowerbound/pair_finder.h"
#include "sketch/registry.h"

int main(int argc, char** argv) {
  sose::FlagParser flags(argc, argv);
  sose::bench::ApplyKernelsFlag(flags);
  sose::Stopwatch watch;
  const int64_t d = flags.GetInt("d", 64);
  const int64_t s = flags.GetInt("s", 4);
  const int64_t n = flags.GetInt("n", 1 << 14);
  const int64_t repeats = flags.GetInt("repeats", 20);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 23));
  const double epsilon = 1.0 / (9.0 * static_cast<double>(s));
  const double theta = std::sqrt(8.0 * epsilon);
  const double kappa = 3.0;
  const double inner_threshold = (8.0 - kappa) * epsilon;

  sose::bench::PrintHeader(
      "E11: Algorithm 1 on real sketches (Lemmas 12/13/16, Corollary 17)",
      "with m <= d^2 the greedy process finds colliding good-column pairs, "
      "and a Theta(eps)-or-better fraction of them have inner product >= "
      "(8-kappa) eps — together yielding a violating pair with constant "
      "probability",
      "pairs found per run grows as m decreases; Pr[run finds a large-inner-"
      "product pair] ~ min(delta'' d^2/m, 1)");

  std::printf("s = %lld, eps = 1/(9s) = %.4f, theta = sqrt(8 eps) = %.4f, "
              "threshold (8-kappa) eps = %.4f\n\n",
              static_cast<long long>(s), epsilon, theta, inner_threshold);

  auto sampler = sose::DBetaSampler::Create(n, d, 1);
  sampler.status().CheckOK();

  sose::AsciiTable table({"m", "m/d^2", "good cols (avg frac)",
                          "pairs/run (avg)", "frac pairs >= (8-k)eps",
                          "runs w/ large pair", "Delta (avg)"});
  for (double ratio : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    const int64_t m = std::max<int64_t>(
        s, static_cast<int64_t>(ratio * static_cast<double>(d * d)));
    sose::RunningStats good_fraction, pairs_per_run, delta_stats;
    int64_t total_pairs = 0;
    int64_t large_pairs = 0;
    int64_t runs_with_large = 0;
    for (int64_t r = 0; r < repeats; ++r) {
      const uint64_t run_seed =
          sose::DeriveSeed(seed, static_cast<uint64_t>(m * repeats + r));
      sose::SketchConfig config;
      config.rows = m;
      config.cols = n;
      config.sparsity = s;
      config.seed = run_seed;
      auto sketch = sose::CreateSketch("osnap", config);
      sketch.status().CheckOK();
      auto index = sose::SketchColumnIndex::Build(
          *sketch.value(), n,
          sose::HeavinessParams{.theta = theta,
                                .min_heavy_entries = std::max<int64_t>(
                                    1, static_cast<int64_t>(1.0 /
                                                            (16.0 * epsilon))),
                                .norm_tolerance = epsilon});
      index.status().CheckOK();
      good_fraction.Add(
          static_cast<double>(index.value().GoodColumns().size()) /
          static_cast<double>(n));
      sose::Rng rng(run_seed + 1);
      sose::HardInstance instance = sampler.value().Sample(&rng);
      while (instance.HasRowCollision()) {
        instance = sampler.value().Sample(&rng);
      }
      auto result =
          sose::RunAlgorithm1(index.value(), instance.rows, run_seed + 2);
      result.status().CheckOK();
      pairs_per_run.Add(static_cast<double>(result.value().num_pairs));
      bool found_large = false;
      sose::RunningStats shared;
      for (const sose::PairFinderEvent& event : result.value().events) {
        if (event.branch == sose::PairFinderBranch::kHighPhiPair ||
            event.branch == sose::PairFinderBranch::kGreedyPair) {
          ++total_pairs;
          shared.Add(static_cast<double>(event.shared_heavy_rows));
          if (std::fabs(event.inner_product) >= inner_threshold) {
            ++large_pairs;
            found_large = true;
          }
        }
      }
      if (shared.count() > 0) delta_stats.Add(shared.Mean());
      if (found_large) ++runs_with_large;
    }
    table.NewRow();
    table.AddInt(m);
    table.AddDouble(ratio, 4);
    table.AddDouble(good_fraction.Mean(), 4);
    table.AddDouble(pairs_per_run.Mean(), 4);
    table.AddDouble(total_pairs > 0 ? static_cast<double>(large_pairs) /
                                          static_cast<double>(total_pairs)
                                    : 0.0,
                    4);
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%lld/%lld",
                  static_cast<long long>(runs_with_large),
                  static_cast<long long>(repeats));
    table.AddCell(buffer);
    table.AddDouble(delta_stats.count() > 0 ? delta_stats.Mean() : 0.0, 4);
  }
  std::printf("%s\n", table.ToString().c_str());
  sose::bench::FinishBench(flags, "e11", /*requested_threads=*/1,
                           watch.ElapsedSeconds(), repeats)
      .CheckOK();
  return 0;
}
