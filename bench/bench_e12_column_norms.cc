// E12 — Lemma 6: if Π (s = 1) is an (ε, δ)-embedding for the mixture, then
// at most a ~2δ/d fraction of its nonzero entries can lie outside 1 ± ε.
// The bench measures the fraction for sketches that DO work (Count-Sketch:
// exactly 0) and for s = 1 variants with perturbed values, showing the
// failure probability rise exactly as the lemma prices it.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/flags.h"
#include "core/random.h"
#include "core/table.h"
#include "hardinstance/d_beta.h"
#include "lowerbound/heavy_entries.h"
#include "ose/failure_estimator.h"
#include "sketch/count_sketch.h"

namespace {

// Count-Sketch with a `fraction` of columns rescaled to `scale` (outside
// 1 ± ε): a knob on the Lemma 6 quantity σ.
class PerturbedCountSketch final : public sose::SketchingMatrix {
 public:
  PerturbedCountSketch(sose::CountSketch base, double fraction, double scale)
      : base_(std::move(base)), fraction_(fraction), scale_(scale) {}

  int64_t rows() const override { return base_.rows(); }
  int64_t cols() const override { return base_.cols(); }
  int64_t column_sparsity() const override { return 1; }
  std::string name() const override { return "countsketch-perturbed"; }

  std::vector<sose::ColumnEntry> Column(int64_t c) const override {
    std::vector<sose::ColumnEntry> entries = base_.Column(c);
    // Deterministic pseudo-random membership in the perturbed set.
    sose::Rng rng(sose::DeriveSeed(0x5eed, static_cast<uint64_t>(c)));
    if (rng.UniformDouble() < fraction_) {
      for (sose::ColumnEntry& entry : entries) entry.value *= scale_;
    }
    return entries;
  }

 private:
  sose::CountSketch base_;
  double fraction_;
  double scale_;
};

}  // namespace

int main(int argc, char** argv) {
  sose::FlagParser flags(argc, argv);
  sose::bench::ApplyKernelsFlag(flags);
  sose::Stopwatch watch;
  const int64_t d = flags.GetInt("d", 8);
  const double epsilon = flags.GetDouble("eps", 0.1);
  const int64_t m = flags.GetInt("m", 4096);
  const int64_t trials = flags.GetInt("trials", 400);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 29));
  const int64_t n = int64_t{1} << 20;

  sose::bench::PrintHeader(
      "E12: column-norm discipline of s = 1 embeddings (Lemma 6)",
      "Pr[fail on D_1] = 1 - (1 - sigma)^d where sigma is the fraction of "
      "columns with norm outside 1 +/- eps; a working embedding therefore "
      "needs sigma <= ~2 delta / d",
      "measured failure rate matches 1-(1-sigma)^d as sigma is dialed up; "
      "unperturbed Count-Sketch has sigma = 0");

  auto sampler = sose::DBetaSampler::Create(n, d, 1);
  sampler.status().CheckOK();

  sose::AsciiTable table({"sigma (dialed)", "measured col-norm viol.",
                          "fail rate on D_1 [95% CI]", "predicted 1-(1-s)^d"});
  for (double sigma : {0.0, 0.01, 0.02, 0.05, 0.1, 0.2}) {
    sose::EstimatorOptions options;
    options.trials = trials;
    options.epsilon = epsilon;
    options.seed = seed + static_cast<uint64_t>(sigma * 1000.0);
    auto estimate = sose::EstimateFailureProbability(
        [m, n, sigma](uint64_t draw_seed)
            -> sose::Result<std::unique_ptr<sose::SketchingMatrix>> {
          SOSE_ASSIGN_OR_RETURN(sose::CountSketch base,
                                sose::CountSketch::Create(m, n, draw_seed));
          return std::unique_ptr<sose::SketchingMatrix>(
              std::make_unique<PerturbedCountSketch>(std::move(base), sigma,
                                                     1.5));
        },
        [&sampler](sose::Rng* rng) { return sampler.value().Sample(rng); },
        options);
    estimate.status().CheckOK();

    // Direct census of the dialed sketch.
    auto census_sketch = sose::CountSketch::Create(m, n, seed);
    census_sketch.status().CheckOK();
    PerturbedCountSketch perturbed(std::move(census_sketch).value(), sigma,
                                   1.5);
    sose::Rng census_rng(seed + 7);
    auto measured_sigma =
        sose::FractionColumnsOutsideNorm(perturbed, epsilon, 4000, &census_rng);
    measured_sigma.status().CheckOK();

    table.NewRow();
    table.AddDouble(sigma, 4);
    table.AddDouble(measured_sigma.value(), 4);
    table.AddProbability(estimate.value().rate, estimate.value().interval.lo,
                         estimate.value().interval.hi);
    table.AddDouble(1.0 - std::pow(1.0 - sigma, static_cast<double>(d)), 4);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Reading the table backwards gives Lemma 6: to keep the failure rate\n"
      "at delta, the column-norm violation fraction must be <= ~delta/d.\n");
  sose::bench::FinishBench(flags, "e12", /*requested_threads=*/1,
                           watch.ElapsedSeconds(), trials)
      .CheckOK();
  return 0;
}
