// E13 — the m–s trade-off (Theorem 20 direction): the *d-exponent* of the
// measured threshold m*(d) on the Section 5 mixture D̃ decays from ~2 at
// s = 1 toward ~1 as the column sparsity grows.
//
// Note on regime (documented in DESIGN.md): the paper's absolute
// ε-dependence lives at d >= 1/ε², beyond laptop scale; what is measurable
// — and what Theorem 20's s^{-Θ(δ)}d² lower bound predicts — is that the
// quadratic-in-d wall softens as s increases. At small d an additional
// Rademacher-noise floor Θ(d/ε²) affects every s >= 2 sketch equally; the
// d-exponent isolates the collision phenomenon from that floor.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/flags.h"
#include "core/stats.h"
#include "core/table.h"
#include "hardinstance/mixtures.h"
#include "ose/threshold_search.h"

namespace {

sose::Result<int64_t> Threshold(int64_t s, int64_t d, double epsilon,
                                double delta, int64_t n, uint64_t seed) {
  SOSE_ASSIGN_OR_RETURN(sose::SectionFiveMixture mixture,
                        sose::SectionFiveMixture::Create(n, d, epsilon));
  auto failure_at = [&](int64_t m) -> sose::Result<sose::FailureEstimate> {
    sose::EstimatorOptions options;
    options.trials = 250;
    options.epsilon = epsilon;
    options.seed = sose::DeriveSeed(seed, static_cast<uint64_t>(m * 64 + s));
    return sose::EstimateFailureProbability(
        sose::bench::MakeFactory("osnap", m, n, std::min(s, m)),
        [&mixture](sose::Rng* rng) { return mixture.Sample(rng); }, options);
  };
  sose::ThresholdSearchOptions options;
  options.m_lo = std::max<int64_t>(4, s);
  options.m_hi = int64_t{1} << 21;
  options.delta = delta;
  options.relative_tolerance = 0.1;
  SOSE_ASSIGN_OR_RETURN(sose::ThresholdResult result,
                        sose::FindMinimalRows(failure_at, options));
  return result.m_star;
}

}  // namespace

int main(int argc, char** argv) {
  sose::FlagParser flags(argc, argv);
  sose::bench::ApplyKernelsFlag(flags);
  sose::Stopwatch watch;
  const double epsilon = flags.GetDouble("eps", 1.0 / 32.0);
  const double delta = flags.GetDouble("delta", 0.2);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 37));
  const int64_t n = int64_t{1} << 21;

  sose::bench::PrintHeader(
      "E13: d-exponent of m*(d) vs column sparsity on D-tilde (Theorem 20)",
      "m = Omega((log^-4 s) s^{-K delta} d^2) for s <= 1/(9 eps): the "
      "quadratic-in-d wall is specific to extreme sparsity and softens as "
      "s grows; OSNAP at s = Theta(log d/eps) reaches slope ~1",
      "slope ~2 for every s below ~1/eps (the OSNAP trade-off "
      "s = Theta(1/(gamma eps)) <=> m = Theta(d^{1+gamma}) keeps gamma >= 1 "
      "there), collapsing toward ~1 once s clears ~1/eps");

  const std::vector<int64_t> dims = {4, 6, 8, 12, 16};
  const std::vector<int64_t> sparsities = {1, 2, 4, 16, 64};

  std::vector<std::string> header = {"d"};
  for (int64_t s : sparsities) header.push_back("m*: s=" + std::to_string(s));
  sose::AsciiTable table(header);
  std::vector<std::vector<double>> thresholds(sparsities.size());
  for (int64_t d : dims) {
    table.NewRow();
    table.AddInt(d);
    for (size_t i = 0; i < sparsities.size(); ++i) {
      auto m_star = Threshold(sparsities[i], d, epsilon, delta, n,
                              seed + static_cast<uint64_t>(i));
      m_star.status().CheckOK();
      thresholds[i].push_back(static_cast<double>(m_star.value()));
      table.AddInt(m_star.value());
    }
  }
  std::printf("%s\n", table.ToString().c_str());

  std::vector<double> xs;
  for (int64_t d : dims) xs.push_back(static_cast<double>(d));
  sose::AsciiTable slopes({"s", "slope of log m*(d)", "R^2"});
  for (size_t i = 0; i < sparsities.size(); ++i) {
    const sose::LinearFit fit = sose::FitPowerLaw(xs, thresholds[i]);
    slopes.NewRow();
    slopes.AddInt(sparsities[i]);
    slopes.AddDouble(fit.slope, 3);
    slopes.AddDouble(fit.r_squared, 3);
  }
  std::printf("%s\n", slopes.ToString().c_str());
  std::printf(
      "The s = 1 column is the Theorem 8 quadratic wall. The persistence of\n"
      "slope ~2 through s = 1/(9 eps) and beyond (up to s ~ 1/eps) is the\n"
      "super-linear regime Theorem 20 bounds from below and the OSNAP\n"
      "d^{1+gamma} upper bound sandwiches from above; the collapse to ~1 at\n"
      "s >> 1/eps is where sparsity stops being binding.\n");
  sose::bench::FinishBench(flags, "e13", /*requested_threads=*/1,
                           watch.ElapsedSeconds(), 0)
      .CheckOK();
  return 0;
}
