// E14 — Lemma 14: among the columns that are θ-heavy in a shared row l
// (with column norms <= 1 + θ²), a uniformly random pair has inner product
// >= θ² − 3ε with probability >= ε/2. Evaluated exactly on structured and
// random matrices with planted heavy rows.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/flags.h"
#include "core/random.h"
#include "core/table.h"
#include "lowerbound/lemma_checks.h"

namespace {

// |cols| columns, all θ-heavy at row 0 with the given sign pattern, tails
// drawn i.i.d. and rescaled under the norm cap.
sose::Matrix PlantedHeavyRow(int64_t rows, int64_t cols, double theta,
                             double tail_scale, bool alternating_signs,
                             sose::Rng* rng) {
  sose::Matrix a(rows, cols);
  for (int64_t c = 0; c < cols; ++c) {
    const double sign =
        alternating_signs ? (c % 2 == 0 ? 1.0 : -1.0) : rng->Rademacher();
    a.At(0, c) = sign * theta;
    double tail = 0.0;
    for (int64_t r = 1; r < rows; ++r) {
      a.At(r, c) = tail_scale * rng->Gaussian();
      tail += a.At(r, c) * a.At(r, c);
    }
    if (tail > 1.0) {
      const double shrink = std::sqrt(1.0 / tail);
      for (int64_t r = 1; r < rows; ++r) a.At(r, c) *= shrink;
    }
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  sose::FlagParser flags(argc, argv);
  sose::bench::ApplyKernelsFlag(flags);
  sose::Stopwatch watch;
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 41));
  sose::bench::PrintHeader(
      "E14: Lemma 14 — heavy-row pairs have large inner products",
      "if S = {i : |A_{l,i}| >= theta} is nonempty and ||A_{*,i}||^2 <= "
      "1 + theta^2 on S, then Pr_{u,v ~ Unif(S)}[<A_u, A_v> >= theta^2 - "
      "3 eps] >= eps/2",
      "'holds' on every configuration; the probability stays >= eps/2 even "
      "with adversarial alternating signs and maximal tails");

  sose::Rng rng(seed);
  sose::AsciiTable table({"config", "|S|", "eps", "theta", "Pr[large]",
                          "bound eps/2", "holds"});
  for (double epsilon : {0.02, 0.05, 0.1}) {
    const double theta = std::sqrt(8.0 * epsilon);
    for (int64_t cols : {8, 32, 128}) {
      for (double tail_scale : {0.0, 0.1, 0.3}) {
        for (bool alternating : {false, true}) {
          const sose::Matrix a =
              PlantedHeavyRow(16, cols, theta, tail_scale, alternating, &rng);
          auto result = sose::CheckLemma14(a, 0, theta, epsilon);
          result.status().CheckOK();
          char label[64];
          std::snprintf(label, sizeof(label), "%s tails=%.1f",
                        alternating ? "alt-signs" : "rnd-signs", tail_scale);
          table.NewRow();
          table.AddCell(label);
          table.AddInt(result.value().heavy_set_size);
          table.AddDouble(epsilon);
          table.AddDouble(theta, 3);
          table.AddDouble(result.value().probability, 4);
          table.AddDouble(result.value().bound, 4);
          table.AddCell(result.value().holds ? "yes" : "NO");
        }
      }
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  sose::bench::FinishBench(flags, "e14", /*requested_threads=*/1,
                           watch.ElapsedSeconds(), 0)
      .CheckOK();
  return 0;
}
