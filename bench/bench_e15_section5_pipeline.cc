// E15 (extension) — the full Section 5 pipeline run as an auditor: the
// per-level heavy census + Algorithm 2 attack, applied to working and
// deliberately undersized sketches. This is the paper's "removing the
// abundance assumption" argument executed end to end.
#include <cstdio>

#include "bench_util.h"
#include "core/flags.h"
#include "core/table.h"
#include "lowerbound/section_five.h"
#include "sketch/registry.h"

namespace {

void RunOne(const std::string& family, int64_t m, int64_t n, int64_t s,
            int64_t d, double epsilon, uint64_t seed) {
  sose::SketchConfig config;
  config.rows = m;
  config.cols = n;
  config.sparsity = s;
  config.seed = seed;
  auto sketch = sose::CreateSketch(family, config);
  sketch.status().CheckOK();
  auto report =
      sose::RunSectionFiveAnalysis(*sketch.value(), n, d, epsilon, seed + 1);
  report.status().CheckOK();
  std::printf("--- %s (m=%lld, s=%lld): avg col norm^2 = %.4f, "
              "abundant level present: %s ---\n",
              family.c_str(), static_cast<long long>(m),
              static_cast<long long>(s),
              report.value().average_norm_squared,
              report.value().has_abundant_level ? "yes" : "no");
  sose::AsciiTable table({"level", "theta", "avg heavy", "Lemma19 cap",
                          "abundant", "good cols", "pairs found",
                          "frac large <,>"});
  for (const sose::SectionFiveLevel& level : report.value().levels) {
    table.NewRow();
    table.AddInt(level.level);
    table.AddDouble(level.theta, 4);
    table.AddDouble(level.average_heavy, 4);
    table.AddDouble(level.lemma19_cap, 4);
    table.AddCell(level.abundant ? "yes" : "no");
    table.AddInt(level.good_columns);
    table.AddInt(level.pairs_found);
    table.AddDouble(level.large_pair_fraction, 4);
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  sose::FlagParser flags(argc, argv);
  sose::bench::ApplyKernelsFlag(flags);
  sose::Stopwatch watch;
  const int64_t d = flags.GetInt("d", 16);
  const double epsilon = flags.GetDouble("eps", 1.0 / 64.0);
  const int64_t n = flags.GetInt("n", 1 << 13);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 43));

  sose::bench::PrintHeader(
      "E15: Section 5 pipeline (Lemma 19 + Algorithm 2) as a sketch auditor",
      "a sketch that is an (eps, delta)-embedding for D-tilde cannot be "
      "'abundant' at any dyadic level; at every abundant level the paired "
      "D_{2^-l'} instance yields colliding pairs with inner products >= "
      "2^-l - 3 eps, feeding Lemma 4",
      "undersized sketches: abundant levels AND many large pairs; "
      "well-sized sketches: abundance may remain (it is necessary for "
      "unit columns!) but pairs become scarce as m grows past ~d^2");

  // Undersized: m well below d^2.
  RunOne("countsketch", d * d / 4, n, 1, d, epsilon, seed);
  // Properly sized s = 1: m >= d^2/(eps^2 delta) is out of reach here, but
  // d^2 * 16 already shows the pair counts collapsing.
  RunOne("countsketch", d * d * 16, n, 1, d, epsilon, seed + 10);
  // OSNAP at its design level, undersized.
  RunOne("osnap", d * d / 4, n, 8, d, epsilon, seed + 20);
  // Dense comparison: no abundant level at all.
  RunOne("gaussian", d * d / 4, n, 1, d, epsilon, seed + 30);
  sose::bench::FinishBench(flags, "e15", /*requested_threads=*/1,
                           watch.ElapsedSeconds(), 0)
      .CheckOK();
  return 0;
}
