// E16 (extension) — sketch-based preconditioning (Blendenpik/LSRN): CGLS
// iteration counts on ill-conditioned least squares, unpreconditioned vs
// preconditioned by each sketch family at several m. The OSE property is
// what makes κ(A R⁻¹) = (1+ε)/(1−ε); the paper's lower bounds price the
// minimal m per family.
#include <cstdio>

#include "bench_util.h"
#include "apps/iterative.h"
#include "core/flags.h"
#include "core/random.h"
#include "core/table.h"
#include "sketch/registry.h"
#include "workload/generators.h"

namespace {

sose::RegressionInstance IllConditioned(int64_t n, int64_t d, double decay,
                                        sose::Rng* rng) {
  sose::RegressionInstance instance =
      sose::MakeRegressionInstance(n, d, 0.5, sose::DesignKind::kIncoherent,
                                   rng)
          .ValueOrDie();
  double scale = 1.0;
  for (int64_t j = 0; j < d; ++j) {
    for (int64_t i = 0; i < n; ++i) instance.a.At(i, j) *= scale;
    scale *= decay;
  }
  instance.b = sose::MatVec(instance.a, instance.x_true);
  for (double& v : instance.b) v += 0.5 * rng->Gaussian();
  return instance;
}

}  // namespace

int main(int argc, char** argv) {
  sose::FlagParser flags(argc, argv);
  sose::bench::ApplyKernelsFlag(flags);
  sose::Stopwatch watch;
  const int64_t n = flags.GetInt("n", 2048);
  const int64_t d = flags.GetInt("d", 12);
  const double decay = flags.GetDouble("decay", 0.25);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 47));

  sose::bench::PrintHeader(
      "E16: sketch-preconditioned CGLS (the indirect payoff of OSEs)",
      "QR of Pi*A yields a right preconditioner R with kappa(A R^-1) = "
      "(1+eps)/(1-eps) whenever Pi is an eps-OSE for range(A); iterations "
      "collapse from O(kappa log 1/tol) to O(log 1/tol)",
      "unpreconditioned CGLS needs hundreds of iterations at decay^d "
      "conditioning; every adequately sized sketch gets to ~10");

  sose::Rng rng(seed);
  sose::RegressionInstance instance = IllConditioned(n, d, decay, &rng);

  sose::CglsOptions options;
  options.tolerance = 1e-8;
  options.max_iterations = 5000;
  auto plain = sose::SolveCgls(instance.a, instance.b, options);
  plain.status().CheckOK();
  std::printf("unpreconditioned CGLS: %lld iterations (converged: %s, "
              "rel. normal residual %.2e)\n\n",
              static_cast<long long>(plain.value().iterations),
              plain.value().converged ? "yes" : "no",
              plain.value().relative_residual);

  sose::AsciiTable table({"sketch", "m", "iterations", "converged",
                          "rel normal residual"});
  for (const std::string family : {"countsketch", "osnap", "gaussian",
                                    "srht"}) {
    for (int64_t m : {2 * d, 4 * d, 16 * d, 64 * d}) {
      sose::SketchConfig config;
      config.rows = m;
      config.cols = n;
      config.sparsity = 4;
      config.seed = seed + static_cast<uint64_t>(m);
      auto sketch = sose::CreateSketch(family, config);
      sketch.status().CheckOK();
      auto solution = sose::SolveSketchPreconditionedCgls(
          *sketch.value(), instance.a, instance.b, options);
      table.NewRow();
      table.AddCell(family);
      table.AddInt(m);
      if (!solution.ok()) {
        table.AddCell("-");
        table.AddCell("rank-deficient sketch");
        table.AddCell("-");
        continue;
      }
      table.AddInt(solution.value().iterations);
      table.AddCell(solution.value().converged ? "yes" : "no");
      table.AddDouble(solution.value().relative_residual, 3);
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Even a coarse (eps ~ 1/2) embedding flattens the iteration count —\n"
      "which is why the minimal-m question the paper answers matters even\n"
      "for solvers that never trust the sketch's answer directly.\n");
  sose::bench::FinishBench(flags, "e16", /*requested_threads=*/1,
                           watch.ElapsedSeconds(), 0)
      .CheckOK();
  return 0;
}
