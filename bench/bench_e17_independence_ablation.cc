// E17 (ablation) — hash independence: the paper's lower bounds hold against
// every distribution of Π, including limited-independence ones; the classic
// upper-bound analyses need only small constant independence. The ablation
// measures the failure threshold of Count-Sketch as the polynomial hash
// independence k varies, against the fully random baseline.
#include <cstdio>

#include "bench_util.h"
#include "core/flags.h"
#include "core/table.h"
#include "hardinstance/mixtures.h"
#include "ose/threshold_search.h"

namespace {

sose::Result<int64_t> Threshold(const std::string& family, int64_t k,
                                int64_t d, double epsilon, double delta,
                                int64_t n, uint64_t seed) {
  SOSE_ASSIGN_OR_RETURN(sose::SectionThreeMixture mixture,
                        sose::SectionThreeMixture::Create(n, d, epsilon));
  auto failure_at = [&](int64_t m) -> sose::Result<sose::FailureEstimate> {
    sose::EstimatorOptions options;
    options.trials = 400;
    options.epsilon = epsilon;
    options.seed = sose::DeriveSeed(seed, static_cast<uint64_t>(m));
    return sose::EstimateFailureProbability(
        [family, m, n, k](uint64_t draw_seed)
            -> sose::Result<std::unique_ptr<sose::SketchingMatrix>> {
          sose::SketchConfig config;
          config.rows = m;
          config.cols = n;
          config.sparsity = 1;
          config.independence = k;
          config.seed = draw_seed;
          return sose::CreateSketch(family, config);
        },
        [&mixture](sose::Rng* rng) { return mixture.Sample(rng); }, options);
  };
  sose::ThresholdSearchOptions options;
  options.m_lo = 4;
  options.m_hi = int64_t{1} << 20;
  options.delta = delta;
  options.relative_tolerance = 0.05;
  SOSE_ASSIGN_OR_RETURN(sose::ThresholdResult result,
                        sose::FindMinimalRows(failure_at, options));
  return result.m_star;
}

}  // namespace

int main(int argc, char** argv) {
  sose::FlagParser flags(argc, argv);
  sose::bench::ApplyKernelsFlag(flags);
  sose::Stopwatch watch;
  const int64_t d = flags.GetInt("d", 6);
  const double epsilon = flags.GetDouble("eps", 1.0 / 16.0);
  const double delta = flags.GetDouble("delta", 0.2);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 53));
  const int64_t n = int64_t{1} << 20;

  sose::bench::PrintHeader(
      "E17 (ablation): hash independence vs the Count-Sketch threshold",
      "the Omega(d^2/(eps^2 delta)) lower bound binds EVERY distribution of "
      "Pi; pairwise-independent buckets/signs already meet the classical "
      "upper-bound analysis, so the measured threshold should be flat in k",
      "m*(k) ~ constant across k in {2,3,4,8} and equal to the fully "
      "random baseline");

  sose::AsciiTable table({"hash", "m*", "m*/baseline"});
  auto baseline = Threshold("countsketch", 0, d, epsilon, delta, n, seed);
  baseline.status().CheckOK();
  table.NewRow();
  table.AddCell("fully random");
  table.AddInt(baseline.value());
  table.AddDouble(1.0, 3);
  for (int64_t k : {2, 3, 4, 8}) {
    auto m_star = Threshold("countsketch-kwise", k, d, epsilon, delta, n,
                            seed + static_cast<uint64_t>(k));
    m_star.status().CheckOK();
    table.NewRow();
    table.AddCell(std::to_string(k) + "-wise polynomial");
    table.AddInt(m_star.value());
    table.AddDouble(static_cast<double>(m_star.value()) /
                        static_cast<double>(baseline.value()),
                    3);
  }
  std::printf("%s\n", table.ToString().c_str());
  sose::bench::FinishBench(flags, "e17", /*requested_threads=*/1,
                           watch.ElapsedSeconds(), 0)
      .CheckOK();
  return 0;
}
