// E18 (extension) — why signs and hashing, not sampling: uniform row
// sampling is oblivious and norm-preserving in expectation, yet it fails
// catastrophically on exactly the sparse subspaces the paper's hard
// distribution D_β is built from, while Count-Sketch/OSNAP (whose cost the
// paper lower-bounds) handle them. The failure/success contrast flips on
// incoherent subspaces, where sampling is fine.
#include <cstdio>

#include "apps/leverage.h"
#include "bench_util.h"
#include "core/flags.h"
#include "core/random.h"
#include "core/table.h"
#include "hardinstance/d_beta.h"
#include "ose/failure_estimator.h"
#include "ose/isometry.h"
#include "sketch/registry.h"

int main(int argc, char** argv) {
  sose::FlagParser flags(argc, argv);
  sose::bench::ApplyKernelsFlag(flags);
  sose::Stopwatch watch;
  const int64_t d = flags.GetInt("d", 6);
  const double epsilon = flags.GetDouble("eps", 0.5);
  const int64_t trials = flags.GetInt("trials", 120);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 59));
  const int64_t n_hard = int64_t{1} << 18;
  const int64_t n_dense = 512;

  sose::bench::PrintHeader(
      "E18: uniform sampling vs hashed sketches on sparse vs dense subspaces",
      "obliviousness + E||Pi x||^2 = ||x||^2 is not sufficient for an OSE: "
      "sampling misses D_1's isolated coordinates almost surely, while the "
      "hashed constructions whose m the paper lower-bounds succeed; on "
      "incoherent subspaces both work",
      "rowsample fails (rate ~1) on D_1 at every m << n and passes on dense "
      "subspaces; countsketch/osnap pass both once m clears their "
      "thresholds");

  auto sampler = sose::DBetaSampler::Create(n_hard, d, 1);
  sampler.status().CheckOK();

  sose::AsciiTable table({"sketch", "m", "fail rate: D_1 (sparse)",
                          "fail rate: random subspace"});
  for (const std::string family : {"rowsample", "countsketch", "osnap"}) {
    for (int64_t m : {64, 256, 1024}) {
      sose::EstimatorOptions options;
      options.trials = trials;
      options.epsilon = epsilon;
      options.seed = sose::DeriveSeed(seed, static_cast<uint64_t>(m));

      auto hard = sose::EstimateFailureProbability(
          sose::bench::MakeFactory(family, m, n_hard, 4),
          [&sampler](sose::Rng* rng) { return sampler.value().Sample(rng); },
          options);
      hard.status().CheckOK();

      auto dense = sose::EstimateFailureProbabilityDense(
          sose::bench::MakeFactory(family, m, n_dense, 4),
          [d](sose::Rng* rng) { return sose::RandomIsometry(n_dense, d, rng); },
          options);
      dense.status().CheckOK();

      table.NewRow();
      table.AddCell(family);
      table.AddInt(m);
      table.AddProbability(hard.value().rate, hard.value().interval.lo,
                           hard.value().interval.hi);
      table.AddProbability(dense.value().rate, dense.value().interval.lo,
                           dense.value().interval.hi);
    }
  }
  std::printf("%s\n", table.ToString().c_str());

  // The non-oblivious contrast: leverage-score sampling READS the instance
  // before drawing its rows, so it concentrates on exactly the d active
  // coordinates and embeds D_1 at m = O(d log d) — the escape hatch the
  // paper's obliviousness requirement closes.
  {
    const int64_t n_small = int64_t{1} << 14;
    auto small_sampler = sose::DBetaSampler::Create(n_small, d, 1);
    small_sampler.status().CheckOK();
    sose::Rng rng(seed + 999);
    int failures = 0;
    const int64_t lev_trials = 40;
    const int64_t m_lev = 8 * d;
    for (int64_t t = 0; t < lev_trials; ++t) {
      sose::HardInstance instance = small_sampler.value().Sample(&rng);
      while (instance.HasRowCollision()) {
        instance = small_sampler.value().Sample(&rng);
      }
      const sose::Matrix dense_u = instance.ToCsc().ToDense();
      auto sketch = sose::MakeLeverageSamplingSketch(
          dense_u, m_lev, seed + static_cast<uint64_t>(t));
      sketch.status().CheckOK();
      auto report =
          sose::SketchDistortionOnIsometry(sketch.value(), dense_u);
      report.status().CheckOK();
      if (!report.value().WithinEpsilon(epsilon)) ++failures;
    }
    std::printf("non-oblivious leverage-score sampling on D_1 at m = 8d = "
                "%lld: fail rate %.4f\n"
                "(it saw the data first — the paper's Omega(d^2) bound only "
                "binds oblivious maps)\n\n",
                static_cast<long long>(m_lev),
                static_cast<double>(failures) / static_cast<double>(lev_trials));
  }
  std::printf(
      "The sparse column: rowsample stays at 1.0000 regardless of m (it\n"
      "annihilates unseen coordinates), while the hashed families drop to 0\n"
      "once m clears their (paper-priced) thresholds. The dense column shows\n"
      "the same sampler is perfectly adequate on incoherent subspaces — the\n"
      "hard instances isolate exactly what hashing buys.\n");
  sose::bench::FinishBench(flags, "e18", /*requested_threads=*/1,
                           watch.ElapsedSeconds(), trials)
      .CheckOK();
  return 0;
}
