// E19 (extension) — k-means after feature sketching (the [BZMD15]/[CEM+15]
// application the paper's introduction cites): cluster in the reduced space,
// evaluate the induced partition's cost in the original space, sweep the
// projection dimension m.
#include <cstdio>

#include "bench_util.h"
#include "apps/kmeans.h"
#include "core/flags.h"
#include "core/random.h"
#include "core/stats.h"
#include "core/table.h"
#include "sketch/registry.h"
#include "workload/generators.h"

int main(int argc, char** argv) {
  sose::FlagParser flags(argc, argv);
  sose::bench::ApplyKernelsFlag(flags);
  sose::Stopwatch watch;
  const int64_t n = flags.GetInt("n", 300);
  const int64_t dim = flags.GetInt("dim", 256);
  const int64_t k = flags.GetInt("k", 5);
  const double separation = flags.GetDouble("sep", 12.0);
  const int64_t repeats = flags.GetInt("repeats", 8);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 61));

  sose::bench::PrintHeader(
      "E19: k-means cost after feature sketching",
      "projecting the feature space through an OSE-style sketch preserves "
      "cluster structure: the induced partition's cost in the ORIGINAL "
      "space is (1 + O(eps)) of the full-dimensional run's cost",
      "cost ratio -> 1 as m grows; already ~1 at m = O(k/eps^2) << dim, "
      "independent of the ambient feature dimension");

  sose::AsciiTable table({"sketch", "m", "mean cost ratio", "worst ratio"});
  for (const std::string family : {"gaussian", "countsketch", "sparsejl"}) {
    for (int64_t m : {4, 8, 16, 64}) {
      sose::RunningStats ratios;
      for (int64_t r = 0; r < repeats; ++r) {
        sose::Rng rng(sose::DeriveSeed(seed, static_cast<uint64_t>(r)));
        auto points = sose::ClusteredPoints(n, dim, k, separation, &rng);
        points.status().CheckOK();
        sose::KMeansOptions options;
        options.k = k;
        options.seed = sose::DeriveSeed(seed + 1, static_cast<uint64_t>(r));
        auto full = sose::LloydKMeans(points.value(), options);
        full.status().CheckOK();
        sose::SketchConfig config;
        config.rows = m;
        config.cols = dim;
        config.sparsity = 2;
        config.seed =
            sose::DeriveSeed(seed + 2, static_cast<uint64_t>(m * repeats + r));
        auto sketch = sose::CreateSketch(family, config);
        sketch.status().CheckOK();
        auto sketched =
            sose::SketchedKMeans(*sketch.value(), points.value(), options);
        sketched.status().CheckOK();
        ratios.Add(sketched.value().cost / full.value().cost);
      }
      table.NewRow();
      table.AddCell(family);
      table.AddInt(m);
      table.AddDouble(ratios.Mean(), 5);
      table.AddDouble(ratios.Max(), 5);
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  sose::bench::FinishBench(flags, "e19", /*requested_threads=*/1,
                           watch.ElapsedSeconds(), repeats)
      .CheckOK();
  return 0;
}
