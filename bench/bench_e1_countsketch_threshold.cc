// E1 — Theorem 8: the minimal target dimension of Count-Sketch on the
// Section 3 hard mixture scales as m* = Θ(d²/(ε²δ)).
//
// For each swept parameter the bench bisects for the smallest m whose
// Monte-Carlo failure probability is <= δ, then fits log m* against
// log d, log(1/ε) and log(1/δ). The paper predicts slopes ≈ 2, 2 and 1.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/csv.h"
#include "core/flags.h"
#include "core/stats.h"
#include "core/table.h"
#include "hardinstance/mixtures.h"
#include "ose/threshold_search.h"

namespace {

struct SweepPoint {
  int64_t d;
  double epsilon;
  double delta;
};

sose::Result<int64_t> MeasureThreshold(const SweepPoint& point,
                                       uint64_t seed) {
  const int64_t n_needed = static_cast<int64_t>(
      32.0 * static_cast<double>(point.d * point.d) /
      (point.epsilon * point.epsilon * point.delta));
  const int64_t n = std::max<int64_t>(int64_t{1} << 18, n_needed);
  SOSE_ASSIGN_OR_RETURN(
      sose::SectionThreeMixture mixture,
      sose::SectionThreeMixture::Create(n, point.d, point.epsilon));
  const int64_t trials =
      std::min<int64_t>(800, std::max<int64_t>(200, static_cast<int64_t>(
                                                        30.0 / point.delta)));
  auto failure_at = [&](int64_t m) -> sose::Result<sose::FailureEstimate> {
    sose::EstimatorOptions options;
    options.trials = trials;
    options.epsilon = point.epsilon;
    options.seed = sose::DeriveSeed(seed, static_cast<uint64_t>(m));
    return sose::EstimateFailureProbability(
        sose::bench::MakeFactory("countsketch", m, n, 1),
        [&mixture](sose::Rng* rng) { return mixture.Sample(rng); }, options);
  };
  sose::ThresholdSearchOptions options;
  options.m_lo = 4;
  options.m_hi = int64_t{1} << 22;
  options.delta = point.delta;
  options.relative_tolerance = 0.05;
  SOSE_ASSIGN_OR_RETURN(sose::ThresholdResult result,
                        sose::FindMinimalRows(failure_at, options));
  return result.m_star;
}

void RunSweep(const char* label, const std::vector<SweepPoint>& points,
              const std::vector<double>& xs, uint64_t seed,
              double predicted_slope, sose::CsvWriter* csv) {
  sose::AsciiTable table({"d", "eps", "delta", "m*", "d^2/(eps^2 delta)",
                          "ratio"});
  std::vector<double> measured;
  for (const SweepPoint& point : points) {
    auto m_star = MeasureThreshold(point, seed);
    m_star.status().CheckOK();
    measured.push_back(static_cast<double>(m_star.value()));
    const double predicted = static_cast<double>(point.d * point.d) /
                             (point.epsilon * point.epsilon * point.delta);
    table.NewRow();
    table.AddInt(point.d);
    table.AddDouble(point.epsilon);
    table.AddDouble(point.delta);
    table.AddInt(m_star.value());
    table.AddDouble(predicted);
    table.AddDouble(static_cast<double>(m_star.value()) / predicted, 3);
    if (csv != nullptr) {
      csv->NewRow();
      csv->AddCell(label);
      csv->AddInt(point.d);
      csv->AddDouble(point.epsilon);
      csv->AddDouble(point.delta);
      csv->AddInt(m_star.value());
      csv->AddDouble(predicted);
    }
  }
  std::printf("--- sweep over %s ---\n%s", label, table.ToString().c_str());
  const sose::LinearFit fit = sose::FitPowerLaw(xs, measured);
  std::printf("log-log slope of m* vs %s: %.3f  (paper predicts %.1f), "
              "R^2 = %.3f\n\n",
              label, fit.slope, predicted_slope, fit.r_squared);
}

}  // namespace

int main(int argc, char** argv) {
  sose::FlagParser flags(argc, argv);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 11));
  const std::string csv_path = flags.GetString("csv", "");
  sose::CsvWriter csv({"sweep", "d", "eps", "delta", "m_star", "predicted"});
  sose::CsvWriter* csv_ptr = csv_path.empty() ? nullptr : &csv;
  sose::bench::PrintHeader(
      "E1: Count-Sketch threshold (Theorem 8)",
      "any s = 1 OSE needs m = Omega(d^2/(eps^2 delta)); Count-Sketch "
      "achieves it, so its measured threshold must scale with all three "
      "exponents",
      "slope(m*, d) ~ 2, slope(m*, 1/eps) ~ 2, slope(m*, 1/delta) ~ 1");

  {
    std::vector<SweepPoint> points;
    std::vector<double> xs;
    for (int64_t d : {4, 6, 8, 12, 16, 24}) {
      points.push_back({d, 1.0 / 16.0, 0.2});
      xs.push_back(static_cast<double>(d));
    }
    RunSweep("d", points, xs, seed, 2.0, csv_ptr);
  }
  {
    std::vector<SweepPoint> points;
    std::vector<double> xs;
    for (double inv_eps : {16.0, 32.0, 64.0, 128.0}) {
      points.push_back({4, 1.0 / inv_eps, 0.2});
      xs.push_back(inv_eps);
    }
    RunSweep("1/eps", points, xs, seed + 1, 2.0, csv_ptr);
  }
  {
    std::vector<SweepPoint> points;
    std::vector<double> xs;
    for (double delta : {0.4, 0.2, 0.1, 0.05}) {
      points.push_back({4, 1.0 / 16.0, delta});
      xs.push_back(1.0 / delta);
    }
    RunSweep("1/delta", points, xs, seed + 2, 1.0, csv_ptr);
  }
  if (csv_ptr != nullptr) {
    csv.WriteToFile(csv_path).CheckOK();
    std::printf("wrote %s\n", csv_path.c_str());
  }
  return 0;
}
