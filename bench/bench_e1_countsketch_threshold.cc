// E1 — Theorem 8: the minimal target dimension of Count-Sketch on the
// Section 3 hard mixture scales as m* = Θ(d²/(ε²δ)).
//
// For each swept parameter the bench bisects for the smallest m whose
// Monte-Carlo failure probability is <= δ, then fits log m* against
// log d, log(1/ε) and log(1/δ). The paper predicts slopes ≈ 2, 2 and 1.
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/csv.h"
#include "core/fault.h"
#include "core/flags.h"
#include "core/stats.h"
#include "core/stopwatch.h"
#include "core/table.h"
#include "hardinstance/mixtures.h"
#include "ose/threshold_search.h"
#include "ose/trial_spec.h"

namespace {

struct SweepPoint {
  int64_t d;
  double epsilon;
  double delta;
};

// Resilience policy shared by every probe of the bench; read once from the
// command line in main().
struct ResilienceConfig {
  sose::EstimatorOptions base;
  std::string checkpoint_prefix;
  // `--quick`: a CI-sized run — fewer sweep points, capped trials, and a
  // smaller ambient dimension / search ceiling. The slopes it fits are noisy;
  // its purpose is exercising the full pipeline (including `--workers` and
  // `--chaos`) in seconds, not reproducing the paper's exponents.
  bool quick = false;
};

sose::Result<sose::ThresholdResult> MeasureThreshold(
    const SweepPoint& point, uint64_t seed, const std::string& point_tag,
    const ResilienceConfig& resilience) {
  const int64_t n_needed = static_cast<int64_t>(
      32.0 * static_cast<double>(point.d * point.d) /
      (point.epsilon * point.epsilon * point.delta));
  const int64_t n_floor = resilience.quick ? int64_t{1} << 14 : int64_t{1} << 18;
  const int64_t n = resilience.quick ? n_floor : std::max(n_floor, n_needed);
  SOSE_ASSIGN_OR_RETURN(
      sose::SectionThreeMixture mixture,
      sose::SectionThreeMixture::Create(n, point.d, point.epsilon));
  const int64_t trials =
      resilience.quick
          ? 60
          : std::min<int64_t>(
                800, std::max<int64_t>(200, static_cast<int64_t>(
                                                30.0 / point.delta)));
  auto failure_at = [&](int64_t m) -> sose::Result<sose::FailureEstimate> {
    sose::EstimatorOptions options = resilience.base;
    options.trials = trials;
    options.epsilon = point.epsilon;
    options.seed = sose::DeriveSeed(seed, static_cast<uint64_t>(m));
    // Self-contained description of this probe's trial so a remote
    // sose_shard_agent (--transport=socket) rebuilds the identical closure;
    // unused by the fork transport.
    options.trial_spec = sose::FormatMixtureFailureSpec(
        "countsketch", m, n, 1, point.d, point.epsilon, point.epsilon,
        options.condition_on_no_collision, options.max_redraws);
    if (!resilience.checkpoint_prefix.empty()) {
      // One file per probe: the bisection visits distinct m values and the
      // sweeps share the prefix, so every (sweep point, m) needs its own path.
      options.checkpoint_path = resilience.checkpoint_prefix + "." + point_tag +
                                ".m" + std::to_string(m);
      options.checkpoint_every = std::max<int64_t>(1, trials / 8);
    }
    return sose::EstimateFailureProbability(
        sose::bench::MakeFactory("countsketch", m, n, 1),
        [&mixture](sose::Rng* rng) { return mixture.Sample(rng); }, options);
  };
  sose::ThresholdSearchOptions options;
  options.m_lo = 4;
  options.m_hi = resilience.quick ? int64_t{1} << 14 : int64_t{1} << 22;
  options.delta = point.delta;
  options.relative_tolerance = 0.05;
  return sose::FindMinimalRows(failure_at, options);
}

void RunSweep(const char* label, const char* sweep_tag,
              const std::vector<SweepPoint>& points,
              const std::vector<double>& xs, uint64_t seed,
              double predicted_slope, const ResilienceConfig& resilience,
              sose::CsvWriter* csv, int64_t* total_trials) {
  sose::AsciiTable table({"d", "eps", "delta", "m*", "d^2/(eps^2 delta)",
                          "ratio", "faults"});
  std::vector<double> measured;
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& point = points[i];
    auto search = MeasureThreshold(
        point, seed, std::string(sweep_tag) + std::to_string(i), resilience);
    search.status().CheckOK();
    const sose::ThresholdResult& result = search.value();
    measured.push_back(static_cast<double>(result.m_star));
    const double predicted = static_cast<double>(point.d * point.d) /
                             (point.epsilon * point.epsilon * point.delta);
    sose::TrialErrorTaxonomy merged;
    for (const sose::ThresholdProbe& probe : result.probes) {
      *total_trials += probe.estimate.completed;
      merged.MergeFrom(probe.estimate.taxonomy);
    }
    table.NewRow();
    table.AddInt(point.d);
    table.AddDouble(point.epsilon);
    table.AddDouble(point.delta);
    table.AddInt(result.m_star);
    table.AddDouble(predicted);
    table.AddDouble(static_cast<double>(result.m_star) / predicted, 3);
    table.AddCell(sose::bench::FaultCell(result.total_faulted,
                                         result.any_partial, merged));
    if (csv != nullptr) {
      csv->NewRow();
      csv->AddCell(label);
      csv->AddInt(point.d);
      csv->AddDouble(point.epsilon);
      csv->AddDouble(point.delta);
      csv->AddInt(result.m_star);
      csv->AddDouble(predicted);
      csv->AddInt(result.total_faulted);
    }
  }
  std::printf("--- sweep over %s ---\n%s", label, table.ToString().c_str());
  const sose::LinearFit fit = sose::FitPowerLaw(xs, measured);
  std::printf("log-log slope of m* vs %s: %.3f  (paper predicts %.1f), "
              "R^2 = %.3f\n\n",
              label, fit.slope, predicted_slope, fit.r_squared);
}

}  // namespace

int main(int argc, char** argv) {
  sose::FlagParser flags(argc, argv);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 11));
  const std::string csv_path = flags.GetString("csv", "");
  ResilienceConfig resilience;
  sose::bench::ReadResilienceFlags(flags, &resilience.base);
  resilience.checkpoint_prefix = flags.GetString("checkpoint", "");
  resilience.quick = flags.GetBool("quick", false);
  // `--chaos=site@N,site@every` keeps a fault-injection scope alive for the
  // whole run; forked shard workers inherit it, so worker-side sites
  // (shard_worker/crash, ...) fire deterministically in every incarnation.
  // The coordinator must still produce output bit-identical to a clean
  // serial run — that is the property the CI chaos job pins.
  std::unique_ptr<sose::ScopedFaultInjection> chaos;
  const std::string chaos_spec = flags.GetString("chaos", "");
  if (!chaos_spec.empty()) {
    auto plan = sose::ParseFaultPlan(chaos_spec);
    plan.status().CheckOK();
    chaos = std::make_unique<sose::ScopedFaultInjection>(
        std::move(plan).value());
  }
  sose::CsvWriter csv(
      {"sweep", "d", "eps", "delta", "m_star", "predicted", "faulted"});
  sose::CsvWriter* csv_ptr = csv_path.empty() ? nullptr : &csv;
  sose::bench::PrintHeader(
      "E1: Count-Sketch threshold (Theorem 8)",
      "any s = 1 OSE needs m = Omega(d^2/(eps^2 delta)); Count-Sketch "
      "achieves it, so its measured threshold must scale with all three "
      "exponents",
      "slope(m*, d) ~ 2, slope(m*, 1/eps) ~ 2, slope(m*, 1/delta) ~ 1");

  sose::Stopwatch watch;
  int64_t total_trials = 0;
  {
    std::vector<SweepPoint> points;
    std::vector<double> xs;
    const std::vector<int64_t> ds =
        resilience.quick ? std::vector<int64_t>{4, 6, 8}
                         : std::vector<int64_t>{4, 6, 8, 12, 16, 24};
    for (int64_t d : ds) {
      points.push_back({d, 1.0 / 16.0, 0.2});
      xs.push_back(static_cast<double>(d));
    }
    RunSweep("d", "d", points, xs, seed, 2.0, resilience, csv_ptr,
             &total_trials);
  }
  {
    std::vector<SweepPoint> points;
    std::vector<double> xs;
    const std::vector<double> inv_epses =
        resilience.quick ? std::vector<double>{16.0, 32.0}
                         : std::vector<double>{16.0, 32.0, 64.0, 128.0};
    for (double inv_eps : inv_epses) {
      points.push_back({4, 1.0 / inv_eps, 0.2});
      xs.push_back(inv_eps);
    }
    RunSweep("1/eps", "inv_eps", points, xs, seed + 1, 2.0, resilience,
             csv_ptr, &total_trials);
  }
  {
    std::vector<SweepPoint> points;
    std::vector<double> xs;
    const std::vector<double> deltas =
        resilience.quick ? std::vector<double>{0.4, 0.2}
                         : std::vector<double>{0.4, 0.2, 0.1, 0.05};
    for (double delta : deltas) {
      points.push_back({4, 1.0 / 16.0, delta});
      xs.push_back(1.0 / delta);
    }
    RunSweep("1/delta", "inv_delta", points, xs, seed + 2, 1.0, resilience,
             csv_ptr, &total_trials);
  }
  if (csv_ptr != nullptr) {
    csv.WriteToFile(csv_path).CheckOK();
    std::printf("wrote %s\n", csv_path.c_str());
  }
  sose::bench::FinishBench(flags, "e1", resilience.base.threads,
                           watch.ElapsedSeconds(), total_trials,
                           resilience.base.workers)
      .CheckOK();
  return 0;
}
