// E20 (extension) — sketched canonical correlation analysis (the [ABTZ14]
// application the paper's introduction cites): canonical correlations
// between two views after applying the SAME sketch to both, vs the target
// dimension m.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "apps/cca.h"
#include "core/flags.h"
#include "core/random.h"
#include "core/stats.h"
#include "core/table.h"
#include "sketch/registry.h"
#include "workload/generators.h"

namespace {

// Two views with planted correlation profile {1, ~0.8, ~0.4, 0, ...}.
void MakeViews(int64_t n, int64_t p, sose::Rng* rng, sose::Matrix* x,
               sose::Matrix* y) {
  *x = sose::RandomDenseMatrix(n, p, rng);
  *y = sose::Matrix(n, p);
  const double couplings[] = {1.0, 0.8, 0.4};
  for (int64_t j = 0; j < p; ++j) {
    const double rho = j < 3 ? couplings[j] : 0.0;
    const double noise = std::sqrt(1.0 - rho * rho);
    for (int64_t i = 0; i < n; ++i) {
      y->At(i, j) = rho * x->At(i, j) + noise * rng->Gaussian();
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  sose::FlagParser flags(argc, argv);
  sose::bench::ApplyKernelsFlag(flags);
  sose::Stopwatch watch;
  const int64_t n = flags.GetInt("n", 2048);
  const int64_t p = flags.GetInt("p", 5);
  const int64_t repeats = flags.GetInt("repeats", 10);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 67));

  sose::bench::PrintHeader(
      "E20: sketched CCA (the paper's cited correlation-analysis workload)",
      "applying one eps-OSE for span([X Y]) to both views preserves every "
      "canonical correlation to additive O(eps)",
      "max |rho_i - rho~_i| decays ~ 1/sqrt(m); all families converge, "
      "countsketch needing the largest m per the paper's s = 1 bound");

  sose::Rng view_rng(seed);
  sose::Matrix x, y;
  MakeViews(n, p, &view_rng, &x, &y);
  auto exact = sose::ExactCca(x, y);
  exact.status().CheckOK();
  std::printf("exact canonical correlations:");
  for (double rho : exact.value()) std::printf(" %.4f", rho);
  std::printf("\n\n");

  sose::AsciiTable table(
      {"sketch", "m", "mean max |rho err|", "worst max |rho err|"});
  for (const std::string family : {"countsketch", "osnap", "gaussian"}) {
    for (int64_t m : {32, 128, 512}) {
      sose::RunningStats errors;
      for (int64_t r = 0; r < repeats; ++r) {
        sose::SketchConfig config;
        config.rows = m;
        config.cols = n;
        config.sparsity = 4;
        config.seed =
            sose::DeriveSeed(seed + 1, static_cast<uint64_t>(m * repeats + r));
        auto sketch = sose::CreateSketch(family, config);
        sketch.status().CheckOK();
        auto sketched = sose::SketchedCca(*sketch.value(), x, y);
        if (!sketched.ok()) {
          errors.Add(1.0);  // Rank-deficient sketch counts as total loss.
          continue;
        }
        errors.Add(
            sose::MaxCorrelationError(exact.value(), sketched.value()));
      }
      table.NewRow();
      table.AddCell(family);
      table.AddInt(m);
      table.AddDouble(errors.Mean(), 5);
      table.AddDouble(errors.Max(), 5);
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  sose::bench::FinishBench(flags, "e20", /*requested_threads=*/1,
                           watch.ElapsedSeconds(), repeats)
      .CheckOK();
  return 0;
}
