// E21 (extension) — the full (ε, δ) trade-off curve per family from one
// sample set: distortion quantiles of ΠU over (Π, U) draws at a fixed
// budget m, on the hard distribution D₁. A single failure-probability
// point (the other benches) is one slice of this table.
#include <cstdio>

#include "bench_util.h"
#include "core/flags.h"
#include "core/table.h"
#include "hardinstance/d_beta.h"
#include "ose/profile.h"

int main(int argc, char** argv) {
  sose::FlagParser flags(argc, argv);
  sose::bench::ApplyKernelsFlag(flags);
  sose::Stopwatch watch;
  const int64_t d = flags.GetInt("d", 8);
  const int64_t m = flags.GetInt("m", 96);
  const int64_t trials = flags.GetInt("trials", 600);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 71));
  const int64_t n = int64_t{1} << 18;

  sose::bench::PrintHeader(
      "E21: distortion profile (the whole eps-delta curve) per family",
      "Definition 1 is a two-parameter statement; the quantiles of "
      "eps(Pi, U) over draws give every (eps, delta) point at once",
      "countsketch: bimodal — tiny distortion conditioned on no collision, "
      "~1 on collision, so p50 << p99; osnap/gaussian: unimodal "
      "concentration tightening with m; rowsample: all mass at 1");

  auto sampler = sose::DBetaSampler::Create(n, d, 1);
  sampler.status().CheckOK();
  const sose::InstanceSampler instance_sampler = [&sampler](sose::Rng* rng) {
    return sampler.value().Sample(rng);
  };

  sose::AsciiTable table({"sketch", "mean eps", "p50", "p90", "p99", "max",
                          "Pr[eps>0.1]", "Pr[eps>0.25]", "Pr[eps>0.5]"});
  for (const std::string family :
       {"countsketch", "osnap", "gaussian", "sparsejl", "rowsample"}) {
    sose::ProfileOptions options;
    options.trials = trials;
    options.epsilons = {0.1, 0.25, 0.5};
    options.seed = sose::DeriveSeed(seed, 1);
    auto profile = sose::ProfileDistortion(
        sose::bench::MakeFactory(family, m, n, 4), instance_sampler, options);
    profile.status().CheckOK();
    table.NewRow();
    table.AddCell(family);
    table.AddDouble(profile.value().mean, 4);
    table.AddDouble(profile.value().p50, 4);
    table.AddDouble(profile.value().p90, 4);
    table.AddDouble(profile.value().p99, 4);
    table.AddDouble(profile.value().max, 4);
    for (double rate : profile.value().failure_rates) {
      table.AddDouble(rate, 4);
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Count-Sketch's gap between p50 and p99 is the paper's delta-"
      "dependence in\nminiature: failures are collision events, not "
      "gradual distortion drift, so\nthe only way to push the p99 down is "
      "more rows — at the Theta(d^2/(eps^2 delta))\nrate Theorem 8 proves "
      "unavoidable.\n");
  sose::bench::FinishBench(flags, "e21", /*requested_threads=*/1,
                           watch.ElapsedSeconds(), trials)
      .CheckOK();
  return 0;
}
