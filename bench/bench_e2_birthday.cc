// E2 — Lemma 7 / the birthday paradox engine of Theorem 8: the probability
// that the hard instance's k = d/(8ε) heavy coordinates collide under
// Count-Sketch's hash matches the analytic birthday curve, and the m at
// which it crosses δ scales as k²/δ.
#include <cstdio>

#include "bench_util.h"
#include "core/flags.h"
#include "core/random.h"
#include "core/stats.h"
#include "core/table.h"
#include "hardinstance/d_beta.h"
#include "lowerbound/collision.h"
#include "sketch/count_sketch.h"

int main(int argc, char** argv) {
  sose::FlagParser flags(argc, argv);
  sose::bench::ApplyKernelsFlag(flags);
  sose::Stopwatch watch;
  const int64_t d = flags.GetInt("d", 4);
  const int64_t epc = flags.GetInt("epc", 8);  // 1/(8ε) → ε = 1/64.
  const int64_t trials = flags.GetInt("trials", 5000);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  const int64_t n = int64_t{1} << 22;
  const int64_t balls = d * epc;

  sose::bench::PrintHeader(
      "E2: birthday collisions of heavy coordinates (Lemma 7)",
      "conditioned on U ~ D_{8eps}, a working s = 1 embedding leaves all "
      "d/(8eps) active coordinates in distinct buckets; the collision "
      "probability is the birthday curve",
      "empirical Pr[collision] tracks 1 - prod(1 - i/m); the delta-crossing "
      "m* grows ~ k^2/(2 delta)");

  auto sampler = sose::DBetaSampler::Create(n, d, epc);
  sampler.status().CheckOK();
  sose::Rng rng(seed);

  sose::AsciiTable table({"m", "k (balls)", "measured Pr[collision]",
                          "analytic", "mean colliding pairs",
                          "k(k-1)/2m (predicted mean)"});
  for (int64_t m = balls; m <= balls * balls * 16; m *= 4) {
    int64_t collided = 0;
    sose::RunningStats pair_counts;
    for (int64_t t = 0; t < trials; ++t) {
      sose::HardInstance instance = sampler.value().Sample(&rng);
      while (instance.HasRowCollision()) {
        instance = sampler.value().Sample(&rng);
      }
      auto sketch = sose::CountSketch::Create(
          m, n, sose::DeriveSeed(seed, static_cast<uint64_t>(m * trials + t)));
      sketch.status().CheckOK();
      const sose::BirthdayStats stats =
          sose::CountSketchBirthday(sketch.value(), instance);
      if (stats.any_collision) ++collided;
      pair_counts.Add(static_cast<double>(stats.collisions));
    }
    table.NewRow();
    table.AddInt(m);
    table.AddInt(balls);
    const auto ci = sose::WilsonInterval(collided, trials);
    table.AddProbability(static_cast<double>(collided) / trials, ci.lo, ci.hi);
    table.AddDouble(sose::BirthdayCollisionProbability(balls, m), 4);
    table.AddDouble(pair_counts.Mean(), 4);
    table.AddDouble(static_cast<double>(balls * (balls - 1)) /
                        (2.0 * static_cast<double>(m)),
                    4);
  }
  std::printf("%s\n", table.ToString().c_str());
  sose::bench::FinishBench(flags, "e2", /*requested_threads=*/1,
                           watch.ElapsedSeconds(), trials)
      .CheckOK();
  return 0;
}
