// E3 — Fact 5 / Lemma 4: once two sketched columns have inner product
// lambda*eps with lambda > 2, the norm ‖ΠUu‖² of the witness direction u
// escapes [(1−ε)², (1+ε)²] with probability at least 1/4 over the signs.
//
// The bench plants a pair of columns with a controlled inner product and
// sweeps lambda across the lemma's λ = 2 phase boundary.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/flags.h"
#include "core/table.h"
#include "hardinstance/d_beta.h"
#include "lowerbound/witness.h"
#include "sketch/sketch.h"

namespace {

// Sketch whose columns 0 and 1 have inner product exactly `target` and unit
// norms; all other columns are isolated canonical directions.
class PlantedPairSketch final : public sose::SketchingMatrix {
 public:
  PlantedPairSketch(int64_t m, int64_t n, double target)
      : m_(m), n_(n), overlap_(std::sqrt(std::fabs(target))),
        sign_(target >= 0.0 ? 1.0 : -1.0) {}

  int64_t rows() const override { return m_; }
  int64_t cols() const override { return n_; }
  int64_t column_sparsity() const override { return 2; }
  std::string name() const override { return "planted-pair"; }

  std::vector<sose::ColumnEntry> Column(int64_t c) const override {
    // Columns 0, 1: share row 0 with weights √|t| and sign·√|t|, and carry
    // a private row making the norm 1. Other columns: a single 1 in a
    // private row.
    if (c == 0) {
      return {{0, overlap_}, {1, std::sqrt(1.0 - overlap_ * overlap_)}};
    }
    if (c == 1) {
      return {{0, sign_ * overlap_},
              {2, std::sqrt(1.0 - overlap_ * overlap_)}};
    }
    return {{3 + (c % (m_ - 3)), 1.0}};
  }

 private:
  int64_t m_;
  int64_t n_;
  double overlap_;
  double sign_;
};

}  // namespace

int main(int argc, char** argv) {
  sose::FlagParser flags(argc, argv);
  sose::bench::ApplyKernelsFlag(flags);
  sose::Stopwatch watch;
  const double epsilon = flags.GetDouble("eps", 0.05);
  const int64_t trials = flags.GetInt("trials", 40000);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 5));
  const int64_t n = 4096;
  const int64_t m = 512;
  const int64_t d = 8;

  sose::bench::PrintHeader(
      "E3: anti-concentration from a planted inner product (Fact 5, Lemma 4)",
      "|<Pi_p, Pi_q>| >= lambda*eps with lambda > 2 forces "
      "Pr[ ||PiUu||^2 outside (1 +/- eps)^2 ] >= 1/4 over the Rademacher "
      "signs of W",
      "escape probability >= 0.25 for every lambda > 2; below lambda = 2 "
      "the guarantee lapses and the measured probability drops to ~0");

  // U ~ D_1 whose first two generators land on the planted columns.
  sose::HardInstance instance;
  instance.n = n;
  instance.d = d;
  instance.entries_per_col = 1;
  instance.beta = 1.0;
  for (int64_t j = 0; j < d; ++j) {
    instance.rows.push_back(j);
    instance.signs.push_back(1.0);
  }

  sose::AsciiTable table({"lambda", "<Pi_p,Pi_q>", "Pr[above]", "Pr[below]",
                          "Pr[outside]", "lemma bound"});
  for (double lambda : {0.5, 1.0, 2.0, 2.5, 3.0, 5.0, 8.0, 12.0}) {
    const double target = lambda * epsilon;
    PlantedPairSketch sketch(m, n, target);
    sose::ViolationWitness witness;
    witness.gen_p = 0;
    witness.gen_q = 1;
    witness.col_p = 0;
    witness.col_q = 1;
    witness.inner_product = target;
    auto report = sose::VerifyAntiConcentration(sketch, instance, witness,
                                                epsilon, trials, seed);
    report.status().CheckOK();
    table.NewRow();
    table.AddDouble(lambda);
    table.AddDouble(target, 4);
    table.AddDouble(report.value().fraction_above, 4);
    table.AddDouble(report.value().fraction_below, 4);
    table.AddDouble(report.value().fraction_outside, 4);
    table.AddCell(lambda > 2.0 ? ">= 0.25" : "(none)");
  }
  std::printf("%s\n", table.ToString().c_str());
  sose::bench::FinishBench(flags, "e3", /*requested_threads=*/1,
                           watch.ElapsedSeconds(), trials)
      .CheckOK();
  return 0;
}
