// E4 — Lemma 3: for any finite family S inside the unit ball and
// independent u, v ~ Unif(S), Pr[<u,v> >= -3*eps] > 2*eps for eps < 1/9.
//
// Evaluated exactly (all |S|² pairs) on adversarial and random families.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/flags.h"
#include "core/random.h"
#include "core/table.h"
#include "core/vector_ops.h"
#include "lowerbound/lemma_checks.h"

namespace {

std::vector<std::vector<double>> Simplex(int k) {
  std::vector<std::vector<double>> family;
  for (int i = 0; i < k; ++i) {
    std::vector<double> v(static_cast<size_t>(k), -1.0 / k);
    v[static_cast<size_t>(i)] += 1.0;
    sose::Normalize(&v);
    family.push_back(v);
  }
  return family;
}

std::vector<std::vector<double>> Antipodal(int pairs) {
  std::vector<std::vector<double>> family;
  for (int i = 0; i < pairs; ++i) {
    std::vector<double> plus(static_cast<size_t>(pairs), 0.0);
    plus[static_cast<size_t>(i)] = 1.0;
    std::vector<double> minus = plus;
    minus[static_cast<size_t>(i)] = -1.0;
    family.push_back(plus);
    family.push_back(minus);
  }
  return family;
}

std::vector<std::vector<double>> RandomSphere(int k, int dim, sose::Rng* rng) {
  std::vector<std::vector<double>> family;
  for (int i = 0; i < k; ++i) {
    std::vector<double> v(static_cast<size_t>(dim));
    for (double& x : v) x = rng->Gaussian();
    sose::Normalize(&v);
    family.push_back(v);
  }
  return family;
}

std::vector<std::vector<double>> Clustered(int k, int dim, sose::Rng* rng) {
  // Two tight clusters pointing in nearly opposite directions: the most
  // cancellation-prone family with mean near zero.
  std::vector<std::vector<double>> family;
  for (int i = 0; i < k; ++i) {
    std::vector<double> v(static_cast<size_t>(dim), 0.0);
    v[0] = (i % 2 == 0) ? 1.0 : -1.0;
    for (size_t j = 1; j < v.size(); ++j) v[j] = 0.05 * rng->Gaussian();
    sose::Normalize(&v);
    family.push_back(v);
  }
  return family;
}

void Report(sose::AsciiTable* table, const char* name,
            const std::vector<std::vector<double>>& family, double epsilon) {
  auto result = sose::CheckLemma3(family, epsilon);
  result.status().CheckOK();
  table->NewRow();
  table->AddCell(name);
  table->AddInt(static_cast<int64_t>(family.size()));
  table->AddDouble(epsilon);
  table->AddDouble(result.value().probability, 4);
  table->AddDouble(result.value().bound, 4);
  table->AddDouble(result.value().mean_inner_product, 4);
  table->AddCell(result.value().holds ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  sose::FlagParser flags(argc, argv);
  sose::bench::ApplyKernelsFlag(flags);
  sose::Stopwatch watch;
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 9));
  sose::bench::PrintHeader(
      "E4: Lemma 3 on adversarial vector families",
      "in any finite subset of the unit ball, a 2*eps fraction of pairs has "
      "inner product >= -3*eps (driven by E<u,v> = ||sum u||^2/k^2 >= 0)",
      "'holds' on every family and every eps in (0, 1/9); the antipodal "
      "family shows the probability can be as low as 1/2");

  sose::Rng rng(seed);
  sose::AsciiTable table({"family", "|S|", "eps", "Pr[<u,v> >= -3eps]",
                          "2 eps", "E<u,v>", "holds"});
  for (double epsilon : {0.01, 0.05, 0.1}) {
    Report(&table, "simplex-16", Simplex(16), epsilon);
    Report(&table, "simplex-64", Simplex(64), epsilon);
    Report(&table, "antipodal-16", Antipodal(8), epsilon);
    Report(&table, "antipodal-64", Antipodal(32), epsilon);
    Report(&table, "random-sphere-32x8", RandomSphere(32, 8, &rng), epsilon);
    Report(&table, "clustered-40x16", Clustered(40, 16, &rng), epsilon);
  }
  std::printf("%s\n", table.ToString().c_str());
  sose::bench::FinishBench(flags, "e4", /*requested_threads=*/1,
                           watch.ElapsedSeconds(), 0)
      .CheckOK();
  return 0;
}
