// E5 — Remark 10 (the matching upper bound): the deterministic
// block-Hadamard sketch with block order b = 1/(8ε) is a (≈0, δ)-subspace
// embedding for U ~ D₁ once m = O(d²), certifying that Theorem 9's d²
// lower bound is tight.
#include <cstdio>

#include "bench_util.h"
#include "core/flags.h"
#include "core/random.h"
#include "core/stats.h"
#include "core/table.h"
#include "hardinstance/d_beta.h"
#include "ose/distortion.h"
#include "sketch/block_hadamard.h"

int main(int argc, char** argv) {
  sose::FlagParser flags(argc, argv);
  const int64_t d = flags.GetInt("d", 16);
  const int64_t b = flags.GetInt("b", 8);
  const int64_t trials = flags.GetInt("trials", 1000);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 3));
  const int64_t n = int64_t{1} << 22;

  sose::bench::PrintHeader(
      "E5: Remark 10 tightness witness (block-Hadamard upper bound)",
      "horizontally concatenated sqrt(8 eps) * Hadamard blocks give a "
      "deterministic s = 1/(8 eps) sketch that embeds D_1 with distortion 0 "
      "whenever no two chosen columns share a block index AND a Hadamard "
      "column; collisions into the same block are harmless (orthogonality)",
      "failure rate falls like the birthday curve of d balls into m/b "
      "blocks *conditioned on same within-block column*, i.e. ~ d^2 b / "
      "(2 m) * (1/b) = d^2/(2m); near-zero once m >> d^2/2");

  auto sampler = sose::DBetaSampler::Create(n, d, 1);
  sampler.status().CheckOK();

  sose::AsciiTable table({"m", "m/d^2", "fail rate (exact collision)",
                          "predicted d^2/(2m)", "mean eps", "max eps"});
  for (double ratio : {0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    int64_t m = static_cast<int64_t>(ratio * static_cast<double>(d * d));
    m = std::max<int64_t>(b, (m / b) * b);
    auto sketch = sose::BlockHadamard::Create(m, n, b);
    sketch.status().CheckOK();
    sose::Rng rng(seed + static_cast<uint64_t>(m));
    int failures = 0;
    sose::RunningStats eps_stats;
    for (int64_t t = 0; t < trials; ++t) {
      sose::HardInstance instance = sampler.value().Sample(&rng);
      while (instance.HasRowCollision()) {
        instance = sampler.value().Sample(&rng);
      }
      auto report =
          sose::SketchDistortionOnInstance(sketch.value(), instance);
      report.status().CheckOK();
      eps_stats.Add(report.value().Epsilon());
      if (report.value().Epsilon() > 1e-9) ++failures;
    }
    table.NewRow();
    table.AddInt(m);
    table.AddDouble(static_cast<double>(m) / static_cast<double>(d * d), 3);
    table.AddDouble(static_cast<double>(failures) / trials, 4);
    table.AddDouble(static_cast<double>(d * d) / (2.0 * static_cast<double>(m)),
                    4);
    table.AddDouble(eps_stats.Mean(), 4);
    table.AddDouble(eps_stats.Max(), 4);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Note the distortion is EXACTLY zero unless two chosen columns are\n"
      "identical columns of the same Hadamard block — the construction is a\n"
      "(0, delta)-embedding, strictly stronger than the (eps, delta) the\n"
      "lower bound requires.\n");
  return 0;
}
