// E5 — Remark 10 (the matching upper bound): the deterministic
// block-Hadamard sketch with block order b = 1/(8ε) is a (≈0, δ)-subspace
// embedding for U ~ D₁ once m = O(d²), certifying that Theorem 9's d²
// lower bound is tight.
#include <cmath>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/flags.h"
#include "core/random.h"
#include "core/stopwatch.h"
#include "core/table.h"
#include "hardinstance/d_beta.h"
#include "ose/distortion.h"
#include "ose/trial_runner.h"
#include "sketch/block_hadamard.h"

int main(int argc, char** argv) {
  sose::FlagParser flags(argc, argv);
  sose::bench::ApplyKernelsFlag(flags);
  const int64_t d = flags.GetInt("d", 16);
  const int64_t b = flags.GetInt("b", 8);
  const int64_t trials = flags.GetInt("trials", 1000);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 3));
  const std::string checkpoint_prefix = flags.GetString("checkpoint", "");
  const int64_t n = int64_t{1} << 22;

  sose::bench::PrintHeader(
      "E5: Remark 10 tightness witness (block-Hadamard upper bound)",
      "horizontally concatenated sqrt(8 eps) * Hadamard blocks give a "
      "deterministic s = 1/(8 eps) sketch that embeds D_1 with distortion 0 "
      "whenever no two chosen columns share a block index AND a Hadamard "
      "column; collisions into the same block are harmless (orthogonality)",
      "failure rate falls like the birthday curve of d balls into m/b "
      "blocks *conditioned on same within-block column*, i.e. ~ d^2 b / "
      "(2 m) * (1/b) = d^2/(2m); near-zero once m >> d^2/2");

  auto sampler = sose::DBetaSampler::Create(n, d, 1);
  sampler.status().CheckOK();

  sose::Stopwatch watch;
  int64_t total_trials = 0;
  const int workers =
      static_cast<int>(flags.GetIntInRange("workers", 1, 1, 1024));
  // The two parallelism axes are mutually exclusive: a --workers run pins
  // threads to 1 unless --threads was given explicitly.
  const int threads =
      static_cast<int>(flags.GetInt("threads", workers > 1 ? 1 : 0));
  sose::AsciiTable table({"m", "m/d^2", "fail rate (exact collision)",
                          "predicted d^2/(2m)", "mean eps", "max eps",
                          "faults"});
  for (double ratio : {0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    int64_t m = static_cast<int64_t>(ratio * static_cast<double>(d * d));
    m = std::max<int64_t>(b, (m / b) * b);
    auto sketch = sose::BlockHadamard::Create(m, n, b);
    sketch.status().CheckOK();
    auto trial = [&](uint64_t trial_seed) -> sose::Result<sose::TrialOutcome> {
      sose::Rng rng(trial_seed);
      sose::HardInstance instance = sampler.value().Sample(&rng);
      int64_t redraws = 0;
      while (instance.HasRowCollision() && redraws < 64) {
        instance = sampler.value().Sample(&rng);
        ++redraws;
      }
      if (instance.HasRowCollision()) {
        return sose::Status::FailedPrecondition(
            "E5: persistent row collisions while sampling D_1");
      }
      SOSE_ASSIGN_OR_RETURN(
          sose::DistortionReport report,
          sose::SketchDistortionOnInstance(sketch.value(), instance));
      const double epsilon = report.Epsilon();
      if (!std::isfinite(epsilon)) {
        return sose::Status::NumericalError("E5: non-finite distortion");
      }
      return sose::TrialOutcome{epsilon, epsilon > 1e-9};
    };
    sose::TrialRunnerOptions runner;
    runner.trials = trials;
    runner.seed = seed + static_cast<uint64_t>(m);
    runner.max_retries = flags.GetInt("max-retries", runner.max_retries);
    runner.error_budget = flags.GetDouble("error-budget", runner.error_budget);
    runner.deadline_seconds =
        flags.GetDouble("deadline", runner.deadline_seconds);
    runner.threads = threads;
    runner.workers = workers;
    runner.heartbeat_timeout_seconds =
        flags.GetDouble("heartbeat-timeout", runner.heartbeat_timeout_seconds);
    runner.max_shard_retries = flags.GetIntInRange(
        "max-shard-retries", runner.max_shard_retries, 0, 1 << 20);
    runner.backoff_initial_seconds =
        flags.GetDouble("shard-backoff", runner.backoff_initial_seconds);
    if (!checkpoint_prefix.empty()) {
      runner.checkpoint_path = checkpoint_prefix + ".m" + std::to_string(m);
      runner.checkpoint_every = std::max<int64_t>(1, trials / 8);
    }
    auto run = sose::RunTrials(trial, runner);
    run.status().CheckOK();
    const sose::TrialRunReport& report = run.value();
    total_trials += report.completed;
    const double completed =
        report.completed > 0 ? static_cast<double>(report.completed) : 1.0;
    table.NewRow();
    table.AddInt(m);
    table.AddDouble(static_cast<double>(m) / static_cast<double>(d * d), 3);
    table.AddDouble(static_cast<double>(report.failures) / completed, 4);
    table.AddDouble(static_cast<double>(d * d) / (2.0 * static_cast<double>(m)),
                    4);
    table.AddDouble(report.epsilon_sum / completed, 4);
    table.AddDouble(report.epsilon_max, 4);
    table.AddCell(sose::bench::FaultCell(report.faulted, report.partial,
                                         report.taxonomy));
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Note the distortion is EXACTLY zero unless two chosen columns are\n"
      "identical columns of the same Hadamard block — the construction is a\n"
      "(0, delta)-embedding, strictly stronger than the (eps, delta) the\n"
      "lower bound requires.\n");
  sose::bench::FinishBench(flags, "e5", threads, watch.ElapsedSeconds(),
                           total_trials, workers)
      .CheckOK();
  return 0;
}
