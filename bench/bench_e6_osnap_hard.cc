// E6 — Theorem 9's phenomenon: a uniformly random sparse sketch at the
// paper's critical sparsity s = 1/(9ε) degrades on U ~ D₁ as m drops
// through ~d², while at the same budget the aligned Remark 10 construction
// stays exact (see E5). The pincer around m = Θ(d²) is the headline result.
#include <cmath>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/flags.h"
#include "core/random.h"
#include "core/stats.h"
#include "core/stopwatch.h"
#include "core/table.h"
#include "hardinstance/d_beta.h"
#include "ose/failure_estimator.h"

int main(int argc, char** argv) {
  sose::FlagParser flags(argc, argv);
  const int64_t d = flags.GetInt("d", 24);
  const int64_t s = flags.GetInt("s", 4);
  const int64_t trials = flags.GetInt("trials", 500);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 13));
  const int64_t n = int64_t{1} << 22;
  const double epsilon = 1.0 / (9.0 * static_cast<double>(s));

  sose::bench::PrintHeader(
      "E6: random sparse sketches on D_1 at critical sparsity (Theorem 9)",
      "any s <= 1/(9 eps) sketch needs m = Omega~(d^2) on D_1; random OSNAP "
      "placement exhibits the failure as m drops below ~d^2",
      "failure rate rises toward 1 as m/d^2 decreases; mean distortion "
      "crosses eps near m ~ d^2");

  auto sampler = sose::DBetaSampler::Create(n, d, 1);
  sampler.status().CheckOK();

  sose::EstimatorOptions base_options;
  sose::bench::ReadResilienceFlags(flags, &base_options);
  const std::string checkpoint_prefix = flags.GetString("checkpoint", "");

  sose::Stopwatch watch;
  int64_t total_trials = 0;
  sose::AsciiTable table({"m", "m/d^2", "fail rate [95% CI]", "mean eps",
                          "eps target", "faults"});
  for (double ratio : {0.0625, 0.125, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    const int64_t m = std::max<int64_t>(
        s, static_cast<int64_t>(ratio * static_cast<double>(d * d)));
    sose::EstimatorOptions options = base_options;
    options.trials = trials;
    options.epsilon = epsilon;
    options.seed = sose::DeriveSeed(seed, static_cast<uint64_t>(m));
    if (!checkpoint_prefix.empty()) {
      options.checkpoint_path = checkpoint_prefix + ".m" + std::to_string(m);
      options.checkpoint_every = std::max<int64_t>(1, trials / 8);
    }
    auto estimate = sose::EstimateFailureProbability(
        sose::bench::MakeFactory("osnap", m, n, s),
        [&sampler](sose::Rng* rng) { return sampler.value().Sample(rng); },
        options);
    estimate.status().CheckOK();
    total_trials += estimate.value().completed;
    table.NewRow();
    table.AddInt(m);
    table.AddDouble(ratio, 4);
    table.AddProbability(estimate.value().rate, estimate.value().interval.lo,
                         estimate.value().interval.hi);
    table.AddDouble(estimate.value().mean_epsilon, 4);
    table.AddDouble(epsilon, 4);
    table.AddCell(sose::bench::FaultCell(estimate.value().faulted,
                                         estimate.value().partial,
                                         estimate.value().taxonomy));
  }
  std::printf("%s\n", table.ToString().c_str());
  sose::bench::FinishBench(flags, "e6", base_options.threads,
                           watch.ElapsedSeconds(), total_trials)
      .CheckOK();
  return 0;
}
