// E7 — Section 5's heavy-entry census (Lemma 19): for every level ℓ, a
// working embedding cannot have many entries of absolute value >= √(2^{-ℓ});
// working constructions concentrate all their mass exactly at their design
// level and carry ~nothing above it.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/flags.h"
#include "core/random.h"
#include "core/table.h"
#include "lowerbound/heavy_entries.h"
#include "sketch/registry.h"

int main(int argc, char** argv) {
  sose::FlagParser flags(argc, argv);
  sose::bench::ApplyKernelsFlag(flags);
  sose::Stopwatch watch;
  const int64_t m = flags.GetInt("m", 1024);
  const int64_t n = flags.GetInt("n", 1 << 16);
  const int64_t sample_columns = flags.GetInt("samples", 4000);
  const double epsilon = flags.GetDouble("eps", 1.0 / 256.0);
  const int64_t num_levels = flags.GetInt("levels", 6);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 21));

  sose::bench::PrintHeader(
      "E7: heavy-entry census across dyadic levels (Lemma 19)",
      "the Section 5 mixture forces: avg #entries with |Pi_{l,c}| >= "
      "sqrt(2^-l) is at most ~eps^{delta'} 2^l for every level l, else the "
      "average column norm budget 1 +/- eps is violated",
      "each sketch family shows a step profile: zero above its design "
      "level, then a plateau at its sparsity; everything stays far below "
      "the cumulative norm budget");

  std::printf("delta'(eps) = %.4f, eps^{delta'} = %.4f\n\n",
              sose::SectionFiveDeltaPrime(epsilon),
              std::pow(epsilon, sose::SectionFiveDeltaPrime(epsilon)));

  std::vector<std::string> header = {"level l", "theta = sqrt(2^-l)",
                                     "Lemma 19 cap eps^{d'} 2^l"};
  const std::vector<std::string> families = {"countsketch", "osnap",
                                             "gaussian", "sparsejl",
                                             "blockhadamard"};
  for (const std::string& family : families) header.push_back(family);
  sose::AsciiTable table(header);

  std::vector<sose::HeavyCensus> censuses;
  for (const std::string& family : families) {
    sose::SketchConfig config;
    config.rows = m;
    config.cols = n;
    config.sparsity = 8;
    config.seed = seed;
    auto sketch = sose::CreateSketch(family, config);
    sketch.status().CheckOK();
    sose::Rng rng(seed + 1);
    auto census = sose::ComputeHeavyCensus(*sketch.value(), num_levels,
                                           epsilon, sample_columns, &rng);
    census.status().CheckOK();
    censuses.push_back(std::move(census).value());
  }

  for (int64_t level = 0; level <= num_levels; ++level) {
    table.NewRow();
    table.AddInt(level);
    table.AddDouble(censuses.front().thresholds[static_cast<size_t>(level)],
                    4);
    table.AddDouble(
        censuses.front().lemma19_bounds[static_cast<size_t>(level)], 4);
    for (const sose::HeavyCensus& census : censuses) {
      table.AddDouble(census.average_counts[static_cast<size_t>(level)], 4);
    }
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("average squared column norms (must be ~1 for any working "
              "embedding):\n");
  for (size_t i = 0; i < families.size(); ++i) {
    std::printf("  %-14s %.4f\n", families[i].c_str(),
                censuses[i].average_norm_squared);
  }
  sose::bench::FinishBench(flags, "e7", /*requested_threads=*/1,
                           watch.ElapsedSeconds(), 0)
      .CheckOK();
  return 0;
}
