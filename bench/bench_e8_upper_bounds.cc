// E8 — the upper-bound landscape: measured minimal target dimension m* for
// Gaussian, OSNAP and Count-Sketch as d grows, on random subspaces AND on
// the hard mixture. This is the "who wins and why" table framing the
// paper's question: Count-Sketch pays m ~ d², OSNAP m ~ d polylog, Gaussian
// m ~ d — but their apply costs rank in the opposite order (E9).
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/flags.h"
#include "core/stats.h"
#include "core/stopwatch.h"
#include "core/table.h"
#include "hardinstance/mixtures.h"
#include "ose/threshold_search.h"
#include "ose/trial_spec.h"

namespace {

struct FamilySpec {
  std::string family;
  int64_t sparsity;  // 0 means "log2(d)/eps-ish", computed per d.
};

sose::Result<sose::ThresholdResult> Threshold(
    const FamilySpec& spec, int64_t d, double epsilon, double delta, int64_t n,
    uint64_t seed, const sose::EstimatorOptions& base_options,
    const std::string& checkpoint_prefix) {
  SOSE_ASSIGN_OR_RETURN(sose::SectionThreeMixture mixture,
                        sose::SectionThreeMixture::Create(n, d, epsilon));
  int64_t s = spec.sparsity;
  if (s == 0) {
    // OSNAP's upper-bound regime: s = Theta(log(d/delta)/eps). The constant
    // 1/2 keeps s comfortably above 1/(9 eps) (outside the paper's
    // quadratic lower-bound regime) without being fully dense.
    s = std::max<int64_t>(
        2, static_cast<int64_t>(
               std::llround(std::log2(static_cast<double>(d) / delta) /
                            (2.0 * epsilon))));
  }
  auto failure_at = [&](int64_t m) -> sose::Result<sose::FailureEstimate> {
    sose::EstimatorOptions options = base_options;
    options.trials = 200;
    options.epsilon = epsilon;
    options.seed = sose::DeriveSeed(seed, static_cast<uint64_t>(m));
    // Remote-rebuildable description of this probe for --transport=socket.
    options.trial_spec = sose::FormatMixtureFailureSpec(
        spec.family, m, n, std::min(s, m), d, epsilon, epsilon,
        options.condition_on_no_collision, options.max_redraws);
    if (!checkpoint_prefix.empty()) {
      options.checkpoint_path = checkpoint_prefix + "." + spec.family + ".d" +
                                std::to_string(d) + ".m" + std::to_string(m);
      options.checkpoint_every = 25;
    }
    return sose::EstimateFailureProbability(
        sose::bench::MakeFactory(spec.family, m, n, std::min(s, m)),
        [&mixture](sose::Rng* rng) { return mixture.Sample(rng); }, options);
  };
  sose::ThresholdSearchOptions options;
  options.m_lo = 4;
  options.m_hi = int64_t{1} << 21;
  options.delta = delta;
  options.relative_tolerance = 0.06;
  return sose::FindMinimalRows(failure_at, options);
}

}  // namespace

int main(int argc, char** argv) {
  sose::FlagParser flags(argc, argv);
  const double epsilon = flags.GetDouble("eps", 1.0 / 16.0);
  const double delta = flags.GetDouble("delta", 0.2);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 31));
  const int64_t n = int64_t{1} << 21;
  sose::EstimatorOptions base_options;
  sose::bench::ReadResilienceFlags(flags, &base_options);
  const std::string checkpoint_prefix = flags.GetString("checkpoint", "");

  sose::bench::PrintHeader(
      "E8: upper-bound landscape m*(d) per family (the paper's Table 0)",
      "Gaussian m = Theta(d/eps^2) wins on dimension; OSNAP with s = "
      "Theta(log d / eps) pays a log factor; Count-Sketch (s = 1) pays "
      "Theta(d^2/(eps^2 delta)) — the paper proves the latter is not "
      "improvable",
      "log-log slope of m*(d): ~1 (gaussian), ~1 (osnap, + log factor), "
      "~2 (countsketch)");

  const std::vector<FamilySpec> specs = {
      {"gaussian", 1}, {"osnap", 0}, {"countsketch", 1}};
  const std::vector<int64_t> dims = {4, 6, 8, 12, 16, 24};

  std::vector<std::string> header = {"d"};
  for (const FamilySpec& spec : specs) header.push_back("m*: " + spec.family);
  sose::AsciiTable table(header);

  sose::Stopwatch watch;
  int64_t total_trials = 0;
  std::vector<std::vector<double>> thresholds(specs.size());
  std::vector<int64_t> family_faulted(specs.size(), 0);
  bool any_partial = false;
  for (int64_t d : dims) {
    table.NewRow();
    table.AddInt(d);
    for (size_t i = 0; i < specs.size(); ++i) {
      auto search = Threshold(specs[i], d, epsilon, delta, n,
                              seed + static_cast<uint64_t>(i), base_options,
                              checkpoint_prefix);
      search.status().CheckOK();
      const sose::ThresholdResult& result = search.value();
      thresholds[i].push_back(static_cast<double>(result.m_star));
      family_faulted[i] += result.total_faulted;
      any_partial = any_partial || result.any_partial;
      for (const sose::ThresholdProbe& probe : result.probes) {
        total_trials += probe.estimate.completed;
      }
      table.AddInt(result.m_star);
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  for (size_t i = 0; i < specs.size(); ++i) {
    if (family_faulted[i] > 0) {
      std::printf("quarantined trials for %-12s: %lld\n",
                  specs[i].family.c_str(),
                  static_cast<long long>(family_faulted[i]));
    }
  }
  if (any_partial) {
    std::printf("WARNING: at least one probe hit its deadline; thresholds "
                "rest on partial estimates.\n");
  }

  std::vector<double> xs;
  for (int64_t d : dims) xs.push_back(static_cast<double>(d));
  std::vector<sose::LinearFit> fits;
  for (size_t i = 0; i < specs.size(); ++i) {
    fits.push_back(sose::FitPowerLaw(xs, thresholds[i]));
    std::printf("slope of log m* vs log d for %-12s: %.3f (R^2 = %.3f)\n",
                specs[i].family.c_str(), fits[i].slope, fits[i].r_squared);
  }
  // Extrapolated crossover: where the countsketch fit line overtakes the
  // gaussian fit line. At small d, Count-Sketch's tiny constants make it
  // dimension-competitive; its quadratic slope must lose eventually, and
  // the paper proves no s = 1 construction can avoid that.
  const sose::LinearFit& gaussian_fit = fits[0];
  const sose::LinearFit& countsketch_fit = fits[2];
  if (countsketch_fit.slope > gaussian_fit.slope) {
    const double crossover = std::exp(
        (gaussian_fit.intercept - countsketch_fit.intercept) /
        (countsketch_fit.slope - gaussian_fit.slope));
    std::printf("\nExtrapolated d where countsketch's m* overtakes "
                "gaussian's: d ~ %.0f.\nBelow it, Count-Sketch wins on BOTH "
                "dimension and (E9) apply time; above,\nthe paper-proved "
                "quadratic wall forces the trade-off.\n",
                crossover);
  }
  sose::bench::FinishBench(flags, "e8", base_options.threads,
                           watch.ElapsedSeconds(), total_trials,
                           base_options.workers)
      .CheckOK();
  return 0;
}
