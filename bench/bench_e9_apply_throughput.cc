// E9 — the O(nnz(A) · s) apply-cost claim that motivates the whole paper:
// Count-Sketch applies in O(nnz(A)), OSNAP in O(nnz(A) · s), Gaussian in
// O(nnz(A) · m). google-benchmark kernels over sparse inputs, plus a
// dense-vs-CSC comparison pass: the same sketch applied to the densified
// input costs O(n · cols · s) instead, and the measured ratio is the
// machine-readable argument for the CSC fast paths (BENCH_e9.json).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/matrix.h"
#include "core/random.h"
#include "core/simd/dispatch.h"
#include "core/sparse.h"
#include "core/stopwatch.h"
#include "sketch/registry.h"
#include "workload/generators.h"

namespace {

using sose::CreateSketch;
using sose::CscMatrix;
using sose::SketchConfig;

CscMatrix MakeInput(int64_t n, int64_t cols, int64_t nnz_per_col) {
  sose::Rng rng(42);
  return sose::RandomSparseMatrix(n, cols, nnz_per_col, &rng).ValueOrDie();
}

// A batch whose columns share ambient rows: every column draws its support
// from a small row pool, the shape of the paper's hard instances (a D_beta
// draw touches only d/beta ambient rows, and all d columns live on them).
// This is the workload ApplyBatch exists for — the hashing/column-derivation
// amortization only has something to amortize when rows repeat across the
// batch.
CscMatrix MakeSharedRowInput(int64_t n, int64_t cols, int64_t nnz_per_col,
                             int64_t pool_size, uint64_t seed) {
  sose::Rng rng(seed);
  std::vector<int64_t> pool(static_cast<size_t>(pool_size));
  for (int64_t& r : pool) r = rng.UniformInt(int64_t{0}, n - 1);
  sose::CooBuilder builder(n, cols);
  builder.Reserve(cols * nnz_per_col);
  for (int64_t j = 0; j < cols; ++j) {
    rng.Shuffle(&pool);
    for (int64_t k = 0; k < nnz_per_col; ++k) {
      builder.Add(pool[static_cast<size_t>(k)], j, rng.Gaussian());
    }
  }
  return builder.ToCsc();
}

void ApplySparseBench(benchmark::State& state, const std::string& family,
                      int64_t sparsity) {
  const int64_t n = state.range(0);
  const int64_t nnz_per_col = state.range(1);
  const int64_t m = 1024;
  const int64_t cols = 8;
  SketchConfig config;
  config.rows = m;
  config.cols = n;
  config.sparsity = sparsity;
  config.seed = 7;
  auto sketch = CreateSketch(family, config);
  sketch.status().CheckOK();
  const CscMatrix input = MakeInput(n, cols, nnz_per_col);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.value()->ApplySparse(input).value());
  }
  state.SetItemsProcessed(state.iterations() * input.nnz());
  state.counters["nnz"] = static_cast<double>(input.nnz());
  state.counters["s"] = static_cast<double>(sketch.value()->column_sparsity());
}

// Dense comparison: the same product through ApplyDense on the densified
// input. Items processed is still nnz of the sparse original, so the
// items/sec column is directly comparable with the CSC benches above and
// the gap is the price of ignoring sparsity.
void ApplyDenseBench(benchmark::State& state, const std::string& family,
                     int64_t sparsity) {
  const int64_t n = state.range(0);
  const int64_t nnz_per_col = state.range(1);
  const int64_t m = 1024;
  const int64_t cols = 8;
  SketchConfig config;
  config.rows = m;
  config.cols = n;
  config.sparsity = sparsity;
  config.seed = 7;
  auto sketch = CreateSketch(family, config);
  sketch.status().CheckOK();
  const CscMatrix input = MakeInput(n, cols, nnz_per_col);
  const sose::Matrix dense = input.ToDense();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.value()->ApplyDense(dense).value());
  }
  state.SetItemsProcessed(state.iterations() * input.nnz());
  state.counters["nnz"] = static_cast<double>(input.nnz());
  state.counters["dense_entries"] = static_cast<double>(n * cols);
}

void BM_CountSketchApply(benchmark::State& state) {
  ApplySparseBench(state, "countsketch", 1);
}
void BM_OsnapApply_s4(benchmark::State& state) {
  ApplySparseBench(state, "osnap", 4);
}
void BM_OsnapApply_s16(benchmark::State& state) {
  ApplySparseBench(state, "osnap", 16);
}
void BM_GaussianApply(benchmark::State& state) {
  ApplySparseBench(state, "gaussian", 1);
}
void BM_CountSketchApplyDense(benchmark::State& state) {
  ApplyDenseBench(state, "countsketch", 1);
}
void BM_OsnapApplyDense_s4(benchmark::State& state) {
  ApplyDenseBench(state, "osnap", 4);
}

// nnz scaling at fixed n: items/sec should be ~flat per family (linear in
// nnz), with per-item cost ratios ~ 1 : s : m across families.
BENCHMARK(BM_CountSketchApply)
    ->Args({1 << 16, 8})
    ->Args({1 << 16, 32})
    ->Args({1 << 16, 128})
    ->Args({1 << 18, 32});
BENCHMARK(BM_OsnapApply_s4)
    ->Args({1 << 16, 8})
    ->Args({1 << 16, 32})
    ->Args({1 << 16, 128})
    ->Args({1 << 18, 32});
BENCHMARK(BM_OsnapApply_s16)->Args({1 << 16, 32});
BENCHMARK(BM_GaussianApply)->Args({1 << 16, 8})->Args({1 << 16, 32});
// The dense column: one point per family is enough to expose the ratio.
BENCHMARK(BM_CountSketchApplyDense)->Args({1 << 14, 32});
BENCHMARK(BM_OsnapApplyDense_s4)->Args({1 << 14, 32});

// Dense apply for the structured fast transform (SRHT) vs explicit loops.
void BM_SrhtApplyVector(benchmark::State& state) {
  const int64_t n = state.range(0);
  SketchConfig config;
  config.rows = 1024;
  config.cols = n;
  config.seed = 9;
  auto sketch = CreateSketch("srht", config);
  sketch.status().CheckOK();
  sose::Rng rng(1);
  std::vector<double> x(static_cast<size_t>(n));
  for (double& v : x) v = rng.Gaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.value()->ApplyVector(x).value());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SrhtApplyVector)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16);

// Warm-up, then repeat until the time budget has elapsed; returns ns per
// repetition. `--quick` shrinks the budget so CI smoke runs stay cheap.
template <typename Apply>
double TimeNs(double budget_seconds, Apply&& apply) {
  apply();
  sose::Stopwatch watch;
  int64_t reps = 0;
  do {
    apply();
    ++reps;
  } while (watch.ElapsedSeconds() < budget_seconds && reps < 10000);
  return watch.ElapsedSeconds() * 1e9 / static_cast<double>(reps);
}

// Manual dense-vs-CSC pass for BENCH_e9.json: times each path until it has
// accumulated the budget's worth of work and reports ns per input nonzero
// plus the dense/CSC cost ratio, in flat keys FindJsonNumber can read back.
struct PathCost {
  double csc_ns_per_nnz = 0.0;
  double dense_ns_per_nnz = 0.0;
};

PathCost MeasurePaths(const std::string& family, int64_t sparsity,
                      double budget_seconds) {
  const int64_t n = 1 << 14;
  const int64_t cols = 8;
  SketchConfig config;
  config.rows = 1024;
  config.cols = n;
  config.sparsity = sparsity;
  config.seed = 7;
  auto sketch = CreateSketch(family, config);
  sketch.status().CheckOK();
  const CscMatrix input = MakeInput(n, cols, 32);
  const sose::Matrix dense = input.ToDense();

  PathCost cost;
  cost.csc_ns_per_nnz =
      TimeNs(budget_seconds,
             [&] {
               benchmark::DoNotOptimize(
                   sketch.value()->ApplySparse(input).value());
             }) /
      static_cast<double>(input.nnz());
  cost.dense_ns_per_nnz =
      TimeNs(budget_seconds,
             [&] {
               benchmark::DoNotOptimize(
                   sketch.value()->ApplyDense(dense).value());
             }) /
      static_cast<double>(input.nnz());
  return cost;
}

// The headline before/after pass: the pre-batching path (per-entry
// ApplySparse pinned to the scalar kernels) against ApplyBatch under the
// dispatched kernels, on a shared-row batch. Also records which ISA was
// live while this family's batched numbers were taken — the per-family
// `kernels` provenance in BENCH_e9.json.
struct BatchedCost {
  double sparse_scalar_ns_per_nnz = 0.0;
  double batched_ns_per_nnz = 0.0;
  double speedup = 0.0;
  std::string isa;
};

BatchedCost MeasureBatched(const std::string& family, int64_t sparsity,
                           const std::string& kernels_spec,
                           double budget_seconds) {
  const int64_t n = 1 << 14;
  const int64_t cols = 64;
  SketchConfig config;
  config.rows = 1024;
  config.cols = n;
  config.sparsity = sparsity;
  config.seed = 7;
  auto sketch = CreateSketch(family, config);
  sketch.status().CheckOK();
  const CscMatrix input = MakeSharedRowInput(n, cols, /*nnz_per_col=*/48,
                                             /*pool_size=*/192, /*seed=*/43);

  BatchedCost cost;
  // Baseline: the old path under the scalar kernels. Restoring afterwards
  // through SelectKernelsFromSpec re-applies the full --kernels >
  // SOSE_KERNELS > auto precedence, so the dispatched measurement sees
  // exactly what the rest of the run sees.
  sose::simd::SelectKernels("scalar", sose::simd::KernelSelectionSource::kFlag)
      .CheckOK();
  cost.sparse_scalar_ns_per_nnz =
      TimeNs(budget_seconds,
             [&] {
               benchmark::DoNotOptimize(
                   sketch.value()->ApplySparse(input).value());
             }) /
      static_cast<double>(input.nnz());
  sose::simd::SelectKernelsFromSpec(kernels_spec).CheckOK();
  cost.isa = sose::simd::ActiveIsaName();
  cost.batched_ns_per_nnz =
      TimeNs(budget_seconds,
             [&] {
               benchmark::DoNotOptimize(
                   sketch.value()->ApplyBatch(input).value());
             }) /
      static_cast<double>(input.nnz());
  cost.speedup = cost.sparse_scalar_ns_per_nnz / cost.batched_ns_per_nnz;
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  // benchmark::Initialize rejects flags it does not know, so the shared
  // --metrics/--kernels/--quick flags are extracted before the remaining
  // argv is handed over.
  std::string metrics_path;
  std::string kernels_spec;
  bool quick = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--metrics=", 0) == 0) {
      metrics_path = arg.substr(std::string("--metrics=").size());
      continue;
    }
    if (arg.rfind("--kernels=", 0) == 0) {
      kernels_spec = arg.substr(std::string("--kernels=").size());
      continue;
    }
    if (arg == "--quick") {
      quick = true;
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  sose::simd::SelectKernelsFromSpec(kernels_spec).CheckOK();
  std::printf("kernels: %s (source=%s, cpu=%s)\n",
              sose::simd::ActiveIsaName(),
              sose::simd::KernelSelectionSourceName(
                  sose::simd::ActiveSelectionSource()),
              sose::simd::CpuFeaturesToString(sose::simd::DetectCpuFeatures())
                  .c_str());
  // Quick mode skips the google-benchmark sweep (minutes of repetitions)
  // and shrinks the manual passes' time budget; the JSON keeps every key.
  if (!quick) benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const double budget_seconds = quick ? 0.02 : 0.1;

  sose::Stopwatch watch;
  const PathCost count_sketch = MeasurePaths("countsketch", 1, budget_seconds);
  const PathCost osnap = MeasurePaths("osnap", 4, budget_seconds);
  const BatchedCost batched_cs =
      MeasureBatched("countsketch", 1, kernels_spec, budget_seconds);
  const BatchedCost batched_osnap =
      MeasureBatched("osnap", 4, kernels_spec, budget_seconds);
  const double batched_speedup =
      std::min(batched_cs.speedup, batched_osnap.speedup);
  sose::JsonObjectWriter kernels = sose::bench::KernelsJson();
  kernels.AddString("countsketch", batched_cs.isa)
      .AddString("osnap_s4", batched_osnap.isa);
  sose::JsonObjectWriter writer;
  writer.AddString("experiment", "e9")
      .AddBool("quick", quick)
      .AddDouble("countsketch_csc_ns_per_nnz", count_sketch.csc_ns_per_nnz)
      .AddDouble("countsketch_dense_ns_per_nnz",
                 count_sketch.dense_ns_per_nnz)
      .AddDouble("countsketch_dense_over_csc",
                 count_sketch.dense_ns_per_nnz / count_sketch.csc_ns_per_nnz)
      .AddDouble("osnap_s4_csc_ns_per_nnz", osnap.csc_ns_per_nnz)
      .AddDouble("osnap_s4_dense_ns_per_nnz", osnap.dense_ns_per_nnz)
      .AddDouble("osnap_s4_dense_over_csc",
                 osnap.dense_ns_per_nnz / osnap.csc_ns_per_nnz)
      .AddDouble("countsketch_sparse_scalar_ns_per_nnz",
                 batched_cs.sparse_scalar_ns_per_nnz)
      .AddDouble("countsketch_batched_ns_per_nnz",
                 batched_cs.batched_ns_per_nnz)
      .AddDouble("countsketch_batched_speedup_vs_scalar", batched_cs.speedup)
      .AddDouble("osnap_s4_sparse_scalar_ns_per_nnz",
                 batched_osnap.sparse_scalar_ns_per_nnz)
      .AddDouble("osnap_s4_batched_ns_per_nnz",
                 batched_osnap.batched_ns_per_nnz)
      .AddDouble("osnap_s4_batched_speedup_vs_scalar", batched_osnap.speedup)
      // The headline number: worst family's batched-apply speedup over the
      // scalar per-entry baseline on the shared-row workload.
      .AddDouble("batched_apply_speedup_vs_scalar", batched_speedup)
      .AddDouble("comparison_wall_seconds", watch.ElapsedSeconds())
      .AddObject("kernels", kernels)
      .AddObject("metrics",
                 sose::metrics::ToJson(sose::metrics::Snapshot()));
  writer.WriteToFile("BENCH_e9.json").CheckOK();
  if (!metrics_path.empty()) {
    sose::metrics::WriteTextFile(metrics_path, sose::metrics::Snapshot())
        .CheckOK();
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  std::printf("wrote BENCH_e9.json (dense/CSC ratio: countsketch %.1fx, "
              "osnap-s4 %.1fx; batched-vs-scalar: countsketch %.2fx, "
              "osnap-s4 %.2fx on %s kernels)\n",
              count_sketch.dense_ns_per_nnz / count_sketch.csc_ns_per_nnz,
              osnap.dense_ns_per_nnz / osnap.csc_ns_per_nnz,
              batched_cs.speedup, batched_osnap.speedup,
              batched_osnap.isa.c_str());
  return 0;
}
