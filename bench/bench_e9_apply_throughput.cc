// E9 — the O(nnz(A) · s) apply-cost claim that motivates the whole paper:
// Count-Sketch applies in O(nnz(A)), OSNAP in O(nnz(A) · s), Gaussian in
// O(nnz(A) · m). google-benchmark kernels over sparse inputs.
#include <benchmark/benchmark.h>

#include "core/random.h"
#include "sketch/registry.h"
#include "workload/generators.h"

namespace {

using sose::CreateSketch;
using sose::CscMatrix;
using sose::SketchConfig;

CscMatrix MakeInput(int64_t n, int64_t cols, int64_t nnz_per_col) {
  sose::Rng rng(42);
  return sose::RandomSparseMatrix(n, cols, nnz_per_col, &rng).ValueOrDie();
}

void ApplySparseBench(benchmark::State& state, const std::string& family,
                      int64_t sparsity) {
  const int64_t n = state.range(0);
  const int64_t nnz_per_col = state.range(1);
  const int64_t m = 1024;
  const int64_t cols = 8;
  SketchConfig config;
  config.rows = m;
  config.cols = n;
  config.sparsity = sparsity;
  config.seed = 7;
  auto sketch = CreateSketch(family, config);
  sketch.status().CheckOK();
  const CscMatrix input = MakeInput(n, cols, nnz_per_col);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.value()->ApplySparse(input).value());
  }
  state.SetItemsProcessed(state.iterations() * input.nnz());
  state.counters["nnz"] = static_cast<double>(input.nnz());
  state.counters["s"] = static_cast<double>(sketch.value()->column_sparsity());
}

void BM_CountSketchApply(benchmark::State& state) {
  ApplySparseBench(state, "countsketch", 1);
}
void BM_OsnapApply_s4(benchmark::State& state) {
  ApplySparseBench(state, "osnap", 4);
}
void BM_OsnapApply_s16(benchmark::State& state) {
  ApplySparseBench(state, "osnap", 16);
}
void BM_GaussianApply(benchmark::State& state) {
  ApplySparseBench(state, "gaussian", 1);
}

// nnz scaling at fixed n: items/sec should be ~flat per family (linear in
// nnz), with per-item cost ratios ~ 1 : s : m across families.
BENCHMARK(BM_CountSketchApply)
    ->Args({1 << 16, 8})
    ->Args({1 << 16, 32})
    ->Args({1 << 16, 128})
    ->Args({1 << 18, 32});
BENCHMARK(BM_OsnapApply_s4)
    ->Args({1 << 16, 8})
    ->Args({1 << 16, 32})
    ->Args({1 << 16, 128})
    ->Args({1 << 18, 32});
BENCHMARK(BM_OsnapApply_s16)->Args({1 << 16, 32});
BENCHMARK(BM_GaussianApply)->Args({1 << 16, 8})->Args({1 << 16, 32});

// Dense apply for the structured fast transform (SRHT) vs explicit loops.
void BM_SrhtApplyVector(benchmark::State& state) {
  const int64_t n = state.range(0);
  SketchConfig config;
  config.rows = 1024;
  config.cols = n;
  config.seed = 9;
  auto sketch = CreateSketch("srht", config);
  sketch.status().CheckOK();
  sose::Rng rng(1);
  std::vector<double> x(static_cast<size_t>(n));
  for (double& v : x) v = rng.Gaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.value()->ApplyVector(x).value());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SrhtApplyVector)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16);

}  // namespace
