// E9 — the O(nnz(A) · s) apply-cost claim that motivates the whole paper:
// Count-Sketch applies in O(nnz(A)), OSNAP in O(nnz(A) · s), Gaussian in
// O(nnz(A) · m). google-benchmark kernels over sparse inputs, plus a
// dense-vs-CSC comparison pass: the same sketch applied to the densified
// input costs O(n · cols · s) instead, and the measured ratio is the
// machine-readable argument for the CSC fast paths (BENCH_e9.json).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/matrix.h"
#include "core/random.h"
#include "core/stopwatch.h"
#include "sketch/registry.h"
#include "workload/generators.h"

namespace {

using sose::CreateSketch;
using sose::CscMatrix;
using sose::SketchConfig;

CscMatrix MakeInput(int64_t n, int64_t cols, int64_t nnz_per_col) {
  sose::Rng rng(42);
  return sose::RandomSparseMatrix(n, cols, nnz_per_col, &rng).ValueOrDie();
}

void ApplySparseBench(benchmark::State& state, const std::string& family,
                      int64_t sparsity) {
  const int64_t n = state.range(0);
  const int64_t nnz_per_col = state.range(1);
  const int64_t m = 1024;
  const int64_t cols = 8;
  SketchConfig config;
  config.rows = m;
  config.cols = n;
  config.sparsity = sparsity;
  config.seed = 7;
  auto sketch = CreateSketch(family, config);
  sketch.status().CheckOK();
  const CscMatrix input = MakeInput(n, cols, nnz_per_col);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.value()->ApplySparse(input).value());
  }
  state.SetItemsProcessed(state.iterations() * input.nnz());
  state.counters["nnz"] = static_cast<double>(input.nnz());
  state.counters["s"] = static_cast<double>(sketch.value()->column_sparsity());
}

// Dense comparison: the same product through ApplyDense on the densified
// input. Items processed is still nnz of the sparse original, so the
// items/sec column is directly comparable with the CSC benches above and
// the gap is the price of ignoring sparsity.
void ApplyDenseBench(benchmark::State& state, const std::string& family,
                     int64_t sparsity) {
  const int64_t n = state.range(0);
  const int64_t nnz_per_col = state.range(1);
  const int64_t m = 1024;
  const int64_t cols = 8;
  SketchConfig config;
  config.rows = m;
  config.cols = n;
  config.sparsity = sparsity;
  config.seed = 7;
  auto sketch = CreateSketch(family, config);
  sketch.status().CheckOK();
  const CscMatrix input = MakeInput(n, cols, nnz_per_col);
  const sose::Matrix dense = input.ToDense();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.value()->ApplyDense(dense).value());
  }
  state.SetItemsProcessed(state.iterations() * input.nnz());
  state.counters["nnz"] = static_cast<double>(input.nnz());
  state.counters["dense_entries"] = static_cast<double>(n * cols);
}

void BM_CountSketchApply(benchmark::State& state) {
  ApplySparseBench(state, "countsketch", 1);
}
void BM_OsnapApply_s4(benchmark::State& state) {
  ApplySparseBench(state, "osnap", 4);
}
void BM_OsnapApply_s16(benchmark::State& state) {
  ApplySparseBench(state, "osnap", 16);
}
void BM_GaussianApply(benchmark::State& state) {
  ApplySparseBench(state, "gaussian", 1);
}
void BM_CountSketchApplyDense(benchmark::State& state) {
  ApplyDenseBench(state, "countsketch", 1);
}
void BM_OsnapApplyDense_s4(benchmark::State& state) {
  ApplyDenseBench(state, "osnap", 4);
}

// nnz scaling at fixed n: items/sec should be ~flat per family (linear in
// nnz), with per-item cost ratios ~ 1 : s : m across families.
BENCHMARK(BM_CountSketchApply)
    ->Args({1 << 16, 8})
    ->Args({1 << 16, 32})
    ->Args({1 << 16, 128})
    ->Args({1 << 18, 32});
BENCHMARK(BM_OsnapApply_s4)
    ->Args({1 << 16, 8})
    ->Args({1 << 16, 32})
    ->Args({1 << 16, 128})
    ->Args({1 << 18, 32});
BENCHMARK(BM_OsnapApply_s16)->Args({1 << 16, 32});
BENCHMARK(BM_GaussianApply)->Args({1 << 16, 8})->Args({1 << 16, 32});
// The dense column: one point per family is enough to expose the ratio.
BENCHMARK(BM_CountSketchApplyDense)->Args({1 << 14, 32});
BENCHMARK(BM_OsnapApplyDense_s4)->Args({1 << 14, 32});

// Dense apply for the structured fast transform (SRHT) vs explicit loops.
void BM_SrhtApplyVector(benchmark::State& state) {
  const int64_t n = state.range(0);
  SketchConfig config;
  config.rows = 1024;
  config.cols = n;
  config.seed = 9;
  auto sketch = CreateSketch("srht", config);
  sketch.status().CheckOK();
  sose::Rng rng(1);
  std::vector<double> x(static_cast<size_t>(n));
  for (double& v : x) v = rng.Gaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.value()->ApplyVector(x).value());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SrhtApplyVector)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16);

// Manual dense-vs-CSC pass for BENCH_e9.json: times each path until it has
// accumulated ~100ms of work and reports ns per input nonzero plus the
// dense/CSC cost ratio, in flat keys FindJsonNumber can read back.
struct PathCost {
  double csc_ns_per_nnz = 0.0;
  double dense_ns_per_nnz = 0.0;
};

PathCost MeasurePaths(const std::string& family, int64_t sparsity) {
  const int64_t n = 1 << 14;
  const int64_t cols = 8;
  SketchConfig config;
  config.rows = 1024;
  config.cols = n;
  config.sparsity = sparsity;
  config.seed = 7;
  auto sketch = CreateSketch(family, config);
  sketch.status().CheckOK();
  const CscMatrix input = MakeInput(n, cols, 32);
  const sose::Matrix dense = input.ToDense();

  auto time_ns = [&](auto&& apply) -> double {
    // Warm-up, then repeat until ~100ms has elapsed.
    apply();
    sose::Stopwatch watch;
    int64_t reps = 0;
    do {
      apply();
      ++reps;
    } while (watch.ElapsedSeconds() < 0.1 && reps < 10000);
    return watch.ElapsedSeconds() * 1e9 / static_cast<double>(reps);
  };
  PathCost cost;
  cost.csc_ns_per_nnz =
      time_ns([&] {
        benchmark::DoNotOptimize(sketch.value()->ApplySparse(input).value());
      }) /
      static_cast<double>(input.nnz());
  cost.dense_ns_per_nnz =
      time_ns([&] {
        benchmark::DoNotOptimize(sketch.value()->ApplyDense(dense).value());
      }) /
      static_cast<double>(input.nnz());
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  // benchmark::Initialize rejects flags it does not know, so the shared
  // --metrics flag is extracted before the remaining argv is handed over.
  std::string metrics_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--metrics=", 0) == 0) {
      metrics_path = arg.substr(std::string("--metrics=").size());
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  sose::Stopwatch watch;
  const PathCost count_sketch = MeasurePaths("countsketch", 1);
  const PathCost osnap = MeasurePaths("osnap", 4);
  sose::JsonObjectWriter writer;
  writer.AddString("experiment", "e9")
      .AddDouble("countsketch_csc_ns_per_nnz", count_sketch.csc_ns_per_nnz)
      .AddDouble("countsketch_dense_ns_per_nnz",
                 count_sketch.dense_ns_per_nnz)
      .AddDouble("countsketch_dense_over_csc",
                 count_sketch.dense_ns_per_nnz / count_sketch.csc_ns_per_nnz)
      .AddDouble("osnap_s4_csc_ns_per_nnz", osnap.csc_ns_per_nnz)
      .AddDouble("osnap_s4_dense_ns_per_nnz", osnap.dense_ns_per_nnz)
      .AddDouble("osnap_s4_dense_over_csc",
                 osnap.dense_ns_per_nnz / osnap.csc_ns_per_nnz)
      .AddDouble("comparison_wall_seconds", watch.ElapsedSeconds())
      .AddObject("metrics",
                 sose::metrics::ToJson(sose::metrics::Snapshot()));
  writer.WriteToFile("BENCH_e9.json").CheckOK();
  if (!metrics_path.empty()) {
    sose::metrics::WriteTextFile(metrics_path, sose::metrics::Snapshot())
        .CheckOK();
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  std::printf("wrote BENCH_e9.json (dense/CSC ratio: countsketch %.1fx, "
              "osnap-s4 %.1fx)\n",
              count_sketch.dense_ns_per_nnz / count_sketch.csc_ns_per_nnz,
              osnap.dense_ns_per_nnz / osnap.csc_ns_per_nnz);
  return 0;
}
