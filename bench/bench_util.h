#ifndef SOSE_BENCH_BENCH_UTIL_H_
#define SOSE_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>

#include "core/flags.h"
#include "core/json_io.h"
#include "core/metrics/metrics.h"
#include "core/parallel/thread_pool.h"
#include "core/simd/cpu_features.h"
#include "core/simd/dispatch.h"
#include "ose/failure_estimator.h"
#include "sketch/registry.h"

namespace sose::bench {

/// Prints the standard experiment banner: id, claim, and the shape the paper
/// predicts, so every bench's output is self-describing.
inline void PrintHeader(const char* id, const char* claim,
                        const char* predicted_shape) {
  std::printf("=== %s ===\n", id);
  std::printf("claim: %s\n", claim);
  std::printf("paper-predicted shape: %s\n\n", predicted_shape);
}

/// A SketchFactory for a registry family with fixed shape; the per-trial
/// seed becomes the draw's master seed.
inline SketchFactory MakeFactory(std::string family, int64_t m, int64_t n,
                                 int64_t sparsity) {
  return [family = std::move(family), m, n, sparsity](
             uint64_t seed) -> Result<std::unique_ptr<SketchingMatrix>> {
    SketchConfig config;
    config.rows = m;
    config.cols = n;
    config.sparsity = sparsity;
    config.seed = seed;
    return CreateSketch(family, config);
  };
}

/// Applies the shared `--kernels=scalar|auto|<isa>` override. Precedence is
/// --kernels > SOSE_KERNELS > auto; an unknown or unavailable spec exits
/// through CheckOK with the dispatcher's message (same hard-exit contract as
/// a malformed numeric flag). Prints the live decision so every bench log
/// states which kernels produced its numbers.
inline void ApplyKernelsFlag(const FlagParser& flags) {
  simd::SelectKernelsFromSpec(flags.GetString("kernels", "")).CheckOK();
  std::printf("kernels: %s (source=%s, cpu=%s)\n", simd::ActiveIsaName(),
              simd::KernelSelectionSourceName(simd::ActiveSelectionSource()),
              simd::CpuFeaturesToString(simd::DetectCpuFeatures()).c_str());
}

/// The `kernels` block embedded in every BENCH_<exp>.json: which kernel ISA
/// was live when the numbers were taken, who decided (flag/env/auto), what
/// the host offered, and what the CPU reports. This is the provenance that
/// makes two BENCH files comparable — a regression that coincides with
/// `isa` flipping to scalar is a dispatch problem, not a code problem.
inline JsonObjectWriter KernelsJson() {
  std::string available;
  for (const std::string& isa : simd::AvailableKernelIsas()) {
    if (!available.empty()) available += ",";
    available += isa;
  }
  JsonObjectWriter kernels;
  kernels.AddString("isa", simd::ActiveIsaName())
      .AddString("source", simd::KernelSelectionSourceName(
                               simd::ActiveSelectionSource()))
      .AddString("available", available)
      .AddString("cpu", simd::CpuFeaturesToString(simd::DetectCpuFeatures()));
  return kernels;
}

/// Reads the resilience flags shared by the Monte-Carlo benches
/// (`--max-retries`, `--error-budget`, `--deadline` seconds, `--threads`,
/// and the multi-process axis: `--workers`, `--heartbeat-timeout`,
/// `--max-shard-retries`, `--shard-backoff`) into estimator options, and
/// applies the `--kernels` override so kernel selection happens before any
/// trial runs. Benches with custom mains (E9) call ApplyKernelsFlag
/// themselves.
/// Checkpoint paths are wired per bench: each probe needs its own suffix so
/// concurrent probes never share a file.
///
/// `--workers=0` is rejected at the parser (the coordinator has no "auto"
/// worker count; 1 means in-process). Because the two parallelism axes are
/// mutually exclusive, `--workers=N` with no explicit `--threads` pins
/// threads to 1 instead of the usual auto default.
inline void ReadResilienceFlags(const FlagParser& flags,
                                EstimatorOptions* options) {
  ApplyKernelsFlag(flags);
  options->max_retries = flags.GetInt("max-retries", options->max_retries);
  options->error_budget =
      flags.GetDouble("error-budget", options->error_budget);
  options->deadline_seconds =
      flags.GetDouble("deadline", options->deadline_seconds);
  options->workers =
      static_cast<int>(flags.GetIntInRange("workers", 1, 1, 1024));
  options->heartbeat_timeout_seconds = flags.GetDouble(
      "heartbeat-timeout", options->heartbeat_timeout_seconds);
  options->max_shard_retries = flags.GetIntInRange(
      "max-shard-retries", options->max_shard_retries, 0, 1 << 20);
  options->backoff_initial_seconds =
      flags.GetDouble("shard-backoff", options->backoff_initial_seconds);
  // Shard-count override (0 = one shard per worker) and the worker
  // transport. `--transport=socket` needs `--agents=unix:/path,tcp:host:port`
  // plus a per-probe trial spec, which the Monte-Carlo benches derive from
  // their probe parameters (EstimatorOptions::trial_spec).
  options->shards =
      static_cast<int>(flags.GetIntInRange("shards", 0, 0, 1 << 20));
  options->transport = flags.GetString("transport", options->transport);
  options->agent_endpoints = flags.GetString("agents", "");
  const bool multiprocess = options->workers > 1 || options->shards > 1 ||
                            options->transport != "fork";
  const int default_threads = multiprocess ? 1 : 0;
  options->threads =
      static_cast<int>(flags.GetInt("threads", default_threads));
}

/// Writes BENCH_<experiment>.json next to the working directory: wall time,
/// resolved thread count, worker-process count, trial throughput, a nested
/// `kernels` block (the live SIMD dispatch decision, see KernelsJson), a
/// nested `metrics` block (the current metrics snapshot; empty objects under
/// SOSE_METRICS=OFF), and — once an explicit serial run has recorded its
/// wall time as the serial baseline — the speedup of the current run against
/// that baseline.
///
/// Baseline discipline: only `requested_threads == 1 && workers == 1` may
/// (over)write the baseline. A `--threads=0` run that *resolves* to one core
/// is still an auto-threaded run — letting it record a baseline would make
/// it report speedup 1.0 against itself — and a `--workers=N` run is
/// parallel regardless of its thread count. A recorded baseline is also only
/// trusted when it came from the same trial count
/// (`serial_baseline_trials`); a stale baseline from a different workload is
/// dropped rather than compared. Parallel runs carry a valid baseline
/// forward so the file stays self-contained; a missing baseline serialises
/// as null.
///
/// `resolved_threads` is split out of `requested_threads` so tests can pin a
/// host-independent resolution; production callers use the wrapper below.
inline Status WriteBenchJsonResolved(const std::string& experiment,
                                     int requested_threads,
                                     int resolved_threads, double wall_seconds,
                                     int64_t trials, int workers = 1,
                                     bool quick = false) {
  const std::string path = "BENCH_" + experiment + ".json";
  double baseline = std::nan("");
  if (requested_threads == 1 && workers == 1) {
    baseline = wall_seconds;
  } else {
    auto previous = ReadFileToString(path);
    if (previous.ok()) {
      double recorded = 0.0;
      double recorded_trials = 0.0;
      if (FindJsonNumber(previous.value(), "serial_baseline_seconds",
                         &recorded) &&
          FindJsonNumber(previous.value(), "serial_baseline_trials",
                         &recorded_trials) &&
          recorded_trials == static_cast<double>(trials)) {
        baseline = recorded;
      }
    }
  }
  const bool have_rate = trials > 0 && wall_seconds > 0.0;
  const bool have_speedup = std::isfinite(baseline) && wall_seconds > 0.0;
  JsonObjectWriter writer;
  writer.AddString("experiment", experiment)
      .AddInt("threads", resolved_threads)
      .AddInt("workers", workers)
      .AddDouble("wall_seconds", wall_seconds)
      .AddInt("trials", trials)
      // Provenance: a --quick run is a smoke-sized workload whose numbers
      // must never be compared against a full run's.
      .AddBool("quick", quick)
      .AddDouble("trials_per_sec", have_rate
                                       ? static_cast<double>(trials) /
                                             wall_seconds
                                       : std::nan(""))
      .AddDouble("serial_baseline_seconds", baseline)
      .AddInt("serial_baseline_trials",
              std::isfinite(baseline) ? trials : 0)
      .AddDouble("speedup_vs_serial",
                 have_speedup ? baseline / wall_seconds : std::nan(""))
      .AddObject("kernels", KernelsJson())
      .AddObject("metrics", metrics::ToJson(metrics::Snapshot()));
  SOSE_RETURN_IF_ERROR(writer.WriteToFile(path));
  std::printf("wrote %s (threads=%d, wall=%.3fs)\n", path.c_str(),
              resolved_threads, wall_seconds);
  return Status::OK();
}

inline Status WriteBenchJson(const std::string& experiment, int threads,
                             double wall_seconds, int64_t trials,
                             int workers = 1, bool quick = false) {
  return WriteBenchJsonResolved(experiment, threads,
                                ResolveThreadCount(threads), wall_seconds,
                                trials, workers, quick);
}

/// The shared bench epilogue: BENCH_<experiment>.json (with the embedded
/// `metrics` block) plus, when `--metrics=FILE` was passed, the text dump of
/// the same snapshot. Every bench main funnels through this.
inline Status FinishBench(const FlagParser& flags,
                          const std::string& experiment, int requested_threads,
                          double wall_seconds, int64_t trials,
                          int workers = 1) {
  SOSE_RETURN_IF_ERROR(WriteBenchJson(experiment, requested_threads,
                                      wall_seconds, trials, workers,
                                      flags.GetBool("quick", false)));
  const std::string metrics_path = flags.GetString("metrics", "");
  if (!metrics_path.empty()) {
    SOSE_RETURN_IF_ERROR(
        metrics::WriteTextFile(metrics_path, metrics::Snapshot()));
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  return Status::OK();
}

/// Formats the fault column of a bench table: "-" for a clean run, else
/// "<faulted> (<taxonomy>)", with "+partial" when a deadline truncated it.
inline std::string FaultCell(int64_t faulted, bool partial,
                             const TrialErrorTaxonomy& taxonomy) {
  if (faulted == 0 && !partial) return "-";
  std::string cell = std::to_string(faulted);
  if (faulted > 0) cell += " (" + taxonomy.ToString() + ")";
  if (partial) cell += " +partial";
  return cell;
}

}  // namespace sose::bench

#endif  // SOSE_BENCH_BENCH_UTIL_H_
