#ifndef SOSE_BENCH_BENCH_UTIL_H_
#define SOSE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>

#include "ose/failure_estimator.h"
#include "sketch/registry.h"

namespace sose::bench {

/// Prints the standard experiment banner: id, claim, and the shape the paper
/// predicts, so every bench's output is self-describing.
inline void PrintHeader(const char* id, const char* claim,
                        const char* predicted_shape) {
  std::printf("=== %s ===\n", id);
  std::printf("claim: %s\n", claim);
  std::printf("paper-predicted shape: %s\n\n", predicted_shape);
}

/// A SketchFactory for a registry family with fixed shape; the per-trial
/// seed becomes the draw's master seed.
inline SketchFactory MakeFactory(std::string family, int64_t m, int64_t n,
                                 int64_t sparsity) {
  return [family = std::move(family), m, n, sparsity](
             uint64_t seed) -> Result<std::unique_ptr<SketchingMatrix>> {
    SketchConfig config;
    config.rows = m;
    config.cols = n;
    config.sparsity = sparsity;
    config.seed = seed;
    return CreateSketch(family, config);
  };
}

}  // namespace sose::bench

#endif  // SOSE_BENCH_BENCH_UTIL_H_
