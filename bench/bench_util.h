#ifndef SOSE_BENCH_BENCH_UTIL_H_
#define SOSE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>

#include "core/flags.h"
#include "ose/failure_estimator.h"
#include "sketch/registry.h"

namespace sose::bench {

/// Prints the standard experiment banner: id, claim, and the shape the paper
/// predicts, so every bench's output is self-describing.
inline void PrintHeader(const char* id, const char* claim,
                        const char* predicted_shape) {
  std::printf("=== %s ===\n", id);
  std::printf("claim: %s\n", claim);
  std::printf("paper-predicted shape: %s\n\n", predicted_shape);
}

/// A SketchFactory for a registry family with fixed shape; the per-trial
/// seed becomes the draw's master seed.
inline SketchFactory MakeFactory(std::string family, int64_t m, int64_t n,
                                 int64_t sparsity) {
  return [family = std::move(family), m, n, sparsity](
             uint64_t seed) -> Result<std::unique_ptr<SketchingMatrix>> {
    SketchConfig config;
    config.rows = m;
    config.cols = n;
    config.sparsity = sparsity;
    config.seed = seed;
    return CreateSketch(family, config);
  };
}

/// Reads the resilience flags shared by the Monte-Carlo benches
/// (`--max-retries`, `--error-budget`, `--deadline` seconds) into estimator
/// options. Checkpoint paths are wired per bench: each probe needs its own
/// suffix so concurrent probes never share a file.
inline void ReadResilienceFlags(const FlagParser& flags,
                                EstimatorOptions* options) {
  options->max_retries = flags.GetInt("max-retries", options->max_retries);
  options->error_budget =
      flags.GetDouble("error-budget", options->error_budget);
  options->deadline_seconds =
      flags.GetDouble("deadline", options->deadline_seconds);
}

/// Formats the fault column of a bench table: "-" for a clean run, else
/// "<faulted> (<taxonomy>)", with "+partial" when a deadline truncated it.
inline std::string FaultCell(int64_t faulted, bool partial,
                             const TrialErrorTaxonomy& taxonomy) {
  if (faulted == 0 && !partial) return "-";
  std::string cell = std::to_string(faulted);
  if (faulted > 0) cell += " (" + taxonomy.ToString() + ")";
  if (partial) cell += " +partial";
  return cell;
}

}  // namespace sose::bench

#endif  // SOSE_BENCH_BENCH_UTIL_H_
