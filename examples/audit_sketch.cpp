// Audit any sketch against the paper's lower-bound attack.
//
//   ./audit_sketch --sketch=countsketch --m=64 --d=8 --eps=0.1 --delta=0.1
//
// Prints the audit verdict: whether the configured sketch is certifiably
// not an (eps, delta)-subspace-embedding for d-dimensional subspaces, with
// the concrete Lemma 4 witness when one exists. This is the library's
// "adversarial certifier" — the paper's proof turned into a tool.
#include <cstdio>
#include <string>

#include "core/flags.h"
#include "lowerbound/audit.h"
#include "sketch/registry.h"

int main(int argc, char** argv) {
  sose::FlagParser flags(argc, argv);
  const std::string family = flags.GetString("sketch", "countsketch");
  const int64_t m = flags.GetInt("m", 64);
  const int64_t d = flags.GetInt("d", 8);
  const int64_t n = flags.GetInt("n", 1 << 18);
  const int64_t sparsity = flags.GetInt("s", 4);

  sose::AuditParams params;
  params.d = d;
  params.epsilon = flags.GetDouble("eps", 0.1);
  params.delta = flags.GetDouble("delta", 0.1);
  params.num_instances = flags.GetInt("instances", 200);
  params.anti_trials = flags.GetInt("anti_trials", 4000);
  params.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  sose::SketchConfig config;
  config.rows = m;
  config.cols = n;
  config.sparsity = sparsity;
  config.seed = params.seed + 1;
  auto sketch = sose::CreateSketch(family, config);
  if (!sketch.ok()) {
    std::fprintf(stderr, "cannot create sketch: %s\n",
                 sketch.status().ToString().c_str());
    std::fprintf(stderr, "known families:");
    for (const std::string& name : sose::KnownSketchFamilies()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }

  std::printf("auditing %s with m = %lld rows as a (%.3g, %.3g)-OSE for "
              "d = %lld...\n\n",
              sketch.value()->name().c_str(), static_cast<long long>(m),
              params.epsilon, params.delta, static_cast<long long>(d));

  auto report = sose::AuditSketch(*sketch.value(), params);
  report.status().CheckOK();
  std::printf("%s\n\n", report.value().summary.c_str());
  if (report.value().witness.has_value()) {
    const sose::ViolationWitness& witness = *report.value().witness;
    std::printf("witness detail:\n"
                "  generators (p, q) = (%lld, %lld) in U-columns (%lld, %lld)\n"
                "  <Pi_{C_p}, Pi_{C_q}> = %+.4f\n"
                "  anti-concentration of ||PiUu||^2 over %lld sign draws:\n"
                "    above (1+eps)^2: %.4f   below (1-eps)^2: %.4f   "
                "outside: %.4f (Lemma 4: >= 0.25)\n",
                static_cast<long long>(witness.gen_p),
                static_cast<long long>(witness.gen_q),
                static_cast<long long>(witness.col_p),
                static_cast<long long>(witness.col_q),
                witness.inner_product,
                static_cast<long long>(params.anti_trials),
                report.value().anti_concentration.fraction_above,
                report.value().anti_concentration.fraction_below,
                report.value().anti_concentration.fraction_outside);
  }
  const bool violated =
      report.value().verdict == sose::AuditVerdict::kViolationCertified;
  std::printf("\nhint: Theorem 8's scale for s = 1 is m ~ d^2/(eps^2 delta) "
              "= %.0f.\n",
              static_cast<double>(d) * static_cast<double>(d) /
                  (params.epsilon * params.epsilon * params.delta));
  return violated ? 1 : 0;
}
