// The paper's lower-bound machinery, run live on a real Count-Sketch draw.
//
//   ./lower_bound_demo [--d=8] [--eps=0.1] [--m=32] [--seed=2]
//
// Walks the full Theorem 8 / Lemma 4 pipeline:
//   1. draw Π (Count-Sketch) with deliberately few rows,
//   2. draw the hard instance U ~ D₁,
//   3. find a colliding pair of sketch columns (the birthday-paradox event),
//   4. build Lemma 4's violating unit vector u,
//   5. verify the anti-concentration of ‖ΠUu‖² empirically.
#include <cstdio>

#include "core/flags.h"
#include "core/random.h"
#include "hardinstance/d_beta.h"
#include "lowerbound/collision.h"
#include "lowerbound/witness.h"
#include "ose/distortion.h"
#include "sketch/count_sketch.h"

int main(int argc, char** argv) {
  sose::FlagParser flags(argc, argv);
  const int64_t d = flags.GetInt("d", 8);
  const double epsilon = flags.GetDouble("eps", 0.1);
  const int64_t m = flags.GetInt("m", 32);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 2));
  const int64_t n = 1 << 20;

  std::printf("Theorem 8 in action: Count-Sketch with m = %lld rows on the\n"
              "hard distribution D_1 over %lld-dimensional subspaces "
              "(epsilon = %g)\n\n",
              static_cast<long long>(m), static_cast<long long>(d), epsilon);

  auto sampler = sose::DBetaSampler::Create(n, d, 1);
  sampler.status().CheckOK();

  sose::Rng rng(seed);
  for (uint64_t attempt = 0;; ++attempt) {
    auto sketch = sose::CountSketch::Create(m, n, seed + attempt);
    sketch.status().CheckOK();
    sose::HardInstance instance = sampler.value().Sample(&rng);
    while (instance.HasRowCollision()) {
      instance = sampler.value().Sample(&rng);
    }

    // Step 1: the balls-into-bins picture.
    const sose::BirthdayStats birthday =
        sose::CountSketchBirthday(sketch.value(), instance);
    std::printf("draw %llu: %lld active coordinates into %lld buckets -> "
                "%lld colliding pair(s)\n",
                static_cast<unsigned long long>(attempt),
                static_cast<long long>(birthday.balls),
                static_cast<long long>(birthday.bins),
                static_cast<long long>(birthday.collisions));
    if (!birthday.any_collision) {
      std::printf("  no collision; redrawing "
                  "(analytic collision probability: %.3f)\n",
                  sose::BirthdayCollisionProbability(birthday.balls, m));
      continue;
    }

    // Step 2: the embedding actually breaks.
    auto report =
        sose::SketchDistortionOnInstance(*&sketch.value(), instance);
    report.status().CheckOK();
    std::printf("  distortion of Pi on span(U): [%.4f, %.4f] -> epsilon = "
                "%.4f (target %.4f)\n",
                report.value().min_factor, report.value().max_factor,
                report.value().Epsilon(), epsilon);

    // Step 3: the witness pair the proof of Lemma 4 uses.
    auto witness = sose::FindLargeInnerProductPair(sketch.value(), instance,
                                                   5.0 * epsilon);
    witness.status().CheckOK();
    if (!witness.value().has_value()) {
      std::printf("  (no inner-product witness at threshold; redrawing)\n");
      continue;
    }
    std::printf("  witness: sketch columns of generators %lld and %lld have "
                "<Pi_p, Pi_q> = %+.3f\n",
                static_cast<long long>(witness.value()->gen_p),
                static_cast<long long>(witness.value()->gen_q),
                witness.value()->inner_product);
    std::printf("  violating direction: u = (e_%lld + e_%lld)/sqrt(2)\n",
                static_cast<long long>(witness.value()->col_p),
                static_cast<long long>(witness.value()->col_q));

    // Step 4: Lemma 4's anti-concentration, measured.
    auto anti = sose::VerifyAntiConcentration(sketch.value(), instance,
                                              *witness.value(), epsilon,
                                              /*trials=*/20000, seed + 99);
    anti.status().CheckOK();
    std::printf("\nLemma 4 check over 20000 sign resamplings:\n"
                "  Pr[ ||PiUu||^2 > (1+eps)^2 ] = %.4f\n"
                "  Pr[ ||PiUu||^2 < (1-eps)^2 ] = %.4f\n"
                "  Pr[ outside ]               = %.4f  (lemma guarantees >= "
                "0.25)\n",
                anti.value().fraction_above, anti.value().fraction_below,
                anti.value().fraction_outside);
    std::printf("\nConclusion: with m far below d^2/(eps^2 delta) = %g, a "
                "collision is\nlikely, and every collision forces a 1/4-"
                "probability embedding failure —\nwhich is exactly why "
                "Count-Sketch cannot run below Theta(d^2/(eps^2 delta)).\n",
                static_cast<double>(d * d) / (epsilon * epsilon * 0.1));
    return 0;
  }
}
