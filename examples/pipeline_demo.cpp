// Composed sketch pipelines: combine a sparse first stage (input-sparsity
// apply time) with a dense second stage (optimal final dimension), the
// standard way practice navigates the trade-off the paper proves is
// unavoidable for any single sparse stage.
//
//   ./pipeline_demo [--n=65536] [--d=8] [--seed=6]
#include <cstdio>
#include <memory>

#include "core/flags.h"
#include "core/random.h"
#include "core/stopwatch.h"
#include "core/table.h"
#include "hardinstance/d_beta.h"
#include "ose/distortion.h"
#include "ose/isometry.h"
#include "sketch/composed.h"
#include "sketch/count_sketch.h"
#include "sketch/gaussian.h"
#include "workload/generators.h"

int main(int argc, char** argv) {
  sose::FlagParser flags(argc, argv);
  const int64_t n = flags.GetInt("n", 1 << 17);
  const int64_t d = flags.GetInt("d", 16);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 6));
  const int64_t mid = 32 * d;   // Count-Sketch stage: cheap but large.
  const int64_t final_m = 8 * d;  // Gaussian stage: expensive but tight.

  std::printf("pipeline: countsketch %lld->%lld, then gaussian %lld->%lld\n\n",
              static_cast<long long>(n), static_cast<long long>(mid),
              static_cast<long long>(mid), static_cast<long long>(final_m));

  auto inner = std::make_shared<sose::CountSketch>(
      sose::CountSketch::Create(mid, n, seed).ValueOrDie());
  auto outer = std::make_shared<sose::GaussianSketch>(
      sose::GaussianSketch::Create(final_m, mid, seed + 1).ValueOrDie());
  auto pipeline = sose::ComposedSketch::Create(outer, inner).ValueOrDie();

  // Single-stage baselines at the same FINAL dimension.
  auto direct_gaussian = sose::GaussianSketch::Create(final_m, n, seed + 2)
                             .ValueOrDie();
  auto direct_countsketch =
      sose::CountSketch::Create(final_m, n, seed + 3).ValueOrDie();

  // A tall input with plenty of nonzeros: the regime where the dense
  // stage's per-nonzero cost m dominates a direct apply.
  sose::Rng rng(seed + 4);
  const sose::CscMatrix input =
      sose::RandomSparseMatrix(n, d, 4096, &rng).ValueOrDie();
  sose::Matrix basis = sose::RandomIsometry(4096, d, &rng).ValueOrDie();

  sose::AsciiTable table({"sketch", "final m", "apply ms (sparse A)",
                          "eps: random subspace", "fail rate: hard D_1"});
  struct Row {
    const char* label;
    const sose::SketchingMatrix* sketch;
  };
  const Row rows[] = {
      {"countsketch*gaussian (pipeline)", &pipeline},
      {"gaussian direct", &direct_gaussian},
      {"countsketch direct", &direct_countsketch},
  };
  auto hard_sampler = sose::DBetaSampler::Create(n, d, 1);
  hard_sampler.status().CheckOK();
  for (const Row& row : rows) {
    sose::Stopwatch watch;
    const sose::Matrix sketched = row.sketch->ApplySparse(input).ValueOrDie();
    const double apply_ms = watch.ElapsedMillis();
    (void)sketched;
    // Distortion on a moderate-n random subspace with a same-family draw
    // (the pipeline's structure, not this exact draw, is what matters).
    sose::DistortionReport report{};
    if (row.sketch == &pipeline) {
      auto small_inner = std::make_shared<sose::CountSketch>(
          sose::CountSketch::Create(mid, 4096, seed + 5).ValueOrDie());
      auto small =
          sose::ComposedSketch::Create(outer, small_inner).ValueOrDie();
      report = sose::SketchDistortionOnIsometry(small, basis).ValueOrDie();
    } else if (row.sketch == &direct_gaussian) {
      auto small =
          sose::GaussianSketch::Create(final_m, 4096, seed + 6).ValueOrDie();
      report = sose::SketchDistortionOnIsometry(small, basis).ValueOrDie();
    } else {
      auto small =
          sose::CountSketch::Create(final_m, 4096, seed + 7).ValueOrDie();
      report = sose::SketchDistortionOnIsometry(small, basis).ValueOrDie();
    }
    // Failure rate on the sparse hard instance D_1 (the paper's regime):
    // this is where the single sparse stage at m = 8d < d^2 breaks.
    int failures = 0;
    constexpr int kHardTrials = 40;
    for (int t = 0; t < kHardTrials; ++t) {
      sose::HardInstance instance = hard_sampler.value().Sample(&rng);
      while (instance.HasRowCollision()) {
        instance = hard_sampler.value().Sample(&rng);
      }
      auto hard_report =
          sose::SketchDistortionOnInstance(*row.sketch, instance);
      hard_report.status().CheckOK();
      if (!hard_report.value().WithinEpsilon(0.5)) ++failures;
    }
    table.NewRow();
    table.AddCell(row.label);
    table.AddInt(row.sketch->rows());
    table.AddDouble(apply_ms, 4);
    table.AddDouble(report.Epsilon(), 4);
    table.AddDouble(static_cast<double>(failures) / kHardTrials, 4);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "The pipeline applies ~nnz-time (its first stage is s = 1) yet\n"
      "reaches the dense stage's small final dimension AND survives the\n"
      "hard instances (its countsketch stage runs at mid = 32d >= d^2,\n"
      "which Theorem 8 permits). The direct Count-Sketch at the same final\n"
      "m = 8d < d^2 is exactly what Theorem 8 forbids - and the hard-D_1\n"
      "column shows it failing.\n");
  return 0;
}
