// Quickstart: create sparse sketches, apply them to a matrix, and measure
// how well each preserves a random subspace.
//
//   ./quickstart [--n=4096] [--d=8] [--m=256] [--seed=1]
//
// This is the 60-second tour of the library's core loop:
//   registry -> SketchingMatrix -> ApplyDense -> DistortionReport.
#include <cstdio>

#include "core/flags.h"
#include "core/random.h"
#include "core/table.h"
#include "ose/distortion.h"
#include "ose/isometry.h"
#include "sketch/registry.h"

int main(int argc, char** argv) {
  sose::FlagParser flags(argc, argv);
  const int64_t n = flags.GetInt("n", 4096);
  const int64_t d = flags.GetInt("d", 8);
  const int64_t m = flags.GetInt("m", 256);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  std::printf("sose quickstart: sketching a %lld-dimensional subspace of "
              "R^%lld down to %lld rows\n\n",
              static_cast<long long>(d), static_cast<long long>(n),
              static_cast<long long>(m));

  // A random d-dimensional subspace, represented by an orthonormal basis.
  sose::Rng rng(seed);
  sose::Matrix basis =
      sose::RandomIsometry(n, d, &rng).ValueOrDie();

  sose::AsciiTable table({"sketch", "s (col nnz)", "min ‖ΠUx‖/‖Ux‖",
                          "max ‖ΠUx‖/‖Ux‖", "distortion ε"});
  for (const std::string family :
       {"countsketch", "osnap", "sparsejl", "srht", "gaussian"}) {
    sose::SketchConfig config;
    config.rows = m;
    config.cols = n;
    config.sparsity = 4;
    config.seed = seed;
    auto sketch = sose::CreateSketch(family, config);
    sketch.status().CheckOK();
    auto report =
        sose::SketchDistortionOnIsometry(*sketch.value(), basis);
    report.status().CheckOK();
    table.NewRow();
    table.AddCell(family);
    table.AddInt(sketch.value()->column_sparsity());
    table.AddDouble(report.value().min_factor);
    table.AddDouble(report.value().max_factor);
    table.AddDouble(report.value().Epsilon());
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Every sketch above was applied obliviously: its columns are a pure\n"
      "function of (seed, column index), so nothing about the subspace was\n"
      "used when drawing it.\n");
  return 0;
}
