// Sketch-and-solve least squares: the workload that motivates sparse OSEs.
//
//   ./regression_demo [--n=2048] [--d=12] [--noise=1.0] [--seed=3]
//
// Solves min_x ‖Ax − b‖ exactly, then via Π(A, b) for each sketch family at
// several target dimensions, reporting wall time and residual suboptimality.
#include <cstdio>

#include "apps/regression.h"
#include "core/flags.h"
#include "core/random.h"
#include "core/stopwatch.h"
#include "core/table.h"
#include "sketch/registry.h"
#include "workload/generators.h"

int main(int argc, char** argv) {
  sose::FlagParser flags(argc, argv);
  const int64_t n = flags.GetInt("n", 2048);
  const int64_t d = flags.GetInt("d", 12);
  const double noise = flags.GetDouble("noise", 1.0);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 3));

  sose::Rng rng(seed);
  auto instance = sose::MakeRegressionInstance(
      n, d, noise, sose::DesignKind::kIncoherent, &rng);
  instance.status().CheckOK();
  const sose::Matrix& a = instance.value().a;
  const std::vector<double>& b = instance.value().b;

  sose::Stopwatch watch;
  auto exact = sose::SolveLeastSquares(a, b);
  exact.status().CheckOK();
  const double exact_ms = watch.ElapsedMillis();
  std::printf("exact QR solve: residual %.6g (%.2f ms)\n\n",
              exact.value().residual_norm, exact_ms);

  sose::AsciiTable table(
      {"sketch", "m", "residual ratio", "solve ms", "speedup"});
  for (const std::string family : {"countsketch", "osnap", "gaussian"}) {
    for (int64_t m : {4 * d, 16 * d, 64 * d}) {
      sose::SketchConfig config;
      config.rows = m;
      config.cols = n;
      config.sparsity = 4;
      config.seed = seed + static_cast<uint64_t>(m);
      auto sketch = sose::CreateSketch(family, config);
      sketch.status().CheckOK();
      watch.Restart();
      auto sketched = sose::SketchAndSolve(*sketch.value(), a, b);
      const double sketched_ms = watch.ElapsedMillis();
      sketched.status().CheckOK();
      auto ratio = sose::ResidualRatio(a, b, sketched.value().x);
      ratio.status().CheckOK();
      table.NewRow();
      table.AddCell(family);
      table.AddInt(m);
      table.AddDouble(ratio.value(), 6);
      table.AddDouble(sketched_ms, 3);
      table.AddDouble(exact_ms / sketched_ms, 3);
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "A residual ratio of 1 + O(ε) certifies the sketch acted as an\n"
      "ε-subspace-embedding for span([A b]). Count-Sketch gets there with a\n"
      "single nonzero per column — the regime whose optimality the paper\n"
      "settles — while Gaussian pays dense apply cost for a smaller m.\n");
  return 0;
}
