// Streaming / turnstile sketch maintenance: rows of A arrive one at a time
// (with deletions), and Π A is maintained incrementally; two shards merge
// by addition. At the end, the accumulated state solves a least-squares
// problem no pass over the raw stream could.
//
//   ./streaming_demo [--n=100000] [--d=6] [--m=512] [--seed=8]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "core/flags.h"
#include "core/linalg_qr.h"
#include "core/random.h"
#include "core/vector_ops.h"
#include "sketch/accumulator.h"
#include "sketch/count_sketch.h"

int main(int argc, char** argv) {
  sose::FlagParser flags(argc, argv);
  const int64_t n = flags.GetInt("n", 100000);
  const int64_t d = flags.GetInt("d", 6);
  const int64_t m = flags.GetInt("m", 512);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 8));

  std::printf("turnstile stream: %lld row updates of a %lld-column design, "
              "sketched to %lld rows on the fly\n\n",
              static_cast<long long>(n), static_cast<long long>(d + 1),
              static_cast<long long>(m));

  // One shared Count-Sketch draw; two shards processing disjoint halves of
  // the stream (e.g. two machines), merged at the end.
  auto sketch = std::make_shared<sose::CountSketch>(
      sose::CountSketch::Create(m, n, seed).ValueOrDie());
  // The accumulator carries [A b] jointly: d design columns plus the target.
  auto shard_a = sose::SketchAccumulator::Create(sketch, d + 1).ValueOrDie();
  auto shard_b = sose::SketchAccumulator::Create(sketch, d + 1).ValueOrDie();

  // Planted model: b_i = <row_i, x*> + noise.
  sose::Rng rng(seed + 1);
  std::vector<double> x_true(static_cast<size_t>(d));
  for (double& v : x_true) v = rng.Gaussian();
  int64_t deletions = 0;
  for (int64_t i = 0; i < n; ++i) {
    std::vector<double> update(static_cast<size_t>(d) + 1);
    double target = 0.1 * rng.Gaussian();
    for (int64_t j = 0; j < d; ++j) {
      update[static_cast<size_t>(j)] = rng.Gaussian();
      target += update[static_cast<size_t>(j)] * x_true[static_cast<size_t>(j)];
    }
    update[static_cast<size_t>(d)] = target;
    sose::SketchAccumulator& shard = (i % 2 == 0) ? shard_a : shard_b;
    shard.AddRow(i, update).CheckOK();
    // Occasionally a correction arrives: retract 10% of rows entirely
    // (turnstile deletions — just negative updates).
    if (rng.Bernoulli(0.1)) {
      for (double& v : update) v = -v;
      shard.AddRow(i, update).CheckOK();
      ++deletions;
    }
  }
  shard_a.Merge(shard_b).CheckOK();
  std::printf("processed %lld updates (%lld full retractions), merged 2 "
              "shards; sketch state is %lldx%lld\n",
              static_cast<long long>(n), static_cast<long long>(deletions),
              static_cast<long long>(shard_a.state().rows()),
              static_cast<long long>(shard_a.state().cols()));

  // Solve the sketched least squares from the accumulated state alone.
  const sose::Matrix& state = shard_a.state();
  sose::Matrix sketched_a(m, d);
  std::vector<double> sketched_b(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < d; ++j) sketched_a.At(i, j) = state.At(i, j);
    sketched_b[static_cast<size_t>(i)] = state.At(i, d);
  }
  auto qr = sose::HouseholderQr::Factor(sketched_a).ValueOrDie();
  auto x_hat = qr.SolveLeastSquares(sketched_b).ValueOrDie();

  std::printf("\nrecovered coefficients vs planted:\n");
  double worst = 0.0;
  for (int64_t j = 0; j < d; ++j) {
    std::printf("  x[%lld] = %+0.4f   (true %+0.4f)\n",
                static_cast<long long>(j), x_hat[static_cast<size_t>(j)],
                x_true[static_cast<size_t>(j)]);
    worst = std::max(worst, std::fabs(x_hat[static_cast<size_t>(j)] -
                                      x_true[static_cast<size_t>(j)]));
  }
  std::printf("\nmax coefficient error: %.4f — recovered from a %lldx%lld "
              "sketch of a stream that was never stored.\n",
              worst, static_cast<long long>(m),
              static_cast<long long>(d + 1));
  return 0;
}
