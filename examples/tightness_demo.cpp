// Remark 10's tightness witness: a deterministic block-Hadamard sketch with
// m = O(d²) rows and column sparsity 1/(8ε) embeds D₁ essentially perfectly,
// matching the paper's Theorem 9 lower bound from above.
//
//   ./tightness_demo [--d=16] [--b=8] [--trials=200] [--seed=4]
#include <cstdio>

#include "core/flags.h"
#include "core/random.h"
#include "core/table.h"
#include "hardinstance/d_beta.h"
#include "ose/distortion.h"
#include "sketch/block_hadamard.h"
#include "sketch/osnap.h"

int main(int argc, char** argv) {
  sose::FlagParser flags(argc, argv);
  const int64_t d = flags.GetInt("d", 16);
  const int64_t b = flags.GetInt("b", 8);  // Block order = 1/(8ε).
  const int64_t trials = flags.GetInt("trials", 200);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 4));
  const int64_t n = 1 << 20;
  const double epsilon = 1.0 / (8.0 * static_cast<double>(b));

  std::printf("Remark 10: block-Hadamard Pi with block order b = %lld "
              "(so s = %lld, eps = %g)\nagainst random OSNAP at the same "
              "(m, s) budget, on U ~ D_1 with d = %lld.\n\n",
              static_cast<long long>(b), static_cast<long long>(b), epsilon,
              static_cast<long long>(d));

  auto sampler = sose::DBetaSampler::Create(n, d, 1);
  sampler.status().CheckOK();

  sose::AsciiTable table({"m / d^2", "m", "hadamard: fail rate",
                          "hadamard: mean eps", "osnap: fail rate",
                          "osnap: mean eps"});
  for (double ratio : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    int64_t m = static_cast<int64_t>(ratio * static_cast<double>(d * d));
    m = std::max<int64_t>(b, (m / b) * b);  // Block order must divide m.
    auto hadamard = sose::BlockHadamard::Create(m, n, b);
    hadamard.status().CheckOK();
    int hadamard_failures = 0;
    double hadamard_eps = 0.0;
    int osnap_failures = 0;
    double osnap_eps = 0.0;
    sose::Rng rng(seed + static_cast<uint64_t>(m));
    for (int64_t t = 0; t < trials; ++t) {
      sose::HardInstance instance = sampler.value().Sample(&rng);
      while (instance.HasRowCollision()) {
        instance = sampler.value().Sample(&rng);
      }
      auto h_report =
          sose::SketchDistortionOnInstance(hadamard.value(), instance);
      h_report.status().CheckOK();
      hadamard_eps += h_report.value().Epsilon();
      if (!h_report.value().WithinEpsilon(epsilon)) ++hadamard_failures;

      auto osnap = sose::Osnap::Create(m, n, b,
                                       seed + static_cast<uint64_t>(1000 + t));
      osnap.status().CheckOK();
      auto o_report =
          sose::SketchDistortionOnInstance(osnap.value(), instance);
      o_report.status().CheckOK();
      osnap_eps += o_report.value().Epsilon();
      if (!o_report.value().WithinEpsilon(epsilon)) ++osnap_failures;
    }
    table.NewRow();
    table.AddDouble(ratio);
    table.AddInt(m);
    table.AddDouble(static_cast<double>(hadamard_failures) /
                    static_cast<double>(trials));
    table.AddDouble(hadamard_eps / static_cast<double>(trials));
    table.AddDouble(static_cast<double>(osnap_failures) /
                    static_cast<double>(trials));
    table.AddDouble(osnap_eps / static_cast<double>(trials));
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "The aligned Hadamard blocks make colliding columns exactly\n"
      "orthogonal, so the deterministic construction is a (0, delta)-"
      "embedding\nonce m = O(d^2) — the upper bound that pins the paper's "
      "d^2 lower bound.\n");
  return 0;
}
