#include "apps/cca.h"

#include <algorithm>
#include <cmath>

#include "core/linalg_qr.h"
#include "core/linalg_svd.h"

namespace sose {

namespace {

Result<std::vector<double>> CcaFromViews(const Matrix& x, const Matrix& y) {
  if (x.rows() != y.rows()) {
    return Status::InvalidArgument("CCA: views must share their row count");
  }
  SOSE_ASSIGN_OR_RETURN(Matrix qx, Orthonormalize(x));
  SOSE_ASSIGN_OR_RETURN(Matrix qy, Orthonormalize(y));
  const Matrix cross = MatMulTransposeA(qx, qy);  // p x q.
  SOSE_ASSIGN_OR_RETURN(std::vector<double> sigma, SingularValues(cross));
  // Clamp the tiny numerical overshoots above 1.
  for (double& value : sigma) value = std::clamp(value, 0.0, 1.0);
  return sigma;
}

}  // namespace

Result<std::vector<double>> ExactCca(const Matrix& x, const Matrix& y) {
  return CcaFromViews(x, y);
}

Result<std::vector<double>> SketchedCca(const SketchingMatrix& sketch,
                                        const Matrix& x, const Matrix& y) {
  if (sketch.cols() != x.rows() || sketch.cols() != y.rows()) {
    return Status::InvalidArgument(
        "SketchedCca: sketch ambient dimension != rows of the views");
  }
  SOSE_ASSIGN_OR_RETURN(Matrix sketched_x, sketch.ApplyDense(x));
  SOSE_ASSIGN_OR_RETURN(Matrix sketched_y, sketch.ApplyDense(y));
  return CcaFromViews(sketched_x, sketched_y);
}

double MaxCorrelationError(const std::vector<double>& a,
                           const std::vector<double>& b) {
  SOSE_CHECK(a.size() == b.size());
  double worst = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(a[i] - b[i]));
  }
  return worst;
}

}  // namespace sose
