#ifndef SOSE_APPS_CCA_H_
#define SOSE_APPS_CCA_H_

#include <vector>

#include "core/matrix.h"
#include "core/status.h"
#include "sketch/sketch.h"

namespace sose {

/// Canonical correlation analysis between two views X (n x p) and
/// Y (n x q): the canonical correlations are the singular values of
/// Q_xᵀ Q_y where X = Q_x R_x and Y = Q_y R_y are thin QR factorizations.
/// Returns min(p, q) values in [0, 1], descending. Requires both views to
/// have full column rank.
///
/// CCA is one of the applications the paper's introduction cites for
/// subspace embeddings ([ABTZ14]): the correlations depend only on the
/// geometry between the two column spaces, which an OSE preserves.
[[nodiscard]] Result<std::vector<double>> ExactCca(const Matrix& x, const Matrix& y);

/// Sketched CCA (Avron–Boutsidis–Toledo–Zouzias): apply the SAME sketch to
/// both views and run CCA on (ΠX, ΠY). With Π an ε-OSE for span([X Y]),
/// every canonical correlation is preserved to additive O(ε).
[[nodiscard]] Result<std::vector<double>> SketchedCca(const SketchingMatrix& sketch,
                                                      const Matrix& x, const Matrix& y);

/// max_i |a_i − b_i| between two correlation vectors of equal length.
double MaxCorrelationError(const std::vector<double>& a,
                           const std::vector<double>& b);

}  // namespace sose

#endif  // SOSE_APPS_CCA_H_
