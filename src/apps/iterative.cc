#include "apps/iterative.h"

#include <cmath>

#include "core/linalg_qr.h"
#include "core/vector_ops.h"

namespace sose {

namespace {

// CGLS on min ‖A M⁻¹ y − b‖ where applying M⁻¹ is `apply_minv` (identity
// when unpreconditioned); returns x = M⁻¹ y.
struct Preconditioner {
  // Applies M⁻¹ to a length-d vector in place; nullptr = identity.
  const Matrix* r_factor = nullptr;  // Upper-triangular R; M = R.

  std::vector<double> ApplyInverse(std::vector<double> v) const {
    if (r_factor == nullptr) return v;
    const Matrix& r = *r_factor;
    const int64_t d = r.rows();
    // Solve R x = v.
    for (int64_t i = d - 1; i >= 0; --i) {
      double sum = v[static_cast<size_t>(i)];
      for (int64_t j = i + 1; j < d; ++j) {
        sum -= r.At(i, j) * v[static_cast<size_t>(j)];
      }
      v[static_cast<size_t>(i)] = sum / r.At(i, i);
    }
    return v;
  }

  std::vector<double> ApplyInverseTransposed(std::vector<double> v) const {
    if (r_factor == nullptr) return v;
    const Matrix& r = *r_factor;
    const int64_t d = r.rows();
    // Solve Rᵀ x = v (forward substitution).
    for (int64_t i = 0; i < d; ++i) {
      double sum = v[static_cast<size_t>(i)];
      for (int64_t j = 0; j < i; ++j) {
        sum -= r.At(j, i) * v[static_cast<size_t>(j)];
      }
      v[static_cast<size_t>(i)] = sum / r.At(i, i);
    }
    return v;
  }
};

Result<IterativeSolution> CglsImpl(const Matrix& a,
                                   const std::vector<double>& b,
                                   const CglsOptions& options,
                                   const Preconditioner& precond) {
  if (static_cast<int64_t>(b.size()) != a.rows()) {
    return Status::InvalidArgument("CGLS: b has wrong length");
  }
  if (options.max_iterations <= 0 || options.tolerance <= 0.0) {
    return Status::InvalidArgument("CGLS: bad options");
  }
  const int64_t d = a.cols();
  // Working problem: min ‖Ã y − b‖ with Ã = A R⁻¹; x = R⁻¹ y.
  std::vector<double> y(static_cast<size_t>(d), 0.0);
  std::vector<double> residual = b;                         // b − Ã y.
  // s = Ãᵀ residual = R⁻ᵀ Aᵀ residual.
  std::vector<double> s =
      precond.ApplyInverseTransposed(MatVecTransposed(a, residual));
  std::vector<double> direction = s;
  double gamma = Norm2Squared(s);
  const double gamma0 = gamma;

  IterativeSolution solution;
  if (gamma0 == 0.0) {
    solution.x = y;
    solution.converged = true;
    return solution;
  }
  for (int64_t iter = 0; iter < options.max_iterations; ++iter) {
    // q = Ã direction = A (R⁻¹ direction).
    const std::vector<double> q = MatVec(a, precond.ApplyInverse(direction));
    const double q_norm_sq = Norm2Squared(q);
    if (q_norm_sq == 0.0) break;
    const double alpha = gamma / q_norm_sq;
    Axpy(alpha, direction, &y);
    Axpy(-alpha, q, &residual);
    s = precond.ApplyInverseTransposed(MatVecTransposed(a, residual));
    const double gamma_next = Norm2Squared(s);
    solution.iterations = iter + 1;
    if (std::sqrt(gamma_next / gamma0) < options.tolerance) {
      solution.converged = true;
      gamma = gamma_next;
      break;
    }
    const double beta = gamma_next / gamma;
    gamma = gamma_next;
    for (size_t i = 0; i < direction.size(); ++i) {
      direction[i] = s[i] + beta * direction[i];
    }
  }
  solution.x = precond.ApplyInverse(y);
  // Report the unpreconditioned normal residual for comparability.
  const std::vector<double> final_residual =
      Subtract(b, MatVec(a, solution.x));
  const double atb = Norm2(MatVecTransposed(a, b));
  solution.relative_residual =
      atb > 0.0 ? Norm2(MatVecTransposed(a, final_residual)) / atb : 0.0;
  return solution;
}

}  // namespace

Result<IterativeSolution> SolveCgls(const Matrix& a,
                                    const std::vector<double>& b,
                                    const CglsOptions& options) {
  return CglsImpl(a, b, options, Preconditioner{});
}

Result<IterativeSolution> SolveSketchPreconditionedCgls(
    const SketchingMatrix& sketch, const Matrix& a,
    const std::vector<double>& b, const CglsOptions& options) {
  if (sketch.cols() != a.rows()) {
    return Status::InvalidArgument(
        "SolveSketchPreconditionedCgls: sketch ambient dimension != rows(A)");
  }
  SOSE_ASSIGN_OR_RETURN(Matrix sketched, sketch.ApplyDense(a));
  SOSE_ASSIGN_OR_RETURN(HouseholderQr qr, HouseholderQr::Factor(sketched));
  if (qr.RankEstimate() < a.cols()) {
    return Status::NumericalError(
        "SolveSketchPreconditionedCgls: sketched matrix is rank-deficient; "
        "increase m");
  }
  const Matrix r = qr.R();
  Preconditioner precond;
  precond.r_factor = &r;
  return CglsImpl(a, b, options, precond);
}

}  // namespace sose
