#ifndef SOSE_APPS_ITERATIVE_H_
#define SOSE_APPS_ITERATIVE_H_

#include <cstdint>
#include <vector>

#include "core/matrix.h"
#include "core/status.h"
#include "sketch/sketch.h"

namespace sose {

/// Outcome of an iterative least-squares solve.
struct IterativeSolution {
  std::vector<double> x;
  int64_t iterations = 0;
  bool converged = false;
  /// Final relative normal-equation residual ‖Aᵀ(Ax − b)‖ / ‖Aᵀb‖.
  double relative_residual = 0.0;
};

/// Options for the CGLS solver.
struct CglsOptions {
  int64_t max_iterations = 1000;
  /// Convergence test on the preconditioned normal residual.
  double tolerance = 1e-10;
};

/// CGLS (conjugate gradients on the normal equations, in factored form):
/// solves min_x ‖Ax − b‖₂ without forming AᵀA. Iteration count scales with
/// the condition number κ(A).
[[nodiscard]] Result<IterativeSolution> SolveCgls(const Matrix& a,
                                                  const std::vector<double>& b,
                                                  const CglsOptions& options);

/// Sketch-preconditioned CGLS (the Blendenpik/LSRN scheme): factor
/// Π A = Q R, substitute y = R x, and run CGLS on A R⁻¹ — whose condition
/// number is (1+ε)/(1−ε) when Π is an ε-subspace-embedding for range(A).
/// Iterations become O(log(1/tol)), independent of κ(A). This is the
/// flagship *indirect* use of OSEs: the sketch only preconditions, so even
/// a crude ε (say 1/2) suffices — but the paper's lower bounds still govern
/// how small m can be.
[[nodiscard]] Result<IterativeSolution> SolveSketchPreconditionedCgls(
    const SketchingMatrix& sketch, const Matrix& a,
    const std::vector<double>& b, const CglsOptions& options);

}  // namespace sose

#endif  // SOSE_APPS_ITERATIVE_H_
