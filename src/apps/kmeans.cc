#include "apps/kmeans.h"

#include <cmath>
#include <limits>

#include "core/random.h"

namespace sose {

namespace {

double SquaredDistanceToRow(const Matrix& points, int64_t point,
                            const Matrix& centers, int64_t center) {
  double sum = 0.0;
  const double* p = points.Row(point);
  const double* c = centers.Row(center);
  for (int64_t j = 0; j < points.cols(); ++j) {
    const double diff = p[j] - c[j];
    sum += diff * diff;
  }
  return sum;
}

// k-means++ seeding: first center uniform, then D² sampling.
Matrix PlusPlusInit(const Matrix& points, int64_t k, Rng* rng) {
  const int64_t n = points.rows();
  Matrix centers(k, points.cols());
  std::vector<double> min_dist(static_cast<size_t>(n),
                               std::numeric_limits<double>::infinity());
  int64_t first = static_cast<int64_t>(rng->UniformInt(static_cast<uint64_t>(n)));
  for (int64_t j = 0; j < points.cols(); ++j) {
    centers.At(0, j) = points.At(first, j);
  }
  for (int64_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const double dist = SquaredDistanceToRow(points, i, centers, c - 1);
      min_dist[static_cast<size_t>(i)] =
          std::min(min_dist[static_cast<size_t>(i)], dist);
      total += min_dist[static_cast<size_t>(i)];
    }
    int64_t chosen = n - 1;
    if (total > 0.0) {
      double target = rng->UniformDouble() * total;
      for (int64_t i = 0; i < n; ++i) {
        target -= min_dist[static_cast<size_t>(i)];
        if (target <= 0.0) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = static_cast<int64_t>(rng->UniformInt(static_cast<uint64_t>(n)));
    }
    for (int64_t j = 0; j < points.cols(); ++j) {
      centers.At(c, j) = points.At(chosen, j);
    }
  }
  return centers;
}

// One assignment pass; returns the cost and whether anything changed.
std::pair<double, bool> Assign(const Matrix& points, const Matrix& centers,
                               std::vector<int64_t>* assignment) {
  double cost = 0.0;
  bool changed = false;
  for (int64_t i = 0; i < points.rows(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    int64_t best_center = 0;
    for (int64_t c = 0; c < centers.rows(); ++c) {
      const double dist = SquaredDistanceToRow(points, i, centers, c);
      if (dist < best) {
        best = dist;
        best_center = c;
      }
    }
    if ((*assignment)[static_cast<size_t>(i)] != best_center) {
      (*assignment)[static_cast<size_t>(i)] = best_center;
      changed = true;
    }
    cost += best;
  }
  return {cost, changed};
}

// Recomputes centroids; empty clusters keep their previous centers.
void UpdateCenters(const Matrix& points,
                   const std::vector<int64_t>& assignment, Matrix* centers) {
  const int64_t k = centers->rows();
  std::vector<int64_t> counts(static_cast<size_t>(k), 0);
  Matrix sums(k, points.cols());
  for (int64_t i = 0; i < points.rows(); ++i) {
    const int64_t c = assignment[static_cast<size_t>(i)];
    ++counts[static_cast<size_t>(c)];
    for (int64_t j = 0; j < points.cols(); ++j) {
      sums.At(c, j) += points.At(i, j);
    }
  }
  for (int64_t c = 0; c < k; ++c) {
    if (counts[static_cast<size_t>(c)] == 0) continue;
    const double inv = 1.0 / static_cast<double>(counts[static_cast<size_t>(c)]);
    for (int64_t j = 0; j < points.cols(); ++j) {
      centers->At(c, j) = sums.At(c, j) * inv;
    }
  }
}

}  // namespace

Result<KMeansResult> LloydKMeans(const Matrix& points,
                                 const KMeansOptions& options) {
  if (options.k < 1 || options.k > points.rows()) {
    return Status::InvalidArgument("LloydKMeans: need 1 <= k <= #points");
  }
  if (options.max_iterations < 1) {
    return Status::InvalidArgument("LloydKMeans: max_iterations < 1");
  }
  Rng rng(DeriveSeed(options.seed, 0));
  KMeansResult result;
  result.centers = PlusPlusInit(points, options.k, &rng);
  result.assignment.assign(static_cast<size_t>(points.rows()), -1);
  for (int64_t iter = 0; iter < options.max_iterations; ++iter) {
    const auto [cost, changed] =
        Assign(points, result.centers, &result.assignment);
    result.cost = cost;
    result.iterations = iter + 1;
    if (!changed && iter > 0) break;
    UpdateCenters(points, result.assignment, &result.centers);
  }
  // Final cost against the last centers.
  const auto [cost, changed] =
      Assign(points, result.centers, &result.assignment);
  (void)changed;
  result.cost = cost;
  return result;
}

Result<double> KMeansCostForAssignment(const Matrix& points,
                                       const std::vector<int64_t>& assignment,
                                       int64_t k) {
  if (static_cast<int64_t>(assignment.size()) != points.rows()) {
    return Status::InvalidArgument(
        "KMeansCostForAssignment: assignment length mismatch");
  }
  for (int64_t c : assignment) {
    if (c < 0 || c >= k) {
      return Status::OutOfRange("KMeansCostForAssignment: cluster id");
    }
  }
  Matrix centers(k, points.cols());
  UpdateCenters(points, assignment, &centers);
  double cost = 0.0;
  for (int64_t i = 0; i < points.rows(); ++i) {
    cost += SquaredDistanceToRow(points, i, centers,
                                 assignment[static_cast<size_t>(i)]);
  }
  return cost;
}

Result<KMeansResult> SketchedKMeans(const SketchingMatrix& sketch,
                                    const Matrix& points,
                                    const KMeansOptions& options) {
  if (sketch.cols() != points.cols()) {
    return Status::InvalidArgument(
        "SketchedKMeans: sketch ambient dimension != feature dimension");
  }
  // B = (Π Aᵀ)ᵀ: project the features of every point.
  SOSE_ASSIGN_OR_RETURN(Matrix sketched_features,
                        sketch.ApplyDense(points.Transposed()));
  const Matrix projected = sketched_features.Transposed();
  SOSE_ASSIGN_OR_RETURN(KMeansResult reduced, LloydKMeans(projected, options));
  // Evaluate the induced partition on the ORIGINAL points.
  KMeansResult result;
  result.assignment = reduced.assignment;
  result.iterations = reduced.iterations;
  result.centers = Matrix(options.k, points.cols());
  UpdateCenters(points, result.assignment, &result.centers);
  SOSE_ASSIGN_OR_RETURN(
      result.cost,
      KMeansCostForAssignment(points, result.assignment, options.k));
  return result;
}

}  // namespace sose
