#ifndef SOSE_APPS_KMEANS_H_
#define SOSE_APPS_KMEANS_H_

#include <cstdint>
#include <vector>

#include "core/matrix.h"
#include "core/status.h"
#include "sketch/sketch.h"

namespace sose {

/// Options for Lloyd's algorithm.
struct KMeansOptions {
  int64_t k = 2;               ///< Number of clusters.
  int64_t max_iterations = 64; ///< Lloyd iteration cap.
  uint64_t seed = 0;           ///< Seed for the k-means++ initialization.
};

/// Result of a k-means run.
struct KMeansResult {
  /// Cluster id in [0, k) per point (row of the input).
  std::vector<int64_t> assignment;
  /// k x dim matrix of centroids.
  Matrix centers;
  /// Sum of squared distances to assigned centroids.
  double cost = 0.0;
  /// Lloyd iterations executed.
  int64_t iterations = 0;
};

/// Lloyd's algorithm with k-means++ initialization on the rows of `points`
/// (n x dim). Requires 1 <= k <= n.
[[nodiscard]] Result<KMeansResult> LloydKMeans(const Matrix& points,
                                               const KMeansOptions& options);

/// The k-means cost of an assignment in the ORIGINAL space: centroids are
/// recomputed from `points` per cluster; empty clusters contribute nothing.
[[nodiscard]] Result<double> KMeansCostForAssignment(const Matrix& points,
                                                     const std::vector<int64_t>& assignment,
                                                     int64_t k);

/// Dimension-reduced k-means (Boutsidis et al. / Cohen et al., the paper's
/// cited k-means application): project the FEATURES of the points through
/// the sketch — B = (Π Aᵀ)ᵀ, n x m — cluster B, then evaluate the induced
/// partition's cost on the original points. With Π an OSE-style projection
/// of the feature space, the returned cost is within (1 + O(ε)) of what the
/// same algorithm achieves on the full data. Requires
/// sketch.cols() == points.cols().
[[nodiscard]] Result<KMeansResult> SketchedKMeans(const SketchingMatrix& sketch,
                                                  const Matrix& points,
                                                  const KMeansOptions& options);

}  // namespace sose

#endif  // SOSE_APPS_KMEANS_H_
