#include "apps/leverage.h"

#include <algorithm>
#include <cmath>

#include "core/linalg_qr.h"
#include "core/random.h"

namespace sose {

Result<std::vector<double>> ExactLeverageScores(const Matrix& a) {
  SOSE_ASSIGN_OR_RETURN(Matrix q, Orthonormalize(a));
  std::vector<double> scores(static_cast<size_t>(a.rows()), 0.0);
  for (int64_t i = 0; i < q.rows(); ++i) {
    double sum = 0.0;
    for (int64_t j = 0; j < q.cols(); ++j) sum += q.At(i, j) * q.At(i, j);
    scores[static_cast<size_t>(i)] = sum;
  }
  return scores;
}

Result<std::vector<double>> ApproximateLeverageScores(
    const SketchingMatrix& sketch, const Matrix& a, int64_t jl_cols,
    uint64_t seed) {
  if (jl_cols <= 0) {
    return Status::InvalidArgument(
        "ApproximateLeverageScores: jl_cols must be positive");
  }
  if (sketch.cols() != a.rows()) {
    return Status::InvalidArgument(
        "ApproximateLeverageScores: sketch ambient dimension != rows of A");
  }
  SOSE_ASSIGN_OR_RETURN(Matrix sketched, sketch.ApplyDense(a));
  SOSE_ASSIGN_OR_RETURN(HouseholderQr qr, HouseholderQr::Factor(sketched));
  if (qr.RankEstimate() < a.cols()) {
    return Status::NumericalError(
        "ApproximateLeverageScores: sketched matrix is rank-deficient");
  }
  const Matrix r = qr.R();
  // Solve Rᵀ X = (G / √jl_cols)ᵀ? We need A R⁻¹ G: first form R⁻¹ G by
  // back-substitution on each Gaussian column, then one pass A · (R⁻¹ G).
  const int64_t d = a.cols();
  Rng rng(DeriveSeed(seed, 0));
  Matrix r_inv_g(d, jl_cols);
  const double scale = 1.0 / std::sqrt(static_cast<double>(jl_cols));
  for (int64_t col = 0; col < jl_cols; ++col) {
    std::vector<double> g(static_cast<size_t>(d));
    for (double& v : g) v = scale * rng.Gaussian();
    // Back-substitute R x = g.
    std::vector<double> x(static_cast<size_t>(d), 0.0);
    for (int64_t i = d - 1; i >= 0; --i) {
      double sum = g[static_cast<size_t>(i)];
      for (int64_t j = i + 1; j < d; ++j) {
        sum -= r.At(i, j) * x[static_cast<size_t>(j)];
      }
      const double diag = r.At(i, i);
      if (diag == 0.0) {
        return Status::NumericalError(
            "ApproximateLeverageScores: singular R factor");
      }
      x[static_cast<size_t>(i)] = sum / diag;
    }
    for (int64_t i = 0; i < d; ++i) {
      r_inv_g.At(i, col) = x[static_cast<size_t>(i)];
    }
  }
  const Matrix projected = MatMul(a, r_inv_g);  // n x jl_cols.
  std::vector<double> scores(static_cast<size_t>(a.rows()), 0.0);
  for (int64_t i = 0; i < projected.rows(); ++i) {
    double sum = 0.0;
    for (int64_t j = 0; j < projected.cols(); ++j) {
      sum += projected.At(i, j) * projected.At(i, j);
    }
    scores[static_cast<size_t>(i)] = sum;
  }
  return scores;
}

Result<WeightedSamplingSketch> MakeLeverageSamplingSketch(const Matrix& a,
                                                          int64_t m,
                                                          uint64_t seed) {
  SOSE_ASSIGN_OR_RETURN(std::vector<double> scores, ExactLeverageScores(a));
  return WeightedSamplingSketch::Create(scores, m, seed);
}

double LeverageScoreError(const std::vector<double>& exact,
                          const std::vector<double>& approx, double floor) {
  SOSE_CHECK(exact.size() == approx.size());
  double worst = 0.0;
  for (size_t i = 0; i < exact.size(); ++i) {
    const double denom = std::max(exact[i], floor);
    worst = std::max(worst, std::fabs(approx[i] - exact[i]) / denom);
  }
  return worst;
}

}  // namespace sose
