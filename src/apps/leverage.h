#ifndef SOSE_APPS_LEVERAGE_H_
#define SOSE_APPS_LEVERAGE_H_

#include <cstdint>
#include <vector>

#include "core/matrix.h"
#include "core/status.h"
#include "sketch/sketch.h"
#include "sketch/weighted_sampling.h"

namespace sose {

/// Exact statistical leverage scores of a tall matrix A (n x d, n >= d):
/// ℓ_i = ‖e_iᵀ Q‖² for any orthonormal basis Q of range(A). Computed via
/// Householder QR. The scores sum to rank(A).
[[nodiscard]] Result<std::vector<double>> ExactLeverageScores(const Matrix& a);

/// Sketched leverage-score approximation (Drineas et al. style): factor
/// Π A = Q̃ R̃, then ℓ̃_i = ‖e_iᵀ A R̃⁻¹ G‖² with G a d x jl_cols Gaussian
/// matrix scaled by 1/√jl_cols. With an ε-OSE and jl_cols = O(log n / γ²),
/// ℓ̃_i = (1 ± O(ε + γ)) ℓ_i for all i, at o(n d²) cost.
///
/// Fails if the sketched matrix is rank-deficient.
[[nodiscard]] Result<std::vector<double>> ApproximateLeverageScores(
    const SketchingMatrix& sketch, const Matrix& a, int64_t jl_cols,
    uint64_t seed);

/// max_i |approx_i − exact_i| / max(exact_i, floor): the relative error
/// measure used by the leverage experiments.
double LeverageScoreError(const std::vector<double>& exact,
                          const std::vector<double>& approx,
                          double floor = 1e-12);

/// Leverage-score sampling embedding for range(A): m rows sampled with
/// probability proportional to A's exact leverage scores. NON-oblivious —
/// it reads A before drawing — which is precisely how it escapes the
/// paper's Ω(d²) wall at m = O(d log d/ε²): the lower bounds bind only
/// data-independent sketches.
[[nodiscard]] Result<WeightedSamplingSketch> MakeLeverageSamplingSketch(const Matrix& a,
                                                                        int64_t m,
                                                                        uint64_t seed);

}  // namespace sose

#endif  // SOSE_APPS_LEVERAGE_H_
