#include "apps/lowrank.h"

#include "core/linalg_svd.h"

namespace sose {

namespace {

// Ã = (A V_k) V_kᵀ given the n x k direction block V_k.
Matrix ProjectOntoDirections(const Matrix& a, const Matrix& v_k) {
  const Matrix coefficients = MatMul(a, v_k);            // rows x k
  return MatMulTransposeB(coefficients, v_k);            // rows x cols
}

Matrix TopKColumns(const Matrix& v, int64_t k) {
  Matrix out(v.rows(), k);
  for (int64_t i = 0; i < v.rows(); ++i) {
    for (int64_t j = 0; j < k; ++j) out.At(i, j) = v.At(i, j);
  }
  return out;
}

double FrobeniusError(const Matrix& a, const Matrix& approx) {
  Matrix diff = a;
  diff.AddScaled(approx, -1.0);
  return diff.FrobeniusNorm();
}

}  // namespace

Result<LowRankApproximation> BestRankK(const Matrix& a, int64_t k) {
  if (k <= 0 || k > std::min(a.rows(), a.cols())) {
    return Status::InvalidArgument("BestRankK: k out of range");
  }
  // Work on the tall orientation for the thin SVD.
  const bool transpose = a.rows() < a.cols();
  SOSE_ASSIGN_OR_RETURN(Svd svd, JacobiSvd(transpose ? a.Transposed() : a));
  // Right singular directions of A: V of the SVD in the tall orientation,
  // or U when we factored Aᵀ.
  const Matrix& directions = transpose ? svd.u : svd.v;
  const Matrix v_k = TopKColumns(directions, k);
  LowRankApproximation result;
  result.approximant = ProjectOntoDirections(a, v_k);
  result.error_frobenius = FrobeniusError(a, result.approximant);
  return result;
}

Result<LowRankApproximation> SketchedRankK(const SketchingMatrix& sketch,
                                           const Matrix& a, int64_t k) {
  if (k <= 0 || k > std::min(a.rows(), a.cols())) {
    return Status::InvalidArgument("SketchedRankK: k out of range");
  }
  if (sketch.cols() != a.rows()) {
    return Status::InvalidArgument(
        "SketchedRankK: sketch ambient dimension != rows of A");
  }
  SOSE_ASSIGN_OR_RETURN(Matrix sketched, sketch.ApplyDense(a));  // m x cols
  if (sketched.rows() < sketched.cols()) {
    // Wide sketch output: factor the transpose; right directions are U.
    SOSE_ASSIGN_OR_RETURN(Svd svd, JacobiSvd(sketched.Transposed()));
    const Matrix v_k = TopKColumns(svd.u, k);
    LowRankApproximation result;
    result.approximant = ProjectOntoDirections(a, v_k);
    result.error_frobenius = FrobeniusError(a, result.approximant);
    return result;
  }
  SOSE_ASSIGN_OR_RETURN(Svd svd, JacobiSvd(sketched));
  const Matrix v_k = TopKColumns(svd.v, k);
  LowRankApproximation result;
  result.approximant = ProjectOntoDirections(a, v_k);
  result.error_frobenius = FrobeniusError(a, result.approximant);
  return result;
}

}  // namespace sose
