#ifndef SOSE_APPS_LOWRANK_H_
#define SOSE_APPS_LOWRANK_H_

#include <cstdint>

#include "core/matrix.h"
#include "core/status.h"
#include "sketch/sketch.h"

namespace sose {

/// Result of a rank-k approximation.
struct LowRankApproximation {
  /// The rank-k approximant (rows x cols, same shape as the input).
  Matrix approximant;
  /// ‖A − approximant‖_F.
  double error_frobenius = 0.0;
};

/// Best rank-k approximation by truncated SVD (the baseline).
[[nodiscard]] Result<LowRankApproximation> BestRankK(const Matrix& a, int64_t k);

/// Sketched rank-k approximation in the Clarkson–Woodruff style: sketch the
/// columns (B = Π A, m x cols), take the top-k right singular directions
/// V_k of B, and project: Ã = (A V_k) V_kᵀ. With an OSE of distortion ε,
/// ‖A − Ã‖_F <= (1 + O(ε)) ‖A − A_k‖_F.
[[nodiscard]] Result<LowRankApproximation> SketchedRankK(const SketchingMatrix& sketch,
                                                         const Matrix& a, int64_t k);

}  // namespace sose

#endif  // SOSE_APPS_LOWRANK_H_
