#include "apps/matprod.h"

namespace sose {

Result<ApproxProduct> ApproximateMatrixProduct(const SketchingMatrix& sketch,
                                               const Matrix& a,
                                               const Matrix& b) {
  if (a.rows() != b.rows()) {
    return Status::InvalidArgument(
        "ApproximateMatrixProduct: A and B must share their row count");
  }
  if (sketch.cols() != a.rows()) {
    return Status::InvalidArgument(
        "ApproximateMatrixProduct: sketch ambient dimension != rows of A");
  }
  SOSE_ASSIGN_OR_RETURN(Matrix sketched_a, sketch.ApplyDense(a));
  SOSE_ASSIGN_OR_RETURN(Matrix sketched_b, sketch.ApplyDense(b));
  ApproxProduct result;
  result.product = MatMulTransposeA(sketched_a, sketched_b);
  Matrix diff = MatMulTransposeA(a, b);
  diff.AddScaled(result.product, -1.0);
  result.error_frobenius = diff.FrobeniusNorm();
  const double scale = a.FrobeniusNorm() * b.FrobeniusNorm();
  result.relative_error =
      scale > 0.0 ? result.error_frobenius / scale : 0.0;
  return result;
}

}  // namespace sose
