#ifndef SOSE_APPS_MATPROD_H_
#define SOSE_APPS_MATPROD_H_

#include "core/matrix.h"
#include "core/status.h"
#include "sketch/sketch.h"

namespace sose {

/// Result of an approximate matrix product AᵀB ≈ (ΠA)ᵀ(ΠB).
struct ApproxProduct {
  Matrix product;               ///< (ΠA)ᵀ(ΠB).
  double error_frobenius = 0.0; ///< ‖(ΠA)ᵀ(ΠB) − AᵀB‖_F.
  double relative_error = 0.0;  ///< error / (‖A‖_F ‖B‖_F), the AMM guarantee
                                ///< scale for JL-type sketches.
};

/// Computes the sketched product and its exact error. A and B must share
/// their row count, which must equal the sketch's ambient dimension.
[[nodiscard]] Result<ApproxProduct> ApproximateMatrixProduct(const SketchingMatrix& sketch,
                                                             const Matrix& a,
                                                             const Matrix& b);

}  // namespace sose

#endif  // SOSE_APPS_MATPROD_H_
