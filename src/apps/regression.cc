#include "apps/regression.h"

#include "core/linalg_qr.h"
#include "core/vector_ops.h"

namespace sose {

Result<LeastSquaresSolution> SolveLeastSquares(const Matrix& a,
                                               const std::vector<double>& b) {
  SOSE_ASSIGN_OR_RETURN(HouseholderQr qr, HouseholderQr::Factor(a));
  SOSE_ASSIGN_OR_RETURN(std::vector<double> x, qr.SolveLeastSquares(b));
  LeastSquaresSolution solution;
  solution.residual_norm = Norm2(Subtract(MatVec(a, x), b));
  solution.x = std::move(x);
  return solution;
}

Result<LeastSquaresSolution> SketchAndSolve(const SketchingMatrix& sketch,
                                            const Matrix& a,
                                            const std::vector<double>& b) {
  if (sketch.cols() != a.rows()) {
    return Status::InvalidArgument(
        "SketchAndSolve: sketch ambient dimension != rows of A");
  }
  if (static_cast<int64_t>(b.size()) != a.rows()) {
    return Status::InvalidArgument("SketchAndSolve: b has wrong length");
  }
  SOSE_ASSIGN_OR_RETURN(Matrix sketched_a, sketch.ApplyDense(a));
  SOSE_ASSIGN_OR_RETURN(std::vector<double> sketched_b, sketch.ApplyVector(b));
  SOSE_ASSIGN_OR_RETURN(HouseholderQr qr, HouseholderQr::Factor(sketched_a));
  SOSE_ASSIGN_OR_RETURN(std::vector<double> x,
                        qr.SolveLeastSquares(sketched_b));
  LeastSquaresSolution solution;
  solution.residual_norm = Norm2(Subtract(MatVec(a, x), b));
  solution.x = std::move(x);
  return solution;
}

Result<double> ResidualRatio(const Matrix& a, const std::vector<double>& b,
                             const std::vector<double>& x_hat) {
  SOSE_ASSIGN_OR_RETURN(LeastSquaresSolution exact, SolveLeastSquares(a, b));
  if (exact.residual_norm <= 1e-14) {
    return Status::NumericalError(
        "ResidualRatio: exact residual is zero; the ratio is undefined");
  }
  const double hat_residual = Norm2(Subtract(MatVec(a, x_hat), b));
  return hat_residual / exact.residual_norm;
}

}  // namespace sose
