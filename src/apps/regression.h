#ifndef SOSE_APPS_REGRESSION_H_
#define SOSE_APPS_REGRESSION_H_

#include <vector>

#include "core/matrix.h"
#include "core/status.h"
#include "sketch/sketch.h"

namespace sose {

/// Solution of a (possibly sketched) least-squares problem.
struct LeastSquaresSolution {
  std::vector<double> x;
  /// ‖A x − b‖₂ evaluated on the ORIGINAL (unsketched) problem.
  double residual_norm = 0.0;
};

/// Exact least squares min_x ‖Ax − b‖₂ via Householder QR.
[[nodiscard]] Result<LeastSquaresSolution> SolveLeastSquares(const Matrix& a,
                                                             const std::vector<double>& b);

/// Sketch-and-solve: solves min_x ‖Π A x − Π b‖₂ and evaluates the residual
/// on the original problem. If Π is an ε-subspace-embedding for the span of
/// [A b], the returned residual is within (1+ε)/(1−ε) of optimal — the
/// classical application motivating the paper's study of sparse OSEs.
[[nodiscard]] Result<LeastSquaresSolution> SketchAndSolve(const SketchingMatrix& sketch,
                                                          const Matrix& a,
                                                          const std::vector<double>& b);

/// Residual suboptimality ratio ‖A x̂ − b‖ / ‖A x* − b‖ (>= 1; 1 is exact).
/// Fails if the exact residual is numerically zero.
[[nodiscard]] Result<double> ResidualRatio(const Matrix& a, const std::vector<double>& b,
                                           const std::vector<double>& x_hat);

}  // namespace sose

#endif  // SOSE_APPS_REGRESSION_H_
