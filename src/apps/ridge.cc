#include "apps/ridge.h"

#include <cmath>

#include "core/linalg_qr.h"
#include "core/vector_ops.h"

namespace sose {

namespace {

// Solves min ‖Mx − c‖² + λ‖x‖² via QR of the augmented [M; √λ I].
Result<std::vector<double>> AugmentedSolve(const Matrix& m,
                                           const std::vector<double>& c,
                                           double lambda) {
  if (lambda < 0.0) {
    return Status::InvalidArgument("ridge: lambda must be non-negative");
  }
  if (static_cast<int64_t>(c.size()) != m.rows()) {
    return Status::InvalidArgument("ridge: rhs has wrong length");
  }
  const int64_t rows = m.rows();
  const int64_t cols = m.cols();
  Matrix augmented(rows + cols, cols);
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) augmented.At(i, j) = m.At(i, j);
  }
  const double root = std::sqrt(lambda);
  for (int64_t j = 0; j < cols; ++j) augmented.At(rows + j, j) = root;
  std::vector<double> rhs = c;
  rhs.resize(static_cast<size_t>(rows + cols), 0.0);
  SOSE_ASSIGN_OR_RETURN(HouseholderQr qr, HouseholderQr::Factor(augmented));
  return qr.SolveLeastSquares(rhs);
}

}  // namespace

Result<std::vector<double>> SolveRidge(const Matrix& a,
                                       const std::vector<double>& b,
                                       double lambda) {
  return AugmentedSolve(a, b, lambda);
}

Result<std::vector<double>> SketchAndSolveRidge(const SketchingMatrix& sketch,
                                                const Matrix& a,
                                                const std::vector<double>& b,
                                                double lambda) {
  if (sketch.cols() != a.rows()) {
    return Status::InvalidArgument(
        "SketchAndSolveRidge: sketch ambient dimension != rows of A");
  }
  if (static_cast<int64_t>(b.size()) != a.rows()) {
    return Status::InvalidArgument("SketchAndSolveRidge: b has wrong length");
  }
  SOSE_ASSIGN_OR_RETURN(Matrix sketched_a, sketch.ApplyDense(a));
  SOSE_ASSIGN_OR_RETURN(std::vector<double> sketched_b, sketch.ApplyVector(b));
  return AugmentedSolve(sketched_a, sketched_b, lambda);
}

double RidgeObjective(const Matrix& a, const std::vector<double>& b,
                      double lambda, const std::vector<double>& x) {
  const std::vector<double> residual = Subtract(MatVec(a, x), b);
  return Norm2Squared(residual) + lambda * Norm2Squared(x);
}

}  // namespace sose
