#ifndef SOSE_APPS_RIDGE_H_
#define SOSE_APPS_RIDGE_H_

#include <vector>

#include "core/matrix.h"
#include "core/status.h"
#include "sketch/sketch.h"

namespace sose {

/// Exact ridge regression min_x ‖Ax − b‖² + λ‖x‖², solved via QR of the
/// augmented system [A; √λ I]. Requires λ > 0 or A of full column rank.
[[nodiscard]] Result<std::vector<double>> SolveRidge(const Matrix& a,
                                                     const std::vector<double>& b,
                                                     double lambda);

/// Sketched ridge: solves min_x ‖Π A x − Π b‖² + λ‖x‖², i.e. the ridge
/// problem on the compressed data. With Π an ε-OSE for span([A b]) the
/// solution's excess regularized risk is O(ε). The regularizer is NOT
/// sketched — only the data-fit term is, matching the standard analysis.
[[nodiscard]] Result<std::vector<double>> SketchAndSolveRidge(const SketchingMatrix& sketch,
                                                              const Matrix& a,
                                                              const std::vector<double>& b,
                                                              double lambda);

/// The ridge objective ‖Ax − b‖² + λ‖x‖² at a candidate x.
double RidgeObjective(const Matrix& a, const std::vector<double>& b,
                      double lambda, const std::vector<double>& x);

}  // namespace sose

#endif  // SOSE_APPS_RIDGE_H_
