#ifndef SOSE_CORE_CHECK_H_
#define SOSE_CORE_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace sose::internal_check {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "%s:%d: SOSE_CHECK failed: %s\n", file, line, expr);
  // SOSE_CHECK guards programming-error invariants; aborting on a violated
  // invariant is its contract (see the macro comment below).
  std::abort();  // sose-lint: allow(header-hygiene)
}

}  // namespace sose::internal_check

/// Aborts with a diagnostic if `cond` is false. For programming-error
/// invariants only (index bounds, shape agreement inside kernels); anything a
/// caller could plausibly get wrong at runtime is reported via Status instead.
/// Active in all build types: the cost is negligible next to the numerical
/// kernels it guards, and silent corruption in a numerics library is far
/// worse than an abort.
#define SOSE_CHECK(cond)                                                \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::sose::internal_check::CheckFailed(__FILE__, __LINE__, #cond);   \
    }                                                                   \
  } while (false)

/// Bounds/shape checks that are hot enough to matter; compiled out in
/// release builds (NDEBUG).
#ifdef NDEBUG
#define SOSE_DCHECK(cond) \
  do {                    \
  } while (false)
#else
#define SOSE_DCHECK(cond) SOSE_CHECK(cond)
#endif

#endif  // SOSE_CORE_CHECK_H_
