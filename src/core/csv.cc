#include "core/csv.h"

#include <cstdio>
#include <fstream>

#include "core/check.h"
#include "core/table.h"

namespace sose {

namespace {

std::string Escape(const std::string& value) {
  const bool needs_quotes = value.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return value;
  std::string out = "\"";
  for (char c : value) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  SOSE_CHECK(!columns_.empty());
}

void CsvWriter::NewRow() { rows_.emplace_back(); }

void CsvWriter::AddCell(const std::string& value) {
  SOSE_CHECK(!rows_.empty());
  SOSE_CHECK(rows_.back().size() < columns_.size());
  rows_.back().push_back(value);
}

void CsvWriter::AddDouble(double value) { AddCell(FormatDouble(value, 10)); }

void CsvWriter::AddInt(int64_t value) { AddCell(std::to_string(value)); }

std::string CsvWriter::ToString() const {
  std::string out;
  for (size_t j = 0; j < columns_.size(); ++j) {
    out += Escape(columns_[j]);
    out += (j + 1 < columns_.size()) ? "," : "\n";
  }
  for (const auto& row : rows_) {
    for (size_t j = 0; j < columns_.size(); ++j) {
      if (j < row.size()) out += Escape(row[j]);
      out += (j + 1 < columns_.size()) ? "," : "\n";
    }
  }
  return out;
}

Status CsvWriter::WriteToFile(const std::string& path) const {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::InvalidArgument("CsvWriter: cannot open " + path);
  }
  file << ToString();
  if (!file.good()) {
    return Status::Internal("CsvWriter: write to " + path + " failed");
  }
  return Status::OK();
}

}  // namespace sose
