#include "core/csv.h"

#include <cstdio>
#include <fstream>
#include <iterator>

#include "core/check.h"
#include "core/table.h"

namespace sose {

namespace {

std::string Escape(const std::string& value) {
  const bool needs_quotes = value.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return value;
  std::string out = "\"";
  for (char c : value) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  SOSE_CHECK(!columns_.empty());
}

void CsvWriter::NewRow() { rows_.emplace_back(); }

void CsvWriter::AddCell(const std::string& value) {
  SOSE_CHECK(!rows_.empty());
  SOSE_CHECK(rows_.back().size() < columns_.size());
  rows_.back().push_back(value);
}

void CsvWriter::AddDouble(double value) { AddCell(FormatDouble(value, 10)); }

void CsvWriter::AddInt(int64_t value) { AddCell(std::to_string(value)); }

std::string CsvWriter::ToString() const {
  std::string out;
  for (size_t j = 0; j < columns_.size(); ++j) {
    out += Escape(columns_[j]);
    out += (j + 1 < columns_.size()) ? "," : "\n";
  }
  for (const auto& row : rows_) {
    for (size_t j = 0; j < columns_.size(); ++j) {
      if (j < row.size()) out += Escape(row[j]);
      out += (j + 1 < columns_.size()) ? "," : "\n";
    }
  }
  return out;
}

Status CsvWriter::WriteToFile(const std::string& path) const {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::InvalidArgument("CsvWriter: cannot open " + path);
  }
  file << ToString();
  if (!file.good()) {
    return Status::Internal("CsvWriter: write to " + path + " failed");
  }
  return Status::OK();
}

Result<CsvDocument> ParseCsv(const std::string& text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool cell_started = false;  // Distinguishes a trailing empty line from data.
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      cell_started = true;
    } else if (c == ',') {
      row.push_back(std::move(cell));
      cell.clear();
      cell_started = true;
    } else if (c == '\n') {
      if (cell_started || !cell.empty() || !row.empty()) {
        row.push_back(std::move(cell));
        cell.clear();
        records.push_back(std::move(row));
        row.clear();
        cell_started = false;
      }
    } else if (c != '\r') {
      cell += c;
      cell_started = true;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("ParseCsv: unterminated quoted cell");
  }
  if (cell_started || !cell.empty() || !row.empty()) {
    row.push_back(std::move(cell));
    records.push_back(std::move(row));
  }
  if (records.empty()) {
    return Status::InvalidArgument("ParseCsv: empty document");
  }
  CsvDocument doc;
  doc.header = std::move(records.front());
  doc.rows.assign(std::make_move_iterator(records.begin() + 1),
                  std::make_move_iterator(records.end()));
  return doc;
}

std::string FormatCsvRow(const std::vector<std::string>& cells) {
  std::string out;
  for (size_t j = 0; j < cells.size(); ++j) {
    out += Escape(cells[j]);
    out += (j + 1 < cells.size()) ? "," : "\n";
  }
  if (cells.empty()) out += '\n';
  return out;
}

Result<std::vector<std::string>> ParseCsvRecord(const std::string& line) {
  // Reuse the document parser on a single line; it already handles quoting,
  // "" escapes, and \r. Anything that parses to more than one record means
  // the caller's framing was wrong.
  SOSE_ASSIGN_OR_RETURN(CsvDocument doc, ParseCsv(line + "\n"));
  if (!doc.rows.empty()) {
    return Status::InvalidArgument(
        "ParseCsvRecord: input spans more than one record");
  }
  return doc.header;
}

std::vector<std::string> ExtractCompleteCsvRecords(std::string* buffer) {
  std::vector<std::string> records;
  size_t start = 0;
  bool in_quotes = false;
  for (size_t i = 0; i < buffer->size(); ++i) {
    const char c = (*buffer)[i];
    if (c == '"') {
      // A bare toggle is enough for framing: the escape sequence "" toggles
      // out and straight back in, leaving the state correct either way.
      in_quotes = !in_quotes;
    } else if (c == '\n' && !in_quotes) {
      size_t end = i;
      if (end > start && (*buffer)[end - 1] == '\r') --end;
      records.push_back(buffer->substr(start, end - start));
      start = i + 1;
    }
  }
  buffer->erase(0, start);
  return records;
}

Result<CsvDocument> ReadCsvFile(const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::NotFound("ReadCsvFile: cannot open " + path);
  }
  std::string text((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  if (file.bad()) {
    return Status::Internal("ReadCsvFile: read from " + path + " failed");
  }
  return ParseCsv(text);
}

}  // namespace sose
