#ifndef SOSE_CORE_CSV_H_
#define SOSE_CORE_CSV_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"

namespace sose {

/// Incremental CSV writer for exporting experiment series (for external
/// plotting). Values are quoted only when necessary per RFC 4180.
class CsvWriter {
 public:
  /// Creates a writer with the given column names.
  explicit CsvWriter(std::vector<std::string> columns);

  /// Starts a new row.
  void NewRow();

  /// Appends a cell to the current row.
  void AddCell(const std::string& value);
  void AddDouble(double value);
  void AddInt(int64_t value);

  /// Serializes header + rows.
  std::string ToString() const;

  /// Writes the document to `path`. Fails on I/O errors.
  [[nodiscard]] Status WriteToFile(const std::string& path) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// A parsed CSV document: the header row plus data rows of unescaped cells.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Parses RFC 4180 CSV text (quoted cells, "" escapes, embedded newlines and
/// commas) as produced by CsvWriter. Fails on unterminated quotes. Rows may
/// be ragged; callers validate widths. Used to read checkpoint files back.
[[nodiscard]] Result<CsvDocument> ParseCsv(const std::string& text);

/// Reads and parses a CSV file. Fails with kNotFound when the file cannot be
/// opened.
[[nodiscard]] Result<CsvDocument> ReadCsvFile(const std::string& path);

}  // namespace sose

#endif  // SOSE_CORE_CSV_H_
