#ifndef SOSE_CORE_CSV_H_
#define SOSE_CORE_CSV_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"

namespace sose {

/// Incremental CSV writer for exporting experiment series (for external
/// plotting). Values are quoted only when necessary per RFC 4180.
class CsvWriter {
 public:
  /// Creates a writer with the given column names.
  explicit CsvWriter(std::vector<std::string> columns);

  /// Starts a new row.
  void NewRow();

  /// Appends a cell to the current row.
  void AddCell(const std::string& value);
  void AddDouble(double value);
  void AddInt(int64_t value);

  /// Serializes header + rows.
  std::string ToString() const;

  /// Writes the document to `path`. Fails on I/O errors.
  [[nodiscard]] Status WriteToFile(const std::string& path) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// A parsed CSV document: the header row plus data rows of unescaped cells.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Parses RFC 4180 CSV text (quoted cells, "" escapes, embedded newlines and
/// commas) as produced by CsvWriter. Fails on unterminated quotes. Rows may
/// be ragged; callers validate widths. Used to read checkpoint files back.
[[nodiscard]] Result<CsvDocument> ParseCsv(const std::string& text);

/// Reads and parses a CSV file. Fails with kNotFound when the file cannot be
/// opened.
[[nodiscard]] Result<CsvDocument> ReadCsvFile(const std::string& path);

/// Formats one record as an RFC 4180 CSV line, terminated by '\n'. Cells are
/// quoted only when necessary, exactly like CsvWriter. This is the
/// record-at-a-time counterpart used by streaming producers (the shard wire
/// protocol) that cannot buffer a whole document.
std::string FormatCsvRow(const std::vector<std::string>& cells);

/// Parses one complete CSV record (as framed by ExtractCompleteCsvRecords or
/// produced by FormatCsvRow, without the trailing newline). Fails on
/// unterminated quotes and on text spanning more than one record.
[[nodiscard]] Result<std::vector<std::string>> ParseCsvRecord(
    const std::string& line);

/// Splits the complete CSV records off the front of `buffer`, leaving any
/// torn tail (bytes after the last record-terminating newline) in place for
/// the next append+extract round. Record boundaries are quote-aware, so an
/// embedded newline inside a quoted cell never splits a record. Returned
/// records exclude their terminating newline.
std::vector<std::string> ExtractCompleteCsvRecords(std::string* buffer);

}  // namespace sose

#endif  // SOSE_CORE_CSV_H_
