#include "core/fault.h"

#include <charconv>
#include <limits>
#include <mutex>

namespace sose {

namespace {

// Serialises scope installation and fault matching: worker threads may hit
// fault sites concurrently while a test's scope is alive. Contended only
// when injection is on (test/bench code); the fast path never takes it.
std::mutex& RegistryMutex() {
  static std::mutex mu;
  return mu;
}

// The innermost alive scope; faults consult only this one. Guarded by
// RegistryMutex().
ScopedFaultInjection* g_active = nullptr;

}  // namespace

namespace internal_fault {
std::atomic<bool> g_enabled{false};
}  // namespace internal_fault

FaultPlan& FaultPlan::FailCall(std::string site, int64_t nth, StatusCode code,
                               std::string message) {
  FaultRule rule;
  rule.site = std::move(site);
  rule.trigger_call = nth;
  rule.action = FaultAction::kReturnStatus;
  rule.code = code;
  rule.message = std::move(message);
  if (rule.message.empty()) {
    rule.message = "injected fault at " + rule.site;
  }
  rules_.push_back(std::move(rule));
  return *this;
}

FaultPlan& FaultPlan::FailEveryCall(std::string site, StatusCode code,
                                    std::string message) {
  FaultRule rule;
  rule.site = std::move(site);
  rule.trigger_call = 0;  // Sentinel: matches every call.
  rule.action = FaultAction::kReturnStatus;
  rule.code = code;
  rule.message = std::move(message);
  if (rule.message.empty()) {
    rule.message = "injected fault at " + rule.site;
  }
  rules_.push_back(std::move(rule));
  return *this;
}

FaultPlan& FaultPlan::CorruptCallNaN(std::string site, int64_t nth) {
  FaultRule rule;
  rule.site = std::move(site);
  rule.trigger_call = nth;
  rule.action = FaultAction::kCorruptNaN;
  rules_.push_back(std::move(rule));
  return *this;
}

FaultPlan& FaultPlan::CorruptCallInf(std::string site, int64_t nth) {
  FaultRule rule;
  rule.site = std::move(site);
  rule.trigger_call = nth;
  rule.action = FaultAction::kCorruptInf;
  rules_.push_back(std::move(rule));
  return *this;
}

Result<FaultPlan> ParseFaultPlan(const std::string& spec) {
  FaultPlan plan;
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string clause = spec.substr(begin, end - begin);
    begin = end + 1;
    if (clause.empty()) {
      return Status::InvalidArgument(
          "ParseFaultPlan: empty clause in '" + spec + "'");
    }
    const size_t at = clause.rfind('@');
    // rfind, because site names contain '/' but never '@'; an '@'-free
    // clause has no trigger and is rejected rather than defaulted.
    if (at == std::string::npos || at == 0 || at + 1 == clause.size()) {
      return Status::InvalidArgument(
          "ParseFaultPlan: clause '" + clause +
          "' is not of the form site@N or site@every");
    }
    const std::string site = clause.substr(0, at);
    const std::string trigger = clause.substr(at + 1);
    if (trigger == "every") {
      plan.FailEveryCall(site);
      continue;
    }
    int64_t nth = 0;
    const auto [parsed_end, ec] = std::from_chars(
        trigger.data(), trigger.data() + trigger.size(), nth, 10);
    if (ec != std::errc() || parsed_end != trigger.data() + trigger.size() ||
        nth < 1) {
      return Status::InvalidArgument(
          "ParseFaultPlan: trigger '" + trigger + "' in clause '" + clause +
          "' must be a positive integer or 'every'");
    }
    plan.FailCall(site, nth);
  }
  return plan;
}

ScopedFaultInjection::ScopedFaultInjection(FaultPlan plan)
    : plan_(std::move(plan)), fired_(plan_.rules().size(), false) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  previous_ = g_active;
  g_active = this;
  internal_fault::g_enabled.store(true, std::memory_order_relaxed);
}

ScopedFaultInjection::~ScopedFaultInjection() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  g_active = previous_;
  internal_fault::g_enabled.store(g_active != nullptr,
                                  std::memory_order_relaxed);
}

int64_t ScopedFaultInjection::CallCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto it = call_counts_.find(site);
  return it == call_counts_.end() ? 0 : it->second;
}

int64_t ScopedFaultInjection::FiredCount() const {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  int64_t fired = 0;
  for (bool f : fired_) fired += f ? 1 : 0;
  return fired;
}

const FaultRule* ScopedFaultInjection::Match(const char* site,
                                             bool value_site) {
  // Caller holds RegistryMutex().
  const int64_t call = ++call_counts_[site];
  const std::vector<FaultRule>& rules = plan_.rules();
  for (size_t i = 0; i < rules.size(); ++i) {
    const FaultRule& rule = rules[i];
    const bool is_value_rule = rule.action != FaultAction::kReturnStatus;
    if (is_value_rule != value_site) continue;
    if (rule.site != site) continue;
    if (rule.trigger_call == 0) {  // Every-call rule: never suppressed.
      fired_[i] = true;
      return &rule;
    }
    if (fired_[i]) continue;
    if (rule.trigger_call != call) continue;
    fired_[i] = true;
    return &rule;
  }
  return nullptr;
}

namespace internal_fault {

Status OnFaultPoint(const char* site) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  if (g_active == nullptr) return Status::OK();
  const FaultRule* rule = g_active->Match(site, /*value_site=*/false);
  if (rule == nullptr) return Status::OK();
  return Status(rule->code, rule->message);
}

double OnValueFaultPoint(const char* site, double value) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  if (g_active == nullptr) return value;
  const FaultRule* rule = g_active->Match(site, /*value_site=*/true);
  if (rule == nullptr) return value;
  return rule->action == FaultAction::kCorruptNaN
             ? std::numeric_limits<double>::quiet_NaN()
             : std::numeric_limits<double>::infinity();
}

}  // namespace internal_fault
}  // namespace sose
