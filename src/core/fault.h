#ifndef SOSE_CORE_FAULT_H_
#define SOSE_CORE_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/status.h"

namespace sose {

/// Deterministic fault injection for robustness tests.
///
/// Numerical kernels declare named fault sites with `SOSE_FAULT_POINT(site)`
/// (error injection) or `SOSE_FAULT_VALUE(site, expr)` (NaN/Inf corruption).
/// A test installs a `FaultPlan` through `ScopedFaultInjection`; the plan
/// fires on exact call counts at each site, so a fault lands on a chosen
/// Monte-Carlo trial reproducibly. With no scope alive the hooks cost one
/// branch on a global flag and inject nothing.
///
/// Site names follow `<translation-unit>/<routine>` (e.g.
/// "linalg_svd/jacobi", "distortion/max_factor"); see docs/robustness.md.
/// The registry is thread-safe: instrumented kernels may hit fault sites from
/// worker threads while a scope is alive (a mutex serialises matching).
/// Install and destroy scopes themselves from one thread — typically the test
/// body — before and after any parallel region that hits the sites.
/// Call-count triggers (`FailCall`) are scheduling-dependent under
/// parallelism; use `FailEveryCall` plus a seed-gated site in the kernel when
/// the set of faulted trials must be deterministic across thread counts.

/// What a matching rule does when it fires.
enum class FaultAction {
  kReturnStatus,  ///< `SOSE_FAULT_POINT` returns an error Status.
  kCorruptNaN,    ///< `SOSE_FAULT_VALUE` yields a quiet NaN.
  kCorruptInf,    ///< `SOSE_FAULT_VALUE` yields +infinity.
};

/// One planned fault: fire `action` on the `trigger_call`-th call (1-based)
/// at `site`. Each rule fires at most once, except `trigger_call == 0`
/// (installed by `FailEveryCall`), which fires on every call at the site.
struct FaultRule {
  std::string site;
  int64_t trigger_call = 1;
  FaultAction action = FaultAction::kReturnStatus;
  StatusCode code = StatusCode::kNumericalError;
  std::string message;
};

/// An ordered collection of fault rules, built fluently:
///
///   FaultPlan plan;
///   plan.FailCall("linalg_svd/jacobi", 3).CorruptCallNaN("distortion/max_factor", 1);
class FaultPlan {
 public:
  /// The `nth` call at `site` returns an error of `code` (default
  /// kNumericalError, the category real solver failures produce).
  FaultPlan& FailCall(std::string site, int64_t nth,
                      StatusCode code = StatusCode::kNumericalError,
                      std::string message = {});

  /// Every call at `site` returns an error of `code`. Unlike FailCall this
  /// trigger is independent of call ordering, so it stays deterministic when
  /// the site is reached from multiple worker threads — pair it with a
  /// seed-gated fault site in the kernel to fault a fixed set of trials.
  FaultPlan& FailEveryCall(std::string site,
                           StatusCode code = StatusCode::kNumericalError,
                           std::string message = {});

  /// The `nth` call at a value site yields NaN / +Inf instead of its value.
  FaultPlan& CorruptCallNaN(std::string site, int64_t nth);
  FaultPlan& CorruptCallInf(std::string site, int64_t nth);

  const std::vector<FaultRule>& rules() const { return rules_; }

 private:
  std::vector<FaultRule> rules_;
};

/// Parses a command-line chaos spec into a FaultPlan. The grammar is a
/// comma-separated list of `site@N` (fail the N-th call, N >= 1) and
/// `site@every` (fail every call) clauses, e.g.
///
///   --chaos=shard_worker/crash@3,shard_worker/hang@every
///
/// Injected faults use StatusCode::kNumericalError with a message naming the
/// spec clause, matching what FailCall/FailEveryCall install by default.
/// Returns kInvalidArgument naming the offending clause on malformed input
/// (empty clause, missing '@', non-positive or non-integer count).
[[nodiscard]] Result<FaultPlan> ParseFaultPlan(const std::string& spec);

namespace internal_fault {

/// True while any ScopedFaultInjection is alive. The only cost paid by
/// instrumented kernels when injection is off: one relaxed atomic load.
extern std::atomic<bool> g_enabled;

/// Counts the call and returns the injected error if a status rule matches.
[[nodiscard]] Status OnFaultPoint(const char* site);

/// Counts the call and returns `value`, NaN, or Inf per the matching rule.
double OnValueFaultPoint(const char* site, double value);

}  // namespace internal_fault

/// Activates a FaultPlan for the enclosing scope. Scopes nest: constructing
/// an inner scope shadows the outer plan, and destruction restores it along
/// with its call counts.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(FaultPlan plan);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

  /// Times `site` was reached while this scope was the active one.
  int64_t CallCount(const std::string& site) const;

  /// Total rules of this scope's plan that have fired.
  int64_t FiredCount() const;

 private:
  friend Status internal_fault::OnFaultPoint(const char* site);
  friend double internal_fault::OnValueFaultPoint(const char* site,
                                                  double value);

  /// Advances `site`'s call count and returns the matching un-fired rule of
  /// the requested kind (status vs. value), if any.
  const FaultRule* Match(const char* site, bool value_site);

  FaultPlan plan_;
  std::map<std::string, int64_t> call_counts_;
  std::vector<bool> fired_;
  ScopedFaultInjection* previous_;
};

}  // namespace sose

/// Error fault site: usable in any function returning Status or Result<T>.
/// No-op (one predictable branch) unless a ScopedFaultInjection is alive.
#define SOSE_FAULT_POINT(site)                                     \
  do {                                                             \
    if (::sose::internal_fault::g_enabled.load(                    \
            std::memory_order_relaxed)) {                          \
      ::sose::Status sose_fault_status_ =                          \
          ::sose::internal_fault::OnFaultPoint(site);              \
      if (!sose_fault_status_.ok()) return sose_fault_status_;     \
    }                                                              \
  } while (false)

/// Value fault site: evaluates to `value`, or to NaN/Inf when a corruption
/// rule fires. `value` is evaluated exactly once.
#define SOSE_FAULT_VALUE(site, value)                                        \
  (::sose::internal_fault::g_enabled.load(std::memory_order_relaxed)         \
       ? ::sose::internal_fault::OnValueFaultPoint(site, (value))            \
       : (value))

#endif  // SOSE_CORE_FAULT_H_
