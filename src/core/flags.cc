#include "core/flags.h"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace sose {

namespace {

[[noreturn]] void UsageError(const std::string& name, const std::string& value,
                             const char* expected) {
  std::fprintf(stderr,
               "invalid value for --%s: '%s' (expected %s)\n"
               "usage: --name=value | --name value | --name (boolean)\n",
               name.c_str(), value.c_str(), expected);
  std::exit(2);
}

}  // namespace

FlagParser::FlagParser(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) {
      std::fprintf(stderr, "unexpected positional argument: %s\n", argv[i]);
      std::exit(2);
    }
    arg.remove_prefix(2);
    const size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc &&
               std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      // A value that itself looks like a flag never binds here: `--a --b`
      // parses as two booleans, so `--b` cannot be swallowed as a's value.
      values_[std::string(arg)] = argv[i + 1];
      ++i;
    } else {
      values_[std::string(arg)] = "true";
    }
  }
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int64_t FlagParser::GetInt(const std::string& name,
                           int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  // Strict parse: the whole value must be one integer. strtoll's lenient
  // behavior turned `--threads=abc` into 0 and ignored trailing garbage.
  const std::string& text = it->second;
  int64_t parsed = 0;
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), parsed, 10);
  if (ec != std::errc() || end != text.data() + text.size()) {
    UsageError(name, text, "an integer");
  }
  return parsed;
}

int64_t FlagParser::GetIntInRange(const std::string& name,
                                  int64_t default_value, int64_t min_value,
                                  int64_t max_value) const {
  if (!Has(name)) return default_value;
  const int64_t parsed = GetInt(name, default_value);
  if (parsed < min_value || parsed > max_value) {
    const std::string expected = "an integer in [" +
                                 std::to_string(min_value) + ", " +
                                 std::to_string(max_value) + "]";
    UsageError(name, values_.at(name), expected.c_str());
  }
  return parsed;
}

double FlagParser::GetDouble(const std::string& name,
                             double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const std::string& text = it->second;
  double parsed = 0.0;
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), parsed);
  if (ec != std::errc() || end != text.data() + text.size()) {
    UsageError(name, text, "a number");
  }
  return parsed;
}

double FlagParser::GetDoubleInRange(const std::string& name,
                                    double default_value, double min_value,
                                    double max_value) const {
  if (!Has(name)) return default_value;
  const double parsed = GetDouble(name, default_value);
  // NaN fails both comparisons below only because they are written as
  // "inside the range" checks; keep the explicit form so the intent survives
  // refactoring.
  if (!(parsed >= min_value && parsed <= max_value)) {
    char expected[64];
    std::snprintf(expected, sizeof(expected), "a number in [%g, %g]",
                  min_value, max_value);
    UsageError(name, values_.at(name), expected);
  }
  return parsed;
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

bool FlagParser::Has(const std::string& name) const {
  return values_.contains(name);
}

}  // namespace sose
