#ifndef SOSE_CORE_FLAGS_H_
#define SOSE_CORE_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

namespace sose {

/// Minimal `--key=value` command-line parser for the experiment and example
/// binaries. Not a general flags library: every experiment declares its
/// parameters with defaults and the user overrides them positionally-free.
///
/// Accepted syntaxes: `--name=value`, `--name value`, and bare `--name`
/// (boolean true).
class FlagParser {
 public:
  /// Parses argv. Unrecognized non-flag arguments abort with a usage message
  /// (experiments take no positional arguments).
  FlagParser(int argc, char** argv);

  /// Returns the flag value or `default_value` when absent. The numeric
  /// getters are strict: a value that is not entirely one number (e.g.
  /// `--threads=abc` or `--threads=4x`) exits with the usage message rather
  /// than silently parsing to 0.
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;

  /// GetInt plus a range check: a supplied value outside [min_value,
  /// max_value] exits through the same usage path as a malformed one, naming
  /// the accepted range (e.g. `--workers=0` → "expected an integer in
  /// [1, 1024]"). The default is returned as-is and is not range-checked, so
  /// callers can use sentinel defaults (e.g. 0 = auto) while still rejecting
  /// explicit out-of-range input.
  int64_t GetIntInRange(const std::string& name, int64_t default_value,
                        int64_t min_value, int64_t max_value) const;
  double GetDouble(const std::string& name, double default_value) const;

  /// GetDouble plus a range check, with the same default-bypass rule as
  /// GetIntInRange: a supplied value outside [min_value, max_value] (NaN
  /// included — it compares false both ways and is rejected explicitly)
  /// exits through the usage path naming the accepted range. Daemon timing
  /// knobs use this so e.g. `--retry-after=0` is refused at the door instead
  /// of turning a client's retry loop into a hot spin.
  double GetDoubleInRange(const std::string& name, double default_value,
                          double min_value, double max_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  /// True if the flag was supplied.
  bool Has(const std::string& name) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace sose

#endif  // SOSE_CORE_FLAGS_H_
