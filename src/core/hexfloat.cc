#include "core/hexfloat.h"

#include <charconv>
#include <cmath>
#include <cstring>
#include <string_view>
#include <system_error>

namespace sose {

std::string FormatHexDouble(double value) {
  char buffer[64];
  const auto [end, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value,
                                       std::chars_format::hex);
  if (ec != std::errc()) return "nan";  // 64 bytes always suffice; defensive.
  std::string out(buffer, end);
  if (!std::isfinite(value)) return out;  // "inf" / "-inf" / "nan"
  // to_chars omits the 0x prefix; reinsert it for the %a-compatible shape.
  const std::size_t digits = out[0] == '-' ? 1 : 0;
  out.insert(digits, "0x");
  return out;
}

bool ParseHexDouble(const std::string& text, double* value) {
  if (text.empty()) return false;
  std::string_view view(text);
  // from_chars(hex) rejects both a leading '+' and a 0x prefix, so consume
  // them by hand; the sign is reapplied below (negating 0.0 preserves -0.0
  // bit-exactly). "inf"/"nan" pass through unprefixed.
  bool negative = false;
  if (view[0] == '+' || view[0] == '-') {
    negative = view[0] == '-';
    view.remove_prefix(1);
  }
  if (view.size() > 1 && view[0] == '0' &&
      (view[1] == 'x' || view[1] == 'X')) {
    view.remove_prefix(2);
  }
  // A second sign ("--1p+0") must not sneak through to from_chars.
  if (view.empty() || view[0] == '+' || view[0] == '-') return false;
  double parsed = 0.0;
  const auto [end, ec] = std::from_chars(view.data(), view.data() + view.size(),
                                         parsed, std::chars_format::hex);
  if (ec != std::errc() || end != view.data() + view.size()) return false;
  *value = negative ? -parsed : parsed;
  return true;
}

}  // namespace sose
