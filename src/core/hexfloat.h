#ifndef SOSE_CORE_HEXFLOAT_H_
#define SOSE_CORE_HEXFLOAT_H_

#include <string>

namespace sose {

/// Locale-independent hexfloat text for bit-exact double round-trips (the
/// trial-runner checkpoint format). printf("%a") / strtod are NOT suitable
/// here: both honor the locale's radix character, so a checkpoint written
/// under "C" fails to parse (or parses truncated) under a comma-decimal
/// locale such as de_DE. These helpers go through std::to_chars /
/// std::from_chars, which are locale-independent by specification.

/// Formats `value` in the `[-]0x1.<mantissa>p<exp>` shape printf("%a")
/// produces (non-finite values come out as inf/-inf/nan), so existing
/// checkpoints remain readable and new ones look the same.
std::string FormatHexDouble(double value);

/// Parses FormatHexDouble output (with or without the `0x` prefix) back into
/// a bit-identical double. The whole string must be consumed. Returns false
/// on empty, trailing garbage, or non-hexfloat input.
bool ParseHexDouble(const std::string& text, double* value);

}  // namespace sose

#endif  // SOSE_CORE_HEXFLOAT_H_
