#include "core/json_io.h"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace sose {

namespace {

std::string EscapeJsonString(const std::string& value) {
  std::string out;
  out.reserve(value.size() + 2);
  out += '"';
  for (char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

JsonObjectWriter& JsonObjectWriter::AddString(const std::string& key,
                                              const std::string& value) {
  fields_.emplace_back(key, EscapeJsonString(value));
  return *this;
}

JsonObjectWriter& JsonObjectWriter::AddInt(const std::string& key,
                                           int64_t value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

JsonObjectWriter& JsonObjectWriter::AddDouble(const std::string& key,
                                              double value) {
  if (!std::isfinite(value)) {
    fields_.emplace_back(key, "null");
    return *this;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  fields_.emplace_back(key, buffer);
  return *this;
}

JsonObjectWriter& JsonObjectWriter::AddBool(const std::string& key,
                                            bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
  return *this;
}

JsonObjectWriter& JsonObjectWriter::AddObject(const std::string& key,
                                              const JsonObjectWriter& child) {
  fields_.emplace_back(key, child.ToInlineString());
  return *this;
}

std::string JsonObjectWriter::ToString() const {
  std::ostringstream out;
  out << "{\n";
  for (size_t i = 0; i < fields_.size(); ++i) {
    out << "  " << EscapeJsonString(fields_[i].first) << ": "
        << fields_[i].second;
    if (i + 1 < fields_.size()) out << ",";
    out << "\n";
  }
  out << "}\n";
  return out.str();
}

std::string JsonObjectWriter::ToInlineString() const {
  std::ostringstream out;
  out << "{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out << ", ";
    out << EscapeJsonString(fields_[i].first) << ": " << fields_[i].second;
  }
  out << "}";
  return out.str();
}

Status JsonObjectWriter::WriteToFile(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::trunc);
    if (!file.good()) {
      return Status::Internal("JsonObjectWriter: cannot open " + tmp);
    }
    file << ToString();
    if (!file.good()) {
      return Status::Internal("JsonObjectWriter: write to " + tmp + " failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("JsonObjectWriter: rename to " + path +
                            " failed: " + std::strerror(errno));
  }
  return Status::OK();
}

namespace {

bool IsJsonSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

}  // namespace

bool FindJsonNumber(const std::string& text, const std::string& key,
                    double* value) {
  // A structural walk instead of a substring search: string literals are
  // skipped as units and nesting depth is tracked, so `key` can only match a
  // key of the outermost object — never a same-named key inside a nested
  // `metrics` block, nor text embedded in a string value.
  const std::string needle = EscapeJsonString(key);
  const size_t n = text.size();
  int depth = 0;
  size_t i = 0;
  while (i < n) {
    const char c = text[i];
    if (c == '{' || c == '[') {
      ++depth;
      ++i;
      continue;
    }
    if (c == '}' || c == ']') {
      --depth;
      ++i;
      continue;
    }
    if (c != '"') {
      ++i;
      continue;
    }
    // Scan the whole string literal, honoring backslash escapes.
    size_t j = i + 1;
    while (j < n && text[j] != '"') {
      if (text[j] == '\\') ++j;
      ++j;
    }
    if (j >= n) return false;  // Unterminated string: malformed document.
    size_t cursor = j + 1;
    while (cursor < n && IsJsonSpace(text[cursor])) ++cursor;
    const bool matches = depth == 1 && cursor < n && text[cursor] == ':' &&
                         j + 1 - i == needle.size() &&
                         text.compare(i, needle.size(), needle) == 0;
    if (!matches) {
      i = j + 1;
      continue;
    }
    ++cursor;  // Consume ':'.
    while (cursor < n && IsJsonSpace(text[cursor])) ++cursor;
    // std::from_chars is locale-independent, unlike strtod, which under a
    // comma-decimal locale would stop parsing "1.5" at the '.'.
    double parsed = 0.0;
    const auto [end, ec] =
        std::from_chars(text.data() + cursor, text.data() + n, parsed);
    if (ec != std::errc() || end == text.data() + cursor) return false;
    *value = parsed;
    return true;
  }
  return false;
}

Status WriteStringToFile(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::trunc);
    if (!file.good()) {
      return Status::Internal("WriteStringToFile: cannot open " + tmp);
    }
    file << content;
    if (!file.good()) {
      // Don't leave the torn temporary behind: a later write would rename
      // it into place as if it were complete.
      std::remove(tmp.c_str());
      return Status::Internal("WriteStringToFile: write to " + tmp + " failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status failed =
        Status::Internal("WriteStringToFile: rename to " + path +
                         " failed: " + std::strerror(errno));
    std::remove(tmp.c_str());
    return failed;
  }
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream file(path);
  if (!file.good()) {
    return Status::NotFound("ReadFileToString: cannot open " + path);
  }
  std::ostringstream out;
  out << file.rdbuf();
  return out.str();
}

}  // namespace sose
