#include "core/json_io.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace sose {

namespace {

std::string EscapeJsonString(const std::string& value) {
  std::string out;
  out.reserve(value.size() + 2);
  out += '"';
  for (char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

JsonObjectWriter& JsonObjectWriter::AddString(const std::string& key,
                                              const std::string& value) {
  fields_.emplace_back(key, EscapeJsonString(value));
  return *this;
}

JsonObjectWriter& JsonObjectWriter::AddInt(const std::string& key,
                                           int64_t value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

JsonObjectWriter& JsonObjectWriter::AddDouble(const std::string& key,
                                              double value) {
  if (!std::isfinite(value)) {
    fields_.emplace_back(key, "null");
    return *this;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  fields_.emplace_back(key, buffer);
  return *this;
}

JsonObjectWriter& JsonObjectWriter::AddBool(const std::string& key,
                                            bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
  return *this;
}

std::string JsonObjectWriter::ToString() const {
  std::ostringstream out;
  out << "{\n";
  for (size_t i = 0; i < fields_.size(); ++i) {
    out << "  " << EscapeJsonString(fields_[i].first) << ": "
        << fields_[i].second;
    if (i + 1 < fields_.size()) out << ",";
    out << "\n";
  }
  out << "}\n";
  return out.str();
}

Status JsonObjectWriter::WriteToFile(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::trunc);
    if (!file.good()) {
      return Status::Internal("JsonObjectWriter: cannot open " + tmp);
    }
    file << ToString();
    if (!file.good()) {
      return Status::Internal("JsonObjectWriter: write to " + tmp + " failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("JsonObjectWriter: rename to " + path +
                            " failed: " + std::strerror(errno));
  }
  return Status::OK();
}

bool FindJsonNumber(const std::string& text, const std::string& key,
                    double* value) {
  const std::string needle = EscapeJsonString(key);
  size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    size_t cursor = pos + needle.size();
    while (cursor < text.size() &&
           (text[cursor] == ' ' || text[cursor] == '\t')) {
      ++cursor;
    }
    if (cursor >= text.size() || text[cursor] != ':') {
      pos += needle.size();
      continue;
    }
    ++cursor;
    while (cursor < text.size() &&
           (text[cursor] == ' ' || text[cursor] == '\t')) {
      ++cursor;
    }
    char* end = nullptr;
    errno = 0;
    const double parsed = std::strtod(text.c_str() + cursor, &end);
    if (end == text.c_str() + cursor || errno != 0) return false;
    *value = parsed;
    return true;
  }
  return false;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream file(path);
  if (!file.good()) {
    return Status::NotFound("ReadFileToString: cannot open " + path);
  }
  std::ostringstream out;
  out << file.rdbuf();
  return out.str();
}

}  // namespace sose
