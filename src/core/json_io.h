#ifndef SOSE_CORE_JSON_IO_H_
#define SOSE_CORE_JSON_IO_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/status.h"

namespace sose {

/// Writer for the flat JSON objects the bench suite emits as machine-readable
/// perf baselines (`BENCH_<exp>.json`). Deliberately minimal: one object,
/// scalar fields only, insertion order preserved. Doubles are printed with 17
/// significant digits so they round-trip; non-finite doubles become `null`
/// (JSON has no NaN/Inf).
class JsonObjectWriter {
 public:
  JsonObjectWriter& AddString(const std::string& key, const std::string& value);
  JsonObjectWriter& AddInt(const std::string& key, int64_t value);
  JsonObjectWriter& AddDouble(const std::string& key, double value);
  JsonObjectWriter& AddBool(const std::string& key, bool value);

  /// `{"key": value, ...}` plus a trailing newline.
  std::string ToString() const;

  /// Writes the object to `path` through a temp file + rename, so readers
  /// never observe a torn document.
  [[nodiscard]] Status WriteToFile(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;  // key → raw JSON
};

/// Scans flat JSON `text` for `"key": <number>` and parses the number.
/// Returns false when the key is absent or its value is not numeric. This is
/// the reader half of the BENCH_*.json handshake (a threaded bench run looks
/// up the recorded serial baseline); it is not a general JSON parser.
bool FindJsonNumber(const std::string& text, const std::string& key,
                    double* value);

/// Reads a whole file into a string. Fails with kNotFound when the file
/// cannot be opened.
[[nodiscard]] Result<std::string> ReadFileToString(const std::string& path);

}  // namespace sose

#endif  // SOSE_CORE_JSON_IO_H_
