#ifndef SOSE_CORE_JSON_IO_H_
#define SOSE_CORE_JSON_IO_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/status.h"

namespace sose {

/// Writer for the JSON objects the bench suite emits as machine-readable
/// perf baselines (`BENCH_<exp>.json`). Deliberately minimal: one object,
/// scalar or nested-object fields, insertion order preserved. Doubles are
/// printed with 17 significant digits so they round-trip; non-finite doubles
/// become `null` (JSON has no NaN/Inf).
class JsonObjectWriter {
 public:
  JsonObjectWriter& AddString(const std::string& key, const std::string& value);
  JsonObjectWriter& AddInt(const std::string& key, int64_t value);
  JsonObjectWriter& AddDouble(const std::string& key, double value);
  JsonObjectWriter& AddBool(const std::string& key, bool value);
  /// Embeds `child` (rendered single-line) as a nested object under `key` —
  /// how the bench suite attaches the `metrics` block.
  JsonObjectWriter& AddObject(const std::string& key,
                              const JsonObjectWriter& child);

  /// `{"key": value, ...}` pretty-printed, plus a trailing newline.
  std::string ToString() const;

  /// `{"key": value, ...}` on one line, no trailing newline — the form used
  /// when this object is nested inside another.
  std::string ToInlineString() const;

  /// Writes the object to `path` through a temp file + rename, so readers
  /// never observe a torn document.
  [[nodiscard]] Status WriteToFile(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;  // key → raw JSON
};

/// Scans JSON `text` for a top-level `"key": <number>` and parses the number
/// with a locale-independent parser. Only keys of the outermost object match:
/// an identically named key inside a nested object (e.g. inside the `metrics`
/// block) or inside a string value is skipped. Returns false when the key is
/// absent at the top level or its value is not numeric. This is the reader
/// half of the BENCH_*.json handshake; it is not a general JSON parser.
bool FindJsonNumber(const std::string& text, const std::string& key,
                    double* value);

/// Writes `content` to `path` through a temp file + rename.
[[nodiscard]] Status WriteStringToFile(const std::string& path,
                                       const std::string& content);

/// Reads a whole file into a string. Fails with kNotFound when the file
/// cannot be opened.
[[nodiscard]] Result<std::string> ReadFileToString(const std::string& path);

}  // namespace sose

#endif  // SOSE_CORE_JSON_IO_H_
