#include "core/linalg_cholesky.h"

#include <cmath>

#include "core/fault.h"

namespace sose {

Result<Cholesky> Cholesky::Factor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky: matrix must be square");
  }
  SOSE_FAULT_POINT("linalg_cholesky/factor");
  const int64_t n = a.rows();
  Matrix l(n, n);
  for (int64_t j = 0; j < n; ++j) {
    double diag = a.At(j, j);
    for (int64_t k = 0; k < j; ++k) diag -= l.At(j, k) * l.At(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status::NumericalError("Cholesky: matrix is not positive definite");
    }
    const double l_jj = std::sqrt(diag);
    l.At(j, j) = l_jj;
    for (int64_t i = j + 1; i < n; ++i) {
      double sum = a.At(i, j);
      for (int64_t k = 0; k < j; ++k) sum -= l.At(i, k) * l.At(j, k);
      l.At(i, j) = sum / l_jj;
    }
  }
  return Cholesky(std::move(l));
}

std::vector<double> Cholesky::SolveLower(const std::vector<double>& b) const {
  const int64_t n = l_.rows();
  SOSE_CHECK(static_cast<int64_t>(b.size()) == n);
  std::vector<double> y(static_cast<size_t>(n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    double sum = b[static_cast<size_t>(i)];
    for (int64_t k = 0; k < i; ++k) sum -= l_.At(i, k) * y[static_cast<size_t>(k)];
    y[static_cast<size_t>(i)] = sum / l_.At(i, i);
  }
  return y;
}

std::vector<double> Cholesky::SolveLowerTransposed(
    const std::vector<double>& b) const {
  const int64_t n = l_.rows();
  SOSE_CHECK(static_cast<int64_t>(b.size()) == n);
  std::vector<double> x(static_cast<size_t>(n), 0.0);
  for (int64_t i = n - 1; i >= 0; --i) {
    double sum = b[static_cast<size_t>(i)];
    for (int64_t k = i + 1; k < n; ++k) sum -= l_.At(k, i) * x[static_cast<size_t>(k)];
    x[static_cast<size_t>(i)] = sum / l_.At(i, i);
  }
  return x;
}

std::vector<double> Cholesky::Solve(const std::vector<double>& b) const {
  return SolveLowerTransposed(SolveLower(b));
}

Matrix Cholesky::SolveLowerMatrix(const Matrix& b) const {
  const int64_t n = l_.rows();
  SOSE_CHECK(b.rows() == n);
  Matrix x = b;
  // Forward substitution on all columns simultaneously (row-major friendly).
  for (int64_t i = 0; i < n; ++i) {
    double* xi = x.Row(i);
    for (int64_t k = 0; k < i; ++k) {
      const double l_ik = l_.At(i, k);
      if (l_ik == 0.0) continue;
      const double* xk = x.Row(k);
      for (int64_t j = 0; j < b.cols(); ++j) xi[j] -= l_ik * xk[j];
    }
    const double inv = 1.0 / l_.At(i, i);
    for (int64_t j = 0; j < b.cols(); ++j) xi[j] *= inv;
  }
  return x;
}

double Cholesky::LogDeterminant() const {
  double sum = 0.0;
  for (int64_t i = 0; i < l_.rows(); ++i) sum += std::log(l_.At(i, i));
  return 2.0 * sum;
}

}  // namespace sose
