#ifndef SOSE_CORE_LINALG_CHOLESKY_H_
#define SOSE_CORE_LINALG_CHOLESKY_H_

#include <vector>

#include "core/matrix.h"
#include "core/status.h"

namespace sose {

/// Cholesky factorization A = L Lᵀ of a symmetric positive-definite matrix.
///
/// Used by the generalized symmetric eigenproblem that measures subspace
/// distortion relative to a non-orthonormal basis (‖ΠUx‖²/‖Ux‖² extremes).
class Cholesky {
 public:
  /// Factors the symmetric matrix `a` (only the lower triangle is read).
  /// Fails with NumericalError if `a` is not positive definite.
  [[nodiscard]] static Result<Cholesky> Factor(const Matrix& a);

  /// The lower-triangular factor L.
  const Matrix& L() const { return l_; }

  /// Solves A x = b via the two triangular solves.
  std::vector<double> Solve(const std::vector<double>& b) const;

  /// Solves L y = b (forward substitution).
  std::vector<double> SolveLower(const std::vector<double>& b) const;

  /// Solves Lᵀ x = b (back substitution).
  std::vector<double> SolveLowerTransposed(const std::vector<double>& b) const;

  /// Returns L⁻¹ B, i.e. solves L X = B column-wise.
  Matrix SolveLowerMatrix(const Matrix& b) const;

  /// log(det A) = 2 Σ log L_ii.
  double LogDeterminant() const;

 private:
  explicit Cholesky(Matrix l) : l_(std::move(l)) {}
  Matrix l_;
};

}  // namespace sose

#endif  // SOSE_CORE_LINALG_CHOLESKY_H_
