#include "core/linalg_eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/fault.h"
#include "core/linalg_cholesky.h"
#include "core/linalg_tridiag.h"

namespace sose {

namespace {

// Sum of squares of strictly-off-diagonal entries.
double OffDiagonalMass(const Matrix& a) {
  double sum = 0.0;
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) {
      if (i != j) sum += a.At(i, j) * a.At(i, j);
    }
  }
  return sum;
}

Result<SymmetricEigen> JacobiImpl(const Matrix& input, int max_sweeps,
                                  double tol, bool want_vectors) {
  if (input.rows() != input.cols()) {
    return Status::InvalidArgument("JacobiEigenSymmetric: matrix must be square");
  }
  const int64_t n = input.rows();
  // Symmetrize from the lower triangle.
  Matrix a(n, n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j <= i; ++j) {
      a.At(i, j) = input.At(i, j);
      a.At(j, i) = input.At(i, j);
    }
  }
  Matrix v = want_vectors ? Matrix::Identity(n) : Matrix();
  const double frob = a.FrobeniusNorm();
  const double threshold = tol * std::max(frob, 1e-300);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (std::sqrt(OffDiagonalMass(a)) <= threshold) {
      SymmetricEigen out;
      out.values.resize(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) out.values[static_cast<size_t>(i)] = a.At(i, i);
      // Sort ascending, permuting vectors to match.
      std::vector<int64_t> order(static_cast<size_t>(n));
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&out](int64_t x, int64_t y) {
        return out.values[static_cast<size_t>(x)] < out.values[static_cast<size_t>(y)];
      });
      std::vector<double> sorted(static_cast<size_t>(n));
      Matrix sorted_vectors = want_vectors ? Matrix(n, n) : Matrix();
      for (int64_t k = 0; k < n; ++k) {
        sorted[static_cast<size_t>(k)] = out.values[static_cast<size_t>(order[static_cast<size_t>(k)])];
        if (want_vectors) {
          for (int64_t i = 0; i < n; ++i) {
            sorted_vectors.At(i, k) = v.At(i, order[static_cast<size_t>(k)]);
          }
        }
      }
      out.values = std::move(sorted);
      out.vectors = std::move(sorted_vectors);
      return out;
    }
    for (int64_t p = 0; p < n - 1; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        const double apq = a.At(p, q);
        if (std::fabs(apq) <= threshold / static_cast<double>(n)) continue;
        const double app = a.At(p, p);
        const double aqq = a.At(q, q);
        // Classic Jacobi rotation angle selection.
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Update A = Jᵀ A J on rows/cols p, q.
        for (int64_t k = 0; k < n; ++k) {
          const double akp = a.At(k, p);
          const double akq = a.At(k, q);
          a.At(k, p) = c * akp - s * akq;
          a.At(k, q) = s * akp + c * akq;
        }
        for (int64_t k = 0; k < n; ++k) {
          const double apk = a.At(p, k);
          const double aqk = a.At(q, k);
          a.At(p, k) = c * apk - s * aqk;
          a.At(q, k) = s * apk + c * aqk;
        }
        if (want_vectors) {
          for (int64_t k = 0; k < n; ++k) {
            const double vkp = v.At(k, p);
            const double vkq = v.At(k, q);
            v.At(k, p) = c * vkp - s * vkq;
            v.At(k, q) = s * vkp + c * vkq;
          }
        }
      }
    }
  }
  return Status::NumericalError(
      "JacobiEigenSymmetric: sweep limit exceeded without convergence");
}

}  // namespace

Result<SymmetricEigen> JacobiEigenSymmetric(const Matrix& a, int max_sweeps,
                                            double tol) {
  return JacobiImpl(a, max_sweeps, tol, /*want_vectors=*/true);
}

Result<std::vector<double>> SymmetricEigenvalues(const Matrix& a,
                                                 int max_sweeps, double tol) {
  SOSE_FAULT_POINT("linalg_eigen/symmetric_eigenvalues");
  // Values-only requests on larger matrices dispatch to the
  // tridiagonalization + QL pipeline, which is O(n³) with a far smaller
  // constant than Jacobi sweeps; small matrices stay on Jacobi, whose
  // rotations are branch-free and slightly more accurate there.
  constexpr int64_t kQlThreshold = 32;
  if (a.rows() == a.cols() && a.rows() > kQlThreshold) {
    return SymmetricEigenvaluesQl(a);
  }
  SOSE_ASSIGN_OR_RETURN(SymmetricEigen eigen,
                        JacobiImpl(a, max_sweeps, tol, /*want_vectors=*/false));
  return std::move(eigen.values);
}

Result<std::vector<double>> GeneralizedSymmetricEigenvalues(const Matrix& a,
                                                            const Matrix& b) {
  if (a.rows() != a.cols() || b.rows() != b.cols() || a.rows() != b.rows()) {
    return Status::InvalidArgument(
        "GeneralizedSymmetricEigenvalues: shape mismatch");
  }
  SOSE_ASSIGN_OR_RETURN(Cholesky chol, Cholesky::Factor(b));
  // M = L⁻¹ A L⁻ᵀ, computed as L⁻¹ (L⁻¹ Aᵀ)ᵀ; A is symmetric so Aᵀ = A.
  Matrix half = chol.SolveLowerMatrix(a);          // L⁻¹ A
  Matrix m = chol.SolveLowerMatrix(half.Transposed());  // L⁻¹ (L⁻¹ A)ᵀ
  return SymmetricEigenvalues(m);
}

}  // namespace sose
