#ifndef SOSE_CORE_LINALG_EIGEN_H_
#define SOSE_CORE_LINALG_EIGEN_H_

#include <vector>

#include "core/matrix.h"
#include "core/status.h"

namespace sose {

/// Result of a symmetric eigendecomposition A = V diag(λ) Vᵀ.
struct SymmetricEigen {
  /// Eigenvalues in ascending order.
  std::vector<double> values;
  /// Orthonormal eigenvectors as columns, ordered to match `values`.
  Matrix vectors;
};

/// Computes the full eigendecomposition of a symmetric matrix using the
/// cyclic Jacobi rotation method. Robust and accurate for the small/medium
/// (d x d) Gram matrices this library produces. Only the lower triangle of
/// `a` is trusted; the matrix is symmetrized internally.
///
/// Fails with NumericalError if the sweep limit is exceeded before
/// off-diagonal mass drops below tolerance.
[[nodiscard]] Result<SymmetricEigen> JacobiEigenSymmetric(const Matrix& a,
                                                          int max_sweeps = 64,
                                                          double tol = 1e-13);

/// Eigenvalues only (ascending); same algorithm without accumulating vectors.
[[nodiscard]] Result<std::vector<double>> SymmetricEigenvalues(const Matrix& a,
                                                               int max_sweeps = 64,
                                                               double tol = 1e-13);

/// Solves the symmetric-definite generalized eigenproblem A x = λ B x with
/// B positive definite, by the standard reduction M = L⁻¹ A L⁻ᵀ where
/// B = L Lᵀ. Returns eigenvalues in ascending order.
///
/// This is exactly the computation behind "distortion of Π on span(U)":
/// with A = (ΠU)ᵀ(ΠU) and B = UᵀU, the extreme generalized eigenvalues are
/// the extremes of ‖ΠUx‖²/‖Ux‖².
[[nodiscard]] Result<std::vector<double>> GeneralizedSymmetricEigenvalues(const Matrix& a,
                                                                          const Matrix& b);

}  // namespace sose

#endif  // SOSE_CORE_LINALG_EIGEN_H_
