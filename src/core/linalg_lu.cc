#include "core/linalg_lu.h"

#include <cmath>
#include <numeric>

namespace sose {

Result<PartialPivLu> PartialPivLu::Factor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("PartialPivLu: matrix must be square");
  }
  const int64_t n = a.rows();
  Matrix lu = a;
  std::vector<int64_t> perm(static_cast<size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  int sign = 1;
  for (int64_t k = 0; k < n; ++k) {
    // Partial pivot: largest |entry| in column k at or below the diagonal.
    int64_t pivot_row = k;
    double pivot_val = std::fabs(lu.At(k, k));
    for (int64_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(lu.At(i, k));
      if (v > pivot_val) {
        pivot_val = v;
        pivot_row = i;
      }
    }
    if (pivot_val == 0.0) {
      return Status::NumericalError("PartialPivLu: matrix is singular");
    }
    if (pivot_row != k) {
      for (int64_t j = 0; j < n; ++j) {
        std::swap(lu.At(k, j), lu.At(pivot_row, j));
      }
      std::swap(perm[static_cast<size_t>(k)], perm[static_cast<size_t>(pivot_row)]);
      sign = -sign;
    }
    const double inv_pivot = 1.0 / lu.At(k, k);
    for (int64_t i = k + 1; i < n; ++i) {
      const double factor = lu.At(i, k) * inv_pivot;
      lu.At(i, k) = factor;
      if (factor == 0.0) continue;
      for (int64_t j = k + 1; j < n; ++j) {
        lu.At(i, j) -= factor * lu.At(k, j);
      }
    }
  }
  return PartialPivLu(std::move(lu), std::move(perm), sign);
}

std::vector<double> PartialPivLu::Solve(const std::vector<double>& b) const {
  const int64_t n = lu_.rows();
  SOSE_CHECK(static_cast<int64_t>(b.size()) == n);
  std::vector<double> x(static_cast<size_t>(n));
  // Apply permutation, then forward substitution with unit-lower L.
  for (int64_t i = 0; i < n; ++i) {
    double sum = b[static_cast<size_t>(perm_[static_cast<size_t>(i)])];
    for (int64_t j = 0; j < i; ++j) sum -= lu_.At(i, j) * x[static_cast<size_t>(j)];
    x[static_cast<size_t>(i)] = sum;
  }
  // Back substitution with U.
  for (int64_t i = n - 1; i >= 0; --i) {
    double sum = x[static_cast<size_t>(i)];
    for (int64_t j = i + 1; j < n; ++j) sum -= lu_.At(i, j) * x[static_cast<size_t>(j)];
    x[static_cast<size_t>(i)] = sum / lu_.At(i, i);
  }
  return x;
}

Matrix PartialPivLu::SolveMatrix(const Matrix& b) const {
  SOSE_CHECK(b.rows() == lu_.rows());
  Matrix x(b.rows(), b.cols());
  for (int64_t j = 0; j < b.cols(); ++j) {
    std::vector<double> col = b.Col(j);
    std::vector<double> sol = Solve(col);
    for (int64_t i = 0; i < b.rows(); ++i) x.At(i, j) = sol[static_cast<size_t>(i)];
  }
  return x;
}

Matrix PartialPivLu::Inverse() const {
  return SolveMatrix(Matrix::Identity(lu_.rows()));
}

double PartialPivLu::Determinant() const {
  double det = static_cast<double>(sign_);
  for (int64_t i = 0; i < lu_.rows(); ++i) det *= lu_.At(i, i);
  return det;
}

}  // namespace sose
