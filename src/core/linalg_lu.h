#ifndef SOSE_CORE_LINALG_LU_H_
#define SOSE_CORE_LINALG_LU_H_

#include <vector>

#include "core/matrix.h"
#include "core/status.h"

namespace sose {

/// LU factorization with partial pivoting: P A = L U.
///
/// General-purpose square solver used by the downstream applications
/// (normal-equation solves in tests, matrix inversion for verification).
class PartialPivLu {
 public:
  /// Factors the square matrix `a`. Fails with NumericalError if a zero
  /// pivot is encountered (singular to working precision).
  [[nodiscard]] static Result<PartialPivLu> Factor(const Matrix& a);

  /// Solves A x = b.
  std::vector<double> Solve(const std::vector<double>& b) const;

  /// Solves A X = B column-wise.
  Matrix SolveMatrix(const Matrix& b) const;

  /// Returns A⁻¹.
  Matrix Inverse() const;

  /// det(A), including the pivot sign.
  double Determinant() const;

 private:
  PartialPivLu(Matrix lu, std::vector<int64_t> perm, int sign)
      : lu_(std::move(lu)), perm_(std::move(perm)), sign_(sign) {}

  Matrix lu_;                 // L below diagonal (unit), U on/above.
  std::vector<int64_t> perm_; // Row permutation: solve uses b[perm_[i]].
  int sign_;                  // Permutation parity for the determinant.
};

}  // namespace sose

#endif  // SOSE_CORE_LINALG_LU_H_
