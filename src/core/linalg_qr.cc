#include "core/linalg_qr.h"

#include <cmath>

#include "core/fault.h"

namespace sose {

Result<HouseholderQr> HouseholderQr::Factor(const Matrix& a) {
  const int64_t m = a.rows();
  const int64_t n = a.cols();
  if (m < n) {
    return Status::InvalidArgument(
        "HouseholderQr requires rows >= cols (tall matrix)");
  }
  SOSE_FAULT_POINT("linalg_qr/factor");
  Matrix qr = a;
  std::vector<double> taus(static_cast<size_t>(n), 0.0);
  for (int64_t k = 0; k < n; ++k) {
    // Build the Householder reflector annihilating qr(k+1..m-1, k).
    double norm_sq = 0.0;
    for (int64_t i = k; i < m; ++i) norm_sq += qr.At(i, k) * qr.At(i, k);
    const double norm = std::sqrt(norm_sq);
    if (norm == 0.0) {
      taus[static_cast<size_t>(k)] = 0.0;
      continue;
    }
    const double alpha = qr.At(k, k) >= 0.0 ? -norm : norm;
    // v = x - alpha e1, normalized so v[k] = 1.
    const double v_k = qr.At(k, k) - alpha;
    // tau = 2 / (vᵀv) with v unnormalized = (x_k - alpha, x_{k+1}, ...).
    // With the v[k]=1 normalization, tau = v_kᵀ v_k * 2 / ||v||² simplifies:
    const double v_norm_sq = norm_sq - 2.0 * alpha * qr.At(k, k) + alpha * alpha;
    const double tau = 2.0 * (v_k * v_k) / v_norm_sq;
    for (int64_t i = k + 1; i < m; ++i) qr.At(i, k) /= v_k;
    taus[static_cast<size_t>(k)] = tau;
    // Apply reflector to the trailing columns: A := (I - tau v vᵀ) A.
    for (int64_t j = k + 1; j < n; ++j) {
      double dot = qr.At(k, j);
      for (int64_t i = k + 1; i < m; ++i) dot += qr.At(i, k) * qr.At(i, j);
      const double scale = tau * dot;
      qr.At(k, j) -= scale;
      for (int64_t i = k + 1; i < m; ++i) qr.At(i, j) -= scale * qr.At(i, k);
    }
    qr.At(k, k) = alpha;
  }
  return HouseholderQr(std::move(qr), std::move(taus));
}

Matrix HouseholderQr::ThinQ() const {
  const int64_t m = qr_.rows();
  const int64_t n = qr_.cols();
  Matrix q(m, n);
  // Accumulate Q = H_0 H_1 ... H_{n-1} applied to the first n columns of I,
  // working backwards so each reflector touches a growing suffix.
  for (int64_t j = 0; j < n; ++j) q.At(j, j) = 1.0;
  for (int64_t k = n - 1; k >= 0; --k) {
    const double tau = taus_[static_cast<size_t>(k)];
    if (tau == 0.0) continue;
    for (int64_t j = 0; j < n; ++j) {
      double dot = q.At(k, j);
      for (int64_t i = k + 1; i < m; ++i) dot += qr_.At(i, k) * q.At(i, j);
      const double scale = tau * dot;
      q.At(k, j) -= scale;
      for (int64_t i = k + 1; i < m; ++i) q.At(i, j) -= scale * qr_.At(i, k);
    }
  }
  return q;
}

Matrix HouseholderQr::R() const {
  const int64_t n = qr_.cols();
  Matrix r(n, n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i; j < n; ++j) r.At(i, j) = qr_.At(i, j);
  }
  return r;
}

void HouseholderQr::ApplyQTranspose(std::vector<double>* x) const {
  const int64_t m = qr_.rows();
  const int64_t n = qr_.cols();
  SOSE_CHECK(static_cast<int64_t>(x->size()) == m);
  for (int64_t k = 0; k < n; ++k) {
    const double tau = taus_[static_cast<size_t>(k)];
    if (tau == 0.0) continue;
    double dot = (*x)[static_cast<size_t>(k)];
    for (int64_t i = k + 1; i < m; ++i) {
      dot += qr_.At(i, k) * (*x)[static_cast<size_t>(i)];
    }
    const double scale = tau * dot;
    (*x)[static_cast<size_t>(k)] -= scale;
    for (int64_t i = k + 1; i < m; ++i) {
      (*x)[static_cast<size_t>(i)] -= scale * qr_.At(i, k);
    }
  }
}

Result<std::vector<double>> HouseholderQr::SolveLeastSquares(
    const std::vector<double>& b) const {
  const int64_t m = qr_.rows();
  const int64_t n = qr_.cols();
  if (static_cast<int64_t>(b.size()) != m) {
    return Status::InvalidArgument("SolveLeastSquares: b has wrong length");
  }
  std::vector<double> y = b;
  ApplyQTranspose(&y);
  // Back-substitute R x = y[0..n-1].
  double max_diag = 0.0;
  for (int64_t k = 0; k < n; ++k) {
    max_diag = std::max(max_diag, std::fabs(qr_.At(k, k)));
  }
  std::vector<double> x(static_cast<size_t>(n), 0.0);
  for (int64_t i = n - 1; i >= 0; --i) {
    const double diag = qr_.At(i, i);
    if (std::fabs(diag) <= 1e-13 * max_diag || diag == 0.0) {
      return Status::NumericalError("SolveLeastSquares: R is singular");
    }
    double sum = y[static_cast<size_t>(i)];
    for (int64_t j = i + 1; j < n; ++j) {
      sum -= qr_.At(i, j) * x[static_cast<size_t>(j)];
    }
    x[static_cast<size_t>(i)] = sum / diag;
  }
  return x;
}

int64_t HouseholderQr::RankEstimate(double tol) const {
  const int64_t n = qr_.cols();
  double max_diag = 0.0;
  for (int64_t k = 0; k < n; ++k) {
    max_diag = std::max(max_diag, std::fabs(qr_.At(k, k)));
  }
  if (max_diag == 0.0) return 0;
  int64_t rank = 0;
  for (int64_t k = 0; k < n; ++k) {
    if (std::fabs(qr_.At(k, k)) > tol * max_diag) ++rank;
  }
  return rank;
}

Result<Matrix> Orthonormalize(const Matrix& a, double tol) {
  SOSE_ASSIGN_OR_RETURN(HouseholderQr qr, HouseholderQr::Factor(a));
  if (qr.RankEstimate(tol) < a.cols()) {
    return Status::NumericalError(
        "Orthonormalize: input is numerically column-rank-deficient");
  }
  return qr.ThinQ();
}

}  // namespace sose
