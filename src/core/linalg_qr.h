#ifndef SOSE_CORE_LINALG_QR_H_
#define SOSE_CORE_LINALG_QR_H_

#include <vector>

#include "core/matrix.h"
#include "core/status.h"

namespace sose {

/// Householder QR factorization of an m x n matrix with m >= n.
///
/// Produces the thin factorization A = Q R with Q (m x n) having orthonormal
/// columns and R (n x n) upper triangular. Used to orthonormalize random
/// subspace bases and as the solver behind sketch-and-solve least squares.
class HouseholderQr {
 public:
  /// Factors `a`. Fails with InvalidArgument if a.rows() < a.cols().
  [[nodiscard]] static Result<HouseholderQr> Factor(const Matrix& a);

  /// The thin orthonormal factor Q (m x n).
  Matrix ThinQ() const;

  /// The upper-triangular factor R (n x n).
  Matrix R() const;

  /// Solves the least-squares problem min_x ||A x - b||_2. `b` must have
  /// length m. Fails with NumericalError if R is (numerically) singular.
  [[nodiscard]] Result<std::vector<double>> SolveLeastSquares(
      const std::vector<double>& b) const;

  /// Rank estimate: the number of diagonal entries of R exceeding
  /// `tol * max_diag`.
  int64_t RankEstimate(double tol = 1e-12) const;

 private:
  HouseholderQr(Matrix qr, std::vector<double> taus)
      : qr_(std::move(qr)), taus_(std::move(taus)) {}

  // Applies Qᵀ to a length-m vector in place.
  void ApplyQTranspose(std::vector<double>* x) const;

  // Packed factorization: R in the upper triangle, Householder vectors below
  // the diagonal (v_k has implicit 1 at position k).
  Matrix qr_;
  std::vector<double> taus_;
};

/// Orthonormalizes the columns of `a` (m x n, m >= n): returns a matrix with
/// the same column span and orthonormal columns. Fails if `a` is
/// column-rank-deficient beyond `tol`.
[[nodiscard]] Result<Matrix> Orthonormalize(const Matrix& a, double tol = 1e-10);

}  // namespace sose

#endif  // SOSE_CORE_LINALG_QR_H_
