#include "core/linalg_svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/fault.h"

namespace sose {

Result<Svd> JacobiSvd(const Matrix& a, int max_sweeps, double tol) {
  const int64_t m = a.rows();
  const int64_t n = a.cols();
  if (m < n) {
    return Status::InvalidArgument("JacobiSvd requires rows >= cols");
  }
  SOSE_FAULT_POINT("linalg_svd/jacobi");
  Matrix work = a;          // Columns converge to U diag(σ).
  Matrix v = Matrix::Identity(n);
  const double frob = a.FrobeniusNorm();
  const double threshold = tol * std::max(frob * frob, 1e-300);

  bool converged = false;
  for (int sweep = 0; sweep < max_sweeps && !converged; ++sweep) {
    converged = true;
    for (int64_t p = 0; p < n - 1; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        // Gram entries for columns p, q.
        double app = 0.0, aqq = 0.0, apq = 0.0;
        for (int64_t i = 0; i < m; ++i) {
          const double wip = work.At(i, p);
          const double wiq = work.At(i, q);
          app += wip * wip;
          aqq += wiq * wiq;
          apq += wip * wiq;
        }
        if (std::fabs(apq) <= threshold ||
            std::fabs(apq) <= tol * std::sqrt(app * aqq)) {
          continue;
        }
        converged = false;
        // Rotation zeroing the Gram off-diagonal (same angle as two-sided
        // Jacobi on the 2x2 Gram block).
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (int64_t i = 0; i < m; ++i) {
          const double wip = work.At(i, p);
          const double wiq = work.At(i, q);
          work.At(i, p) = c * wip - s * wiq;
          work.At(i, q) = s * wip + c * wiq;
        }
        for (int64_t i = 0; i < n; ++i) {
          const double vip = v.At(i, p);
          const double viq = v.At(i, q);
          v.At(i, p) = c * vip - s * viq;
          v.At(i, q) = s * vip + c * viq;
        }
      }
    }
  }
  if (!converged) {
    return Status::NumericalError("JacobiSvd: sweep limit exceeded");
  }

  // Extract singular values (column norms) and normalize U's columns.
  std::vector<double> sigma(static_cast<size_t>(n), 0.0);
  for (int64_t j = 0; j < n; ++j) {
    sigma[static_cast<size_t>(j)] = std::sqrt(work.ColNormSquared(j));
  }
  // Sort descending with a permutation applied to U and V columns.
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&sigma](int64_t x, int64_t y) {
    return sigma[static_cast<size_t>(x)] > sigma[static_cast<size_t>(y)];
  });
  Svd out;
  out.u = Matrix(m, n);
  out.v = Matrix(n, n);
  out.singular_values.resize(static_cast<size_t>(n));
  for (int64_t k = 0; k < n; ++k) {
    const int64_t src = order[static_cast<size_t>(k)];
    const double s_val = sigma[static_cast<size_t>(src)];
    out.singular_values[static_cast<size_t>(k)] = s_val;
    const double inv = s_val > 0.0 ? 1.0 / s_val : 0.0;
    for (int64_t i = 0; i < m; ++i) out.u.At(i, k) = work.At(i, src) * inv;
    for (int64_t i = 0; i < n; ++i) out.v.At(i, k) = v.At(i, src);
  }
  return out;
}

Result<std::vector<double>> SingularValues(const Matrix& a) {
  // For wide matrices, operate on the transpose (identical spectrum).
  if (a.rows() < a.cols()) {
    SOSE_ASSIGN_OR_RETURN(Svd svd, JacobiSvd(a.Transposed()));
    return std::move(svd.singular_values);
  }
  SOSE_ASSIGN_OR_RETURN(Svd svd, JacobiSvd(a));
  return std::move(svd.singular_values);
}

Result<double> ConditionNumber(const Matrix& a) {
  SOSE_ASSIGN_OR_RETURN(std::vector<double> sigma, SingularValues(a));
  if (sigma.empty()) {
    return Status::InvalidArgument("ConditionNumber: empty matrix");
  }
  const double smallest = sigma.back();
  if (smallest <= 0.0) {
    return Status::NumericalError("ConditionNumber: matrix is singular");
  }
  return sigma.front() / smallest;
}

}  // namespace sose
