#ifndef SOSE_CORE_LINALG_SVD_H_
#define SOSE_CORE_LINALG_SVD_H_

#include <vector>

#include "core/matrix.h"
#include "core/status.h"

namespace sose {

/// Thin singular value decomposition A = U diag(σ) Vᵀ of an m x n matrix
/// with m >= n: U is m x n with orthonormal columns, V is n x n orthogonal.
struct Svd {
  Matrix u;
  /// Singular values in descending order (non-negative).
  std::vector<double> singular_values;
  Matrix v;
};

/// Computes the thin SVD via the one-sided Jacobi method (Hestenes):
/// orthogonalize column pairs of a working copy of A by plane rotations;
/// at convergence column norms are the singular values. Accurate for the
/// small d-column matrices this library analyzes (σ_min/σ_max of ΠU is the
/// subspace distortion).
///
/// Requires a.rows() >= a.cols(); fails with NumericalError if the sweep
/// limit is exceeded.
[[nodiscard]] Result<Svd> JacobiSvd(const Matrix& a, int max_sweeps = 64, double tol = 1e-13);

/// Singular values only, descending.
[[nodiscard]] Result<std::vector<double>> SingularValues(const Matrix& a);

/// Condition number σ_max / σ_min; fails if σ_min is (numerically) zero.
[[nodiscard]] Result<double> ConditionNumber(const Matrix& a);

}  // namespace sose

#endif  // SOSE_CORE_LINALG_SVD_H_
