#include "core/linalg_tridiag.h"

#include <algorithm>
#include <cmath>

namespace sose {

Result<Tridiagonal> HouseholderTridiagonalize(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument(
        "HouseholderTridiagonalize: matrix must be square");
  }
  const int64_t n = a.rows();
  if (n == 0) {
    return Status::InvalidArgument("HouseholderTridiagonalize: empty matrix");
  }
  // Work on a symmetrized copy; classic tred1 (eigenvalues-only variant).
  Matrix w(n, n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j <= i; ++j) {
      w.At(i, j) = a.At(i, j);
      w.At(j, i) = a.At(i, j);
    }
  }
  std::vector<double> d(static_cast<size_t>(n), 0.0);
  std::vector<double> e(static_cast<size_t>(n), 0.0);

  for (int64_t i = n - 1; i >= 1; --i) {
    const int64_t l = i - 1;
    double h = 0.0;
    if (l > 0) {
      double scale = 0.0;
      for (int64_t k = 0; k <= l; ++k) scale += std::fabs(w.At(i, k));
      if (scale == 0.0) {
        e[static_cast<size_t>(i)] = w.At(i, l);
      } else {
        for (int64_t k = 0; k <= l; ++k) {
          w.At(i, k) /= scale;
          h += w.At(i, k) * w.At(i, k);
        }
        double f = w.At(i, l);
        double g = f >= 0.0 ? -std::sqrt(h) : std::sqrt(h);
        e[static_cast<size_t>(i)] = scale * g;
        h -= f * g;
        w.At(i, l) = f - g;
        f = 0.0;
        for (int64_t j = 0; j <= l; ++j) {
          // g = (A u)_j.
          g = 0.0;
          for (int64_t k = 0; k <= j; ++k) g += w.At(j, k) * w.At(i, k);
          for (int64_t k = j + 1; k <= l; ++k) g += w.At(k, j) * w.At(i, k);
          e[static_cast<size_t>(j)] = g / h;
          f += e[static_cast<size_t>(j)] * w.At(i, j);
        }
        const double hh = f / (h + h);
        for (int64_t j = 0; j <= l; ++j) {
          f = w.At(i, j);
          g = e[static_cast<size_t>(j)] - hh * f;
          e[static_cast<size_t>(j)] = g;
          for (int64_t k = 0; k <= j; ++k) {
            w.At(j, k) -=
                f * e[static_cast<size_t>(k)] + g * w.At(i, k);
          }
        }
      }
    } else {
      e[static_cast<size_t>(i)] = w.At(i, l);
    }
  }
  for (int64_t i = 0; i < n; ++i) d[static_cast<size_t>(i)] = w.At(i, i);

  Tridiagonal out;
  out.diagonal = std::move(d);
  out.off_diagonal.resize(static_cast<size_t>(n - 1));
  for (int64_t i = 1; i < n; ++i) {
    out.off_diagonal[static_cast<size_t>(i - 1)] = e[static_cast<size_t>(i)];
  }
  return out;
}

Result<std::vector<double>> TridiagonalEigenvalues(const Tridiagonal& t,
                                                   int max_iterations) {
  const int64_t n = static_cast<int64_t>(t.diagonal.size());
  if (n == 0) {
    return Status::InvalidArgument("TridiagonalEigenvalues: empty input");
  }
  if (static_cast<int64_t>(t.off_diagonal.size()) != n - 1) {
    return Status::InvalidArgument(
        "TridiagonalEigenvalues: off-diagonal must have n-1 entries");
  }
  std::vector<double> d = t.diagonal;
  // e[i] is the coupling between i and i+1; e[n-1] is a zero sentinel.
  std::vector<double> e(static_cast<size_t>(n), 0.0);
  std::copy(t.off_diagonal.begin(), t.off_diagonal.end(), e.begin());

  // Implicit QL with Wilkinson shifts (classic tqli, eigenvalues only).
  for (int64_t l = 0; l < n; ++l) {
    int iterations = 0;
    int64_t m = l;
    do {
      for (m = l; m < n - 1; ++m) {
        const double dd = std::fabs(d[static_cast<size_t>(m)]) +
                          std::fabs(d[static_cast<size_t>(m) + 1]);
        if (std::fabs(e[static_cast<size_t>(m)]) <= 1e-15 * dd) break;
      }
      if (m != l) {
        if (++iterations > max_iterations) {
          return Status::NumericalError(
              "TridiagonalEigenvalues: QL iteration failed to converge");
        }
        double g = (d[static_cast<size_t>(l) + 1] - d[static_cast<size_t>(l)]) /
                   (2.0 * e[static_cast<size_t>(l)]);
        double r = std::hypot(g, 1.0);
        g = d[static_cast<size_t>(m)] - d[static_cast<size_t>(l)] +
            e[static_cast<size_t>(l)] /
                (g + (g >= 0.0 ? std::fabs(r) : -std::fabs(r)));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        for (int64_t i = m - 1; i >= l; --i) {
          double f = s * e[static_cast<size_t>(i)];
          const double b = c * e[static_cast<size_t>(i)];
          r = std::hypot(f, g);
          e[static_cast<size_t>(i) + 1] = r;
          if (r == 0.0) {
            // Deflate: split the problem.
            d[static_cast<size_t>(i) + 1] -= p;
            e[static_cast<size_t>(m)] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[static_cast<size_t>(i) + 1] - p;
          r = (d[static_cast<size_t>(i)] - g) * s + 2.0 * c * b;
          p = s * r;
          d[static_cast<size_t>(i) + 1] = g + p;
          g = c * r - b;
          if (i == l) {
            d[static_cast<size_t>(l)] -= p;
            e[static_cast<size_t>(l)] = g;
            e[static_cast<size_t>(m)] = 0.0;
            p = 0.0;
          }
        }
      }
    } while (m != l);
  }
  std::sort(d.begin(), d.end());
  return d;
}

Result<std::vector<double>> SymmetricEigenvaluesQl(const Matrix& a) {
  SOSE_ASSIGN_OR_RETURN(Tridiagonal t, HouseholderTridiagonalize(a));
  return TridiagonalEigenvalues(t);
}

}  // namespace sose
