#ifndef SOSE_CORE_LINALG_TRIDIAG_H_
#define SOSE_CORE_LINALG_TRIDIAG_H_

#include <vector>

#include "core/matrix.h"
#include "core/status.h"

namespace sose {

/// A symmetric tridiagonal matrix: `diagonal` (n entries) and `off_diagonal`
/// (n−1 entries, the sub/super-diagonal).
struct Tridiagonal {
  std::vector<double> diagonal;
  std::vector<double> off_diagonal;
};

/// Householder reduction of a symmetric matrix to tridiagonal form
/// T = Qᵀ A Q. Only the lower triangle of `a` is read. O(n³) with a much
/// smaller constant than a Jacobi sweep, which makes the QL pipeline the
/// right eigensolver once d grows past a few dozen.
[[nodiscard]] Result<Tridiagonal> HouseholderTridiagonalize(const Matrix& a);

/// Eigenvalues of a symmetric tridiagonal matrix by the implicit QL
/// algorithm with Wilkinson shifts, ascending. Fails with NumericalError if
/// an eigenvalue fails to converge within the iteration cap.
[[nodiscard]] Result<std::vector<double>> TridiagonalEigenvalues(const Tridiagonal& t,
                                                                 int max_iterations = 60);

/// Eigenvalues of a symmetric matrix via tridiagonalization + QL,
/// ascending. Produces the same spectrum as `SymmetricEigenvalues`
/// (Jacobi) at a fraction of the cost for larger matrices; the library's
/// distortion pipeline uses whichever the caller picks.
[[nodiscard]] Result<std::vector<double>> SymmetricEigenvaluesQl(const Matrix& a);

}  // namespace sose

#endif  // SOSE_CORE_LINALG_TRIDIAG_H_
