#include "core/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "core/simd/dispatch.h"

namespace sose {

Matrix::Matrix(int64_t rows, int64_t cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows * cols), 0.0) {
  SOSE_CHECK(rows >= 0 && cols >= 0);
}

Matrix::Matrix(int64_t rows, int64_t cols, std::vector<double> values)
    : rows_(rows), cols_(cols), data_(std::move(values)) {
  SOSE_CHECK(rows >= 0 && cols >= 0);
  SOSE_CHECK(static_cast<int64_t>(data_.size()) == rows * cols);
}

Matrix Matrix::Identity(int64_t n) {
  Matrix eye(n, n);
  for (int64_t i = 0; i < n; ++i) eye.At(i, i) = 1.0;
  return eye;
}

std::vector<double> Matrix::Col(int64_t j) const {
  SOSE_CHECK(j >= 0 && j < cols_);
  std::vector<double> col(static_cast<size_t>(rows_));
  for (int64_t i = 0; i < rows_; ++i) col[static_cast<size_t>(i)] = At(i, j);
  return col;
}

void Matrix::Fill(double value) {
  for (double& entry : data_) entry = value;
}

void Matrix::Scale(double factor) {
  simd::Scale(factor, data_.data(), static_cast<int64_t>(data_.size()));
}

void Matrix::AddScaled(const Matrix& other, double factor) {
  SOSE_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  simd::Axpy(factor, other.data_.data(), data_.data(),
             static_cast<int64_t>(data_.size()));
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (int64_t i = 0; i < rows_; ++i) {
    const double* row = Row(i);
    for (int64_t j = 0; j < cols_; ++j) out.At(j, i) = row[j];
  }
  return out;
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double entry : data_) sum += entry * entry;
  return std::sqrt(sum);
}

double Matrix::MaxAbs() const {
  double best = 0.0;
  for (double entry : data_) best = std::max(best, std::fabs(entry));
  return best;
}

double Matrix::ColNormSquared(int64_t j) const {
  SOSE_CHECK(j >= 0 && j < cols_);
  double sum = 0.0;
  for (int64_t i = 0; i < rows_; ++i) {
    const double v = At(i, j);
    sum += v * v;
  }
  return sum;
}

double Matrix::ColDot(int64_t j, int64_t k) const {
  SOSE_CHECK(j >= 0 && j < cols_);
  SOSE_CHECK(k >= 0 && k < cols_);
  double sum = 0.0;
  for (int64_t i = 0; i < rows_; ++i) sum += At(i, j) * At(i, k);
  return sum;
}

std::string Matrix::ToString(int max_rows, int max_cols) const {
  std::ostringstream out;
  out << rows_ << "x" << cols_ << " matrix\n";
  const int64_t show_rows = std::min<int64_t>(rows_, max_rows);
  const int64_t show_cols = std::min<int64_t>(cols_, max_cols);
  char buffer[32];
  for (int64_t i = 0; i < show_rows; ++i) {
    out << "  [";
    for (int64_t j = 0; j < show_cols; ++j) {
      std::snprintf(buffer, sizeof(buffer), "% .4g", At(i, j));
      out << buffer << (j + 1 < show_cols ? ", " : "");
    }
    if (show_cols < cols_) out << ", ...";
    out << "]\n";
  }
  if (show_rows < rows_) out << "  ...\n";
  return out.str();
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  SOSE_CHECK(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  // i-k-j loop order: streams over rows of `b` and `out`, which is the
  // cache-friendly order for row-major storage.
  for (int64_t i = 0; i < a.rows(); ++i) {
    double* out_row = out.Row(i);
    const double* a_row = a.Row(i);
    for (int64_t k = 0; k < a.cols(); ++k) {
      const double a_ik = a_row[k];
      if (a_ik == 0.0) continue;
      simd::Axpy(a_ik, b.Row(k), out_row, b.cols());
    }
  }
  return out;
}

Matrix MatMulTransposeA(const Matrix& a, const Matrix& b) {
  SOSE_CHECK(a.rows() == b.rows());
  Matrix out(a.cols(), b.cols());
  for (int64_t k = 0; k < a.rows(); ++k) {
    const double* a_row = a.Row(k);
    const double* b_row = b.Row(k);
    for (int64_t i = 0; i < a.cols(); ++i) {
      const double a_ki = a_row[i];
      if (a_ki == 0.0) continue;
      simd::Axpy(a_ki, b_row, out.Row(i), b.cols());
    }
  }
  return out;
}

Matrix MatMulTransposeB(const Matrix& a, const Matrix& b) {
  SOSE_CHECK(a.cols() == b.cols());
  Matrix out(a.rows(), b.rows());
  for (int64_t i = 0; i < a.rows(); ++i) {
    const double* a_row = a.Row(i);
    double* out_row = out.Row(i);
    for (int64_t j = 0; j < b.rows(); ++j) {
      const double* b_row = b.Row(j);
      double sum = 0.0;
      for (int64_t k = 0; k < a.cols(); ++k) sum += a_row[k] * b_row[k];
      out_row[j] = sum;
    }
  }
  return out;
}

Matrix Gram(const Matrix& a) {
  // Symmetric rank-k update (syrk): computes only the upper triangle with
  // cache blocking, then mirrors. Halves the flops of MatMulTransposeA(a, a)
  // and keeps the working set (one row panel of `a`, one block of `out`)
  // cache-resident. Per (i, j) entry the products a(k,i)*a(k,j) accumulate
  // in the same k-ascending order as MatMulTransposeA — k panels are visited
  // in order and each entry belongs to exactly one block per panel — and
  // the mirrored lower triangle copies the identical double, so the result
  // is bitwise identical to the naive product.
  const int64_t n = a.rows();
  const int64_t d = a.cols();
  Matrix out(d, d);
  constexpr int64_t kPanelRows = 128;  // rows of `a` per k panel
  constexpr int64_t kColBlock = 64;    // columns per (i, j) tile
  for (int64_t k0 = 0; k0 < n; k0 += kPanelRows) {
    const int64_t k1 = std::min(n, k0 + kPanelRows);
    for (int64_t i0 = 0; i0 < d; i0 += kColBlock) {
      const int64_t i1 = std::min(d, i0 + kColBlock);
      for (int64_t j0 = i0; j0 < d; j0 += kColBlock) {
        const int64_t j1 = std::min(d, j0 + kColBlock);
        for (int64_t k = k0; k < k1; ++k) {
          const double* row = a.Row(k);
          for (int64_t i = i0; i < i1; ++i) {
            const double v = row[i];
            if (v == 0.0) continue;
            const int64_t j_lo = std::max(j0, i);
            simd::Axpy(v, row + j_lo, out.Row(i) + j_lo, j1 - j_lo);
          }
        }
      }
    }
  }
  for (int64_t i = 0; i < d; ++i) {
    for (int64_t j = i + 1; j < d; ++j) out.At(j, i) = out.At(i, j);
  }
  return out;
}

std::vector<double> MatVec(const Matrix& a, const std::vector<double>& x) {
  SOSE_CHECK(static_cast<int64_t>(x.size()) == a.cols());
  std::vector<double> out(static_cast<size_t>(a.rows()), 0.0);
  for (int64_t i = 0; i < a.rows(); ++i) {
    const double* row = a.Row(i);
    double sum = 0.0;
    for (int64_t j = 0; j < a.cols(); ++j) sum += row[j] * x[static_cast<size_t>(j)];
    out[static_cast<size_t>(i)] = sum;
  }
  return out;
}

std::vector<double> MatVecTransposed(const Matrix& a,
                                     const std::vector<double>& x) {
  SOSE_CHECK(static_cast<int64_t>(x.size()) == a.rows());
  std::vector<double> out(static_cast<size_t>(a.cols()), 0.0);
  for (int64_t i = 0; i < a.rows(); ++i) {
    const double xi = x[static_cast<size_t>(i)];
    if (xi == 0.0) continue;
    simd::Axpy(xi, a.Row(i), out.data(), a.cols());
  }
  return out;
}

bool AlmostEqual(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) {
      if (std::fabs(a.At(i, j) - b.At(i, j)) > tol) return false;
    }
  }
  return true;
}

}  // namespace sose
