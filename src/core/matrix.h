#ifndef SOSE_CORE_MATRIX_H_
#define SOSE_CORE_MATRIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/check.h"

namespace sose {

/// Dense row-major matrix of doubles.
///
/// This is the workhorse value type of the library: sketched matrices
/// (`ΠU`), Gram matrices, and eigen/QR factors are all `Matrix`. It is a
/// plain container plus a small set of cache-friendly kernels; anything
/// factorization-shaped lives in `core/linalg_*`.
class Matrix {
 public:
  /// An empty 0x0 matrix.
  Matrix() = default;

  /// A `rows` x `cols` matrix of zeros. Dimensions must be non-negative.
  Matrix(int64_t rows, int64_t cols);

  /// A matrix with the given entries; `values` is row-major and must have
  /// exactly `rows * cols` elements.
  Matrix(int64_t rows, int64_t cols, std::vector<double> values);

  /// The n x n identity.
  static Matrix Identity(int64_t n);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }

  /// Mutable/const element access with debug bounds checks.
  double& At(int64_t i, int64_t j) {
    SOSE_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<size_t>(i * cols_ + j)];
  }
  double At(int64_t i, int64_t j) const {
    SOSE_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<size_t>(i * cols_ + j)];
  }

  /// Raw row-major storage.
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Pointer to the start of row `i`.
  double* Row(int64_t i) { return data() + i * cols_; }
  const double* Row(int64_t i) const { return data() + i * cols_; }

  /// Copies column `j` into a vector.
  std::vector<double> Col(int64_t j) const;

  /// Sets every entry to `value`.
  void Fill(double value);

  /// Multiplies every entry by `factor` in place.
  void Scale(double factor);

  /// Adds `factor * other` entrywise; shapes must match.
  void AddScaled(const Matrix& other, double factor);

  /// Returns the transpose.
  Matrix Transposed() const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Largest absolute entry (0 for an empty matrix).
  double MaxAbs() const;

  /// Squared Euclidean norm of column `j`.
  double ColNormSquared(int64_t j) const;

  /// Inner product of columns `j` and `k`.
  double ColDot(int64_t j, int64_t k) const;

  /// Human-readable rendering (small matrices only; intended for debugging
  /// and test failure messages).
  std::string ToString(int max_rows = 8, int max_cols = 8) const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<double> data_;
};

/// Returns `a * b`. Inner dimensions must agree.
Matrix MatMul(const Matrix& a, const Matrix& b);

/// Returns `aᵀ * b`. Row counts must agree.
Matrix MatMulTransposeA(const Matrix& a, const Matrix& b);

/// Returns `a * bᵀ`. Column counts must agree.
Matrix MatMulTransposeB(const Matrix& a, const Matrix& b);

/// Returns the Gram matrix `aᵀ a` (symmetric `cols x cols`).
Matrix Gram(const Matrix& a);

/// Returns `a * x` for a vector `x` of length `a.cols()`.
std::vector<double> MatVec(const Matrix& a, const std::vector<double>& x);

/// Returns `aᵀ * x` for a vector `x` of length `a.rows()`.
std::vector<double> MatVecTransposed(const Matrix& a,
                                     const std::vector<double>& x);

/// True if shapes match and entries agree within `tol` (absolute).
bool AlmostEqual(const Matrix& a, const Matrix& b, double tol);

}  // namespace sose

#endif  // SOSE_CORE_MATRIX_H_
