#include "core/metrics/metrics.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <utility>

#include "core/json_io.h"

namespace sose::metrics {

Histogram::Histogram(std::string name, std::vector<double> boundaries)
    : name_(std::move(name)),
      boundaries_(std::move(boundaries)),
      buckets_(boundaries_.size() + 1) {}

void Histogram::Observe(double value) {
  std::size_t bucket = boundaries_.size();  // Overflow unless an edge holds it.
  for (std::size_t i = 0; i < boundaries_.size(); ++i) {
    if (value <= boundaries_[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add(double) needs C++20 library support that libstdc++ lacks for
  // non-lock-free paths; a CAS loop is portable and equally exact.
  double observed = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(observed, observed + value,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> counts(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& DefaultLatencyBoundaries() {
  static const std::vector<double> kBoundaries = {
      1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 1e1, 1e2};
  return kBoundaries;
}

// Registration state. std::map keeps iteration sorted (snapshots come out in
// name order without a second sort) and never invalidates the unique_ptr
// targets, so handles handed to macro sites stay stable for process life.
struct MetricsRegistry::Impl {
  // sose-lint: allow(concurrency) registration lock for the metrics registry
  mutable std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

MetricsRegistry::Impl* MetricsRegistry::impl() const {
  // Allocated on first use and intentionally never freed from Global(): macro
  // sites hold raw series pointers, and static destruction order must not
  // invalidate them under exiting worker threads.
  if (impl_ == nullptr) impl_ = new Impl;
  return impl_;
}

MetricsRegistry::~MetricsRegistry() { delete impl_; }

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const registry = new MetricsRegistry;
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  Impl* state = impl();
  // sose-lint: allow(concurrency) registration lock for the metrics registry
  std::lock_guard<std::mutex> lock(state->mutex);
  auto it = state->counters.find(name);
  if (it == state->counters.end()) {
    it = state->counters
             .emplace(std::string(name),
                      std::make_unique<Counter>(std::string(name)))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  Impl* state = impl();
  // sose-lint: allow(concurrency) registration lock for the metrics registry
  std::lock_guard<std::mutex> lock(state->mutex);
  auto it = state->gauges.find(name);
  if (it == state->gauges.end()) {
    it = state->gauges
             .emplace(std::string(name),
                      std::make_unique<Gauge>(std::string(name)))
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         const std::vector<double>& boundaries) {
  Impl* state = impl();
  // sose-lint: allow(concurrency) registration lock for the metrics registry
  std::lock_guard<std::mutex> lock(state->mutex);
  auto it = state->histograms.find(name);
  if (it == state->histograms.end()) {
    it = state->histograms
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::string(name), boundaries))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  Impl* state = impl();
  // sose-lint: allow(concurrency) registration lock for the metrics registry
  std::lock_guard<std::mutex> lock(state->mutex);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(state->counters.size());
  for (const auto& [name, counter] : state->counters) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  snapshot.gauges.reserve(state->gauges.size());
  for (const auto& [name, gauge] : state->gauges) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  snapshot.histograms.reserve(state->histograms.size());
  for (const auto& [name, histogram] : state->histograms) {
    HistogramSnapshot h;
    h.name = name;
    h.boundaries = histogram->boundaries();
    h.bucket_counts = histogram->BucketCounts();
    h.count = histogram->Count();
    h.sum = histogram->Sum();
    snapshot.histograms.push_back(std::move(h));
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  Impl* state = impl();
  // sose-lint: allow(concurrency) registration lock for the metrics registry
  std::lock_guard<std::mutex> lock(state->mutex);
  for (auto& [name, counter] : state->counters) counter->Reset();
  for (auto& [name, gauge] : state->gauges) gauge->Reset();
  for (auto& [name, histogram] : state->histograms) histogram->Reset();
}

SpanSite::SpanSite(const char* name)
    : calls(MetricsRegistry::Global().GetCounter(std::string(name) + ".calls")),
      seconds(MetricsRegistry::Global().GetHistogram(
          std::string(name) + ".seconds", DefaultLatencyBoundaries())) {}

MetricsSnapshot Snapshot() { return MetricsRegistry::Global().Snapshot(); }

void ResetAll() { MetricsRegistry::Global().Reset(); }

namespace {

// %.17g matches JsonObjectWriter: shortest round-trippable double text.
std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

double EstimateHistogramQuantile(const HistogramSnapshot& histogram,
                                 double q) {
  if (histogram.count <= 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(histogram.count);
  int64_t cumulative = 0;
  for (std::size_t i = 0; i < histogram.bucket_counts.size(); ++i) {
    const int64_t in_bucket = histogram.bucket_counts[i];
    const int64_t next = cumulative + in_bucket;
    if (in_bucket > 0 && static_cast<double>(next) >= rank) {
      if (i >= histogram.boundaries.size()) {
        // Overflow bucket: clamp to the top boundary rather than invent an
        // upper edge.
        return histogram.boundaries.empty() ? 0.0
                                            : histogram.boundaries.back();
      }
      const double lower = i == 0 ? 0.0 : histogram.boundaries[i - 1];
      const double upper = histogram.boundaries[i];
      double fraction = (rank - static_cast<double>(cumulative)) /
                        static_cast<double>(in_bucket);
      if (fraction < 0.0) fraction = 0.0;
      if (fraction > 1.0) fraction = 1.0;
      return lower + (upper - lower) * fraction;
    }
    cumulative = next;
  }
  return histogram.boundaries.empty() ? 0.0 : histogram.boundaries.back();
}

std::string FormatText(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    out << "counter " << name << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out << "gauge " << name << " " << FormatDouble(value) << "\n";
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    out << "histogram " << h.name << " count=" << h.count
        << " sum=" << FormatDouble(h.sum)
        << " p50=" << FormatDouble(EstimateHistogramQuantile(h, 0.5))
        << " p95=" << FormatDouble(EstimateHistogramQuantile(h, 0.95))
        << " p99=" << FormatDouble(EstimateHistogramQuantile(h, 0.99))
        << " buckets=";
    for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
      if (i > 0) out << ",";
      if (i < h.boundaries.size()) {
        out << "le" << FormatDouble(h.boundaries[i]);
      } else {
        out << "inf";
      }
      out << ":" << h.bucket_counts[i];
    }
    out << "\n";
  }
  return out.str();
}

Status WriteTextFile(const std::string& path, const MetricsSnapshot& snapshot) {
  return WriteStringToFile(path, FormatText(snapshot));
}

JsonObjectWriter ToJson(const MetricsSnapshot& snapshot) {
  JsonObjectWriter counters;
  for (const auto& [name, value] : snapshot.counters) {
    counters.AddInt(name, value);
  }
  JsonObjectWriter gauges;
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.AddDouble(name, value);
  }
  JsonObjectWriter histograms;
  for (const HistogramSnapshot& h : snapshot.histograms) {
    JsonObjectWriter entry;
    entry.AddInt("count", h.count);
    entry.AddDouble("sum", h.sum);
    entry.AddDouble("p50", EstimateHistogramQuantile(h, 0.5));
    entry.AddDouble("p95", EstimateHistogramQuantile(h, 0.95));
    entry.AddDouble("p99", EstimateHistogramQuantile(h, 0.99));
    for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
      std::string key = i < h.boundaries.size()
                            ? "le_" + FormatDouble(h.boundaries[i])
                            : std::string("inf");
      entry.AddInt(key, h.bucket_counts[i]);
    }
    histograms.AddObject(h.name, entry);
  }
  JsonObjectWriter metrics;
  metrics.AddObject("counters", counters);
  metrics.AddObject("gauges", gauges);
  metrics.AddObject("histograms", histograms);
  return metrics;
}

}  // namespace sose::metrics
