#ifndef SOSE_CORE_METRICS_METRICS_H_
#define SOSE_CORE_METRICS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/json_io.h"
#include "core/status.h"
#include "core/stopwatch.h"

namespace sose::metrics {

/// Process-wide observability for the experiment suite: monotonic counters,
/// gauges, fixed-boundary latency histograms, and RAII trace spans.
///
/// Design constraints (see docs/observability.md):
///  - Hot-path recording never allocates: every macro site caches its
///    Counter*/SpanSite in a function-local static, so after the first pass a
///    record is one relaxed atomic RMW (plus one clock read for spans).
///  - Counters are plain integers, so their totals are independent of the
///    order threads interleave their increments. The trial runner increments
///    all `trial.*` counters from the supervisor fold, in ascending trial
///    order — the same discipline that makes trial statistics bit-identical
///    across `--threads` values extends to the metrics.
///  - Histogram boundaries are fixed at registration and bucketing is an
///    exact comparison scan, so the bucket a value lands in is deterministic.
///  - Compiling with `-DSOSE_METRICS=OFF` (CMake) defines
///    `SOSE_METRICS_DISABLED`, turning every macro into a no-op statement
///    that evaluates none of its arguments; the registry API below still
///    compiles so exporters work in both modes (they just see no series).
///
/// Direct `MetricsRegistry` access outside this directory is a sose_lint R6
/// (`metrics-discipline`) finding: instrumented code must go through the
/// `SOSE_SPAN` / `SOSE_COUNTER_*` / `SOSE_GAUGE_SET` macros, and exporters
/// through the snapshot helpers, so the OFF mode provably strips every
/// recording site.

/// A monotonic event count. Thread-safe; addition is commutative, so the
/// total is independent of thread interleaving.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<int64_t> value_{0};
};

/// A last-write-wins scalar (resolved thread count, configured trial count).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<double> value_{0.0};
};

/// A fixed-boundary histogram: `boundaries()[i]` is the inclusive upper edge
/// of bucket i, and one overflow bucket catches everything above the last
/// edge. Bucketing is an exact `value <= edge` scan — no float arithmetic —
/// so the chosen bucket is deterministic for a given value.
class Histogram {
 public:
  Histogram(std::string name, std::vector<double> boundaries);

  void Observe(double value);

  const std::string& name() const { return name_; }
  const std::vector<double>& boundaries() const { return boundaries_; }
  /// Per-bucket counts; size is boundaries().size() + 1 (last = overflow).
  std::vector<int64_t> BucketCounts() const;
  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::string name_;
  std::vector<double> boundaries_;
  std::vector<std::atomic<int64_t>> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// The default latency edges for trace spans: decades from 1µs to 100s.
const std::vector<double>& DefaultLatencyBoundaries();

/// Point-in-time view of every registered series, each sorted by name so two
/// snapshots of identical state compare (and serialize) identically.
struct HistogramSnapshot {
  std::string name;
  std::vector<double> boundaries;
  std::vector<int64_t> bucket_counts;  ///< boundaries.size() + 1 entries.
  int64_t count = 0;
  double sum = 0.0;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

/// Quantile estimate from bucketed counts, Prometheus
/// `histogram_quantile` style: locate the bucket where the cumulative
/// count crosses `q * count` and interpolate linearly inside it (bucket 0
/// interpolates from 0; the overflow bucket clamps to the top boundary, so
/// the estimate never invents a value beyond the instrumented range).
/// `q` is clamped to [0, 1]; an empty histogram estimates 0. The p50/p95/
/// p99 readouts in STATS replies, bench JSON `metrics` blocks, and
/// FormatText dumps all come from this function.
double EstimateHistogramQuantile(const HistogramSnapshot& histogram,
                                 double q);

/// The process-wide registry. Series are registered on first use and live
/// for the life of the process; handles returned by the getters are stable.
/// Registration takes a mutex; recording through the handles is lock-free.
class MetricsRegistry {
 public:
  /// The singleton every macro records into.
  static MetricsRegistry& Global();

  /// Returns the series with `name`, registering it on first use.
  /// GetHistogram ignores `boundaries` when the name is already registered.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name,
                          const std::vector<double>& boundaries);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered series (registrations and handles survive).
  /// Test/benchmark lifecycle only — not for instrumented code.
  void Reset();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  ~MetricsRegistry();

 private:
  struct Impl;
  Impl* impl() const;
  mutable Impl* impl_ = nullptr;
};

/// One span site: the `<name>.calls` counter and `<name>.seconds` histogram
/// a SOSE_SPAN records into. Static at each macro site.
struct SpanSite {
  explicit SpanSite(const char* name);
  Counter* calls;
  Histogram* seconds;
};

/// RAII phase timer: on destruction adds one call and the elapsed wall time
/// to its site. Stack-only; never allocates.
class Span {
 public:
  explicit Span(SpanSite* site) : site_(site) {}
  ~Span() {
    site_->calls->Add(1);
    site_->seconds->Observe(watch_.ElapsedSeconds());
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  SpanSite* site_;
  Stopwatch watch_;
};

/// Exporter helpers (the sanctioned read-side API; usable from benches).
MetricsSnapshot Snapshot();

/// Zeroes every series; for tests and per-run bench resets.
void ResetAll();

/// Deterministically ordered `counter|gauge|histogram <name> ...` lines —
/// the `--metrics=FILE` dump format (see docs/observability.md).
std::string FormatText(const MetricsSnapshot& snapshot);

/// Writes FormatText(snapshot) to `path` (truncating).
[[nodiscard]] Status WriteTextFile(const std::string& path,
                                   const MetricsSnapshot& snapshot);

/// The nested `metrics` block embedded in every BENCH_<exp>.json:
/// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
JsonObjectWriter ToJson(const MetricsSnapshot& snapshot);

}  // namespace sose::metrics

#define SOSE_METRICS_CONCAT_INNER_(a, b) a##b
#define SOSE_METRICS_CONCAT_(a, b) SOSE_METRICS_CONCAT_INNER_(a, b)

#if defined(SOSE_METRICS_DISABLED)

// No-op mode: every macro compiles to an empty statement. `sizeof` keeps
// the operands "used" for -Wunused without evaluating them, so the OFF
// build is warning-clean and pays nothing at runtime.
#define SOSE_SPAN(name) \
  do {                  \
  } while (false)
#define SOSE_COUNTER_INC(name) \
  do {                         \
  } while (false)
#define SOSE_COUNTER_ADD(name, delta) \
  do {                                \
    (void)sizeof(delta);              \
  } while (false)
#define SOSE_COUNTER_ADD_DYNAMIC(name, delta) \
  do {                                        \
    (void)sizeof(name);                       \
    (void)sizeof(delta);                      \
  } while (false)
#define SOSE_GAUGE_SET(name, value) \
  do {                              \
    (void)sizeof(value);            \
  } while (false)

#else  // metrics enabled

/// Times the enclosing scope into `<name>.seconds` / `<name>.calls`.
/// `name` must be a string literal.
#define SOSE_SPAN(name)                                                      \
  static ::sose::metrics::SpanSite SOSE_METRICS_CONCAT_(sose_span_site_,     \
                                                        __LINE__){name};     \
  ::sose::metrics::Span SOSE_METRICS_CONCAT_(sose_span_, __LINE__)(          \
      &SOSE_METRICS_CONCAT_(sose_span_site_, __LINE__))

/// Adds to a counter whose name is a string literal; the registry lookup
/// happens once per site.
#define SOSE_COUNTER_ADD(name, delta)                               \
  do {                                                              \
    static ::sose::metrics::Counter* const sose_counter_ =          \
        ::sose::metrics::MetricsRegistry::Global().GetCounter(name); \
    sose_counter_->Add(delta);                                      \
  } while (false)

#define SOSE_COUNTER_INC(name) SOSE_COUNTER_ADD(name, 1)

/// Adds to a counter whose name is computed at runtime (e.g. a StatusCode
/// taxonomy key). Looks the counter up on every call — cold paths only.
#define SOSE_COUNTER_ADD_DYNAMIC(name, delta)                             \
  do {                                                                    \
    ::sose::metrics::MetricsRegistry::Global().GetCounter(name)->Add(     \
        delta);                                                           \
  } while (false)

#define SOSE_GAUGE_SET(name, value)                               \
  do {                                                            \
    static ::sose::metrics::Gauge* const sose_gauge_ =            \
        ::sose::metrics::MetricsRegistry::Global().GetGauge(name); \
    sose_gauge_->Set(value);                                      \
  } while (false)

#endif  // SOSE_METRICS_DISABLED

#endif  // SOSE_CORE_METRICS_METRICS_H_
