#include "core/net/net.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "core/stopwatch.h"

namespace sose::net {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::string(strerror(errno)));
}

// Every socket this layer creates is non-blocking and close-on-exec: the
// service multiplexes with PollFds and must never block in read/write, and
// forked shard workers must not inherit service descriptors.
Status MakeNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(F_SETFL, O_NONBLOCK)");
  }
  if (fcntl(fd, F_SETFD, FD_CLOEXEC) < 0) return Errno("fcntl(FD_CLOEXEC)");
  return Status::OK();
}

Result<sockaddr_un> UnixAddress(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(
        "unix socket path must be 1.." +
        std::to_string(sizeof(addr.sun_path) - 1) + " bytes: '" + path + "'");
  }
  memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

// ---------------------------------------------------------------------------
// Socket
// ---------------------------------------------------------------------------

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Socket::~Socket() { Close(); }

void Socket::Close() {
  if (fd_ >= 0) {
    int rc;
    do {
      rc = ::close(fd_);
    } while (rc < 0 && errno == EINTR);
    fd_ = -1;
  }
}

Result<Socket> Socket::ConnectUnix(const std::string& path) {
  SOSE_ASSIGN_OR_RETURN(sockaddr_un addr, UnixAddress(path));
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_UNIX)");
  Socket socket(fd);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    if (errno == ENOENT || errno == ECONNREFUSED) {
      return Status::NotFound("no sosed listener at '" + path +
                              "': " + std::string(strerror(errno)));
    }
    return Errno("connect('" + path + "')");
  }
  SOSE_RETURN_IF_ERROR(MakeNonBlocking(fd));
  return socket;
}

Result<Socket> Socket::ConnectTcp(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 host: '" + host + "'");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_INET)");
  Socket socket(fd);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    if (errno == ECONNREFUSED) {
      return Status::NotFound("no listener at " + host + ":" +
                              std::to_string(port));
    }
    return Errno("connect(" + host + ":" + std::to_string(port) + ")");
  }
  SOSE_RETURN_IF_ERROR(MakeNonBlocking(fd));
  return socket;
}

Result<ReadChunk> Socket::ReadAvailable(std::string* buffer) {
  if (fd_ < 0) return Status::FailedPrecondition("read on a closed socket");
  ReadChunk chunk;
  char scratch[16384];
  for (;;) {
    const ssize_t n = ::recv(fd_, scratch, sizeof(scratch), 0);
    if (n > 0) {
      buffer->append(scratch, static_cast<size_t>(n));
      chunk.bytes += n;
      continue;
    }
    if (n == 0) {
      chunk.eof = true;
      return chunk;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return chunk;
    // A reset peer is an orderly end of conversation for a server: report
    // eof so the caller tears the connection down instead of erroring out.
    if (errno == ECONNRESET) {
      chunk.eof = true;
      return chunk;
    }
    return Errno("recv");
  }
}

Result<int64_t> Socket::WriteSome(const std::string& data, int64_t offset) {
  if (fd_ < 0) return Status::FailedPrecondition("write on a closed socket");
  if (offset < 0 || offset > static_cast<int64_t>(data.size())) {
    return Status::OutOfRange("WriteSome: offset out of range");
  }
  int64_t written = 0;
  while (offset + written < static_cast<int64_t>(data.size())) {
    const ssize_t n =
        ::send(fd_, data.data() + offset + written,
               data.size() - static_cast<size_t>(offset + written),
               MSG_NOSIGNAL);
    if (n > 0) {
      written += n;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      return Status::Internal("peer closed the connection mid-write");
    }
    return Errno("send");
  }
  return written;
}

Status Socket::WriteAll(const std::string& data, double timeout_seconds) {
  Stopwatch watch;
  int64_t sent = 0;
  while (sent < static_cast<int64_t>(data.size())) {
    SOSE_ASSIGN_OR_RETURN(const int64_t n, WriteSome(data, sent));
    sent += n;
    if (sent == static_cast<int64_t>(data.size())) break;
    const double remaining = timeout_seconds - watch.ElapsedSeconds();
    if (remaining <= 0.0) {
      return Status::Internal("WriteAll: timed out with " +
                              std::to_string(data.size() - sent) +
                              " byte(s) unsent");
    }
    SOSE_ASSIGN_OR_RETURN(
        const std::vector<PollReady> ready,
        PollFds({{fd_, /*want_read=*/false, /*want_write=*/true}},
                std::min(remaining, 0.1)));
    if (ready[0].error) return Status::Internal("WriteAll: socket error");
  }
  return Status::OK();
}

Status Socket::ReadUntilNewline(std::string* buffer, double timeout_seconds) {
  Stopwatch watch;
  size_t scanned = buffer->size();
  for (;;) {
    SOSE_ASSIGN_OR_RETURN(const ReadChunk chunk, ReadAvailable(buffer));
    if (buffer->find('\n', scanned) != std::string::npos) return Status::OK();
    scanned = buffer->size();
    if (chunk.eof) {
      return Status::Internal("connection closed before a full record");
    }
    const double remaining = timeout_seconds - watch.ElapsedSeconds();
    if (remaining <= 0.0) {
      return Status::Internal("ReadUntilNewline: timed out");
    }
    SOSE_ASSIGN_OR_RETURN(
        const std::vector<PollReady> ready,
        PollFds({{fd_, /*want_read=*/true, /*want_write=*/false}},
                std::min(remaining, 0.1)));
    (void)ready;  // Loop back to ReadAvailable either way.
  }
}

// ---------------------------------------------------------------------------
// Listener
// ---------------------------------------------------------------------------

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_),
      port_(other.port_),
      unix_path_(std::move(other.unix_path_)) {
  other.fd_ = -1;
  other.port_ = 0;
  other.unix_path_.clear();
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    unix_path_ = std::move(other.unix_path_);
    other.fd_ = -1;
    other.port_ = 0;
    other.unix_path_.clear();
  }
  return *this;
}

Listener::~Listener() { Close(); }

void Listener::Close() {
  if (fd_ >= 0) {
    int rc;
    do {
      rc = ::close(fd_);
    } while (rc < 0 && errno == EINTR);
    fd_ = -1;
  }
  if (!unix_path_.empty()) {
    ::unlink(unix_path_.c_str());  // Best effort; the path may be gone.
    unix_path_.clear();
  }
}

Result<Listener> Listener::ListenUnix(const std::string& path) {
  SOSE_ASSIGN_OR_RETURN(sockaddr_un addr, UnixAddress(path));
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_UNIX)");
  Listener listener(fd, 0, path);
  // A stale socket file from a crashed server would fail the bind; a fresh
  // server owns its path.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Errno("bind('" + path + "')");
  }
  if (::listen(fd, 64) < 0) return Errno("listen('" + path + "')");
  SOSE_RETURN_IF_ERROR(MakeNonBlocking(fd));
  return listener;
}

Result<Listener> Listener::ListenTcp(int port) {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("port out of range: " +
                                   std::to_string(port));
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_INET)");
  Listener listener(fd, port, "");
  const int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Errno("bind(127.0.0.1:" + std::to_string(port) + ")");
  }
  if (::listen(fd, 64) < 0) return Errno("listen");
  SOSE_RETURN_IF_ERROR(MakeNonBlocking(fd));
  // Read back the resolved port so port 0 (ephemeral) callers can publish
  // the real one.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    return Errno("getsockname");
  }
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

Result<std::optional<Socket>> Listener::Accept() {
  if (fd_ < 0) return Status::FailedPrecondition("accept on a closed listener");
  for (;;) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) {
      Socket socket(client);
      SOSE_RETURN_IF_ERROR(MakeNonBlocking(client));
      return std::optional<Socket>(std::move(socket));
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return std::optional<Socket>();
    }
    // The connection died between the kernel queueing it and us accepting
    // it — a per-connection event, not a listener failure.
    if (errno == ECONNABORTED) return std::optional<Socket>();
    return Errno("accept");
  }
}

// ---------------------------------------------------------------------------
// PollFds
// ---------------------------------------------------------------------------

Result<std::vector<PollReady>> PollFds(const std::vector<PollEntry>& entries,
                                       double timeout_seconds) {
  std::vector<pollfd> fds;
  fds.reserve(entries.size());
  for (const PollEntry& entry : entries) {
    pollfd p{};
    p.fd = entry.fd;
    p.events = static_cast<short>((entry.want_read ? POLLIN : 0) |
                                  (entry.want_write ? POLLOUT : 0));
    fds.push_back(p);
  }
  Stopwatch watch;
  int ready;
  for (;;) {
    const double remaining =
        std::max(0.0, timeout_seconds - watch.ElapsedSeconds());
    const int timeout_ms = static_cast<int>(remaining * 1000.0);
    ready = ::poll(fds.empty() ? nullptr : fds.data(),
                   static_cast<nfds_t>(fds.size()), timeout_ms);
    if (ready >= 0) break;
    if (errno != EINTR) return Errno("poll");
    if (watch.ElapsedSeconds() >= timeout_seconds) {
      ready = 0;
      break;
    }
  }
  std::vector<PollReady> result(entries.size());
  for (size_t i = 0; i < fds.size(); ++i) {
    result[i].readable = (fds[i].revents & POLLIN) != 0;
    result[i].writable = (fds[i].revents & POLLOUT) != 0;
    result[i].error =
        (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
  }
  return result;
}

}  // namespace sose::net
