#ifndef SOSE_CORE_NET_NET_H_
#define SOSE_CORE_NET_NET_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/status.h"

namespace sose::net {

/// Status-returning RAII wrapper around the POSIX socket primitives
/// (socket, bind, listen, accept, connect, poll, send, recv). This directory
/// is the *only* sanctioned home for raw socket management in the tree:
/// sose_lint rule R3 (`concurrency`) confines the underlying syscalls to
/// src/core/net/ the same way it confines raw process primitives to
/// src/core/subprocess.cc, so every descriptor the library opens flows
/// through one audited, error-propagating seam that owns the rules ad-hoc
/// call sites get wrong (O_NONBLOCK on every fd, MSG_NOSIGNAL so a dead
/// peer raises a Status instead of SIGPIPE, EINTR retries, close-on-exec).
///
/// The model is deliberately narrow — it exists for the `sosed` streaming
/// sketch service (docs/service.md) and mirrors src/core/subprocess:
///
///   * every socket is non-blocking from birth; readiness is discovered
///     with PollFds, never by blocking in read/write;
///   * reads drain into a caller-owned buffer (the service's CSV framing
///     re-assembles records with ExtractCompleteCsvRecords);
///   * writes report how many bytes the kernel took so callers can keep a
///     pending buffer and apply explicit backpressure.

/// What one non-blocking drain of a socket produced.
struct ReadChunk {
  int64_t bytes = 0;  ///< Bytes appended to the caller's buffer.
  bool eof = false;   ///< True once the peer closed its write side.
};

/// A connected stream socket (Unix-domain or TCP), always non-blocking.
/// Movable, not copyable; the destructor closes the descriptor, so RAII
/// alone guarantees no leaked fds on any error path.
class Socket {
 public:
  /// Connects to a Unix-domain listener at `path`. The connect itself is
  /// allowed to block briefly (UDS connects complete or fail immediately);
  /// the returned socket is non-blocking. Fails with kNotFound when nothing
  /// listens at `path`.
  [[nodiscard]] static Result<Socket> ConnectUnix(const std::string& path);

  /// Connects to a TCP listener on `host`:`port` (numeric IPv4 host, e.g.
  /// "127.0.0.1"). The returned socket is non-blocking.
  [[nodiscard]] static Result<Socket> ConnectTcp(const std::string& host,
                                                 int port);

  Socket() = default;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket();

  /// The descriptor (for PollFds); -1 once closed or default-constructed.
  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Closes the descriptor early (idempotent).
  void Close();

  /// Appends whatever the socket currently holds to `buffer` without
  /// blocking. A round with no data ready returns bytes == 0, eof == false.
  /// eof becomes true once the peer has closed its write side and the
  /// kernel buffer is fully drained.
  [[nodiscard]] Result<ReadChunk> ReadAvailable(std::string* buffer);

  /// Writes as much of `data` as the kernel will take without blocking and
  /// returns that byte count (possibly 0 when the send buffer is full — the
  /// caller keeps the rest pending and waits for writability). A peer that
  /// vanished mid-write fails with kInternal, never SIGPIPE.
  [[nodiscard]] Result<int64_t> WriteSome(const std::string& data,
                                          int64_t offset = 0);

  /// Blocking convenience for clients and tests: polls for writability and
  /// loops WriteSome until all of `data` is sent or `timeout_seconds`
  /// elapses (kInternal on timeout).
  [[nodiscard]] Status WriteAll(const std::string& data,
                                double timeout_seconds);

  /// Blocking convenience for clients and tests: polls for readability and
  /// drains until `buffer` contains at least one full newline-terminated
  /// record beyond `already_buffered` bytes, EOF, or the timeout.
  [[nodiscard]] Status ReadUntilNewline(std::string* buffer,
                                        double timeout_seconds);

 private:
  friend class Listener;
  explicit Socket(int fd) : fd_(fd) {}

  int fd_ = -1;
};

/// A listening socket (Unix-domain or TCP). Movable, not copyable. The
/// destructor closes the descriptor and unlinks a Unix-domain socket path,
/// so a crashed-and-restarted server never trips over its own stale socket
/// (ListenUnix also removes a pre-existing path before binding).
class Listener {
 public:
  /// Listens on a Unix-domain socket at `path` (an existing socket file at
  /// `path` is replaced).
  [[nodiscard]] static Result<Listener> ListenUnix(const std::string& path);

  /// Listens on TCP 127.0.0.1:`port`; `port` 0 binds an ephemeral port,
  /// readable back through port().
  [[nodiscard]] static Result<Listener> ListenTcp(int port);

  Listener() = default;
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  ~Listener();

  /// The listening descriptor (for PollFds); -1 once closed.
  int fd() const { return fd_; }
  /// The bound TCP port (0 for Unix-domain listeners).
  int port() const { return port_; }
  /// The Unix-domain path (empty for TCP listeners).
  const std::string& unix_path() const { return unix_path_; }

  /// Accepts one pending connection without blocking; std::nullopt when no
  /// connection is queued. The accepted socket is non-blocking. Transient
  /// per-connection accept failures (the peer reset before we got to it)
  /// also return nullopt rather than an error; only listener-level failures
  /// surface as a Status.
  [[nodiscard]] Result<std::optional<Socket>> Accept();

  void Close();

 private:
  Listener(int fd, int port, std::string unix_path)
      : fd_(fd), port_(port), unix_path_(std::move(unix_path)) {}

  int fd_ = -1;
  int port_ = 0;
  std::string unix_path_;
};

/// One descriptor's readiness interest for PollFds.
struct PollEntry {
  int fd = -1;
  bool want_read = false;
  bool want_write = false;
};

/// One descriptor's readiness result.
struct PollReady {
  bool readable = false;  ///< Data, a pending accept, or EOF to observe.
  bool writable = false;
  bool error = false;  ///< POLLERR/POLLHUP/POLLNVAL; drain then close.
};

/// Waits up to `timeout_seconds` for readiness on `entries` and returns one
/// PollReady per entry (all false when the timeout elapsed first). An empty
/// `entries` vector is a pure bounded sleep. EINTR is retried with the
/// remaining budget.
[[nodiscard]] Result<std::vector<PollReady>> PollFds(
    const std::vector<PollEntry>& entries, double timeout_seconds);

}  // namespace sose::net

#endif  // SOSE_CORE_NET_NET_H_
