#include "core/parallel/sharded_range.h"

#include <algorithm>

#include "core/check.h"
#include "core/metrics/metrics.h"

namespace sose {

ShardedRange::ShardedRange(int64_t begin, int64_t end, int num_shards)
    : num_shards_(std::max(1, num_shards)),
      shards_(new Shard[static_cast<size_t>(num_shards_)]) {
  SOSE_CHECK(begin <= end);
  for (int s = 0; s < num_shards_; ++s) {
    const auto [lo, hi] = ShardBounds(begin, end, num_shards_, s);
    shards_[static_cast<size_t>(s)].next.store(lo, std::memory_order_relaxed);
    shards_[static_cast<size_t>(s)].end = hi;
  }
}

std::pair<int64_t, int64_t> ShardedRange::ShardBounds(int64_t begin,
                                                      int64_t end,
                                                      int num_shards,
                                                      int shard) {
  SOSE_CHECK(begin <= end);
  SOSE_CHECK(num_shards >= 1);
  SOSE_CHECK(shard >= 0 && shard < num_shards);
  const int64_t length = end - begin;
  const int64_t base = length / num_shards;
  const int64_t remainder = length % num_shards;
  // Shard s starts after s full shards, the first `remainder` of which carry
  // one extra index.
  const int64_t lo =
      begin + base * shard + std::min<int64_t>(shard, remainder);
  const int64_t size = base + (shard < remainder ? 1 : 0);
  return {lo, lo + size};
}

bool ShardedRange::ClaimFrom(Shard* shard, int64_t* index) {
  // fetch_add may overshoot `end` on an exhausted shard; the overshoot is
  // bounded by one per claim attempt and never hands out an index twice.
  const int64_t claimed = shard->next.fetch_add(1, std::memory_order_relaxed);
  if (claimed < shard->end) {
    *index = claimed;
    return true;
  }
  // Each losing fetch_add is one wasted RMW on a contended ticket; the
  // counter makes stampedes on drained shards visible.
  SOSE_COUNTER_INC("range.ticket_overshoots");
  return false;
}

bool ShardedRange::Claim(int shard, int64_t* index) {
  SOSE_CHECK(shard >= 0 && shard < num_shards_);
  if (ClaimFrom(&shards_[static_cast<size_t>(shard)], index)) {
    SOSE_COUNTER_INC("range.claims_local");
    return true;
  }
  // Own shard drained: steal from the others, scanning ringwise so idle
  // workers spread over distinct victims instead of stampeding one.
  for (int offset = 1; offset < num_shards_; ++offset) {
    const int victim = (shard + offset) % num_shards_;
    if (ClaimFrom(&shards_[static_cast<size_t>(victim)], index)) {
      SOSE_COUNTER_INC("range.claims_stolen");
      return true;
    }
  }
  return false;
}

int64_t ShardedRange::Remaining() const {
  int64_t remaining = 0;
  for (int s = 0; s < num_shards_; ++s) {
    const Shard& shard = shards_[static_cast<size_t>(s)];
    remaining += std::max<int64_t>(
        0, shard.end - shard.next.load(std::memory_order_relaxed));
  }
  return remaining;
}

}  // namespace sose
