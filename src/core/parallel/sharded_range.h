#ifndef SOSE_CORE_PARALLEL_SHARDED_RANGE_H_
#define SOSE_CORE_PARALLEL_SHARDED_RANGE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

namespace sose {

/// An index range [begin, end) split into per-worker static shards, each
/// drained through an atomic ticket, with work stealing for tail balance.
///
/// Worker `w` owns the `w`-th contiguous shard and claims its indices in
/// ascending order. Once its own shard is exhausted the worker steals from
/// the other shards' remaining tickets, so a shard whose trials retry (or
/// are simply slower) never leaves the rest of the pool idle. Every index in
/// the range is claimed exactly once, by exactly one worker; *which* worker
/// claims an index is scheduling-dependent, which is why callers that need
/// determinism must key results by index, never by worker.
class ShardedRange {
 public:
  /// Splits [begin, end) into `num_shards` near-equal contiguous shards.
  /// Requires begin <= end and num_shards >= 1.
  ShardedRange(int64_t begin, int64_t end, int num_shards);

  int num_shards() const { return num_shards_; }

  /// The static [begin, end) bounds of shard `shard` under the same
  /// near-equal split the constructor uses (remainder spread over the first
  /// shards). Shared with the multi-process shard coordinator so process
  /// shards and thread shards partition a range identically.
  static std::pair<int64_t, int64_t> ShardBounds(int64_t begin, int64_t end,
                                                 int num_shards, int shard);

  /// Claims the next index for worker `shard`, preferring its own shard and
  /// stealing from the others once it is empty. Returns false when the whole
  /// range is exhausted.
  bool Claim(int shard, int64_t* index);

  /// Indices not yet claimed (approximate under concurrency; exact once all
  /// workers have stopped claiming).
  int64_t Remaining() const;

 private:
  // Cache-line aligned so two workers hammering adjacent shards' tickets do
  // not false-share.
  struct alignas(64) Shard {
    std::atomic<int64_t> next{0};
    int64_t end = 0;
  };

  bool ClaimFrom(Shard* shard, int64_t* index);

  int num_shards_;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace sose

#endif  // SOSE_CORE_PARALLEL_SHARDED_RANGE_H_
