#include "core/parallel/thread_pool.h"

#include <algorithm>
#include <utility>

#include "core/metrics/metrics.h"

namespace sose {

int HardwareConcurrency() {
  const unsigned reported = std::thread::hardware_concurrency();
  return reported == 0 ? 1 : static_cast<int>(reported);
}

int ResolveThreadCount(int requested) {
  if (requested == 0) return HardwareConcurrency();
  return std::max(1, requested);
}

ThreadPool::ThreadPool(int num_threads) {
  const int count = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  SOSE_COUNTER_INC("pool.tasks_submitted");
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Shutdown with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    SOSE_COUNTER_INC("pool.tasks_executed");
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace sose
