#ifndef SOSE_CORE_PARALLEL_THREAD_POOL_H_
#define SOSE_CORE_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sose {

/// Number of hardware threads, never less than 1 (std::thread reports 0 when
/// it cannot tell).
int HardwareConcurrency();

/// Resolves a user-facing thread-count knob: 0 means "all hardware threads",
/// any positive value is taken literally. Negative values are clamped to 1.
int ResolveThreadCount(int requested);

/// A fixed-size pool of worker threads draining a shared task queue.
///
/// The pool exists so Monte-Carlo supervisors (ose/trial_runner) can fan
/// trials out across cores without spawning a thread per trial: the worker
/// set is fixed at construction and reused for every submitted task. Tasks
/// must not throw — the library is exception-free by policy — and anything a
/// task touches must outlive the pool or be synchronized by the caller.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);

  /// Drains the queue: blocks until every submitted task has finished, then
  /// joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task for execution by some worker.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running.
  void WaitIdle();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // Signals queued work / shutdown.
  std::condition_variable idle_cv_;   // Signals the pool going idle.
  std::deque<std::function<void()>> queue_;
  int active_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace sose

#endif  // SOSE_CORE_PARALLEL_THREAD_POOL_H_
