#include "core/poly_hash.h"

namespace sose {

Result<PolyHash> PolyHash::Create(int64_t k, uint64_t range, Rng* rng) {
  if (k < 1) {
    return Status::InvalidArgument("PolyHash: independence k must be >= 1");
  }
  if (range < 1) {
    return Status::InvalidArgument("PolyHash: range must be >= 1");
  }
  SOSE_CHECK(rng != nullptr);
  std::vector<uint64_t> coefficients(static_cast<size_t>(k));
  for (uint64_t& coefficient : coefficients) {
    coefficient = rng->UniformInt(MersenneField::kPrime);
  }
  // A zero leading coefficient only lowers the polynomial degree for that
  // draw, which the k-wise independence guarantee tolerates.
  return PolyHash(std::move(coefficients), range);
}

uint64_t PolyHash::Eval(uint64_t x) const {
  const uint64_t point = MersenneField::Reduce(x);
  // Horner evaluation from the highest coefficient.
  uint64_t acc = 0;
  for (size_t i = coefficients_.size(); i > 0; --i) {
    acc = MersenneField::AddMod(MersenneField::MulMod(acc, point),
                                coefficients_[i - 1]);
  }
  // Range reduction by multiply-shift keeps the bias at range/p.
  const __uint128_t scaled = static_cast<__uint128_t>(acc) * range_;
  return static_cast<uint64_t>(scaled / MersenneField::kPrime);
}

}  // namespace sose
