#ifndef SOSE_CORE_POLY_HASH_H_
#define SOSE_CORE_POLY_HASH_H_

#include <cstdint>
#include <vector>

#include "core/random.h"
#include "core/status.h"

namespace sose {

/// Arithmetic over the Mersenne prime p = 2^61 − 1, the standard field for
/// k-independent polynomial hashing (reduction is two shifts and an add).
class MersenneField {
 public:
  static constexpr uint64_t kPrime = (uint64_t{1} << 61) - 1;

  /// x mod p for x < 2^62 + p (one folding step); inputs from MulMod/AddMod
  /// always satisfy this.
  static uint64_t Reduce(uint64_t x) {
    uint64_t folded = (x & kPrime) + (x >> 61);
    if (folded >= kPrime) folded -= kPrime;
    return folded;
  }

  /// (a + b) mod p for a, b < p.
  static uint64_t AddMod(uint64_t a, uint64_t b) {
    uint64_t sum = a + b;
    if (sum >= kPrime) sum -= kPrime;
    return sum;
  }

  /// (a * b) mod p for a, b < p, via 128-bit product folding.
  static uint64_t MulMod(uint64_t a, uint64_t b) {
    const __uint128_t product = static_cast<__uint128_t>(a) * b;
    const uint64_t lo = static_cast<uint64_t>(product) & kPrime;
    const uint64_t hi = static_cast<uint64_t>(product >> 61);
    return Reduce(lo + hi);
  }
};

/// A k-wise independent hash function h : [2^61 − 1] → [range), implemented
/// as a degree-(k−1) polynomial with uniform coefficients over the Mersenne
/// field (Wegman–Carter). Exactly k-wise independent over the field; the
/// final range reduction introduces O(range/p) bias, negligible here.
///
/// Used by the limited-independence Count-Sketch ablation: the paper's
/// constructions assume fully random hashing, and this class lets the
/// experiment suite measure how little independence the hard instances
/// actually need.
class PolyHash {
 public:
  /// Draws a k-wise independent function with outputs in [0, range).
  /// Fails unless k >= 1 and range >= 1.
  [[nodiscard]] static Result<PolyHash> Create(int64_t k, uint64_t range, Rng* rng);

  /// Evaluates the hash at `x` (any 64-bit value; reduced into the field).
  uint64_t Eval(uint64_t x) const;

  /// The independence parameter k.
  int64_t independence() const {
    return static_cast<int64_t>(coefficients_.size());
  }

  uint64_t range() const { return range_; }

 private:
  PolyHash(std::vector<uint64_t> coefficients, uint64_t range)
      : coefficients_(std::move(coefficients)), range_(range) {}

  std::vector<uint64_t> coefficients_;  // Degree k-1 polynomial, low first.
  uint64_t range_;
};

}  // namespace sose

#endif  // SOSE_CORE_POLY_HASH_H_
