#include "core/random.h"

#include <cmath>
#include <numbers>
#include <unordered_set>

namespace sose {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t DeriveSeed(uint64_t seed, uint64_t stream) {
  // Two SplitMix64 steps starting from a mix of the inputs. The golden-ratio
  // multiplier decorrelates consecutive stream ids.
  SplitMix64 mixer(seed ^ (stream * 0x9e3779b97f4a7c15ULL) ^
                   0xd1b54a32d192ed03ULL);
  mixer.Next();
  return mixer.Next();
}

Xoshiro256::Xoshiro256(uint64_t seed) {
  SplitMix64 mixer(seed);
  for (auto& word : s_) word = mixer.Next();
}

uint64_t Xoshiro256::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

void Xoshiro256::Jump() {
  static constexpr uint64_t kJump[] = {0x180ec6d33cfd0abaULL,
                                       0xd5a61266f0c9392cULL,
                                       0xa9582618e03fc9aaULL,
                                       0x39abdc4529b1661cULL};
  uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if ((jump & (1ULL << b)) != 0U) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      Next();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  SOSE_CHECK(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  uint64_t x = gen_.Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = gen_.Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  SOSE_CHECK(lo <= hi);
  return lo +
         static_cast<int64_t>(UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(gen_.Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Gaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller. u1 is kept away from 0 so log() is finite.
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 0.0);
  const double u2 = UniformDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = radius * std::sin(angle);
  have_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

std::vector<int> Rng::Permutation(int n) {
  SOSE_CHECK(n >= 0);
  std::vector<int> perm(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;
  Shuffle(&perm);
  return perm;
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  SOSE_CHECK(k >= 0);
  SOSE_CHECK(k <= n);
  // Floyd's algorithm: for j = n-k .. n-1 pick t in [0, j]; insert t unless
  // already chosen, in which case insert j. Every k-subset is equally likely.
  std::unordered_set<int64_t> chosen;
  chosen.reserve(static_cast<size_t>(k) * 2);
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(k));
  for (int64_t j = n - k; j < n; ++j) {
    int64_t t = UniformInt(0, j);
    if (chosen.contains(t)) t = j;
    chosen.insert(t);
    out.push_back(t);
  }
  Shuffle(&out);
  return out;
}

}  // namespace sose
