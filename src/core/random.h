#ifndef SOSE_CORE_RANDOM_H_
#define SOSE_CORE_RANDOM_H_

#include <cstdint>
#include <vector>

#include "core/check.h"

namespace sose {

/// SplitMix64: a tiny, statistically solid 64-bit generator used (a) to seed
/// the main generator from a single word and (b) as the counter-based
/// derivation function that makes sketch columns pure functions of
/// (seed, column). Reference: Steele, Lea & Flood, "Fast splittable
/// pseudorandom number generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Returns the next 64-bit output and advances the state.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Stateless mixing of two words into one; used to derive independent
/// per-object and per-column seeds from a master seed without shared state.
/// DeriveSeed(s, a) and DeriveSeed(s, b) are computationally independent
/// streams for a != b.
uint64_t DeriveSeed(uint64_t seed, uint64_t stream);

/// xoshiro256++ 1.0 (Blackman & Vigna, 2019): the library's main generator.
/// Fast, 256-bit state, passes BigCrush. All randomized objects in this
/// library take an explicit seed so that every experiment is reproducible
/// bit-for-bit.
class Xoshiro256 {
 public:
  /// Seeds the 256-bit state from one word via SplitMix64, per the authors'
  /// recommendation.
  explicit Xoshiro256(uint64_t seed);

  /// Returns the next 64-bit output.
  uint64_t Next();

  /// The generator's jump function: advances by 2^128 steps. Useful for
  /// carving non-overlapping substreams.
  void Jump();

 private:
  uint64_t s_[4];
};

/// High-level random source wrapping Xoshiro256 with the distributions this
/// library needs. Not thread-safe; create one per thread/stream.
class Rng {
 public:
  explicit Rng(uint64_t seed) : gen_(seed) {}

  /// Uniform 64-bit word.
  uint64_t NextUInt64() { return gen_.Next(); }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  /// `bound` must be positive.
  uint64_t UniformInt(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1) with 53 random bits.
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal via Box–Muller with caching (implemented locally so
  /// results are identical across standard libraries).
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Rademacher variable: +1 or -1 with probability 1/2 each.
  double Rademacher() { return (gen_.Next() >> 63) != 0U ? 1.0 : -1.0; }

  /// Bernoulli(p).
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    SOSE_CHECK(items != nullptr);
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// A uniformly random permutation of [0, n).
  std::vector<int> Permutation(int n);

  /// `k` distinct indices sampled uniformly from [0, n), in random order.
  /// Uses Floyd's algorithm: O(k) expected time, independent of n.
  /// Requires 0 <= k <= n.
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

 private:
  Xoshiro256 gen_;
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace sose

#endif  // SOSE_CORE_RANDOM_H_
