#include "core/simd/cpu_features.h"

namespace sose::simd {

namespace {

CpuFeatures Probe() {
  CpuFeatures features;
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports reads CPUID (and XGETBV for the OS-enabled
  // state), so it is true only when the instructions are actually usable.
  features.avx2 = __builtin_cpu_supports("avx2") != 0;
  features.avx512 = __builtin_cpu_supports("avx512f") != 0;
#elif defined(__aarch64__)
  // Advanced SIMD is part of the AArch64 baseline; no probe needed.
  features.neon = true;
#endif
  return features;
}

}  // namespace

const CpuFeatures& DetectCpuFeatures() {
  static const CpuFeatures features = Probe();
  return features;
}

std::string CpuFeaturesToString(const CpuFeatures& features) {
  std::string out;
  auto append = [&out](const char* name) {
    if (!out.empty()) out += ',';
    out += name;
  };
  if (features.avx2) append("avx2");
  if (features.avx512) append("avx512");
  if (features.neon) append("neon");
  return out.empty() ? "none" : out;
}

}  // namespace sose::simd
