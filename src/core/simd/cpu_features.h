#ifndef SOSE_CORE_SIMD_CPU_FEATURES_H_
#define SOSE_CORE_SIMD_CPU_FEATURES_H_

#include <string>

namespace sose::simd {

/// The vector instruction sets the kernel layer can dispatch to, as probed
/// at runtime. Detection is confined to this directory (sose_lint R7): the
/// rest of the tree never names an ISA, it only asks the dispatcher.
struct CpuFeatures {
  bool avx2 = false;    ///< x86: AVX2 (256-bit doubles).
  bool avx512 = false;  ///< x86: AVX-512 Foundation (512-bit doubles).
  bool neon = false;    ///< ARM: Advanced SIMD (mandatory on AArch64).
};

/// Probes the executing CPU once per process (CPUID on x86 via the
/// compiler's cpu_supports builtin, architecture baseline on AArch64) and
/// caches the answer. Never fails: a CPU with no vector extensions simply
/// reports all-false and the dispatcher stays on the scalar kernels.
const CpuFeatures& DetectCpuFeatures();

/// Human-readable feature list, e.g. "avx2,avx512" or "none" — recorded in
/// bench JSON so a result file names the hardware class it ran on.
std::string CpuFeaturesToString(const CpuFeatures& features);

}  // namespace sose::simd

#endif  // SOSE_CORE_SIMD_CPU_FEATURES_H_
