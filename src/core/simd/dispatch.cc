#include "core/simd/dispatch.h"

#include <atomic>
#include <cstdlib>

#include "core/metrics/metrics.h"
#include "core/simd/cpu_features.h"

namespace sose::simd {

namespace {

// The candidate variants in auto-preference order, widest first. A variant
// is usable when it is compiled in (accessor non-null) and the host CPU
// reports the feature.
struct Candidate {
  const char* name;
  const KernelTable* (*table)();
  bool (*supported)(const CpuFeatures&);
};

constexpr Candidate kCandidates[] = {
    {"avx512", Avx512Kernels,
     [](const CpuFeatures& f) { return f.avx512; }},
    {"avx2", Avx2Kernels, [](const CpuFeatures& f) { return f.avx2; }},
    {"neon", NeonKernels, [](const CpuFeatures& f) { return f.neon; }},
};

const KernelTable* UsableTable(const Candidate& candidate) {
  const KernelTable* table = candidate.table();
  if (table == nullptr) return nullptr;
  if (!candidate.supported(DetectCpuFeatures())) return nullptr;
  return table;
}

const KernelTable* AutoTable() {
  for (const Candidate& candidate : kCandidates) {
    if (const KernelTable* table = UsableTable(candidate)) return table;
  }
  return ScalarKernels();
}

// The selection state. `active` is lazily initialized so binaries that never
// call SelectKernels* (tests, tools) still dispatch to the widest ISA; lazy
// init is idempotent — concurrent first calls race to install the same
// deterministic auto table, so the winner is irrelevant.
std::atomic<const KernelTable*> g_active{nullptr};
std::atomic<int> g_source{static_cast<int>(KernelSelectionSource::kAuto)};

void Install(const KernelTable* table, KernelSelectionSource source) {
  g_source.store(static_cast<int>(source), std::memory_order_relaxed);
  g_active.store(table, std::memory_order_release);
  // Each dispatch decision is an event worth auditing in bench JSON: one
  // from lazy init, plus one per explicit SelectKernels* call (benches that
  // flip scalar <-> auto in-process record several).
  SOSE_COUNTER_INC("simd.dispatch.selections");
}

const KernelTable* EnvOrAutoTable(KernelSelectionSource* source) {
  // SOSE_KERNELS is honored even without a SelectKernels* call so that
  // `SOSE_KERNELS=scalar ctest` reruns the whole suite on the scalar
  // kernels (the kernels-scalar CI job). An invalid env value here falls
  // back to auto — only binaries that call SelectKernelsFromSpec() can
  // surface the error, and they re-validate it there.
  if (const char* env = std::getenv("SOSE_KERNELS");
      env != nullptr && env[0] != '\0') {
    const std::string spec(env);
    if (spec == "scalar") {
      *source = KernelSelectionSource::kEnv;
      return ScalarKernels();
    }
    for (const Candidate& candidate : kCandidates) {
      if (spec == candidate.name) {
        if (const KernelTable* table = UsableTable(candidate)) {
          *source = KernelSelectionSource::kEnv;
          return table;
        }
      }
    }
    // "auto", unknown, or unavailable: fall through.
  }
  *source = KernelSelectionSource::kAuto;
  return AutoTable();
}

}  // namespace

const KernelTable* ActiveKernels() {
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table != nullptr) return table;
  KernelSelectionSource source;
  table = EnvOrAutoTable(&source);
  Install(table, source);
  return table;
}

const char* ActiveIsaName() { return ActiveKernels()->name; }

KernelSelectionSource ActiveSelectionSource() {
  (void)ActiveKernels();  // Force lazy init so the source is resolved.
  return static_cast<KernelSelectionSource>(
      g_source.load(std::memory_order_relaxed));
}

const char* KernelSelectionSourceName(KernelSelectionSource source) {
  switch (source) {
    case KernelSelectionSource::kAuto:
      return "auto";
    case KernelSelectionSource::kEnv:
      return "env";
    case KernelSelectionSource::kFlag:
      return "flag";
  }
  return "auto";
}

std::vector<std::string> AvailableKernelIsas() {
  std::vector<std::string> isas;
  for (const Candidate& candidate : kCandidates) {
    if (UsableTable(candidate) != nullptr) isas.emplace_back(candidate.name);
  }
  isas.emplace_back("scalar");
  return isas;
}

Status SelectKernels(const std::string& spec, KernelSelectionSource source) {
  if (spec == "scalar") {
    Install(ScalarKernels(), source);
    return Status::OK();
  }
  if (spec == "auto") {
    Install(AutoTable(), KernelSelectionSource::kAuto);
    return Status::OK();
  }
  for (const Candidate& candidate : kCandidates) {
    if (spec != candidate.name) continue;
    if (const KernelTable* table = UsableTable(candidate)) {
      Install(table, source);
      return Status::OK();
    }
    return Status::InvalidArgument(
        "kernels: ISA '" + spec +
        "' is not available on this host/build (compiled-in and supported: " +
        [] {
          std::string joined;
          for (const std::string& isa : AvailableKernelIsas()) {
            if (!joined.empty()) joined += ',';
            joined += isa;
          }
          return joined;
        }() +
        ")");
  }
  return Status::InvalidArgument(
      "kernels: unknown spec '" + spec +
      "' (expected scalar, auto, avx2, avx512, or neon)");
}

Status SelectKernelsFromSpec(const std::string& flag_spec) {
  if (!flag_spec.empty()) {
    return SelectKernels(flag_spec, KernelSelectionSource::kFlag);
  }
  if (const char* env = std::getenv("SOSE_KERNELS");
      env != nullptr && env[0] != '\0') {
    return SelectKernels(env, KernelSelectionSource::kEnv);
  }
  Install(AutoTable(), KernelSelectionSource::kAuto);
  return Status::OK();
}

}  // namespace sose::simd
