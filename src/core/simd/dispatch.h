#ifndef SOSE_CORE_SIMD_DISPATCH_H_
#define SOSE_CORE_SIMD_DISPATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/simd/kernels.h"
#include "core/status.h"

namespace sose::simd {

/// Runtime kernel dispatch. One ISA variant is selected per process — by
/// default the widest one both compiled in and supported by the executing
/// CPU — and every hot loop in the sketch / linear-algebra layers routes
/// through the inline wrappers below. Selection is overridable, with
/// precedence `--kernels=<spec>` flag > `SOSE_KERNELS` env var > auto:
/// binaries call SelectKernelsFromSpec() with the flag value (empty when
/// absent), which falls back to the env var and then to auto-detection.
///
/// Because every variant is bitwise-identical to the scalar reference (see
/// kernels.h), the choice affects throughput only — results, CSVs, and
/// checkpoints are byte-identical across `--kernels` values. The chaos CI
/// job pins this end to end by diffing scalar-vs-auto E1 CSVs.

/// How the active table was chosen; recorded in bench JSON.
enum class KernelSelectionSource {
  kAuto = 0,  ///< Widest supported ISA, nothing overrode it.
  kEnv = 1,   ///< SOSE_KERNELS environment variable.
  kFlag = 2,  ///< --kernels command-line flag.
};

/// The table every wrapper below routes through. Lazily initialized to the
/// auto selection on first use; stable for the life of the process unless a
/// SelectKernels* call replaces it. Selection happens in main() before
/// worker threads spawn, so the swap is not racy in practice; the pointer
/// is atomic regardless so a concurrent reader sees either table, both of
/// which produce identical bits.
const KernelTable* ActiveKernels();

/// Name of the active table ("scalar", "avx2", "avx512", "neon").
const char* ActiveIsaName();

/// How the active table was selected.
KernelSelectionSource ActiveSelectionSource();

/// Canonical name for a selection source ("auto", "env", "flag").
const char* KernelSelectionSourceName(KernelSelectionSource source);

/// The ISA names this process could dispatch to: compiled-in variants whose
/// instructions the host CPU supports, plus "scalar". Sorted widest-first,
/// i.e. the auto selection is the first entry.
std::vector<std::string> AvailableKernelIsas();

/// Selects kernels from an explicit spec: "scalar", "auto", or an ISA name
/// ("avx2", "avx512", "neon"). Fails with kInvalidArgument for an unknown
/// spec or an ISA that is not available on this host/build — callers surface
/// that to the user rather than silently running scalar.
[[nodiscard]] Status SelectKernels(const std::string& spec,
                                   KernelSelectionSource source);

/// Applies the full override precedence: a non-empty `flag_spec` wins, else
/// a set-and-non-empty SOSE_KERNELS env var, else auto. Binaries with a
/// --kernels flag call this once at startup; binaries without one get the
/// env var + auto behavior for free via lazy init, so only an explicit env
/// typo needs a call site to be reported.
[[nodiscard]] Status SelectKernelsFromSpec(const std::string& flag_spec);

/// y[i] += a * x[i] for i in [0, n).
inline void Axpy(double a, const double* x, double* y, int64_t n) {
  ActiveKernels()->axpy(a, x, y, n);
}

/// y[i] *= a for i in [0, n).
inline void Scale(double a, double* y, int64_t n) {
  ActiveKernels()->scale(a, y, n);
}

/// y[i] *= x[i] for i in [0, n).
inline void Multiply(const double* x, double* y, int64_t n) {
  ActiveKernels()->multiply(x, y, n);
}

/// (lo[i], hi[i]) <- (lo[i] + hi[i], lo[i] - hi[i]) for i in [0, n).
inline void Butterfly(double* lo, double* hi, int64_t n) {
  ActiveKernels()->butterfly(lo, hi, n);
}

}  // namespace sose::simd

#endif  // SOSE_CORE_SIMD_DISPATCH_H_
