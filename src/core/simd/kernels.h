#ifndef SOSE_CORE_SIMD_KERNELS_H_
#define SOSE_CORE_SIMD_KERNELS_H_

#include <cstdint>

namespace sose::simd {

/// One ISA's implementation of the element-wise hot loops the sketch and
/// linear-algebra layers bottom out in. Every variant of every kernel is
/// **bitwise identical** to the scalar reference: the operations are pure
/// lane-wise IEEE add/sub/mul with no horizontal reductions, no
/// reassociation, and no fused multiply-add (the variant translation units
/// are compiled with contraction off), so vectorizing changes which
/// registers hold the numbers but not a single rounding. That invariant is
/// what lets the dispatcher pick an ISA per host while the `--threads` /
/// `--workers` bitwise-reproducibility guarantees keep holding; it is
/// pinned per-ISA by tests/core/simd_test.cc.
///
/// Kernels tolerate n == 0 and never read past their ranges. `axpy`,
/// `scale`, and `multiply` require x != y-style aliasing only in the
/// trivial sense (exact overlap is fine for scale; axpy/multiply require
/// distinct x and y); `butterfly` requires lo and hi to be disjoint.
struct KernelTable {
  /// Display name, e.g. "scalar", "avx2".
  const char* name;

  /// y[i] += a * x[i] for i in [0, n). The workhorse: batched sketch
  /// scatter, Gram/syrk tiles, matmul inner loops, accumulator updates.
  void (*axpy)(double a, const double* x, double* y, int64_t n);

  /// y[i] *= a for i in [0, n).
  void (*scale)(double a, double* y, int64_t n);

  /// y[i] *= x[i] for i in [0, n) — SRHT's sign flip ahead of the FWHT.
  void (*multiply)(const double* x, double* y, int64_t n);

  /// The FWHT butterfly: (lo[i], hi[i]) <- (lo[i] + hi[i], lo[i] - hi[i])
  /// for i in [0, n). One call per block per pass.
  void (*butterfly)(double* lo, double* hi, int64_t n);
};

/// The portable reference implementation; always available.
const KernelTable* ScalarKernels();

/// ISA variants. Each returns nullptr when the build target cannot emit the
/// instruction set (wrong architecture or missing compiler flags) — the
/// dispatcher treats nullptr as "not a candidate". Availability of the
/// *entry point* is a build-time fact; whether the host CPU can execute it
/// is DetectCpuFeatures()'s runtime call.
const KernelTable* Avx2Kernels();
const KernelTable* Avx512Kernels();
const KernelTable* NeonKernels();

}  // namespace sose::simd

#endif  // SOSE_CORE_SIMD_KERNELS_H_
