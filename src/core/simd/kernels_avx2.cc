// AVX2 kernel variants: 256-bit lanes, four doubles per op. Compiled with
// -mavx2 -ffp-contract=off (src/CMakeLists.txt); on non-x86 targets or
// builds without the flag the entry point degrades to nullptr and the
// dispatcher skips the variant.
//
// Bitwise parity with the scalar reference holds because every operation is
// lane-wise IEEE arithmetic in ascending index order: _mm256_mul_pd /
// _mm256_add_pd round each lane exactly as the scalar multiply and add do,
// the mul and add stay separate instructions (no FMA contraction — the
// intrinsics name non-fused operations and contraction is off), and the
// tail elements run the identical scalar sequence.
#include "core/simd/kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace sose::simd {

namespace {

constexpr int64_t kLanes = 4;

void AxpyAvx2(double a, const double* x, double* y, int64_t n) {
  const __m256d va = _mm256_set1_pd(a);
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256d vx = _mm256_loadu_pd(x + i);
    const __m256d vy = _mm256_loadu_pd(y + i);
    _mm256_storeu_pd(y + i, _mm256_add_pd(vy, _mm256_mul_pd(va, vx)));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void ScaleAvx2(double a, double* y, int64_t n) {
  const __m256d va = _mm256_set1_pd(a);
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    _mm256_storeu_pd(y + i, _mm256_mul_pd(_mm256_loadu_pd(y + i), va));
  }
  for (; i < n; ++i) y[i] *= a;
}

void MultiplyAvx2(const double* x, double* y, int64_t n) {
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    _mm256_storeu_pd(
        y + i, _mm256_mul_pd(_mm256_loadu_pd(y + i), _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] *= x[i];
}

void ButterflyAvx2(double* lo, double* hi, int64_t n) {
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256d a = _mm256_loadu_pd(lo + i);
    const __m256d b = _mm256_loadu_pd(hi + i);
    _mm256_storeu_pd(lo + i, _mm256_add_pd(a, b));
    _mm256_storeu_pd(hi + i, _mm256_sub_pd(a, b));
  }
  for (; i < n; ++i) {
    const double a = lo[i];
    const double b = hi[i];
    lo[i] = a + b;
    hi[i] = a - b;
  }
}

constexpr KernelTable kAvx2Table = {
    "avx2", AxpyAvx2, ScaleAvx2, MultiplyAvx2, ButterflyAvx2,
};

}  // namespace

const KernelTable* Avx2Kernels() { return &kAvx2Table; }

}  // namespace sose::simd

#else  // !__AVX2__

namespace sose::simd {

const KernelTable* Avx2Kernels() { return nullptr; }

}  // namespace sose::simd

#endif  // __AVX2__
