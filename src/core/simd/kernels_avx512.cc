// AVX-512F kernel variants: 512-bit lanes, eight doubles per op. Compiled
// with -mavx512f -ffp-contract=off (src/CMakeLists.txt); when the build
// target cannot emit AVX-512 the entry point degrades to nullptr and the
// dispatcher skips the variant.
//
// Parity argument is the same as kernels_avx2.cc: lane-wise IEEE mul/add in
// ascending index order, mul and add kept as separate (non-fused)
// instructions, and a scalar tail identical to the reference loop. The
// masked-tail forms AVX-512 offers are deliberately not used — a plain
// scalar tail is trivially bit-identical and the tails are cold.
#include "core/simd/kernels.h"

#if defined(__AVX512F__)

#include <immintrin.h>

namespace sose::simd {

namespace {

constexpr int64_t kLanes = 8;

void AxpyAvx512(double a, const double* x, double* y, int64_t n) {
  const __m512d va = _mm512_set1_pd(a);
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m512d vx = _mm512_loadu_pd(x + i);
    const __m512d vy = _mm512_loadu_pd(y + i);
    _mm512_storeu_pd(y + i, _mm512_add_pd(vy, _mm512_mul_pd(va, vx)));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void ScaleAvx512(double a, double* y, int64_t n) {
  const __m512d va = _mm512_set1_pd(a);
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    _mm512_storeu_pd(y + i, _mm512_mul_pd(_mm512_loadu_pd(y + i), va));
  }
  for (; i < n; ++i) y[i] *= a;
}

void MultiplyAvx512(const double* x, double* y, int64_t n) {
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    _mm512_storeu_pd(
        y + i, _mm512_mul_pd(_mm512_loadu_pd(y + i), _mm512_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] *= x[i];
}

void ButterflyAvx512(double* lo, double* hi, int64_t n) {
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m512d a = _mm512_loadu_pd(lo + i);
    const __m512d b = _mm512_loadu_pd(hi + i);
    _mm512_storeu_pd(lo + i, _mm512_add_pd(a, b));
    _mm512_storeu_pd(hi + i, _mm512_sub_pd(a, b));
  }
  for (; i < n; ++i) {
    const double a = lo[i];
    const double b = hi[i];
    lo[i] = a + b;
    hi[i] = a - b;
  }
}

constexpr KernelTable kAvx512Table = {
    "avx512", AxpyAvx512, ScaleAvx512, MultiplyAvx512, ButterflyAvx512,
};

}  // namespace

const KernelTable* Avx512Kernels() { return &kAvx512Table; }

}  // namespace sose::simd

#else  // !__AVX512F__

namespace sose::simd {

const KernelTable* Avx512Kernels() { return nullptr; }

}  // namespace sose::simd

#endif  // __AVX512F__
