// NEON (AArch64 Advanced SIMD) kernel variants: 128-bit lanes, two doubles
// per op. Advanced SIMD is part of the AArch64 baseline so no extra compile
// flag is needed, but the TU is still compiled with -ffp-contract=off (see
// src/CMakeLists.txt) — AArch64 has baseline FMA and GCC contracts by
// default, which would break bitwise parity with the scalar reference.
//
// vmulq_f64 / vaddq_f64 are the non-fused forms (vfmaq_f64 is the fused one
// and is deliberately not used), so each lane rounds exactly like the
// scalar multiply-then-add; tails run the identical scalar sequence.
#include "core/simd/kernels.h"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace sose::simd {

namespace {

constexpr int64_t kLanes = 2;

void AxpyNeon(double a, const double* x, double* y, int64_t n) {
  const float64x2_t va = vdupq_n_f64(a);
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const float64x2_t vx = vld1q_f64(x + i);
    const float64x2_t vy = vld1q_f64(y + i);
    vst1q_f64(y + i, vaddq_f64(vy, vmulq_f64(va, vx)));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void ScaleNeon(double a, double* y, int64_t n) {
  const float64x2_t va = vdupq_n_f64(a);
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    vst1q_f64(y + i, vmulq_f64(vld1q_f64(y + i), va));
  }
  for (; i < n; ++i) y[i] *= a;
}

void MultiplyNeon(const double* x, double* y, int64_t n) {
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    vst1q_f64(y + i, vmulq_f64(vld1q_f64(y + i), vld1q_f64(x + i)));
  }
  for (; i < n; ++i) y[i] *= x[i];
}

void ButterflyNeon(double* lo, double* hi, int64_t n) {
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const float64x2_t a = vld1q_f64(lo + i);
    const float64x2_t b = vld1q_f64(hi + i);
    vst1q_f64(lo + i, vaddq_f64(a, b));
    vst1q_f64(hi + i, vsubq_f64(a, b));
  }
  for (; i < n; ++i) {
    const double a = lo[i];
    const double b = hi[i];
    lo[i] = a + b;
    hi[i] = a - b;
  }
}

constexpr KernelTable kNeonTable = {
    "neon", AxpyNeon, ScaleNeon, MultiplyNeon, ButterflyNeon,
};

}  // namespace

const KernelTable* NeonKernels() { return &kNeonTable; }

}  // namespace sose::simd

#else  // !__aarch64__

namespace sose::simd {

const KernelTable* NeonKernels() { return nullptr; }

}  // namespace sose::simd

#endif  // __aarch64__
