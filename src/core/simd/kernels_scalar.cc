// Scalar reference kernels. These loops define the numbers every vector
// variant must reproduce bit for bit, so they are written as the plainest
// possible IEEE sequence: one multiply and one add per element, ascending
// index order, no accumulator splitting. This translation unit is compiled
// with -ffp-contract=off (see src/CMakeLists.txt) so the compiler cannot
// fuse the multiply-adds into FMAs on targets that have them.
#include "core/simd/kernels.h"

namespace sose::simd {

namespace {

void AxpyScalar(double a, const double* x, double* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void ScaleScalar(double a, double* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] *= a;
}

void MultiplyScalar(const double* x, double* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] *= x[i];
}

void ButterflyScalar(double* lo, double* hi, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    const double a = lo[i];
    const double b = hi[i];
    lo[i] = a + b;
    hi[i] = a - b;
  }
}

constexpr KernelTable kScalarTable = {
    "scalar", AxpyScalar, ScaleScalar, MultiplyScalar, ButterflyScalar,
};

}  // namespace

const KernelTable* ScalarKernels() { return &kScalarTable; }

}  // namespace sose::simd
