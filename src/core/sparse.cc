#include "core/sparse.h"

#include <algorithm>
#include <cmath>

namespace sose {

namespace {

// Sorts entries, sums duplicates, drops zeros — all in place, so conversion
// allocates exactly one working vector (the caller's copy of the entry
// list). `row_major` selects row-major (CSR) or column-major (CSC) ordering.
std::vector<SparseEntry> Compact(std::vector<SparseEntry> entries,
                                 bool row_major) {
  auto key_less = [row_major](const SparseEntry& a, const SparseEntry& b) {
    if (row_major) {
      return a.row != b.row ? a.row < b.row : a.col < b.col;
    }
    return a.col != b.col ? a.col < b.col : a.row < b.row;
  };
  std::sort(entries.begin(), entries.end(), key_less);
  // Two-finger duplicate merge: `w` trails `r`, folding runs of equal
  // coordinates into the last written entry.
  size_t w = 0;
  for (size_t r = 0; r < entries.size(); ++r) {
    if (w > 0 && entries[w - 1].row == entries[r].row &&
        entries[w - 1].col == entries[r].col) {
      entries[w - 1].value += entries[r].value;
    } else {
      if (w != r) entries[w] = entries[r];
      ++w;
    }
  }
  entries.resize(w);
  std::erase_if(entries, [](const SparseEntry& e) { return e.value == 0.0; });
  return entries;
}

}  // namespace

CooBuilder::CooBuilder(int64_t rows, int64_t cols) : rows_(rows), cols_(cols) {
  SOSE_CHECK(rows >= 0 && cols >= 0);
}

void CooBuilder::Add(int64_t row, int64_t col, double value) {
  SOSE_CHECK(row >= 0 && row < rows_);
  SOSE_CHECK(col >= 0 && col < cols_);
  entries_.push_back(SparseEntry{row, col, value});
}

void CooBuilder::Reserve(int64_t entries) {
  SOSE_CHECK(entries >= 0);
  entries_.reserve(static_cast<size_t>(entries));
}

CsrMatrix CooBuilder::ToCsr() const {
  std::vector<SparseEntry> compact = Compact(entries_, /*row_major=*/true);
  std::vector<int64_t> row_ptr(static_cast<size_t>(rows_) + 1, 0);
  std::vector<int64_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(compact.size());
  values.reserve(compact.size());
  for (const SparseEntry& entry : compact) {
    ++row_ptr[static_cast<size_t>(entry.row) + 1];
    col_idx.push_back(entry.col);
    values.push_back(entry.value);
  }
  for (size_t i = 1; i < row_ptr.size(); ++i) row_ptr[i] += row_ptr[i - 1];
  return CsrMatrix(rows_, cols_, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

CscMatrix CooBuilder::ToCsc() const {
  std::vector<SparseEntry> compact = Compact(entries_, /*row_major=*/false);
  std::vector<int64_t> col_ptr(static_cast<size_t>(cols_) + 1, 0);
  std::vector<int64_t> row_idx;
  std::vector<double> values;
  row_idx.reserve(compact.size());
  values.reserve(compact.size());
  for (const SparseEntry& entry : compact) {
    ++col_ptr[static_cast<size_t>(entry.col) + 1];
    row_idx.push_back(entry.row);
    values.push_back(entry.value);
  }
  for (size_t i = 1; i < col_ptr.size(); ++i) col_ptr[i] += col_ptr[i - 1];
  return CscMatrix(rows_, cols_, std::move(col_ptr), std::move(row_idx),
                   std::move(values));
}

CsrMatrix::CsrMatrix(int64_t rows, int64_t cols, std::vector<int64_t> row_ptr,
                     std::vector<int64_t> col_idx, std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  SOSE_CHECK(rows >= 0 && cols >= 0);
  SOSE_CHECK(static_cast<int64_t>(row_ptr_.size()) == rows_ + 1);
  SOSE_CHECK(col_idx_.size() == values_.size());
  SOSE_CHECK(row_ptr_.front() == 0);
  SOSE_CHECK(row_ptr_.back() == static_cast<int64_t>(values_.size()));
}

Matrix CsrMatrix::Multiply(const Matrix& dense) const {
  SOSE_CHECK(dense.rows() == cols_);
  Matrix out(rows_, dense.cols());
  for (int64_t i = 0; i < rows_; ++i) {
    double* out_row = out.Row(i);
    for (int64_t p = row_ptr_[static_cast<size_t>(i)];
         p < row_ptr_[static_cast<size_t>(i) + 1]; ++p) {
      const double v = values_[static_cast<size_t>(p)];
      const double* dense_row = dense.Row(col_idx_[static_cast<size_t>(p)]);
      for (int64_t j = 0; j < dense.cols(); ++j) out_row[j] += v * dense_row[j];
    }
  }
  return out;
}

std::vector<double> CsrMatrix::MatVec(const std::vector<double>& x) const {
  SOSE_CHECK(static_cast<int64_t>(x.size()) == cols_);
  std::vector<double> out(static_cast<size_t>(rows_), 0.0);
  for (int64_t i = 0; i < rows_; ++i) {
    double sum = 0.0;
    for (int64_t p = row_ptr_[static_cast<size_t>(i)];
         p < row_ptr_[static_cast<size_t>(i) + 1]; ++p) {
      sum += values_[static_cast<size_t>(p)] *
             x[static_cast<size_t>(col_idx_[static_cast<size_t>(p)])];
    }
    out[static_cast<size_t>(i)] = sum;
  }
  return out;
}

std::vector<double> CsrMatrix::MatVecTransposed(
    const std::vector<double>& x) const {
  SOSE_CHECK(static_cast<int64_t>(x.size()) == rows_);
  std::vector<double> out(static_cast<size_t>(cols_), 0.0);
  for (int64_t i = 0; i < rows_; ++i) {
    const double xi = x[static_cast<size_t>(i)];
    if (xi == 0.0) continue;
    for (int64_t p = row_ptr_[static_cast<size_t>(i)];
         p < row_ptr_[static_cast<size_t>(i) + 1]; ++p) {
      out[static_cast<size_t>(col_idx_[static_cast<size_t>(p)])] +=
          xi * values_[static_cast<size_t>(p)];
    }
  }
  return out;
}

Matrix CsrMatrix::ToDense() const {
  Matrix out(rows_, cols_);
  for (int64_t i = 0; i < rows_; ++i) {
    for (int64_t p = row_ptr_[static_cast<size_t>(i)];
         p < row_ptr_[static_cast<size_t>(i) + 1]; ++p) {
      out.At(i, col_idx_[static_cast<size_t>(p)]) =
          values_[static_cast<size_t>(p)];
    }
  }
  return out;
}

double CsrMatrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : values_) sum += v * v;
  return std::sqrt(sum);
}

CscMatrix::CscMatrix(int64_t rows, int64_t cols, std::vector<int64_t> col_ptr,
                     std::vector<int64_t> row_idx, std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      col_ptr_(std::move(col_ptr)),
      row_idx_(std::move(row_idx)),
      values_(std::move(values)) {
  SOSE_CHECK(rows >= 0 && cols >= 0);
  SOSE_CHECK(static_cast<int64_t>(col_ptr_.size()) == cols_ + 1);
  SOSE_CHECK(row_idx_.size() == values_.size());
  SOSE_CHECK(col_ptr_.front() == 0);
  SOSE_CHECK(col_ptr_.back() == static_cast<int64_t>(values_.size()));
}

double CscMatrix::ColNormSquared(int64_t j) const {
  SOSE_CHECK(j >= 0 && j < cols_);
  double sum = 0.0;
  for (int64_t p = col_ptr_[static_cast<size_t>(j)];
       p < col_ptr_[static_cast<size_t>(j) + 1]; ++p) {
    const double v = values_[static_cast<size_t>(p)];
    sum += v * v;
  }
  return sum;
}

double CscMatrix::ColDot(int64_t j, int64_t k) const {
  SOSE_CHECK(j >= 0 && j < cols_);
  SOSE_CHECK(k >= 0 && k < cols_);
  int64_t p = col_ptr_[static_cast<size_t>(j)];
  int64_t q = col_ptr_[static_cast<size_t>(k)];
  const int64_t p_end = col_ptr_[static_cast<size_t>(j) + 1];
  const int64_t q_end = col_ptr_[static_cast<size_t>(k) + 1];
  double sum = 0.0;
  while (p < p_end && q < q_end) {
    const int64_t rp = row_idx_[static_cast<size_t>(p)];
    const int64_t rq = row_idx_[static_cast<size_t>(q)];
    if (rp == rq) {
      sum += values_[static_cast<size_t>(p)] * values_[static_cast<size_t>(q)];
      ++p;
      ++q;
    } else if (rp < rq) {
      ++p;
    } else {
      ++q;
    }
  }
  return sum;
}

Matrix CscMatrix::Multiply(const Matrix& dense) const {
  SOSE_CHECK(dense.rows() == cols_);
  Matrix out(rows_, dense.cols());
  for (int64_t j = 0; j < cols_; ++j) {
    const double* dense_row = dense.Row(j);
    for (int64_t p = col_ptr_[static_cast<size_t>(j)];
         p < col_ptr_[static_cast<size_t>(j) + 1]; ++p) {
      double* out_row = out.Row(row_idx_[static_cast<size_t>(p)]);
      const double v = values_[static_cast<size_t>(p)];
      for (int64_t k = 0; k < dense.cols(); ++k) out_row[k] += v * dense_row[k];
    }
  }
  return out;
}

std::vector<double> CscMatrix::MatVec(const std::vector<double>& x) const {
  SOSE_CHECK(static_cast<int64_t>(x.size()) == cols_);
  std::vector<double> out(static_cast<size_t>(rows_), 0.0);
  for (int64_t j = 0; j < cols_; ++j) {
    const double xj = x[static_cast<size_t>(j)];
    if (xj == 0.0) continue;
    for (int64_t p = col_ptr_[static_cast<size_t>(j)];
         p < col_ptr_[static_cast<size_t>(j) + 1]; ++p) {
      out[static_cast<size_t>(row_idx_[static_cast<size_t>(p)])] +=
          xj * values_[static_cast<size_t>(p)];
    }
  }
  return out;
}

CsrMatrix CscMatrix::ToCsr() const {
  std::vector<int64_t> row_ptr(static_cast<size_t>(rows_) + 1, 0);
  std::vector<int64_t> col_idx(values_.size());
  std::vector<double> values(values_.size());
  for (int64_t r : row_idx_) ++row_ptr[static_cast<size_t>(r) + 1];
  for (size_t i = 1; i < row_ptr.size(); ++i) row_ptr[i] += row_ptr[i - 1];
  // Column-ascending iteration keeps col indices strictly increasing within
  // each row, as the CsrMatrix constructor contract requires.
  std::vector<int64_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
  for (int64_t j = 0; j < cols_; ++j) {
    for (int64_t p = col_ptr_[static_cast<size_t>(j)];
         p < col_ptr_[static_cast<size_t>(j) + 1]; ++p) {
      const int64_t r = row_idx_[static_cast<size_t>(p)];
      const int64_t q = cursor[static_cast<size_t>(r)]++;
      col_idx[static_cast<size_t>(q)] = j;
      values[static_cast<size_t>(q)] = values_[static_cast<size_t>(p)];
    }
  }
  return CsrMatrix(rows_, cols_, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

Matrix CscMatrix::ToDense() const {
  Matrix out(rows_, cols_);
  for (int64_t j = 0; j < cols_; ++j) {
    for (int64_t p = col_ptr_[static_cast<size_t>(j)];
         p < col_ptr_[static_cast<size_t>(j) + 1]; ++p) {
      out.At(row_idx_[static_cast<size_t>(p)], j) = values_[static_cast<size_t>(p)];
    }
  }
  return out;
}

double CscMatrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : values_) sum += v * v;
  return std::sqrt(sum);
}

}  // namespace sose
