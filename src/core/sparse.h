#ifndef SOSE_CORE_SPARSE_H_
#define SOSE_CORE_SPARSE_H_

#include <cstdint>
#include <vector>

#include "core/matrix.h"

namespace sose {

/// One nonzero entry of a sparse matrix.
struct SparseEntry {
  int64_t row = 0;
  int64_t col = 0;
  double value = 0.0;
};

class CsrMatrix;
class CscMatrix;

/// Coordinate-format accumulator for building sparse matrices. Duplicate
/// coordinates are summed on conversion, which is exactly the semantics the
/// hard-instance distribution `D_β` needs when two canonical-basis columns of
/// `V` land on the same row.
class CooBuilder {
 public:
  /// Creates a builder for a `rows` x `cols` matrix.
  CooBuilder(int64_t rows, int64_t cols);

  /// Records `value` at (row, col). Bounds are checked.
  void Add(int64_t row, int64_t col, double value);

  /// Pre-allocates capacity for `entries` future Add() calls, so tight draw
  /// loops do not pay geometric regrowth.
  void Reserve(int64_t entries);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t num_entries() const { return static_cast<int64_t>(entries_.size()); }

  /// Converts to compressed sparse row format (duplicates summed, explicit
  /// zeros dropped).
  CsrMatrix ToCsr() const;

  /// Converts to compressed sparse column format (duplicates summed, explicit
  /// zeros dropped).
  CscMatrix ToCsc() const;

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<SparseEntry> entries_;
};

/// Compressed sparse row matrix. Immutable after construction.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Direct constructor from CSR arrays; `row_ptr` has rows+1 entries,
  /// column indices within each row must be strictly increasing.
  CsrMatrix(int64_t rows, int64_t cols, std::vector<int64_t> row_ptr,
            std::vector<int64_t> col_idx, std::vector<double> values);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int64_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

  /// Returns `this * dense`; `dense.rows()` must equal `cols()`.
  Matrix Multiply(const Matrix& dense) const;

  /// Returns `this * x`.
  std::vector<double> MatVec(const std::vector<double>& x) const;

  /// Returns `thisᵀ * x`.
  std::vector<double> MatVecTransposed(const std::vector<double>& x) const;

  /// Materialises as a dense matrix (small instances / tests).
  Matrix ToDense() const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<int64_t> row_ptr_{0};
  std::vector<int64_t> col_idx_;
  std::vector<double> values_;
};

/// Compressed sparse column matrix. Immutable after construction. The
/// column-oriented layout serves the lower-bound machinery, which constantly
/// asks for per-column heavy entries and column inner products.
class CscMatrix {
 public:
  CscMatrix() = default;

  /// Direct constructor from CSC arrays; `col_ptr` has cols+1 entries, row
  /// indices within each column must be strictly increasing.
  CscMatrix(int64_t rows, int64_t cols, std::vector<int64_t> col_ptr,
            std::vector<int64_t> row_idx, std::vector<double> values);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  const std::vector<int64_t>& col_ptr() const { return col_ptr_; }
  const std::vector<int64_t>& row_idx() const { return row_idx_; }
  const std::vector<double>& values() const { return values_; }

  /// Number of stored entries in column `j`.
  int64_t ColNnz(int64_t j) const {
    SOSE_DCHECK(j >= 0 && j < cols_);
    return col_ptr_[static_cast<size_t>(j) + 1] - col_ptr_[static_cast<size_t>(j)];
  }

  /// Squared l2 norm of column `j`.
  double ColNormSquared(int64_t j) const;

  /// Inner product of columns `j` and `k` (merge over sorted row indices).
  double ColDot(int64_t j, int64_t k) const;

  /// Returns `this * dense`; `dense.rows()` must equal `cols()`.
  Matrix Multiply(const Matrix& dense) const;

  /// Returns `this * x`.
  std::vector<double> MatVec(const std::vector<double>& x) const;

  /// Re-compresses by row (counting sort over the CSC arrays). O(nnz +
  /// rows) time and O(rows) scratch, so only for matrices whose row count
  /// is materializable — the batched sketch paths, whose inputs can have
  /// ambient row counts in the billions, use RowOrderedEntries() instead.
  CsrMatrix ToCsr() const;

  /// Materialises as a dense matrix (small instances / tests).
  Matrix ToDense() const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<int64_t> col_ptr_{0};
  std::vector<int64_t> row_idx_;
  std::vector<double> values_;
};

}  // namespace sose

#endif  // SOSE_CORE_SPARSE_H_
