#include "core/stats.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace sose {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

double RunningStats::StdError() const {
  if (count_ == 0) return 0.0;
  return StdDev() / std::sqrt(static_cast<double>(count_));
}

ConfidenceInterval WilsonInterval(int64_t successes, int64_t trials, double z) {
  SOSE_CHECK(trials >= 0);
  SOSE_CHECK(successes >= 0 && successes <= trials);
  if (trials == 0) return ConfidenceInterval{0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double p_hat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p_hat + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p_hat * (1.0 - p_hat) / n + z2 / (4.0 * n * n)) / denom;
  return ConfidenceInterval{std::max(0.0, center - half),
                            std::min(1.0, center + half)};
}

double Quantile(std::vector<double> data, double q) {
  SOSE_CHECK(!data.empty());
  SOSE_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(data.begin(), data.end());
  const double pos = q * static_cast<double>(data.size() - 1);
  const size_t lower = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lower);
  if (lower + 1 >= data.size()) return data.back();
  return data[lower] * (1.0 - frac) + data[lower + 1] * frac;
}

LinearFit FitLine(const std::vector<double>& x, const std::vector<double>& y) {
  SOSE_CHECK(x.size() == y.size());
  SOSE_CHECK(x.size() >= 2);
  const double n = static_cast<double>(x.size());
  double sum_x = 0.0, sum_y = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sum_x += x[i];
    sum_y += y[i];
  }
  const double mean_x = sum_x / n;
  const double mean_y = sum_y / n;
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  SOSE_CHECK(sxx > 0.0);
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = mean_y - fit.slope * mean_x;
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

LinearFit FitPowerLaw(const std::vector<double>& x,
                      const std::vector<double>& y) {
  SOSE_CHECK(x.size() == y.size());
  std::vector<double> log_x(x.size());
  std::vector<double> log_y(y.size());
  for (size_t i = 0; i < x.size(); ++i) {
    SOSE_CHECK(x[i] > 0.0 && y[i] > 0.0);
    log_x[i] = std::log(x[i]);
    log_y[i] = std::log(y[i]);
  }
  return FitLine(log_x, log_y);
}

double BinomialUpperTail(int64_t n, double p, int64_t k) {
  SOSE_CHECK(n >= 0);
  SOSE_CHECK(p >= 0.0 && p <= 1.0);
  if (k <= 0) return 1.0;
  if (k > n) return 0.0;
  // Sum Pr[X = i] for i in [k, n] in log space for stability.
  double tail = 0.0;
  double log_p = std::log(std::max(p, 1e-300));
  double log_q = std::log(std::max(1.0 - p, 1e-300));
  // log C(n, i) built incrementally.
  double log_choose = 0.0;
  for (int64_t i = 1; i <= k - 1; ++i) {
    log_choose += std::log(static_cast<double>(n - i + 1)) -
                  std::log(static_cast<double>(i));
  }
  for (int64_t i = k; i <= n; ++i) {
    if (i >= 1) {
      log_choose += std::log(static_cast<double>(n - i + 1)) -
                    std::log(static_cast<double>(i));
    }
    const double log_term = log_choose + static_cast<double>(i) * log_p +
                            static_cast<double>(n - i) * log_q;
    tail += std::exp(log_term);
  }
  return std::min(tail, 1.0);
}

}  // namespace sose
