#ifndef SOSE_CORE_STATS_H_
#define SOSE_CORE_STATS_H_

#include <cstdint>
#include <vector>

namespace sose {

/// Single-pass accumulator for mean/variance/min/max (Welford's algorithm).
/// Numerically stable for the long Monte-Carlo streams the experiment
/// harness produces.
class RunningStats {
 public:
  /// Incorporates one observation.
  void Add(double x);

  /// Number of observations.
  int64_t count() const { return count_; }
  /// Sample mean (0 if empty).
  double Mean() const { return mean_; }
  /// Unbiased sample variance (0 if fewer than 2 observations).
  double Variance() const;
  /// Square root of Variance().
  double StdDev() const;
  /// StdDev() / sqrt(count): the standard error of the mean.
  double StdError() const;
  double Min() const { return min_; }
  double Max() const { return max_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A two-sided confidence interval [lo, hi].
struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 1.0;
};

/// Wilson score interval for a binomial proportion with `successes` out of
/// `trials` at confidence level `z` standard deviations (z = 1.96 for 95%).
/// Well-behaved at the extremes (0 or all successes), unlike the normal
/// approximation — important because the experiments estimate failure
/// probabilities that are sometimes exactly 0 in the sample.
ConfidenceInterval WilsonInterval(int64_t successes, int64_t trials,
                                  double z = 1.96);

/// The q-th quantile (0 <= q <= 1) of the data by linear interpolation of
/// the order statistics. The input is copied and sorted.
double Quantile(std::vector<double> data, double q);

/// Ordinary least squares fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination.
  double r_squared = 0.0;
};

/// Fits a line through (x[i], y[i]). Requires at least two points and
/// non-constant x.
LinearFit FitLine(const std::vector<double>& x, const std::vector<double>& y);

/// Fits log(y) = slope * log(x) + c, i.e. the power-law exponent in
/// y ≈ C x^slope. All inputs must be positive. This is how the experiment
/// suite turns measured thresholds m*(d, ε, δ) into empirical exponents to
/// compare against the paper's Ω(d²/(ε²δ)).
LinearFit FitPowerLaw(const std::vector<double>& x,
                      const std::vector<double>& y);

/// Exact binomial tail Pr[Bin(n, p) >= k], computed by summation (n small
/// enough for the experiment harness). Used for significance reporting.
double BinomialUpperTail(int64_t n, double p, int64_t k);

}  // namespace sose

#endif  // SOSE_CORE_STATS_H_
