#include "core/status.h"

#include <cstdio>
#include <cstdlib>

namespace sose {

namespace {
const std::string& EmptyString() {
  static const std::string* const kEmpty = new std::string;
  return *kEmpty;
}
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kOutOfRange:
      return "out-of-range";
    case StatusCode::kFailedPrecondition:
      return "failed-precondition";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kAlreadyExists:
      return "already-exists";
    case StatusCode::kNumericalError:
      return "numerical-error";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

bool StatusCodeFromString(const std::string& name, StatusCode* code) {
  static constexpr StatusCode kAll[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kOutOfRange,   StatusCode::kFailedPrecondition,
      StatusCode::kNotFound,     StatusCode::kAlreadyExists,
      StatusCode::kNumericalError, StatusCode::kUnimplemented,
      StatusCode::kInternal,       StatusCode::kUnavailable};
  for (StatusCode candidate : kAll) {
    if (name == StatusCodeToString(candidate)) {
      *code = candidate;
      return true;
    }
  }
  return false;
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_unique<Rep>(Rep{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.rep_ != nullptr) rep_ = std::make_unique<Rep>(*other.rep_);
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    rep_ = other.rep_ == nullptr ? nullptr : std::make_unique<Rep>(*other.rep_);
  }
  return *this;
}

Status Status::InvalidArgument(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status Status::OutOfRange(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status Status::FailedPrecondition(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status Status::NotFound(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status Status::AlreadyExists(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status Status::NumericalError(std::string message) {
  return Status(StatusCode::kNumericalError, std::move(message));
}
Status Status::Unimplemented(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status Status::Internal(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status Status::Unavailable(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}

const std::string& Status::message() const {
  return rep_ == nullptr ? EmptyString() : rep_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

void Status::CheckOK() const {
  if (ok()) return;
  std::fprintf(stderr, "fatal status: %s\n", ToString().c_str());
  // CheckOK is the documented abort-on-error escape hatch for examples and
  // benches; this is the one place the library itself may terminate.
  std::abort();  // sose-lint: allow(header-hygiene)
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace sose
