#ifndef SOSE_CORE_STATUS_H_
#define SOSE_CORE_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace sose {

/// Machine-readable category of a failure. Mirrors the Arrow/Abseil set,
/// restricted to the categories this library can actually produce.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   ///< Caller passed a malformed or out-of-range value.
  kOutOfRange = 2,        ///< An index or parameter exceeded a valid bound.
  kFailedPrecondition = 3,///< Object state does not permit the operation.
  kNotFound = 4,          ///< A lookup (e.g. sketch registry) had no match.
  kAlreadyExists = 5,     ///< A registration collided with an existing entry.
  kNumericalError = 6,    ///< An iterative solver failed to converge, a
                          ///< matrix was singular/not SPD, etc.
  kUnimplemented = 7,     ///< Feature intentionally not provided.
  kInternal = 8,          ///< Invariant violation inside the library.
  kUnavailable = 9,       ///< Transient resource exhaustion: the caller
                          ///< should back off and retry (the `sosed`
                          ///< admission-control BUSY category).
};

/// Returns the canonical lowercase name of a status code, e.g.
/// "invalid-argument".
const char* StatusCodeToString(StatusCode code);

/// Parses a canonical code name back into a StatusCode (the inverse of
/// StatusCodeToString; used by checkpoint files). Returns false on an
/// unrecognized name.
bool StatusCodeFromString(const std::string& name, StatusCode* code);

/// A cheap, movable success/error value. Functions in this library that can
/// fail for reasons other than programming errors return `Status` (or
/// `Result<T>`) instead of throwing: the database-style guides this project
/// follows ban exceptions across API boundaries.
///
/// The OK status carries no allocation; error statuses own a message.
///
/// The class carries `[[nodiscard]]`: a dropped Status is a silently
/// swallowed error, which would bias exactly the failure probabilities this
/// repository estimates. Discarding one is a compile error under -Werror and
/// a `discarded-status` finding from sose_lint; the sanctioned escape hatch
/// is an explicit `(void)` cast with a comment justifying it.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. `code` must not be
  /// `kOk` (use the default constructor for success).
  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Returns an OK status.
  [[nodiscard]] static Status OK() { return Status(); }
  /// Convenience constructors for each error category.
  [[nodiscard]] static Status InvalidArgument(std::string message);
  [[nodiscard]] static Status OutOfRange(std::string message);
  [[nodiscard]] static Status FailedPrecondition(std::string message);
  [[nodiscard]] static Status NotFound(std::string message);
  [[nodiscard]] static Status AlreadyExists(std::string message);
  [[nodiscard]] static Status NumericalError(std::string message);
  [[nodiscard]] static Status Unimplemented(std::string message);
  [[nodiscard]] static Status Internal(std::string message);
  [[nodiscard]] static Status Unavailable(std::string message);

  /// True iff this status represents success.
  [[nodiscard]] bool ok() const { return rep_ == nullptr; }

  /// The status code; `kOk` for success.
  [[nodiscard]] StatusCode code() const {
    return rep_ == nullptr ? StatusCode::kOk : rep_->code;
  }

  /// The error message; empty for success.
  const std::string& message() const;

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

  /// Aborts the process with the error message if not OK. Intended for
  /// examples and benches where an error is unrecoverable.
  void CheckOK() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // Null for OK: keeps the success path allocation-free.
  std::unique_ptr<Rep> rep_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// The value-or-error return type used throughout the library.
///
/// A `Result<T>` holds either a `T` or an error `Status`. Accessing the value
/// of an errored result aborts, so callers must test `ok()` first (or use the
/// SOSE_ASSIGN_OR_RETURN macro).
///
/// Like `Status`, `Result` is `[[nodiscard]]`: a dropped Result throws away
/// both the value and the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a successful result (implicit by design, mirroring Arrow).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs an errored result. `status` must not be OK.
  Result(Status status) : value_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (std::get<Status>(value_).ok()) {
      value_ = Status::Internal("Result constructed from OK status");
    }
  }

  /// True iff a value is present.
  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(value_); }

  /// The error status; OK when a value is present.
  [[nodiscard]] Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(value_);
  }

  /// The contained value. Aborts if this result holds an error.
  const T& value() const& {
    AbortIfError();
    return std::get<T>(value_);
  }
  T& value() & {
    AbortIfError();
    return std::get<T>(value_);
  }
  T&& value() && {
    AbortIfError();
    return std::move(std::get<T>(value_));
  }

  /// Returns the value, aborting with the error message on failure. For
  /// examples/benches where errors are unrecoverable.
  T ValueOrDie() && {
    AbortIfError();
    return std::move(std::get<T>(value_));
  }

 private:
  void AbortIfError() const {
    if (!ok()) std::get<Status>(value_).CheckOK();
  }
  std::variant<T, Status> value_;
};

/// Propagates an error status from an expression returning `Status`.
#define SOSE_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::sose::Status sose_status_ = (expr);            \
    if (!sose_status_.ok()) return sose_status_;     \
  } while (false)

#define SOSE_CONCAT_IMPL_(x, y) x##y
#define SOSE_CONCAT_(x, y) SOSE_CONCAT_IMPL_(x, y)

/// Evaluates an expression returning `Result<T>`; on success binds the value
/// to `lhs`, on failure returns the error status from the enclosing function.
#define SOSE_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  SOSE_ASSIGN_OR_RETURN_IMPL_(SOSE_CONCAT_(sose_result_, __LINE__),   \
                              lhs, rexpr)

#define SOSE_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                                \
  if (!result.ok()) return result.status();             \
  lhs = std::move(result).value()

}  // namespace sose

#endif  // SOSE_CORE_STATUS_H_
