#ifndef SOSE_CORE_STOPWATCH_H_
#define SOSE_CORE_STOPWATCH_H_

#include <chrono>

namespace sose {

/// Wall-clock stopwatch for coarse experiment timing (fine-grained kernel
/// timing goes through google-benchmark instead).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start time to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sose

#endif  // SOSE_CORE_STOPWATCH_H_
