#include "core/subprocess.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <utility>

namespace sose {

namespace {

Status ErrnoStatus(const char* what) {
  return Status::Internal(std::string(what) + " failed: " +
                          std::strerror(errno));
}

// Decodes a waitpid status word.
ProcessStatus DecodeWaitStatus(int wstatus) {
  ProcessStatus status;
  if (WIFEXITED(wstatus)) {
    status.state = ProcessState::kExited;
    status.exit_code = WEXITSTATUS(wstatus);
  } else if (WIFSIGNALED(wstatus)) {
    status.state = ProcessState::kSignaled;
    status.term_signal = WTERMSIG(wstatus);
  }
  return status;
}

}  // namespace

Result<Subprocess> Subprocess::Spawn(const ChildMain& child_main) {
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) {
    return ErrnoStatus("Subprocess::Spawn: pipe");
  }
  // Flush stdio before forking: the child inherits the parent's buffered
  // output, and although it terminates via _exit (never flushing), keeping
  // the buffers empty at the fork point removes the whole class of
  // duplicated-output surprises.
  std::fflush(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    const Status status = ErrnoStatus("Subprocess::Spawn: fork");
    ::close(fds[0]);
    ::close(fds[1]);
    return status;
  }
  if (pid == 0) {
    // Child: keep only the write end. _exit skips static destructors and
    // stream flushing on purpose — this process shares every inherited file
    // with the parent. SIGPIPE is ignored so a write after the parent died
    // surfaces as an EPIPE Status the child can act on, not a silent kill.
    ::close(fds[0]);
    ::signal(SIGPIPE, SIG_IGN);
    const int code = child_main(fds[1]);
    ::_exit(code);
  }
  // Parent: keep only the read end, non-blocking so the coordinator's event
  // loop can drain many children without ever stalling on one.
  ::close(fds[1]);
  const int fl = ::fcntl(fds[0], F_GETFL);
  if (fl < 0 || ::fcntl(fds[0], F_SETFL, fl | O_NONBLOCK) < 0) {
    const Status status = ErrnoStatus("Subprocess::Spawn: fcntl");
    ::close(fds[0]);
    ::kill(pid, SIGKILL);
    int wstatus = 0;
    while (::waitpid(pid, &wstatus, 0) < 0 && errno == EINTR) {
    }
    return status;
  }
  return Subprocess(static_cast<int64_t>(pid), fds[0]);
}

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(std::exchange(other.pid_, -1)),
      read_fd_(std::exchange(other.read_fd_, -1)),
      reaped_(std::exchange(other.reaped_, true)) {}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this != &other) {
    this->~Subprocess();
    pid_ = std::exchange(other.pid_, -1);
    read_fd_ = std::exchange(other.read_fd_, -1);
    reaped_ = std::exchange(other.reaped_, true);
  }
  return *this;
}

Subprocess::~Subprocess() {
  if (pid_ > 0 && !reaped_) {
    // Best effort: no Status to return from a destructor, but a leaked
    // zombie (or a child outliving the coordinator) is strictly worse than
    // an ignored kill error.
    ::kill(static_cast<pid_t>(pid_), SIGKILL);
    int wstatus = 0;
    while (::waitpid(static_cast<pid_t>(pid_), &wstatus, 0) < 0 &&
           errno == EINTR) {
    }
    reaped_ = true;
  }
  if (read_fd_ >= 0) {
    ::close(read_fd_);
    read_fd_ = -1;
  }
}

Result<PipeRead> Subprocess::ReadAvailable(std::string* buffer) {
  if (read_fd_ < 0) {
    return Status::FailedPrecondition("Subprocess::ReadAvailable: pipe closed");
  }
  PipeRead result;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::read(read_fd_, chunk, sizeof(chunk));
    if (n > 0) {
      buffer->append(chunk, static_cast<size_t>(n));
      result.bytes += n;
      continue;
    }
    if (n == 0) {
      result.eof = true;
      return result;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return result;
    return ErrnoStatus("Subprocess::ReadAvailable: read");
  }
}

Result<ProcessStatus> Subprocess::Poll() {
  if (reaped_) {
    // Termination is observed at most once (waitpid consumes it); callers
    // that poll again after reaping should not see "running".
    return Status::FailedPrecondition("Subprocess::Poll: already reaped");
  }
  int wstatus = 0;
  pid_t got = 0;
  do {
    got = ::waitpid(static_cast<pid_t>(pid_), &wstatus, WNOHANG);
  } while (got < 0 && errno == EINTR);
  if (got < 0) return ErrnoStatus("Subprocess::Poll: waitpid");
  if (got == 0) return ProcessStatus{};  // Still running.
  reaped_ = true;
  return DecodeWaitStatus(wstatus);
}

Result<ProcessStatus> Subprocess::Wait() {
  if (reaped_) {
    return Status::FailedPrecondition("Subprocess::Wait: already reaped");
  }
  int wstatus = 0;
  pid_t got = 0;
  do {
    got = ::waitpid(static_cast<pid_t>(pid_), &wstatus, 0);
  } while (got < 0 && errno == EINTR);
  if (got < 0) return ErrnoStatus("Subprocess::Wait: waitpid");
  reaped_ = true;
  return DecodeWaitStatus(wstatus);
}

Status Subprocess::Kill() {
  if (pid_ <= 0 || reaped_) return Status::OK();
  if (::kill(static_cast<pid_t>(pid_), SIGKILL) != 0 && errno != ESRCH) {
    return ErrnoStatus("Subprocess::Kill: kill");
  }
  return Status::OK();
}

Result<std::vector<size_t>> PollReadable(const std::vector<int>& fds,
                                         double timeout_seconds) {
  const double clamped = timeout_seconds < 0.0 ? 0.0 : timeout_seconds;
  const int timeout_ms =
      static_cast<int>(std::ceil(std::min(clamped, 3600.0) * 1e3));
  std::vector<struct pollfd> entries;
  entries.reserve(fds.size());
  for (int fd : fds) {
    entries.push_back({fd, POLLIN, 0});
  }
  int ready = 0;
  do {
    // poll with zero descriptors is a plain bounded sleep — used while every
    // shard sits in retry backoff.
    ready = ::poll(entries.empty() ? nullptr : entries.data(),
                   static_cast<nfds_t>(entries.size()), timeout_ms);
  } while (ready < 0 && errno == EINTR);
  if (ready < 0) return ErrnoStatus("PollReadable: poll");
  std::vector<size_t> readable;
  for (size_t i = 0; i < entries.size(); ++i) {
    // POLLHUP/POLLERR count as readable: the next ReadAvailable turns them
    // into a clean EOF or error instead of this call guessing.
    if ((entries[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      readable.push_back(i);
    }
  }
  return readable;
}

Status WriteAllToFd(int fd, const std::string& data) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n >= 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("WriteAllToFd: write");
  }
  return Status::OK();
}

}  // namespace sose
