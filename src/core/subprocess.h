#ifndef SOSE_CORE_SUBPROCESS_H_
#define SOSE_CORE_SUBPROCESS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/status.h"

namespace sose {

/// Status-returning wrapper around the POSIX process primitives (fork, pipe,
/// waitpid, kill). This header is the *only* sanctioned home for raw process
/// management in the tree: sose_lint rule R3 (`concurrency`) confines the
/// underlying syscalls to subprocess.cc the same way it confines raw
/// std::thread/std::mutex to src/core/parallel, so every spawn/wait/kill in
/// the library flows through one audited, error-propagating seam.
///
/// The model is deliberately narrow — it exists for the shard coordinator
/// (docs/robustness.md, "Crash-tolerant multi-process execution"):
///
///   * one child per Spawn, connected by a single child→parent byte pipe;
///   * the parent's end is non-blocking, drained with ReadAvailable and
///     multiplexed with PollReadable;
///   * children never outlive the wrapper: the destructor SIGKILLs and
///     reaps anything still running, so no exit path leaks a zombie.

/// How a child process stands at the last Poll()/Wait().
enum class ProcessState {
  kRunning,   ///< Not yet exited (or not yet reaped).
  kExited,    ///< Exited on its own; `exit_code` is valid.
  kSignaled,  ///< Terminated by a signal; `term_signal` is valid.
};

struct ProcessStatus {
  ProcessState state = ProcessState::kRunning;
  int exit_code = 0;     ///< Valid iff state == kExited.
  int term_signal = 0;   ///< Valid iff state == kSignaled.
};

/// What one non-blocking drain of the pipe produced.
struct PipeRead {
  int64_t bytes = 0;  ///< Bytes appended to the caller's buffer.
  bool eof = false;   ///< True once the child's write end is closed for good.
};

/// A forked child process plus the read end of its output pipe.
///
/// Movable, not copyable; the destructor kills and reaps a still-running
/// child (best effort) and closes the pipe, so RAII alone guarantees no
/// zombies and no leaked descriptors on any error path.
class Subprocess {
 public:
  /// Runs in the child after fork. Receives the write end of the pipe and
  /// returns the child's exit code. The child terminates with _exit (no
  /// static destructors, no stream flushing) so inherited buffered state is
  /// never replayed into shared files.
  using ChildMain = std::function<int(int write_fd)>;

  /// Forks a child running `child_main`. In the parent, returns the handle
  /// with a non-blocking read end of the child's pipe. Fails with kInternal
  /// when pipe creation or fork itself fails.
  [[nodiscard]] static Result<Subprocess> Spawn(const ChildMain& child_main);

  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;
  ~Subprocess();

  int64_t pid() const { return pid_; }
  /// The non-blocking read end of the child's pipe; -1 once closed.
  int read_fd() const { return read_fd_; }

  /// Appends whatever the pipe currently holds to `buffer` without blocking.
  /// eof becomes true once the child has exited (or closed its write end)
  /// and the pipe is fully drained.
  [[nodiscard]] Result<PipeRead> ReadAvailable(std::string* buffer);

  /// Non-blocking status check; reaps the child if it has terminated.
  [[nodiscard]] Result<ProcessStatus> Poll();

  /// Blocks until the child terminates, then reaps it.
  [[nodiscard]] Result<ProcessStatus> Wait();

  /// Sends SIGKILL. Idempotent: OK when the child is already dead or
  /// reaped. The caller still needs Wait()/Poll() to reap.
  [[nodiscard]] Status Kill();

  /// True once the child has been reaped (Poll/Wait observed termination).
  bool reaped() const { return reaped_; }

 private:
  Subprocess(int64_t pid, int read_fd) : pid_(pid), read_fd_(read_fd) {}

  int64_t pid_ = -1;
  int read_fd_ = -1;
  bool reaped_ = false;
};

/// Waits up to `timeout_seconds` for any of `fds` to become readable (data,
/// EOF, or error all count — the caller's next ReadAvailable disambiguates)
/// and returns the indices into `fds` that are ready. An empty result means
/// the timeout elapsed. An empty `fds` vector is a pure bounded sleep —
/// the coordinator uses it while every shard is in retry backoff.
[[nodiscard]] Result<std::vector<size_t>> PollReadable(
    const std::vector<int>& fds, double timeout_seconds);

/// Writes all of `data` to `fd`, looping over partial writes and EINTR.
/// Fails with kInternal when the descriptor is closed on the far side (the
/// coordinator died); a shard worker treats that as fatal and exits.
[[nodiscard]] Status WriteAllToFd(int fd, const std::string& data);

}  // namespace sose

#endif  // SOSE_CORE_SUBPROCESS_H_
