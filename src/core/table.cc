#include "core/table.h"

#include <algorithm>
#include <cstdio>

#include "core/check.h"

namespace sose {

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
  return buffer;
}

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SOSE_CHECK(!headers_.empty());
}

void AsciiTable::NewRow() { rows_.emplace_back(); }

void AsciiTable::AddCell(std::string value) {
  SOSE_CHECK(!rows_.empty());
  SOSE_CHECK(rows_.back().size() < headers_.size());
  rows_.back().push_back(std::move(value));
}

void AsciiTable::AddDouble(double value, int precision) {
  AddCell(FormatDouble(value, precision));
}

void AsciiTable::AddInt(int64_t value) { AddCell(std::to_string(value)); }

void AsciiTable::AddProbability(double p, double lo, double hi) {
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), "%.4f [%.4f, %.4f]", p, lo, hi);
  AddCell(buffer);
}

std::string AsciiTable::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t j = 0; j < headers_.size(); ++j) widths[j] = headers_[j].size();
  for (const auto& row : rows_) {
    for (size_t j = 0; j < row.size(); ++j) {
      widths[j] = std::max(widths[j], row[j].size());
    }
  }
  auto render_row = [&widths](const std::vector<std::string>& cells) {
    std::string line = "| ";
    for (size_t j = 0; j < widths.size(); ++j) {
      const std::string& cell = j < cells.size() ? cells[j] : std::string();
      line += cell;
      line.append(widths[j] - cell.size(), ' ');
      line += " | ";
    }
    line.pop_back();  // Trailing space.
    line += "\n";
    return line;
  };
  std::string out = render_row(headers_);
  std::string rule = "|";
  for (size_t width : widths) rule += std::string(width + 2, '-') + "|";
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void AsciiTable::Print(std::ostream& os) const { os << ToString(); }

}  // namespace sose
