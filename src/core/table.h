#ifndef SOSE_CORE_TABLE_H_
#define SOSE_CORE_TABLE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace sose {

/// Fixed-column ASCII table used by every experiment binary to print
/// paper-style result tables. Cells are strings; numeric helpers format with
/// a consistent precision so tables across experiments look alike.
class AsciiTable {
 public:
  /// Creates a table with the given column headers.
  explicit AsciiTable(std::vector<std::string> headers);

  /// Starts a new row; subsequent Add* calls fill it left to right.
  void NewRow();

  /// Appends a string cell to the current row.
  void AddCell(std::string value);

  /// Appends a formatted double (`%.*g`).
  void AddDouble(double value, int precision = 4);

  /// Appends an integer.
  void AddInt(int64_t value);

  /// Appends a probability with a Wilson-style "p [lo, hi]" rendering.
  void AddProbability(double p, double lo, double hi);

  /// Number of data rows so far.
  int64_t num_rows() const { return static_cast<int64_t>(rows_.size()); }

  /// Renders with aligned columns, a header rule, and outer padding.
  std::string ToString() const;

  /// Convenience: streams ToString().
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `%.*g`.
std::string FormatDouble(double value, int precision = 4);

}  // namespace sose

#endif  // SOSE_CORE_TABLE_H_
