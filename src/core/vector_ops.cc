#include "core/vector_ops.h"

#include <cmath>

#include "core/check.h"
#include "core/simd/dispatch.h"

namespace sose {

double Dot(const std::vector<double>& x, const std::vector<double>& y) {
  SOSE_CHECK(x.size() == y.size());
  double sum = 0.0;
  for (size_t i = 0; i < x.size(); ++i) sum += x[i] * y[i];
  return sum;
}

double Norm2(const std::vector<double>& x) { return std::sqrt(Norm2Squared(x)); }

double Norm2Squared(const std::vector<double>& x) {
  double sum = 0.0;
  for (double v : x) sum += v * v;
  return sum;
}

double NormInf(const std::vector<double>& x) {
  double best = 0.0;
  for (double v : x) best = std::max(best, std::fabs(v));
  return best;
}

void Axpy(double alpha, const std::vector<double>& x, std::vector<double>* y) {
  SOSE_CHECK(y != nullptr && x.size() == y->size());
  simd::Axpy(alpha, x.data(), y->data(), static_cast<int64_t>(x.size()));
}

void ScaleVec(double alpha, std::vector<double>* x) {
  SOSE_CHECK(x != nullptr);
  simd::Scale(alpha, x->data(), static_cast<int64_t>(x->size()));
}

void Normalize(std::vector<double>* x) {
  SOSE_CHECK(x != nullptr);
  const double norm = Norm2(*x);
  if (norm > 0.0) ScaleVec(1.0 / norm, x);
}

std::vector<double> Subtract(const std::vector<double>& x,
                             const std::vector<double>& y) {
  SOSE_CHECK(x.size() == y.size());
  std::vector<double> out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = x[i] - y[i];
  return out;
}

}  // namespace sose
