#ifndef SOSE_CORE_VECTOR_OPS_H_
#define SOSE_CORE_VECTOR_OPS_H_

#include <vector>

namespace sose {

/// Euclidean inner product; sizes must agree.
double Dot(const std::vector<double>& x, const std::vector<double>& y);

/// Euclidean (l2) norm.
double Norm2(const std::vector<double>& x);

/// Squared Euclidean norm.
double Norm2Squared(const std::vector<double>& x);

/// l-infinity norm.
double NormInf(const std::vector<double>& x);

/// y += alpha * x; sizes must agree.
void Axpy(double alpha, const std::vector<double>& x, std::vector<double>* y);

/// x *= alpha.
void ScaleVec(double alpha, std::vector<double>* x);

/// Scales x to unit l2 norm. A zero vector is left unchanged.
void Normalize(std::vector<double>* x);

/// Entrywise difference x - y.
std::vector<double> Subtract(const std::vector<double>& x,
                             const std::vector<double>& y);

}  // namespace sose

#endif  // SOSE_CORE_VECTOR_OPS_H_
