#include "hardinstance/d_beta.h"

namespace sose {

Result<DBetaSampler> DBetaSampler::Create(int64_t n, int64_t d,
                                          int64_t entries_per_col) {
  if (d <= 0 || entries_per_col <= 0) {
    return Status::InvalidArgument(
        "DBetaSampler: d and entries_per_col must be positive");
  }
  if (n < d * entries_per_col) {
    return Status::InvalidArgument(
        "DBetaSampler: need n >= d * entries_per_col (= d/beta)");
  }
  return DBetaSampler(n, d, entries_per_col);
}

HardInstance DBetaSampler::Sample(Rng* rng) const {
  SOSE_CHECK(rng != nullptr);
  HardInstance instance;
  instance.n = n_;
  instance.d = d_;
  instance.entries_per_col = entries_per_col_;
  instance.beta = beta();
  const int64_t k = d_ * entries_per_col_;
  instance.rows.resize(static_cast<size_t>(k));
  instance.signs.resize(static_cast<size_t>(k));
  for (int64_t j = 0; j < k; ++j) {
    instance.rows[static_cast<size_t>(j)] =
        static_cast<int64_t>(rng->UniformInt(static_cast<uint64_t>(n_)));
    instance.signs[static_cast<size_t>(j)] = rng->Rademacher();
  }
  return instance;
}

double DBetaSampler::CollisionProbabilityUpperBound() const {
  const double k = static_cast<double>(d_ * entries_per_col_);
  return k * (k - 1.0) / (2.0 * static_cast<double>(n_));
}

}  // namespace sose
