#ifndef SOSE_HARDINSTANCE_D_BETA_H_
#define SOSE_HARDINSTANCE_D_BETA_H_

#include <cstdint>

#include "core/random.h"
#include "core/status.h"
#include "hardinstance/hard_instance.h"

namespace sose {

/// Sampler for the paper's Definition 2 distribution D_β over n x d
/// matrices U = VW: V has d/β i.i.d. columns, each a uniformly random
/// canonical basis vector of R^n, and W stacks scaled Rademacher blocks so
/// that each column of U has 1/β entries of value ±√β.
///
/// β is specified via the integer `entries_per_col` = 1/β, so that the
/// block structure is exact (the paper implicitly assumes 1/β ∈ N).
/// D₁ (entries_per_col = 1) is the s-free hard instance of Theorem 9;
/// D_{8ε} (entries_per_col = 1/(8ε)) drives the s = 1 bound of Theorem 8.
class DBetaSampler {
 public:
  /// Creates a sampler. Fails unless n >= d * entries_per_col >= 1.
  [[nodiscard]] static Result<DBetaSampler> Create(int64_t n, int64_t d,
                                                   int64_t entries_per_col);

  /// Draws one U ~ D_β using the caller's generator.
  HardInstance Sample(Rng* rng) const;

  int64_t n() const { return n_; }
  int64_t d() const { return d_; }
  int64_t entries_per_col() const { return entries_per_col_; }
  double beta() const { return 1.0 / static_cast<double>(entries_per_col_); }

  /// Upper bound on Pr[event B] = Pr[V has two identical columns]: the
  /// birthday bound k(k-1)/(2n) with k = d/β. The paper requires this to be
  /// a negligible fraction of δ, which the experiment harness asserts.
  double CollisionProbabilityUpperBound() const;

 private:
  DBetaSampler(int64_t n, int64_t d, int64_t entries_per_col)
      : n_(n), d_(d), entries_per_col_(entries_per_col) {}

  int64_t n_;
  int64_t d_;
  int64_t entries_per_col_;
};

}  // namespace sose

#endif  // SOSE_HARDINSTANCE_D_BETA_H_
