#include "hardinstance/hard_instance.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "core/check.h"

namespace sose {

bool HardInstance::HasRowCollision() const {
  std::unordered_set<int64_t> seen;
  seen.reserve(rows.size() * 2);
  for (int64_t row : rows) {
    if (!seen.insert(row).second) return true;
  }
  return false;
}

CscMatrix HardInstance::ToCsc() const {
  SOSE_CHECK(static_cast<int64_t>(rows.size()) == d * entries_per_col);
  SOSE_CHECK(rows.size() == signs.size());
  const double magnitude = std::sqrt(beta);
  std::vector<int64_t> col_ptr(static_cast<size_t>(d) + 1, 0);
  std::vector<int64_t> row_idx;
  std::vector<double> values;
  row_idx.reserve(rows.size());
  values.reserve(rows.size());
  std::vector<std::pair<int64_t, double>> column;
  for (int64_t i = 0; i < d; ++i) {
    column.clear();
    for (int64_t j = i * entries_per_col; j < (i + 1) * entries_per_col; ++j) {
      column.emplace_back(rows[static_cast<size_t>(j)],
                          magnitude * signs[static_cast<size_t>(j)]);
    }
    std::sort(column.begin(), column.end());
    // Sum duplicates (two generators of the same column on the same row).
    for (size_t p = 0; p < column.size(); ++p) {
      if (!row_idx.empty() &&
          static_cast<int64_t>(values.size()) > col_ptr[static_cast<size_t>(i)] &&
          row_idx.back() == column[p].first) {
        values.back() += column[p].second;
      } else {
        row_idx.push_back(column[p].first);
        values.push_back(column[p].second);
      }
    }
    // Drop entries that cancelled to zero within this column.
    size_t write = static_cast<size_t>(col_ptr[static_cast<size_t>(i)]);
    for (size_t p = write; p < values.size(); ++p) {
      if (values[p] != 0.0) {
        values[write] = values[p];
        row_idx[write] = row_idx[p];
        ++write;
      }
    }
    values.resize(write);
    row_idx.resize(write);
    col_ptr[static_cast<size_t>(i) + 1] = static_cast<int64_t>(write);
  }
  return CscMatrix(n, d, std::move(col_ptr), std::move(row_idx),
                   std::move(values));
}

Matrix HardInstance::GramU() const {
  // Group generators by row; two columns overlap only through shared rows.
  Matrix gram(d, d);
  std::unordered_map<int64_t, std::vector<std::pair<int64_t, double>>> by_row;
  by_row.reserve(rows.size() * 2);
  for (int64_t j = 0; j < NumGenerators(); ++j) {
    const int64_t column = j / entries_per_col;
    by_row[rows[static_cast<size_t>(j)]].emplace_back(
        column, std::sqrt(beta) * signs[static_cast<size_t>(j)]);
  }
  for (const auto& [row, contributions] : by_row) {
    (void)row;
    // Sum contributions per column first (duplicates within a column).
    std::unordered_map<int64_t, double> per_column;
    for (const auto& [column, value] : contributions) {
      per_column[column] += value;
    }
    for (const auto& [ci, vi] : per_column) {
      for (const auto& [cj, vj] : per_column) {
        gram.At(ci, cj) += vi * vj;
      }
    }
  }
  return gram;
}

std::vector<int64_t> HardInstance::TouchedRows() const {
  std::vector<int64_t> out = rows;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace sose
