#ifndef SOSE_HARDINSTANCE_HARD_INSTANCE_H_
#define SOSE_HARDINSTANCE_HARD_INSTANCE_H_

#include <cstdint>
#include <vector>

#include "core/matrix.h"
#include "core/sparse.h"

namespace sose {

/// A sample U = VW from the paper's Definition 2 distribution D_β,
/// represented exactly but sparsely.
///
/// U ∈ R^{n x d} has d columns; column i is √β · Σ_{j ∈ block i} σ_j e_{C_j}
/// where block i holds the 1/β consecutive indices j ∈ ((i-1)/β, i/β],
/// C_j ∈ [n] is the row chosen by the j-th column of V, and σ_j ∈ {±1}.
/// Only the k = d/β pairs (C_j, σ_j) are stored, so n can be as large as the
/// paper's n = Ω(d²/(β²δ)) regime demands without any n-sized allocation.
struct HardInstance {
  int64_t n = 0;           ///< Ambient dimension (rows of U).
  int64_t d = 0;           ///< Subspace dimension (columns of U).
  int64_t entries_per_col = 1;  ///< 1/β, the number of V-columns per block.
  double beta = 1.0;       ///< The distribution parameter β ∈ (0, 1].

  /// Row indices C_1..C_k (k = d · entries_per_col), grouped by column:
  /// entries j ∈ [i·epc, (i+1)·epc) belong to U's column i.
  std::vector<int64_t> rows;
  /// Rademacher signs σ_1..σ_k, aligned with `rows`.
  std::vector<double> signs;

  /// Number of stored generators k = d / β.
  int64_t NumGenerators() const { return static_cast<int64_t>(rows.size()); }

  /// True iff two generators landed on the same row of [n] — the paper's
  /// event B (under which U may fail to be an isometry).
  bool HasRowCollision() const;

  /// The exact sparse form of U (duplicated rows within a column are
  /// summed). No n-sized allocation: CSC stores only the nonzeros.
  CscMatrix ToCsc() const;

  /// The d x d Gram matrix UᵀU, computed from the sparse representation.
  /// Equals the identity whenever there is no row collision.
  Matrix GramU() const;

  /// The distinct rows of [n] touched by U, sorted.
  std::vector<int64_t> TouchedRows() const;
};

}  // namespace sose

#endif  // SOSE_HARDINSTANCE_HARD_INSTANCE_H_
