#include "hardinstance/mixtures.h"

#include <cmath>

namespace sose {

Result<SectionThreeMixture> SectionThreeMixture::Create(int64_t n, int64_t d,
                                                        double epsilon) {
  if (epsilon <= 0.0 || epsilon >= 0.125) {
    return Status::InvalidArgument(
        "SectionThreeMixture: epsilon must lie in (0, 1/8)");
  }
  const int64_t entries_per_col =
      std::max<int64_t>(1, static_cast<int64_t>(std::llround(1.0 / (8.0 * epsilon))));
  SOSE_ASSIGN_OR_RETURN(DBetaSampler d1, DBetaSampler::Create(n, d, 1));
  SOSE_ASSIGN_OR_RETURN(DBetaSampler d8eps,
                        DBetaSampler::Create(n, d, entries_per_col));
  return SectionThreeMixture(d1, d8eps);
}

HardInstance SectionThreeMixture::Sample(Rng* rng, bool* picked_dense) const {
  SOSE_CHECK(rng != nullptr);
  const bool dense = rng->Bernoulli(0.5);
  if (picked_dense != nullptr) *picked_dense = dense;
  return dense ? d8eps_.Sample(rng) : d1_.Sample(rng);
}

Result<SectionFiveMixture> SectionFiveMixture::Create(int64_t n, int64_t d,
                                                      double epsilon) {
  if (epsilon <= 0.0 || epsilon >= 1.0) {
    return Status::InvalidArgument(
        "SectionFiveMixture: epsilon must lie in (0, 1)");
  }
  const int64_t num_levels =
      static_cast<int64_t>(std::floor(std::log2(1.0 / epsilon))) - 3;
  if (num_levels < 1) {
    return Status::InvalidArgument(
        "SectionFiveMixture: epsilon too large; need log2(1/eps) - 3 >= 1");
  }
  SOSE_ASSIGN_OR_RETURN(DBetaSampler d1, DBetaSampler::Create(n, d, 1));
  std::vector<DBetaSampler> levels;
  levels.reserve(static_cast<size_t>(num_levels));
  for (int64_t level = 1; level <= num_levels; ++level) {
    SOSE_ASSIGN_OR_RETURN(DBetaSampler sampler,
                          DBetaSampler::Create(n, d, int64_t{1} << level));
    levels.push_back(sampler);
  }
  return SectionFiveMixture(d1, std::move(levels));
}

HardInstance SectionFiveMixture::Sample(Rng* rng, int64_t* picked_level) const {
  SOSE_CHECK(rng != nullptr);
  if (rng->Bernoulli(0.5)) {
    if (picked_level != nullptr) *picked_level = 0;
    return d1_.Sample(rng);
  }
  const int64_t level =
      1 + static_cast<int64_t>(rng->UniformInt(static_cast<uint64_t>(levels_.size())));
  if (picked_level != nullptr) *picked_level = level;
  return levels_[static_cast<size_t>(level - 1)].Sample(rng);
}

const DBetaSampler& SectionFiveMixture::LevelSampler(int64_t level) const {
  SOSE_CHECK(level >= 0 && level <= num_levels());
  return level == 0 ? d1_ : levels_[static_cast<size_t>(level - 1)];
}

}  // namespace sose
