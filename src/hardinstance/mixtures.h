#ifndef SOSE_HARDINSTANCE_MIXTURES_H_
#define SOSE_HARDINSTANCE_MIXTURES_H_

#include <cstdint>
#include <vector>

#include "core/random.h"
#include "core/status.h"
#include "hardinstance/d_beta.h"
#include "hardinstance/hard_instance.h"

namespace sose {

/// The Section 3 hard distribution D for the s = 1 lower bound:
/// with probability 1/2 draw U ~ D₁, otherwise U ~ D_{8ε}
/// (entries_per_col = round(1/(8ε))).
///
/// An (ε, δ)-OSE must succeed on the mixture, which forces it to both
/// preserve the norms of D₁'s isolated coordinates (Lemma 6) and keep
/// D_{8ε}'s d/(16ε) heavy coordinates collision-free (Lemma 7) — the
/// birthday paradox then yields m = Ω(d²/(ε²δ)).
class SectionThreeMixture {
 public:
  /// Creates the mixture for the given shape and ε ∈ (0, 1/8).
  [[nodiscard]] static Result<SectionThreeMixture> Create(int64_t n, int64_t d,
                                                          double epsilon);

  /// Draws one instance; `*picked_dense` (optional) reports whether the
  /// D_{8ε} component was chosen.
  HardInstance Sample(Rng* rng, bool* picked_dense = nullptr) const;

  const DBetaSampler& d1() const { return d1_; }
  const DBetaSampler& d8eps() const { return d8eps_; }

 private:
  SectionThreeMixture(DBetaSampler d1, DBetaSampler d8eps)
      : d1_(d1), d8eps_(d8eps) {}

  DBetaSampler d1_;
  DBetaSampler d8eps_;
};

/// The Section 5 hard distribution D̃ for the s ≤ 1/(9ε) lower bound:
/// with probability 1/2 draw U ~ D₁, otherwise draw ℓ ~ Unif{1..L} with
/// L = log₂(1/ε) − 3 and U ~ D_{2^{-ℓ}}.
///
/// The level structure is what removes the "abundance assumption": a sketch
/// must embed every heaviness level simultaneously, so at every scale
/// √(2^{-ℓ}) it cannot carry too many heavy entries (Lemma 19).
class SectionFiveMixture {
 public:
  /// Creates the mixture for the given shape and ε small enough that
  /// L = floor(log₂(1/ε)) − 3 >= 1.
  [[nodiscard]] static Result<SectionFiveMixture> Create(int64_t n, int64_t d,
                                                         double epsilon);

  /// Draws one instance; `*picked_level` (optional) reports the level:
  /// 0 for the D₁ component, otherwise the drawn ℓ ∈ [1, L].
  HardInstance Sample(Rng* rng, int64_t* picked_level = nullptr) const;

  /// The number of levels L.
  int64_t num_levels() const {
    return static_cast<int64_t>(levels_.size());
  }

  /// The sampler for level ℓ ∈ [0, L] (level 0 is D₁).
  const DBetaSampler& LevelSampler(int64_t level) const;

 private:
  SectionFiveMixture(DBetaSampler d1, std::vector<DBetaSampler> levels)
      : d1_(d1), levels_(std::move(levels)) {}

  DBetaSampler d1_;
  std::vector<DBetaSampler> levels_;  // levels_[l-1] samples D_{2^{-l}}.
};

}  // namespace sose

#endif  // SOSE_HARDINSTANCE_MIXTURES_H_
