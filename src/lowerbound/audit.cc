#include "lowerbound/audit.h"

#include <cmath>
#include <cstdio>

#include "core/random.h"
#include "hardinstance/d_beta.h"
#include "ose/distortion.h"

namespace sose {

const char* AuditVerdictToString(AuditVerdict verdict) {
  switch (verdict) {
    case AuditVerdict::kViolationCertified:
      return "violation-certified";
    case AuditVerdict::kSuspect:
      return "suspect";
    case AuditVerdict::kPassed:
      return "passed";
  }
  return "unknown";
}

Result<AuditReport> AuditSketch(const SketchingMatrix& sketch,
                                const AuditParams& params) {
  if (params.d <= 0 || params.num_instances <= 0 || params.anti_trials <= 0) {
    return Status::InvalidArgument("AuditSketch: non-positive parameter");
  }
  if (params.epsilon <= 0.0 || params.epsilon >= 1.0 || params.delta <= 0.0 ||
      params.delta >= 1.0) {
    return Status::InvalidArgument(
        "AuditSketch: epsilon and delta must be in (0, 1)");
  }
  if (sketch.cols() < params.d) {
    return Status::InvalidArgument(
        "AuditSketch: sketch has fewer columns than the attacked dimension");
  }
  SOSE_ASSIGN_OR_RETURN(DBetaSampler sampler,
                        DBetaSampler::Create(sketch.cols(), params.d, 1));

  AuditReport report;
  Rng rng(DeriveSeed(params.seed, 0));
  double worst_witness_abs = 0.0;
  RunningStats epsilons;
  for (int64_t t = 0; t < params.num_instances; ++t) {
    HardInstance instance = sampler.Sample(&rng);
    int64_t redraws = 0;
    while (instance.HasRowCollision() && redraws < 64) {
      instance = sampler.Sample(&rng);
      ++redraws;
    }
    if (instance.HasRowCollision()) {
      return Status::FailedPrecondition(
          "AuditSketch: persistent row collisions; sketch.cols() too small "
          "relative to d");
    }
    SOSE_ASSIGN_OR_RETURN(DistortionReport distortion,
                          SketchDistortionOnInstance(sketch, instance));
    epsilons.Add(distortion.Epsilon());
    ++report.instances_tested;
    if (distortion.WithinEpsilon(params.epsilon)) continue;
    ++report.violations_observed;
    // Look for the strongest Lemma 4 witness on this failing draw.
    SOSE_ASSIGN_OR_RETURN(
        std::optional<ViolationWitness> witness,
        FindLargeInnerProductPair(sketch, instance,
                                  /*threshold=*/2.5 * params.epsilon));
    if (witness.has_value() &&
        std::fabs(witness->inner_product) > worst_witness_abs) {
      worst_witness_abs = std::fabs(witness->inner_product);
      report.witness = witness;
      SOSE_ASSIGN_OR_RETURN(
          report.anti_concentration,
          VerifyAntiConcentration(sketch, instance, *witness, params.epsilon,
                                  params.anti_trials,
                                  DeriveSeed(params.seed, 1 + static_cast<uint64_t>(t))));
    }
  }
  report.failure_rate = static_cast<double>(report.violations_observed) /
                        static_cast<double>(report.instances_tested);
  report.failure_interval =
      WilsonInterval(report.violations_observed, report.instances_tested);
  report.mean_epsilon = epsilons.Mean();
  report.worst_epsilon = epsilons.Max();

  if (report.failure_interval.lo > params.delta) {
    report.verdict = AuditVerdict::kViolationCertified;
  } else if (report.failure_rate > params.delta) {
    report.verdict = AuditVerdict::kSuspect;
  } else {
    report.verdict = AuditVerdict::kPassed;
  }

  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "%s: failure rate %.3f [%.3f, %.3f] vs delta %.3f over %lld "
      "D_1 instances (d=%lld, eps=%.3g); mean/worst distortion %.3g/%.3g%s",
      AuditVerdictToString(report.verdict), report.failure_rate,
      report.failure_interval.lo, report.failure_interval.hi, params.delta,
      static_cast<long long>(report.instances_tested),
      static_cast<long long>(params.d), params.epsilon, report.mean_epsilon,
      report.worst_epsilon,
      report.witness.has_value()
          ? "; Lemma 4 witness attached with measured anti-concentration"
          : "");
  report.summary = buffer;
  return report;
}

}  // namespace sose
