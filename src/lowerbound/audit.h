#ifndef SOSE_LOWERBOUND_AUDIT_H_
#define SOSE_LOWERBOUND_AUDIT_H_

#include <cstdint>
#include <optional>
#include <string>

#include "core/stats.h"
#include "core/status.h"
#include "lowerbound/witness.h"
#include "sketch/sketch.h"

namespace sose {

/// Parameters of a lower-bound audit: "would this sketch survive the
/// paper's attack as an (ε, δ)-OSE for d-dimensional subspaces?"
struct AuditParams {
  int64_t d = 8;             ///< Subspace dimension attacked.
  double epsilon = 0.1;      ///< Target distortion.
  double delta = 0.1;        ///< Target failure probability.
  int64_t num_instances = 100;  ///< Hard-instance draws for the estimate.
  int64_t anti_trials = 4000;   ///< Sign resamplings for Lemma 4 evidence.
  uint64_t seed = 0;
};

/// The audit's decision.
enum class AuditVerdict {
  /// Measured failure rate's Wilson lower bound exceeds δ: the sketch is
  /// certifiably NOT an (ε, δ)-embedding for the hard distribution, and a
  /// concrete Lemma 4 witness is attached when one exists.
  kViolationCertified,
  /// Point estimate exceeds δ but the confidence interval straddles it.
  kSuspect,
  /// No statistical evidence against the sketch at these parameters.
  kPassed,
};

/// Returns a short lowercase label for a verdict ("violation-certified",
/// "suspect", "passed").
const char* AuditVerdictToString(AuditVerdict verdict);

/// Everything the audit learned.
struct AuditReport {
  AuditVerdict verdict = AuditVerdict::kPassed;
  /// Failure statistics over the D₁ hard instances.
  int64_t instances_tested = 0;
  int64_t violations_observed = 0;
  double failure_rate = 0.0;
  ConfidenceInterval failure_interval;
  /// Distortion diagnostics across instances.
  double mean_epsilon = 0.0;
  double worst_epsilon = 0.0;
  /// The strongest Lemma 4 witness found on a failing instance, if any,
  /// with its measured anti-concentration.
  std::optional<ViolationWitness> witness;
  AntiConcentrationReport anti_concentration;
  /// Human-readable one-paragraph summary.
  std::string summary;
};

/// Runs the paper's attack against an arbitrary sketch: draws hard
/// instances U ~ D₁, measures the subspace distortion of ΠU, locates
/// large-inner-product column pairs (the Lemma 4 precondition) on failing
/// draws, and verifies the induced anti-concentration. The sketch's own
/// column sparsity determines nothing here — the attack applies to any
/// oblivious Π, exactly as the lower bounds do.
[[nodiscard]] Result<AuditReport> AuditSketch(const SketchingMatrix& sketch,
                                              const AuditParams& params);

}  // namespace sose

#endif  // SOSE_LOWERBOUND_AUDIT_H_
