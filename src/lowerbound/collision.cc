#include "lowerbound/collision.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

namespace sose {

BirthdayStats CountSketchBirthday(const CountSketch& sketch,
                                  const HardInstance& instance) {
  BirthdayStats stats;
  stats.bins = sketch.rows();
  std::unordered_map<int64_t, int64_t> load;
  const std::vector<int64_t> touched = instance.TouchedRows();
  stats.balls = static_cast<int64_t>(touched.size());
  for (int64_t coordinate : touched) {
    ++load[sketch.Bucket(coordinate)];
  }
  for (const auto& [bucket, count] : load) {
    (void)bucket;
    stats.max_load = std::max(stats.max_load, count);
    stats.collisions += count * (count - 1) / 2;
  }
  stats.any_collision = stats.collisions > 0;
  return stats;
}

double BirthdayCollisionProbability(int64_t balls, int64_t bins) {
  SOSE_CHECK(balls >= 0 && bins >= 1);
  if (balls > bins) return 1.0;
  double no_collision = 1.0;
  for (int64_t i = 1; i < balls; ++i) {
    no_collision *= 1.0 - static_cast<double>(i) / static_cast<double>(bins);
  }
  return 1.0 - no_collision;
}

Result<CollidingPairStats> ComputeCollidingPairStats(
    const SketchColumnIndex& index, const std::vector<int64_t>& columns,
    double inner_threshold) {
  // Restrict to good columns among the provided set (deduplicated).
  std::set<int64_t> good_set;
  for (int64_t c : columns) {
    if (c < 0 || c >= index.num_columns()) {
      return Status::OutOfRange("ComputeCollidingPairStats: column index");
    }
    if (index.IsGood(c)) good_set.insert(c);
  }
  // Find unordered colliding pairs via the shared-heavy-row structure:
  // two columns collide iff some heavy row contains both.
  std::map<std::pair<int64_t, int64_t>, int64_t> shared_counts;
  {
    // row -> columns of our set heavy at that row.
    std::unordered_map<int64_t, std::vector<int64_t>> row_members;
    for (int64_t c : good_set) {
      for (int64_t l : index.HeavyRows(c)) row_members[l].push_back(c);
    }
    for (const auto& [row, members] : row_members) {
      (void)row;
      for (size_t i = 0; i < members.size(); ++i) {
        for (size_t j = i + 1; j < members.size(); ++j) {
          ++shared_counts[{members[i], members[j]}];
        }
      }
    }
  }
  CollidingPairStats stats;
  stats.num_colliding_pairs = static_cast<int64_t>(shared_counts.size());
  if (shared_counts.empty()) {
    return stats;
  }
  int64_t max_shared = 0;
  for (const auto& [pair, shared] : shared_counts) {
    (void)pair;
    max_shared = std::max(max_shared, shared);
  }
  stats.q_by_shared.assign(static_cast<size_t>(max_shared) + 1, 0.0);
  stats.p_by_shared.assign(static_cast<size_t>(max_shared) + 1, 0.0);
  double total_shared = 0.0;
  for (const auto& [pair, shared] : shared_counts) {
    total_shared += static_cast<double>(shared);
    stats.q_by_shared[static_cast<size_t>(shared)] += 1.0;
    const double dot = index.ColumnDot(pair.first, pair.second);
    if (dot >= inner_threshold) {
      stats.p_by_shared[static_cast<size_t>(shared)] += 1.0;
      stats.p_hat += 1.0;
    }
  }
  const double denom = static_cast<double>(shared_counts.size());
  for (double& q : stats.q_by_shared) q /= denom;
  for (double& p : stats.p_by_shared) p /= denom;
  stats.p_hat /= denom;
  stats.delta = total_shared / denom;
  return stats;
}

}  // namespace sose
