#ifndef SOSE_LOWERBOUND_COLLISION_H_
#define SOSE_LOWERBOUND_COLLISION_H_

#include <cstdint>
#include <vector>

#include "core/random.h"
#include "core/status.h"
#include "hardinstance/hard_instance.h"
#include "lowerbound/column_index.h"
#include "sketch/count_sketch.h"

namespace sose {

/// Statistics of the balls-into-bins process behind Lemma 7 / Theorem 8:
/// the hard instance's k = d/(8ε) active coordinates are hashed by a
/// Count-Sketch into m buckets; a bucket receiving two coordinates is the
/// "collision" that breaks the embedding.
struct BirthdayStats {
  int64_t balls = 0;    ///< Active coordinates hashed.
  int64_t bins = 0;     ///< Sketch rows m.
  int64_t collisions = 0;  ///< Pairs sharing a bucket.
  bool any_collision = false;
  int64_t max_load = 0;
};

/// Hashes the instance's touched rows through the Count-Sketch's bucket
/// function and reports the collision pattern (the B_i > 1 event of
/// Lemma 7).
BirthdayStats CountSketchBirthday(const CountSketch& sketch,
                                  const HardInstance& instance);

/// Analytic birthday collision probability 1 − Π_{i<k}(1 − i/m):
/// Pr[some bucket receives >= 2 of k uniform balls in m bins].
double BirthdayCollisionProbability(int64_t balls, int64_t bins);

/// Aggregate statistics of colliding good-column pairs of a sketch under a
/// heaviness index — the quantities T, Δ, q_x, p_x, p̂ that drive
/// Lemmas 13–16 and Corollary 17.
struct CollidingPairStats {
  /// Number of ordered colliding pairs (i, j), i != j, both good
  /// (the paper's T without the diagonal).
  int64_t num_colliding_pairs = 0;
  /// Expected shared heavy rows of a uniformly random colliding pair
  /// (the paper's Δ).
  double delta = 0.0;
  /// q_x: fraction of colliding pairs sharing exactly x heavy rows
  /// (index 0 unused; x ranges 1..s).
  std::vector<double> q_by_shared;
  /// p_x: fraction of colliding pairs sharing exactly x heavy rows AND
  /// having inner product >= inner_threshold.
  std::vector<double> p_by_shared;
  /// p̂ = Σ_x p_x: probability a uniform colliding pair has a large inner
  /// product.
  double p_hat = 0.0;
};

/// Enumerates colliding good-column pairs restricted to `columns` (typically
/// the columns chosen by V) and computes the statistics above.
/// `inner_threshold` is the paper's (8 − κ)ε. Pairs are unordered and
/// counted once. Cost O(Σ_l |G^l|²) over the heavy rows touched.
[[nodiscard]] Result<CollidingPairStats> ComputeCollidingPairStats(
    const SketchColumnIndex& index, const std::vector<int64_t>& columns,
    double inner_threshold);

}  // namespace sose

#endif  // SOSE_LOWERBOUND_COLLISION_H_
