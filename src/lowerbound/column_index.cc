#include "lowerbound/column_index.h"

#include <algorithm>
#include <cmath>

namespace sose {

Result<SketchColumnIndex> SketchColumnIndex::Build(
    const SketchingMatrix& sketch, int64_t num_columns,
    const HeavinessParams& params) {
  if (num_columns <= 0 || num_columns > sketch.cols()) {
    return Status::InvalidArgument(
        "SketchColumnIndex: num_columns out of range");
  }
  if (params.theta <= 0.0) {
    return Status::InvalidArgument("SketchColumnIndex: theta must be positive");
  }
  SketchColumnIndex index;
  index.num_rows_ = sketch.rows();
  index.num_columns_ = num_columns;
  index.params_ = params;
  index.heavy_rows_.resize(static_cast<size_t>(num_columns));
  index.norm_squared_.resize(static_cast<size_t>(num_columns), 0.0);
  index.is_good_.resize(static_cast<size_t>(num_columns), false);
  index.columns_.resize(static_cast<size_t>(num_columns));
  index.good_cols_of_row_.resize(static_cast<size_t>(index.num_rows_));

  const double norm_lo = 1.0 - params.norm_tolerance;
  const double norm_hi = 1.0 + params.norm_tolerance;
  for (int64_t c = 0; c < num_columns; ++c) {
    std::vector<ColumnEntry> entries = sketch.Column(c);
    double norm_sq = 0.0;
    std::vector<int64_t>& heavy = index.heavy_rows_[static_cast<size_t>(c)];
    for (const ColumnEntry& entry : entries) {
      norm_sq += entry.value * entry.value;
      if (std::fabs(entry.value) >= params.theta) heavy.push_back(entry.row);
    }
    index.norm_squared_[static_cast<size_t>(c)] = norm_sq;
    const double norm = std::sqrt(norm_sq);
    const bool good =
        static_cast<int64_t>(heavy.size()) >= params.min_heavy_entries &&
        norm >= norm_lo && norm <= norm_hi;
    index.is_good_[static_cast<size_t>(c)] = good;
    if (good) index.good_columns_.push_back(c);
    index.columns_[static_cast<size_t>(c)] = std::move(entries);
  }
  for (int64_t c : index.good_columns_) {
    for (int64_t l : index.heavy_rows_[static_cast<size_t>(c)]) {
      index.good_cols_of_row_[static_cast<size_t>(l)].push_back(c);
    }
  }
  return index;
}

bool SketchColumnIndex::Collides(int64_t a, int64_t b) const {
  return SharedHeavyRows(a, b) > 0;
}

int64_t SketchColumnIndex::SharedHeavyRows(int64_t a, int64_t b) const {
  SOSE_DCHECK(a >= 0 && a < num_columns_);
  SOSE_DCHECK(b >= 0 && b < num_columns_);
  const std::vector<int64_t>& ha = heavy_rows_[static_cast<size_t>(a)];
  const std::vector<int64_t>& hb = heavy_rows_[static_cast<size_t>(b)];
  size_t i = 0, j = 0;
  int64_t shared = 0;
  while (i < ha.size() && j < hb.size()) {
    if (ha[i] == hb[j]) {
      ++shared;
      ++i;
      ++j;
    } else if (ha[i] < hb[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return shared;
}

double SketchColumnIndex::ColumnDot(int64_t a, int64_t b) const {
  SOSE_DCHECK(a >= 0 && a < num_columns_);
  SOSE_DCHECK(b >= 0 && b < num_columns_);
  const std::vector<ColumnEntry>& ca = columns_[static_cast<size_t>(a)];
  const std::vector<ColumnEntry>& cb = columns_[static_cast<size_t>(b)];
  size_t i = 0, j = 0;
  double sum = 0.0;
  while (i < ca.size() && j < cb.size()) {
    if (ca[i].row == cb[j].row) {
      sum += ca[i].value * cb[j].value;
      ++i;
      ++j;
    } else if (ca[i].row < cb[j].row) {
      ++i;
    } else {
      ++j;
    }
  }
  return sum;
}

double SketchColumnIndex::AverageHeavyEntries() const {
  double total = 0.0;
  for (const auto& heavy : heavy_rows_) {
    total += static_cast<double>(heavy.size());
  }
  return total / static_cast<double>(num_columns_);
}

}  // namespace sose
