#ifndef SOSE_LOWERBOUND_COLUMN_INDEX_H_
#define SOSE_LOWERBOUND_COLUMN_INDEX_H_

#include <cstdint>
#include <vector>

#include "core/status.h"
#include "sketch/sketch.h"

namespace sose {

/// Heaviness parameters defining "good" columns, following Section 4 of the
/// paper: an entry is θ-heavy if |Π_{l,c}| >= θ; a column is *good* if it
/// has at least `min_heavy_entries` θ-heavy entries and its l2-norm lies in
/// [1 − norm_tolerance, 1 + norm_tolerance].
struct HeavinessParams {
  double theta = 0.0;              ///< Heaviness threshold (√(8ε) in Sec. 4).
  int64_t min_heavy_entries = 1;   ///< 1/(16ε) in Sec. 4; ε^{δ'}2^ℓ/3 in Sec. 5.
  double norm_tolerance = 0.1;     ///< ε of the embedding property.
};

/// Materialized, heaviness-annotated view of a contiguous column range of a
/// sketching matrix. This is the data structure every piece of the
/// lower-bound machinery (collision counting, Algorithm 1/2, witnesses)
/// walks: per-column heavy rows, per-column norms, the good-column set G,
/// and the inverted index row -> good columns heavy there.
///
/// Memory is O(nnz of the materialized range); build cost is one pass over
/// the columns. `num_columns` caps the range so the paper's astronomically
/// wide sketches can be indexed over exactly the columns an experiment
/// touches.
class SketchColumnIndex {
 public:
  /// Indexes columns [0, num_columns) of `sketch` under `params`.
  /// Fails if num_columns is out of range or θ <= 0.
  [[nodiscard]] static Result<SketchColumnIndex> Build(const SketchingMatrix& sketch,
                                                       int64_t num_columns,
                                                       const HeavinessParams& params);

  int64_t num_rows() const { return num_rows_; }
  int64_t num_columns() const { return num_columns_; }
  const HeavinessParams& params() const { return params_; }

  /// Heavy rows of column `c`, sorted ascending.
  const std::vector<int64_t>& HeavyRows(int64_t c) const {
    SOSE_DCHECK(c >= 0 && c < num_columns_);
    return heavy_rows_[static_cast<size_t>(c)];
  }

  /// Squared l2 norm of column `c`.
  double ColumnNormSquared(int64_t c) const {
    SOSE_DCHECK(c >= 0 && c < num_columns_);
    return norm_squared_[static_cast<size_t>(c)];
  }

  /// True iff column `c` is good.
  bool IsGood(int64_t c) const {
    SOSE_DCHECK(c >= 0 && c < num_columns_);
    return is_good_[static_cast<size_t>(c)];
  }

  /// Indices of all good columns, ascending.
  const std::vector<int64_t>& GoodColumns() const { return good_columns_; }

  /// Good columns whose entry at row `l` is θ-heavy (the paper's G^l),
  /// ascending. Empty for rows with no heavy good entries.
  const std::vector<int64_t>& GoodColumnsHeavyAtRow(int64_t l) const {
    SOSE_DCHECK(l >= 0 && l < num_rows_);
    return good_cols_of_row_[static_cast<size_t>(l)];
  }

  /// True iff columns `a` and `b` collide: they share at least one θ-heavy
  /// row (the paper's a ↔ b). A column collides with itself iff it has a
  /// heavy entry.
  bool Collides(int64_t a, int64_t b) const;

  /// Number of θ-heavy rows shared by columns `a` and `b`.
  int64_t SharedHeavyRows(int64_t a, int64_t b) const;

  /// Inner product of the full columns `a` and `b` of the sketch.
  double ColumnDot(int64_t a, int64_t b) const;

  /// Average number of θ-heavy entries per column over the indexed range
  /// (all columns, not just good ones) — the paper's "average number of
  /// θ-heavy entries of Π".
  double AverageHeavyEntries() const;

 private:
  SketchColumnIndex() = default;

  int64_t num_rows_ = 0;
  int64_t num_columns_ = 0;
  HeavinessParams params_;
  std::vector<std::vector<int64_t>> heavy_rows_;
  std::vector<double> norm_squared_;
  std::vector<bool> is_good_;
  std::vector<int64_t> good_columns_;
  std::vector<std::vector<int64_t>> good_cols_of_row_;
  // Full columns, needed for exact inner products.
  std::vector<std::vector<ColumnEntry>> columns_;
};

}  // namespace sose

#endif  // SOSE_LOWERBOUND_COLUMN_INDEX_H_
