#include "lowerbound/heavy_entries.h"

#include <cmath>

namespace sose {

int64_t CountHeavyEntries(const std::vector<ColumnEntry>& column,
                          double theta) {
  int64_t count = 0;
  for (const ColumnEntry& entry : column) {
    if (std::fabs(entry.value) >= theta) ++count;
  }
  return count;
}

double SectionFiveDeltaPrime(double epsilon) {
  SOSE_CHECK(epsilon > 0.0 && epsilon < 1.0);
  const double log_inv_eps = std::log(1.0 / epsilon);
  return std::log(std::log(1.0 / std::pow(epsilon, 72.0))) / log_inv_eps;
}

namespace {

// Yields `count` column indices: all of them when count >= n, otherwise a
// uniform sample without replacement.
std::vector<int64_t> PickColumns(int64_t n, int64_t count, Rng* rng) {
  if (count >= n) {
    std::vector<int64_t> all(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) all[static_cast<size_t>(i)] = i;
    return all;
  }
  SOSE_CHECK(rng != nullptr);
  return rng->SampleWithoutReplacement(n, count);
}

}  // namespace

Result<HeavyCensus> ComputeHeavyCensus(const SketchingMatrix& sketch,
                                       int64_t num_levels, double epsilon,
                                       int64_t sample_columns, Rng* rng) {
  if (num_levels < 0) {
    return Status::InvalidArgument("ComputeHeavyCensus: num_levels < 0");
  }
  if (epsilon <= 0.0 || epsilon >= 1.0) {
    return Status::InvalidArgument(
        "ComputeHeavyCensus: epsilon must be in (0, 1)");
  }
  if (sample_columns <= 0) {
    return Status::InvalidArgument("ComputeHeavyCensus: sample_columns <= 0");
  }
  const std::vector<int64_t> picked =
      PickColumns(sketch.cols(), sample_columns, rng);
  HeavyCensus census;
  const double delta_prime = SectionFiveDeltaPrime(epsilon);
  for (int64_t level = 0; level <= num_levels; ++level) {
    census.levels.push_back(level);
    census.thresholds.push_back(std::sqrt(std::pow(2.0, -static_cast<double>(level))));
    census.average_counts.push_back(0.0);
    census.lemma19_bounds.push_back(std::pow(epsilon, delta_prime) *
                                    std::pow(2.0, static_cast<double>(level)));
  }
  double norm_sq_sum = 0.0;
  for (int64_t c : picked) {
    const std::vector<ColumnEntry> column = sketch.Column(c);
    for (const ColumnEntry& entry : column) {
      norm_sq_sum += entry.value * entry.value;
    }
    for (size_t level = 0; level < census.thresholds.size(); ++level) {
      // Dyadic sketches (OSNAP with s = 2^ℓ, block-Hadamard) have entries of
      // magnitude exactly √(2^{-ℓ}); a one-ulp rounding difference between
      // 1/√(2^ℓ) and √(2^{-ℓ}) must not flip at-threshold entries to
      // "light", so the comparison threshold is relaxed by 1e-9 relative.
      const double threshold = census.thresholds[level] * (1.0 - 1e-9);
      census.average_counts[level] +=
          static_cast<double>(CountHeavyEntries(column, threshold));
    }
  }
  const double denom = static_cast<double>(picked.size());
  for (double& count : census.average_counts) count /= denom;
  census.average_norm_squared = norm_sq_sum / denom;
  return census;
}

Result<double> FractionColumnsOutsideNorm(const SketchingMatrix& sketch,
                                          double epsilon,
                                          int64_t sample_columns, Rng* rng) {
  if (sample_columns <= 0) {
    return Status::InvalidArgument(
        "FractionColumnsOutsideNorm: sample_columns <= 0");
  }
  const std::vector<int64_t> picked =
      PickColumns(sketch.cols(), sample_columns, rng);
  int64_t outside = 0;
  for (int64_t c : picked) {
    double norm_sq = 0.0;
    for (const ColumnEntry& entry : sketch.Column(c)) {
      norm_sq += entry.value * entry.value;
    }
    const double norm = std::sqrt(norm_sq);
    if (norm < 1.0 - epsilon || norm > 1.0 + epsilon) ++outside;
  }
  return static_cast<double>(outside) / static_cast<double>(picked.size());
}

}  // namespace sose
