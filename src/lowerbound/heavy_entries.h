#ifndef SOSE_LOWERBOUND_HEAVY_ENTRIES_H_
#define SOSE_LOWERBOUND_HEAVY_ENTRIES_H_

#include <cstdint>
#include <vector>

#include "core/random.h"
#include "core/status.h"
#include "sketch/sketch.h"

namespace sose {

/// Per-level census of heavy entries, the quantity driving Section 5 of the
/// paper: for each level ℓ, the average (over sampled columns) number of
/// entries of absolute value at least √(2^{-ℓ}).
struct HeavyCensus {
  /// Levels 0..L (level ℓ means threshold √(2^{-ℓ})).
  std::vector<int64_t> levels;
  /// Thresholds √(2^{-ℓ}), aligned with `levels`.
  std::vector<double> thresholds;
  /// Average number of threshold-heavy entries per column.
  std::vector<double> average_counts;
  /// Lemma 19's ceiling ε^{δ'}·2^ℓ evaluated per level (what a valid
  /// embedding must stay below, up to constants).
  std::vector<double> lemma19_bounds;
  /// Average squared column norm of the sampled columns.
  double average_norm_squared = 0.0;
};

/// Number of θ-heavy entries in one sketch column.
int64_t CountHeavyEntries(const std::vector<ColumnEntry>& column, double theta);

/// Computes the heavy-entry census of `sketch` at levels 0..num_levels by
/// sampling `sample_columns` columns uniformly (or scanning all columns when
/// sample_columns >= cols()). `epsilon` parameterizes the Lemma 19 bound
/// column (δ' is computed from ε exactly as in Section 5).
[[nodiscard]] Result<HeavyCensus> ComputeHeavyCensus(const SketchingMatrix& sketch,
                                                     int64_t num_levels, double epsilon,
                                                     int64_t sample_columns, Rng* rng);

/// The paper's δ'(ε) = log log(1/ε^72) / log(1/ε) from Section 5, chosen so
/// that 4 ε^{δ'} log(1/ε) <= 1/18.
double SectionFiveDeltaPrime(double epsilon);

/// Fraction of sampled columns whose l2 norm falls outside [1-ε, 1+ε]
/// (Lemma 6 says this must be at most ~2δ/d for a working s = 1 embedding).
[[nodiscard]] Result<double> FractionColumnsOutsideNorm(const SketchingMatrix& sketch,
                                                        double epsilon,
                                                        int64_t sample_columns, Rng* rng);

}  // namespace sose

#endif  // SOSE_LOWERBOUND_HEAVY_ENTRIES_H_
