#include "lowerbound/lemma_checks.h"

#include <cmath>

#include "core/vector_ops.h"

namespace sose {

Fact5Result CheckFact5(double x1, double x2, double x3, double a) {
  Fact5Result result;
  int at_least = 0;
  int at_most = 0;
  for (double s1 : {-1.0, 1.0}) {
    for (double s2 : {-1.0, 1.0}) {
      const double value = s1 * x1 + s2 * x2 + s1 * s2 * x3;
      if (value >= a) ++at_least;
      if (value <= -a) ++at_most;
    }
  }
  result.prob_at_least_a = at_least / 4.0;
  result.prob_at_most_neg_a = at_most / 4.0;
  result.holds =
      result.prob_at_least_a >= 0.25 && result.prob_at_most_neg_a >= 0.25;
  return result;
}

Result<Lemma3Result> CheckLemma3(const std::vector<std::vector<double>>& s,
                                 double epsilon, double kappa) {
  if (s.empty()) {
    return Status::InvalidArgument("CheckLemma3: empty vector family");
  }
  for (const std::vector<double>& u : s) {
    if (u.size() != s.front().size()) {
      return Status::InvalidArgument("CheckLemma3: inconsistent dimensions");
    }
    if (Norm2(u) > 1.0 + 1e-9) {
      return Status::InvalidArgument(
          "CheckLemma3: vector outside the unit ball");
    }
  }
  Lemma3Result result;
  result.bound = 2.0 * epsilon;
  const double threshold = -kappa * epsilon;
  int64_t favorable = 0;
  double sum_inner = 0.0;
  const int64_t k = static_cast<int64_t>(s.size());
  for (int64_t i = 0; i < k; ++i) {
    for (int64_t j = 0; j < k; ++j) {
      const double inner =
          Dot(s[static_cast<size_t>(i)], s[static_cast<size_t>(j)]);
      sum_inner += inner;
      if (inner >= threshold) ++favorable;
    }
  }
  const double total = static_cast<double>(k) * static_cast<double>(k);
  result.probability = static_cast<double>(favorable) / total;
  result.mean_inner_product = sum_inner / total;
  result.holds = result.probability > result.bound;
  return result;
}

Result<Lemma14Result> CheckLemma14(const Matrix& a, int64_t row, double theta,
                                   double epsilon, double kappa) {
  if (row < 0 || row >= a.rows()) {
    return Status::OutOfRange("CheckLemma14: row out of range");
  }
  if (theta <= 0.0) {
    return Status::InvalidArgument("CheckLemma14: theta must be positive");
  }
  Lemma14Result result;
  result.bound = epsilon / 2.0;
  std::vector<int64_t> heavy_cols;
  for (int64_t c = 0; c < a.cols(); ++c) {
    if (std::fabs(a.At(row, c)) >= theta) heavy_cols.push_back(c);
  }
  result.heavy_set_size = static_cast<int64_t>(heavy_cols.size());
  if (heavy_cols.empty()) {
    return Status::FailedPrecondition("CheckLemma14: no θ-heavy column");
  }
  result.precondition_met = true;
  for (int64_t c : heavy_cols) {
    if (a.ColNormSquared(c) > 1.0 + theta * theta + 1e-9) {
      result.precondition_met = false;
    }
  }
  const double threshold = theta * theta - kappa * epsilon;
  int64_t favorable = 0;
  const int64_t k = static_cast<int64_t>(heavy_cols.size());
  for (int64_t i = 0; i < k; ++i) {
    for (int64_t j = 0; j < k; ++j) {
      const double inner = a.ColDot(heavy_cols[static_cast<size_t>(i)],
                                    heavy_cols[static_cast<size_t>(j)]);
      if (inner >= threshold) ++favorable;
    }
  }
  result.probability = static_cast<double>(favorable) /
                       (static_cast<double>(k) * static_cast<double>(k));
  result.holds = result.probability >= result.bound;
  return result;
}

}  // namespace sose
