#ifndef SOSE_LOWERBOUND_LEMMA_CHECKS_H_
#define SOSE_LOWERBOUND_LEMMA_CHECKS_H_

#include <cstdint>
#include <vector>

#include "core/matrix.h"
#include "core/status.h"

namespace sose {

/// Exact evaluation of Fact 5: for reals |x1| >= |x2| >= |x3| with
/// |x1| >= a and independent Rademacher σ1, σ2,
///   Pr[σ1·x1 + σ2·x2 + σ1σ2·x3 >= a] >= 1/4   and
///   Pr[σ1·x1 + σ2·x2 + σ1σ2·x3 <= −a] >= 1/4.
/// The probabilities are computed exactly by enumerating the four sign
/// combinations.
struct Fact5Result {
  double prob_at_least_a = 0.0;
  double prob_at_most_neg_a = 0.0;
  /// True iff both probabilities are >= 1/4.
  bool holds = false;
};
Fact5Result CheckFact5(double x1, double x2, double x3, double a);

/// Exact evaluation of Lemma 3 on a concrete finite set S of vectors inside
/// the unit l2 ball: Pr_{u,v ~ Unif(S) independent}[⟨u,v⟩ >= −κε] computed
/// over all |S|² ordered pairs. The lemma guarantees > 2ε for κ = 3,
/// ε ∈ (0, 1/9).
struct Lemma3Result {
  double probability = 0.0;
  double bound = 0.0;  ///< 2ε.
  bool holds = false;
  double mean_inner_product = 0.0;  ///< E⟨u,v⟩, which the proof shows >= 0.
};
[[nodiscard]] Result<Lemma3Result> CheckLemma3(const std::vector<std::vector<double>>& s,
                                               double epsilon, double kappa = 3.0);

/// Exact evaluation of Lemma 14 for a concrete matrix A and row l: with
/// S = {i : |A_{l,i}| >= θ} (requiring ‖A_{*,i}‖² <= 1 + θ² on S) and
/// independent u, v ~ Unif(S),
///   Pr[⟨A_{*,u}, A_{*,v}⟩ >= θ² − κε] >= ε/2.
struct Lemma14Result {
  int64_t heavy_set_size = 0;
  double probability = 0.0;
  double bound = 0.0;  ///< ε/2.
  bool holds = false;
  bool precondition_met = false;  ///< Norm condition on S held.
};
[[nodiscard]] Result<Lemma14Result> CheckLemma14(const Matrix& a, int64_t row, double theta,
                                                 double epsilon, double kappa = 3.0);

}  // namespace sose

#endif  // SOSE_LOWERBOUND_LEMMA_CHECKS_H_
