#include "lowerbound/pair_finder.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "core/random.h"

namespace sose {

namespace {

// Mutable state of the good-column set G_k with the incremental structures
// needed to evaluate the algorithm's conditions quickly:
//  - row_size[l]   = |G_k^l| (alive good columns heavy at row l)
//  - ub[c]         = Σ_{l ∈ H(c)} row_size[l]  (an upper bound on |N(c)|,
//                    the number of alive columns colliding with c, counted
//                    with multiplicity across shared rows)
// Exact |N(c)| is computed lazily, only for columns whose upper bound
// crosses the φ threshold.
class GoodSetState {
 public:
  explicit GoodSetState(const SketchColumnIndex& index) : index_(index) {
    alive_.assign(static_cast<size_t>(index.num_columns()), false);
    ub_.assign(static_cast<size_t>(index.num_columns()), 0);
    stamp_.assign(static_cast<size_t>(index.num_columns()), 0);
    row_size_.assign(static_cast<size_t>(index.num_rows()), 0);
    for (int64_t c : index.GoodColumns()) {
      alive_[static_cast<size_t>(c)] = true;
      ++alive_count_;
    }
    for (int64_t l = 0; l < index.num_rows(); ++l) {
      row_size_[static_cast<size_t>(l)] =
          static_cast<int64_t>(index.GoodColumnsHeavyAtRow(l).size());
    }
    for (int64_t c : index.GoodColumns()) {
      int64_t sum = 0;
      for (int64_t l : index.HeavyRows(c)) {
        sum += row_size_[static_cast<size_t>(l)];
      }
      ub_[static_cast<size_t>(c)] = sum;
    }
  }

  bool IsAlive(int64_t c) const { return alive_[static_cast<size_t>(c)]; }
  int64_t alive_count() const { return alive_count_; }
  int64_t RowSize(int64_t l) const { return row_size_[static_cast<size_t>(l)]; }

  // The row ℓ maximizing |G_k^l|.
  int64_t ArgmaxRow() const {
    int64_t best_row = 0;
    int64_t best = -1;
    for (int64_t l = 0; l < index_.num_rows(); ++l) {
      if (row_size_[static_cast<size_t>(l)] > best) {
        best = row_size_[static_cast<size_t>(l)];
        best_row = l;
      }
    }
    return best_row;
  }

  // Removes column c from G (no-op if already removed).
  void Remove(int64_t c) {
    if (!alive_[static_cast<size_t>(c)]) return;
    alive_[static_cast<size_t>(c)] = false;
    --alive_count_;
    for (int64_t l : index_.HeavyRows(c)) {
      --row_size_[static_cast<size_t>(l)];
      for (int64_t other : index_.GoodColumnsHeavyAtRow(l)) {
        --ub_[static_cast<size_t>(other)];
      }
    }
  }

  // Removes every alive column heavy at row l (the update G ← G \ G^ℓ).
  void RemoveRow(int64_t l) {
    // Copy: Remove() mutates row structures while we iterate.
    std::vector<int64_t> to_remove;
    for (int64_t c : index_.GoodColumnsHeavyAtRow(l)) {
      if (alive_[static_cast<size_t>(c)]) to_remove.push_back(c);
    }
    for (int64_t c : to_remove) Remove(c);
  }

  // Removes every alive column colliding with `pivot`
  // (the update G ← G \ {c ∈ G : c ↔ C_j}).
  void RemoveColliders(int64_t pivot) {
    std::vector<int64_t> to_remove;
    ++current_stamp_;
    for (int64_t l : index_.HeavyRows(pivot)) {
      for (int64_t c : index_.GoodColumnsHeavyAtRow(l)) {
        if (alive_[static_cast<size_t>(c)] &&
            stamp_[static_cast<size_t>(c)] != current_stamp_) {
          stamp_[static_cast<size_t>(c)] = current_stamp_;
          to_remove.push_back(c);
        }
      }
    }
    for (int64_t c : to_remove) Remove(c);
  }

  // The Lemma 13 quantities over the alive set: the number of unordered
  // colliding pairs T_k and Δ_k = E[shared heavy rows] over them.
  // O(Σ_l |G_k^l|²); for optional diagnostics only.
  std::pair<int64_t, double> CollidingPairStats() const {
    std::map<std::pair<int64_t, int64_t>, int64_t> shared;
    for (int64_t l = 0; l < index_.num_rows(); ++l) {
      const std::vector<int64_t>& members = index_.GoodColumnsHeavyAtRow(l);
      std::vector<int64_t> alive_members;
      for (int64_t c : members) {
        if (alive_[static_cast<size_t>(c)]) alive_members.push_back(c);
      }
      for (size_t i = 0; i < alive_members.size(); ++i) {
        for (size_t j = i + 1; j < alive_members.size(); ++j) {
          ++shared[{alive_members[i], alive_members[j]}];
        }
      }
    }
    if (shared.empty()) return {0, 0.0};
    double total = 0.0;
    for (const auto& [pair, count] : shared) {
      (void)pair;
      total += static_cast<double>(count);
    }
    return {static_cast<int64_t>(shared.size()),
            total / static_cast<double>(shared.size())};
  }

  // Exact |N(c)| = |{c' ∈ G_k : c' ↔ c}| for an alive column c.
  int64_t ExactColliderCount(int64_t c) {
    ++current_stamp_;
    int64_t count = 0;
    for (int64_t l : index_.HeavyRows(c)) {
      for (int64_t other : index_.GoodColumnsHeavyAtRow(l)) {
        if (alive_[static_cast<size_t>(other)] &&
            stamp_[static_cast<size_t>(other)] != current_stamp_) {
          stamp_[static_cast<size_t>(other)] = current_stamp_;
          ++count;
        }
      }
    }
    return count;
  }

  // True iff φ_{k,c} <= threshold for every alive c, i.e.
  // |N(c)| <= threshold · |G_k|. Uses ub as a cheap filter; exact counts
  // only where the filter is inconclusive.
  bool AllPhiBelow(double threshold) {
    const double cap = threshold * static_cast<double>(alive_count_);
    for (int64_t c : index_.GoodColumns()) {
      if (!alive_[static_cast<size_t>(c)]) continue;
      if (static_cast<double>(ub_[static_cast<size_t>(c)]) <= cap) continue;
      if (static_cast<double>(ExactColliderCount(c)) > cap) return false;
    }
    return true;
  }

 private:
  const SketchColumnIndex& index_;
  std::vector<bool> alive_;
  std::vector<int64_t> ub_;
  std::vector<int64_t> row_size_;
  std::vector<int64_t> stamp_;
  int64_t current_stamp_ = 0;
  int64_t alive_count_ = 0;
};

PairFinderEvent MakePairEvent(const SketchColumnIndex& index,
                              PairFinderBranch branch, int64_t step,
                              int64_t col_a, int64_t col_b) {
  PairFinderEvent event;
  event.branch = branch;
  event.step = step;
  event.col_a = col_a;
  event.col_b = col_b;
  event.inner_product = index.ColumnDot(col_a, col_b);
  event.shared_heavy_rows = index.SharedHeavyRows(col_a, col_b);
  return event;
}

}  // namespace

Result<PairFinderResult> RunPairFinder(
    const SketchColumnIndex& index, const std::vector<int64_t>& chosen_columns,
    const PairFinderOptions& options) {
  if (options.num_iterations <= 0) {
    return Status::InvalidArgument("RunPairFinder: num_iterations <= 0");
  }
  if (options.phi_threshold <= 0.0) {
    return Status::InvalidArgument("RunPairFinder: phi_threshold <= 0");
  }
  for (int64_t c : chosen_columns) {
    if (c < 0 || c >= index.num_columns()) {
      return Status::OutOfRange("RunPairFinder: chosen column out of range");
    }
  }

  // Preamble (Lines 1–4): the good chosen columns in sample order.
  std::vector<int64_t> chosen_good;  // The C array (0-based).
  for (int64_t c : chosen_columns) {
    if (index.IsGood(c)) chosen_good.push_back(c);
  }
  const int64_t g = static_cast<int64_t>(chosen_good.size());
  std::vector<bool> in_s(static_cast<size_t>(g), true);  // S_k membership.

  GoodSetState state(index);
  Rng rng(options.seed);
  PairFinderResult result;
  result.num_good_chosen = g;
  int64_t step = 1;

  auto push_event = [&result, &state, &options](PairFinderEvent event) {
    if (options.collect_set_stats) {
      event.alive_good_columns = state.alive_count();
      const auto [t_k, delta_k] = state.CollidingPairStats();
      event.colliding_pairs_tk = t_k;
      event.delta_k = delta_k;
    }
    result.events.push_back(std::move(event));
  };

  auto heavy_at = [&index](int64_t column, int64_t row) {
    const std::vector<int64_t>& rows = index.HeavyRows(column);
    return std::binary_search(rows.begin(), rows.end(), row);
  };

  for (int64_t j = 0; j < options.num_iterations; ++j) {
    // While-loop (Lines 6–19).
    std::vector<int64_t> s_prime;  // Indices i (into chosen_good) heavy at ℓ.
    int64_t ell = -1;
    while (true) {
      ell = state.ArgmaxRow();
      s_prime.clear();
      for (int64_t i = 0; i < g; ++i) {
        if (in_s[static_cast<size_t>(i)] &&
            heavy_at(chosen_good[static_cast<size_t>(i)], ell)) {
          s_prime.push_back(i);
        }
      }
      if (state.alive_count() == 0 ||
          state.AllPhiBelow(options.phi_threshold)) {
        s_prime.clear();  // Line 12.
        break;            // Line 13.
      }
      if (!s_prime.empty()) break;  // Line 14.
      // Line 15–18: purge the dominating row and keep looping.
      PairFinderEvent event;
      event.branch = PairFinderBranch::kRowPurge;
      event.step = step;
      event.row = ell;
      push_event(event);
      state.RemoveRow(ell);
      ++step;
    }

    if (!s_prime.empty()) {
      // High-φ branch (Lines 20–30).
      if (static_cast<int64_t>(s_prime.size()) >= 2) {
        // Sample two distinct members of S'_k (Lines 21–25).
        const int64_t a_pos =
            static_cast<int64_t>(rng.UniformInt(s_prime.size()));
        int64_t b_pos =
            static_cast<int64_t>(rng.UniformInt(s_prime.size() - 1));
        if (b_pos >= a_pos) ++b_pos;
        const int64_t i_a = s_prime[static_cast<size_t>(a_pos)];
        const int64_t i_b = s_prime[static_cast<size_t>(b_pos)];
        PairFinderEvent event = MakePairEvent(
            index, PairFinderBranch::kHighPhiPair, step,
            chosen_good[static_cast<size_t>(i_a)],
            chosen_good[static_cast<size_t>(i_b)]);
        event.row = ell;
        push_event(event);
        ++result.num_pairs;
        in_s[static_cast<size_t>(i_a)] = false;
        in_s[static_cast<size_t>(i_b)] = false;
      } else {
        // Lines 26–29.
        PairFinderEvent event;
        event.branch = PairFinderBranch::kHighPhiSingleton;
        event.step = step;
        event.row = ell;
        push_event(event);
        in_s[static_cast<size_t>(s_prime.front())] = false;
        state.RemoveRow(ell);
      }
    } else if (j >= g || !in_s[static_cast<size_t>(j)]) {
      // Lines 31–34: the pivot index j is no longer available.
      PairFinderEvent event;
      event.branch = PairFinderBranch::kSkippedIndex;
      event.step = step;
      push_event(event);
    } else {
      // Greedy branch (Lines 36–46) with pivot C_j.
      const int64_t pivot = chosen_good[static_cast<size_t>(j)];
      std::vector<int64_t> partners;
      for (int64_t i = 0; i < g; ++i) {
        if (i != j && in_s[static_cast<size_t>(i)] &&
            index.Collides(chosen_good[static_cast<size_t>(i)], pivot)) {
          partners.push_back(i);
        }
      }
      if (!partners.empty()) {
        const int64_t i_partner = partners[static_cast<size_t>(
            rng.UniformInt(partners.size()))];
        PairFinderEvent event = MakePairEvent(
            index, PairFinderBranch::kGreedyPair, step,
            chosen_good[static_cast<size_t>(i_partner)], pivot);
        push_event(event);
        ++result.num_pairs;
        in_s[static_cast<size_t>(j)] = false;
        in_s[static_cast<size_t>(i_partner)] = false;
      } else {
        PairFinderEvent event;
        event.branch = PairFinderBranch::kNoPartner;
        event.step = step;
        event.col_b = pivot;
        push_event(event);
        in_s[static_cast<size_t>(j)] = false;
        state.RemoveColliders(pivot);
      }
    }
    ++step;
  }
  result.final_good_set_size = state.alive_count();
  return result;
}

Result<PairFinderResult> RunAlgorithm1(
    const SketchColumnIndex& index, const std::vector<int64_t>& chosen_columns,
    uint64_t seed) {
  const int64_t d = static_cast<int64_t>(chosen_columns.size());
  if (d <= 0) {
    return Status::InvalidArgument("RunAlgorithm1: no chosen columns");
  }
  PairFinderOptions options;
  options.eta = 3.0;
  options.phi_threshold = options.eta / static_cast<double>(d);
  options.num_iterations = std::max<int64_t>(1, d / 16);
  options.seed = seed;
  return RunPairFinder(index, chosen_columns, options);
}

Result<PairFinderResult> RunAlgorithm2(
    const SketchColumnIndex& index, const std::vector<int64_t>& chosen_columns,
    double scale, uint64_t seed) {
  const int64_t d_prime = static_cast<int64_t>(chosen_columns.size());
  if (d_prime <= 0) {
    return Status::InvalidArgument("RunAlgorithm2: no chosen columns");
  }
  if (scale <= 0.0 || scale > 1.0) {
    return Status::InvalidArgument("RunAlgorithm2: scale must be in (0, 1]");
  }
  PairFinderOptions options;
  options.eta = 3.0;
  const double effective = scale * static_cast<double>(d_prime);
  options.phi_threshold = options.eta / std::max(effective, 1.0);
  options.num_iterations =
      std::max<int64_t>(1, static_cast<int64_t>(effective / 16.0));
  options.seed = seed;
  return RunPairFinder(index, chosen_columns, options);
}

}  // namespace sose
