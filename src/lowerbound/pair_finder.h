#ifndef SOSE_LOWERBOUND_PAIR_FINDER_H_
#define SOSE_LOWERBOUND_PAIR_FINDER_H_

#include <cstdint>
#include <vector>

#include "core/status.h"
#include "lowerbound/column_index.h"

namespace sose {

/// Which branch of the paper's Algorithm 1 produced an output record.
enum class PairFinderBranch {
  /// Line 15: φ too concentrated but no chosen column is heavy in the
  /// dominating row; the row's good columns were purged from G. Output
  /// (ℓ, ⊥).
  kRowPurge,
  /// Line 23: two chosen columns heavy in the dominating row ℓ.
  /// Output (C_{j'}, C_{j''}).
  kHighPhiPair,
  /// Line 27: exactly one chosen column heavy in ℓ. Output (ℓ, ⊥).
  kHighPhiSingleton,
  /// Line 34: the iteration's pivot index j already left S. Output (⊥, ⊥).
  kSkippedIndex,
  /// Line 39: pivot C_j collides with a surviving chosen column C_{j'}.
  /// Output (C_{j'}, C_j).
  kGreedyPair,
  /// Line 43: pivot C_j collides with nothing; its colliders leave G.
  /// Output (⊥, C_j).
  kNoPartner,
};

/// One output record of the pair finder (the paper's Y values, annotated).
struct PairFinderEvent {
  PairFinderBranch branch = PairFinderBranch::kSkippedIndex;
  /// The algorithm's step counter k at emission time.
  int64_t step = 0;
  /// Sketch column indices of the emitted pair; -1 encodes ⊥.
  int64_t col_a = -1;
  int64_t col_b = -1;
  /// Dominating row ℓ for the row-flavored branches; -1 otherwise.
  int64_t row = -1;
  /// For pair branches: ⟨Π_{*,a}, Π_{*,b}⟩ and the number of shared
  /// θ-heavy rows.
  double inner_product = 0.0;
  int64_t shared_heavy_rows = 0;
  /// Lemma 13 state at emission time, filled only when
  /// PairFinderOptions::collect_set_stats is set: |G_k|, the number of
  /// unordered colliding pairs T_k within the alive good set, and
  /// Δ_k = E[shared heavy rows] over those pairs (0 when T_k is empty).
  int64_t alive_good_columns = 0;
  int64_t colliding_pairs_tk = 0;
  double delta_k = 0.0;
};

/// Aggregate result of one run.
struct PairFinderResult {
  std::vector<PairFinderEvent> events;
  /// Number of emitted colliding pairs (high-φ + greedy).
  int64_t num_pairs = 0;
  /// Number of good columns among the chosen sequence (the paper's g).
  int64_t num_good_chosen = 0;
  /// |G_k| at termination.
  int64_t final_good_set_size = 0;
};

/// Tuning of the process. Algorithm 1 uses phi_threshold = η/d and
/// num_iterations = d/16; Algorithm 2 rescales both by ε^{δ'}·2^{ℓ'}.
struct PairFinderOptions {
  double eta = 3.0;           ///< The paper's η.
  double phi_threshold = 0.0; ///< Break the while-loop when all φ_{k,c} <= this.
  int64_t num_iterations = 0; ///< Number of for-loop iterations.
  uint64_t seed = 0;          ///< Seed for the algorithm's internal sampling.
  /// When true, every emitted event also records |G_k|, |T_k| and Δ_k
  /// (the Lemma 13 quantities). Costs O(Σ_l |G_k^l|²) per event — enable
  /// for analysis runs, not inner loops.
  bool collect_set_stats = false;
};

/// Runs the greedy disjoint-colliding-pair process (the paper's
/// Algorithm 1) over the good columns of `index` chosen by V.
///
/// `chosen_columns` is the sequence C_1..C_d of sketch columns selected by
/// the hard instance, in sample order; non-good entries are filtered exactly
/// as the paper's preamble prescribes. Fails on out-of-range columns or
/// non-positive options.
[[nodiscard]] Result<PairFinderResult> RunPairFinder(const SketchColumnIndex& index,
                                                     const std::vector<int64_t>& chosen_columns,
                                                     const PairFinderOptions& options);

/// Algorithm 1 exactly: η = 3, φ-threshold η/d, d/16 iterations, where
/// d = chosen_columns.size().
[[nodiscard]] Result<PairFinderResult> RunAlgorithm1(const SketchColumnIndex& index,
                                                     const std::vector<int64_t>& chosen_columns,
                                                     uint64_t seed);

/// Algorithm 2's parameterization for level ℓ' and the Section 5 heaviness
/// scale: φ-threshold η/(scale·d') and scale·d'/16 iterations with
/// d' = chosen_columns.size() and scale = ε^{δ'} (the caller passes the
/// combined ε^{δ'} factor).
[[nodiscard]] Result<PairFinderResult> RunAlgorithm2(const SketchColumnIndex& index,
                                                     const std::vector<int64_t>& chosen_columns,
                                                     double scale, uint64_t seed);

}  // namespace sose

#endif  // SOSE_LOWERBOUND_PAIR_FINDER_H_
