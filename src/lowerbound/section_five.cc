#include "lowerbound/section_five.h"

#include <algorithm>
#include <cmath>

#include "core/random.h"
#include "hardinstance/d_beta.h"
#include "lowerbound/column_index.h"
#include "lowerbound/heavy_entries.h"
#include "lowerbound/pair_finder.h"

namespace sose {

Result<SectionFiveReport> RunSectionFiveAnalysis(const SketchingMatrix& sketch,
                                                 int64_t num_columns,
                                                 int64_t d, double epsilon,
                                                 uint64_t seed) {
  if (epsilon <= 0.0 || epsilon >= 1.0) {
    return Status::InvalidArgument(
        "RunSectionFiveAnalysis: epsilon must be in (0, 1)");
  }
  const int64_t num_levels =
      static_cast<int64_t>(std::floor(std::log2(1.0 / epsilon))) - 3;
  if (num_levels < 1) {
    return Status::InvalidArgument(
        "RunSectionFiveAnalysis: epsilon too large; need log2(1/eps) >= 4");
  }
  if (num_columns <= 0 || num_columns > sketch.cols()) {
    return Status::InvalidArgument(
        "RunSectionFiveAnalysis: num_columns out of range");
  }
  const double delta_prime = SectionFiveDeltaPrime(epsilon);
  const double eps_pow = std::pow(epsilon, delta_prime);
  const double scale = eps_pow;  // Algorithm 2's ε^{δ'} factor.

  SectionFiveReport report;
  double norm_sq_total = 0.0;
  Rng rng(DeriveSeed(seed, 0));

  for (int64_t level = 0; level <= num_levels; ++level) {
    SectionFiveLevel out;
    out.level = level;
    out.theta = std::sqrt(std::pow(2.0, -static_cast<double>(level)));
    out.lemma19_cap = eps_pow * std::pow(2.0, static_cast<double>(level));
    const int64_t min_heavy = std::max<int64_t>(
        1, static_cast<int64_t>(std::ceil(out.lemma19_cap / 3.0)));
    // The one-ulp relaxation mirrors ComputeHeavyCensus: dyadic sketches
    // carry entries exactly at the threshold.
    HeavinessParams params;
    params.theta = out.theta * (1.0 - 1e-9);
    params.min_heavy_entries = min_heavy;
    params.norm_tolerance = epsilon;
    SOSE_ASSIGN_OR_RETURN(SketchColumnIndex index,
                          SketchColumnIndex::Build(sketch, num_columns, params));
    if (level == 0) {
      for (int64_t c = 0; c < num_columns; ++c) {
        norm_sq_total += index.ColumnNormSquared(c);
      }
      report.average_norm_squared =
          norm_sq_total / static_cast<double>(num_columns);
    }
    double heavy_total = 0.0;
    for (int64_t c = 0; c < num_columns; ++c) {
      heavy_total += static_cast<double>(index.HeavyRows(c).size());
    }
    out.average_heavy = heavy_total / static_cast<double>(num_columns);
    out.abundant = out.average_heavy > out.lemma19_cap;
    out.good_columns = static_cast<int64_t>(index.GoodColumns().size());
    report.has_abundant_level |= out.abundant;

    // The paired level ℓ' with 2^{-ℓ-ℓ'} ≈ 2^{-L}: the instance whose
    // per-entry magnitude √β matches the level's heaviness.
    if (out.good_columns >= 2) {
      const int64_t paired = std::max<int64_t>(0, num_levels - level);
      const int64_t epc = int64_t{1} << paired;
      const int64_t d_prime = d * epc;
      if (d_prime <= num_columns) {
        SOSE_ASSIGN_OR_RETURN(
            DBetaSampler sampler,
            DBetaSampler::Create(num_columns, d, epc));
        HardInstance instance = sampler.Sample(&rng);
        int64_t redraws = 0;
        while (instance.HasRowCollision() && redraws < 64) {
          instance = sampler.Sample(&rng);
          ++redraws;
        }
        SOSE_ASSIGN_OR_RETURN(
            PairFinderResult finder,
            RunAlgorithm2(index, instance.rows, scale,
                          DeriveSeed(seed, 100 + static_cast<uint64_t>(level))));
        out.pairs_found = finder.num_pairs;
        // Lemma 4 trigger for this level: inner product ≥ 2^{-ℓ} − 3ε.
        const double trigger =
            std::pow(2.0, -static_cast<double>(level)) - 3.0 * epsilon;
        int64_t large = 0;
        for (const PairFinderEvent& event : finder.events) {
          if ((event.branch == PairFinderBranch::kHighPhiPair ||
               event.branch == PairFinderBranch::kGreedyPair) &&
              std::fabs(event.inner_product) >= trigger) {
            ++large;
          }
        }
        out.large_pair_fraction =
            finder.num_pairs > 0
                ? static_cast<double>(large) /
                      static_cast<double>(finder.num_pairs)
                : 0.0;
      }
    }
    report.levels.push_back(out);
  }
  report.heavy_mass_bound =
      static_cast<double>(num_levels + 1) * eps_pow;
  return report;
}

}  // namespace sose
