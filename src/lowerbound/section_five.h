#ifndef SOSE_LOWERBOUND_SECTION_FIVE_H_
#define SOSE_LOWERBOUND_SECTION_FIVE_H_

#include <cstdint>
#include <vector>

#include "core/status.h"
#include "sketch/sketch.h"

namespace sose {

/// Per-level outcome of the Section 5 analysis.
struct SectionFiveLevel {
  int64_t level = 0;          ///< ℓ: heaviness threshold √(2^{-ℓ}).
  double theta = 0.0;
  /// Average number of θ-heavy entries per indexed column.
  double average_heavy = 0.0;
  /// Lemma 19's ceiling ε^{δ'}·2^ℓ.
  double lemma19_cap = 0.0;
  /// Whether the census exceeds the cap — the "abundant level" the
  /// argument pairs with a D_{2^{-ℓ'}} instance.
  bool abundant = false;
  /// Good columns at this level (≥ cap/3 heavy entries, norm 1 ± ε).
  int64_t good_columns = 0;
  /// Colliding pairs emitted by Algorithm 2 on a matched-level instance.
  int64_t pairs_found = 0;
  /// Fraction of emitted pairs with |inner product| ≥ 2^{-ℓ} − 3ε — the
  /// Lemma 4 trigger for the paired level.
  double large_pair_fraction = 0.0;
};

/// Aggregate outcome of the Section 5 pipeline.
struct SectionFiveReport {
  std::vector<SectionFiveLevel> levels;
  /// Average squared column norm of the indexed columns; a working
  /// embedding must keep this ≈ 1, which is what the per-level caps sum to.
  double average_norm_squared = 0.0;
  /// Cumulative norm mass explained by entries at or above each level's
  /// threshold, bounded by Σ_ℓ cap_ℓ · 2^{-ℓ} = (L+1)·ε^{δ'} for a
  /// compliant sketch.
  double heavy_mass_bound = 0.0;
  /// True if some level is abundant — i.e. the removal argument has a
  /// level to attack.
  bool has_abundant_level = false;
};

/// Runs the Section 5 level-by-level analysis of a sketch: for each dyadic
/// level ℓ ∈ [0, L] (L = log₂(1/ε) − 3) it computes the heavy census over
/// columns [0, num_columns), classifies good columns exactly as the proof
/// of Lemma 19 does (ε^{δ'}2^ℓ/3 heavy entries, norm 1 ± ε), and — when the
/// level is populated — runs Algorithm 2 against a freshly sampled
/// D_{2^{-ℓ'}} instance at the paired level ℓ' ≈ L − ℓ, recording the
/// colliding pairs and their inner-product exceedances.
[[nodiscard]] Result<SectionFiveReport> RunSectionFiveAnalysis(const SketchingMatrix& sketch,
                                                               int64_t num_columns,
                                                               int64_t d, double epsilon,
                                                               uint64_t seed);

}  // namespace sose

#endif  // SOSE_LOWERBOUND_SECTION_FIVE_H_
