#include "lowerbound/section_three.h"

#include <algorithm>
#include <cmath>

#include "core/random.h"
#include "hardinstance/d_beta.h"
#include "lowerbound/collision.h"
#include "lowerbound/heavy_entries.h"

namespace sose {

namespace {

// Generic collision test for any sketch: two touched coordinates "collide"
// when their sketch columns share a support row. For Count-Sketch this is
// exactly Lemma 7's B_i > 1 event.
bool InstanceHasColumnCollision(const SketchingMatrix& sketch,
                                const HardInstance& instance) {
  std::vector<int64_t> support;
  for (int64_t row : instance.TouchedRows()) {
    for (const ColumnEntry& entry : sketch.Column(row)) {
      support.push_back(entry.row);
    }
  }
  std::sort(support.begin(), support.end());
  for (size_t i = 1; i < support.size(); ++i) {
    if (support[i] == support[i - 1]) return true;
  }
  return false;
}

}  // namespace

Result<SectionThreeReport> RunSectionThreeAnalysis(
    const SketchingMatrix& sketch, const SectionThreeParams& params) {
  if (params.d <= 0 || params.num_instances <= 0 || params.norm_samples <= 0) {
    return Status::InvalidArgument(
        "RunSectionThreeAnalysis: non-positive parameter");
  }
  if (params.epsilon <= 0.0 || params.epsilon >= 0.125) {
    return Status::InvalidArgument(
        "RunSectionThreeAnalysis: Theorem 8 requires epsilon in (0, 1/8)");
  }
  if (params.delta <= 0.0 || params.delta >= 0.125) {
    return Status::InvalidArgument(
        "RunSectionThreeAnalysis: Theorem 8 requires delta in (0, 1/8)");
  }
  SectionThreeReport report;

  // Lemma 6 side: fraction of columns with norm outside 1 ± ε.
  Rng census_rng(DeriveSeed(params.seed, 0));
  SOSE_ASSIGN_OR_RETURN(
      report.norm_violation_fraction,
      FractionColumnsOutsideNorm(sketch, params.epsilon, params.norm_samples,
                                 &census_rng));
  report.norm_violation_budget =
      2.0 * params.delta / static_cast<double>(params.d);
  report.norm_discipline_holds =
      report.norm_violation_fraction <= report.norm_violation_budget;

  // Lemma 7 side: collision probability of the D_{8ε} instance's active
  // coordinates under the sketch.
  const int64_t entries_per_col = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(1.0 / (8.0 * params.epsilon))));
  SOSE_ASSIGN_OR_RETURN(
      DBetaSampler sampler,
      DBetaSampler::Create(sketch.cols(), params.d, entries_per_col));
  report.balls = params.d * entries_per_col;
  Rng rng(DeriveSeed(params.seed, 1));
  int64_t collided = 0;
  for (int64_t t = 0; t < params.num_instances; ++t) {
    HardInstance instance = sampler.Sample(&rng);
    int64_t redraws = 0;
    while (instance.HasRowCollision() && redraws < 64) {
      instance = sampler.Sample(&rng);
      ++redraws;
    }
    if (InstanceHasColumnCollision(sketch, instance)) ++collided;
  }
  report.collision_rate =
      static_cast<double>(collided) / static_cast<double>(params.num_instances);
  report.collision_interval = WilsonInterval(collided, params.num_instances);
  report.birthday_prediction =
      BirthdayCollisionProbability(report.balls, sketch.rows());
  report.collision_budget =
      2.0 * params.delta / (1.0 - 4.0 * params.delta);
  report.collision_freedom_holds =
      report.collision_rate <= report.collision_budget;

  report.passes =
      report.norm_discipline_holds && report.collision_freedom_holds;

  // Smallest m meeting the birthday budget (doubling + bisection on the
  // analytic curve).
  int64_t lo = 1, hi = 1;
  while (BirthdayCollisionProbability(report.balls, hi) >
         report.collision_budget) {
    hi *= 2;
    if (hi > (int64_t{1} << 50)) break;
  }
  lo = hi / 2;
  while (lo + 1 < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (BirthdayCollisionProbability(report.balls, mid) <=
        report.collision_budget) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  report.required_rows_birthday = hi;
  return report;
}

}  // namespace sose
