#ifndef SOSE_LOWERBOUND_SECTION_THREE_H_
#define SOSE_LOWERBOUND_SECTION_THREE_H_

#include <cstdint>

#include "core/stats.h"
#include "core/status.h"
#include "sketch/sketch.h"

namespace sose {

/// The two obligations Theorem 8's proof places on an s = 1 sketch, each
/// measured directly. A sketch failing either cannot be an
/// (ε, δ)-embedding for the Section 3 mixture.
struct SectionThreeReport {
  // --- Lemma 6 side (D₁ component): column-norm discipline ---
  /// Fraction of sampled columns with l2 norm outside 1 ± ε (the lemma
  /// requires <= ~2δ/d).
  double norm_violation_fraction = 0.0;
  /// The bound 2δ/d the lemma imposes.
  double norm_violation_budget = 0.0;
  bool norm_discipline_holds = false;

  // --- Lemma 7 side (D_{8ε} component): collision freedom ---
  /// Number of active coordinates hashed per instance, k = d/(8ε).
  int64_t balls = 0;
  /// Empirical Pr[some bucket receives >= 2 active coordinates], with CI.
  double collision_rate = 0.0;
  ConfidenceInterval collision_interval;
  /// The analytic birthday probability at (balls, m).
  double birthday_prediction = 0.0;
  /// The paper's tolerance 2δ/(1 − 4δ) for the collision event.
  double collision_budget = 0.0;
  bool collision_freedom_holds = false;

  /// Overall: both obligations met (necessary conditions — the paper shows
  /// together they force m = Ω(d²/(ε²δ))).
  bool passes = false;
  /// The m this sketch would need for the birthday side alone to meet the
  /// budget: smallest m with BirthdayCollisionProbability(k, m) <= budget.
  int64_t required_rows_birthday = 0;
};

/// Parameters of the Section 3 analysis.
struct SectionThreeParams {
  int64_t d = 8;
  double epsilon = 1.0 / 16.0;  ///< Must be < 1/8 (Theorem 8's range).
  double delta = 0.1;           ///< Must be < 1/8.
  int64_t num_instances = 200;  ///< D_{8ε} draws for the collision estimate.
  int64_t norm_samples = 2000;  ///< Columns sampled for the Lemma 6 census.
  uint64_t seed = 0;
};

/// Measures both obligations of Theorem 8 against a sketch with column
/// sparsity 1 (the analysis is meaningful for any sketch, but the paper's
/// statement concerns s = 1; callers may check sketch.column_sparsity()).
[[nodiscard]] Result<SectionThreeReport> RunSectionThreeAnalysis(
    const SketchingMatrix& sketch, const SectionThreeParams& params);

}  // namespace sose

#endif  // SOSE_LOWERBOUND_SECTION_THREE_H_
