#include "lowerbound/witness.h"

#include <cmath>
#include <vector>

#include "core/linalg_eigen.h"
#include "core/random.h"
#include "ose/distortion.h"

namespace sose {

namespace {

double SortedDot(const std::vector<ColumnEntry>& a,
                 const std::vector<ColumnEntry>& b) {
  size_t i = 0, j = 0;
  double sum = 0.0;
  while (i < a.size() && j < b.size()) {
    if (a[i].row == b[j].row) {
      sum += a[i].value * b[j].value;
      ++i;
      ++j;
    } else if (a[i].row < b[j].row) {
      ++i;
    } else {
      ++j;
    }
  }
  return sum;
}

}  // namespace

Result<std::optional<ViolationWitness>> FindLargeInnerProductPair(
    const SketchingMatrix& sketch, const HardInstance& instance,
    double threshold) {
  if (sketch.cols() != instance.n) {
    return Status::InvalidArgument(
        "FindLargeInnerProductPair: ambient dimension mismatch");
  }
  const int64_t k = instance.NumGenerators();
  // Materialize the k touched sketch columns once.
  std::vector<std::vector<ColumnEntry>> cols(static_cast<size_t>(k));
  for (int64_t j = 0; j < k; ++j) {
    cols[static_cast<size_t>(j)] =
        sketch.Column(instance.rows[static_cast<size_t>(j)]);
  }
  std::optional<ViolationWitness> best;
  double best_abs = threshold;
  for (int64_t p = 0; p < k; ++p) {
    for (int64_t q = p + 1; q < k; ++q) {
      // Identical generators (event B) would trivially have inner product
      // ~1; the paper conditions them away.
      if (instance.rows[static_cast<size_t>(p)] ==
          instance.rows[static_cast<size_t>(q)]) {
        continue;
      }
      const double dot =
          SortedDot(cols[static_cast<size_t>(p)], cols[static_cast<size_t>(q)]);
      if (std::fabs(dot) >= best_abs) {
        best_abs = std::fabs(dot);
        ViolationWitness witness;
        witness.gen_p = p;
        witness.gen_q = q;
        witness.col_p = p / instance.entries_per_col;
        witness.col_q = q / instance.entries_per_col;
        witness.inner_product = dot;
        best = witness;
      }
    }
  }
  return best;
}

Result<AntiConcentrationReport> VerifyAntiConcentration(
    const SketchingMatrix& sketch, const HardInstance& instance,
    const ViolationWitness& witness, double epsilon, int64_t trials,
    uint64_t seed) {
  if (trials <= 0) {
    return Status::InvalidArgument("VerifyAntiConcentration: trials <= 0");
  }
  if (epsilon <= 0.0 || epsilon >= 1.0) {
    return Status::InvalidArgument(
        "VerifyAntiConcentration: epsilon must be in (0, 1)");
  }
  const int64_t epc = instance.entries_per_col;
  // The generators feeding u: the block(s) of the two owning columns.
  std::vector<int64_t> generators;
  for (int64_t j = witness.col_p * epc; j < (witness.col_p + 1) * epc; ++j) {
    generators.push_back(j);
  }
  if (witness.col_q != witness.col_p) {
    for (int64_t j = witness.col_q * epc; j < (witness.col_q + 1) * epc; ++j) {
      generators.push_back(j);
    }
  }
  // Scale of each generator's contribution to ΠUu: √β for u = e_{p'};
  // √(β/2) for u = (e_{p'} + e_{q'})/√2.
  const double scale = witness.col_p == witness.col_q
                           ? std::sqrt(instance.beta)
                           : std::sqrt(instance.beta / 2.0);
  // Materialize the touched sketch columns once.
  std::vector<std::vector<ColumnEntry>> cols(generators.size());
  for (size_t i = 0; i < generators.size(); ++i) {
    cols[i] = sketch.Column(
        instance.rows[static_cast<size_t>(generators[i])]);
  }
  const double lo = (1.0 - epsilon) * (1.0 - epsilon);
  const double hi = (1.0 + epsilon) * (1.0 + epsilon);
  Rng rng(seed);
  std::vector<double> accum(static_cast<size_t>(sketch.rows()), 0.0);
  AntiConcentrationReport report;
  report.trials = trials;
  int64_t above = 0, below = 0;
  for (int64_t t = 0; t < trials; ++t) {
    std::fill(accum.begin(), accum.end(), 0.0);
    for (const std::vector<ColumnEntry>& column : cols) {
      const double sigma = rng.Rademacher() * scale;
      for (const ColumnEntry& entry : column) {
        accum[static_cast<size_t>(entry.row)] += sigma * entry.value;
      }
    }
    double norm_sq = 0.0;
    for (double v : accum) norm_sq += v * v;
    if (norm_sq > hi) {
      ++above;
    } else if (norm_sq < lo) {
      ++below;
    }
  }
  report.fraction_above = static_cast<double>(above) / static_cast<double>(trials);
  report.fraction_below = static_cast<double>(below) / static_cast<double>(trials);
  report.fraction_outside = report.fraction_above + report.fraction_below;
  return report;
}

Result<int64_t> SketchedInstanceRank(const SketchingMatrix& sketch,
                                     const HardInstance& instance,
                                     double tol) {
  if (sketch.cols() != instance.n) {
    return Status::InvalidArgument(
        "SketchedInstanceRank: ambient dimension mismatch");
  }
  // ApplyBatch is bitwise-identical to ApplySparse but derives each touched
  // ambient row's sketch column once across the whole basis.
  SOSE_ASSIGN_OR_RETURN(Matrix sketched, sketch.ApplyBatch(instance.ToCsc()));
  SOSE_ASSIGN_OR_RETURN(std::vector<double> eigenvalues,
                        SymmetricEigenvalues(Gram(sketched)));
  const double cap = eigenvalues.back();
  if (cap <= 0.0) return int64_t{0};
  int64_t rank = 0;
  for (double value : eigenvalues) {
    if (value > tol * cap) ++rank;
  }
  return rank;
}

}  // namespace sose
