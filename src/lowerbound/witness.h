#ifndef SOSE_LOWERBOUND_WITNESS_H_
#define SOSE_LOWERBOUND_WITNESS_H_

#include <cstdint>
#include <optional>

#include "core/status.h"
#include "hardinstance/hard_instance.h"
#include "sketch/sketch.h"

namespace sose {

/// A pair of hard-instance generators whose sketch columns have a large
/// inner product — the precondition of the paper's Lemma 4, from which an
/// embedding-violating unit vector is constructed.
struct ViolationWitness {
  /// Generator indices into instance.rows (columns of A = ΠV).
  int64_t gen_p = 0;
  int64_t gen_q = 0;
  /// The U-columns owning the generators (the paper's p', q'); equal when
  /// both generators live in the same block.
  int64_t col_p = 0;
  int64_t col_q = 0;
  /// ⟨Π_{*,C_p}, Π_{*,C_q}⟩.
  double inner_product = 0.0;
};

/// Scans all generator pairs of the instance for the pair maximizing
/// |⟨Π_{*,C_p}, Π_{*,C_q}⟩| and returns it if the maximum reaches
/// `threshold` (the paper uses λε/β with λ > 2). Returns nullopt when no
/// pair qualifies. Cost O(k² s) for k = d/β generators.
[[nodiscard]] Result<std::optional<ViolationWitness>> FindLargeInnerProductPair(
    const SketchingMatrix& sketch, const HardInstance& instance,
    double threshold);

/// Empirical verdict on Lemma 4's anti-concentration: over resampled
/// Rademacher signs W, how often ‖ΠUu‖² leaves [(1−ε)², (1+ε)²] for the
/// witness-derived unit vector u = (e_{p'} + e_{q'})/√2 (or e_{p'} when
/// p' = q').
struct AntiConcentrationReport {
  int64_t trials = 0;
  /// Fraction of sign draws with ‖ΠUu‖² > (1+ε)².
  double fraction_above = 0.0;
  /// Fraction with ‖ΠUu‖² < (1−ε)².
  double fraction_below = 0.0;
  /// fraction_above + fraction_below; Lemma 4 guarantees >= 1/4 when the
  /// witness inner product is at least λε/β with λ > 2.
  double fraction_outside = 0.0;
};

/// Estimates the report by `trials` independent resamplings of the signs in
/// the witness's block(s), keeping V (the row choices) fixed.
[[nodiscard]] Result<AntiConcentrationReport> VerifyAntiConcentration(
    const SketchingMatrix& sketch, const HardInstance& instance,
    const ViolationWitness& witness, double epsilon, int64_t trials,
    uint64_t seed);

/// The numerical rank of ΠU (eigenvalues of its Gram above
/// tol · λ_max): Nelson–Nguyễn's original s = 1 argument (the paper's
/// footnote 1) observes that a collision collapses this below d. The
/// paper's anti-concentration argument supersedes it, but the collapse
/// remains the most visible symptom of a broken embedding.
[[nodiscard]] Result<int64_t> SketchedInstanceRank(const SketchingMatrix& sketch,
                                                   const HardInstance& instance,
                                                   double tol = 1e-10);

}  // namespace sose

#endif  // SOSE_LOWERBOUND_WITNESS_H_
