#include "ose/distortion.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "core/fault.h"
#include "core/linalg_eigen.h"
#include "core/simd/dispatch.h"

namespace sose {

double DistortionReport::Epsilon() const {
  return std::max(1.0 - min_factor, max_factor - 1.0);
}

bool DistortionReport::WithinEpsilon(double epsilon) const {
  return min_factor >= 1.0 - epsilon && max_factor <= 1.0 + epsilon;
}

namespace {

DistortionReport FromEigenvalues(const std::vector<double>& ascending) {
  DistortionReport report;
  const double lo = std::max(ascending.front(), 0.0);
  const double hi = std::max(ascending.back(), 0.0);
  report.min_factor = std::sqrt(lo);
  report.max_factor = std::sqrt(SOSE_FAULT_VALUE("distortion/max_factor", hi));
  return report;
}

}  // namespace

Result<DistortionReport> DistortionOfSketchedIsometry(const Matrix& sketched) {
  if (sketched.cols() == 0) {
    return Status::InvalidArgument("DistortionOfSketchedIsometry: empty basis");
  }
  SOSE_ASSIGN_OR_RETURN(std::vector<double> eigenvalues,
                        SymmetricEigenvalues(Gram(sketched)));
  return FromEigenvalues(eigenvalues);
}

Result<DistortionReport> DistortionOfSketchedBasis(const Matrix& sketched,
                                                   const Matrix& gram_u) {
  if (sketched.cols() != gram_u.rows()) {
    return Status::InvalidArgument("DistortionOfSketchedBasis: shape mismatch");
  }
  SOSE_ASSIGN_OR_RETURN(
      std::vector<double> eigenvalues,
      GeneralizedSymmetricEigenvalues(Gram(sketched), gram_u));
  return FromEigenvalues(eigenvalues);
}

namespace {

// (ΠU)ᵀ(ΠU) without materializing the m x d product: ΠU has at most
// nnz(U) · s nonzero rows, so the Gram is accumulated row-by-row over a
// map keyed by sketch row. This keeps the paper's regime m = Θ(d²/(ε²δ))
// affordable — the cost is independent of m for sparse sketches.
//
// Accumulation is batched by ambient row (the ApplyBatch traversal): the
// sketch column for each distinct touched row of U is derived once and
// scattered across all d basis columns, instead of once per (column,
// nonzero). Per output cell the contributions still arrive in ascending
// ambient-row order, so the sketched rows are bitwise identical to the
// column-major walk's.
Result<Matrix> SketchedGramOnInstance(const SketchingMatrix& sketch,
                                      const HardInstance& instance) {
  const CscMatrix u = instance.ToCsc();
  const int64_t d = u.cols();
  std::unordered_map<int64_t, std::vector<double>> sketched_rows;
  const std::vector<BatchEntry> batch = RowOrderedEntries(u);
  std::vector<ColumnEntry> entries;
  entries.reserve(static_cast<size_t>(sketch.column_sparsity()));
  for (size_t p0 = 0; p0 < batch.size();) {
    const int64_t ambient_row = batch[p0].row;
    size_t p1 = p0;
    while (p1 < batch.size() && batch[p1].row == ambient_row) ++p1;
    sketch.ColumnInto(ambient_row, &entries);
    for (const ColumnEntry& entry : entries) {
      auto [it, inserted] = sketched_rows.try_emplace(entry.row);
      if (inserted) it->second.assign(static_cast<size_t>(d), 0.0);
      for (size_t p = p0; p < p1; ++p) {
        it->second[static_cast<size_t>(batch[p].col)] +=
            batch[p].value * entry.value;
      }
    }
    p0 = p1;
  }
  // Rank-1 updates touching only the upper triangle, mirrored once at the
  // end: halves the accumulation work. Sketch rows are folded in ascending
  // row order — sorted keys, not map iteration order — so the result is
  // deterministic by construction; the contiguous [i, d) tail of each
  // update runs on the dispatched axpy kernel.
  std::vector<int64_t> touched;
  touched.reserve(sketched_rows.size());
  for (const auto& [row, values] : sketched_rows) {
    (void)values;
    touched.push_back(row);
  }
  std::sort(touched.begin(), touched.end());
  Matrix gram(d, d);
  for (const int64_t row : touched) {
    const std::vector<double>& values = sketched_rows.at(row);
    for (int64_t i = 0; i < d; ++i) {
      const double vi = values[static_cast<size_t>(i)];
      if (vi == 0.0) continue;
      simd::Axpy(vi, values.data() + i, gram.Row(i) + i, d - i);
    }
  }
  for (int64_t i = 0; i < d; ++i) {
    for (int64_t j = i + 1; j < d; ++j) gram.At(j, i) = gram.At(i, j);
  }
  return gram;
}

Result<DistortionReport> DistortionFromGramPair(const Matrix& gram_sketched,
                                                const Matrix& gram_u) {
  SOSE_ASSIGN_OR_RETURN(
      std::vector<double> eigenvalues,
      GeneralizedSymmetricEigenvalues(gram_sketched, gram_u));
  return FromEigenvalues(eigenvalues);
}

}  // namespace

Result<DistortionReport> SketchDistortionOnInstance(
    const SketchingMatrix& sketch, const HardInstance& instance) {
  if (sketch.cols() != instance.n) {
    return Status::InvalidArgument(
        "SketchDistortionOnInstance: sketch ambient dimension != instance n");
  }
  SOSE_FAULT_POINT("distortion/instance");
  SOSE_ASSIGN_OR_RETURN(Matrix gram_sketched,
                        SketchedGramOnInstance(sketch, instance));
  if (!instance.HasRowCollision()) {
    // U is an exact isometry; the ordinary eigenproblem suffices.
    SOSE_ASSIGN_OR_RETURN(std::vector<double> eigenvalues,
                          SymmetricEigenvalues(gram_sketched));
    return FromEigenvalues(eigenvalues);
  }
  return DistortionFromGramPair(gram_sketched, instance.GramU());
}

Result<DistortionReport> SketchDistortionOnIsometry(
    const SketchingMatrix& sketch, const Matrix& isometry) {
  if (sketch.cols() != isometry.rows()) {
    return Status::InvalidArgument(
        "SketchDistortionOnIsometry: sketch ambient dimension != basis rows");
  }
  SOSE_FAULT_POINT("distortion/isometry");
  SOSE_ASSIGN_OR_RETURN(Matrix sketched, sketch.ApplyDense(isometry));
  return DistortionOfSketchedIsometry(sketched);
}

}  // namespace sose
