#ifndef SOSE_OSE_DISTORTION_H_
#define SOSE_OSE_DISTORTION_H_

#include "core/matrix.h"
#include "core/status.h"
#include "hardinstance/hard_instance.h"
#include "sketch/sketch.h"

namespace sose {

/// Exact distortion of a sketch on a subspace: the extremes of
/// ‖ΠUx‖₂ / ‖Ux‖₂ over x ≠ 0.
struct DistortionReport {
  /// min and max of ‖ΠUx‖/‖Ux‖ (the square roots of the extreme
  /// generalized eigenvalues).
  double min_factor = 0.0;
  double max_factor = 0.0;

  /// The smallest ε for which Π is an ε-embedding of this subspace:
  /// max(1 − min_factor, max_factor − 1).
  double Epsilon() const;

  /// True iff every direction is preserved within 1 ± epsilon.
  bool WithinEpsilon(double epsilon) const;
};

/// Distortion from the sketched basis ΠU (m x d) when U is an exact
/// isometry: singular-value extremes of ΠU via the eigenvalues of its d x d
/// Gram matrix.
[[nodiscard]] Result<DistortionReport> DistortionOfSketchedIsometry(const Matrix& sketched);

/// Distortion for a general (full-column-rank) basis U: solves the
/// generalized symmetric eigenproblem (ΠU)ᵀ(ΠU) x = λ (UᵀU) x. Fails with
/// NumericalError if UᵀU is singular (U rank-deficient).
[[nodiscard]] Result<DistortionReport> DistortionOfSketchedBasis(const Matrix& sketched,
                                                                 const Matrix& gram_u);

/// End-to-end: applies `sketch` to the hard instance and reports distortion
/// relative to U's true geometry (collision-robust: uses GramU).
[[nodiscard]] Result<DistortionReport> SketchDistortionOnInstance(
    const SketchingMatrix& sketch, const HardInstance& instance);

/// End-to-end for a dense isometry basis.
[[nodiscard]] Result<DistortionReport> SketchDistortionOnIsometry(
    const SketchingMatrix& sketch, const Matrix& isometry);

}  // namespace sose

#endif  // SOSE_OSE_DISTORTION_H_
