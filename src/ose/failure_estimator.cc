#include "ose/failure_estimator.h"

namespace sose {

namespace {

FailureEstimate Summarize(int64_t trials, int64_t failures,
                          double epsilon_sum) {
  FailureEstimate estimate;
  estimate.trials = trials;
  estimate.failures = failures;
  estimate.rate =
      trials > 0 ? static_cast<double>(failures) / static_cast<double>(trials)
                 : 0.0;
  estimate.interval = WilsonInterval(failures, trials);
  estimate.mean_epsilon =
      trials > 0 ? epsilon_sum / static_cast<double>(trials) : 0.0;
  return estimate;
}

}  // namespace

Result<FailureEstimate> EstimateFailureProbability(
    const SketchFactory& sketch_factory, const InstanceSampler& sampler,
    const EstimatorOptions& options) {
  if (options.trials <= 0) {
    return Status::InvalidArgument("EstimateFailureProbability: trials <= 0");
  }
  int64_t failures = 0;
  double epsilon_sum = 0.0;
  for (int64_t t = 0; t < options.trials; ++t) {
    const uint64_t trial_seed = DeriveSeed(options.seed, static_cast<uint64_t>(t));
    SOSE_ASSIGN_OR_RETURN(std::unique_ptr<SketchingMatrix> sketch,
                          sketch_factory(DeriveSeed(trial_seed, 0)));
    Rng rng(DeriveSeed(trial_seed, 1));
    HardInstance instance = sampler(&rng);
    if (options.condition_on_no_collision) {
      int64_t redraws = 0;
      while (instance.HasRowCollision() && redraws < options.max_redraws) {
        instance = sampler(&rng);
        ++redraws;
      }
      if (instance.HasRowCollision()) {
        return Status::FailedPrecondition(
            "EstimateFailureProbability: persistent row collisions; "
            "n is too small relative to d/beta");
      }
    }
    SOSE_ASSIGN_OR_RETURN(DistortionReport report,
                          SketchDistortionOnInstance(*sketch, instance));
    epsilon_sum += report.Epsilon();
    if (!report.WithinEpsilon(options.epsilon)) ++failures;
  }
  return Summarize(options.trials, failures, epsilon_sum);
}

Result<FailureEstimate> EstimateFailureProbabilityDense(
    const SketchFactory& sketch_factory, const BasisSampler& sampler,
    const EstimatorOptions& options) {
  if (options.trials <= 0) {
    return Status::InvalidArgument(
        "EstimateFailureProbabilityDense: trials <= 0");
  }
  int64_t failures = 0;
  double epsilon_sum = 0.0;
  for (int64_t t = 0; t < options.trials; ++t) {
    const uint64_t trial_seed = DeriveSeed(options.seed, static_cast<uint64_t>(t));
    SOSE_ASSIGN_OR_RETURN(std::unique_ptr<SketchingMatrix> sketch,
                          sketch_factory(DeriveSeed(trial_seed, 0)));
    Rng rng(DeriveSeed(trial_seed, 1));
    SOSE_ASSIGN_OR_RETURN(Matrix basis, sampler(&rng));
    SOSE_ASSIGN_OR_RETURN(DistortionReport report,
                          SketchDistortionOnIsometry(*sketch, basis));
    epsilon_sum += report.Epsilon();
    if (!report.WithinEpsilon(options.epsilon)) ++failures;
  }
  return Summarize(options.trials, failures, epsilon_sum);
}

}  // namespace sose
