#include "ose/failure_estimator.h"

#include <cmath>

#include "core/metrics/metrics.h"

namespace sose {

namespace {

// Wilson z for full vs. deadline-truncated runs: partial estimates rest on
// fewer trials than requested, so they carry a wider (99%) interval.
constexpr double kFullRunZ = 1.96;
constexpr double kPartialRunZ = 2.576;

TrialRunnerOptions RunnerOptions(const EstimatorOptions& options) {
  TrialRunnerOptions runner;
  runner.trials = options.trials;
  runner.seed = options.seed;
  runner.max_retries = options.max_retries;
  runner.error_budget = options.error_budget;
  runner.deadline_seconds = options.deadline_seconds;
  runner.checkpoint_every = options.checkpoint_every;
  runner.checkpoint_path = options.checkpoint_path;
  runner.threads = options.threads;
  runner.workers = options.workers;
  runner.heartbeat_timeout_seconds = options.heartbeat_timeout_seconds;
  runner.max_shard_retries = options.max_shard_retries;
  runner.backoff_initial_seconds = options.backoff_initial_seconds;
  runner.backoff_multiplier = options.backoff_multiplier;
  runner.shards = options.shards;
  runner.transport = options.transport;
  runner.agent_endpoints = options.agent_endpoints;
  runner.trial_spec = options.trial_spec;
  return runner;
}

}  // namespace

FailureEstimate SummarizeTrialReport(const TrialRunReport& report) {
  FailureEstimate estimate;
  estimate.trials = report.requested;
  estimate.completed = report.completed;
  estimate.faulted = report.faulted;
  estimate.failures = report.failures;
  // All statistics are over *completed* trials: dividing by requested trials
  // would bias both the rate and mean_epsilon downward whenever trials were
  // quarantined or the deadline truncated the run.
  estimate.rate = report.completed > 0
                      ? static_cast<double>(report.failures) /
                            static_cast<double>(report.completed)
                      : 0.0;
  estimate.interval = WilsonInterval(report.failures, report.completed,
                                     report.partial ? kPartialRunZ : kFullRunZ);
  estimate.mean_epsilon =
      report.completed > 0
          ? report.epsilon_sum / static_cast<double>(report.completed)
          : 0.0;
  // An estimate resting on zero completed trials carries no evidence; flag
  // it partial even when the runner did not truncate (e.g. every trial
  // quarantined), so callers never mistake the 0.0 placeholders for data.
  estimate.partial = report.partial || report.completed == 0;
  estimate.taxonomy = report.taxonomy;
  return estimate;
}

Status ValidateEstimatorOptions(const EstimatorOptions& options) {
  if (options.trials <= 0) {
    return Status::InvalidArgument("EstimatorOptions: trials must be positive");
  }
  if (options.epsilon <= 0.0 || !std::isfinite(options.epsilon)) {
    return Status::InvalidArgument(
        "EstimatorOptions: epsilon must be finite and positive");
  }
  if (options.max_redraws <= 0) {
    return Status::InvalidArgument(
        "EstimatorOptions: max_redraws must be positive");
  }
  if (options.max_retries < 0) {
    return Status::InvalidArgument(
        "EstimatorOptions: max_retries must be >= 0");
  }
  if (options.error_budget < 0.0 || !std::isfinite(options.error_budget)) {
    return Status::InvalidArgument(
        "EstimatorOptions: error_budget must be finite and >= 0");
  }
  if (options.deadline_seconds < 0.0 ||
      !std::isfinite(options.deadline_seconds)) {
    return Status::InvalidArgument(
        "EstimatorOptions: deadline_seconds must be finite and >= 0");
  }
  if (options.checkpoint_every < 0) {
    return Status::InvalidArgument(
        "EstimatorOptions: checkpoint_every must be >= 0");
  }
  if (options.checkpoint_every > 0 && options.checkpoint_path.empty()) {
    return Status::InvalidArgument(
        "EstimatorOptions: checkpoint_every requires checkpoint_path");
  }
  if (options.threads < 0) {
    return Status::InvalidArgument(
        "EstimatorOptions: threads must be >= 0 (0 = hardware concurrency)");
  }
  return Status::OK();
}

TrialFn MakeFailureTrialFn(SketchFactory sketch_factory,
                           InstanceSampler sampler,
                           const FailureTrialPolicy& policy) {
  // By-value captures: the closure must stay valid when the caller's
  // factory/sampler go out of scope (the spec resolver returns it).
  return [sketch_factory = std::move(sketch_factory),
          sampler = std::move(sampler),
          policy](uint64_t trial_seed) -> Result<TrialOutcome> {
    std::unique_ptr<SketchingMatrix> sketch;
    {
      SOSE_SPAN("trial.sketch_draw");
      SOSE_ASSIGN_OR_RETURN(sketch, sketch_factory(DeriveSeed(trial_seed, 0)));
    }
    Rng rng(DeriveSeed(trial_seed, 1));
    HardInstance instance = [&] {
      SOSE_SPAN("trial.instance_draw");
      return sampler(&rng);
    }();
    if (policy.condition_on_no_collision) {
      SOSE_SPAN("trial.collision_redraws");
      int64_t redraws = 0;
      while (instance.HasRowCollision() && redraws < policy.max_redraws) {
        instance = sampler(&rng);
        ++redraws;
      }
      if (instance.HasRowCollision()) {
        return Status::FailedPrecondition(
            "EstimateFailureProbability: persistent row collisions; "
            "n is too small relative to d/beta");
      }
    }
    DistortionReport report;
    {
      SOSE_SPAN("trial.distortion");
      SOSE_ASSIGN_OR_RETURN(report,
                            SketchDistortionOnInstance(*sketch, instance));
    }
    // Check the factors, not just Epsilon(): std::max(x, NaN) is x, so a
    // NaN factor can hide behind a finite epsilon and masquerade as an
    // embedding failure instead of a solver fault.
    if (!std::isfinite(report.min_factor) ||
        !std::isfinite(report.max_factor)) {
      return Status::NumericalError(
          "EstimateFailureProbability: non-finite distortion");
    }
    const double epsilon = report.Epsilon();
    return TrialOutcome{epsilon, !report.WithinEpsilon(policy.epsilon)};
  };
}

Result<FailureEstimate> EstimateFailureProbability(
    const SketchFactory& sketch_factory, const InstanceSampler& sampler,
    const EstimatorOptions& options) {
  SOSE_RETURN_IF_ERROR(ValidateEstimatorOptions(options));
  FailureTrialPolicy policy;
  policy.epsilon = options.epsilon;
  policy.condition_on_no_collision = options.condition_on_no_collision;
  policy.max_redraws = options.max_redraws;
  const TrialFn trial = MakeFailureTrialFn(sketch_factory, sampler, policy);
  SOSE_ASSIGN_OR_RETURN(TrialRunReport report,
                        RunTrials(trial, RunnerOptions(options)));
  return SummarizeTrialReport(report);
}

Result<FailureEstimate> EstimateFailureProbabilityDense(
    const SketchFactory& sketch_factory, const BasisSampler& sampler,
    const EstimatorOptions& options) {
  SOSE_RETURN_IF_ERROR(ValidateEstimatorOptions(options));
  auto trial = [&](uint64_t trial_seed) -> Result<TrialOutcome> {
    std::unique_ptr<SketchingMatrix> sketch;
    {
      SOSE_SPAN("trial.sketch_draw");
      SOSE_ASSIGN_OR_RETURN(sketch, sketch_factory(DeriveSeed(trial_seed, 0)));
    }
    Rng rng(DeriveSeed(trial_seed, 1));
    Matrix basis;
    {
      SOSE_SPAN("trial.instance_draw");
      SOSE_ASSIGN_OR_RETURN(basis, sampler(&rng));
    }
    DistortionReport report;
    {
      SOSE_SPAN("trial.distortion");
      SOSE_ASSIGN_OR_RETURN(report,
                            SketchDistortionOnIsometry(*sketch, basis));
    }
    if (!std::isfinite(report.min_factor) ||
        !std::isfinite(report.max_factor)) {
      return Status::NumericalError(
          "EstimateFailureProbabilityDense: non-finite distortion");
    }
    const double epsilon = report.Epsilon();
    return TrialOutcome{epsilon, !report.WithinEpsilon(options.epsilon)};
  };
  SOSE_ASSIGN_OR_RETURN(TrialRunReport report,
                        RunTrials(trial, RunnerOptions(options)));
  return SummarizeTrialReport(report);
}

}  // namespace sose
