#ifndef SOSE_OSE_FAILURE_ESTIMATOR_H_
#define SOSE_OSE_FAILURE_ESTIMATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/random.h"
#include "core/stats.h"
#include "core/status.h"
#include "hardinstance/hard_instance.h"
#include "ose/distortion.h"
#include "ose/trial_runner.h"
#include "sketch/sketch.h"

namespace sose {

/// Builds a fresh sketch draw from a seed (one draw per Monte-Carlo trial).
using SketchFactory =
    std::function<Result<std::unique_ptr<SketchingMatrix>>(uint64_t seed)>;

/// Samples a hard instance U using the provided generator.
using InstanceSampler = std::function<HardInstance(Rng*)>;

/// Samples a dense isometry basis using the provided generator.
using BasisSampler = std::function<Result<Matrix>(Rng*)>;

/// Outcome of a Monte-Carlo estimate of Pr[Π fails to ε-embed U].
///
/// A trial whose linear-algebra kernel faults is *quarantined*, not counted
/// as an embedding failure: "the solver broke" and "Π failed to embed U" are
/// different events, and conflating them would bias exactly the probability
/// the paper's Theorem 8 lower bound is about. All statistics are over
/// completed trials only.
struct FailureEstimate {
  /// Trials requested.
  int64_t trials = 0;
  /// Trials that produced a distortion measurement.
  int64_t completed = 0;
  /// Trials quarantined after retries were exhausted.
  int64_t faulted = 0;
  /// Embedding failures among completed trials.
  int64_t failures = 0;
  /// Point estimate failures/completed.
  double rate = 0.0;
  /// Wilson interval for the rate over completed trials: 95% normally,
  /// widened to 99% when the estimate is partial.
  ConfidenceInterval interval;
  /// Mean observed distortion ε(Π, U) across completed trials (diagnostic).
  double mean_epsilon = 0.0;
  /// True iff a deadline cut the run short; statistics cover the completed
  /// prefix only.
  bool partial = false;
  /// Per-StatusCode tally of the quarantined errors.
  TrialErrorTaxonomy taxonomy;
};

/// Options controlling the estimator. Validated on entry; see
/// ValidateEstimatorOptions for the rules.
struct EstimatorOptions {
  int64_t trials = 200;
  /// Target distortion ε of the embedding property being tested.
  double epsilon = 0.1;
  /// Master seed; trial t uses independent derived streams.
  uint64_t seed = 1;
  /// If true, re-draw instances whose V has a row collision (the paper
  /// conditions on the complement of event B).
  bool condition_on_no_collision = true;
  /// Safety bound on collision re-draws per trial.
  int64_t max_redraws = 64;
  /// Resilience policy, forwarded to the trial runner (see trial_runner.h):
  /// per-trial retries with fresh seeds, the tolerated faulted/completed
  /// ratio, an optional wall-clock deadline, and optional checkpointing.
  int64_t max_retries = 2;
  double error_budget = 0.1;
  double deadline_seconds = 0.0;
  int64_t checkpoint_every = 0;
  std::string checkpoint_path;
  /// Worker threads for trial execution (see TrialRunnerOptions::threads).
  /// 1 = serial, 0 = hardware concurrency. The estimate is bit-identical
  /// for every value.
  int threads = 1;
  /// Worker processes and their coordinator policy (see
  /// TrialRunnerOptions::workers and docs/robustness.md). Mutually exclusive
  /// with threads > 1. The estimate is bit-identical for every value.
  int workers = 1;
  double heartbeat_timeout_seconds = 30.0;
  int64_t max_shard_retries = 2;
  double backoff_initial_seconds = 0.05;
  double backoff_multiplier = 2.0;
  /// Shard-count override, worker transport, agent endpoints, and the
  /// self-contained trial spec for remote agents — forwarded verbatim to the
  /// trial runner (see TrialRunnerOptions for semantics).
  int shards = 0;
  std::string transport = "fork";
  std::string agent_endpoints;
  std::string trial_spec;
};

/// The trial policy knobs that are independent of the samplers (subset of
/// EstimatorOptions, split out so the spec resolver can share it).
struct FailureTrialPolicy {
  double epsilon = 0.1;
  bool condition_on_no_collision = true;
  int64_t max_redraws = 64;
};

/// Builds the per-trial closure of EstimateFailureProbability: draw a sketch
/// from DeriveSeed(trial_seed, 0), sample an instance with
/// Rng(DeriveSeed(trial_seed, 1)) (redrawing row collisions under the
/// policy), measure distortion, and test the ε-embedding property. Exposed
/// because the trial-spec resolver (ose/trial_spec.h) must rebuild the
/// *identical* closure on a remote agent — one definition is the bitwise
/// cross-transport parity argument. Captures its arguments by value.
TrialFn MakeFailureTrialFn(SketchFactory sketch_factory,
                           InstanceSampler sampler,
                           const FailureTrialPolicy& policy);

/// Checks an EstimatorOptions for malformed values (non-positive trials or
/// epsilon, max_redraws <= 0, negative retry/budget/deadline fields, a
/// checkpoint cadence without a path). Returns kInvalidArgument with a
/// description of the first violation.
[[nodiscard]] Status ValidateEstimatorOptions(const EstimatorOptions& options);

/// Folds a TrialRunReport into the user-facing estimate. Total on every
/// input: completed == 0 yields 0.0 placeholders with partial == true and
/// the vacuous Wilson interval [0, 1] — never NaN — and completed == 1
/// yields the (wide but finite) single-sample interval. Exposed so the
/// degenerate deadline/quarantine shapes are testable without forcing the
/// runner into them.
FailureEstimate SummarizeTrialReport(const TrialRunReport& report);

/// Estimates Pr over (Π, U) of "Π is not an ε-subspace-embedding for U",
/// with U from the sparse hard-instance sampler. Each trial draws a fresh
/// sketch and a fresh instance. Per-trial errors are quarantined by the
/// trial runner rather than aborting the estimate.
[[nodiscard]] Result<FailureEstimate> EstimateFailureProbability(
    const SketchFactory& sketch_factory, const InstanceSampler& sampler,
    const EstimatorOptions& options);

/// Same, for dense isometry bases (used by the upper-bound experiments with
/// moderate ambient dimension).
[[nodiscard]] Result<FailureEstimate> EstimateFailureProbabilityDense(
    const SketchFactory& sketch_factory, const BasisSampler& sampler,
    const EstimatorOptions& options);

}  // namespace sose

#endif  // SOSE_OSE_FAILURE_ESTIMATOR_H_
