#ifndef SOSE_OSE_FAILURE_ESTIMATOR_H_
#define SOSE_OSE_FAILURE_ESTIMATOR_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "core/random.h"
#include "core/stats.h"
#include "core/status.h"
#include "hardinstance/hard_instance.h"
#include "ose/distortion.h"
#include "sketch/sketch.h"

namespace sose {

/// Builds a fresh sketch draw from a seed (one draw per Monte-Carlo trial).
using SketchFactory =
    std::function<Result<std::unique_ptr<SketchingMatrix>>(uint64_t seed)>;

/// Samples a hard instance U using the provided generator.
using InstanceSampler = std::function<HardInstance(Rng*)>;

/// Samples a dense isometry basis using the provided generator.
using BasisSampler = std::function<Result<Matrix>(Rng*)>;

/// Outcome of a Monte-Carlo estimate of Pr[Π fails to ε-embed U].
struct FailureEstimate {
  int64_t trials = 0;
  int64_t failures = 0;
  /// Point estimate failures/trials.
  double rate = 0.0;
  /// Wilson 95% interval for the rate.
  ConfidenceInterval interval;
  /// Mean observed distortion ε(Π, U) across trials (diagnostic).
  double mean_epsilon = 0.0;
};

/// Options controlling the estimator.
struct EstimatorOptions {
  int64_t trials = 200;
  /// Target distortion ε of the embedding property being tested.
  double epsilon = 0.1;
  /// Master seed; trial t uses independent derived streams.
  uint64_t seed = 1;
  /// If true, re-draw instances whose V has a row collision (the paper
  /// conditions on the complement of event B).
  bool condition_on_no_collision = true;
  /// Safety bound on collision re-draws per trial.
  int64_t max_redraws = 64;
};

/// Estimates Pr over (Π, U) of "Π is not an ε-subspace-embedding for U",
/// with U from the sparse hard-instance sampler. Each trial draws a fresh
/// sketch and a fresh instance.
Result<FailureEstimate> EstimateFailureProbability(
    const SketchFactory& sketch_factory, const InstanceSampler& sampler,
    const EstimatorOptions& options);

/// Same, for dense isometry bases (used by the upper-bound experiments with
/// moderate ambient dimension).
Result<FailureEstimate> EstimateFailureProbabilityDense(
    const SketchFactory& sketch_factory, const BasisSampler& sampler,
    const EstimatorOptions& options);

}  // namespace sose

#endif  // SOSE_OSE_FAILURE_ESTIMATOR_H_
