#include "ose/isometry.h"

#include <cmath>

#include "core/linalg_qr.h"

namespace sose {

Result<Matrix> RandomIsometry(int64_t n, int64_t d, Rng* rng) {
  if (n < d || d <= 0) {
    return Status::InvalidArgument("RandomIsometry: need n >= d >= 1");
  }
  SOSE_CHECK(rng != nullptr);
  Matrix gaussian(n, d);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d; ++j) gaussian.At(i, j) = rng->Gaussian();
  }
  return Orthonormalize(gaussian);
}

Result<Matrix> IdentityStackIsometry(int64_t n, int64_t d, int64_t copies) {
  if (copies <= 0 || d <= 0) {
    return Status::InvalidArgument(
        "IdentityStackIsometry: d and copies must be positive");
  }
  if (n < copies * d) {
    return Status::InvalidArgument("IdentityStackIsometry: need n >= copies*d");
  }
  Matrix u(n, d);
  const double scale = 1.0 / std::sqrt(static_cast<double>(copies));
  for (int64_t c = 0; c < copies; ++c) {
    for (int64_t j = 0; j < d; ++j) u.At(c * d + j, j) = scale;
  }
  return u;
}

Result<Matrix> SpikyIsometry(int64_t n, int64_t d, Rng* rng) {
  if (n <= d || d <= 0) {
    return Status::InvalidArgument("SpikyIsometry: need n > d >= 1");
  }
  SOSE_CHECK(rng != nullptr);
  // Random isometry on rows 1..n-1 for columns 1..d-1, plus e1 in column 0.
  SOSE_ASSIGN_OR_RETURN(Matrix tail, RandomIsometry(n - 1, d - 1, rng));
  Matrix u(n, d);
  u.At(0, 0) = 1.0;
  for (int64_t i = 1; i < n; ++i) {
    for (int64_t j = 1; j < d; ++j) u.At(i, j) = tail.At(i - 1, j - 1);
  }
  return u;
}

bool IsIsometry(const Matrix& u, double tol) {
  Matrix gram = Gram(u);
  for (int64_t i = 0; i < gram.rows(); ++i) gram.At(i, i) -= 1.0;
  return gram.MaxAbs() <= tol;
}

}  // namespace sose
