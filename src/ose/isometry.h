#ifndef SOSE_OSE_ISOMETRY_H_
#define SOSE_OSE_ISOMETRY_H_

#include <cstdint>

#include "core/matrix.h"
#include "core/random.h"
#include "core/status.h"

namespace sose {

/// A Haar-ish random n x d isometry: QR orthonormalization of an i.i.d.
/// Gaussian matrix. Dense — intended for the moderate-n upper-bound
/// experiments, not the n = Ω(d²/ε²δ) hard-instance regime (those use the
/// sparse `HardInstance` machinery instead).
[[nodiscard]] Result<Matrix> RandomIsometry(int64_t n, int64_t d, Rng* rng);

/// The normalized identity-stack isometry (I_d I_d ... I_d 0)ᵀ/√copies:
/// the deterministic skeleton of the paper's hard instances. Requires
/// n >= copies * d.
[[nodiscard]] Result<Matrix> IdentityStackIsometry(int64_t n, int64_t d, int64_t copies);

/// A "spiky" isometry whose first column is e₁ (a maximally coherent
/// direction) and whose remaining columns are a random isometry of the
/// complement; stresses row-sampling sketches. Requires n > d.
[[nodiscard]] Result<Matrix> SpikyIsometry(int64_t n, int64_t d, Rng* rng);

/// Verifies ‖UᵀU − I‖_max <= tol.
bool IsIsometry(const Matrix& u, double tol = 1e-9);

}  // namespace sose

#endif  // SOSE_OSE_ISOMETRY_H_
