#include "ose/profile.h"

#include <algorithm>

#include "ose/distortion.h"

namespace sose {

double DistortionProfile::FailureRateAt(double epsilon) const {
  if (sorted_distortions.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_distortions.begin(),
                                   sorted_distortions.end(), epsilon);
  return static_cast<double>(sorted_distortions.end() - it) /
         static_cast<double>(sorted_distortions.size());
}

Result<DistortionProfile> ProfileDistortion(const SketchFactory& factory,
                                            const InstanceSampler& sampler,
                                            const ProfileOptions& options) {
  if (options.trials <= 0) {
    return Status::InvalidArgument("ProfileDistortion: trials <= 0");
  }
  for (size_t i = 1; i < options.epsilons.size(); ++i) {
    if (options.epsilons[i] <= options.epsilons[i - 1]) {
      return Status::InvalidArgument(
          "ProfileDistortion: epsilons must be strictly ascending");
    }
  }
  DistortionProfile profile;
  profile.trials = options.trials;
  profile.epsilons = options.epsilons;
  profile.sorted_distortions.reserve(static_cast<size_t>(options.trials));
  double sum = 0.0;
  for (int64_t t = 0; t < options.trials; ++t) {
    const uint64_t trial_seed =
        DeriveSeed(options.seed, static_cast<uint64_t>(t));
    SOSE_ASSIGN_OR_RETURN(std::unique_ptr<SketchingMatrix> sketch,
                          factory(DeriveSeed(trial_seed, 0)));
    Rng rng(DeriveSeed(trial_seed, 1));
    HardInstance instance = sampler(&rng);
    if (options.condition_on_no_collision) {
      int64_t redraws = 0;
      while (instance.HasRowCollision() && redraws < 64) {
        instance = sampler(&rng);
        ++redraws;
      }
      if (instance.HasRowCollision()) {
        return Status::FailedPrecondition(
            "ProfileDistortion: persistent row collisions");
      }
    }
    SOSE_ASSIGN_OR_RETURN(DistortionReport report,
                          SketchDistortionOnInstance(*sketch, instance));
    profile.sorted_distortions.push_back(report.Epsilon());
    sum += report.Epsilon();
  }
  std::sort(profile.sorted_distortions.begin(),
            profile.sorted_distortions.end());
  const auto quantile = [&profile](double q) {
    const double pos =
        q * static_cast<double>(profile.sorted_distortions.size() - 1);
    const size_t lower = static_cast<size_t>(pos);
    const double frac = pos - static_cast<double>(lower);
    if (lower + 1 >= profile.sorted_distortions.size()) {
      return profile.sorted_distortions.back();
    }
    return profile.sorted_distortions[lower] * (1.0 - frac) +
           profile.sorted_distortions[lower + 1] * frac;
  };
  profile.mean = sum / static_cast<double>(options.trials);
  profile.p50 = quantile(0.5);
  profile.p90 = quantile(0.9);
  profile.p99 = quantile(0.99);
  profile.max = profile.sorted_distortions.back();
  for (double epsilon : options.epsilons) {
    profile.failure_rates.push_back(profile.FailureRateAt(epsilon));
  }
  return profile;
}

}  // namespace sose
