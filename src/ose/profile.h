#ifndef SOSE_OSE_PROFILE_H_
#define SOSE_OSE_PROFILE_H_

#include <cstdint>
#include <vector>

#include "core/status.h"
#include "ose/failure_estimator.h"

namespace sose {

/// A full Monte-Carlo characterization of a sketch's distortion on a
/// distribution of subspaces: quantiles of ε(Π, U) over independent
/// (sketch, instance) draws, plus the failure probability at several ε
/// thresholds at once — the whole (ε, δ) trade-off curve of Definition 1
/// from one set of samples, rather than one point per estimator call.
struct DistortionProfile {
  int64_t trials = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  /// The ε thresholds requested, ascending.
  std::vector<double> epsilons;
  /// failure_rates[i] = Pr[ε(Π, U) > epsilons[i]], aligned with `epsilons`.
  std::vector<double> failure_rates;
  /// The raw sorted distortions (size == trials), for custom post-hoc use.
  std::vector<double> sorted_distortions;

  /// Interpolated failure probability at an arbitrary ε: the fraction of
  /// sampled distortions exceeding it.
  double FailureRateAt(double epsilon) const;
};

/// Options for ProfileDistortion.
struct ProfileOptions {
  int64_t trials = 300;
  /// Thresholds at which failure rates are reported; must be ascending.
  std::vector<double> epsilons = {0.05, 0.1, 0.25, 0.5};
  uint64_t seed = 1;
  bool condition_on_no_collision = true;
};

/// Samples ε(Π, U) over `trials` fresh (sketch, instance) draws and
/// summarizes. This is the "one figure per sketch" view used by the
/// profile experiment; the failure estimator remains the cheaper choice
/// when only a single (ε, δ) point is needed.
[[nodiscard]] Result<DistortionProfile> ProfileDistortion(const SketchFactory& factory,
                                                          const InstanceSampler& sampler,
                                                          const ProfileOptions& options);

}  // namespace sose

#endif  // SOSE_OSE_PROFILE_H_
