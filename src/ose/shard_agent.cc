#include "ose/shard_agent.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "core/csv.h"
#include "core/fault.h"
#include "core/metrics/metrics.h"
#include "ose/trial_fold.h"
#include "ose/trial_spec.h"

namespace sose {

namespace {

using internal_trial::ParseWireInt;
using internal_trial::ParseWireUInt;

// Chaos sites, one Status-returning shim per failure mode so
// SOSE_FAULT_POINT can be used from void handlers. All three are registered
// in docs/robustness.md.
Status AgentDropConnSite() {
  SOSE_FAULT_POINT("shard_agent/drop-conn");
  return Status::OK();
}

Status AgentCrashSite() {
  SOSE_FAULT_POINT("shard_agent/crash");
  return Status::OK();
}

Status AgentHangSite() {
  SOSE_FAULT_POINT("shard_agent/hang");
  return Status::OK();
}

}  // namespace

std::string EncodeAgentFormatRecord() {
  return FormatCsvRow({"format", kShardAgentFormat});
}

std::string EncodeAgentDispatchRecord(const ShardWorkerConfig& config,
                                      const std::string& trial_spec) {
  // The trial spec — itself CSV — travels as one quoted cell; FormatCsvRow's
  // RFC 4180 escaping round-trips it exactly.
  return FormatCsvRow(
      {"dispatch", std::to_string(config.shard_index),
       std::to_string(config.shard_begin), std::to_string(config.shard_end),
       std::to_string(config.resume_from), std::to_string(config.generation),
       std::to_string(config.master_seed),
       std::to_string(config.max_retries), trial_spec});
}

Result<AgentDispatchRequest> DecodeAgentDispatchRecord(
    const std::string& line) {
  SOSE_ASSIGN_OR_RETURN(std::vector<std::string> cells, ParseCsvRecord(line));
  auto malformed = [&line](const char* why) {
    return Status::InvalidArgument(
        std::string("DecodeAgentDispatchRecord: ") + why + " in record '" +
        line + "'");
  };
  AgentDispatchRequest request;
  int64_t shard_index = 0;
  if (cells.size() != 9 || cells[0] != "dispatch" ||
      !ParseWireInt(cells[1], &shard_index) ||
      !ParseWireInt(cells[2], &request.config.shard_begin) ||
      !ParseWireInt(cells[3], &request.config.shard_end) ||
      !ParseWireInt(cells[4], &request.config.resume_from) ||
      !ParseWireInt(cells[5], &request.config.generation) ||
      !ParseWireUInt(cells[6], &request.config.master_seed) ||
      !ParseWireInt(cells[7], &request.config.max_retries)) {
    return malformed("dispatch arity or field");
  }
  request.config.shard_index = static_cast<int>(shard_index);
  request.trial_spec = cells[8];
  return request;
}

Result<std::unique_ptr<ShardAgent>> ShardAgent::Create(
    const ShardAgentOptions& options) {
  if (options.unix_path.empty() && options.tcp_port < 0) {
    return Status::InvalidArgument(
        "ShardAgent: at least one of unix_path / tcp_port is required");
  }
  std::unique_ptr<ShardAgent> agent(new ShardAgent());
  if (!options.unix_path.empty()) {
    SOSE_ASSIGN_OR_RETURN(agent->unix_listener_,
                          net::Listener::ListenUnix(options.unix_path));
    agent->unix_path_ = agent->unix_listener_.unix_path();
  }
  if (options.tcp_port >= 0) {
    SOSE_ASSIGN_OR_RETURN(agent->tcp_listener_,
                          net::Listener::ListenTcp(options.tcp_port));
    agent->tcp_port_ = agent->tcp_listener_.port();
  }
  return agent;
}

void ShardAgent::Teardown(Connection& conn) {
  if (conn.worker.has_value()) {
    // Best effort: Kill tolerates an already-dead child, and the blocking
    // Wait directly after cannot hang because SIGKILL is not maskable.
    (void)conn.worker->Kill();
    if (!conn.worker->reaped()) (void)conn.worker->Wait();
    conn.worker.reset();
  }
  conn.pending.clear();
  conn.socket.Close();
}

void ShardAgent::ReadRequest(Connection& conn) {
  Result<net::ReadChunk> read = conn.socket.ReadAvailable(&conn.request_buffer);
  if (!read.ok()) {
    Teardown(conn);
    return;
  }
  if (!conn.dispatched) {
    for (const std::string& line :
         ExtractCompleteCsvRecords(&conn.request_buffer)) {
      if (conn.dispatched) {
        // The handshake is exactly two records; anything more is a protocol
        // violation and the peer is cut off.
        Teardown(conn);
        return;
      }
      if (!conn.saw_format) {
        Result<std::vector<std::string>> cells = ParseCsvRecord(line);
        if (!cells.ok() || cells.value().size() != 2 ||
            cells.value()[0] != "format" ||
            cells.value()[1] != kShardAgentFormat) {
          Teardown(conn);
          return;
        }
        conn.saw_format = true;
        continue;
      }
      Result<AgentDispatchRequest> request = DecodeAgentDispatchRecord(line);
      if (!request.ok()) {
        std::fprintf(stderr, "sose_shard_agent: %s\n",
                     request.status().ToString().c_str());
        Teardown(conn);
        return;
      }
      // Chaos: drop the connection right after parsing the dispatch — the
      // coordinator sees a clean EOF before any stream bytes and walks the
      // re-dispatch ladder.
      if (!AgentDropConnSite().ok()) {
        SOSE_COUNTER_INC("shard_agent.chaos_drops");
        Teardown(conn);
        return;
      }
      Result<TrialFn> trial = ResolveTrialSpec(request.value().trial_spec);
      if (!trial.ok()) {
        // An unresolvable spec is not the agent's failure to serve: report
        // it and close, so the coordinator escalates through its ladder and
        // ultimately surfaces the quarantine reason.
        std::fprintf(stderr, "sose_shard_agent: %s\n",
                     trial.status().ToString().c_str());
        SOSE_COUNTER_INC("shard_agent.spec_rejects");
        Teardown(conn);
        return;
      }
      // The worker child is forked with the resolved closure, then streams
      // the exact bytes RunShardWorker always streams; the agent only pumps.
      const ShardWorkerConfig config = request.value().config;
      const TrialFn fn = std::move(trial).value();
      Result<Subprocess> spawned =
          Subprocess::Spawn([fn, config](int write_fd) {
            return RunShardWorker(fn, config, write_fd);
          });
      if (!spawned.ok()) {
        std::fprintf(stderr, "sose_shard_agent: %s\n",
                     spawned.status().ToString().c_str());
        Teardown(conn);
        return;
      }
      conn.worker.emplace(std::move(spawned).value());
      conn.dispatched = true;
      SOSE_COUNTER_INC("shard_agent.dispatches");
    }
  }
  if (read.value().eof) {
    // The coordinator hung up (re-dispatch, deadline, or death): the worker
    // has no audience, so it dies with the connection.
    Teardown(conn);
  }
}

void ShardAgent::PumpWorker(Connection& conn) {
  if (!conn.worker.has_value() || conn.wedged || !conn.socket.valid()) return;
  if (!conn.worker_eof) {
    Result<PipeRead> read = conn.worker->ReadAvailable(&conn.pending);
    if (!read.ok()) {
      Teardown(conn);
      return;
    }
    if (read.value().bytes > 0) {
      // Chaos: kill the worker and drop the connection mid-stream — the
      // coordinator is left a torn prefix, exercising the buffered-tail and
      // re-dispatch paths end to end over the socket.
      if (!AgentCrashSite().ok()) {
        SOSE_COUNTER_INC("shard_agent.chaos_crashes");
        Teardown(conn);
        return;
      }
      // Chaos: wedge the connection — stop forwarding without closing, so
      // only the coordinator's heartbeat timeout can end the dispatch.
      if (!AgentHangSite().ok()) {
        SOSE_COUNTER_INC("shard_agent.chaos_hangs");
        conn.wedged = true;
        return;
      }
    }
    if (read.value().eof) conn.worker_eof = true;
  }
  if (!conn.pending.empty()) {
    Result<int64_t> wrote = conn.socket.WriteSome(conn.pending);
    if (!wrote.ok()) {
      Teardown(conn);
      return;
    }
    if (wrote.value() > 0) {
      conn.pending.erase(0, static_cast<size_t>(wrote.value()));
    }
  }
  if (conn.worker_eof && conn.pending.empty()) {
    // Worker finished and every byte reached the socket: reap (cannot hang —
    // eof implies the child closed its pipe end, i.e. exited) and close so
    // the coordinator sees a clean EOF after the full stream.
    if (!conn.worker->reaped()) (void)conn.worker->Wait();
    conn.worker.reset();
    conn.socket.Close();
  }
}

Status ShardAgent::PollOnce(double timeout_seconds) {
  enum class RefKind { kUnixListener, kTcpListener, kConnSocket };
  struct Ref {
    RefKind kind;
    size_t conn = 0;
  };
  std::vector<net::PollEntry> entries;
  std::vector<Ref> refs;
  if (unix_listener_.fd() >= 0) {
    entries.push_back({unix_listener_.fd(), true, false});
    refs.push_back({RefKind::kUnixListener});
  }
  if (tcp_listener_.fd() >= 0) {
    entries.push_back({tcp_listener_.fd(), true, false});
    refs.push_back({RefKind::kTcpListener});
  }
  for (size_t i = 0; i < connections_.size(); ++i) {
    Connection& conn = *connections_[i];
    if (!conn.socket.valid()) continue;
    // Read interest is unconditional: pre-dispatch it carries the handshake,
    // post-dispatch it detects the coordinator hanging up. Write interest
    // only while backpressured bytes are pending.
    entries.push_back(
        {conn.socket.fd(), true, !conn.pending.empty() && !conn.wedged});
    refs.push_back({RefKind::kConnSocket, i});
    if (conn.worker.has_value() && !conn.worker_eof && !conn.wedged) {
      entries.push_back({conn.worker->read_fd(), true, false});
      // Worker pipes need no handler mapping: PumpWorker below runs for
      // every live connection each round; the entry only shapes the wakeup.
      refs.push_back({RefKind::kConnSocket, i});
    }
  }
  SOSE_ASSIGN_OR_RETURN(const std::vector<net::PollReady> ready,
                        net::PollFds(entries, timeout_seconds));

  for (size_t e = 0; e < refs.size(); ++e) {
    if (refs[e].kind == RefKind::kConnSocket) continue;
    if (!ready[e].readable && !ready[e].error) continue;
    net::Listener& listener = refs[e].kind == RefKind::kUnixListener
                                  ? unix_listener_
                                  : tcp_listener_;
    while (true) {
      SOSE_ASSIGN_OR_RETURN(std::optional<net::Socket> accepted,
                            listener.Accept());
      if (!accepted.has_value()) break;
      auto conn = std::make_unique<Connection>();
      conn->socket = std::move(accepted).value();
      connections_.push_back(std::move(conn));
      SOSE_COUNTER_INC("shard_agent.connections");
    }
  }

  // Socket-readable connections first (they may dispatch a worker), then one
  // pump round for every live connection — reads and writes are all
  // non-blocking, so pumping without a readiness check is cheap and keeps
  // the handler logic independent of poll bookkeeping.
  for (size_t e = 0; e < refs.size(); ++e) {
    if (refs[e].kind != RefKind::kConnSocket) continue;
    if (!ready[e].readable && !ready[e].error) continue;
    Connection& conn = *connections_[refs[e].conn];
    if (conn.socket.valid() && entries[e].fd == conn.socket.fd()) {
      ReadRequest(conn);
    }
  }
  for (const std::unique_ptr<Connection>& conn : connections_) {
    if (conn->socket.valid()) PumpWorker(*conn);
  }
  std::erase_if(connections_, [](const std::unique_ptr<Connection>& conn) {
    return !conn->socket.valid();
  });
  return Status::OK();
}

Status ShardAgent::Serve() {
  while (true) {
    SOSE_RETURN_IF_ERROR(PollOnce(0.25));
  }
}

}  // namespace sose
