#ifndef SOSE_OSE_SHARD_AGENT_H_
#define SOSE_OSE_SHARD_AGENT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/net/net.h"
#include "core/status.h"
#include "core/subprocess.h"
#include "ose/shard_worker.h"

/// The server half of the socket shard transport (shard_transport.h): a
/// long-lived per-host daemon (`sose_shard_agent`) that accepts dispatch
/// requests from a remote coordinator and streams sose-shard-stream-v1
/// records back over the same connection.
///
/// Handshake (`sose-shard-agent-v1`, CSV records, one per line, client →
/// agent):
///
///   format,sose-shard-agent-v1
///   dispatch,<index>,<begin>,<end>,<resume_from>,<generation>,<seed>,
///            <max_retries>,<trial-spec>
///
/// The trial spec (trial_spec.h) travels as one quoted CSV cell; the agent
/// resolves it to the same TrialFn the coordinator's in-process path would
/// run, forks a shard worker (RunShardWorker — the identical worker loop the
/// fork transport uses), and pumps the child's pipe bytes verbatim into the
/// socket. Everything after the handshake is byte-for-byte the fork
/// transport's stream, which is what keeps the folded report bitwise
/// identical across transports.
///
/// Failure model: the agent never retries or interprets records — that is
/// the coordinator's job. A connection that drops (either side) kills the
/// attached worker; an unresolvable spec closes the connection, which the
/// coordinator sees as a worker failure and escalates through backoff and
/// quarantine. Chaos sites `shard_agent/{crash,hang,drop-conn}` inject those
/// faults deterministically (docs/robustness.md).

namespace sose {

/// Agent handshake schema version; bumped on incompatible changes.
inline constexpr const char* kShardAgentFormat = "sose-shard-agent-v1";

/// Encoders for the handshake (each one newline-terminated CSV record).
std::string EncodeAgentFormatRecord();
std::string EncodeAgentDispatchRecord(const ShardWorkerConfig& config,
                                      const std::string& trial_spec);

/// A decoded dispatch request.
struct AgentDispatchRequest {
  ShardWorkerConfig config;
  std::string trial_spec;
};

/// Decodes one framed dispatch record (no trailing newline).
[[nodiscard]] Result<AgentDispatchRequest> DecodeAgentDispatchRecord(
    const std::string& line);

struct ShardAgentOptions {
  /// Listen on a Unix-domain socket at this path (empty = no Unix listener).
  std::string unix_path;
  /// Listen on TCP 127.0.0.1:port (0 = ephemeral, -1 = no TCP listener).
  int tcp_port = -1;
};

/// The agent: a single-threaded poll loop multiplexing the listener, every
/// coordinator connection, and every attached worker pipe. One worker
/// subprocess per connection; backpressure is a per-connection pending
/// buffer (the worker pipe is only drained into memory, never dropped).
class ShardAgent {
 public:
  [[nodiscard]] static Result<std::unique_ptr<ShardAgent>> Create(
      const ShardAgentOptions& options);

  ShardAgent(const ShardAgent&) = delete;
  ShardAgent& operator=(const ShardAgent&) = delete;

  /// The bound addresses (for `ready` lines and tests).
  const std::string& unix_path() const { return unix_path_; }
  int tcp_port() const { return tcp_port_; }

  /// One bounded supervision round: waits up to `timeout_seconds` for
  /// readiness, then accepts, reads requests, forks workers, and pumps
  /// worker bytes to coordinators. Only listener-level failures surface as a
  /// Status; per-connection failures tear down that connection.
  [[nodiscard]] Status PollOnce(double timeout_seconds);

  /// Serves until a listener-level error (i.e. normally forever — the
  /// process is stopped by signal).
  [[nodiscard]] Status Serve();

 private:
  /// One coordinator connection and its (eventual) worker.
  struct Connection {
    net::Socket socket;
    std::string request_buffer;  ///< Handshake bytes until dispatched.
    bool saw_format = false;
    bool dispatched = false;
    std::optional<Subprocess> worker;
    std::string pending;  ///< Worker bytes not yet accepted by the socket.
    bool worker_eof = false;
    /// Chaos `shard_agent/hang` fired: stop pumping, keep the connection
    /// open so the coordinator's heartbeat timeout is what ends it.
    bool wedged = false;
  };

  ShardAgent() = default;

  /// Handles readable handshake bytes; may fork the worker.
  void ReadRequest(Connection& conn);
  /// Drains the worker pipe into `pending` and flushes it to the socket.
  void PumpWorker(Connection& conn);
  /// Kills the worker (if any) and closes the connection.
  void Teardown(Connection& conn);

  net::Listener unix_listener_;
  net::Listener tcp_listener_;
  std::string unix_path_;
  int tcp_port_ = 0;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace sose

#endif  // SOSE_OSE_SHARD_AGENT_H_
