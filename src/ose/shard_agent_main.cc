// sose_shard_agent: the per-host worker agent of the socket shard transport
// (docs/robustness.md, "Transports").
//
// Usage:
//   sose_shard_agent --unix=/tmp/sose_agent.sock     Unix-domain listener
//   sose_shard_agent --port=0                        TCP listener (0 =
//                                                    ephemeral; printed)
//   sose_shard_agent --chaos=shard_agent/crash@4     arm deterministic
//                                                    fault sites
//
// The agent prints one `ready` line (CSV: ready,<unix_path>,<tcp_port>) once
// listening, then serves dispatch requests until killed. Coordinators reach
// it with --transport=socket --agents=unix:/path|tcp:host:port.

#include <cstdio>
#include <memory>
#include <string>

#include "core/fault.h"
#include "core/flags.h"
#include "ose/shard_agent.h"

// Every dispatch request carries its own master seed, so each shard's trial
// stream is replayable from the coordinator's arguments.
int main(int argc, char** argv) {  // sose-lint: allow(seed-purity)
  sose::FlagParser flags(argc, argv);
  sose::ShardAgentOptions options;
  options.unix_path = flags.GetString("unix", "");
  options.tcp_port = static_cast<int>(flags.GetInt("port", -1));

  // `--chaos=site@N,site@every` arms the shard_agent/* fault sites for the
  // whole serve loop. Single-shot rules (site@N) fire once across the
  // agent's lifetime — one injected fault that the coordinator's re-dispatch
  // must recover from with byte-identical output, which is what the CI
  // socket-chaos job pins.
  std::unique_ptr<sose::ScopedFaultInjection> chaos;
  const std::string chaos_spec = flags.GetString("chaos", "");
  if (!chaos_spec.empty()) {
    auto plan = sose::ParseFaultPlan(chaos_spec);
    plan.status().CheckOK();
    chaos = std::make_unique<sose::ScopedFaultInjection>(
        std::move(plan).value());
  }

  auto agent = sose::ShardAgent::Create(options);
  if (!agent.ok()) {
    std::fprintf(stderr, "sose_shard_agent: %s\n",
                 agent.status().ToString().c_str());
    return 1;
  }
  std::printf("ready,%s,%d\n", agent.value()->unix_path().c_str(),
              agent.value()->tcp_port());
  std::fflush(stdout);
  const sose::Status status = agent.value()->Serve();
  if (!status.ok()) {
    std::fprintf(stderr, "sose_shard_agent: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
