#include "ose/shard_coordinator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/csv.h"
#include "core/metrics/metrics.h"
#include "core/parallel/sharded_range.h"
#include "core/stopwatch.h"
#include "core/subprocess.h"
#include "ose/shard_transport.h"
#include "ose/shard_worker.h"
#include "ose/trial_fold.h"
#include "ose/trial_spec.h"

namespace sose {

namespace {

using internal_trial::FoldOutcome;
using internal_trial::TrialAttemptResult;

/// Per-shard supervision state. One shard = one contiguous trial range owned
/// by at most one live worker at a time.
struct ShardState {
  enum class Phase {
    kIdle,         ///< Waiting for its first dispatch (or for a free worker).
    kRunning,      ///< A worker is (presumed) executing it.
    kBackoff,      ///< Worker failed; re-dispatch after backoff_until.
    kFinished,     ///< Every trial record received.
    kQuarantined,  ///< Retry budget exhausted; remaining trials faulted.
  };

  int index = 0;
  int64_t begin = 0;
  int64_t end = 0;  ///< Exclusive.
  /// First trial whose record has not been received — the durable progress
  /// mark a re-dispatched worker resumes from.
  int64_t next_expected = 0;
  Phase phase = Phase::kIdle;
  std::unique_ptr<ShardStream> stream;
  std::string buffer;       ///< Torn tail of the wire stream.
  int64_t dispatches = 0;   ///< Lifetime dispatch count (1 = initial).
  double backoff_until = 0.0;
  double last_activity = 0.0;  ///< Stopwatch time of the last received byte.
  bool saw_format = false;
  bool saw_preamble = false;
  bool saw_done = false;
};

/// The coordinator run: options plus every piece of mutable supervision
/// state, so the helpers below are methods instead of ten-argument
/// functions.
class Coordinator {
 public:
  Coordinator(ShardTransport* transport, const TrialRunnerOptions& options)
      : transport_(transport), options_(options) {}

  Result<TrialRunReport> Run();

 private:
  void DispatchShard(ShardState& shard, double now);
  void Drain(ShardState& shard, double now);
  /// Applies one decoded record to `shard`; returns false (after initiating
  /// failure handling) on a protocol violation.
  bool Apply(ShardState& shard, const std::string& line, double now);
  /// Tears the stream down (kill + reap / close), then schedules a
  /// re-dispatch or quarantines the shard.
  void Fail(ShardState& shard, const std::string& reason, double now);
  void Quarantine(ShardState& shard, const std::string& reason);
  double PollTimeout(double now) const;

  ShardTransport* transport_;
  const TrialRunnerOptions& options_;
  std::vector<ShardState> shards_;
  std::vector<TrialAttemptResult> records_;
  std::vector<char> ready_;
  int64_t start_ = 0;
  int64_t total_ = 0;
};

void Coordinator::DispatchShard(ShardState& shard, double now) {
  ShardWorkerConfig config;
  config.shard_index = shard.index;
  config.shard_begin = shard.begin;
  config.shard_end = shard.end;
  config.resume_from = shard.next_expected;
  config.generation = shard.dispatches;  // 0-based: pre-increment value.
  config.master_seed = options_.seed;
  config.max_retries = options_.max_retries;
  ++shard.dispatches;
  shard.buffer.clear();
  shard.saw_format = shard.saw_preamble = shard.saw_done = false;
  SOSE_COUNTER_INC("shard.dispatched");
  if (shard.dispatches > 1) SOSE_COUNTER_INC("shard.redispatched");
  Result<std::unique_ptr<ShardStream>> stream = transport_->Dispatch(config);
  if (!stream.ok()) {
    // Dispatch failure consumes a shard retry like any other worker failure,
    // so a machine that cannot fork — or an unreachable agent — quarantines
    // instead of looping forever.
    Fail(shard, "dispatch failed: " + stream.status().message(), now);
    return;
  }
  shard.stream = std::move(stream).value();
  shard.phase = ShardState::Phase::kRunning;
  shard.last_activity = now;
}

bool Coordinator::Apply(ShardState& shard, const std::string& line,
                        double now) {
  auto violation = [&](const std::string& why) {
    SOSE_COUNTER_INC("shard.protocol_errors");
    Fail(shard, "protocol violation: " + why, now);
    return false;
  };
  Result<ShardWireRecord> decoded = DecodeShardWireRecord(line);
  if (!decoded.ok()) return violation(decoded.status().message());
  const ShardWireRecord& record = decoded.value();
  if (shard.saw_done) return violation("record after done");
  switch (record.kind) {
    case ShardWireRecord::Kind::kFormat:
      if (shard.saw_format) return violation("duplicate format record");
      shard.saw_format = true;
      return true;
    case ShardWireRecord::Kind::kShard:
      if (!shard.saw_format || shard.saw_preamble) {
        return violation("misplaced shard preamble");
      }
      // The generation check is what discards a stale stream: records from a
      // worker of a previous dispatch (e.g. buffered in an agent connection
      // that outlived its re-dispatch) fail to echo the current generation
      // and never reach the fold.
      if (record.shard_index != shard.index ||
          record.shard_begin != shard.begin ||
          record.shard_end != shard.end ||
          record.resume_from != shard.next_expected ||
          record.generation != shard.dispatches - 1) {
        return violation("shard preamble does not match dispatch");
      }
      shard.saw_preamble = true;
      return true;
    case ShardWireRecord::Kind::kHeartbeat:
      if (!shard.saw_preamble || record.trial != shard.next_expected) {
        return violation("heartbeat out of sequence");
      }
      return true;
    case ShardWireRecord::Kind::kOk:
    case ShardWireRecord::Kind::kFault:
      if (!shard.saw_preamble || record.trial != shard.next_expected) {
        return violation("trial record out of sequence");
      }
      records_[static_cast<size_t>(record.trial)] = record.record;
      ready_[static_cast<size_t>(record.trial)] = 1;
      ++shard.next_expected;
      SOSE_COUNTER_INC("shard.records");
      return true;
    case ShardWireRecord::Kind::kDone:
      if (!shard.saw_preamble || record.trial != shard.end ||
          shard.next_expected != shard.end) {
        return violation("premature done record");
      }
      shard.saw_done = true;
      return true;
  }
  return violation("unhandled record kind");
}

void Coordinator::Drain(ShardState& shard, double now) {
  Result<PipeRead> read = shard.stream->ReadAvailable(&shard.buffer);
  if (!read.ok()) {
    Fail(shard, "stream read failed: " + read.status().message(), now);
    return;
  }
  if (read.value().bytes > 0) shard.last_activity = now;
  // Only complete newline-framed records are parsed; a tail torn by a dying
  // worker stays in the buffer and is discarded with it on re-dispatch —
  // the same rule torn checkpoint files get.
  for (const std::string& line : ExtractCompleteCsvRecords(&shard.buffer)) {
    if (!Apply(shard, line, now)) return;  // Failure handling already ran.
  }
  if (read.value().eof) {
    // The stream is over. Either the shard is fully delivered (the `done`
    // record is corroborating, not load-bearing: a worker killed between its
    // last trial record and `done` still finished its work), or the worker
    // died early.
    if (shard.next_expected == shard.end) {
      (void)shard.stream->Finish();
      shard.stream.reset();
      shard.phase = ShardState::Phase::kFinished;
      return;
    }
    Fail(shard,
         "worker stream ended before shard completion" +
             shard.stream->Finish(),
         now);
  }
}

void Coordinator::Fail(ShardState& shard, const std::string& reason,
                       double now) {
  if (shard.stream != nullptr) {
    // Finish is idempotent, so the Drain premature-EOF path (which already
    // called it for the termination description) tears down cleanly too.
    (void)shard.stream->Finish();
    shard.stream.reset();
  }
  shard.buffer.clear();
  SOSE_COUNTER_INC("shard.worker_failures");
  const int64_t redispatches_used = shard.dispatches - 1;
  if (redispatches_used >= options_.max_shard_retries) {
    Quarantine(shard, reason);
    return;
  }
  // Exponential backoff before the next dispatch: the r-th re-dispatch waits
  // initial * multiplier^(r-1).
  shard.phase = ShardState::Phase::kBackoff;
  shard.backoff_until =
      now + options_.backoff_initial_seconds *
                std::pow(options_.backoff_multiplier,
                         static_cast<double>(redispatches_used));
}

void Coordinator::Quarantine(ShardState& shard, const std::string& reason) {
  shard.phase = ShardState::Phase::kQuarantined;
  SOSE_COUNTER_INC("shard.quarantined");
  SOSE_COUNTER_ADD("shard.trials_quarantined",
                   shard.end - shard.next_expected);
  // The lost trials become ordinary faulted records, folded in trial order
  // like any worker-reported fault, so they land in the TrialErrorTaxonomy
  // and are charged against the error budget.
  TrialAttemptResult faulted;
  faulted.status = Status::Internal(
      "shard " + std::to_string(shard.index) + " quarantined after " +
      std::to_string(shard.dispatches) + " worker failures: " + reason);
  for (int64_t t = shard.next_expected; t < shard.end; ++t) {
    records_[static_cast<size_t>(t)] = faulted;
    ready_[static_cast<size_t>(t)] = 1;
  }
  shard.next_expected = shard.end;
}

double Coordinator::PollTimeout(double now) const {
  // Wake for whichever comes first: heartbeat expiry of a running shard,
  // backoff expiry of a failed one, or the global deadline — capped by a
  // base tick so supervision stays responsive.
  double timeout = 0.25;
  for (const ShardState& shard : shards_) {
    if (shard.phase == ShardState::Phase::kRunning) {
      const double slack =
          options_.heartbeat_timeout_seconds - (now - shard.last_activity);
      timeout = std::min(timeout, std::max(slack, 0.0));
    } else if (shard.phase == ShardState::Phase::kBackoff) {
      timeout = std::min(timeout, std::max(shard.backoff_until - now, 0.0));
    }
  }
  if (options_.deadline_seconds > 0.0) {
    timeout =
        std::min(timeout, std::max(options_.deadline_seconds - now, 0.0));
  }
  return timeout;
}

Result<TrialRunReport> Coordinator::Run() {
  SOSE_RETURN_IF_ERROR(internal_trial::ValidateRunnerOptions(options_));
  SOSE_SPAN("shard.coordinate");

  TrialRunReport report;
  report.requested = options_.trials;
  const bool checkpointing = !options_.checkpoint_path.empty();
  SOSE_ASSIGN_OR_RETURN(
      start_, internal_trial::ResumeFromCheckpoint(options_, &report));
  total_ = options_.trials;

  records_.assign(static_cast<size_t>(total_), TrialAttemptResult{});
  ready_.assign(static_cast<size_t>(total_), 0);
  // The shard count decouples from the worker count: the range is split into
  // `shards` pieces (default: one per worker) and at most `workers` of them
  // run concurrently; finer shards bound re-execution loss on a crash and
  // let an idle worker slot steal the next queued shard. The split itself is
  // always ShardedRange::ShardBounds, and folding stays in global trial
  // order, so the report is bit-identical for every combination.
  const int num_shards =
      options_.shards > 0 ? options_.shards : options_.workers;
  shards_.clear();
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    const auto [lo, hi] =
        ShardedRange::ShardBounds(start_, total_, num_shards, s);
    ShardState shard;
    shard.index = s;
    shard.begin = lo;
    shard.end = hi;
    shard.next_expected = lo;
    shard.phase =
        lo == hi ? ShardState::Phase::kFinished : ShardState::Phase::kIdle;
    shards_.push_back(std::move(shard));
  }

  Stopwatch watch;
  int64_t fold_next = start_;
  int64_t next_trial = start_;

  while (fold_next < total_) {
    double now = watch.ElapsedSeconds();
    const bool deadline_passed =
        options_.deadline_seconds > 0.0 && now > options_.deadline_seconds;
    // The deadline is checked between folded trials (like the in-process
    // backends) and never before the first, so every run makes progress.
    if (deadline_passed && fold_next > start_) {
      report.partial = true;
      next_trial = fold_next;
      SOSE_COUNTER_INC("trial.deadline_hits");
      break;
    }
    // Dispatch idle shards and those whose backoff expired, keeping at most
    // `workers` in flight. Past the deadline no failed shard re-dispatches:
    // waiting out backoff_until could exceed the deadline many times over,
    // and the partial exit below covers the nothing-running case.
    int running = 0;
    for (const ShardState& shard : shards_) {
      if (shard.phase == ShardState::Phase::kRunning) ++running;
    }
    for (ShardState& shard : shards_) {
      if (running >= options_.workers) break;
      const bool dispatchable =
          shard.phase == ShardState::Phase::kIdle ||
          (shard.phase == ShardState::Phase::kBackoff &&
           now >= shard.backoff_until && !deadline_passed);
      if (dispatchable) {
        DispatchShard(shard, now);
        if (shard.phase == ShardState::Phase::kRunning) ++running;
      }
    }
    // A passed deadline with nothing left running means nothing further can
    // fold: every unfinished shard is waiting out a backoff it will never be
    // granted. Return the partial prefix instead of hanging until
    // backoff_until (possibly with zero completed trials — the honest
    // outcome when workers died before delivering any).
    if (deadline_passed && running == 0) {
      report.partial = true;
      next_trial = fold_next;
      SOSE_COUNTER_INC("trial.deadline_hits");
      break;
    }
    // One multiplexed wait over every live worker stream.
    std::vector<int> fds;
    std::vector<size_t> fd_shard;
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (shards_[s].phase == ShardState::Phase::kRunning) {
        fds.push_back(shards_[s].stream->poll_fd());
        fd_shard.push_back(s);
      }
    }
    SOSE_ASSIGN_OR_RETURN(std::vector<size_t> readable,
                          PollReadable(fds, PollTimeout(now)));
    now = watch.ElapsedSeconds();
    for (size_t idx : readable) {
      Drain(shards_[fd_shard[idx]], now);
    }
    // Hung-worker detection: a worker that has written nothing for a full
    // heartbeat window is presumed wedged. (Workers heartbeat before every
    // trial, so the timeout must exceed the slowest single trial.)
    for (ShardState& shard : shards_) {
      if (shard.phase == ShardState::Phase::kRunning &&
          now - shard.last_activity > options_.heartbeat_timeout_seconds) {
        SOSE_COUNTER_INC("shard.heartbeat_misses");
        Fail(shard, "heartbeat timeout", now);
      }
    }
    // Fold the contiguous ready prefix in global trial order — the exact
    // FoldOutcome arithmetic and checkpoint cadence of the serial loop.
    while (fold_next < total_ && ready_[static_cast<size_t>(fold_next)]) {
      SOSE_RETURN_IF_ERROR(
          FoldOutcome(records_[static_cast<size_t>(fold_next)], fold_next,
                      options_, &report));
      next_trial = fold_next + 1;
      if (options_.checkpoint_every > 0 &&
          (fold_next + 1 - start_) % options_.checkpoint_every == 0) {
        SOSE_RETURN_IF_ERROR(WriteTrialCheckpoint(
            options_.checkpoint_path,
            TrialCheckpoint{options_.seed, next_trial, report}));
      }
      ++fold_next;
    }
  }
  // Surviving workers are torn down by ShardState's stream members as
  // shards_ goes out of scope (deadline exit leaves some alive on purpose:
  // their unfolded trials are discarded, and a resume re-runs them from the
  // same derived seeds).

  if (report.partial) {
    if (checkpointing) {
      SOSE_RETURN_IF_ERROR(WriteTrialCheckpoint(
          options_.checkpoint_path,
          TrialCheckpoint{options_.seed, next_trial, report}));
    }
    return report;
  }
  if (static_cast<double>(report.faulted) >
      options_.error_budget * static_cast<double>(report.completed)) {
    return Status::FailedPrecondition(
        internal_trial::BudgetMessage(report, options_.error_budget));
  }
  if (checkpointing) {
    // A finished run's checkpoint would otherwise short-circuit the next one.
    std::remove(options_.checkpoint_path.c_str());
  }
  return report;
}

}  // namespace

Result<TrialRunReport> RunTrialsShardedWith(ShardTransport* transport,
                                            const TrialRunnerOptions& options) {
  if (transport == nullptr) {
    return Status::InvalidArgument("RunTrialsShardedWith: null transport");
  }
  Coordinator coordinator(transport, options);
  return coordinator.Run();
}

Result<TrialRunReport> RunTrialsSharded(const TrialFn& trial,
                                        const TrialRunnerOptions& options) {
  SOSE_RETURN_IF_ERROR(internal_trial::ValidateRunnerOptions(options));
  if (options.transport == "socket") {
    SOSE_ASSIGN_OR_RETURN(std::vector<AgentEndpoint> endpoints,
                          ParseAgentEndpoints(options.agent_endpoints));
    // Resolve the spec locally before dispatching anything: a malformed spec
    // should fail the run with the resolver's message, not as N quarantined
    // shards whose agents each rejected it.
    SOSE_RETURN_IF_ERROR(ResolveTrialSpec(options.trial_spec).status());
    SocketShardTransport transport(std::move(endpoints), options.trial_spec);
    return RunTrialsShardedWith(&transport, options);
  }
  ForkShardTransport transport(trial);
  return RunTrialsShardedWith(&transport, options);
}

}  // namespace sose
