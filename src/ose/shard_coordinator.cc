#include "ose/shard_coordinator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "core/csv.h"
#include "core/metrics/metrics.h"
#include "core/parallel/sharded_range.h"
#include "core/stopwatch.h"
#include "core/subprocess.h"
#include "ose/shard_worker.h"
#include "ose/trial_fold.h"

namespace sose {

namespace {

using internal_trial::FoldOutcome;
using internal_trial::TrialAttemptResult;

/// Per-shard supervision state. One shard = one contiguous trial range owned
/// by at most one live worker at a time.
struct ShardState {
  enum class Phase {
    kIdle,         ///< Waiting for its first dispatch.
    kRunning,      ///< A worker is (presumed) executing it.
    kBackoff,      ///< Worker failed; re-dispatch after backoff_until.
    kFinished,     ///< Every trial record received.
    kQuarantined,  ///< Retry budget exhausted; remaining trials faulted.
  };

  int index = 0;
  int64_t begin = 0;
  int64_t end = 0;  ///< Exclusive.
  /// First trial whose record has not been received — the durable progress
  /// mark a re-dispatched worker resumes from.
  int64_t next_expected = 0;
  Phase phase = Phase::kIdle;
  std::optional<Subprocess> worker;
  std::string buffer;       ///< Torn tail of the wire stream.
  int64_t dispatches = 0;   ///< Lifetime dispatch count (1 = initial).
  double backoff_until = 0.0;
  double last_activity = 0.0;  ///< Stopwatch time of the last received byte.
  bool saw_format = false;
  bool saw_preamble = false;
  bool saw_done = false;
};

/// The coordinator run: options plus every piece of mutable supervision
/// state, so the helpers below are methods instead of ten-argument
/// functions.
class Coordinator {
 public:
  Coordinator(const TrialFn& trial, const TrialRunnerOptions& options)
      : trial_(trial), options_(options) {}

  Result<TrialRunReport> Run();

 private:
  void Dispatch(ShardState& shard, double now);
  void Drain(ShardState& shard, double now);
  /// Applies one decoded record to `shard`; returns false (after initiating
  /// failure handling) on a protocol violation.
  bool Apply(ShardState& shard, const std::string& line, double now);
  /// Kills + reaps the worker (if any), then schedules a re-dispatch or
  /// quarantines the shard.
  void Fail(ShardState& shard, const std::string& reason, double now);
  void Quarantine(ShardState& shard, const std::string& reason);
  double PollTimeout(double now) const;

  const TrialFn& trial_;
  const TrialRunnerOptions& options_;
  std::vector<ShardState> shards_;
  std::vector<TrialAttemptResult> records_;
  std::vector<char> ready_;
  int64_t start_ = 0;
  int64_t total_ = 0;
};

void Coordinator::Dispatch(ShardState& shard, double now) {
  ShardWorkerConfig config;
  config.shard_index = shard.index;
  config.shard_begin = shard.begin;
  config.shard_end = shard.end;
  config.resume_from = shard.next_expected;
  config.generation = shard.dispatches;  // 0-based: pre-increment value.
  config.master_seed = options_.seed;
  config.max_retries = options_.max_retries;
  ++shard.dispatches;
  shard.buffer.clear();
  shard.saw_format = shard.saw_preamble = shard.saw_done = false;
  SOSE_COUNTER_INC("shard.dispatched");
  if (shard.dispatches > 1) SOSE_COUNTER_INC("shard.redispatched");
  // The child is forked, not exec'd: `trial_` crosses into the worker as a
  // live closure. The capture is by value (config) plus the reference to the
  // TrialFn, both valid for the child's whole life since the child's address
  // space is a copy.
  const TrialFn& trial = trial_;
  auto spawned = Subprocess::Spawn([&trial, config](int write_fd) {
    return RunShardWorker(trial, config, write_fd);
  });
  if (!spawned.ok()) {
    // Spawn failure consumes a shard retry like any other worker failure, so
    // a machine that cannot fork quarantines instead of looping forever.
    Fail(shard, "spawn failed: " + spawned.status().message(), now);
    return;
  }
  shard.worker.emplace(std::move(spawned).value());
  shard.phase = ShardState::Phase::kRunning;
  shard.last_activity = now;
}

bool Coordinator::Apply(ShardState& shard, const std::string& line,
                        double now) {
  auto violation = [&](const std::string& why) {
    SOSE_COUNTER_INC("shard.protocol_errors");
    Fail(shard, "protocol violation: " + why, now);
    return false;
  };
  Result<ShardWireRecord> decoded = DecodeShardWireRecord(line);
  if (!decoded.ok()) return violation(decoded.status().message());
  const ShardWireRecord& record = decoded.value();
  if (shard.saw_done) return violation("record after done");
  switch (record.kind) {
    case ShardWireRecord::Kind::kFormat:
      if (shard.saw_format) return violation("duplicate format record");
      shard.saw_format = true;
      return true;
    case ShardWireRecord::Kind::kShard:
      if (!shard.saw_format || shard.saw_preamble) {
        return violation("misplaced shard preamble");
      }
      if (record.shard_index != shard.index ||
          record.shard_begin != shard.begin ||
          record.shard_end != shard.end ||
          record.resume_from != shard.next_expected ||
          record.generation != shard.dispatches - 1) {
        return violation("shard preamble does not match dispatch");
      }
      shard.saw_preamble = true;
      return true;
    case ShardWireRecord::Kind::kHeartbeat:
      if (!shard.saw_preamble || record.trial != shard.next_expected) {
        return violation("heartbeat out of sequence");
      }
      return true;
    case ShardWireRecord::Kind::kOk:
    case ShardWireRecord::Kind::kFault:
      if (!shard.saw_preamble || record.trial != shard.next_expected) {
        return violation("trial record out of sequence");
      }
      records_[static_cast<size_t>(record.trial)] = record.record;
      ready_[static_cast<size_t>(record.trial)] = 1;
      ++shard.next_expected;
      SOSE_COUNTER_INC("shard.records");
      return true;
    case ShardWireRecord::Kind::kDone:
      if (!shard.saw_preamble || record.trial != shard.end ||
          shard.next_expected != shard.end) {
        return violation("premature done record");
      }
      shard.saw_done = true;
      return true;
  }
  return violation("unhandled record kind");
}

void Coordinator::Drain(ShardState& shard, double now) {
  Result<PipeRead> read = shard.worker->ReadAvailable(&shard.buffer);
  if (!read.ok()) {
    Fail(shard, "pipe read failed: " + read.status().message(), now);
    return;
  }
  if (read.value().bytes > 0) shard.last_activity = now;
  // Only complete newline-framed records are parsed; a tail torn by a dying
  // worker stays in the buffer and is discarded with it on re-dispatch —
  // the same rule torn checkpoint files get.
  for (const std::string& line : ExtractCompleteCsvRecords(&shard.buffer)) {
    if (!Apply(shard, line, now)) return;  // Failure handling already ran.
  }
  if (read.value().eof) {
    // The stream is over. Either the shard is fully delivered (the `done`
    // record is corroborating, not load-bearing: a worker killed between its
    // last trial record and `done` still finished its work), or the worker
    // died early.
    Result<ProcessStatus> reaped = shard.worker->Wait();
    if (shard.next_expected == shard.end) {
      shard.worker.reset();
      shard.phase = ShardState::Phase::kFinished;
      return;
    }
    std::string reason = "worker stream ended before shard completion";
    if (reaped.ok() && reaped.value().state == ProcessState::kSignaled) {
      reason += " (killed by signal " +
                std::to_string(reaped.value().term_signal) + ")";
    } else if (reaped.ok() && reaped.value().state == ProcessState::kExited) {
      reason += " (exit code " + std::to_string(reaped.value().exit_code) +
                ")";
    }
    Fail(shard, reason, now);
  }
}

void Coordinator::Fail(ShardState& shard, const std::string& reason,
                       double now) {
  if (shard.worker.has_value()) {
    // Best effort: Kill tolerates an already-dead child, and the blocking
    // Wait directly after cannot hang because SIGKILL is not maskable.
    (void)shard.worker->Kill();
    if (!shard.worker->reaped()) (void)shard.worker->Wait();
    shard.worker.reset();
  }
  shard.buffer.clear();
  SOSE_COUNTER_INC("shard.worker_failures");
  const int64_t redispatches_used = shard.dispatches - 1;
  if (redispatches_used >= options_.max_shard_retries) {
    Quarantine(shard, reason);
    return;
  }
  // Exponential backoff before the next dispatch: the r-th re-dispatch waits
  // initial * multiplier^(r-1).
  shard.phase = ShardState::Phase::kBackoff;
  shard.backoff_until =
      now + options_.backoff_initial_seconds *
                std::pow(options_.backoff_multiplier,
                         static_cast<double>(redispatches_used));
}

void Coordinator::Quarantine(ShardState& shard, const std::string& reason) {
  shard.phase = ShardState::Phase::kQuarantined;
  SOSE_COUNTER_INC("shard.quarantined");
  SOSE_COUNTER_ADD("shard.trials_quarantined",
                   shard.end - shard.next_expected);
  // The lost trials become ordinary faulted records, folded in trial order
  // like any worker-reported fault, so they land in the TrialErrorTaxonomy
  // and are charged against the error budget.
  TrialAttemptResult faulted;
  faulted.status = Status::Internal(
      "shard " + std::to_string(shard.index) + " quarantined after " +
      std::to_string(shard.dispatches) + " worker failures: " + reason);
  for (int64_t t = shard.next_expected; t < shard.end; ++t) {
    records_[static_cast<size_t>(t)] = faulted;
    ready_[static_cast<size_t>(t)] = 1;
  }
  shard.next_expected = shard.end;
}

double Coordinator::PollTimeout(double now) const {
  // Wake for whichever comes first: heartbeat expiry of a running shard,
  // backoff expiry of a failed one, or the global deadline — capped by a
  // base tick so supervision stays responsive.
  double timeout = 0.25;
  for (const ShardState& shard : shards_) {
    if (shard.phase == ShardState::Phase::kRunning) {
      const double slack =
          options_.heartbeat_timeout_seconds - (now - shard.last_activity);
      timeout = std::min(timeout, std::max(slack, 0.0));
    } else if (shard.phase == ShardState::Phase::kBackoff) {
      timeout = std::min(timeout, std::max(shard.backoff_until - now, 0.0));
    }
  }
  if (options_.deadline_seconds > 0.0) {
    timeout =
        std::min(timeout, std::max(options_.deadline_seconds - now, 0.0));
  }
  return timeout;
}

Result<TrialRunReport> Coordinator::Run() {
  SOSE_RETURN_IF_ERROR(internal_trial::ValidateRunnerOptions(options_));
  SOSE_SPAN("shard.coordinate");

  TrialRunReport report;
  report.requested = options_.trials;
  const bool checkpointing = !options_.checkpoint_path.empty();
  SOSE_ASSIGN_OR_RETURN(
      start_, internal_trial::ResumeFromCheckpoint(options_, &report));
  total_ = options_.trials;

  records_.assign(static_cast<size_t>(total_), TrialAttemptResult{});
  ready_.assign(static_cast<size_t>(total_), 0);
  const int workers = options_.workers;
  shards_.clear();
  shards_.reserve(static_cast<size_t>(workers));
  for (int s = 0; s < workers; ++s) {
    const auto [lo, hi] =
        ShardedRange::ShardBounds(start_, total_, workers, s);
    ShardState shard;
    shard.index = s;
    shard.begin = lo;
    shard.end = hi;
    shard.next_expected = lo;
    shard.phase =
        lo == hi ? ShardState::Phase::kFinished : ShardState::Phase::kIdle;
    shards_.push_back(std::move(shard));
  }

  Stopwatch watch;
  int64_t fold_next = start_;
  int64_t next_trial = start_;

  while (fold_next < total_) {
    double now = watch.ElapsedSeconds();
    // The deadline is checked between folded trials (like the in-process
    // backends) and never before the first, so every run makes progress.
    if (options_.deadline_seconds > 0.0 && fold_next > start_ &&
        now > options_.deadline_seconds) {
      report.partial = true;
      next_trial = fold_next;
      SOSE_COUNTER_INC("trial.deadline_hits");
      break;
    }
    // Dispatch idle shards and those whose backoff expired.
    for (ShardState& shard : shards_) {
      if (shard.phase == ShardState::Phase::kIdle ||
          (shard.phase == ShardState::Phase::kBackoff &&
           now >= shard.backoff_until)) {
        Dispatch(shard, now);
      }
    }
    // One multiplexed wait over every live worker pipe.
    std::vector<int> fds;
    std::vector<size_t> fd_shard;
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (shards_[s].phase == ShardState::Phase::kRunning) {
        fds.push_back(shards_[s].worker->read_fd());
        fd_shard.push_back(s);
      }
    }
    SOSE_ASSIGN_OR_RETURN(std::vector<size_t> readable,
                          PollReadable(fds, PollTimeout(now)));
    now = watch.ElapsedSeconds();
    for (size_t idx : readable) {
      Drain(shards_[fd_shard[idx]], now);
    }
    // Hung-worker detection: a worker that has written nothing for a full
    // heartbeat window is presumed wedged. (Workers heartbeat before every
    // trial, so the timeout must exceed the slowest single trial.)
    for (ShardState& shard : shards_) {
      if (shard.phase == ShardState::Phase::kRunning &&
          now - shard.last_activity > options_.heartbeat_timeout_seconds) {
        SOSE_COUNTER_INC("shard.heartbeat_misses");
        Fail(shard, "heartbeat timeout", now);
      }
    }
    // Fold the contiguous ready prefix in global trial order — the exact
    // FoldOutcome arithmetic and checkpoint cadence of the serial loop.
    while (fold_next < total_ && ready_[static_cast<size_t>(fold_next)]) {
      SOSE_RETURN_IF_ERROR(
          FoldOutcome(records_[static_cast<size_t>(fold_next)], fold_next,
                      options_, &report));
      next_trial = fold_next + 1;
      if (options_.checkpoint_every > 0 &&
          (fold_next + 1 - start_) % options_.checkpoint_every == 0) {
        SOSE_RETURN_IF_ERROR(WriteTrialCheckpoint(
            options_.checkpoint_path,
            TrialCheckpoint{options_.seed, next_trial, report}));
      }
      ++fold_next;
    }
  }
  // Surviving workers are killed and reaped by ShardState's Subprocess
  // members as shards_ goes out of scope (deadline exit leaves some alive
  // on purpose: their unfolded trials are discarded, and a resume re-runs
  // them from the same derived seeds).

  if (report.partial) {
    if (checkpointing) {
      SOSE_RETURN_IF_ERROR(WriteTrialCheckpoint(
          options_.checkpoint_path,
          TrialCheckpoint{options_.seed, next_trial, report}));
    }
    return report;
  }
  if (static_cast<double>(report.faulted) >
      options_.error_budget * static_cast<double>(report.completed)) {
    return Status::FailedPrecondition(
        internal_trial::BudgetMessage(report, options_.error_budget));
  }
  if (checkpointing) {
    // A finished run's checkpoint would otherwise short-circuit the next one.
    std::remove(options_.checkpoint_path.c_str());
  }
  return report;
}

}  // namespace

Result<TrialRunReport> RunTrialsSharded(const TrialFn& trial,
                                        const TrialRunnerOptions& options) {
  Coordinator coordinator(trial, options);
  return coordinator.Run();
}

}  // namespace sose
