#ifndef SOSE_OSE_SHARD_COORDINATOR_H_
#define SOSE_OSE_SHARD_COORDINATOR_H_

#include "core/status.h"
#include "ose/trial_runner.h"

namespace sose {

/// Crash-tolerant multi-process trial execution (docs/robustness.md).
///
/// The coordinator splits [resume, trials) into `options.shards` contiguous
/// shards (default: one per worker) with the exact split of
/// ShardedRange::ShardBounds, dispatches up to `options.workers` of them
/// concurrently through a pluggable ShardTransport (shard_transport.h: fork
/// a child per dispatch, or hand the shard to a remote sose_shard_agent over
/// a socket), and multiplexes the record streams in one event loop. Workers
/// only *execute* trials; the coordinator folds the streamed per-trial
/// records in ascending global trial order with the same FoldOutcome
/// arithmetic as the serial loop, so the report, taxonomy, checkpoint bytes,
/// and error-budget failure text are bitwise identical to `threads = 1` for
/// any worker/shard count on any transport.
///
/// Robustness ladder, in escalating order:
///   * torn streams — a record cut mid-line by a dying worker stays
///     buffered, never parsed (same rule as torn checkpoint tails);
///   * worker death / hang (no bytes for heartbeat_timeout_seconds) /
///     protocol violation — SIGKILL, then re-dispatch the shard from the end
///     of its contiguous received prefix, after exponential backoff;
///   * shard quarantine — after max_shard_retries re-dispatches the shard's
///     remaining trials are recorded as kInternal faults and folded into the
///     TrialErrorTaxonomy and error budget like any other faulted trial;
///   * global deadline — surviving workers are killed and a partial report
///     over the folded prefix is returned, exactly like the in-process
///     backends. A shard sitting in backoff when the deadline fires never
///     delays the exit: re-dispatches stop at the deadline, and once nothing
///     is running the partial report is returned immediately (possibly with
///     zero completed trials).
///
/// Checkpoints are written at the same trial boundaries as the serial path,
/// so killing the coordinator itself and re-running resumes losslessly.
///
/// Callers normally reach this through RunTrials (options.workers > 1); the
/// direct entry exists so tests can force coordinator execution even for a
/// single worker.
[[nodiscard]] Result<TrialRunReport> RunTrialsSharded(
    const TrialFn& trial, const TrialRunnerOptions& options);

}  // namespace sose

#endif  // SOSE_OSE_SHARD_COORDINATOR_H_
