#include "ose/shard_transport.h"

#include <string>
#include <utility>

#include "ose/shard_agent.h"
#include "ose/trial_fold.h"

namespace sose {

namespace {

using internal_trial::ParseWireInt;

/// The dispatch request is two small records; an agent that cannot absorb
/// them within this budget is as good as down, and the failed dispatch is
/// charged as a worker failure (backoff, then quarantine).
constexpr double kHandshakeTimeoutSeconds = 10.0;

class ForkShardStream : public ShardStream {
 public:
  explicit ForkShardStream(Subprocess worker) : worker_(std::move(worker)) {}

  int poll_fd() const override { return worker_.read_fd(); }

  Result<PipeRead> ReadAvailable(std::string* buffer) override {
    return worker_.ReadAvailable(buffer);
  }

  std::string Finish() override {
    // Best effort: Kill tolerates an already-dead child, and the blocking
    // Wait directly after cannot hang because SIGKILL is not maskable.
    (void)worker_.Kill();
    if (worker_.reaped()) return "";
    Result<ProcessStatus> reaped = worker_.Wait();
    if (reaped.ok() && reaped.value().state == ProcessState::kSignaled) {
      return " (killed by signal " +
             std::to_string(reaped.value().term_signal) + ")";
    }
    if (reaped.ok() && reaped.value().state == ProcessState::kExited) {
      return " (exit code " + std::to_string(reaped.value().exit_code) + ")";
    }
    return "";
  }

 private:
  Subprocess worker_;
};

class SocketShardStream : public ShardStream {
 public:
  explicit SocketShardStream(net::Socket socket)
      : socket_(std::move(socket)) {}

  int poll_fd() const override { return socket_.fd(); }

  Result<PipeRead> ReadAvailable(std::string* buffer) override {
    SOSE_ASSIGN_OR_RETURN(net::ReadChunk chunk,
                          socket_.ReadAvailable(buffer));
    return PipeRead{chunk.bytes, chunk.eof};
  }

  std::string Finish() override {
    // Closing our end is the whole teardown: the agent kills the attached
    // worker as soon as it observes the connection gone.
    socket_.Close();
    return " (agent connection closed)";
  }

 private:
  net::Socket socket_;
};

}  // namespace

Result<std::unique_ptr<ShardStream>> ForkShardTransport::Dispatch(
    const ShardWorkerConfig& config) {
  // The child is forked, not exec'd: `trial_` crosses into the worker as a
  // live closure. The capture is by value (config) plus the reference to the
  // TrialFn, both valid for the child's whole life since the child's address
  // space is a copy.
  const TrialFn& trial = trial_;
  SOSE_ASSIGN_OR_RETURN(Subprocess worker,
                        Subprocess::Spawn([&trial, config](int write_fd) {
                          return RunShardWorker(trial, config, write_fd);
                        }));
  return std::unique_ptr<ShardStream>(
      std::make_unique<ForkShardStream>(std::move(worker)));
}

Result<std::vector<AgentEndpoint>> ParseAgentEndpoints(
    const std::string& spec) {
  auto malformed = [](const std::string& part) {
    return Status::InvalidArgument(
        "ParseAgentEndpoints: expected unix:/path or tcp:host:port, got '" +
        part + "'");
  };
  std::vector<AgentEndpoint> endpoints;
  size_t start = 0;
  while (start <= spec.size()) {
    const size_t comma = spec.find(',', start);
    const std::string part =
        spec.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    start = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    if (part.empty()) {
      if (comma == std::string::npos && endpoints.empty() && spec.empty()) {
        break;
      }
      return malformed(part);
    }
    AgentEndpoint endpoint;
    if (part.starts_with("unix:")) {
      endpoint.kind = AgentEndpoint::Kind::kUnix;
      endpoint.path = part.substr(5);
      if (endpoint.path.empty()) return malformed(part);
    } else if (part.starts_with("tcp:")) {
      const std::string rest = part.substr(4);
      const size_t colon = rest.rfind(':');
      int64_t port = 0;
      if (colon == std::string::npos || colon == 0 ||
          !ParseWireInt(rest.substr(colon + 1), &port) || port < 1 ||
          port > 65535) {
        return malformed(part);
      }
      endpoint.kind = AgentEndpoint::Kind::kTcp;
      endpoint.host = rest.substr(0, colon);
      endpoint.port = static_cast<int>(port);
    } else {
      return malformed(part);
    }
    endpoints.push_back(std::move(endpoint));
  }
  if (endpoints.empty()) {
    return Status::InvalidArgument(
        "ParseAgentEndpoints: at least one endpoint is required");
  }
  return endpoints;
}

Result<std::unique_ptr<ShardStream>> SocketShardTransport::Dispatch(
    const ShardWorkerConfig& config) {
  const AgentEndpoint& endpoint =
      endpoints_[static_cast<size_t>(config.shard_index) % endpoints_.size()];
  Result<net::Socket> connected =
      endpoint.kind == AgentEndpoint::Kind::kUnix
          ? net::Socket::ConnectUnix(endpoint.path)
          : net::Socket::ConnectTcp(endpoint.host, endpoint.port);
  if (!connected.ok()) {
    return Status(connected.status().code(),
                  "shard agent dispatch: " + connected.status().message());
  }
  net::Socket socket = std::move(connected).value();
  const std::string request = EncodeAgentFormatRecord() +
                              EncodeAgentDispatchRecord(config, trial_spec_);
  SOSE_RETURN_IF_ERROR(socket.WriteAll(request, kHandshakeTimeoutSeconds));
  return std::unique_ptr<ShardStream>(
      std::make_unique<SocketShardStream>(std::move(socket)));
}

}  // namespace sose
