#ifndef SOSE_OSE_SHARD_TRANSPORT_H_
#define SOSE_OSE_SHARD_TRANSPORT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/net/net.h"
#include "core/status.h"
#include "core/subprocess.h"
#include "ose/shard_worker.h"
#include "ose/trial_runner.h"

/// The transport seam of the shard coordinator (docs/robustness.md): how a
/// dispatched shard reaches a worker and how its sose-shard-stream-v1 bytes
/// come back. The coordinator supervises *streams* — heartbeat timeouts,
/// protocol violations, backoff re-dispatch, and quarantine all operate on
/// the byte stream and are identical across transports; only Dispatch and
/// the stream's teardown differ.
///
/// Two transports ship:
///   * ForkShardTransport (default): forks the TrialFn closure into a child
///     per dispatch — the PR-5 behavior, unchanged.
///   * SocketShardTransport: connects to a long-lived sose_shard_agent
///     (shard_agent.h) over a Unix-domain or TCP socket per dispatch, sends
///     a sose-shard-agent-v1 dispatch request, and reads the worker's record
///     stream back over the same connection. The agent rebuilds the trial
///     from TrialRunnerOptions::trial_spec (trial_spec.h), so the records —
///     and therefore the folded report — are bitwise identical to fork and
///     to serial.

namespace sose {

/// One live dispatched shard's record stream, whatever carries it.
class ShardStream {
 public:
  virtual ~ShardStream() = default;

  /// A pollable descriptor that becomes readable when bytes (or EOF) are
  /// available; multiplexed by the coordinator with PollReadable.
  virtual int poll_fd() const = 0;

  /// Appends whatever the stream currently holds to `buffer` without
  /// blocking; eof becomes true once the worker side is closed for good.
  [[nodiscard]] virtual Result<PipeRead> ReadAvailable(std::string* buffer) = 0;

  /// Tears the stream down (kills + reaps a forked worker; closes a socket)
  /// and returns a short human description of how the worker ended, appended
  /// to failure reasons. Idempotent; the destructor performs the same
  /// teardown without the description.
  virtual std::string Finish() = 0;
};

class ShardTransport {
 public:
  virtual ~ShardTransport() = default;

  /// Starts one worker on the configured shard and returns its stream. A
  /// dispatch failure (fork failed, agent unreachable) is returned as a
  /// Status and charged as a worker failure by the coordinator, so a dead
  /// agent backs off and quarantines instead of looping forever.
  [[nodiscard]] virtual Result<std::unique_ptr<ShardStream>> Dispatch(
      const ShardWorkerConfig& config) = 0;
};

/// The fork()+pipe transport: each dispatch forks a child running
/// RunShardWorker with the live TrialFn closure (the child's address space
/// is a copy, so the closure crosses fork intact).
class ForkShardTransport : public ShardTransport {
 public:
  /// `trial` must outlive the transport (the coordinator owns both).
  explicit ForkShardTransport(const TrialFn& trial) : trial_(trial) {}

  [[nodiscard]] Result<std::unique_ptr<ShardStream>> Dispatch(
      const ShardWorkerConfig& config) override;

 private:
  const TrialFn& trial_;
};

/// One parsed sose_shard_agent address.
struct AgentEndpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  ///< Unix-domain socket path (kUnix).
  std::string host;  ///< Numeric IPv4 host (kTcp).
  int port = 0;      ///< (kTcp).
};

/// Parses a comma-separated endpoint list: `unix:/path/to.sock` or
/// `tcp:host:port`. Fails with kInvalidArgument on anything else.
[[nodiscard]] Result<std::vector<AgentEndpoint>> ParseAgentEndpoints(
    const std::string& spec);

/// The socket transport: each dispatch connects to the endpoint chosen
/// round-robin by shard index (so a multi-agent fleet splits shards evenly
/// and a re-dispatched shard returns to the same agent), performs the
/// sose-shard-agent-v1 handshake, and hands the connection back as the
/// shard's record stream.
class SocketShardTransport : public ShardTransport {
 public:
  SocketShardTransport(std::vector<AgentEndpoint> endpoints,
                       std::string trial_spec)
      : endpoints_(std::move(endpoints)), trial_spec_(std::move(trial_spec)) {}

  [[nodiscard]] Result<std::unique_ptr<ShardStream>> Dispatch(
      const ShardWorkerConfig& config) override;

 private:
  std::vector<AgentEndpoint> endpoints_;
  std::string trial_spec_;
};

/// Runs the shard coordinator over an explicit transport. This is the
/// engine behind RunTrialsSharded; exposed so tests can inject scripted
/// transports (stale-generation replays, permanently-failing dispatches)
/// without real processes or agents.
[[nodiscard]] Result<TrialRunReport> RunTrialsShardedWith(
    ShardTransport* transport, const TrialRunnerOptions& options);

}  // namespace sose

#endif  // SOSE_OSE_SHARD_TRANSPORT_H_
