#include "ose/shard_worker.h"

#include <chrono>
#include <thread>
#include <vector>

#include "core/csv.h"
#include "core/fault.h"
#include "core/hexfloat.h"
#include "core/subprocess.h"

namespace sose {

namespace {

using internal_trial::ExecuteTrial;
using internal_trial::ParseWireInt;
using internal_trial::TrialAttemptResult;

// Chaos sites, one Status-returning shim per failure mode so
// SOSE_FAULT_POINT can be used from the int-returning worker loop. All three
// are registered in docs/robustness.md.
Status ChaosCrashSite() {
  SOSE_FAULT_POINT("shard_worker/crash");
  return Status::OK();
}

Status ChaosHangSite() {
  SOSE_FAULT_POINT("shard_worker/hang");
  return Status::OK();
}

Status ChaosGarbageSite() {
  SOSE_FAULT_POINT("shard_worker/garbage-output");
  return Status::OK();
}

}  // namespace

std::string EncodeFormatRecord() {
  return FormatCsvRow({"format", kShardStreamFormat});
}

std::string EncodeShardRecord(const ShardWorkerConfig& config) {
  return FormatCsvRow({"shard", std::to_string(config.shard_index),
                       std::to_string(config.shard_begin),
                       std::to_string(config.shard_end),
                       std::to_string(config.resume_from),
                       std::to_string(config.generation)});
}

std::string EncodeHeartbeatRecord(int64_t t) {
  return FormatCsvRow({"heartbeat", std::to_string(t)});
}

std::string EncodeTrialRecord(int64_t t, const TrialAttemptResult& record) {
  if (record.status.ok()) {
    return FormatCsvRow({"ok", std::to_string(t),
                         std::to_string(record.retries_used),
                         FormatHexDouble(record.outcome.epsilon),
                         record.outcome.failure ? "1" : "0"});
  }
  return FormatCsvRow(
      {"fault", std::to_string(t), std::to_string(record.retries_used),
       std::string(StatusCodeToString(record.status.code())),
       record.status.message()});
}

std::string EncodeDoneRecord(int64_t shard_end) {
  return FormatCsvRow({"done", std::to_string(shard_end)});
}

Result<ShardWireRecord> DecodeShardWireRecord(const std::string& line) {
  SOSE_ASSIGN_OR_RETURN(std::vector<std::string> cells, ParseCsvRecord(line));
  auto malformed = [&line](const char* why) {
    return Status::InvalidArgument(std::string("DecodeShardWireRecord: ") +
                                   why + " in record '" + line + "'");
  };
  if (cells.empty()) return malformed("empty record");
  const std::string& tag = cells[0];
  ShardWireRecord out;
  if (tag == "format") {
    if (cells.size() != 2) return malformed("format arity");
    if (cells[1] != kShardStreamFormat) return malformed("unknown format");
    out.kind = ShardWireRecord::Kind::kFormat;
    return out;
  }
  if (tag == "shard") {
    if (cells.size() != 6 || !ParseWireInt(cells[1], &out.shard_index) ||
        !ParseWireInt(cells[2], &out.shard_begin) ||
        !ParseWireInt(cells[3], &out.shard_end) ||
        !ParseWireInt(cells[4], &out.resume_from) ||
        !ParseWireInt(cells[5], &out.generation)) {
      return malformed("shard preamble");
    }
    out.kind = ShardWireRecord::Kind::kShard;
    return out;
  }
  if (tag == "heartbeat") {
    if (cells.size() != 2 || !ParseWireInt(cells[1], &out.trial)) {
      return malformed("heartbeat");
    }
    out.kind = ShardWireRecord::Kind::kHeartbeat;
    return out;
  }
  if (tag == "ok") {
    double epsilon = 0.0;
    if (cells.size() != 5 || !ParseWireInt(cells[1], &out.trial) ||
        !ParseWireInt(cells[2], &out.record.retries_used) ||
        !ParseHexDouble(cells[3], &epsilon) ||
        (cells[4] != "0" && cells[4] != "1")) {
      return malformed("ok record");
    }
    out.kind = ShardWireRecord::Kind::kOk;
    out.record.outcome.epsilon = epsilon;
    out.record.outcome.failure = cells[4] == "1";
    return out;
  }
  if (tag == "fault") {
    StatusCode code = StatusCode::kInternal;
    if (cells.size() != 5 || !ParseWireInt(cells[1], &out.trial) ||
        !ParseWireInt(cells[2], &out.record.retries_used) ||
        !StatusCodeFromString(cells[3], &code)) {
      return malformed("fault record");
    }
    out.kind = ShardWireRecord::Kind::kFault;
    out.record.status = Status(code, cells[4]);
    return out;
  }
  if (tag == "done") {
    if (cells.size() != 2 || !ParseWireInt(cells[1], &out.trial)) {
      return malformed("done record");
    }
    out.kind = ShardWireRecord::Kind::kDone;
    return out;
  }
  return malformed("unknown tag");
}

int RunShardWorker(const TrialFn& trial, const ShardWorkerConfig& config,
                   int write_fd) {
  if (!WriteAllToFd(write_fd, EncodeFormatRecord()).ok() ||
      !WriteAllToFd(write_fd, EncodeShardRecord(config)).ok()) {
    return kShardWorkerPipeError;
  }
  for (int64_t t = config.resume_from; t < config.shard_end; ++t) {
    // Chaos sites fire before the trial and before its heartbeat, so an
    // injected failure leaves the coordinator exactly the records of the
    // preceding trials — the deterministic torn stream the parity tests pin.
    if (!ChaosCrashSite().ok()) return kShardWorkerChaosCrash;
    if (!ChaosHangSite().ok()) {
      // Simulated wedge: go silent without exiting, long enough for any
      // realistic heartbeat timeout to fire, bounded so a coordinator bug
      // cannot wedge a test suite forever.
      for (int i = 0; i < 600; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
      return kShardWorkerChaosHang;
    }
    if (!ChaosGarbageSite().ok()) {
      // A complete-but-undecodable record: framing succeeds, decoding fails,
      // exercising the protocol-violation path rather than torn-tail
      // buffering.
      if (!WriteAllToFd(write_fd, "garbage,#!corrupted-record\n").ok()) {
        return kShardWorkerPipeError;
      }
    }
    if (!WriteAllToFd(write_fd, EncodeHeartbeatRecord(t)).ok()) {
      return kShardWorkerPipeError;
    }
    const TrialAttemptResult record =
        ExecuteTrial(trial, config.master_seed, config.max_retries, t);
    if (!WriteAllToFd(write_fd, EncodeTrialRecord(t, record)).ok()) {
      return kShardWorkerPipeError;
    }
  }
  if (!WriteAllToFd(write_fd, EncodeDoneRecord(config.shard_end)).ok()) {
    return kShardWorkerPipeError;
  }
  return kShardWorkerOk;
}

}  // namespace sose
