#ifndef SOSE_OSE_SHARD_WORKER_H_
#define SOSE_OSE_SHARD_WORKER_H_

#include <cstdint>
#include <string>

#include "core/status.h"
#include "ose/trial_fold.h"
#include "ose/trial_runner.h"

/// The worker half of crash-tolerant multi-process trial execution: the
/// sose_worker entry point run inside each forked child, plus the wire
/// codec it shares with the shard coordinator.
///
/// A worker executes the trials of one contiguous shard [begin, end) —
/// resumed at `resume_from` after a re-dispatch — and streams one record per
/// trial to the coordinator over its pipe. Workers never aggregate: folding
/// happens only on the coordinator, in global trial order, so the final
/// report is bitwise identical to a serial run (see docs/robustness.md).
///
/// The wire protocol is a CSV dialect of the hexfloat checkpoint format:
/// newline-framed RFC 4180 records, hexfloat doubles, StatusCode names.
///
///   format,sose-shard-stream-v1
///   shard,<index>,<begin>,<end>,<resume_from>,<generation>
///   heartbeat,<t>           announced before trial t starts executing
///   ok,<t>,<retries>,<epsilon_hex>,<failure 0|1>
///   fault,<t>,<retries>,<status-code-name>,<message>
///   done,<end>
///
/// Records for trials are emitted in ascending order starting at
/// resume_from; the coordinator treats any deviation as a protocol
/// violation and re-dispatches the shard.

namespace sose {

/// Wire schema version; bumped on incompatible changes.
inline constexpr const char* kShardStreamFormat = "sose-shard-stream-v1";

/// Worker exit codes (diagnostic only — the coordinator keys off the record
/// stream, not the exit status).
inline constexpr int kShardWorkerOk = 0;
/// The pipe to the coordinator broke (coordinator died or closed early).
inline constexpr int kShardWorkerPipeError = 10;
/// An injected `shard_worker/crash` fault fired.
inline constexpr int kShardWorkerChaosCrash = 11;
/// An injected `shard_worker/hang` fault fired and its bounded sleep ended
/// without the expected SIGKILL.
inline constexpr int kShardWorkerChaosHang = 12;

/// Everything a worker needs to run its shard. Plain data: the struct is
/// captured across fork(), not serialized.
struct ShardWorkerConfig {
  int shard_index = 0;
  int64_t shard_begin = 0;
  int64_t shard_end = 0;    ///< Exclusive.
  int64_t resume_from = 0;  ///< First trial to execute (>= shard_begin).
  /// 0 for the initial dispatch, incremented per re-dispatch; echoed in the
  /// shard preamble so the coordinator can discard stale streams.
  int64_t generation = 0;
  uint64_t master_seed = 0;
  int64_t max_retries = 0;  ///< In-process per-trial retries (not shard retries).
};

/// The sose_worker app mode: executes the configured shard of `trial`,
/// streaming records to `write_fd`. Designed as a Subprocess::ChildMain body
/// (the child is forked, not exec'd, so `trial` crosses as a captured
/// closure); returns the worker exit code. Deterministic chaos sites
/// `shard_worker/crash|hang|garbage-output` are evaluated before each
/// trial when fault injection is active — fault-plan call counts restart in
/// every forked incarnation, so `FailCall(site, n)` fires before the n-th
/// remaining trial of *every* dispatch of every shard.
int RunShardWorker(const TrialFn& trial, const ShardWorkerConfig& config,
                   int write_fd);

/// A decoded wire record (discriminated by `kind`).
struct ShardWireRecord {
  enum class Kind { kFormat, kShard, kHeartbeat, kOk, kFault, kDone };
  Kind kind = Kind::kHeartbeat;
  // kShard:
  int64_t shard_index = 0;
  int64_t shard_begin = 0;
  int64_t shard_end = 0;
  int64_t resume_from = 0;
  int64_t generation = 0;
  // kHeartbeat / kOk / kFault: the trial index. kDone: the shard end.
  int64_t trial = 0;
  // kOk / kFault:
  internal_trial::TrialAttemptResult record;
};

/// Encoders (each returns one newline-terminated CSV record).
std::string EncodeFormatRecord();
std::string EncodeShardRecord(const ShardWorkerConfig& config);
std::string EncodeHeartbeatRecord(int64_t t);
std::string EncodeTrialRecord(int64_t t,
                              const internal_trial::TrialAttemptResult& record);
std::string EncodeDoneRecord(int64_t shard_end);

/// Decodes one framed record (no trailing newline). Fails with
/// kInvalidArgument on malformed input — the coordinator escalates that to a
/// protocol violation.
[[nodiscard]] Result<ShardWireRecord> DecodeShardWireRecord(
    const std::string& line);

}  // namespace sose

#endif  // SOSE_OSE_SHARD_WORKER_H_
