#include "ose/threshold_search.h"

namespace sose {

Result<ThresholdResult> FindMinimalRows(const FailureAtRows& failure_at,
                                        const ThresholdSearchOptions& options) {
  if (options.m_lo < 1 || options.m_hi < options.m_lo) {
    return Status::InvalidArgument("FindMinimalRows: bad search range");
  }
  if (options.delta <= 0.0 || options.delta >= 1.0) {
    return Status::InvalidArgument("FindMinimalRows: delta must be in (0,1)");
  }
  ThresholdResult result;
  auto probe = [&](int64_t m) -> Result<bool> {
    SOSE_ASSIGN_OR_RETURN(FailureEstimate estimate, failure_at(m));
    // The rate is over completed trials, so quarantined trials shrink the
    // sample without biasing the bisection; surface their count to callers.
    result.total_faulted += estimate.faulted;
    result.any_partial = result.any_partial || estimate.partial;
    result.probes.push_back(ThresholdProbe{m, std::move(estimate)});
    return result.probes.back().estimate.rate <= options.delta;
  };

  // Phase 1: doubling until success (or the upper end of the range).
  int64_t lo_fail = 0;  // Largest known-failing m (0 = none known).
  int64_t hi_pass = -1; // Smallest known-passing m (-1 = none known).
  int64_t m = options.m_lo;
  while (true) {
    SOSE_ASSIGN_OR_RETURN(bool pass, probe(m));
    if (pass) {
      hi_pass = m;
      break;
    }
    lo_fail = m;
    if (m >= options.m_hi) break;
    m = std::min(options.m_hi, m * 2);
  }
  if (hi_pass < 0) {
    // Even m_hi fails: report the boundary, unbracketed.
    result.m_star = options.m_hi;
    result.bracketed = false;
    return result;
  }
  if (lo_fail == 0) {
    // Even m_lo passes: the threshold is at or below the boundary.
    result.m_star = options.m_lo;
    result.bracketed = false;
    return result;
  }

  // Phase 2: bisection on [lo_fail, hi_pass].
  while (static_cast<double>(hi_pass - lo_fail) >
         options.relative_tolerance * static_cast<double>(hi_pass)) {
    const int64_t mid = lo_fail + (hi_pass - lo_fail) / 2;
    if (mid == lo_fail || mid == hi_pass) break;
    SOSE_ASSIGN_OR_RETURN(bool pass, probe(mid));
    if (pass) {
      hi_pass = mid;
    } else {
      lo_fail = mid;
    }
  }
  result.m_star = hi_pass;
  result.bracketed = true;
  return result;
}

}  // namespace sose
