#ifndef SOSE_OSE_THRESHOLD_SEARCH_H_
#define SOSE_OSE_THRESHOLD_SEARCH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/status.h"
#include "ose/failure_estimator.h"

namespace sose {

/// Evaluates Pr[failure] at a candidate target dimension m.
using FailureAtRows = std::function<Result<FailureEstimate>(int64_t m)>;

/// One probed point of a threshold search.
struct ThresholdProbe {
  int64_t m = 0;
  FailureEstimate estimate;
};

/// Result of searching for the minimal target dimension m* with
/// Pr[failure] <= delta.
struct ThresholdResult {
  /// Minimal m found with failure rate <= delta (point estimate).
  int64_t m_star = 0;
  /// Whether the search bracketed the threshold inside [m_lo, m_hi]
  /// (false means m_star is clamped at a search boundary).
  bool bracketed = false;
  /// Every (m, estimate) probed, in probe order.
  std::vector<ThresholdProbe> probes;
  /// Trials quarantined by the trial runner, summed across probes.
  int64_t total_faulted = 0;
  /// True iff any probe's estimate was deadline-truncated.
  bool any_partial = false;
};

/// Options for FindMinimalRows.
struct ThresholdSearchOptions {
  int64_t m_lo = 1;        ///< Inclusive lower end of the search range.
  int64_t m_hi = 1 << 20;  ///< Inclusive upper end of the search range.
  double delta = 0.1;      ///< Target failure probability.
  /// Bisection stops when the bracket ratio drops below this (the quantity
  /// of interest is the exponent of m*, so relative precision is the right
  /// stopping rule).
  double relative_tolerance = 0.05;
};

/// Finds the (statistically) minimal m with failure(m) <= delta by doubling
/// up from m_lo to bracket the threshold and then bisecting. Assumes
/// failure(m) is non-increasing in m in expectation; Monte-Carlo noise is
/// tolerated, the returned m_star is the bisection's final success point.
[[nodiscard]] Result<ThresholdResult> FindMinimalRows(const FailureAtRows& failure_at,
                                                      const ThresholdSearchOptions& options);

}  // namespace sose

#endif  // SOSE_OSE_THRESHOLD_SEARCH_H_
