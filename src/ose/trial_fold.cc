#include "ose/trial_fold.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>

#include "core/metrics/metrics.h"
#include "core/random.h"

namespace sose::internal_trial {

namespace {

// Retry attempt r of a trial draws from a stream disjoint from every
// attempt-0 stream (which use DeriveSeed(master, t) directly): re-deriving
// from the trial's base seed with a salted index cannot collide with another
// trial's base seed except by 64-bit accident.
constexpr uint64_t kRetryStream = 0x5e7121e5ULL;

bool FileExists(const std::string& path) {
  std::ifstream file(path);
  return file.good();
}

}  // namespace

bool ParseWireInt(const std::string& text, int64_t* value) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  *value = std::strtoll(text.c_str(), &end, 10);
  return errno == 0 && end == text.c_str() + text.size();
}

bool ParseWireUInt(const std::string& text, uint64_t* value) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  *value = std::strtoull(text.c_str(), &end, 10);
  return errno == 0 && end == text.c_str() + text.size();
}

Status ValidateRunnerOptions(const TrialRunnerOptions& options) {
  if (options.trials <= 0) {
    return Status::InvalidArgument("RunTrials: trials must be positive");
  }
  if (options.max_retries < 0) {
    return Status::InvalidArgument("RunTrials: max_retries must be >= 0");
  }
  if (options.error_budget < 0.0 || !std::isfinite(options.error_budget)) {
    return Status::InvalidArgument(
        "RunTrials: error_budget must be finite and >= 0");
  }
  if (options.deadline_seconds < 0.0 ||
      !std::isfinite(options.deadline_seconds)) {
    return Status::InvalidArgument(
        "RunTrials: deadline_seconds must be finite and >= 0");
  }
  if (options.checkpoint_every < 0) {
    return Status::InvalidArgument("RunTrials: checkpoint_every must be >= 0");
  }
  if (options.checkpoint_every > 0 && options.checkpoint_path.empty()) {
    return Status::InvalidArgument(
        "RunTrials: checkpoint_every requires checkpoint_path");
  }
  if (options.threads < 0) {
    return Status::InvalidArgument(
        "RunTrials: threads must be >= 0 (0 = hardware concurrency)");
  }
  if (options.workers < 1) {
    return Status::InvalidArgument(
        "RunTrials: workers must be >= 1 (1 = in-process execution)");
  }
  if (options.shards < 0) {
    return Status::InvalidArgument(
        "RunTrials: shards must be >= 0 (0 = one shard per worker)");
  }
  if (options.transport != "fork" && options.transport != "socket") {
    return Status::InvalidArgument(
        "RunTrials: transport must be 'fork' or 'socket', got '" +
        options.transport + "'");
  }
  if (UsesShardCoordinator(options) && options.threads > 1) {
    return Status::InvalidArgument(
        "RunTrials: multi-process execution (workers/shards/transport) is "
        "incompatible with threads > 1; pick one parallelism axis");
  }
  if (options.transport == "socket") {
    if (options.agent_endpoints.empty()) {
      return Status::InvalidArgument(
          "RunTrials: transport 'socket' requires agent_endpoints "
          "(unix:/path or tcp:host:port, comma-separated)");
    }
    if (options.trial_spec.empty()) {
      return Status::InvalidArgument(
          "RunTrials: transport 'socket' requires a trial_spec — a remote "
          "agent cannot receive the TrialFn closure");
    }
  }
  if (UsesShardCoordinator(options)) {
    if (options.heartbeat_timeout_seconds <= 0.0 ||
        !std::isfinite(options.heartbeat_timeout_seconds)) {
      return Status::InvalidArgument(
          "RunTrials: heartbeat_timeout_seconds must be finite and > 0");
    }
    if (options.max_shard_retries < 0) {
      return Status::InvalidArgument(
          "RunTrials: max_shard_retries must be >= 0");
    }
    if (options.backoff_initial_seconds < 0.0 ||
        !std::isfinite(options.backoff_initial_seconds)) {
      return Status::InvalidArgument(
          "RunTrials: backoff_initial_seconds must be finite and >= 0");
    }
    if (options.backoff_multiplier < 1.0 ||
        !std::isfinite(options.backoff_multiplier)) {
      return Status::InvalidArgument(
          "RunTrials: backoff_multiplier must be finite and >= 1");
    }
  }
  return Status::OK();
}

bool UsesShardCoordinator(const TrialRunnerOptions& options) {
  return options.workers > 1 || options.shards > 1 ||
         options.transport != "fork";
}

std::string BudgetMessage(const TrialRunReport& report, double budget) {
  return "error budget exceeded: " + std::to_string(report.faulted) +
         " faulted vs " + std::to_string(report.completed) +
         " completed trials (budget " + std::to_string(budget) +
         "); taxonomy: " + report.taxonomy.ToString();
}

TrialAttemptResult ExecuteTrial(const TrialFn& trial, uint64_t master_seed,
                                int64_t max_retries, int64_t t) {
  SOSE_SPAN("trial.execute");
  TrialAttemptResult record;
  const uint64_t base_seed = DeriveSeed(master_seed, static_cast<uint64_t>(t));
  Result<TrialOutcome> outcome = trial(base_seed);
  for (int64_t attempt = 1; !outcome.ok() && attempt <= max_retries;
       ++attempt) {
    ++record.retries_used;
    outcome = trial(
        DeriveSeed(base_seed, kRetryStream + static_cast<uint64_t>(attempt)));
  }
  if (outcome.ok()) {
    record.outcome = outcome.value();
  } else {
    record.status = outcome.status();
  }
  return record;
}

Status FoldOutcome(const TrialAttemptResult& record, int64_t t,
                   const TrialRunnerOptions& options, TrialRunReport* report) {
  // All `trial.*` counters are incremented here, on the supervisor, in
  // ascending trial order — never from workers — so their totals are
  // bit-identical across `--threads` and `--workers` values just like the
  // report itself.
  report->retries_used += record.retries_used;
  SOSE_COUNTER_ADD("trial.retries", record.retries_used);
  if (record.status.ok()) {
    ++report->completed;
    SOSE_COUNTER_INC("trial.completed");
    report->epsilon_sum += record.outcome.epsilon;
    if (record.outcome.epsilon > report->epsilon_max) {
      report->epsilon_max = record.outcome.epsilon;
    }
    if (record.outcome.failure) {
      ++report->failures;
      SOSE_COUNTER_INC("trial.failures");
    }
  } else {
    ++report->faulted;
    report->taxonomy.Record(record.status);
    SOSE_COUNTER_INC("trial.quarantined");
    SOSE_COUNTER_ADD_DYNAMIC(
        "trial.fault." + std::string(StatusCodeToString(record.status.code())),
        1);
    // Fail fast once the budget is unreachable even if every remaining
    // trial completes — a systematically broken run should not grind
    // through all its trials first.
    const int64_t remaining = options.trials - t - 1;
    if (static_cast<double>(report->faulted) >
        options.error_budget *
            static_cast<double>(report->completed + remaining)) {
      SOSE_COUNTER_INC("trial.budget_aborts");
      return Status::FailedPrecondition(
          BudgetMessage(*report, options.error_budget));
    }
  }
  return Status::OK();
}

Result<int64_t> ResumeFromCheckpoint(const TrialRunnerOptions& options,
                                     TrialRunReport* report) {
  if (options.checkpoint_path.empty() || !FileExists(options.checkpoint_path)) {
    return static_cast<int64_t>(0);
  }
  SOSE_ASSIGN_OR_RETURN(TrialCheckpoint checkpoint,
                        ReadTrialCheckpoint(options.checkpoint_path));
  if (checkpoint.master_seed != options.seed) {
    return Status::FailedPrecondition(
        "RunTrials: checkpoint " + options.checkpoint_path +
        " was written with a different master seed; delete it to restart");
  }
  if (checkpoint.report.requested != options.trials ||
      checkpoint.next_trial > options.trials) {
    return Status::FailedPrecondition(
        "RunTrials: checkpoint " + options.checkpoint_path +
        " does not match the requested trial count; delete it to restart");
  }
  *report = checkpoint.report;
  report->partial = false;
  SOSE_COUNTER_INC("trial.resumes");
  return checkpoint.next_trial;
}

}  // namespace sose::internal_trial
