#ifndef SOSE_OSE_TRIAL_FOLD_H_
#define SOSE_OSE_TRIAL_FOLD_H_

#include <cstdint>
#include <string>

#include "core/status.h"
#include "ose/trial_runner.h"

/// The execution/aggregation seam of the trial runner, shared by every
/// execution backend: the serial loop, the in-process thread pool, and the
/// multi-process shard coordinator (shard_coordinator.h). All three must
/// derive identical per-trial seed streams and fold outcomes with identical
/// arithmetic in ascending trial order — that is the whole bitwise-parity
/// story — so the two halves live here exactly once.
///
/// This is an internal header: nothing in it is part of the public estimator
/// surface, and its contracts may change whenever trial_runner.h does.

namespace sose::internal_trial {

/// What one trial produced after its in-process retries.
struct TrialAttemptResult {
  Status status = Status::OK();  ///< Final status once retries are exhausted.
  TrialOutcome outcome;          ///< Valid iff status.ok().
  int64_t retries_used = 0;
};

/// Runs trial `t` from its derived seed stream, retrying up to `max_retries`
/// times on freshly derived seeds. Attempt 0 of trial t receives
/// DeriveSeed(master_seed, t) — identical across every backend and to the
/// pre-runner estimators.
TrialAttemptResult ExecuteTrial(const TrialFn& trial, uint64_t master_seed,
                                int64_t max_retries, int64_t t);

/// Folds trial `t`'s record into `report` and applies the pessimistic error
/// budget fast-fail. Callers must fold in ascending `t` so every field —
/// including the floating-point epsilon_sum — accumulates in the same order
/// on every backend. Increments the supervisor-side `trial.*` counters.
[[nodiscard]] Status FoldOutcome(const TrialAttemptResult& record, int64_t t,
                                 const TrialRunnerOptions& options,
                                 TrialRunReport* report);

/// The kFailedPrecondition text shared by the fast-fail and the final budget
/// check (it embeds the fold-time counters, so parity tests can compare it).
std::string BudgetMessage(const TrialRunReport& report, double budget);

/// Validates a TrialRunnerOptions (shared by RunTrials and
/// RunTrialsSharded).
[[nodiscard]] Status ValidateRunnerOptions(const TrialRunnerOptions& options);

/// True when the options route through the multi-process shard coordinator:
/// more than one worker process, an explicit multi-shard split, or a
/// non-fork transport. Shared by the RunTrials routing decision and the
/// option validator so they can never disagree.
bool UsesShardCoordinator(const TrialRunnerOptions& options);

/// If `options.checkpoint_path` names an existing checkpoint, loads it into
/// `report` (validating master seed and trial count) and returns the first
/// trial to run; otherwise leaves `report` untouched and returns 0.
[[nodiscard]] Result<int64_t> ResumeFromCheckpoint(
    const TrialRunnerOptions& options, TrialRunReport* report);

/// Strict whole-string integer parses used by the checkpoint reader and the
/// shard wire decoder (empty strings and trailing garbage are rejected).
bool ParseWireInt(const std::string& text, int64_t* value);
bool ParseWireUInt(const std::string& text, uint64_t* value);

}  // namespace sose::internal_trial

#endif  // SOSE_OSE_TRIAL_FOLD_H_
