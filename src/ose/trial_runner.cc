#include "ose/trial_runner.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "core/csv.h"
#include "core/hexfloat.h"
#include "core/json_io.h"
#include "core/metrics/metrics.h"
#include "core/parallel/sharded_range.h"
#include "core/parallel/thread_pool.h"
#include "core/random.h"
#include "core/stopwatch.h"
#include "ose/shard_coordinator.h"
#include "ose/trial_fold.h"

namespace sose {

namespace {

// The execution/fold seam shared with the shard coordinator lives in
// ose/trial_fold.h; this file keeps the in-process backends (serial loop and
// thread pool) plus the checkpoint codec.
using internal_trial::BudgetMessage;
using internal_trial::ExecuteTrial;
using internal_trial::FoldOutcome;
using internal_trial::ParseWireInt;
using internal_trial::ParseWireUInt;
using internal_trial::TrialAttemptResult;

// Checkpoint schema version; bumped on incompatible format changes.
constexpr const char* kCheckpointFormat = "sose-trial-checkpoint-v1";

}  // namespace

void TrialErrorTaxonomy::Record(const Status& status) {
  Entry& entry = by_code[status.code()];
  if (entry.count == 0) entry.first_message = status.message();
  ++entry.count;
}

void TrialErrorTaxonomy::MergeFrom(const TrialErrorTaxonomy& other) {
  for (const auto& [code, entry] : other.by_code) {
    Entry& mine = by_code[code];
    if (mine.count == 0) mine.first_message = entry.first_message;
    mine.count += entry.count;
  }
}

int64_t TrialErrorTaxonomy::Total() const {
  int64_t total = 0;
  for (const auto& [code, entry] : by_code) {
    (void)code;
    total += entry.count;
  }
  return total;
}

std::string TrialErrorTaxonomy::ToString() const {
  if (by_code.empty()) return "none";
  std::string out;
  for (const auto& [code, entry] : by_code) {
    if (!out.empty()) out += "; ";
    out += StatusCodeToString(code);
    out += " x";
    out += std::to_string(entry.count);
  }
  return out;
}

Status WriteTrialCheckpoint(const std::string& path,
                            const TrialCheckpoint& checkpoint) {
  CsvWriter csv({"key", "value", "count", "message"});
  auto add = [&csv](const std::string& key, const std::string& value) {
    csv.NewRow();
    csv.AddCell(key);
    csv.AddCell(value);
  };
  add("format", kCheckpointFormat);
  add("master_seed", std::to_string(checkpoint.master_seed));
  add("next_trial", std::to_string(checkpoint.next_trial));
  add("requested", std::to_string(checkpoint.report.requested));
  add("completed", std::to_string(checkpoint.report.completed));
  add("faulted", std::to_string(checkpoint.report.faulted));
  add("retries_used", std::to_string(checkpoint.report.retries_used));
  add("failures", std::to_string(checkpoint.report.failures));
  // Hexfloat: the sums must round-trip bit-for-bit for resumed runs to match
  // uninterrupted ones exactly.
  add("epsilon_sum", FormatHexDouble(checkpoint.report.epsilon_sum));
  add("epsilon_max", FormatHexDouble(checkpoint.report.epsilon_max));
  for (const auto& [code, entry] : checkpoint.report.taxonomy.by_code) {
    csv.NewRow();
    csv.AddCell("fault");
    csv.AddCell(StatusCodeToString(code));
    csv.AddInt(entry.count);
    csv.AddCell(entry.first_message);
  }
  const std::string payload = csv.ToString();
  SOSE_COUNTER_INC("trial.checkpoint.writes");
  SOSE_COUNTER_ADD("trial.checkpoint.write_bytes",
                   static_cast<int64_t>(payload.size()));
  // WriteStringToFile goes through tmp + rename, so a reader (or a resume
  // after a kill mid-write) never sees a torn document at `path`.
  return WriteStringToFile(path, payload);
}

Result<TrialCheckpoint> ReadTrialCheckpoint(const std::string& path) {
  SOSE_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  SOSE_COUNTER_INC("trial.checkpoint.reads");
  SOSE_COUNTER_ADD("trial.checkpoint.read_bytes",
                   static_cast<int64_t>(content.size()));
  // Every complete record ends in a newline. A file cut off mid-record — a
  // deadline kill landing on a filesystem without atomic rename, or a copy
  // truncated in flight — leaves a trailing partial line; drop it rather
  // than failing the whole resume, since checkpoints are cumulative and the
  // prior fields are intact. The completeness check below still rejects a
  // file torn so early that required fields are missing.
  if (!content.empty() && content.back() != '\n') {
    const size_t last_newline = content.find_last_of('\n');
    content.erase(last_newline == std::string::npos ? 0 : last_newline + 1);
  }
  SOSE_ASSIGN_OR_RETURN(CsvDocument doc, ParseCsv(content));
  TrialCheckpoint checkpoint;
  bool saw_format = false;
  std::set<std::string> seen_keys;
  for (const std::vector<std::string>& row : doc.rows) {
    if (row.empty()) continue;
    const std::string& key = row[0];
    const std::string value = row.size() > 1 ? row[1] : "";
    seen_keys.insert(key);
    bool ok = true;
    if (key == "format") {
      saw_format = true;
      if (value != kCheckpointFormat) {
        return Status::FailedPrecondition(
            "ReadTrialCheckpoint: unknown format '" + value + "' in " + path);
      }
    } else if (key == "master_seed") {
      ok = ParseWireUInt(value, &checkpoint.master_seed);
    } else if (key == "next_trial") {
      ok = ParseWireInt(value, &checkpoint.next_trial);
    } else if (key == "requested") {
      ok = ParseWireInt(value, &checkpoint.report.requested);
    } else if (key == "completed") {
      ok = ParseWireInt(value, &checkpoint.report.completed);
    } else if (key == "faulted") {
      ok = ParseWireInt(value, &checkpoint.report.faulted);
    } else if (key == "retries_used") {
      ok = ParseWireInt(value, &checkpoint.report.retries_used);
    } else if (key == "failures") {
      ok = ParseWireInt(value, &checkpoint.report.failures);
    } else if (key == "epsilon_sum") {
      ok = ParseHexDouble(value, &checkpoint.report.epsilon_sum);
    } else if (key == "epsilon_max") {
      ok = ParseHexDouble(value, &checkpoint.report.epsilon_max);
    } else if (key == "fault") {
      StatusCode code = StatusCode::kInternal;
      int64_t count = 0;
      if (row.size() < 3 || !StatusCodeFromString(value, &code) ||
          !ParseWireInt(row[2], &count) || count <= 0) {
        ok = false;
      } else {
        TrialErrorTaxonomy::Entry& entry =
            checkpoint.report.taxonomy.by_code[code];
        entry.count = count;
        entry.first_message = row.size() > 3 ? row[3] : "";
      }
    }
    // Unknown keys are ignored for forward compatibility.
    if (!ok) {
      return Status::FailedPrecondition(
          "ReadTrialCheckpoint: malformed field '" + key + "' in " + path);
    }
  }
  if (!saw_format) {
    return Status::FailedPrecondition(
        "ReadTrialCheckpoint: missing format line in " + path);
  }
  // Completeness: a resume from a checkpoint missing a scalar field would
  // silently continue from zeroed state. (The `fault` rows are legitimately
  // absent in clean runs.)
  for (const char* required :
       {"master_seed", "next_trial", "requested", "completed", "faulted",
        "retries_used", "failures", "epsilon_sum", "epsilon_max"}) {
    if (!seen_keys.contains(required)) {
      return Status::FailedPrecondition(
          std::string("ReadTrialCheckpoint: missing field '") + required +
          "' in " + path + " (truncated checkpoint?)");
    }
  }
  return checkpoint;
}

Result<TrialRunReport> RunTrials(const TrialFn& trial,
                                 const TrialRunnerOptions& options) {
  SOSE_RETURN_IF_ERROR(internal_trial::ValidateRunnerOptions(options));

  if (internal_trial::UsesShardCoordinator(options)) {
    // Multi-process backend: shard workers (forked or behind remote agents),
    // supervised and folded by the coordinator. Same parity contract as the
    // threaded path.
    return RunTrialsSharded(trial, options);
  }

  TrialRunReport report;
  report.requested = options.trials;
  const bool checkpointing = !options.checkpoint_path.empty();
  SOSE_ASSIGN_OR_RETURN(
      int64_t start, internal_trial::ResumeFromCheckpoint(options, &report));

  Stopwatch watch;
  int64_t next_trial = start;
  const int num_threads = ResolveThreadCount(options.threads);

  if (num_threads <= 1 || options.trials - start <= 1) {
    // Serial path: execute and fold trial by trial.
    for (int64_t t = start; t < options.trials; ++t) {
      // The deadline is checked between trials (a trial in flight always
      // finishes) and never before the first, so every run makes progress.
      if (options.deadline_seconds > 0.0 && t > start &&
          watch.ElapsedSeconds() > options.deadline_seconds) {
        report.partial = true;
        next_trial = t;
        SOSE_COUNTER_INC("trial.deadline_hits");
        break;
      }
      const TrialAttemptResult record =
          ExecuteTrial(trial, options.seed, options.max_retries, t);
      SOSE_RETURN_IF_ERROR(FoldOutcome(record, t, options, &report));
      next_trial = t + 1;
      if (options.checkpoint_every > 0 &&
          (t + 1 - start) % options.checkpoint_every == 0) {
        SOSE_RETURN_IF_ERROR(WriteTrialCheckpoint(
            options.checkpoint_path,
            TrialCheckpoint{options.seed, next_trial, report}));
      }
    }
  } else {
    // Parallel path. Workers claim trial indices from a sharded range (own
    // shard first, stealing for tail balance), execute them with the exact
    // per-trial seed streams of the serial path, and deposit results into
    // per-trial slots. The supervisor — this thread — folds the slots in
    // ascending trial order with the same FoldOutcome arithmetic, so the
    // report, taxonomy, and checkpoint bytes are bit-identical to a serial
    // run regardless of thread count or scheduling.
    const int64_t total = options.trials;
    std::vector<TrialAttemptResult> records(static_cast<size_t>(total));
    std::unique_ptr<std::atomic<uint8_t>[]> ready(
        new std::atomic<uint8_t>[static_cast<size_t>(total)]);
    for (int64_t i = 0; i < total; ++i) {
      ready[static_cast<size_t>(i)].store(0, std::memory_order_relaxed);
    }
    // Deadline and budget aborts propagate to workers through this flag:
    // a worker finishes its in-flight trial, then stops claiming.
    std::atomic<bool> stop{false};
    // The supervisor's wakeup handshake needs a bare mutex + condvar pair;
    // ThreadPool/ShardedRange cover work distribution, not this folding
    // protocol, so the raw primitives are sanctioned here.
    std::mutex mu;  // sose-lint: allow(concurrency)
    std::condition_variable cv;  // sose-lint: allow(concurrency)
    ShardedRange range(start, total, num_threads);
    Status run_error = Status::OK();

    {
      ThreadPool pool(num_threads);
      for (int w = 0; w < num_threads; ++w) {
        pool.Submit([&, w] {
          int64_t t = 0;
          while (!stop.load(std::memory_order_acquire) &&
                 range.Claim(w, &t)) {
            records[static_cast<size_t>(t)] =
                ExecuteTrial(trial, options.seed, options.max_retries, t);
            ready[static_cast<size_t>(t)].store(1, std::memory_order_release);
            // Lock/unlock before notifying: the supervisor re-checks the
            // ready flag under `mu`, so this handshake cannot lose a wakeup.
            // sose-lint: allow(concurrency)
            { std::lock_guard<std::mutex> lock(mu); }
            cv.notify_one();
          }
        });
      }

      bool deadline_hit = false;
      for (int64_t t = start; t < total; ++t) {
        if (!ready[static_cast<size_t>(t)].load(std::memory_order_acquire)) {
          std::unique_lock<std::mutex> lock(mu);  // sose-lint: allow(concurrency)
          while (!ready[static_cast<size_t>(t)].load(
              std::memory_order_acquire)) {
            // The first trial is always waited out (every run makes
            // progress); later ones respect the deadline.
            if (options.deadline_seconds > 0.0 && t > start &&
                watch.ElapsedSeconds() > options.deadline_seconds) {
              deadline_hit = true;
              break;
            }
            if (options.deadline_seconds > 0.0) {
              cv.wait_for(lock, std::chrono::milliseconds(1));
            } else {
              cv.wait(lock);
            }
          }
        }
        if (deadline_hit &&
            !ready[static_cast<size_t>(t)].load(std::memory_order_acquire)) {
          // Fold stops at the first unready trial: the report covers the
          // contiguous prefix [start, t). Trials beyond it that happened to
          // finish are discarded — a resume re-runs them from the same
          // derived seeds, keeping resumed runs bitwise identical.
          report.partial = true;
          next_trial = t;
          SOSE_COUNTER_INC("trial.deadline_hits");
          break;
        }
        const Status fold =
            FoldOutcome(records[static_cast<size_t>(t)], t, options, &report);
        if (!fold.ok()) {
          run_error = fold;
          break;
        }
        next_trial = t + 1;
        if (options.checkpoint_every > 0 &&
            (t + 1 - start) % options.checkpoint_every == 0) {
          const Status written = WriteTrialCheckpoint(
              options.checkpoint_path,
              TrialCheckpoint{options.seed, next_trial, report});
          if (!written.ok()) {
            run_error = written;
            break;
          }
        }
      }
      stop.store(true, std::memory_order_release);
      // ThreadPool's destructor joins the workers before the records,
      // flags, and range above go out of scope.
    }
    if (!run_error.ok()) return run_error;
  }

  if (report.partial) {
    // Persist progress so a follow-up run resumes instead of restarting.
    if (checkpointing) {
      SOSE_RETURN_IF_ERROR(WriteTrialCheckpoint(
          options.checkpoint_path,
          TrialCheckpoint{options.seed, next_trial, report}));
    }
    return report;
  }
  if (static_cast<double>(report.faulted) >
      options.error_budget * static_cast<double>(report.completed)) {
    return Status::FailedPrecondition(
        BudgetMessage(report, options.error_budget));
  }
  if (checkpointing) {
    // A finished run's checkpoint would otherwise short-circuit the next one.
    std::remove(options.checkpoint_path.c_str());
  }
  return report;
}

}  // namespace sose
