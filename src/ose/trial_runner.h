#ifndef SOSE_OSE_TRIAL_RUNNER_H_
#define SOSE_OSE_TRIAL_RUNNER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "core/status.h"

namespace sose {

/// Per-StatusCode tally of quarantined trial errors. Keyed by code so long
/// runs can report *what kind* of faults they survived ("numerical-error x3")
/// without storing one message per trial.
struct TrialErrorTaxonomy {
  struct Entry {
    int64_t count = 0;
    /// The first message seen for this code (later ones are dropped).
    std::string first_message;
  };

  /// std::map: deterministic iteration for tables and checkpoints.
  std::map<StatusCode, Entry> by_code;

  /// Folds one quarantined error in.
  void Record(const Status& status);

  /// Folds another taxonomy in: counts add per code; for codes this taxonomy
  /// has not seen, `other`'s first_message is adopted. Counts are therefore
  /// merge-order independent; first_message keeps the message of whichever
  /// operand is merged first, matching Record's first-seen-wins rule.
  void MergeFrom(const TrialErrorTaxonomy& other);

  /// Sum of counts across codes.
  int64_t Total() const;

  bool empty() const { return by_code.empty(); }

  /// "numerical-error x3; internal x1", or "none".
  std::string ToString() const;
};

/// What one Monte-Carlo trial observed.
struct TrialOutcome {
  /// The trial's measured distortion ε (diagnostic).
  double epsilon = 0.0;
  /// True iff the trial counts as an embedding failure.
  bool failure = false;
};

/// Runs one trial from a derived seed. Attempt 0 of trial t receives
/// DeriveSeed(options.seed, t) — identical to the pre-runner estimators, so
/// fault-free runs are bit-for-bit reproducible across versions. Retries
/// receive fresh seeds derived from the trial's base seed.
using TrialFn = std::function<Result<TrialOutcome>(uint64_t trial_seed)>;

/// Supervisor policy. All fields are validated by RunTrials.
struct TrialRunnerOptions {
  int64_t trials = 200;
  /// Master seed; trial t uses the derived stream DeriveSeed(seed, t).
  uint64_t seed = 1;
  /// Faulted trials are re-run up to this many times with freshly derived
  /// seeds before being quarantined. 0 disables retries.
  int64_t max_retries = 2;
  /// The run fails (kFailedPrecondition) if quarantined trials exceed
  /// error_budget * completed trials. 0 tolerates no faults at all.
  double error_budget = 0.1;
  /// Wall-clock limit in seconds; when exceeded the runner stops and returns
  /// a partial report over the trials completed so far. At least one trial
  /// always runs. 0 disables the deadline.
  double deadline_seconds = 0.0;
  /// Serialize a checkpoint to `checkpoint_path` every this many trials
  /// (and on deadline exit). 0 disables checkpointing.
  int64_t checkpoint_every = 0;
  /// Worker threads executing trials. 1 = serial (default), 0 = hardware
  /// concurrency, N > 1 = fixed pool of N workers. Every value produces
  /// bit-identical statistics, taxonomy, and checkpoint bytes: workers only
  /// *execute* trials (each from its own derived seed stream), while a
  /// supervisor folds outcomes in ascending trial order with the same
  /// arithmetic as the serial loop. With threads > 1 the TrialFn must be
  /// safe to call concurrently from multiple threads.
  int threads = 1;
  /// Worker *processes* executing trials. 1 = in-process execution
  /// (default); N > 1 forks N shard workers supervised by a crash-tolerant
  /// coordinator (see docs/robustness.md). Mutually exclusive with
  /// threads > 1 — pick one parallelism axis. Like threads, every value
  /// produces bit-identical statistics, taxonomy, and checkpoint bytes.
  int workers = 1;
  /// Coordinator-only knobs (ignored unless workers > 1):
  /// a worker silent for longer than this is presumed hung, killed, and its
  /// shard re-dispatched from the last received trial.
  double heartbeat_timeout_seconds = 30.0;
  /// How many times one shard may be re-dispatched after worker failures
  /// before the shard is quarantined (its remaining trials are recorded as
  /// kInternal faults and charged to the error budget).
  int64_t max_shard_retries = 2;
  /// Exponential re-dispatch backoff: the r-th re-dispatch of a shard waits
  /// backoff_initial_seconds * backoff_multiplier^(r-1). Initial 0 disables
  /// the wait (used by deterministic chaos tests).
  double backoff_initial_seconds = 0.05;
  double backoff_multiplier = 2.0;
  /// Number of contiguous shards the trial range is split into. 0 (default)
  /// means one shard per worker. Decoupling the two (shards > workers) keeps
  /// at most `workers` shards in flight while bounding re-execution loss on
  /// a crash to one (finer) shard and letting idle workers steal queued
  /// shards. The split is always ShardedRange::ShardBounds over the shard
  /// count, and folding stays in global trial order, so every
  /// workers/shards/transport combination is bit-identical to serial.
  int shards = 0;
  /// How dispatched shards reach their workers: "fork" (default) forks the
  /// TrialFn closure into a child per dispatch; "socket" connects to one of
  /// `agent_endpoints` (a running sose_shard_agent) per dispatch and streams
  /// the same sose-shard-stream-v1 records back over the connection. The
  /// whole failure ladder (heartbeats, backoff re-dispatch, protocol
  /// violations, quarantine) is transport-independent.
  std::string transport = "fork";
  /// Comma-separated sose_shard_agent endpoints for the socket transport:
  /// `unix:/path/to.sock` or `tcp:host:port`. Shards are assigned
  /// round-robin by shard index.
  std::string agent_endpoints;
  /// Self-contained trial description for the socket transport (see
  /// ose/trial_spec.h): a remote agent cannot receive the TrialFn closure,
  /// so it rebuilds the identical trial from this spec. Required when
  /// transport == "socket"; ignored otherwise.
  std::string trial_spec;
  /// Where checkpoints live. If the file exists when the run starts, the
  /// runner resumes from it (the master seed and trial count must match);
  /// the file is removed once the run completes in full.
  std::string checkpoint_path;
};

/// Aggregated result of a supervised run.
struct TrialRunReport {
  /// Trials requested (== options.trials).
  int64_t requested = 0;
  /// Trials that produced an outcome.
  int64_t completed = 0;
  /// Trials quarantined after exhausting retries.
  int64_t faulted = 0;
  /// Total retry attempts spent (diagnostic).
  int64_t retries_used = 0;
  /// Embedding failures among completed trials.
  int64_t failures = 0;
  /// Sum and max of ε over completed trials.
  double epsilon_sum = 0.0;
  double epsilon_max = 0.0;
  /// True iff the deadline cut the run short; statistics cover only the
  /// completed prefix and downstream intervals should be widened.
  bool partial = false;
  TrialErrorTaxonomy taxonomy;
};

/// Runs `options.trials` seeded trials through `trial`, quarantining
/// per-trial errors instead of aborting: each faulted trial is retried with
/// fresh seeds, then tallied into the taxonomy. Fails only when options are
/// invalid, the error budget is exceeded (or provably unreachable), or a
/// checkpoint cannot be written/resumed.
///
/// With `options.threads != 1` trials run on a worker pool (static shards
/// plus work stealing for tail balance), but the report is guaranteed to
/// match the serial run bit for bit — see docs/performance.md for the
/// determinism argument.
[[nodiscard]] Result<TrialRunReport> RunTrials(const TrialFn& trial,
                                               const TrialRunnerOptions& options);

/// A serialized runner state: everything needed to resume a run such that
/// the final report is bitwise identical to an uninterrupted one.
struct TrialCheckpoint {
  uint64_t master_seed = 0;
  /// First trial index not yet reflected in `report`.
  int64_t next_trial = 0;
  TrialRunReport report;
};

/// Writes `checkpoint` to `path` as a small CSV document (see
/// docs/robustness.md for the format). The write goes through a temporary
/// file and rename, so a crash never leaves a torn checkpoint.
[[nodiscard]] Status WriteTrialCheckpoint(const std::string& path,
                                          const TrialCheckpoint& checkpoint);

/// Reads a checkpoint previously written by WriteTrialCheckpoint.
[[nodiscard]] Result<TrialCheckpoint> ReadTrialCheckpoint(const std::string& path);

}  // namespace sose

#endif  // SOSE_OSE_TRIAL_RUNNER_H_
