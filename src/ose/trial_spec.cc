#include "ose/trial_spec.h"

#include <memory>
#include <utility>
#include <vector>

#include "core/csv.h"
#include "core/hexfloat.h"
#include "hardinstance/mixtures.h"
#include "ose/failure_estimator.h"
#include "ose/trial_fold.h"
#include "sketch/registry.h"

namespace sose {

namespace {

using internal_trial::ParseWireInt;

constexpr const char* kMixtureFailureTag = "mixture-failure";

}  // namespace

std::string FormatMixtureFailureSpec(const std::string& family, int64_t m,
                                     int64_t n, int64_t sparsity, int64_t d,
                                     double mixture_epsilon,
                                     double test_epsilon,
                                     bool condition_on_no_collision,
                                     int64_t max_redraws) {
  std::string row = FormatCsvRow(
      {kMixtureFailureTag, family, std::to_string(m), std::to_string(n),
       std::to_string(sparsity), std::to_string(d),
       FormatHexDouble(mixture_epsilon), FormatHexDouble(test_epsilon),
       condition_on_no_collision ? "1" : "0", std::to_string(max_redraws)});
  // FormatCsvRow terminates records; a spec is a value, not a wire line.
  if (!row.empty() && row.back() == '\n') row.pop_back();
  return row;
}

// The resolved closure is seed-pure: it draws nothing until the runner
// hands it a per-trial seed, and the mixture sampler inside derives every
// draw from that seed. The RNG reachability the linter sees is exactly the
// deliberate TrialFn contract.
// sose-lint: allow(seed-purity)
Result<TrialFn> ResolveTrialSpec(const std::string& spec) {
  SOSE_ASSIGN_OR_RETURN(std::vector<std::string> cells, ParseCsvRecord(spec));
  auto malformed = [&spec](const char* why) {
    return Status::InvalidArgument(std::string("ResolveTrialSpec: ") + why +
                                   " in spec '" + spec + "'");
  };
  if (cells.empty()) return malformed("empty spec");
  if (cells[0] != kMixtureFailureTag) return malformed("unknown spec kind");
  int64_t m = 0;
  int64_t n = 0;
  int64_t sparsity = 0;
  int64_t d = 0;
  double mixture_epsilon = 0.0;
  double test_epsilon = 0.0;
  int64_t max_redraws = 0;
  if (cells.size() != 10 || !ParseWireInt(cells[2], &m) ||
      !ParseWireInt(cells[3], &n) || !ParseWireInt(cells[4], &sparsity) ||
      !ParseWireInt(cells[5], &d) ||
      !ParseHexDouble(cells[6], &mixture_epsilon) ||
      !ParseHexDouble(cells[7], &test_epsilon) ||
      (cells[8] != "0" && cells[8] != "1") ||
      !ParseWireInt(cells[9], &max_redraws)) {
    return malformed("mixture-failure arity or field");
  }
  const std::string family = cells[1];

  // Constructor errors (unknown family, mixture shape constraints) must
  // surface at resolve time, not on trial 0 of a remote shard, so probe both
  // constructions once here.
  SketchConfig probe_config;
  probe_config.rows = m;
  probe_config.cols = n;
  probe_config.sparsity = sparsity;
  probe_config.seed = 0;
  SOSE_RETURN_IF_ERROR(CreateSketch(family, probe_config).status());
  SOSE_ASSIGN_OR_RETURN(SectionThreeMixture mixture,
                        SectionThreeMixture::Create(n, d, mixture_epsilon));

  // The factory below matches bench::MakeFactory and the sampler matches the
  // E1/E8 lambdas cell-for-cell; combined with MakeFailureTrialFn this
  // rebuilds the exact closure the coordinator's in-process path runs, which
  // is the bitwise cross-transport parity argument (docs/robustness.md).
  SketchFactory factory =
      [family, m, n,
       sparsity](uint64_t seed) -> Result<std::unique_ptr<SketchingMatrix>> {
    SketchConfig config;
    config.rows = m;
    config.cols = n;
    config.sparsity = sparsity;
    config.seed = seed;
    return CreateSketch(family, config);
  };
  InstanceSampler sampler = [mixture = std::move(mixture)](Rng* rng) {
    return mixture.Sample(rng);
  };
  FailureTrialPolicy policy;
  policy.epsilon = test_epsilon;
  policy.condition_on_no_collision = cells[8] == "1";
  policy.max_redraws = max_redraws;
  return MakeFailureTrialFn(std::move(factory), std::move(sampler), policy);
}

}  // namespace sose
