#ifndef SOSE_OSE_TRIAL_SPEC_H_
#define SOSE_OSE_TRIAL_SPEC_H_

#include <cstdint>
#include <string>

#include "core/status.h"
#include "ose/trial_runner.h"

/// Self-contained trial descriptions for remote execution.
///
/// The fork transport ships the TrialFn closure across fork() for free; a
/// remote sose_shard_agent cannot receive a closure, so the socket transport
/// ships a *spec* — one CSV-encoded line naming everything needed to rebuild
/// the identical trial — and the agent resolves it with ResolveTrialSpec.
/// Both sides of the wire must produce bit-identical per-trial records, so a
/// spec's resolver is built on the same MakeFailureTrialFn the in-process
/// estimator uses: same sketch registry draw, same hard-instance sampler,
/// same seed-stream derivations, same arithmetic.
///
/// One spec kind ships today:
///
///   mixture-failure,<family>,<m>,<n>,<sparsity>,<d>,<mixture-eps-hex>,
///                   <test-eps-hex>,<condition 0|1>,<max_redraws>
///
/// — the Section 3 mixture failure-probability trial behind E1/E8: draw a
/// registry sketch (rows=m, cols=n) from DeriveSeed(trial_seed, 0), sample
/// U ~ SectionThreeMixture(n, d, mixture-eps) with Rng(DeriveSeed(trial_seed,
/// 1)), optionally redraw row collisions, and test the ε-embedding property
/// at test-eps. Epsilons travel as C99 hexfloats so the rebuilt trial tests
/// against the exact double the coordinator used.

namespace sose {

/// Encodes a mixture-failure spec (no trailing newline; safe to embed as one
/// CSV cell of a larger record — it is re-escaped by the carrier).
std::string FormatMixtureFailureSpec(const std::string& family, int64_t m,
                                     int64_t n, int64_t sparsity, int64_t d,
                                     double mixture_epsilon,
                                     double test_epsilon,
                                     bool condition_on_no_collision,
                                     int64_t max_redraws);

/// Resolves a spec to the executable trial. Fails with kInvalidArgument on a
/// malformed or unknown spec, and propagates constructor errors (unknown
/// sketch family, mixture shape constraints).
[[nodiscard]] Result<TrialFn> ResolveTrialSpec(const std::string& spec);

}  // namespace sose

#endif  // SOSE_OSE_TRIAL_SPEC_H_
