#include "sketch/accumulator.h"

#include "core/simd/dispatch.h"
#include "sketch/composed.h"

namespace sose {

Result<SketchAccumulator> SketchAccumulator::Create(
    std::shared_ptr<const SketchingMatrix> sketch, int64_t num_columns) {
  if (sketch == nullptr) {
    return Status::InvalidArgument("SketchAccumulator: null sketch");
  }
  if (num_columns <= 0) {
    return Status::InvalidArgument(
        "SketchAccumulator: num_columns must be positive");
  }
  // Peel composition pipelines: stream through the innermost stage, replay
  // the rest densely at query time. Walking inward prepends each outer
  // stage so outer_stages ends up in application (innermost-first) order.
  std::shared_ptr<const SketchingMatrix> innermost = sketch;
  std::vector<std::shared_ptr<const SketchingMatrix>> outer_stages;
  while (const auto* composed =
             dynamic_cast<const ComposedSketch*>(innermost.get())) {
    outer_stages.insert(outer_stages.begin(), composed->outer());
    innermost = composed->inner();
  }
  Matrix state(innermost->rows(), num_columns);
  return SketchAccumulator(std::move(sketch), std::move(innermost),
                           std::move(outer_stages), std::move(state));
}

Status SketchAccumulator::AddRow(int64_t row,
                                 const std::vector<double>& values) {
  if (row < 0 || row >= innermost_->cols()) {
    return Status::OutOfRange("SketchAccumulator::AddRow: row out of range");
  }
  if (static_cast<int64_t>(values.size()) != state_.cols()) {
    return Status::InvalidArgument(
        "SketchAccumulator::AddRow: wrong number of values");
  }
  for (const ColumnEntry& entry : innermost_->Column(row)) {
    simd::Axpy(entry.value, values.data(), state_.Row(entry.row),
               state_.cols());
  }
  return Status::OK();
}

Status SketchAccumulator::AddEntry(int64_t row, int64_t col, double value) {
  if (row < 0 || row >= innermost_->cols()) {
    return Status::OutOfRange("SketchAccumulator::AddEntry: row out of range");
  }
  if (col < 0 || col >= state_.cols()) {
    return Status::OutOfRange("SketchAccumulator::AddEntry: col out of range");
  }
  for (const ColumnEntry& entry : innermost_->Column(row)) {
    state_.At(entry.row, col) += entry.value * value;
  }
  return Status::OK();
}

Status SketchAccumulator::Merge(const SketchAccumulator& other) {
  if (other.state_.rows() != state_.rows() ||
      other.state_.cols() != state_.cols()) {
    return Status::InvalidArgument(
        "SketchAccumulator::Merge: shape mismatch");
  }
  state_.AddScaled(other.state_, 1.0);
  return Status::OK();
}

Result<Matrix> SketchAccumulator::Current() const {
  Matrix current = state_;
  for (const auto& stage : outer_stages_) {
    SOSE_ASSIGN_OR_RETURN(current, stage->ApplyDense(current));
  }
  return current;
}

}  // namespace sose
