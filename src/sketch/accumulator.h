#ifndef SOSE_SKETCH_ACCUMULATOR_H_
#define SOSE_SKETCH_ACCUMULATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/matrix.h"
#include "core/status.h"
#include "sketch/sketch.h"

namespace sose {

/// Streaming maintenance of Π A for a row-arrival / turnstile stream: rows
/// of A ∈ R^{n x k} arrive (or are updated) one at a time and the sketch
/// state is updated in O(s · k) per row — the classic streaming use of
/// Count-Sketch-style transforms. Because updates are linear, deletions
/// are just negative updates, and two accumulators over the same sketch
/// merge by addition.
///
/// Composed sketches (ComposedSketch pipelines) are peeled: updates stream
/// through the *innermost* stage only, and `Current()` replays the outer
/// stages densely — exactly the evaluation order of
/// ComposedSketch::ApplySparse, so the streamed result is bitwise
/// identical to the batch one. For a non-composed sketch `Current()`
/// simply copies `state()`.
class SketchAccumulator {
 public:
  /// Creates an accumulator maintaining Π A for A with `num_columns`
  /// columns. The sketch is shared and must outlive the accumulator.
  [[nodiscard]] static Result<SketchAccumulator> Create(
      std::shared_ptr<const SketchingMatrix> sketch, int64_t num_columns);

  /// Applies the update A[row, :] += values. `row` indexes the ambient
  /// dimension [0, sketch.cols()); `values` must have num_columns entries.
  [[nodiscard]] Status AddRow(int64_t row, const std::vector<double>& values);

  /// Rank-one convenience: A[row, col] += value.
  [[nodiscard]] Status AddEntry(int64_t row, int64_t col, double value);

  /// Merges another accumulator over the SAME sketch draw (checked by
  /// shape; the caller is responsible for using the same seed).
  [[nodiscard]] Status Merge(const SketchAccumulator& other);

  /// The streamed state of the *innermost* stage: Π_inner A, which equals
  /// Π A for non-composed sketches. Prefer Current() unless you know the
  /// sketch has a single stage.
  const Matrix& state() const { return state_; }

  /// The current full sketch Π A: the innermost streamed state with any
  /// outer composition stages applied densely, in pipeline order.
  [[nodiscard]] Result<Matrix> Current() const;

  int64_t num_columns() const { return state_.cols(); }

  /// Rows of the full sketch Current() produces (the outermost stage).
  int64_t sketch_rows() const { return sketch_->rows(); }

 private:
  SketchAccumulator(
      std::shared_ptr<const SketchingMatrix> sketch,
      std::shared_ptr<const SketchingMatrix> innermost,
      std::vector<std::shared_ptr<const SketchingMatrix>> outer_stages,
      Matrix state)
      : sketch_(std::move(sketch)),
        innermost_(std::move(innermost)),
        outer_stages_(std::move(outer_stages)),
        state_(std::move(state)) {}

  std::shared_ptr<const SketchingMatrix> sketch_;
  /// The stage updates stream through (== sketch_ when not composed).
  std::shared_ptr<const SketchingMatrix> innermost_;
  /// Remaining stages, innermost-first; Current() applies them in order.
  std::vector<std::shared_ptr<const SketchingMatrix>> outer_stages_;
  Matrix state_;
};

}  // namespace sose

#endif  // SOSE_SKETCH_ACCUMULATOR_H_
