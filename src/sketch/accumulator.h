#ifndef SOSE_SKETCH_ACCUMULATOR_H_
#define SOSE_SKETCH_ACCUMULATOR_H_

#include <cstdint>
#include <memory>

#include "core/matrix.h"
#include "core/status.h"
#include "sketch/sketch.h"

namespace sose {

/// Streaming maintenance of Π A for a row-arrival / turnstile stream: rows
/// of A ∈ R^{n x k} arrive (or are updated) one at a time and the m x k
/// sketch state is updated in O(s · k) per row — the classic streaming use
/// of Count-Sketch-style transforms. Because updates are linear, deletions
/// are just negative updates, and two accumulators over the same sketch
/// merge by addition.
class SketchAccumulator {
 public:
  /// Creates an accumulator maintaining Π A for A with `num_columns`
  /// columns. The sketch is borrowed and must outlive the accumulator.
  [[nodiscard]] static Result<SketchAccumulator> Create(
      std::shared_ptr<const SketchingMatrix> sketch, int64_t num_columns);

  /// Applies the update A[row, :] += values. `row` indexes the ambient
  /// dimension [0, sketch.cols()); `values` must have num_columns entries.
  [[nodiscard]] Status AddRow(int64_t row, const std::vector<double>& values);

  /// Rank-one convenience: A[row, col] += value.
  [[nodiscard]] Status AddEntry(int64_t row, int64_t col, double value);

  /// Merges another accumulator over the SAME sketch draw (checked by
  /// shape; the caller is responsible for using the same seed).
  [[nodiscard]] Status Merge(const SketchAccumulator& other);

  /// The current sketch state Π A.
  const Matrix& state() const { return state_; }

  int64_t num_columns() const { return state_.cols(); }

 private:
  SketchAccumulator(std::shared_ptr<const SketchingMatrix> sketch,
                    Matrix state)
      : sketch_(std::move(sketch)), state_(std::move(state)) {}

  std::shared_ptr<const SketchingMatrix> sketch_;
  Matrix state_;
};

}  // namespace sose

#endif  // SOSE_SKETCH_ACCUMULATOR_H_
