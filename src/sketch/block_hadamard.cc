#include "sketch/block_hadamard.h"

#include <cmath>

#include "sketch/hadamard.h"

namespace sose {

Result<BlockHadamard> BlockHadamard::Create(int64_t m, int64_t n, int64_t b) {
  if (n <= 0) {
    return Status::InvalidArgument("BlockHadamard: n must be positive");
  }
  if (!IsPowerOfTwo(b)) {
    return Status::InvalidArgument(
        "BlockHadamard: block order must be a power of two");
  }
  if (m <= 0 || m % b != 0) {
    return Status::InvalidArgument(
        "BlockHadamard: block order must divide m");
  }
  return BlockHadamard(m, n, b);
}

int64_t BlockHadamard::BlockId(int64_t c) const {
  SOSE_CHECK(c >= 0 && c < n_);
  return (c % m_) / b_;
}

std::vector<ColumnEntry> BlockHadamard::Column(int64_t c) const {
  SOSE_CHECK(c >= 0 && c < n_);
  const int64_t within_copy = c % m_;
  const int64_t block = within_copy / b_;
  const int64_t hadamard_col = within_copy % b_;
  const double scale = 1.0 / std::sqrt(static_cast<double>(b_));
  std::vector<ColumnEntry> entries;
  entries.reserve(static_cast<size_t>(b_));
  for (int64_t i = 0; i < b_; ++i) {
    entries.push_back(ColumnEntry{block * b_ + i,
                                  scale * HadamardEntry(i, hadamard_col)});
  }
  return entries;
}

}  // namespace sose
