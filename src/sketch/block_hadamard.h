#ifndef SOSE_SKETCH_BLOCK_HADAMARD_H_
#define SOSE_SKETCH_BLOCK_HADAMARD_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "sketch/sketch.h"

namespace sose {

/// The tightness witness of the paper's Remark 10: a *deterministic* sketch
/// formed by horizontally concatenating copies of an m x m block-diagonal
/// matrix whose diagonal blocks are (1/√b)·H_b, with H_b the order-b
/// Sylvester Hadamard matrix (entries ±1, so the sketch's entries are
/// ±1/√b = ±√(8ε) when b = 1/(8ε)).
///
/// Every column has exactly b nonzeros and unit norm; two columns either
/// share their entire heavy block (and are orthogonal, by Hadamard
/// orthogonality) or have disjoint supports. This makes Π a (0, δ)-subspace
/// embedding for U ~ D₁ whenever m = Ω(d²) — matching the paper's Theorem 9
/// lower bound up to a constant.
class BlockHadamard final : public SketchingMatrix {
 public:
  /// Creates the sketch with `m` rows, `n` columns and block order `b`.
  /// Requires b a positive power of two, b | m, and positive n.
  [[nodiscard]] static Result<BlockHadamard> Create(int64_t m, int64_t n, int64_t b);

  int64_t rows() const override { return m_; }
  int64_t cols() const override { return n_; }
  int64_t column_sparsity() const override { return b_; }
  std::string name() const override { return "blockhadamard"; }

  std::vector<ColumnEntry> Column(int64_t c) const override;

  /// The Hadamard block order b (= 1/(8ε) in the paper's parameterization).
  int64_t block_order() const { return b_; }

  /// Index of the block-diagonal block that carries column `c`'s support;
  /// two columns collide (share heavy rows) iff their block ids are equal.
  int64_t BlockId(int64_t c) const;

 private:
  BlockHadamard(int64_t m, int64_t n, int64_t b) : m_(m), n_(n), b_(b) {}

  int64_t m_;
  int64_t n_;
  int64_t b_;
};

}  // namespace sose

#endif  // SOSE_SKETCH_BLOCK_HADAMARD_H_
