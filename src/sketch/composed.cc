#include "sketch/composed.h"

#include <algorithm>
#include <map>

namespace sose {

Result<ComposedSketch> ComposedSketch::Create(
    std::shared_ptr<const SketchingMatrix> outer,
    std::shared_ptr<const SketchingMatrix> inner) {
  if (outer == nullptr || inner == nullptr) {
    return Status::InvalidArgument("ComposedSketch: null stage");
  }
  if (outer->cols() != inner->rows()) {
    return Status::InvalidArgument(
        "ComposedSketch: outer.cols() must equal inner.rows()");
  }
  return ComposedSketch(std::move(outer), std::move(inner));
}

int64_t ComposedSketch::column_sparsity() const {
  // Each inner nonzero scatters into at most s_outer rows; capped by m.
  const int64_t product = inner_->column_sparsity() * outer_->column_sparsity();
  return std::min(product, outer_->rows());
}

std::vector<ColumnEntry> ComposedSketch::Column(int64_t c) const {
  SOSE_CHECK(c >= 0 && c < cols());
  std::map<int64_t, double> accumulated;
  // One outer-column buffer is reused across the inner entries; lower-bound
  // audits call this for millions of columns, so the per-entry allocation
  // of Column() was measurable.
  std::vector<ColumnEntry> inner_entries;
  inner_entries.reserve(static_cast<size_t>(inner_->column_sparsity()));
  std::vector<ColumnEntry> outer_entries;
  outer_entries.reserve(static_cast<size_t>(outer_->column_sparsity()));
  inner_->ColumnInto(c, &inner_entries);
  for (const ColumnEntry& inner_entry : inner_entries) {
    outer_->ColumnInto(inner_entry.row, &outer_entries);
    for (const ColumnEntry& outer_entry : outer_entries) {
      accumulated[outer_entry.row] += inner_entry.value * outer_entry.value;
    }
  }
  std::vector<ColumnEntry> column;
  column.reserve(accumulated.size());
  for (const auto& [row, value] : accumulated) {
    if (value != 0.0) column.push_back(ColumnEntry{row, value});
  }
  return column;
}

Result<Matrix> ComposedSketch::ApplyDense(const Matrix& a) const {
  SOSE_ASSIGN_OR_RETURN(Matrix inner_applied, inner_->ApplyDense(a));
  return outer_->ApplyDense(inner_applied);
}

Result<std::vector<double>> ComposedSketch::ApplyVector(
    const std::vector<double>& x) const {
  SOSE_ASSIGN_OR_RETURN(std::vector<double> inner_applied,
                        inner_->ApplyVector(x));
  return outer_->ApplyVector(inner_applied);
}

Result<Matrix> ComposedSketch::ApplySparse(const CscMatrix& a) const {
  SOSE_ASSIGN_OR_RETURN(Matrix inner_applied, inner_->ApplySparse(a));
  return outer_->ApplyDense(inner_applied);
}

}  // namespace sose
