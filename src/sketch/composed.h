#ifndef SOSE_SKETCH_COMPOSED_H_
#define SOSE_SKETCH_COMPOSED_H_

#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "sketch/sketch.h"

namespace sose {

/// The product Π = Π_outer · Π_inner of two sketches: a standard pipeline
/// (e.g. Count-Sketch to m₁ = O(d²/ε²) rows, then a dense or SRHT stage down
/// to m₂ = O(d/ε²)) that combines input-sparsity apply time with the
/// optimal final dimension. The composition of an (ε₁, δ₁)- and an
/// (ε₂, δ₂)-OSE is an ((1+ε₁)(1+ε₂) − 1, δ₁ + δ₂)-OSE.
///
/// Column c of the product is Π_outer applied to Π_inner's column c, so the
/// composed object is itself a lazy, oblivious SketchingMatrix and works
/// with every analysis in this library (distortion, heavy census,
/// Algorithm 1, audits).
class ComposedSketch final : public SketchingMatrix {
 public:
  /// Composes outer ∘ inner. Fails unless outer.cols() == inner.rows().
  [[nodiscard]] static Result<ComposedSketch> Create(
      std::shared_ptr<const SketchingMatrix> outer,
      std::shared_ptr<const SketchingMatrix> inner);

  int64_t rows() const override { return outer_->rows(); }
  int64_t cols() const override { return inner_->cols(); }
  int64_t column_sparsity() const override;
  std::string name() const override {
    return outer_->name() + "*" + inner_->name();
  }

  std::vector<ColumnEntry> Column(int64_t c) const override;

  /// The composition stages. Exposed so streaming consumers (e.g.
  /// SketchAccumulator) can peel the pipeline: stream through the innermost
  /// stage and replay the outer stages densely at query time, reproducing
  /// ApplySparse bit for bit.
  const std::shared_ptr<const SketchingMatrix>& outer() const {
    return outer_;
  }
  const std::shared_ptr<const SketchingMatrix>& inner() const {
    return inner_;
  }

  /// Applies the stages in sequence (never materializes the product),
  /// preserving each stage's fast path.
  [[nodiscard]] Result<Matrix> ApplyDense(const Matrix& a) const override;
  [[nodiscard]] Result<std::vector<double>> ApplyVector(
      const std::vector<double>& x) const override;
  [[nodiscard]] Result<Matrix> ApplySparse(const CscMatrix& a) const override;

 private:
  ComposedSketch(std::shared_ptr<const SketchingMatrix> outer,
                 std::shared_ptr<const SketchingMatrix> inner)
      : outer_(std::move(outer)), inner_(std::move(inner)) {}

  std::shared_ptr<const SketchingMatrix> outer_;
  std::shared_ptr<const SketchingMatrix> inner_;
};

}  // namespace sose

#endif  // SOSE_SKETCH_COMPOSED_H_
