#include "sketch/count_sketch.h"

#include <unordered_map>

#include "core/metrics/metrics.h"
#include "core/random.h"

namespace sose {

Result<CountSketch> CountSketch::Create(int64_t m, int64_t n, uint64_t seed) {
  if (m <= 0 || n <= 0) {
    return Status::InvalidArgument("CountSketch: dimensions must be positive");
  }
  return CountSketch(m, n, seed);
}

std::vector<ColumnEntry> CountSketch::Column(int64_t c) const {
  return {ColumnEntry{Bucket(c), Sign(c)}};
}

void CountSketch::ColumnInto(int64_t c, std::vector<ColumnEntry>* out) const {
  out->clear();
  out->push_back(ColumnEntry{Bucket(c), Sign(c)});
}

Result<Matrix> CountSketch::ApplySparse(const CscMatrix& a) const {
  if (a.rows() != cols()) {
    return Status::InvalidArgument(
        "ApplySparse: input rows != sketch ambient dimension");
  }
  SOSE_SPAN("sketch.count_sketch.apply_sparse");
  SOSE_COUNTER_ADD("sketch.apply_sparse.nnz", a.nnz());
  Matrix out(m_, a.cols());
  for (int64_t j = 0; j < a.cols(); ++j) {
    for (int64_t p = a.col_ptr()[static_cast<size_t>(j)];
         p < a.col_ptr()[static_cast<size_t>(j) + 1]; ++p) {
      const int64_t r = a.row_idx()[static_cast<size_t>(p)];
      out.At(Bucket(r), j) +=
          Sign(r) * a.values()[static_cast<size_t>(p)];
    }
  }
  return out;
}

Result<Matrix> CountSketch::ApplyBatch(const CscMatrix& a) const {
  if (a.rows() != cols()) {
    return Status::InvalidArgument(
        "ApplyBatch: input rows != sketch ambient dimension");
  }
  SOSE_SPAN("sketch.count_sketch.apply_batch");
  SOSE_COUNTER_ADD("sketch.apply_batch.nnz", a.nnz());
  Matrix out(m_, a.cols());
  // Memoized column-major walk: the traversal (and therefore the bitwise
  // accumulation order) is identical to ApplySparse, but the Bucket/Sign
  // derivation — the dominant per-entry cost at s = 1 — runs once per
  // distinct ambient row instead of once per nonzero. A memo beats the
  // row-sorted traversal the other overrides use because at s = 1 the
  // O(nnz log nnz) sort costs as much as the hashing it would amortize.
  struct BucketSign {
    int64_t bucket;
    double sign;
  };
  std::unordered_map<int64_t, BucketSign> memo;
  memo.reserve(static_cast<size_t>(a.nnz()));
  for (int64_t j = 0; j < a.cols(); ++j) {
    for (int64_t p = a.col_ptr()[static_cast<size_t>(j)];
         p < a.col_ptr()[static_cast<size_t>(j) + 1]; ++p) {
      const int64_t r = a.row_idx()[static_cast<size_t>(p)];
      auto it = memo.find(r);
      if (it == memo.end()) {
        it = memo.emplace(r, BucketSign{Bucket(r), Sign(r)}).first;
      }
      out.At(it->second.bucket, j) +=
          it->second.sign * a.values()[static_cast<size_t>(p)];
    }
  }
  return out;
}

int64_t CountSketch::Bucket(int64_t c) const {
  SOSE_CHECK(c >= 0 && c < n_);
  // Separate derived streams for bucket and sign keep them independent
  // regardless of how many words UniformInt's rejection step consumes.
  Rng rng(DeriveSeed(seed_, 2 * static_cast<uint64_t>(c)));
  return static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(m_)));
}

double CountSketch::Sign(int64_t c) const {
  SOSE_CHECK(c >= 0 && c < n_);
  Rng rng(DeriveSeed(seed_, 2 * static_cast<uint64_t>(c) + 1));
  return rng.Rademacher();
}

}  // namespace sose
