#ifndef SOSE_SKETCH_COUNT_SKETCH_H_
#define SOSE_SKETCH_COUNT_SKETCH_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "sketch/sketch.h"

namespace sose {

/// Count-Sketch (Clarkson–Woodruff): the extreme sparse OSE with exactly one
/// nonzero per column. Column `c` has a single ±1 at a uniformly random row.
///
/// The classical upper bound is m = Θ(d²/(ε²δ)); the reproduced paper's
/// Theorem 8 shows this is optimal up to a constant among all s = 1 sketches.
/// Applying Π to A costs O(nnz(A)).
class CountSketch final : public SketchingMatrix {
 public:
  /// Creates an m x n Count-Sketch draw. Fails if m or n is non-positive.
  [[nodiscard]] static Result<CountSketch> Create(int64_t m, int64_t n, uint64_t seed);

  int64_t rows() const override { return m_; }
  int64_t cols() const override { return n_; }
  int64_t column_sparsity() const override { return 1; }
  std::string name() const override { return "countsketch"; }

  std::vector<ColumnEntry> Column(int64_t c) const override;
  void ColumnInto(int64_t c, std::vector<ColumnEntry>* out) const override;

  /// Fast path: with exactly one nonzero per column, Π A scatters each
  /// nonzero A_{r,j} directly to out(Bucket(r), j) — no column buffer at
  /// all. Bitwise identical to the generic scatter.
  [[nodiscard]] Result<Matrix> ApplySparse(const CscMatrix& a) const override;

  /// Batched fast path: hashes each distinct nonzero row of A exactly once
  /// (Bucket/Sign derivation is the dominant cost at s = 1) and scatters it
  /// across the whole batch. Bitwise identical to ApplySparse.
  [[nodiscard]] Result<Matrix> ApplyBatch(const CscMatrix& a) const override;
  using SketchingMatrix::ApplyBatch;

  /// The hash bucket of column `c` (exposed for the birthday-paradox
  /// experiments, which study the induced balls-into-bins process).
  int64_t Bucket(int64_t c) const;

  /// The sign of column `c`.
  double Sign(int64_t c) const;

 private:
  CountSketch(int64_t m, int64_t n, uint64_t seed)
      : m_(m), n_(n), seed_(seed) {}

  int64_t m_;
  int64_t n_;
  uint64_t seed_;
};

}  // namespace sose

#endif  // SOSE_SKETCH_COUNT_SKETCH_H_
