#include "sketch/gaussian.h"

#include <cmath>

#include "core/random.h"

namespace sose {

Result<GaussianSketch> GaussianSketch::Create(int64_t m, int64_t n,
                                              uint64_t seed) {
  if (m <= 0 || n <= 0) {
    return Status::InvalidArgument(
        "GaussianSketch: dimensions must be positive");
  }
  return GaussianSketch(m, n, seed);
}

std::vector<ColumnEntry> GaussianSketch::Column(int64_t c) const {
  SOSE_CHECK(c >= 0 && c < n_);
  Rng rng(DeriveSeed(seed_, static_cast<uint64_t>(c)));
  const double stddev = 1.0 / std::sqrt(static_cast<double>(m_));
  std::vector<ColumnEntry> entries;
  entries.reserve(static_cast<size_t>(m_));
  for (int64_t i = 0; i < m_; ++i) {
    entries.push_back(ColumnEntry{i, rng.Gaussian(0.0, stddev)});
  }
  return entries;
}

}  // namespace sose
