#ifndef SOSE_SKETCH_GAUSSIAN_H_
#define SOSE_SKETCH_GAUSSIAN_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "sketch/sketch.h"

namespace sose {

/// Dense Gaussian sketch: i.i.d. N(0, 1/m) entries. The information-
/// theoretically optimal OSE with m = Θ((d + log(1/δ))/ε²) — the dense
/// baseline every sparse construction is compared against. Apply cost is
/// O(m · nnz(A)), which is what motivates the sparse alternatives.
class GaussianSketch final : public SketchingMatrix {
 public:
  /// Creates an m x n Gaussian draw.
  [[nodiscard]] static Result<GaussianSketch> Create(int64_t m, int64_t n, uint64_t seed);

  int64_t rows() const override { return m_; }
  int64_t cols() const override { return n_; }
  int64_t column_sparsity() const override { return m_; }
  std::string name() const override { return "gaussian"; }

  std::vector<ColumnEntry> Column(int64_t c) const override;

 private:
  GaussianSketch(int64_t m, int64_t n, uint64_t seed)
      : m_(m), n_(n), seed_(seed) {}

  int64_t m_;
  int64_t n_;
  uint64_t seed_;
};

}  // namespace sose

#endif  // SOSE_SKETCH_GAUSSIAN_H_
