#include "sketch/hadamard.h"

#include <bit>

#include "core/simd/dispatch.h"

namespace sose {

bool IsPowerOfTwo(int64_t x) {
  return x > 0 && (x & (x - 1)) == 0;
}

int64_t NextPowerOfTwo(int64_t x) {
  SOSE_CHECK(x >= 1);
  int64_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

double HadamardEntry(int64_t i, int64_t j) {
  const uint64_t overlap = static_cast<uint64_t>(i) & static_cast<uint64_t>(j);
  return (std::popcount(overlap) & 1) != 0 ? -1.0 : 1.0;
}

Result<Matrix> SylvesterHadamard(int64_t n) {
  if (!IsPowerOfTwo(n)) {
    return Status::InvalidArgument(
        "SylvesterHadamard: order must be a power of two");
  }
  Matrix h(n, n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) h.At(i, j) = HadamardEntry(i, j);
  }
  return h;
}

Status Fwht(std::vector<double>* x) {
  SOSE_CHECK(x != nullptr);
  const size_t n = x->size();
  if (!IsPowerOfTwo(static_cast<int64_t>(n))) {
    return Status::InvalidArgument("Fwht: size must be a power of two");
  }
  // One butterfly kernel call per block per pass: the lo half and hi half
  // of each block are contiguous, so the pass vectorizes once half reaches
  // the lane width (the half < lane passes run the kernel's scalar tail).
  double* data = x->data();
  for (size_t half = 1; half < n; half <<= 1) {
    for (size_t block = 0; block < n; block += 2 * half) {
      simd::Butterfly(data + block, data + block + half,
                      static_cast<int64_t>(half));
    }
  }
  return Status::OK();
}

}  // namespace sose
