#ifndef SOSE_SKETCH_HADAMARD_H_
#define SOSE_SKETCH_HADAMARD_H_

#include <cstdint>
#include <vector>

#include "core/matrix.h"
#include "core/status.h"

namespace sose {

/// True iff `x` is a positive power of two.
bool IsPowerOfTwo(int64_t x);

/// Smallest power of two >= x (x >= 1).
int64_t NextPowerOfTwo(int64_t x);

/// Entry (i, j) of the unnormalized Sylvester Hadamard matrix of any
/// power-of-two order containing (i, j): (-1)^{popcount(i & j)} ∈ {-1, +1}.
/// O(1), which is what lets SRHT columns be generated lazily.
double HadamardEntry(int64_t i, int64_t j);

/// The unnormalized order-n Sylvester Hadamard matrix (entries ±1).
/// Fails unless n is a positive power of two.
[[nodiscard]] Result<Matrix> SylvesterHadamard(int64_t n);

/// In-place fast Walsh–Hadamard transform of a length-2^k vector
/// (unnormalized butterflies: applying twice multiplies by the length).
/// Fails unless the size is a positive power of two.
[[nodiscard]] Status Fwht(std::vector<double>* x);

}  // namespace sose

#endif  // SOSE_SKETCH_HADAMARD_H_
