#include "sketch/kwise_count_sketch.h"

namespace sose {

Result<KwiseCountSketch> KwiseCountSketch::Create(int64_t m, int64_t n,
                                                  int64_t k, uint64_t seed) {
  if (m <= 0 || n <= 0) {
    return Status::InvalidArgument(
        "KwiseCountSketch: dimensions must be positive");
  }
  Rng rng(DeriveSeed(seed, 0));
  SOSE_ASSIGN_OR_RETURN(PolyHash bucket_hash,
                        PolyHash::Create(k, static_cast<uint64_t>(m), &rng));
  SOSE_ASSIGN_OR_RETURN(PolyHash sign_hash, PolyHash::Create(k, 2, &rng));
  return KwiseCountSketch(m, n, k, std::move(bucket_hash),
                          std::move(sign_hash));
}

std::vector<ColumnEntry> KwiseCountSketch::Column(int64_t c) const {
  return {ColumnEntry{Bucket(c), Sign(c)}};
}

int64_t KwiseCountSketch::Bucket(int64_t c) const {
  SOSE_CHECK(c >= 0 && c < n_);
  return static_cast<int64_t>(bucket_hash_.Eval(static_cast<uint64_t>(c)));
}

double KwiseCountSketch::Sign(int64_t c) const {
  SOSE_CHECK(c >= 0 && c < n_);
  return sign_hash_.Eval(static_cast<uint64_t>(c)) == 0 ? -1.0 : 1.0;
}

}  // namespace sose
