#ifndef SOSE_SKETCH_KWISE_COUNT_SKETCH_H_
#define SOSE_SKETCH_KWISE_COUNT_SKETCH_H_

#include <string>
#include <vector>

#include "core/poly_hash.h"
#include "core/status.h"
#include "sketch/sketch.h"

namespace sose {

/// Count-Sketch driven by k-wise independent polynomial hashing instead of
/// fully random per-column draws: bucket(c) and sign(c) come from two
/// independent degree-(k−1) polynomials over the Mersenne field.
///
/// The classical Count-Sketch analyses need only pairwise-independent
/// buckets and 4-wise signs; the paper's lower bounds, by contrast, hold
/// against ALL distributions — including these. The ablation experiment
/// (E17) measures whether limited independence changes the failure
/// threshold on the hard instances (it should not, and does not).
class KwiseCountSketch final : public SketchingMatrix {
 public:
  /// Creates an m x n draw with independence parameter k >= 1.
  [[nodiscard]] static Result<KwiseCountSketch> Create(int64_t m, int64_t n, int64_t k,
                                                       uint64_t seed);

  int64_t rows() const override { return m_; }
  int64_t cols() const override { return n_; }
  int64_t column_sparsity() const override { return 1; }
  std::string name() const override {
    return "countsketch-" + std::to_string(independence_) + "wise";
  }

  std::vector<ColumnEntry> Column(int64_t c) const override;

  /// The hash bucket of column `c`.
  int64_t Bucket(int64_t c) const;

  /// The sign of column `c`.
  double Sign(int64_t c) const;

  int64_t independence() const { return independence_; }

 private:
  KwiseCountSketch(int64_t m, int64_t n, int64_t k, PolyHash bucket_hash,
                   PolyHash sign_hash)
      : m_(m), n_(n), independence_(k), bucket_hash_(std::move(bucket_hash)),
        sign_hash_(std::move(sign_hash)) {}

  int64_t m_;
  int64_t n_;
  int64_t independence_;
  PolyHash bucket_hash_;
  PolyHash sign_hash_;
};

}  // namespace sose

#endif  // SOSE_SKETCH_KWISE_COUNT_SKETCH_H_
