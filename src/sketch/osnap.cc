#include "sketch/osnap.h"

#include <algorithm>
#include <cmath>

#include "core/metrics/metrics.h"
#include "core/random.h"

namespace sose {

Result<Osnap> Osnap::Create(int64_t m, int64_t n, int64_t s, uint64_t seed,
                            OsnapVariant variant) {
  if (m <= 0 || n <= 0) {
    return Status::InvalidArgument("Osnap: dimensions must be positive");
  }
  if (s <= 0 || s > m) {
    return Status::InvalidArgument("Osnap: need 0 < s <= m");
  }
  if (variant == OsnapVariant::kBlock && m % s != 0) {
    return Status::InvalidArgument("Osnap: block variant needs s | m");
  }
  return Osnap(m, n, s, seed, variant);
}

void Osnap::FillColumnUnsorted(int64_t c,
                               std::vector<ColumnEntry>* out) const {
  SOSE_CHECK(c >= 0 && c < n_);
  Rng rng(DeriveSeed(seed_, static_cast<uint64_t>(c)));
  const double magnitude = 1.0 / std::sqrt(static_cast<double>(s_));
  out->clear();
  out->reserve(static_cast<size_t>(s_));
  if (variant_ == OsnapVariant::kUniform) {
    const std::vector<int64_t> sampled_rows =
        rng.SampleWithoutReplacement(m_, s_);
    for (int64_t row : sampled_rows) {
      out->push_back(ColumnEntry{row, magnitude * rng.Rademacher()});
    }
  } else {
    const int64_t block = m_ / s_;
    for (int64_t k = 0; k < s_; ++k) {
      const int64_t row =
          k * block + static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(block)));
      out->push_back(ColumnEntry{row, magnitude * rng.Rademacher()});
    }
  }
}

void Osnap::ColumnInto(int64_t c, std::vector<ColumnEntry>* out) const {
  FillColumnUnsorted(c, out);
  std::sort(out->begin(), out->end(),
            [](const ColumnEntry& a, const ColumnEntry& b) {
              return a.row < b.row;
            });
}

std::vector<ColumnEntry> Osnap::Column(int64_t c) const {
  std::vector<ColumnEntry> entries;
  ColumnInto(c, &entries);
  return entries;
}

Result<Matrix> Osnap::ApplySparse(const CscMatrix& a) const {
  if (a.rows() != cols()) {
    return Status::InvalidArgument(
        "ApplySparse: input rows != sketch ambient dimension");
  }
  SOSE_SPAN("sketch.osnap.apply_sparse");
  SOSE_COUNTER_ADD("sketch.apply_sparse.nnz", a.nnz());
  Matrix out(m_, a.cols());
  std::vector<ColumnEntry> entries;
  entries.reserve(static_cast<size_t>(s_));
  for (int64_t j = 0; j < a.cols(); ++j) {
    for (int64_t p = a.col_ptr()[static_cast<size_t>(j)];
         p < a.col_ptr()[static_cast<size_t>(j) + 1]; ++p) {
      const int64_t r = a.row_idx()[static_cast<size_t>(p)];
      const double v = a.values()[static_cast<size_t>(p)];
      FillColumnUnsorted(r, &entries);
      for (const ColumnEntry& entry : entries) {
        out.At(entry.row, j) += v * entry.value;
      }
    }
  }
  return out;
}

Result<Matrix> Osnap::ApplyBatch(const CscMatrix& a) const {
  if (a.rows() != cols()) {
    return Status::InvalidArgument(
        "ApplyBatch: input rows != sketch ambient dimension");
  }
  SOSE_SPAN("sketch.osnap.apply_batch");
  SOSE_COUNTER_ADD("sketch.apply_batch.nnz", a.nnz());
  Matrix out(m_, a.cols());
  const std::vector<BatchEntry> batch = RowOrderedEntries(a);
  std::vector<ColumnEntry> entries;
  entries.reserve(static_cast<size_t>(s_));
  for (size_t p0 = 0; p0 < batch.size();) {
    const int64_t r = batch[p0].row;
    size_t p1 = p0;
    while (p1 < batch.size() && batch[p1].row == r) ++p1;
    // One s-sparse column draw covers every batch column touching row r.
    FillColumnUnsorted(r, &entries);
    for (const ColumnEntry& entry : entries) {
      double* out_row = out.Row(entry.row);
      for (size_t p = p0; p < p1; ++p) {
        out_row[batch[p].col] += batch[p].value * entry.value;
      }
    }
    p0 = p1;
  }
  return out;
}

}  // namespace sose
