#include "sketch/osnap.h"

#include <algorithm>
#include <cmath>

#include "core/random.h"

namespace sose {

Result<Osnap> Osnap::Create(int64_t m, int64_t n, int64_t s, uint64_t seed,
                            OsnapVariant variant) {
  if (m <= 0 || n <= 0) {
    return Status::InvalidArgument("Osnap: dimensions must be positive");
  }
  if (s <= 0 || s > m) {
    return Status::InvalidArgument("Osnap: need 0 < s <= m");
  }
  if (variant == OsnapVariant::kBlock && m % s != 0) {
    return Status::InvalidArgument("Osnap: block variant needs s | m");
  }
  return Osnap(m, n, s, seed, variant);
}

std::vector<ColumnEntry> Osnap::Column(int64_t c) const {
  SOSE_CHECK(c >= 0 && c < n_);
  Rng rng(DeriveSeed(seed_, static_cast<uint64_t>(c)));
  const double magnitude = 1.0 / std::sqrt(static_cast<double>(s_));
  std::vector<ColumnEntry> entries;
  entries.reserve(static_cast<size_t>(s_));
  if (variant_ == OsnapVariant::kUniform) {
    const std::vector<int64_t> sampled_rows =
        rng.SampleWithoutReplacement(m_, s_);
    for (int64_t row : sampled_rows) {
      entries.push_back(ColumnEntry{row, magnitude * rng.Rademacher()});
    }
  } else {
    const int64_t block = m_ / s_;
    for (int64_t k = 0; k < s_; ++k) {
      const int64_t row =
          k * block + static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(block)));
      entries.push_back(ColumnEntry{row, magnitude * rng.Rademacher()});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const ColumnEntry& a, const ColumnEntry& b) {
              return a.row < b.row;
            });
  return entries;
}

}  // namespace sose
