#ifndef SOSE_SKETCH_OSNAP_H_
#define SOSE_SKETCH_OSNAP_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "sketch/sketch.h"

namespace sose {

/// How an OSNAP column places its `s` nonzero rows.
enum class OsnapVariant {
  /// `s` distinct rows sampled uniformly without replacement from [m]
  /// (the "uniform" construction of Nelson–Nguyễn).
  kUniform,
  /// [m] is split into `s` contiguous blocks of m/s rows and one row is
  /// sampled per block (the Count-Sketch-stacked construction). Requires
  /// s to divide m.
  kBlock,
};

/// OSNAP (Nelson–Nguyễn): each column has exactly `s` nonzeros of value
/// ±1/√s. With m = Θ(d log(d/δ)/ε²) and s = Θ(log(d/δ)/ε) it is an
/// (ε, δ)-OSE; the reproduced paper shows that pushing s below ~1/(9ε)
/// forces m = Ω̃(d²). s = 1 recovers Count-Sketch exactly.
class Osnap final : public SketchingMatrix {
 public:
  /// Creates an m x n OSNAP draw with column sparsity `s`. Fails if shapes
  /// are non-positive, s > m, or (block variant) s does not divide m.
  [[nodiscard]] static Result<Osnap> Create(int64_t m, int64_t n, int64_t s, uint64_t seed,
                                            OsnapVariant variant = OsnapVariant::kUniform);

  int64_t rows() const override { return m_; }
  int64_t cols() const override { return n_; }
  int64_t column_sparsity() const override { return s_; }
  std::string name() const override {
    return variant_ == OsnapVariant::kUniform ? "osnap" : "osnap-block";
  }

  std::vector<ColumnEntry> Column(int64_t c) const override;
  void ColumnInto(int64_t c, std::vector<ColumnEntry>* out) const override;

  /// Fast path: scatters each nonzero of A through one reused column
  /// buffer, skipping the by-row sort Column() guarantees — a column's `s`
  /// rows are distinct, so each output cell still receives at most one
  /// contribution per input nonzero and the result is bitwise identical.
  [[nodiscard]] Result<Matrix> ApplySparse(const CscMatrix& a) const override;

  /// Batched fast path: draws each distinct nonzero row's column once
  /// (unsorted — entry rows are distinct, so per-cell accumulation order is
  /// unaffected) and scatters it across the batch. Bitwise identical to
  /// ApplySparse.
  [[nodiscard]] Result<Matrix> ApplyBatch(const CscMatrix& a) const override;
  using SketchingMatrix::ApplyBatch;

  OsnapVariant variant() const { return variant_; }

 private:
  Osnap(int64_t m, int64_t n, int64_t s, uint64_t seed, OsnapVariant variant)
      : m_(m), n_(n), s_(s), seed_(seed), variant_(variant) {}

  /// Draws column `c` into `*out` without the final sort.
  void FillColumnUnsorted(int64_t c, std::vector<ColumnEntry>* out) const;

  int64_t m_;
  int64_t n_;
  int64_t s_;
  uint64_t seed_;
  OsnapVariant variant_;
};

}  // namespace sose

#endif  // SOSE_SKETCH_OSNAP_H_
