#include "sketch/registry.h"

#include <algorithm>

#include "core/random.h"
#include "sketch/block_hadamard.h"
#include "sketch/composed.h"
#include "sketch/count_sketch.h"
#include "sketch/gaussian.h"
#include "sketch/kwise_count_sketch.h"
#include "sketch/osnap.h"
#include "sketch/row_sampling.h"
#include "sketch/sparse_jl.h"
#include "sketch/srht.h"

namespace sose {

namespace {

template <typename T>
Result<std::unique_ptr<SketchingMatrix>> Wrap(Result<T> result) {
  if (!result.ok()) return result.status();
  return std::unique_ptr<SketchingMatrix>(
      std::make_unique<T>(std::move(result).value()));
}

}  // namespace

Result<std::unique_ptr<SketchingMatrix>> CreateSketch(
    const std::string& family, const SketchConfig& config) {
  if (family == "countsketch") {
    return Wrap(CountSketch::Create(config.rows, config.cols, config.seed));
  }
  if (family == "osnap") {
    return Wrap(Osnap::Create(config.rows, config.cols, config.sparsity,
                              config.seed, OsnapVariant::kUniform));
  }
  if (family == "osnap-block") {
    return Wrap(Osnap::Create(config.rows, config.cols, config.sparsity,
                              config.seed, OsnapVariant::kBlock));
  }
  if (family == "gaussian") {
    return Wrap(GaussianSketch::Create(config.rows, config.cols, config.seed));
  }
  if (family == "sparsejl") {
    return Wrap(
        SparseJl::Create(config.rows, config.cols, config.jl_q, config.seed));
  }
  if (family == "srht") {
    return Wrap(Srht::Create(config.rows, config.cols, config.seed));
  }
  if (family == "countsketch-kwise") {
    return Wrap(KwiseCountSketch::Create(config.rows, config.cols,
                                         config.independence, config.seed));
  }
  if (family == "rowsample") {
    return Wrap(
        RowSamplingSketch::Create(config.rows, config.cols, config.seed));
  }
  if (family == "blockhadamard") {
    return Wrap(
        BlockHadamard::Create(config.rows, config.cols, config.sparsity));
  }
  if (family == "countsketch-srht") {
    // The classic two-stage pipeline: an input-sparsity Count-Sketch stage
    // into an intermediate power-of-two dimension (SRHT requires one),
    // then an SRHT stage down to the requested m. Stage seeds are derived
    // on disjoint streams so the draws are independent of each other and
    // of any single-stage family using the same master seed.
    int64_t mid = 1;
    while (mid < std::max<int64_t>(4 * config.rows, 8)) mid <<= 1;
    auto inner_result =
        CountSketch::Create(mid, config.cols, DeriveSeed(config.seed, 0xc5));
    if (!inner_result.ok()) return inner_result.status();
    auto outer_result =
        Srht::Create(config.rows, mid, DeriveSeed(config.seed, 0x51));
    if (!outer_result.ok()) return outer_result.status();
    return Wrap(ComposedSketch::Create(
        std::make_shared<Srht>(std::move(outer_result).value()),
        std::make_shared<CountSketch>(std::move(inner_result).value())));
  }
  return Status::NotFound("unknown sketch family: " + family);
}

std::vector<std::string> KnownSketchFamilies() {
  return {"countsketch",   "osnap",             "osnap-block",
          "gaussian",      "sparsejl",          "srht",
          "blockhadamard", "countsketch-kwise", "rowsample",
          "countsketch-srht"};
}

}  // namespace sose
