#ifndef SOSE_SKETCH_REGISTRY_H_
#define SOSE_SKETCH_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "sketch/sketch.h"

namespace sose {

/// Parameters shared by every sketch family. Families ignore the fields they
/// do not use (e.g. Count-Sketch ignores `sparsity`).
struct SketchConfig {
  int64_t rows = 0;       ///< Target dimension m.
  int64_t cols = 0;       ///< Ambient dimension n.
  int64_t sparsity = 1;   ///< Column sparsity s (OSNAP, BlockHadamard order).
  double jl_q = 3.0;      ///< SparseJl density parameter q.
  int64_t independence = 4;  ///< Hash independence k (KwiseCountSketch).
  uint64_t seed = 0;      ///< Master seed of the draw.
};

/// Constructs a sketch by family name. Recognized names:
///   "countsketch", "osnap", "osnap-block", "gaussian", "sparsejl",
///   "srht", "blockhadamard", "countsketch-kwise", "rowsample",
///   "countsketch-srht" (a two-stage ComposedSketch pipeline).
/// Fails with NotFound for unknown names and propagates family-specific
/// validation errors (e.g. SRHT's power-of-two requirement).
[[nodiscard]] Result<std::unique_ptr<SketchingMatrix>> CreateSketch(
    const std::string& family, const SketchConfig& config);

/// The list of recognized family names (for `--sketch=` flag help).
std::vector<std::string> KnownSketchFamilies();

}  // namespace sose

#endif  // SOSE_SKETCH_REGISTRY_H_
