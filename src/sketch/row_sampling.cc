#include "sketch/row_sampling.h"

#include <cmath>

#include "core/random.h"

namespace sose {

Result<RowSamplingSketch> RowSamplingSketch::Create(int64_t m, int64_t n,
                                                    uint64_t seed) {
  if (m <= 0 || n <= 0) {
    return Status::InvalidArgument(
        "RowSamplingSketch: dimensions must be positive");
  }
  Rng rng(DeriveSeed(seed, 0));
  std::vector<int64_t> sampled(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    sampled[static_cast<size_t>(i)] =
        static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(n)));
  }
  const double scale =
      std::sqrt(static_cast<double>(n) / static_cast<double>(m));
  return RowSamplingSketch(m, n, std::move(sampled), scale);
}

std::vector<ColumnEntry> RowSamplingSketch::Column(int64_t c) const {
  SOSE_CHECK(c >= 0 && c < n_);
  std::vector<ColumnEntry> entries;
  for (int64_t i = 0; i < m_; ++i) {
    if (sampled_[static_cast<size_t>(i)] == c) {
      entries.push_back(ColumnEntry{i, scale_});
    }
  }
  return entries;
}

}  // namespace sose
