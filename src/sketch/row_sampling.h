#ifndef SOSE_SKETCH_ROW_SAMPLING_H_
#define SOSE_SKETCH_ROW_SAMPLING_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "sketch/sketch.h"

namespace sose {

/// Uniform row sampling: Π = √(n/m) · S with S selecting m uniformly random
/// coordinates (with replacement). Oblivious and extremely cheap — and NOT
/// a subspace embedding for any reasonable m: a subspace concentrated on a
/// few coordinates (exactly the paper's hard instances!) is missed entirely
/// with probability ≈ (1 − k/n)^m ≈ 1.
///
/// Included as the negative control: it shows that obliviousness plus
/// E‖Πx‖² = ‖x‖² is NOT enough, i.e. why the hashing/sign structure of
/// Count-Sketch/OSNAP — whose cost the paper lower-bounds — is necessary.
class RowSamplingSketch final : public SketchingMatrix {
 public:
  /// Creates an m x n uniform row-sampling draw.
  [[nodiscard]] static Result<RowSamplingSketch> Create(int64_t m, int64_t n, uint64_t seed);

  int64_t rows() const override { return m_; }
  int64_t cols() const override { return n_; }
  /// Worst case a coordinate is sampled every time.
  int64_t column_sparsity() const override { return m_; }
  std::string name() const override { return "rowsample"; }

  std::vector<ColumnEntry> Column(int64_t c) const override;

  /// The sampled coordinate for sketch row i.
  int64_t SampledCoordinate(int64_t i) const {
    SOSE_DCHECK(i >= 0 && i < m_);
    return sampled_[static_cast<size_t>(i)];
  }

 private:
  RowSamplingSketch(int64_t m, int64_t n, std::vector<int64_t> sampled,
                    double scale)
      : m_(m), n_(n), sampled_(std::move(sampled)), scale_(scale) {}

  int64_t m_;
  int64_t n_;
  std::vector<int64_t> sampled_;  // m sampled coordinates, ascending per row.
  double scale_;                  // √(n/m).
};

}  // namespace sose

#endif  // SOSE_SKETCH_ROW_SAMPLING_H_
