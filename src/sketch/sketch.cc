#include "sketch/sketch.h"

#include "core/check.h"
#include "core/metrics/metrics.h"

namespace sose {

void SketchingMatrix::ColumnInto(int64_t c,
                                 std::vector<ColumnEntry>* out) const {
  *out = Column(c);
}

Result<Matrix> SketchingMatrix::ApplySparse(const CscMatrix& a) const {
  if (a.rows() != cols()) {
    return Status::InvalidArgument(
        "ApplySparse: input rows != sketch ambient dimension");
  }
  SOSE_SPAN("sketch.apply_sparse");
  SOSE_COUNTER_ADD("sketch.apply_sparse.nnz", a.nnz());
  Matrix out(rows(), a.cols());
  // For each column j of A, scatter each nonzero A_{r,j} through sketch
  // column r: out[:, j] += A_{r,j} * Π[:, r]. One column buffer is reused
  // across all nnz(A) sketch-column reads.
  std::vector<ColumnEntry> entries;
  entries.reserve(static_cast<size_t>(column_sparsity()));
  for (int64_t j = 0; j < a.cols(); ++j) {
    for (int64_t p = a.col_ptr()[static_cast<size_t>(j)];
         p < a.col_ptr()[static_cast<size_t>(j) + 1]; ++p) {
      const int64_t r = a.row_idx()[static_cast<size_t>(p)];
      const double v = a.values()[static_cast<size_t>(p)];
      ColumnInto(r, &entries);
      for (const ColumnEntry& entry : entries) {
        out.At(entry.row, j) += v * entry.value;
      }
    }
  }
  return out;
}

Result<Matrix> SketchingMatrix::ApplyDense(const Matrix& a) const {
  if (a.rows() != cols()) {
    return Status::InvalidArgument(
        "ApplyDense: input rows != sketch ambient dimension");
  }
  SOSE_SPAN("sketch.apply_dense");
  Matrix out(rows(), a.cols());
  std::vector<ColumnEntry> entries;
  entries.reserve(static_cast<size_t>(column_sparsity()));
  for (int64_t r = 0; r < cols(); ++r) {
    const double* a_row = a.Row(r);
    ColumnInto(r, &entries);
    for (const ColumnEntry& entry : entries) {
      double* out_row = out.Row(entry.row);
      for (int64_t j = 0; j < a.cols(); ++j) {
        out_row[j] += entry.value * a_row[j];
      }
    }
  }
  return out;
}

Result<std::vector<double>> SketchingMatrix::ApplyVector(
    const std::vector<double>& x) const {
  if (static_cast<int64_t>(x.size()) != cols()) {
    return Status::InvalidArgument(
        "ApplyVector: input length != sketch ambient dimension");
  }
  SOSE_SPAN("sketch.apply_vector");
  std::vector<double> out(static_cast<size_t>(rows()), 0.0);
  std::vector<ColumnEntry> entries;
  entries.reserve(static_cast<size_t>(column_sparsity()));
  for (int64_t r = 0; r < cols(); ++r) {
    const double xr = x[static_cast<size_t>(r)];
    if (xr == 0.0) continue;
    ColumnInto(r, &entries);
    for (const ColumnEntry& entry : entries) {
      out[static_cast<size_t>(entry.row)] += xr * entry.value;
    }
  }
  return out;
}

CscMatrix SketchingMatrix::MaterializeColumns(int64_t col_begin,
                                              int64_t col_end) const {
  SOSE_CHECK(0 <= col_begin && col_begin <= col_end && col_end <= cols());
  const int64_t num_cols = col_end - col_begin;
  std::vector<int64_t> col_ptr(static_cast<size_t>(num_cols) + 1, 0);
  std::vector<int64_t> row_idx;
  std::vector<double> values;
  // column_sparsity() bounds nonzeros per column, so this reserve is exact
  // for fixed-sparsity sketches and an upper bound otherwise.
  const size_t cap =
      static_cast<size_t>(num_cols) * static_cast<size_t>(column_sparsity());
  row_idx.reserve(cap);
  values.reserve(cap);
  std::vector<ColumnEntry> entries;
  entries.reserve(static_cast<size_t>(column_sparsity()));
  for (int64_t c = col_begin; c < col_end; ++c) {
    ColumnInto(c, &entries);
    for (const ColumnEntry& entry : entries) {
      row_idx.push_back(entry.row);
      values.push_back(entry.value);
    }
    col_ptr[static_cast<size_t>(c - col_begin) + 1] =
        col_ptr[static_cast<size_t>(c - col_begin)] +
        static_cast<int64_t>(entries.size());
  }
  return CscMatrix(rows(), num_cols, std::move(col_ptr), std::move(row_idx),
                   std::move(values));
}

Matrix SketchingMatrix::MaterializeDense() const {
  Matrix out(rows(), cols());
  std::vector<ColumnEntry> entries;
  entries.reserve(static_cast<size_t>(column_sparsity()));
  for (int64_t c = 0; c < cols(); ++c) {
    ColumnInto(c, &entries);
    for (const ColumnEntry& entry : entries) {
      out.At(entry.row, c) = entry.value;
    }
  }
  return out;
}

}  // namespace sose
