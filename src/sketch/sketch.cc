#include "sketch/sketch.h"

#include <algorithm>

#include "core/check.h"
#include "core/metrics/metrics.h"
#include "core/simd/dispatch.h"

namespace sose {

std::vector<BatchEntry> RowOrderedEntries(const CscMatrix& a) {
  std::vector<BatchEntry> entries;
  entries.reserve(static_cast<size_t>(a.nnz()));
  for (int64_t j = 0; j < a.cols(); ++j) {
    for (int64_t p = a.col_ptr()[static_cast<size_t>(j)];
         p < a.col_ptr()[static_cast<size_t>(j) + 1]; ++p) {
      entries.push_back(BatchEntry{a.row_idx()[static_cast<size_t>(p)], j,
                                   a.values()[static_cast<size_t>(p)]});
    }
  }
  // Stable sort on the row alone: the append order above is column-major,
  // so entries of one row stay column-ascending.
  std::stable_sort(entries.begin(), entries.end(),
                   [](const BatchEntry& x, const BatchEntry& y) {
                     return x.row < y.row;
                   });
  return entries;
}

void SketchingMatrix::ColumnInto(int64_t c,
                                 std::vector<ColumnEntry>* out) const {
  // assign() rather than move-assign: the caller's buffer keeps its
  // capacity, so a hot loop reusing one buffer stops reallocating once it
  // has seen the widest column (tests/sketch/column_into_test.cc pins this
  // across the registry).
  const std::vector<ColumnEntry> column = Column(c);
  out->assign(column.begin(), column.end());
}

Result<Matrix> SketchingMatrix::ApplySparse(const CscMatrix& a) const {
  if (a.rows() != cols()) {
    return Status::InvalidArgument(
        "ApplySparse: input rows != sketch ambient dimension");
  }
  SOSE_SPAN("sketch.apply_sparse");
  SOSE_COUNTER_ADD("sketch.apply_sparse.nnz", a.nnz());
  Matrix out(rows(), a.cols());
  // For each column j of A, scatter each nonzero A_{r,j} through sketch
  // column r: out[:, j] += A_{r,j} * Π[:, r]. One column buffer is reused
  // across all nnz(A) sketch-column reads.
  std::vector<ColumnEntry> entries;
  entries.reserve(static_cast<size_t>(column_sparsity()));
  for (int64_t j = 0; j < a.cols(); ++j) {
    for (int64_t p = a.col_ptr()[static_cast<size_t>(j)];
         p < a.col_ptr()[static_cast<size_t>(j) + 1]; ++p) {
      const int64_t r = a.row_idx()[static_cast<size_t>(p)];
      const double v = a.values()[static_cast<size_t>(p)];
      ColumnInto(r, &entries);
      for (const ColumnEntry& entry : entries) {
        out.At(entry.row, j) += v * entry.value;
      }
    }
  }
  return out;
}

Result<Matrix> SketchingMatrix::ApplyBatch(const CscMatrix& a) const {
  if (a.rows() != cols()) {
    return Status::InvalidArgument(
        "ApplyBatch: input rows != sketch ambient dimension");
  }
  SOSE_SPAN("sketch.apply_batch");
  SOSE_COUNTER_ADD("sketch.apply_batch.nnz", a.nnz());
  Matrix out(rows(), a.cols());
  const std::vector<BatchEntry> batch = RowOrderedEntries(a);
  std::vector<ColumnEntry> entries;
  entries.reserve(static_cast<size_t>(column_sparsity()));
  // Runs of equal ambient row, rows ascending — the same per-cell
  // contribution order as ApplySparse's column-major walk — with one
  // ColumnInto per distinct row.
  for (size_t p0 = 0; p0 < batch.size();) {
    const int64_t r = batch[p0].row;
    size_t p1 = p0;
    while (p1 < batch.size() && batch[p1].row == r) ++p1;
    ColumnInto(r, &entries);
    for (const ColumnEntry& entry : entries) {
      double* out_row = out.Row(entry.row);
      for (size_t p = p0; p < p1; ++p) {
        out_row[batch[p].col] += batch[p].value * entry.value;
      }
    }
    p0 = p1;
  }
  return out;
}

Result<Matrix> SketchingMatrix::ApplyDense(const Matrix& a) const {
  if (a.rows() != cols()) {
    return Status::InvalidArgument(
        "ApplyDense: input rows != sketch ambient dimension");
  }
  SOSE_SPAN("sketch.apply_dense");
  Matrix out(rows(), a.cols());
  std::vector<ColumnEntry> entries;
  entries.reserve(static_cast<size_t>(column_sparsity()));
  for (int64_t r = 0; r < cols(); ++r) {
    const double* a_row = a.Row(r);
    ColumnInto(r, &entries);
    for (const ColumnEntry& entry : entries) {
      simd::Axpy(entry.value, a_row, out.Row(entry.row), a.cols());
    }
  }
  return out;
}

Result<std::vector<double>> SketchingMatrix::ApplyVector(
    const std::vector<double>& x) const {
  if (static_cast<int64_t>(x.size()) != cols()) {
    return Status::InvalidArgument(
        "ApplyVector: input length != sketch ambient dimension");
  }
  SOSE_SPAN("sketch.apply_vector");
  std::vector<double> out(static_cast<size_t>(rows()), 0.0);
  std::vector<ColumnEntry> entries;
  entries.reserve(static_cast<size_t>(column_sparsity()));
  for (int64_t r = 0; r < cols(); ++r) {
    const double xr = x[static_cast<size_t>(r)];
    if (xr == 0.0) continue;
    ColumnInto(r, &entries);
    for (const ColumnEntry& entry : entries) {
      out[static_cast<size_t>(entry.row)] += xr * entry.value;
    }
  }
  return out;
}

CscMatrix SketchingMatrix::MaterializeColumns(int64_t col_begin,
                                              int64_t col_end) const {
  SOSE_CHECK(0 <= col_begin && col_begin <= col_end && col_end <= cols());
  const int64_t num_cols = col_end - col_begin;
  std::vector<int64_t> col_ptr(static_cast<size_t>(num_cols) + 1, 0);
  std::vector<int64_t> row_idx;
  std::vector<double> values;
  // column_sparsity() bounds nonzeros per column, so this reserve is exact
  // for fixed-sparsity sketches and an upper bound otherwise.
  const size_t cap =
      static_cast<size_t>(num_cols) * static_cast<size_t>(column_sparsity());
  row_idx.reserve(cap);
  values.reserve(cap);
  std::vector<ColumnEntry> entries;
  entries.reserve(static_cast<size_t>(column_sparsity()));
  for (int64_t c = col_begin; c < col_end; ++c) {
    ColumnInto(c, &entries);
    for (const ColumnEntry& entry : entries) {
      row_idx.push_back(entry.row);
      values.push_back(entry.value);
    }
    col_ptr[static_cast<size_t>(c - col_begin) + 1] =
        col_ptr[static_cast<size_t>(c - col_begin)] +
        static_cast<int64_t>(entries.size());
  }
  return CscMatrix(rows(), num_cols, std::move(col_ptr), std::move(row_idx),
                   std::move(values));
}

Matrix SketchingMatrix::MaterializeDense() const {
  Matrix out(rows(), cols());
  std::vector<ColumnEntry> entries;
  entries.reserve(static_cast<size_t>(column_sparsity()));
  for (int64_t c = 0; c < cols(); ++c) {
    ColumnInto(c, &entries);
    for (const ColumnEntry& entry : entries) {
      out.At(entry.row, c) = entry.value;
    }
  }
  return out;
}

}  // namespace sose
