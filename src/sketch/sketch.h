#ifndef SOSE_SKETCH_SKETCH_H_
#define SOSE_SKETCH_SKETCH_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/matrix.h"
#include "core/sparse.h"
#include "core/status.h"

namespace sose {

/// One nonzero of a sketch column: (row index, value).
struct ColumnEntry {
  int64_t row = 0;
  double value = 0.0;
};

/// One nonzero of a batched apply input, tagged with both coordinates.
struct BatchEntry {
  int64_t row = 0;
  int64_t col = 0;
  double value = 0.0;
};

/// The nonzeros of `a` reordered for row-major traversal: ambient row
/// ascending, column ascending within a row. O(nnz log nnz) — deliberately
/// independent of a.rows(), which for hard-instance inputs is the ambient
/// dimension n and can be in the billions while only d/β rows are touched.
/// This is the traversal ApplyBatch amortizes over.
std::vector<BatchEntry> RowOrderedEntries(const CscMatrix& a);

/// A draw of an oblivious sketching matrix Π ∈ R^{m x n}.
///
/// Obliviousness is structural: column `c` of Π is a pure function of the
/// sketch's seed and `c`, generated lazily by `Column(c)`. This lets the
/// library work at the paper's regime `n = Ω(d²/(ε²δ))` — often billions of
/// columns — without materialising anything: a hard instance `U = VW`
/// touches at most `d/β` rows of `[n]`, so applying Π to it only ever reads
/// that many columns.
///
/// Implementations must be deterministic given (seed, shape) and must
/// return `Column(c)` entries sorted by row index with no duplicates.
class SketchingMatrix {
 public:
  virtual ~SketchingMatrix() = default;

  /// Target dimension m (number of rows).
  virtual int64_t rows() const = 0;

  /// Ambient dimension n (number of columns).
  virtual int64_t cols() const = 0;

  /// Maximum number of nonzero entries per column (the paper's `s`).
  /// Dense sketches report `rows()`.
  virtual int64_t column_sparsity() const = 0;

  /// Short human-readable identifier, e.g. "countsketch".
  virtual std::string name() const = 0;

  /// The nonzero entries of column `c`, sorted by row. `c` must be in
  /// [0, cols()).
  virtual std::vector<ColumnEntry> Column(int64_t c) const = 0;

  /// Writes column `c`'s entries into `*out` (replacing its contents, never
  /// appending), sorted by row — equivalent to `*out = Column(c)` but lets
  /// hot loops reuse one buffer instead of allocating a vector per nonzero.
  /// The buffer's capacity is never shrunk, so a loop reusing one buffer
  /// stops reallocating once it has seen the widest column. The default
  /// delegates to Column(); sparse sketches override it to fill the buffer
  /// directly.
  virtual void ColumnInto(int64_t c, std::vector<ColumnEntry>* out) const;

  /// Returns Π A for a column-sparse A (CSC) with A.rows() == cols().
  /// Default implementation streams the nonzero rows of A through
  /// `Column()`; O(nnz(A) · s) like the paper's headline bound.
  /// Shape mismatches and internal transform failures are reported via the
  /// Result — no apply path aborts the process.
  [[nodiscard]] virtual Result<Matrix> ApplySparse(const CscMatrix& a) const;

  /// Returns Π A for a column-sparse A (CSC), batched by ambient row: the
  /// sketch column for each distinct nonzero row of A is derived **once**
  /// and scattered across every column of A that touches it, whereas
  /// ApplySparse re-derives it per (column, nonzero). Same O(nnz(A) · s)
  /// arithmetic, but hashing/sampling cost drops from once-per-nonzero to
  /// once-per-distinct-row — the win grows with the batch width. The result
  /// is **bitwise identical** to ApplySparse: contributions to any output
  /// cell arrive in ascending ambient-row order under both traversals (row
  /// indices are strictly increasing within a CSC column), and entries of
  /// one sketch column hit distinct output rows, so no accumulation order
  /// changes. Pinned across the registry by tests/sketch/apply_batch_test.cc.
  [[nodiscard]] virtual Result<Matrix> ApplyBatch(const CscMatrix& a) const;

  /// Dense-batch convenience: Π A for dense A, routed through ApplyDense
  /// (which is already row-amortized and kernel-dispatched).
  [[nodiscard]] Result<Matrix> ApplyBatch(const Matrix& a) const {
    return ApplyDense(a);
  }

  /// Returns Π A for dense A with A.rows() == cols(). Default implementation
  /// iterates columns of Π; subclasses with structure (e.g. SRHT) override
  /// with a fast transform.
  [[nodiscard]] virtual Result<Matrix> ApplyDense(const Matrix& a) const;

  /// Returns Π x for a dense vector x of length cols().
  [[nodiscard]] virtual Result<std::vector<double>> ApplyVector(
      const std::vector<double>& x) const;

  /// Materialises columns [col_begin, col_end) of Π as an explicit sparse
  /// matrix (the lower-bound machinery inspects sketch columns directly).
  /// The resulting matrix has `col_end - col_begin` columns.
  CscMatrix MaterializeColumns(int64_t col_begin, int64_t col_end) const;

  /// Materialises all of Π densely; for tests and small instances only.
  Matrix MaterializeDense() const;
};

}  // namespace sose

#endif  // SOSE_SKETCH_SKETCH_H_
