#include "sketch/sparse_jl.h"

#include <cmath>

#include "core/random.h"

namespace sose {

Result<SparseJl> SparseJl::Create(int64_t m, int64_t n, double q,
                                  uint64_t seed) {
  if (m <= 0 || n <= 0) {
    return Status::InvalidArgument("SparseJl: dimensions must be positive");
  }
  if (q < 1.0) {
    return Status::InvalidArgument("SparseJl: q must be >= 1");
  }
  return SparseJl(m, n, q, seed);
}

std::vector<ColumnEntry> SparseJl::Column(int64_t c) const {
  SOSE_CHECK(c >= 0 && c < n_);
  Rng rng(DeriveSeed(seed_, static_cast<uint64_t>(c)));
  const double magnitude = std::sqrt(q_ / static_cast<double>(m_));
  const double p_nonzero = 1.0 / q_;
  std::vector<ColumnEntry> entries;
  // Expected m/q nonzeros; pad by a couple of standard deviations so the
  // typical draw never regrows.
  const double expected = static_cast<double>(m_) * p_nonzero;
  entries.reserve(static_cast<size_t>(expected + 2.0 * std::sqrt(expected)) +
                  1);
  for (int64_t i = 0; i < m_; ++i) {
    if (rng.UniformDouble() < p_nonzero) {
      entries.push_back(ColumnEntry{i, magnitude * rng.Rademacher()});
    }
  }
  return entries;
}

}  // namespace sose
