#ifndef SOSE_SKETCH_SPARSE_JL_H_
#define SOSE_SKETCH_SPARSE_JL_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "sketch/sketch.h"

namespace sose {

/// Achlioptas-style sparse Johnson–Lindenstrauss sketch: each entry is
/// independently 0 with probability 1 - 1/q and ±√(q/m) with probability
/// 1/(2q) each (q = 3 recovers the classical "database-friendly" map).
///
/// Unlike Count-Sketch/OSNAP the column sparsity is only s ≈ m/q in
/// expectation, not exact — included as the i.i.d. point of comparison in
/// the sparsity/dimension trade-off experiments.
class SparseJl final : public SketchingMatrix {
 public:
  /// Creates an m x n draw with sparsity parameter q >= 1 (expected
  /// fraction of nonzeros per column is 1/q).
  [[nodiscard]] static Result<SparseJl> Create(int64_t m, int64_t n, double q, uint64_t seed);

  int64_t rows() const override { return m_; }
  int64_t cols() const override { return n_; }
  /// Worst case every entry is nonzero; the *expected* sparsity is m/q.
  int64_t column_sparsity() const override { return m_; }
  std::string name() const override { return "sparsejl"; }

  std::vector<ColumnEntry> Column(int64_t c) const override;

  double q() const { return q_; }

 private:
  SparseJl(int64_t m, int64_t n, double q, uint64_t seed)
      : m_(m), n_(n), q_(q), seed_(seed) {}

  int64_t m_;
  int64_t n_;
  double q_;
  uint64_t seed_;
};

}  // namespace sose

#endif  // SOSE_SKETCH_SPARSE_JL_H_
