#include "sketch/srht.h"

#include <cmath>

#include "core/metrics/metrics.h"
#include "core/random.h"
#include "core/simd/dispatch.h"
#include "sketch/hadamard.h"

namespace sose {

Result<Srht> Srht::Create(int64_t m, int64_t n, uint64_t seed) {
  if (m <= 0) {
    return Status::InvalidArgument("Srht: m must be positive");
  }
  if (!IsPowerOfTwo(n)) {
    return Status::InvalidArgument("Srht: n must be a power of two");
  }
  Rng rng(DeriveSeed(seed, 0));
  std::vector<int64_t> sampled_rows(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    sampled_rows[static_cast<size_t>(i)] =
        static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(n)));
  }
  std::vector<double> signs(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) signs[static_cast<size_t>(i)] = rng.Rademacher();
  return Srht(m, n, seed, std::move(sampled_rows), std::move(signs));
}

std::vector<ColumnEntry> Srht::Column(int64_t c) const {
  SOSE_CHECK(c >= 0 && c < n_);
  // Π_{i,c} = sign_c · H(sampled_rows_[i], c) / √m  (the 1/√n Hadamard
  // normalization and the √(n/m) subsampling factor combine into 1/√m).
  const double scale =
      signs_[static_cast<size_t>(c)] / std::sqrt(static_cast<double>(m_));
  std::vector<ColumnEntry> entries;
  entries.reserve(static_cast<size_t>(m_));
  for (int64_t i = 0; i < m_; ++i) {
    entries.push_back(
        ColumnEntry{i, scale * HadamardEntry(sampled_rows_[static_cast<size_t>(i)], c)});
  }
  return entries;
}

Result<std::vector<double>> Srht::ApplyVector(
    const std::vector<double>& x) const {
  if (static_cast<int64_t>(x.size()) != n_) {
    return Status::InvalidArgument(
        "Srht::ApplyVector: input length != sketch ambient dimension");
  }
  SOSE_SPAN("sketch.srht.apply_vector");
  std::vector<double> work(x);
  simd::Multiply(signs_.data(), work.data(), n_);
  SOSE_RETURN_IF_ERROR(Fwht(&work));
  const double scale = 1.0 / std::sqrt(static_cast<double>(m_));
  std::vector<double> out(static_cast<size_t>(m_));
  for (int64_t i = 0; i < m_; ++i) {
    out[static_cast<size_t>(i)] =
        scale * work[static_cast<size_t>(sampled_rows_[static_cast<size_t>(i)])];
  }
  return out;
}

Result<Matrix> Srht::ApplyDense(const Matrix& a) const {
  if (a.rows() != n_) {
    return Status::InvalidArgument(
        "Srht::ApplyDense: input rows != sketch ambient dimension");
  }
  SOSE_SPAN("sketch.srht.apply_dense");
  Matrix out(m_, a.cols());
  for (int64_t j = 0; j < a.cols(); ++j) {
    SOSE_ASSIGN_OR_RETURN(std::vector<double> sketched, ApplyVector(a.Col(j)));
    for (int64_t i = 0; i < m_; ++i) {
      out.At(i, j) = sketched[static_cast<size_t>(i)];
    }
  }
  return out;
}

}  // namespace sose
