#ifndef SOSE_SKETCH_SRHT_H_
#define SOSE_SKETCH_SRHT_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "sketch/sketch.h"

namespace sose {

/// Subsampled Randomized Hadamard Transform: Π = √(n/m) · R H_n D / √n,
/// where D is a diagonal of Rademacher signs, H_n the order-n Sylvester
/// Hadamard matrix and R samples m rows uniformly with replacement.
///
/// Π is dense but structured: ApplyVector runs in O(n log n) via FWHT, and
/// any single entry is O(1) (Hadamard entries are sign-of-popcount). Included
/// as the "fast dense" point between Gaussian and the sparse sketches.
/// Requires n to be a power of two.
class Srht final : public SketchingMatrix {
 public:
  /// Creates an m x n SRHT draw. Fails unless n is a positive power of two
  /// and m is positive.
  [[nodiscard]] static Result<Srht> Create(int64_t m, int64_t n, uint64_t seed);

  int64_t rows() const override { return m_; }
  int64_t cols() const override { return n_; }
  int64_t column_sparsity() const override { return m_; }
  std::string name() const override { return "srht"; }

  std::vector<ColumnEntry> Column(int64_t c) const override;

  /// O(n log n) structured apply: sign-flip, FWHT, then row subsampling.
  /// The internal transform's Status propagates instead of aborting.
  [[nodiscard]] Result<std::vector<double>> ApplyVector(
      const std::vector<double>& x) const override;

  /// Column-by-column structured apply of the dense input.
  [[nodiscard]] Result<Matrix> ApplyDense(const Matrix& a) const override;

 private:
  Srht(int64_t m, int64_t n, uint64_t seed, std::vector<int64_t> sampled_rows,
       std::vector<double> signs)
      : m_(m),
        n_(n),
        seed_(seed),
        sampled_rows_(std::move(sampled_rows)),
        signs_(std::move(signs)) {}

  int64_t m_;
  int64_t n_;
  uint64_t seed_;
  std::vector<int64_t> sampled_rows_;  // m sampled indices into [n].
  std::vector<double> signs_;          // n Rademacher signs (the D diagonal).
};

}  // namespace sose

#endif  // SOSE_SKETCH_SRHT_H_
