#include "sketch/weighted_sampling.h"

#include <cmath>

#include "core/random.h"

namespace sose {

Result<WeightedSamplingSketch> WeightedSamplingSketch::Create(
    const std::vector<double>& probabilities, int64_t m, uint64_t seed) {
  if (m <= 0) {
    return Status::InvalidArgument(
        "WeightedSamplingSketch: m must be positive");
  }
  if (probabilities.empty()) {
    return Status::InvalidArgument(
        "WeightedSamplingSketch: empty distribution");
  }
  double total = 0.0;
  for (double p : probabilities) {
    if (p < 0.0 || !std::isfinite(p)) {
      return Status::InvalidArgument(
          "WeightedSamplingSketch: probabilities must be finite and >= 0");
    }
    total += p;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument(
        "WeightedSamplingSketch: distribution sums to zero");
  }
  // Cumulative distribution for inverse-CDF sampling.
  std::vector<double> cumulative(probabilities.size());
  double acc = 0.0;
  for (size_t i = 0; i < probabilities.size(); ++i) {
    acc += probabilities[i] / total;
    cumulative[i] = acc;
  }
  cumulative.back() = 1.0;

  Rng rng(DeriveSeed(seed, 0));
  std::vector<int64_t> sampled(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    const double u = rng.UniformDouble();
    // Binary search for the first cumulative >= u.
    size_t lo = 0, hi = cumulative.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cumulative[mid] >= u) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    sampled[static_cast<size_t>(i)] = static_cast<int64_t>(lo);
  }
  std::vector<double> weights(probabilities.size(), 0.0);
  for (size_t i = 0; i < probabilities.size(); ++i) {
    const double p = probabilities[i] / total;
    if (p > 0.0) {
      weights[i] = 1.0 / std::sqrt(static_cast<double>(m) * p);
    }
  }
  return WeightedSamplingSketch(m, std::move(sampled), std::move(weights));
}

std::vector<ColumnEntry> WeightedSamplingSketch::Column(int64_t c) const {
  SOSE_CHECK(c >= 0 && c < cols());
  std::vector<ColumnEntry> entries;
  for (int64_t i = 0; i < m_; ++i) {
    if (sampled_[static_cast<size_t>(i)] == c) {
      entries.push_back(ColumnEntry{i, weights_[static_cast<size_t>(c)]});
    }
  }
  return entries;
}

}  // namespace sose
