#ifndef SOSE_SKETCH_WEIGHTED_SAMPLING_H_
#define SOSE_SKETCH_WEIGHTED_SAMPLING_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "sketch/sketch.h"

namespace sose {

/// Importance-weighted row sampling: m rows drawn i.i.d. from a given
/// distribution p over [n], with the sampled coordinate i scaled by
/// 1/√(m·p_i) so that E[ΠᵀΠ] = I.
///
/// With p proportional to the leverage scores of a matrix A this is
/// leverage-score sampling — a *non-oblivious* embedding that needs only
/// m = O(d log d/ε²) rows on ANY input, including the paper's hard
/// instances. Its existence is why the paper's lower bounds are stated for
/// oblivious sketches: seeing the data first sidesteps the Ω(d²) wall that
/// binds every data-independent s = 1 construction. (The sampler itself is
/// a fixed matrix once drawn; "non-oblivious" refers to p being computed
/// from the data.)
class WeightedSamplingSketch final : public SketchingMatrix {
 public:
  /// Draws m rows from the distribution `probabilities` (length n, summing
  /// to ~1; entries must be non-negative, renormalized internally).
  [[nodiscard]] static Result<WeightedSamplingSketch> Create(
      const std::vector<double>& probabilities, int64_t m, uint64_t seed);

  int64_t rows() const override { return m_; }
  int64_t cols() const override {
    return static_cast<int64_t>(weights_.size());
  }
  int64_t column_sparsity() const override { return m_; }
  std::string name() const override { return "weighted-sample"; }

  std::vector<ColumnEntry> Column(int64_t c) const override;

  /// The coordinate sampled for sketch row i.
  int64_t SampledCoordinate(int64_t i) const {
    SOSE_DCHECK(i >= 0 && i < m_);
    return sampled_[static_cast<size_t>(i)];
  }

 private:
  WeightedSamplingSketch(int64_t m, std::vector<int64_t> sampled,
                         std::vector<double> weights)
      : m_(m), sampled_(std::move(sampled)), weights_(std::move(weights)) {}

  int64_t m_;
  std::vector<int64_t> sampled_;  // m sampled coordinates.
  std::vector<double> weights_;   // Per-coordinate value 1/√(m p_c); 0 if
                                  // p_c = 0 (never sampled).
};

}  // namespace sose

#endif  // SOSE_SKETCH_WEIGHTED_SAMPLING_H_
