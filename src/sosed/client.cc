#include "sosed/client.h"

#include <utility>

#include <algorithm>
#include <charconv>

#include "core/csv.h"
#include "core/stopwatch.h"

namespace sose::sosed {

namespace {

// Strict whole-cell base-10 parse (the library bans exceptions, so no
// std::stoll).
Result<int64_t> ParseDimCell(const std::string& cell) {
  int64_t value = 0;
  const char* begin = cell.data();
  const char* end = begin + cell.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end || cell.empty()) {
    return Status::Internal("sosed client: malformed dimension cell: '" +
                            cell + "'");
  }
  return value;
}

}  // namespace

Result<ServiceClient> ServiceClient::ConnectUnix(const std::string& path,
                                                 double timeout_seconds,
                                                 Pump pump) {
  SOSE_ASSIGN_OR_RETURN(net::Socket socket, net::Socket::ConnectUnix(path));
  return Handshake(std::move(socket), std::move(pump), timeout_seconds);
}

Result<ServiceClient> ServiceClient::ConnectTcp(const std::string& host,
                                                int port,
                                                double timeout_seconds,
                                                Pump pump) {
  SOSE_ASSIGN_OR_RETURN(net::Socket socket,
                        net::Socket::ConnectTcp(host, port));
  return Handshake(std::move(socket), std::move(pump), timeout_seconds);
}

Result<ServiceClient> ServiceClient::Handshake(net::Socket socket, Pump pump,
                                               double timeout_seconds) {
  ServiceClient client(std::move(socket), std::move(pump));
  SOSE_ASSIGN_OR_RETURN(const Reply greeting,
                        client.NextReply(timeout_seconds));
  if (greeting.kind != Reply::Kind::kFormat) {
    return Status::InvalidArgument(
        "sosed greeting missing or malformed; is the peer a " +
        std::string(kServiceFormat) + " server?");
  }
  return client;
}

Status ServiceClient::PumpAndPoll(bool want_write, double timeout_seconds) {
  if (pump_ != nullptr) {
    SOSE_RETURN_IF_ERROR(pump_());
  }
  SOSE_ASSIGN_OR_RETURN(
      const std::vector<net::PollReady> ready,
      net::PollFds({{socket_.fd(), true, want_write}}, timeout_seconds));
  (void)ready;  // Readiness is rediscovered by the non-blocking I/O itself.
  return Status::OK();
}

Status ServiceClient::SendRaw(const std::string& bytes,
                              double timeout_seconds) {
  Stopwatch watch;
  int64_t offset = 0;
  const int64_t total = static_cast<int64_t>(bytes.size());
  while (offset < total) {
    SOSE_ASSIGN_OR_RETURN(const int64_t wrote,
                          socket_.WriteSome(bytes, offset));
    offset += wrote;
    if (offset >= total) break;
    const double remaining = timeout_seconds - watch.ElapsedSeconds();
    if (remaining <= 0) {
      return Status::Internal("sosed client: send timed out");
    }
    // The pump interval is short so an in-process server drains us even
    // when the kernel buffer is full.
    SOSE_RETURN_IF_ERROR(
        PumpAndPoll(/*want_write=*/true, std::min(remaining, 0.05)));
  }
  return Status::OK();
}

Result<Reply> ServiceClient::NextReply(double timeout_seconds) {
  Stopwatch watch;
  while (true) {
    if (!records_.empty()) {
      const std::string line = std::move(records_.front());
      records_.pop_front();
      return ParseReply(line);
    }
    SOSE_ASSIGN_OR_RETURN(const net::ReadChunk chunk,
                          socket_.ReadAvailable(&buffer_));
    for (std::string& record : ExtractCompleteCsvRecords(&buffer_)) {
      records_.push_back(std::move(record));
    }
    if (!records_.empty()) continue;
    if (chunk.eof) {
      return Status::Internal("sosed client: connection closed mid-reply");
    }
    const double remaining = timeout_seconds - watch.ElapsedSeconds();
    if (remaining <= 0) {
      return Status::Internal("sosed client: reply timed out");
    }
    SOSE_RETURN_IF_ERROR(
        PumpAndPoll(/*want_write=*/false, std::min(remaining, 0.05)));
  }
}

Result<Reply> ServiceClient::Call(const std::string& encoded_request,
                                  double timeout_seconds) {
  SOSE_RETURN_IF_ERROR(SendRaw(encoded_request, timeout_seconds));
  return NextReply(timeout_seconds);
}

Result<Reply> ServiceClient::Open(const std::string& sid,
                                  const std::string& family, int64_t n,
                                  int64_t m, int64_t s, int64_t k,
                                  uint64_t seed, double timeout_seconds) {
  return Call(EncodeOpenRequest(sid, family, n, m, s, k, seed),
              timeout_seconds);
}

Result<Reply> ServiceClient::Attach(const std::string& sid,
                                    double timeout_seconds) {
  return Call(EncodeSessionRequest(Verb::kAttach, sid), timeout_seconds);
}

Result<Reply> ServiceClient::Detach(const std::string& sid,
                                    double timeout_seconds) {
  return Call(EncodeSessionRequest(Verb::kDetach, sid), timeout_seconds);
}

Result<Reply> ServiceClient::CloseSession(const std::string& sid,
                                          double timeout_seconds) {
  return Call(EncodeSessionRequest(Verb::kClose, sid), timeout_seconds);
}

Result<Reply> ServiceClient::Update(const std::string& sid, int64_t row,
                                    const std::vector<UpdateEntry>& entries,
                                    double timeout_seconds) {
  return Call(EncodeUpdateRequest(sid, row, entries), timeout_seconds);
}

Result<Reply> ServiceClient::Norms(const std::string& sid,
                                   double timeout_seconds) {
  return Call(EncodeSessionRequest(Verb::kNorms, sid), timeout_seconds);
}

Result<Reply> ServiceClient::Distortion(const std::string& sid,
                                        double timeout_seconds) {
  return Call(EncodeSessionRequest(Verb::kDistortion, sid), timeout_seconds);
}

Result<Reply> ServiceClient::Solve(const std::string& sid,
                                   double timeout_seconds) {
  return Call(EncodeSessionRequest(Verb::kSolve, sid), timeout_seconds);
}

Result<Reply> ServiceClient::Ping(double timeout_seconds) {
  return Call(EncodeBareRequest(Verb::kPing), timeout_seconds);
}

Result<Reply> ServiceClient::ShutdownServer(double timeout_seconds) {
  return Call(EncodeBareRequest(Verb::kShutdown), timeout_seconds);
}

Result<std::string> ServiceClient::Stats(double timeout_seconds) {
  SOSE_ASSIGN_OR_RETURN(const Reply reply,
                        Call(EncodeBareRequest(Verb::kStats), timeout_seconds));
  if (reply.kind != Reply::Kind::kOk || reply.payload.size() != 1) {
    return Status::Internal("sosed client: malformed stats reply");
  }
  return reply.payload[0];
}

Result<Matrix> ServiceClient::FetchSketch(const std::string& sid,
                                          double timeout_seconds) {
  SOSE_ASSIGN_OR_RETURN(
      const Reply header,
      Call(EncodeSessionRequest(Verb::kSketch, sid), timeout_seconds));
  if (header.kind == Reply::Kind::kBusy) {
    return Status::Unavailable(header.message);
  }
  if (header.kind == Reply::Kind::kErr) {
    return Status(header.code, header.message);
  }
  if (header.kind != Reply::Kind::kOk || header.payload.size() != 2) {
    return Status::Internal("sosed client: malformed sketch header");
  }
  SOSE_ASSIGN_OR_RETURN(const int64_t rows, ParseDimCell(header.payload[0]));
  SOSE_ASSIGN_OR_RETURN(const int64_t cols, ParseDimCell(header.payload[1]));
  if (rows < 0 || cols <= 0) {
    return Status::Internal("sosed client: nonsensical sketch dimensions");
  }
  Matrix sketch(rows, cols);
  for (int64_t i = 0; i < rows; ++i) {
    SOSE_ASSIGN_OR_RETURN(const Reply row, NextReply(timeout_seconds));
    if (row.kind != Reply::Kind::kRow || row.row != i ||
        static_cast<int64_t>(row.values.size()) != cols) {
      return Status::Internal("sosed client: sketch stream out of order");
    }
    for (int64_t j = 0; j < cols; ++j) {
      sketch.At(i, j) = row.values[static_cast<size_t>(j)];
    }
  }
  SOSE_ASSIGN_OR_RETURN(const Reply end, NextReply(timeout_seconds));
  if (end.kind != Reply::Kind::kEnd) {
    return Status::Internal("sosed client: sketch stream missing terminator");
  }
  return sketch;
}

}  // namespace sose::sosed
