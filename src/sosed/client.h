#ifndef SOSE_SOSED_CLIENT_H_
#define SOSE_SOSED_CLIENT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/matrix.h"
#include "core/net/net.h"
#include "core/status.h"
#include "sosed/protocol.h"

namespace sose::sosed {

/// Client for the `sosed` streaming sketch service — the programmatic core
/// of the `sose_cli` binary and the driver the e2e tests use.
///
/// The client is synchronous: every method sends one request and blocks
/// (bounded by `timeout_seconds`) until its reply arrives. While waiting it
/// invokes the optional *pump* callback between poll rounds, which is how a
/// single-threaded test hosts server and client in one process: the pump
/// runs `server->PollOnce(0)` so the peer makes progress without threads.
class ServiceClient {
 public:
  using Pump = std::function<Status()>;

  /// Connects and consumes the `format,sose-service-v1` greeting (failing
  /// on a version mismatch).
  [[nodiscard]] static Result<ServiceClient> ConnectUnix(
      const std::string& path, double timeout_seconds, Pump pump = nullptr);
  [[nodiscard]] static Result<ServiceClient> ConnectTcp(
      const std::string& host, int port, double timeout_seconds,
      Pump pump = nullptr);

  ServiceClient(ServiceClient&&) noexcept = default;
  ServiceClient& operator=(ServiceClient&&) noexcept = default;

  /// Session verbs. Each returns the decoded reply — which may be kBusy or
  /// kErr; only transport/protocol failures surface as a Status.
  [[nodiscard]] Result<Reply> Open(const std::string& sid,
                                   const std::string& family, int64_t n,
                                   int64_t m, int64_t s, int64_t k,
                                   uint64_t seed, double timeout_seconds);
  [[nodiscard]] Result<Reply> Attach(const std::string& sid,
                                     double timeout_seconds);
  [[nodiscard]] Result<Reply> Detach(const std::string& sid,
                                     double timeout_seconds);
  [[nodiscard]] Result<Reply> CloseSession(const std::string& sid,
                                           double timeout_seconds);
  [[nodiscard]] Result<Reply> Update(const std::string& sid, int64_t row,
                                     const std::vector<UpdateEntry>& entries,
                                     double timeout_seconds);
  [[nodiscard]] Result<Reply> Norms(const std::string& sid,
                                    double timeout_seconds);
  [[nodiscard]] Result<Reply> Distortion(const std::string& sid,
                                         double timeout_seconds);
  [[nodiscard]] Result<Reply> Solve(const std::string& sid,
                                    double timeout_seconds);
  [[nodiscard]] Result<Reply> Ping(double timeout_seconds);
  [[nodiscard]] Result<Reply> ShutdownServer(double timeout_seconds);

  /// `stats`: returns the JSON document (the single payload cell).
  [[nodiscard]] Result<std::string> Stats(double timeout_seconds);

  /// `sketch`: consumes the full ok/row.../end stream into a Matrix.
  /// A busy or err reply surfaces as a Status carrying the server's code.
  [[nodiscard]] Result<Matrix> FetchSketch(const std::string& sid,
                                           double timeout_seconds);

  /// Raw request/reply round trip (tests exercise malformed requests).
  [[nodiscard]] Result<Reply> Call(const std::string& encoded_request,
                                   double timeout_seconds);

  /// Sends raw bytes without awaiting a reply (pipelining / torn-frame
  /// tests).
  [[nodiscard]] Status SendRaw(const std::string& bytes,
                               double timeout_seconds);

  /// Receives the next reply record, whatever it is.
  [[nodiscard]] Result<Reply> NextReply(double timeout_seconds);

 private:
  explicit ServiceClient(net::Socket socket, Pump pump)
      : socket_(std::move(socket)), pump_(std::move(pump)) {}

  static Result<ServiceClient> Handshake(net::Socket socket, Pump pump,
                                         double timeout_seconds);

  /// One poll round on the socket (read direction), running the pump first
  /// so an in-process server can produce the bytes we are about to wait
  /// for.
  [[nodiscard]] Status PumpAndPoll(bool want_write, double timeout_seconds);

  net::Socket socket_;
  Pump pump_;
  std::string buffer_;                ///< Unframed inbound bytes.
  std::deque<std::string> records_;   ///< Framed, not yet consumed replies.
};

}  // namespace sose::sosed

#endif  // SOSE_SOSED_CLIENT_H_
