#include "sosed/protocol.h"

#include <array>
#include <charconv>

#include "core/csv.h"
#include "core/hexfloat.h"

namespace sose::sosed {

namespace {

struct VerbEntry {
  Verb verb;
  const char* name;
};

constexpr std::array<VerbEntry, 12> kVerbs = {{
    {Verb::kOpen, "open"},
    {Verb::kAttach, "attach"},
    {Verb::kDetach, "detach"},
    {Verb::kClose, "close"},
    {Verb::kUpdate, "update"},
    {Verb::kSketch, "sketch"},
    {Verb::kNorms, "norms"},
    {Verb::kDistortion, "distortion"},
    {Verb::kSolve, "solve"},
    {Verb::kStats, "stats"},
    {Verb::kPing, "ping"},
    {Verb::kShutdown, "shutdown"},
}};

// Strict locale-independent integer cell parse: the whole cell must be one
// base-10 integer.
template <typename Int>
Result<Int> ParseIntCell(const std::string& cell, const char* what) {
  Int value{};
  const char* begin = cell.data();
  const char* end = begin + cell.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end || cell.empty()) {
    return Status::InvalidArgument(std::string(what) + ": not an integer: '" +
                                   cell + "'");
  }
  return value;
}

// Session ids travel in CSV cells and key server-side maps; keep them
// short and printable so log lines and error messages stay readable.
Status ValidateSessionId(const std::string& sid) {
  if (sid.empty() || sid.size() > 128) {
    return Status::InvalidArgument("session id must be 1..128 bytes");
  }
  for (char c : sid) {
    if (c < 0x21 || c > 0x7e || c == ',' || c == '"') {
      return Status::InvalidArgument(
          "session id must be printable ASCII without ',' or '\"'");
    }
  }
  return Status::OK();
}

}  // namespace

const char* VerbName(Verb verb) {
  for (const VerbEntry& entry : kVerbs) {
    if (verb == entry.verb) return entry.name;
  }
  return "invalid";
}

Verb VerbFromName(const std::string& name) {
  for (const VerbEntry& entry : kVerbs) {
    if (name == entry.name) return entry.verb;
  }
  return Verb::kInvalid;
}

std::string HexCell(double value) { return FormatHexDouble(value); }

Result<double> ParseHexCell(const std::string& cell) {
  double value = 0.0;
  if (!ParseHexDouble(cell, &value)) {
    return Status::InvalidArgument("not a hexfloat cell: '" + cell + "'");
  }
  return value;
}

Result<Request> ParseRequest(const std::string& line) {
  SOSE_ASSIGN_OR_RETURN(const std::vector<std::string> cells,
                        ParseCsvRecord(line));
  if (cells.empty()) return Status::InvalidArgument("empty request record");
  Request request;
  request.verb = VerbFromName(cells[0]);
  switch (request.verb) {
    case Verb::kOpen: {
      if (cells.size() != 8) {
        return Status::InvalidArgument(
            "open takes 7 arguments: "
            "open,<sid>,<family>,<n>,<m>,<s>,<k>,<seed>");
      }
      SOSE_RETURN_IF_ERROR(ValidateSessionId(cells[1]));
      request.session_id = cells[1];
      request.family = cells[2];
      SOSE_ASSIGN_OR_RETURN(request.ambient_n,
                            ParseIntCell<int64_t>(cells[3], "open n"));
      SOSE_ASSIGN_OR_RETURN(request.target_m,
                            ParseIntCell<int64_t>(cells[4], "open m"));
      SOSE_ASSIGN_OR_RETURN(request.sparsity,
                            ParseIntCell<int64_t>(cells[5], "open s"));
      SOSE_ASSIGN_OR_RETURN(request.data_columns,
                            ParseIntCell<int64_t>(cells[6], "open k"));
      SOSE_ASSIGN_OR_RETURN(request.seed,
                            ParseIntCell<uint64_t>(cells[7], "open seed"));
      return request;
    }
    case Verb::kAttach:
    case Verb::kDetach:
    case Verb::kClose:
    case Verb::kSketch:
    case Verb::kNorms:
    case Verb::kDistortion:
    case Verb::kSolve: {
      if (cells.size() != 2) {
        return Status::InvalidArgument(std::string(cells[0]) +
                                       " takes 1 argument: <sid>");
      }
      SOSE_RETURN_IF_ERROR(ValidateSessionId(cells[1]));
      request.session_id = cells[1];
      return request;
    }
    case Verb::kUpdate: {
      if (cells.size() < 5 || cells.size() % 2 != 1) {
        return Status::InvalidArgument(
            "update takes an odd cell count >= 5: "
            "update,<sid>,<row>,<col>,<hexval>[,<col>,<hexval>...]");
      }
      SOSE_RETURN_IF_ERROR(ValidateSessionId(cells[1]));
      request.session_id = cells[1];
      SOSE_ASSIGN_OR_RETURN(request.row,
                            ParseIntCell<int64_t>(cells[2], "update row"));
      request.entries.reserve((cells.size() - 3) / 2);
      for (size_t i = 3; i + 1 < cells.size(); i += 2) {
        UpdateEntry entry;
        SOSE_ASSIGN_OR_RETURN(entry.col,
                              ParseIntCell<int64_t>(cells[i], "update col"));
        SOSE_ASSIGN_OR_RETURN(entry.value, ParseHexCell(cells[i + 1]));
        request.entries.push_back(entry);
      }
      return request;
    }
    case Verb::kStats:
    case Verb::kPing:
    case Verb::kShutdown: {
      if (cells.size() != 1) {
        return Status::InvalidArgument(std::string(cells[0]) +
                                       " takes no arguments");
      }
      return request;
    }
    case Verb::kInvalid:
      break;
  }
  return Status::InvalidArgument("unknown request verb: '" + cells[0] + "'");
}

std::string EncodeOpenRequest(const std::string& sid,
                              const std::string& family, int64_t n, int64_t m,
                              int64_t s, int64_t k, uint64_t seed) {
  return FormatCsvRow({"open", sid, family, std::to_string(n),
                       std::to_string(m), std::to_string(s),
                       std::to_string(k), std::to_string(seed)});
}

std::string EncodeSessionRequest(Verb verb, const std::string& sid) {
  return FormatCsvRow({VerbName(verb), sid});
}

std::string EncodeUpdateRequest(const std::string& sid, int64_t row,
                                const std::vector<UpdateEntry>& entries) {
  std::vector<std::string> cells;
  cells.reserve(3 + 2 * entries.size());
  cells.push_back("update");
  cells.push_back(sid);
  cells.push_back(std::to_string(row));
  for (const UpdateEntry& entry : entries) {
    cells.push_back(std::to_string(entry.col));
    cells.push_back(HexCell(entry.value));
  }
  return FormatCsvRow(cells);
}

std::string EncodeBareRequest(Verb verb) {
  return FormatCsvRow({VerbName(verb)});
}

std::string EncodeGreeting() {
  return FormatCsvRow({"format", kServiceFormat});
}

std::string EncodeOkReply(Verb verb, const std::vector<std::string>& payload) {
  std::vector<std::string> cells;
  cells.reserve(2 + payload.size());
  cells.push_back("ok");
  cells.push_back(VerbName(verb));
  cells.insert(cells.end(), payload.begin(), payload.end());
  return FormatCsvRow(cells);
}

std::string EncodeBusyReply(Verb verb, double retry_after_seconds,
                            const std::string& message) {
  return FormatCsvRow(
      {"busy", VerbName(verb), HexCell(retry_after_seconds), message});
}

std::string EncodeErrReply(Verb verb, const Status& status) {
  return FormatCsvRow({"err", VerbName(verb), StatusCodeToString(status.code()),
                       status.message()});
}

std::string EncodeSketchRowReply(int64_t row,
                                 const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(2 + values.size());
  cells.push_back("row");
  cells.push_back(std::to_string(row));
  for (double value : values) cells.push_back(HexCell(value));
  return FormatCsvRow(cells);
}

std::string EncodeSketchEndReply() {
  return FormatCsvRow({"end", "sketch"});
}

Result<Reply> ParseReply(const std::string& line) {
  SOSE_ASSIGN_OR_RETURN(const std::vector<std::string> cells,
                        ParseCsvRecord(line));
  if (cells.empty()) return Status::InvalidArgument("empty reply record");
  Reply reply;
  const std::string& tag = cells[0];
  if (tag == "format") {
    if (cells.size() != 2 || cells[1] != kServiceFormat) {
      return Status::InvalidArgument("unrecognized service format record");
    }
    reply.kind = Reply::Kind::kFormat;
    return reply;
  }
  if (tag == "ok" || tag == "busy" || tag == "err") {
    if (cells.size() < 2) {
      return Status::InvalidArgument("reply is missing its verb cell");
    }
    reply.verb = VerbFromName(cells[1]);
    // "invalid" is the verb cell of an err reply to an unparseable
    // request; any other unknown name is a malformed reply.
    if (reply.verb == Verb::kInvalid && cells[1] != "invalid") {
      return Status::InvalidArgument("reply names unknown verb: '" + cells[1] +
                                     "'");
    }
    reply.payload.assign(cells.begin() + 2, cells.end());
    if (tag == "ok") {
      reply.kind = Reply::Kind::kOk;
      return reply;
    }
    if (tag == "busy") {
      if (cells.size() != 4) {
        return Status::InvalidArgument(
            "busy takes 3 cells: busy,<verb>,<retry_after_hex>,<msg>");
      }
      reply.kind = Reply::Kind::kBusy;
      SOSE_ASSIGN_OR_RETURN(reply.retry_after_seconds, ParseHexCell(cells[2]));
      reply.message = cells[3];
      return reply;
    }
    if (cells.size() != 4) {
      return Status::InvalidArgument(
          "err takes 3 cells: err,<verb>,<code>,<msg>");
    }
    reply.kind = Reply::Kind::kErr;
    if (!StatusCodeFromString(cells[2], &reply.code)) {
      return Status::InvalidArgument("err names unknown status code: '" +
                                     cells[2] + "'");
    }
    reply.message = cells[3];
    return reply;
  }
  if (tag == "row") {
    if (cells.size() < 2) {
      return Status::InvalidArgument("row reply is missing its index");
    }
    reply.kind = Reply::Kind::kRow;
    SOSE_ASSIGN_OR_RETURN(reply.row,
                          ParseIntCell<int64_t>(cells[1], "row index"));
    reply.values.reserve(cells.size() - 2);
    for (size_t i = 2; i < cells.size(); ++i) {
      SOSE_ASSIGN_OR_RETURN(const double value, ParseHexCell(cells[i]));
      reply.values.push_back(value);
    }
    return reply;
  }
  if (tag == "end") {
    if (cells.size() != 2 || cells[1] != "sketch") {
      return Status::InvalidArgument("malformed end record");
    }
    reply.kind = Reply::Kind::kEnd;
    return reply;
  }
  return Status::InvalidArgument("unknown reply tag: '" + tag + "'");
}

}  // namespace sose::sosed
