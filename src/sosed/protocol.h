#ifndef SOSE_SOSED_PROTOCOL_H_
#define SOSE_SOSED_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"

namespace sose::sosed {

/// The `sose-service-v1` wire protocol of the `sosed` streaming sketch
/// service (docs/service.md).
///
/// Framing reuses the quote-aware CSV conventions of the shard wire
/// protocol `sose-shard-stream-v1`: every request and reply is one
/// newline-terminated RFC 4180 record (FormatCsvRow / ParseCsvRecord), a
/// receiver re-assembles records from its byte stream with
/// ExtractCompleteCsvRecords (so a torn tail is simply left for the next
/// read), and every double crosses the wire as locale-independent hexfloat
/// text — replies are bit-exact by construction.
///
/// On connect the server greets with `format,sose-service-v1`. Requests:
///
///   open,<sid>,<family>,<n>,<m>,<s>,<k>,<seed>   create a session
///   attach,<sid>           adopt a detached session on this connection
///   detach,<sid>           park the session (evictable under pressure)
///   close,<sid>            free the session
///   update,<sid>,<row>,<col>,<hexval>[,<col>,<hexval>...]
///                          turnstile row update: A[row, col] += val
///   sketch,<sid>           fetch the m x k sketch state
///   norms,<sid>            column l2 norms of the sketch state
///   distortion,<sid>       distortion report of the sketched state
///   solve,<sid>            least squares: columns 0..k-2 vs column k-1
///   stats                  server + metrics snapshot as JSON
///   ping                   liveness probe
///   shutdown               stop the server after flushing replies
///
/// Replies are tagged with the request verb:
///
///   ok,<verb>[,...]                      success (payload cells per verb)
///   busy,<verb>,<retry_after_hex>,<msg>  admission control shed the load
///   err,<verb>,<status-code-name>,<msg>  failure (session survives)
///
/// The `sketch` payload streams between a header and a terminator so a
/// client can process rows incrementally:
///
///   ok,sketch,<m>,<k>
///   row,<i>,<hex_0>,...,<hex_{k-1}>      m records, i ascending
///   end,sketch

/// Wire schema version; bumped on incompatible changes.
inline constexpr const char* kServiceFormat = "sose-service-v1";

/// Request verbs. kInvalid marks an unparseable or unknown request.
enum class Verb {
  kOpen,
  kAttach,
  kDetach,
  kClose,
  kUpdate,
  kSketch,
  kNorms,
  kDistortion,
  kSolve,
  kStats,
  kPing,
  kShutdown,
  kInvalid,
};

/// Canonical lowercase verb name (the first CSV cell of a request).
const char* VerbName(Verb verb);

/// Inverse of VerbName; kInvalid for unknown names.
Verb VerbFromName(const std::string& name);

/// One turnstile update entry within a row: A[row, col] += value.
struct UpdateEntry {
  int64_t col = 0;
  double value = 0.0;
};

/// A decoded request record.
struct Request {
  Verb verb = Verb::kInvalid;
  std::string session_id;  ///< Empty for stats/ping/shutdown.
  // kOpen:
  std::string family;
  int64_t ambient_n = 0;
  int64_t target_m = 0;
  int64_t sparsity = 1;
  int64_t data_columns = 0;
  uint64_t seed = 0;
  // kUpdate:
  int64_t row = 0;
  std::vector<UpdateEntry> entries;
};

/// Parses one framed request record (no trailing newline). Fails with
/// kInvalidArgument naming the defect; the server answers with an `err`
/// reply (verb cell "invalid" when the verb itself was unrecognizable)
/// and keeps the connection open.
[[nodiscard]] Result<Request> ParseRequest(const std::string& line);

/// Request encoders (each returns one newline-terminated CSV record);
/// used by the client and the tests.
std::string EncodeOpenRequest(const std::string& sid,
                              const std::string& family, int64_t n, int64_t m,
                              int64_t s, int64_t k, uint64_t seed);
std::string EncodeSessionRequest(Verb verb, const std::string& sid);
std::string EncodeUpdateRequest(const std::string& sid, int64_t row,
                                const std::vector<UpdateEntry>& entries);
std::string EncodeBareRequest(Verb verb);

/// Reply encoders.
std::string EncodeGreeting();
std::string EncodeOkReply(Verb verb, const std::vector<std::string>& payload);
std::string EncodeBusyReply(Verb verb, double retry_after_seconds,
                            const std::string& message);
std::string EncodeErrReply(Verb verb, const Status& status);
std::string EncodeSketchRowReply(int64_t row,
                                 const std::vector<double>& values);
std::string EncodeSketchEndReply();

/// A decoded reply record (client side).
struct Reply {
  enum class Kind { kFormat, kOk, kBusy, kErr, kRow, kEnd };
  Kind kind = Kind::kErr;
  Verb verb = Verb::kInvalid;        ///< kOk/kBusy/kErr.
  std::vector<std::string> payload;  ///< Cells after the tag cells.
  double retry_after_seconds = 0.0;  ///< kBusy.
  StatusCode code = StatusCode::kInternal;  ///< kErr.
  std::string message;                      ///< kBusy/kErr.
  int64_t row = 0;                   ///< kRow.
  std::vector<double> values;        ///< kRow.
};

/// Parses one framed reply record. Fails with kInvalidArgument on anything
/// the server could not have produced.
[[nodiscard]] Result<Reply> ParseReply(const std::string& line);

/// Formats doubles the way every payload cell does (FormatHexDouble).
std::string HexCell(double value);

/// Parses a hexfloat payload cell (ParseHexDouble), kInvalidArgument on
/// malformed text.
[[nodiscard]] Result<double> ParseHexCell(const std::string& cell);

}  // namespace sose::sosed

#endif  // SOSE_SOSED_PROTOCOL_H_
