#include "sosed/selfcheck.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/matrix.h"
#include "core/random.h"
#include "core/sparse.h"
#include "sketch/registry.h"

namespace sose::sosed {

namespace {

struct WorkloadRow {
  int64_t row = 0;
  std::vector<UpdateEntry> entries;
};

/// Deterministic synthetic turnstile workload: ascending distinct ambient
/// rows, each cell updated at most once (see header for why that pins the
/// accumulation order).
std::vector<WorkloadRow> MakeWorkload(const SelfcheckOptions& options,
                                      uint64_t workload_seed) {
  Rng rng(workload_seed);
  std::vector<WorkloadRow> workload;
  const int64_t rows = std::min(options.stream_rows, options.ambient_n);
  workload.reserve(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    WorkloadRow row;
    row.row = r;
    for (int64_t c = 0; c < options.data_columns; ++c) {
      // ~70% fill keeps rows sparse-ish while exercising multi-entry
      // updates.
      if (rng.UniformDouble() < 0.7) {
        row.entries.push_back({c, rng.UniformDouble(-1.0, 1.0)});
      }
    }
    if (!row.entries.empty()) workload.push_back(std::move(row));
  }
  return workload;
}

}  // namespace

double BusyRetryDelay(double retry_after_seconds) {
  if (!std::isfinite(retry_after_seconds)) return 0.01;
  return std::clamp(retry_after_seconds, 0.01, 0.25);
}

Result<SelfcheckReport> RunSelfcheck(ServiceClient* client,
                                     const SelfcheckOptions& options,
                                     double timeout_seconds) {
  if (client == nullptr) {
    return Status::InvalidArgument("RunSelfcheck: null client");
  }
  SelfcheckReport report;

  // Open, absorbing BUSY with the server's retry-after hint.
  for (int64_t attempt = 0;; ++attempt) {
    SOSE_ASSIGN_OR_RETURN(
        const Reply reply,
        client->Open(options.session_id, options.family, options.ambient_n,
                     options.target_m, options.sparsity, options.data_columns,
                     options.seed, timeout_seconds));
    if (reply.kind == Reply::Kind::kOk) {
      if (reply.payload.size() == 2) report.sketch_name = reply.payload[1];
      break;
    }
    if (reply.kind == Reply::Kind::kBusy) {
      if (attempt >= options.busy_retries) {
        return Status::Unavailable("selfcheck: open kept answering busy: " +
                                   reply.message);
      }
      ++report.busy_retries;
      // Honor the hint, clamped both ways — BusyRetryDelay keeps a zero or
      // negative hint from hot-spinning the open loop. PollFds with no fds
      // is a pure sleep.
      SOSE_ASSIGN_OR_RETURN(
          const std::vector<net::PollReady> ignored,
          net::PollFds({}, BusyRetryDelay(reply.retry_after_seconds)));
      (void)ignored;
      continue;
    }
    return Status(reply.code, "selfcheck: open failed: " + reply.message);
  }

  // Stream the workload and mirror it into a local COO accumulator.
  const std::vector<WorkloadRow> workload =
      MakeWorkload(options, options.data_seed);
  CooBuilder builder(options.ambient_n, options.data_columns);
  for (const WorkloadRow& row : workload) {
    SOSE_ASSIGN_OR_RETURN(
        const Reply reply,
        client->Update(options.session_id, row.row, row.entries,
                       timeout_seconds));
    if (reply.kind != Reply::Kind::kOk) {
      return Status(reply.code, "selfcheck: update failed: " + reply.message);
    }
    ++report.updates_sent;
    for (const UpdateEntry& entry : row.entries) {
      builder.Add(row.row, entry.col, entry.value);
      ++report.entries_sent;
    }
  }

  // Streamed result from the server vs batch ApplySparse locally, same
  // family/config/seed.
  SOSE_ASSIGN_OR_RETURN(const Matrix streamed,
                        client->FetchSketch(options.session_id,
                                            timeout_seconds));
  SketchConfig config;
  config.rows = options.target_m;
  config.cols = options.ambient_n;
  config.sparsity = options.sparsity;
  config.seed = options.seed;
  SOSE_ASSIGN_OR_RETURN(const std::unique_ptr<SketchingMatrix> sketch,
                        CreateSketch(options.family, config));
  SOSE_ASSIGN_OR_RETURN(const Matrix batch,
                        sketch->ApplySparse(builder.ToCsc()));

  if (streamed.rows() != batch.rows() || streamed.cols() != batch.cols()) {
    return Status::Internal("selfcheck: sketch shape mismatch");
  }
  report.mismatched_cells = 0;
  for (int64_t i = 0; i < batch.rows(); ++i) {
    for (int64_t j = 0; j < batch.cols(); ++j) {
      if (std::bit_cast<uint64_t>(streamed.At(i, j)) !=
          std::bit_cast<uint64_t>(batch.At(i, j))) {
        ++report.mismatched_cells;
      }
    }
  }
  report.bitwise_equal = report.mismatched_cells == 0;

  // Leave the server clean for the next workload.
  SOSE_ASSIGN_OR_RETURN(
      const Reply closed,
      client->CloseSession(options.session_id, timeout_seconds));
  if (closed.kind != Reply::Kind::kOk) {
    return Status(closed.code, "selfcheck: close failed: " + closed.message);
  }
  return report;
}

}  // namespace sose::sosed
