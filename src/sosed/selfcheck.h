#ifndef SOSE_SOSED_SELFCHECK_H_
#define SOSE_SOSED_SELFCHECK_H_

#include <cstdint>
#include <string>

#include "core/status.h"
#include "sosed/client.h"

namespace sose::sosed {

/// The streamed-vs-batch parity check behind `sose_cli --cmd=selfcheck`
/// and the e2e tests: opens a session, streams a deterministic synthetic
/// turnstile workload, fetches the streamed sketch, recomputes the same
/// sketch locally with batch ApplySparse on the accumulated matrix, and
/// demands *bitwise* equality — the linearity discipline the service
/// guarantees (docs/service.md).
///
/// The workload updates every ambient (row, col) cell at most once and
/// streams rows in ascending order, which pins the per-cell accumulation
/// order to exactly the CSC walk of ApplySparse; that is what makes the
/// comparison exact rather than tolerance-based.
struct SelfcheckOptions {
  std::string session_id = "selfcheck";
  std::string family = "countsketch";
  int64_t ambient_n = 256;   ///< n
  int64_t target_m = 64;     ///< m
  int64_t sparsity = 4;      ///< s (ignored by some families)
  int64_t data_columns = 6;  ///< k
  uint64_t seed = 42;        ///< Sketch draw seed (client and server).
  uint64_t data_seed = 7;    ///< Synthetic workload seed.
  int64_t stream_rows = 128; ///< Ambient rows receiving updates.
  /// Retry budget for BUSY open replies (each retry honors the server's
  /// retry-after hint).
  int64_t busy_retries = 20;
};

struct SelfcheckReport {
  int64_t updates_sent = 0;        ///< UPDATE requests issued.
  int64_t entries_sent = 0;        ///< Individual (row, col) cells.
  int64_t busy_retries = 0;        ///< BUSY replies absorbed on open.
  bool bitwise_equal = false;
  int64_t mismatched_cells = 0;    ///< 0 when bitwise_equal.
  std::string sketch_name;         ///< Resolved server-side draw name.
};

/// Clamps a server retry-after hint to the sleep actually taken between
/// BUSY open retries: [0.01, 0.25] seconds. The lower bound is the fix for
/// a hot-spin bug — a server advertising retry_after_seconds = 0 (or a
/// negative/NaN value from a buggy peer) used to turn the retry loop into
/// a busy wait that hammered the listener with up to `busy_retries`
/// back-to-back opens. Non-finite hints get the minimum delay.
double BusyRetryDelay(double retry_after_seconds);

/// Runs the workload through `client`. Transport errors and non-BUSY
/// server errors surface as a Status; a parity violation is NOT an error —
/// it is reported (bitwise_equal=false) so callers can print diagnostics.
[[nodiscard]] Result<SelfcheckReport> RunSelfcheck(
    ServiceClient* client, const SelfcheckOptions& options,
    double timeout_seconds);

}  // namespace sose::sosed

#endif  // SOSE_SOSED_SELFCHECK_H_
