#include "sosed/server.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "apps/regression.h"
#include "core/csv.h"
#include "core/fault.h"
#include "core/json_io.h"
#include "core/matrix.h"
#include "core/metrics/metrics.h"
#include "core/vector_ops.h"
#include "ose/distortion.h"

namespace sose::sosed {

namespace {

/// Best-effort verb extraction from an unparseable request, so the err
/// reply still names what the client was attempting.
Verb GuessVerb(const std::string& line) {
  Result<std::vector<std::string>> cells = ParseCsvRecord(line);
  if (!cells.ok() || cells.value().empty()) return Verb::kInvalid;
  return VerbFromName(cells.value()[0]);
}

/// Deterministic chaos: drops one whole accept round when armed, so tests
/// can prove a missed accept is retried on the next readiness round.
Status InjectedAcceptFault() {
  SOSE_FAULT_POINT("sosed/accept-fail");
  return Status::OK();
}

/// Deterministic chaos: caps one flush at a 17-byte trickle when armed.
/// The cap is a trickle, not a stall, so even `@every` plans make
/// progress — CI runs full workloads under it and still demands bitwise
/// correctness.
Status InjectedSlowClientFault() {
  SOSE_FAULT_POINT("sosed/slow-client");
  return Status::OK();
}

constexpr int64_t kTrickleBytes = 17;

}  // namespace

Result<std::unique_ptr<SosedServer>> SosedServer::Create(Options options) {
  if (options.unix_path.empty() && options.tcp_port < 0) {
    return Status::InvalidArgument(
        "sosed: configure a unix_path and/or a tcp_port listener");
  }
  if (options.max_pending_bytes <= 0) {
    return Status::InvalidArgument(
        "sosed: max_pending_bytes must be positive");
  }
  std::unique_ptr<SosedServer> server(new SosedServer(std::move(options)));
  if (!server->options_.unix_path.empty()) {
    SOSE_ASSIGN_OR_RETURN(server->unix_,
                          net::Listener::ListenUnix(server->options_.unix_path));
  }
  if (server->options_.tcp_port >= 0) {
    SOSE_ASSIGN_OR_RETURN(server->tcp_,
                          net::Listener::ListenTcp(server->options_.tcp_port));
  }
  return server;
}

Status SosedServer::PollOnce(double timeout_seconds) {
  std::vector<net::PollEntry> entries;
  std::vector<int64_t> conn_ids;
  if (unix_.fd() >= 0) entries.push_back({unix_.fd(), true, false});
  if (tcp_.fd() >= 0) entries.push_back({tcp_.fd(), true, false});
  for (auto& [id, conn] : connections_) {
    entries.push_back({conn.socket.fd(), !conn.paused && !conn.closing,
                       !conn.out.empty()});
    conn_ids.push_back(id);
  }
  SOSE_ASSIGN_OR_RETURN(const std::vector<net::PollReady> ready,
                        net::PollFds(entries, timeout_seconds));
  size_t idx = 0;
  if (unix_.fd() >= 0) {
    if (ready[idx].readable) SOSE_RETURN_IF_ERROR(AcceptPending(&unix_));
    ++idx;
  }
  if (tcp_.fd() >= 0) {
    if (ready[idx].readable) SOSE_RETURN_IF_ERROR(AcceptPending(&tcp_));
    ++idx;
  }
  std::vector<int64_t> dead;
  for (size_t i = 0; i < conn_ids.size(); ++i, ++idx) {
    auto it = connections_.find(conn_ids[i]);
    if (it == connections_.end()) continue;
    Connection* conn = &it->second;
    bool alive = !ready[idx].error;
    if (alive && ready[idx].readable) alive = ServiceReadable(conn);
    // Opportunistic flush: replies produced this round usually fit the
    // send buffer, so don't wait a poll round to ship them.
    if (alive && !conn->out.empty()) alive = FlushWritable(conn);
    if (alive && conn->closing && conn->out.empty()) alive = false;
    if (!alive) dead.push_back(conn_ids[i]);
  }
  for (int64_t id : dead) DropConnection(id);
  PublishGauges();
  return Status::OK();
}

Status SosedServer::Run() {
  while (!shutdown_) {
    SOSE_RETURN_IF_ERROR(PollOnce(0.25));
  }
  // Bounded drain so the shutdown reply (and anything queued before it)
  // reaches clients that are still reading.
  for (int round = 0; round < 200; ++round) {
    bool pending = false;
    for (const auto& [id, conn] : connections_) {
      if (!conn.out.empty()) pending = true;
    }
    if (!pending) break;
    SOSE_RETURN_IF_ERROR(PollOnce(0.01));
  }
  return Status::OK();
}

Status SosedServer::AcceptPending(net::Listener* listener) {
  while (true) {
    const Status chaos = InjectedAcceptFault();
    if (!chaos.ok()) {
      // The queued connection stays pending in the kernel; the next
      // readiness round retries the accept.
      ++total_accept_faults_;
      SOSE_COUNTER_INC("sosed.accept.faults");
      return Status::OK();
    }
    SOSE_ASSIGN_OR_RETURN(std::optional<net::Socket> accepted,
                          listener->Accept());
    if (!accepted.has_value()) return Status::OK();
    Connection conn;
    conn.id = next_conn_id_++;
    conn.socket = std::move(*accepted);
    conn.out = EncodeGreeting();
    ++total_accepts_;
    SOSE_COUNTER_INC("sosed.accepts");
    connections_.emplace(conn.id, std::move(conn));
  }
}

bool SosedServer::ServiceReadable(Connection* conn) {
  Result<net::ReadChunk> chunk = conn->socket.ReadAvailable(&conn->in);
  if (!chunk.ok()) return false;
  for (const std::string& line : ExtractCompleteCsvRecords(&conn->in)) {
    HandleRequest(conn, line);
  }
  ApplyBackpressure(conn);
  if (chunk.value().eof) {
    // Peer finished sending: flush what we owe, then close.
    conn->closing = true;
    return !conn->out.empty();
  }
  return true;
}

bool SosedServer::FlushWritable(Connection* conn) {
  while (!conn->out.empty()) {
    const Status trickle = InjectedSlowClientFault();
    Result<int64_t> wrote =
        trickle.ok()
            ? conn->socket.WriteSome(conn->out)
            : conn->socket.WriteSome(conn->out.substr(0, kTrickleBytes));
    if (!trickle.ok()) SOSE_COUNTER_INC("sosed.chaos.slow_client");
    if (!wrote.ok()) return false;
    if (wrote.value() == 0) break;  // Send buffer full; wait for POLLOUT.
    conn->out.erase(0, static_cast<size_t>(wrote.value()));
    if (!trickle.ok()) break;  // One capped write per trickle round.
  }
  ApplyBackpressure(conn);
  return true;
}

void SosedServer::ApplyBackpressure(Connection* conn) {
  const int64_t pending = static_cast<int64_t>(conn->out.size());
  if (!conn->paused && pending > options_.max_pending_bytes) {
    conn->paused = true;
    ++total_backpressure_pauses_;
    SOSE_COUNTER_INC("sosed.backpressure.pauses");
  } else if (conn->paused && pending < options_.max_pending_bytes / 2) {
    conn->paused = false;
  }
}

void SosedServer::DropConnection(int64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  // Sessions survive their connection: they are parked (and thereby become
  // eviction candidates), not destroyed, so a reconnecting client can
  // `attach` and resume the stream.
  sessions_.DetachAllFromConnection(conn_id);
  ++total_disconnects_;
  SOSE_COUNTER_INC("sosed.disconnects");
  connections_.erase(it);
}

void SosedServer::PublishGauges() {
  SOSE_GAUGE_SET("sosed.sessions.active", sessions_.active_count());
  SOSE_GAUGE_SET("sosed.sessions.detached", sessions_.detached_count());
  SOSE_GAUGE_SET("sosed.sessions.bytes", sessions_.bytes_used());
  SOSE_GAUGE_SET("sosed.connections", connection_count());
}

void SosedServer::HandleRequest(Connection* conn, const std::string& line) {
  ++total_requests_;
  SOSE_COUNTER_INC("sosed.requests");
  Result<Request> parsed = ParseRequest(line);
  if (!parsed.ok()) {
    ++total_protocol_errors_;
    SOSE_COUNTER_INC("sosed.protocol_errors");
    conn->out += EncodeErrReply(GuessVerb(line), parsed.status());
    return;
  }
  const Request& request = parsed.value();
  switch (request.verb) {
    case Verb::kOpen:
      HandleOpen(conn, request);
      return;
    case Verb::kAttach:
      HandleAttach(conn, request);
      return;
    case Verb::kDetach:
      HandleDetach(conn, request);
      return;
    case Verb::kClose:
      HandleClose(conn, request);
      return;
    case Verb::kUpdate:
      HandleUpdate(conn, request);
      return;
    case Verb::kSketch:
      HandleSketch(conn, request);
      return;
    case Verb::kNorms:
      HandleNorms(conn, request);
      return;
    case Verb::kDistortion:
      HandleDistortion(conn, request);
      return;
    case Verb::kSolve:
      HandleSolve(conn, request);
      return;
    case Verb::kStats:
      HandleStats(conn);
      return;
    case Verb::kPing:
      conn->out += EncodeOkReply(Verb::kPing, {});
      return;
    case Verb::kShutdown:
      shutdown_ = true;
      conn->out += EncodeOkReply(Verb::kShutdown, {});
      return;
    case Verb::kInvalid:
      break;  // Unreachable: ParseRequest rejected unknown verbs above.
  }
}

void SosedServer::ReplyStatus(Connection* conn, Verb verb,
                              const Status& status) {
  if (status.code() == StatusCode::kUnavailable) {
    ++total_busy_;
    SOSE_COUNTER_INC("sosed.busy");
    conn->out += EncodeBusyReply(verb, options_.retry_after_seconds,
                                 status.message());
    return;
  }
  conn->out += EncodeErrReply(verb, status);
}

void SosedServer::HandleOpen(Connection* conn, const Request& request) {
  SOSE_SPAN("sosed.request.open");
  SketchConfig config;
  config.rows = request.target_m;
  config.cols = request.ambient_n;
  config.sparsity = request.sparsity;
  config.seed = request.seed;
  Result<Session*> session =
      sessions_.Open(request.session_id, request.family, config,
                     request.data_columns, conn->id);
  if (!session.ok()) {
    ReplyStatus(conn, Verb::kOpen, session.status());
    return;
  }
  conn->out += EncodeOkReply(
      Verb::kOpen, {request.session_id, session.value()->sketch->name()});
}

void SosedServer::HandleAttach(Connection* conn, const Request& request) {
  SOSE_SPAN("sosed.request.attach");
  Result<Session*> session = sessions_.Attach(request.session_id, conn->id);
  if (!session.ok()) {
    ReplyStatus(conn, Verb::kAttach, session.status());
    return;
  }
  conn->out += EncodeOkReply(Verb::kAttach, {request.session_id});
}

void SosedServer::HandleDetach(Connection* conn, const Request& request) {
  SOSE_SPAN("sosed.request.detach");
  const Status status = sessions_.Detach(request.session_id, conn->id);
  if (!status.ok()) {
    ReplyStatus(conn, Verb::kDetach, status);
    return;
  }
  conn->out += EncodeOkReply(Verb::kDetach, {request.session_id});
}

void SosedServer::HandleClose(Connection* conn, const Request& request) {
  SOSE_SPAN("sosed.request.close");
  const Status status = sessions_.CloseSession(request.session_id, conn->id);
  if (!status.ok()) {
    ReplyStatus(conn, Verb::kClose, status);
    return;
  }
  conn->out += EncodeOkReply(Verb::kClose, {request.session_id});
}

void SosedServer::HandleUpdate(Connection* conn, const Request& request) {
  SOSE_SPAN("sosed.request.update");
  Result<Session*> found = sessions_.Find(request.session_id, conn->id);
  if (!found.ok()) {
    ReplyStatus(conn, Verb::kUpdate, found.status());
    return;
  }
  Session* session = found.value();
  for (const UpdateEntry& entry : request.entries) {
    const Status status =
        session->accumulator->AddEntry(request.row, entry.col, entry.value);
    if (!status.ok()) {
      // Turnstile semantics make partial application recoverable: the
      // client can undo the applied prefix with negative updates.
      ReplyStatus(conn, Verb::kUpdate, status);
      return;
    }
  }
  conn->out += EncodeOkReply(
      Verb::kUpdate, {std::to_string(request.entries.size())});
}

void SosedServer::HandleSketch(Connection* conn, const Request& request) {
  SOSE_SPAN("sosed.request.sketch");
  Result<Session*> found = sessions_.Find(request.session_id, conn->id);
  if (!found.ok()) {
    ReplyStatus(conn, Verb::kSketch, found.status());
    return;
  }
  Result<Matrix> current = found.value()->accumulator->Current();
  if (!current.ok()) {
    ReplyStatus(conn, Verb::kSketch, current.status());
    return;
  }
  const Matrix& state = current.value();
  conn->out += EncodeOkReply(Verb::kSketch, {std::to_string(state.rows()),
                                             std::to_string(state.cols())});
  std::vector<double> row(static_cast<size_t>(state.cols()));
  for (int64_t i = 0; i < state.rows(); ++i) {
    for (int64_t j = 0; j < state.cols(); ++j) {
      row[static_cast<size_t>(j)] = state.At(i, j);
    }
    conn->out += EncodeSketchRowReply(i, row);
  }
  conn->out += EncodeSketchEndReply();
}

void SosedServer::HandleNorms(Connection* conn, const Request& request) {
  SOSE_SPAN("sosed.request.norms");
  Result<Session*> found = sessions_.Find(request.session_id, conn->id);
  if (!found.ok()) {
    ReplyStatus(conn, Verb::kNorms, found.status());
    return;
  }
  Result<Matrix> current = found.value()->accumulator->Current();
  if (!current.ok()) {
    ReplyStatus(conn, Verb::kNorms, current.status());
    return;
  }
  const Matrix& state = current.value();
  std::vector<std::string> payload;
  payload.reserve(1 + static_cast<size_t>(state.cols()));
  payload.push_back(std::to_string(state.cols()));
  std::vector<double> column(static_cast<size_t>(state.rows()));
  for (int64_t j = 0; j < state.cols(); ++j) {
    for (int64_t i = 0; i < state.rows(); ++i) {
      column[static_cast<size_t>(i)] = state.At(i, j);
    }
    payload.push_back(HexCell(Norm2(column)));
  }
  conn->out += EncodeOkReply(Verb::kNorms, payload);
}

void SosedServer::HandleDistortion(Connection* conn, const Request& request) {
  SOSE_SPAN("sosed.request.distortion");
  Result<Session*> found = sessions_.Find(request.session_id, conn->id);
  if (!found.ok()) {
    ReplyStatus(conn, Verb::kDistortion, found.status());
    return;
  }
  Result<Matrix> current = found.value()->accumulator->Current();
  if (!current.ok()) {
    ReplyStatus(conn, Verb::kDistortion, current.status());
    return;
  }
  Result<DistortionReport> report =
      DistortionOfSketchedIsometry(current.value());
  if (!report.ok()) {
    ReplyStatus(conn, Verb::kDistortion, report.status());
    return;
  }
  conn->out += EncodeOkReply(
      Verb::kDistortion,
      {HexCell(report.value().min_factor), HexCell(report.value().max_factor),
       HexCell(report.value().Epsilon())});
}

void SosedServer::HandleSolve(Connection* conn, const Request& request) {
  SOSE_SPAN("sosed.request.solve");
  Result<Session*> found = sessions_.Find(request.session_id, conn->id);
  if (!found.ok()) {
    ReplyStatus(conn, Verb::kSolve, found.status());
    return;
  }
  Result<Matrix> current = found.value()->accumulator->Current();
  if (!current.ok()) {
    ReplyStatus(conn, Verb::kSolve, current.status());
    return;
  }
  const Matrix& state = current.value();
  if (state.cols() < 2) {
    ReplyStatus(conn, Verb::kSolve,
                Status::FailedPrecondition(
                    "solve needs >= 2 data columns (design plus target)"));
    return;
  }
  // Sketched least squares on the streamed state: columns 0..k-2 are the
  // design, column k-1 the target.
  Matrix design(state.rows(), state.cols() - 1);
  std::vector<double> target(static_cast<size_t>(state.rows()));
  for (int64_t i = 0; i < state.rows(); ++i) {
    for (int64_t j = 0; j + 1 < state.cols(); ++j) {
      design.At(i, j) = state.At(i, j);
    }
    target[static_cast<size_t>(i)] = state.At(i, state.cols() - 1);
  }
  Result<LeastSquaresSolution> solution = SolveLeastSquares(design, target);
  if (!solution.ok()) {
    ReplyStatus(conn, Verb::kSolve, solution.status());
    return;
  }
  std::vector<std::string> payload;
  payload.reserve(2 + solution.value().x.size());
  payload.push_back(HexCell(solution.value().residual_norm));
  payload.push_back(std::to_string(solution.value().x.size()));
  for (double x : solution.value().x) payload.push_back(HexCell(x));
  conn->out += EncodeOkReply(Verb::kSolve, payload);
}

void SosedServer::HandleStats(Connection* conn) {
  SOSE_SPAN("sosed.request.stats");
  JsonObjectWriter server;
  server.AddString("format", kServiceFormat);
  server.AddInt("sessions_active", sessions_.active_count());
  server.AddInt("sessions_detached", sessions_.detached_count());
  server.AddInt("session_budget", sessions_.options().max_sessions);
  server.AddInt("bytes_used", sessions_.bytes_used());
  server.AddInt("bytes_budget", sessions_.options().max_bytes);
  server.AddInt("evictions", sessions_.evictions());
  server.AddInt("connections", connection_count());
  server.AddInt("accepts", total_accepts_);
  server.AddInt("disconnects", total_disconnects_);
  server.AddInt("requests", total_requests_);
  server.AddInt("busy", total_busy_);
  server.AddInt("protocol_errors", total_protocol_errors_);
  server.AddInt("backpressure_pauses", total_backpressure_pauses_);
  server.AddInt("accept_faults", total_accept_faults_);
  JsonObjectWriter doc;
  doc.AddObject("server", server);
  // Latency histograms (sosed.request.*.seconds with p50/p95/p99) and the
  // counter/gauge mirror; an empty object under SOSE_METRICS=OFF.
  doc.AddObject("metrics", metrics::ToJson(metrics::Snapshot()));
  conn->out += EncodeOkReply(Verb::kStats, {doc.ToInlineString()});
}

}  // namespace sose::sosed
