#ifndef SOSE_SOSED_SERVER_H_
#define SOSE_SOSED_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "core/net/net.h"
#include "core/status.h"
#include "sosed/protocol.h"
#include "sosed/session.h"

namespace sose::sosed {

/// The `sosed` streaming sketch service (docs/service.md): a
/// single-threaded, poll-driven event loop hosting per-session sketch
/// state behind the `sose-service-v1` protocol.
///
/// Concurrency model: there is none, on purpose. One thread owns every
/// socket and every session, `PollOnce` advances the whole server by one
/// readiness round, and `Run` is just a PollOnce loop — so tests can pump
/// a server and its clients deterministically from a single thread, and
/// every reply is a pure function of the request arrival order.
///
/// Backpressure: each connection carries a pending-write buffer. When it
/// exceeds `max_pending_bytes` the server stops *reading* from that
/// connection (it can no longer submit work) until the buffer drains below
/// half the limit. A slow reader therefore throttles itself, never the
/// other connections. Admission control on sessions is separate: Open
/// answers `busy` (kUnavailable) when capacity would require evicting an
/// attached session.
///
/// Fault sites (docs/robustness.md): `sosed/accept-fail` drops one accept
/// round, `sosed/slow-client` trickles flushes 17 bytes at a time, and
/// `sosed/oom-session` (in SessionManager::Open) forces the BUSY path.
class SosedServer {
 public:
  struct Options {
    /// Unix-domain listening path; empty to disable.
    std::string unix_path;
    /// TCP port on 127.0.0.1; 0 binds an ephemeral port (see tcp_port()),
    /// negative disables. At least one of the two listeners must be
    /// enabled.
    int tcp_port = -1;
    SessionManager::Options session;
    /// Per-connection pending-write high-water mark (bytes). Reads from a
    /// connection pause above it and resume below half of it.
    int64_t max_pending_bytes = 1 << 20;
    /// Retry hint carried in `busy` replies.
    double retry_after_seconds = 0.05;
  };

  [[nodiscard]] static Result<std::unique_ptr<SosedServer>> Create(
      Options options);

  SosedServer(const SosedServer&) = delete;
  SosedServer& operator=(const SosedServer&) = delete;

  /// Advances the server by one readiness round: waits up to
  /// `timeout_seconds` for activity, accepts pending connections, reads and
  /// executes complete requests, and flushes pending replies. Only
  /// server-level failures (poll/listener breakage) surface as a Status;
  /// per-connection failures close that connection.
  [[nodiscard]] Status PollOnce(double timeout_seconds);

  /// PollOnce loop until a `shutdown` request has been executed and its
  /// reply flushed (or every connection with pending output is gone).
  [[nodiscard]] Status Run();

  /// True once a `shutdown` request has been accepted.
  bool shutdown_requested() const { return shutdown_; }

  /// The bound TCP port (0 when TCP is disabled).
  int tcp_port() const { return tcp_.port(); }
  const std::string& unix_path() const { return options_.unix_path; }

  int64_t connection_count() const {
    return static_cast<int64_t>(connections_.size());
  }
  const SessionManager& sessions() const { return sessions_; }

 private:
  struct Connection {
    int64_t id = 0;
    net::Socket socket;
    std::string in;    ///< Unframed inbound bytes (torn tail included).
    std::string out;   ///< Pending reply bytes not yet taken by the kernel.
    bool paused = false;   ///< Reads paused by backpressure.
    bool closing = false;  ///< Close once `out` drains.
  };

  explicit SosedServer(Options options)
      : options_(std::move(options)), sessions_(options_.session) {}

  Status AcceptPending(net::Listener* listener);
  /// Reads, frames, and executes requests from one connection. Returns
  /// false when the connection should be dropped.
  bool ServiceReadable(Connection* conn);
  /// Flushes pending output. Returns false when the connection died.
  bool FlushWritable(Connection* conn);
  void ApplyBackpressure(Connection* conn);
  void DropConnection(int64_t conn_id);
  void PublishGauges();

  void HandleRequest(Connection* conn, const std::string& line);
  void HandleOpen(Connection* conn, const Request& request);
  void HandleAttach(Connection* conn, const Request& request);
  void HandleDetach(Connection* conn, const Request& request);
  void HandleClose(Connection* conn, const Request& request);
  void HandleUpdate(Connection* conn, const Request& request);
  void HandleSketch(Connection* conn, const Request& request);
  void HandleNorms(Connection* conn, const Request& request);
  void HandleDistortion(Connection* conn, const Request& request);
  void HandleSolve(Connection* conn, const Request& request);
  void HandleStats(Connection* conn);
  void ReplyStatus(Connection* conn, Verb verb, const Status& status);

  Options options_;
  net::Listener unix_;
  net::Listener tcp_;
  SessionManager sessions_;
  // std::map: deterministic iteration order for the poll round.
  std::map<int64_t, Connection> connections_;
  int64_t next_conn_id_ = 1;
  bool shutdown_ = false;

  // Authoritative server-block counters for STATS (the metrics registry
  // mirrors them, but STATS must work under SOSE_METRICS=OFF too).
  int64_t total_accepts_ = 0;
  int64_t total_disconnects_ = 0;
  int64_t total_requests_ = 0;
  int64_t total_busy_ = 0;
  int64_t total_protocol_errors_ = 0;
  int64_t total_backpressure_pauses_ = 0;
  int64_t total_accept_faults_ = 0;
};

}  // namespace sose::sosed

#endif  // SOSE_SOSED_SERVER_H_
