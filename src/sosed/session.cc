#include "sosed/session.h"

#include <utility>

#include "core/fault.h"

namespace sose::sosed {

namespace {

/// Fixed bookkeeping cost charged per session on top of its state matrix:
/// map node, strings, accumulator header, sketch object. Deliberately
/// coarse — the budget is an admission-control knob, not an allocator.
constexpr int64_t kSessionOverheadBytes = 4096;

Status InjectedOomFault() {
  SOSE_FAULT_POINT("sosed/oom-session");
  return Status::OK();
}

}  // namespace

Result<Session*> SessionManager::Open(const std::string& id,
                                      const std::string& family,
                                      const SketchConfig& config,
                                      int64_t data_columns, int64_t conn_id) {
  if (sessions_.count(id) != 0) {
    return Status::AlreadyExists("session id already in use: " + id);
  }
  // Build the draw first: validation errors (bad family, bad shape) must
  // not evict anything.
  SOSE_ASSIGN_OR_RETURN(std::unique_ptr<SketchingMatrix> owned,
                        CreateSketch(family, config));
  std::shared_ptr<const SketchingMatrix> sketch = std::move(owned);
  SOSE_ASSIGN_OR_RETURN(SketchAccumulator accumulator,
                        SketchAccumulator::Create(sketch, data_columns));
  const int64_t cost =
      accumulator.state().size() * static_cast<int64_t>(sizeof(double)) +
      kSessionOverheadBytes;
  const Status injected = InjectedOomFault();
  if (!injected.ok()) {
    return Status::Unavailable("session byte budget exhausted (injected): " +
                               injected.message());
  }
  if (cost > options_.max_bytes) {
    // Never admissible: a clean rejection, not a retry-later condition.
    return Status::InvalidArgument(
        "session state larger than the whole byte budget");
  }
  if (!MakeRoom(cost)) {
    return Status::Unavailable(
        "session capacity exhausted by attached sessions; retry later");
  }
  Session session;
  session.id = id;
  session.family = family;
  session.config = config;
  session.data_columns = data_columns;
  session.sketch = std::move(sketch);
  session.accumulator =
      std::make_unique<SketchAccumulator>(std::move(accumulator));
  session.bytes = cost;
  session.owner = conn_id;
  session.lru_tick = NextTick();
  bytes_used_ += cost;
  auto [it, inserted] = sessions_.emplace(id, std::move(session));
  return &it->second;
}

Result<Session*> SessionManager::Attach(const std::string& id,
                                        int64_t conn_id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("no such session: " + id);
  }
  if (it->second.attached() && it->second.owner != conn_id) {
    return Status::FailedPrecondition(
        "session is attached to another connection: " + id);
  }
  it->second.owner = conn_id;
  it->second.lru_tick = NextTick();
  return &it->second;
}

Status SessionManager::Detach(const std::string& id, int64_t conn_id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("no such session: " + id);
  }
  if (it->second.owner != conn_id) {
    return Status::FailedPrecondition(
        "session is not attached to this connection: " + id);
  }
  it->second.owner = Session::kDetached;
  it->second.lru_tick = NextTick();
  return Status::OK();
}

Status SessionManager::CloseSession(const std::string& id, int64_t conn_id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("no such session: " + id);
  }
  if (it->second.attached() && it->second.owner != conn_id) {
    return Status::FailedPrecondition(
        "session is attached to another connection: " + id);
  }
  bytes_used_ -= it->second.bytes;
  sessions_.erase(it);
  return Status::OK();
}

Result<Session*> SessionManager::Find(const std::string& id, int64_t conn_id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("no such session: " + id);
  }
  if (it->second.owner != conn_id) {
    return Status::FailedPrecondition(
        it->second.attached()
            ? "session is attached to another connection: " + id
            : "session is detached; attach it first: " + id);
  }
  it->second.lru_tick = NextTick();
  return &it->second;
}

int64_t SessionManager::DetachAllFromConnection(int64_t conn_id) {
  int64_t parked = 0;
  for (auto& [id, session] : sessions_) {
    if (session.owner == conn_id) {
      session.owner = Session::kDetached;
      session.lru_tick = NextTick();
      ++parked;
    }
  }
  return parked;
}

int64_t SessionManager::detached_count() const {
  int64_t detached = 0;
  for (const auto& [id, session] : sessions_) {
    if (!session.attached()) ++detached;
  }
  return detached;
}

bool SessionManager::MakeRoom(int64_t need_bytes) {
  while (session_count() + 1 > options_.max_sessions ||
         bytes_used_ + need_bytes > options_.max_bytes) {
    // Coldest detached session; attached ones are not candidates.
    auto victim = sessions_.end();
    for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
      if (it->second.attached()) continue;
      if (victim == sessions_.end() ||
          it->second.lru_tick < victim->second.lru_tick) {
        victim = it;
      }
    }
    if (victim == sessions_.end()) return false;
    bytes_used_ -= victim->second.bytes;
    sessions_.erase(victim);
    ++evictions_;
  }
  return true;
}

}  // namespace sose::sosed
