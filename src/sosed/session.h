#ifndef SOSE_SOSED_SESSION_H_
#define SOSE_SOSED_SESSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "sketch/accumulator.h"
#include "sketch/registry.h"
#include "sketch/sketch.h"

namespace sose::sosed {

/// One client session: a named sketch draw plus its streamed accumulator
/// state. A session is either *attached* to exactly one connection (only
/// that connection may address it) or *detached* (parked; any connection
/// may adopt it with `attach`, and the manager may evict it under memory
/// pressure — attached sessions are never evicted).
struct Session {
  std::string id;
  std::string family;
  SketchConfig config;
  int64_t data_columns = 0;
  std::shared_ptr<const SketchingMatrix> sketch;
  std::unique_ptr<SketchAccumulator> accumulator;
  /// Approximate resident cost charged against the manager's byte budget:
  /// the streamed state matrix plus a fixed per-session overhead.
  int64_t bytes = 0;
  /// Owning connection id, or kDetached.
  int64_t owner = kDetached;
  /// Monotonic LRU stamp (bumped on every touch); smallest = coldest.
  uint64_t lru_tick = 0;

  static constexpr int64_t kDetached = -1;

  bool attached() const { return owner != kDetached; }
};

/// Capacity-bounded ownership of all live sessions, with LRU eviction of
/// detached sessions and explicit admission control: when neither the
/// session-count cap nor the byte budget can be met by evicting *detached*
/// sessions, Open fails with kUnavailable (the wire-level BUSY) instead of
/// evicting anything a connection is actively using.
class SessionManager {
 public:
  struct Options {
    int64_t max_sessions = 64;           ///< Hard cap on live sessions.
    int64_t max_bytes = 64 * (1 << 20);  ///< Byte budget across sessions.
  };

  explicit SessionManager(Options options) : options_(options) {}

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Creates a session owned by `conn_id`. Fails with kAlreadyExists on an
  /// id collision, kUnavailable when admission control sheds the load (the
  /// caller should answer BUSY), and propagates registry/accumulator
  /// validation errors otherwise. Carries the `sosed/oom-session` fault
  /// site, which forces the kUnavailable path deterministically.
  [[nodiscard]] Result<Session*> Open(const std::string& id,
                                      const std::string& family,
                                      const SketchConfig& config,
                                      int64_t data_columns, int64_t conn_id);

  /// Adopts a detached session onto `conn_id`. kNotFound if no such
  /// session, kFailedPrecondition if it is attached to another connection.
  [[nodiscard]] Result<Session*> Attach(const std::string& id,
                                        int64_t conn_id);

  /// Parks a session owned by `conn_id` (making it evictable).
  [[nodiscard]] Status Detach(const std::string& id, int64_t conn_id);

  /// Frees a session owned by `conn_id`.
  [[nodiscard]] Status CloseSession(const std::string& id, int64_t conn_id);

  /// Looks up a session for a data-path verb: it must exist and be
  /// attached to `conn_id`. Touches the LRU stamp.
  [[nodiscard]] Result<Session*> Find(const std::string& id, int64_t conn_id);

  /// Detaches every session owned by `conn_id` (connection teardown);
  /// returns how many were parked.
  int64_t DetachAllFromConnection(int64_t conn_id);

  int64_t session_count() const { return static_cast<int64_t>(sessions_.size()); }
  int64_t detached_count() const;
  int64_t active_count() const { return session_count() - detached_count(); }
  int64_t bytes_used() const { return bytes_used_; }
  int64_t evictions() const { return evictions_; }
  const Options& options() const { return options_; }

 private:
  /// Evicts coldest detached sessions until admitting `need_bytes` plus one
  /// more session fits both budgets. Returns false if impossible without
  /// touching an attached session.
  bool MakeRoom(int64_t need_bytes);

  uint64_t NextTick() { return ++tick_; }

  Options options_;
  // std::map keeps iteration deterministic (error paths and tests).
  std::map<std::string, Session> sessions_;
  int64_t bytes_used_ = 0;
  int64_t evictions_ = 0;
  uint64_t tick_ = 0;
};

}  // namespace sose::sosed

#endif  // SOSE_SOSED_SESSION_H_
