// sose_cli: client and test driver for the sosed streaming sketch service
// (docs/service.md).
//
// Usage (pick a transport, then a command):
//   sose_cli --unix=/tmp/sosed.sock --cmd=ping
//   sose_cli --port=4321 --cmd=stats
//   sose_cli --unix=... --cmd=selfcheck --family=osnap --n=512 --m=64
//            [--s=4 --k=6 --seed=42 --rows=256]
//   sose_cli --unix=... --cmd=shutdown
//
// `selfcheck` streams a deterministic turnstile workload and exits 0 only
// if the server's streamed sketch is BITWISE identical to a local batch
// ApplySparse of the same data — the service's core guarantee.

#include <cstdio>
#include <string>

#include "core/flags.h"
#include "sosed/client.h"
#include "sosed/selfcheck.h"

namespace {

int Fail(const sose::Status& status) {
  std::fprintf(stderr, "sose_cli: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

// Seed state enters through --seed/--data-seed flags, so runs are replayable
// from the command line alone.
int main(int argc, char** argv) {  // sose-lint: allow(seed-purity)
  sose::FlagParser flags(argc, argv);
  const std::string unix_path = flags.GetString("unix", "");
  const int port = static_cast<int>(flags.GetInt("port", -1));
  const std::string cmd = flags.GetString("cmd", "ping");
  const double timeout = flags.GetDouble("timeout", 10.0);

  if (unix_path.empty() && port < 0) {
    std::fprintf(stderr, "sose_cli: pass --unix=<path> or --port=<port>\n");
    return 2;
  }
  auto connected =
      unix_path.empty()
          ? sose::sosed::ServiceClient::ConnectTcp("127.0.0.1", port, timeout)
          : sose::sosed::ServiceClient::ConnectUnix(unix_path, timeout);
  if (!connected.ok()) return Fail(connected.status());
  sose::sosed::ServiceClient client = std::move(connected).value();

  if (cmd == "ping") {
    auto reply = client.Ping(timeout);
    if (!reply.ok()) return Fail(reply.status());
    if (reply.value().kind != sose::sosed::Reply::Kind::kOk) {
      std::fprintf(stderr, "sose_cli: ping rejected\n");
      return 1;
    }
    std::printf("pong\n");
    return 0;
  }
  if (cmd == "stats") {
    auto stats = client.Stats(timeout);
    if (!stats.ok()) return Fail(stats.status());
    std::printf("%s\n", stats.value().c_str());
    return 0;
  }
  if (cmd == "shutdown") {
    auto reply = client.ShutdownServer(timeout);
    if (!reply.ok()) return Fail(reply.status());
    std::printf("shutdown acknowledged\n");
    return 0;
  }
  if (cmd == "selfcheck") {
    sose::sosed::SelfcheckOptions options;
    options.session_id = flags.GetString("sid", "selfcheck");
    options.family = flags.GetString("family", "countsketch");
    options.ambient_n = flags.GetInt("n", 256);
    options.target_m = flags.GetInt("m", 64);
    options.sparsity = flags.GetInt("s", 4);
    options.data_columns = flags.GetInt("k", 6);
    options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    options.data_seed = static_cast<uint64_t>(flags.GetInt("data-seed", 7));
    options.stream_rows = flags.GetInt("rows", 128);
    auto report = sose::sosed::RunSelfcheck(&client, options, timeout);
    if (!report.ok()) return Fail(report.status());
    std::printf(
        "selfcheck %s: family=%s sketch=%s updates=%lld entries=%lld "
        "busy_retries=%lld mismatched_cells=%lld\n",
        report.value().bitwise_equal ? "PASS" : "FAIL",
        options.family.c_str(), report.value().sketch_name.c_str(),
        static_cast<long long>(report.value().updates_sent),
        static_cast<long long>(report.value().entries_sent),
        static_cast<long long>(report.value().busy_retries),
        static_cast<long long>(report.value().mismatched_cells));
    return report.value().bitwise_equal ? 0 : 1;
  }
  std::fprintf(stderr,
               "sose_cli: unknown --cmd=%s (ping|stats|selfcheck|shutdown)\n",
               cmd.c_str());
  return 2;
}
