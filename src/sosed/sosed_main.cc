// sosed: the streaming sketch service daemon (docs/service.md).
//
// Usage:
//   sosed --unix=/tmp/sosed.sock            Unix-domain listener
//   sosed --port=0                          TCP listener (0 = ephemeral;
//                                           the bound port is printed)
//   sosed --chaos=sosed/slow-client@every   arm deterministic fault sites
//
// The daemon prints one `ready` line (CSV: ready,<unix_path>,<tcp_port>)
// once listening, then serves until a `shutdown` request.

#include <cstdio>
#include <memory>
#include <string>

#include "core/fault.h"
#include "core/flags.h"
#include "sosed/server.h"

// Sketch seeds arrive on the wire with each `open` request, so every
// session's draw is replayable from the client's arguments.
int main(int argc, char** argv) {  // sose-lint: allow(seed-purity)
  sose::FlagParser flags(argc, argv);
  sose::sosed::SosedServer::Options options;
  options.unix_path = flags.GetString("unix", "");
  options.tcp_port = static_cast<int>(flags.GetInt("port", -1));
  // Range-checked parsing: a bare GetInt/GetDouble would accept 0 or
  // negative values that the server loop never validates again — a zero
  // retry-after, for instance, turns every well-behaved client's BUSY
  // retry loop into a hot spin. Out-of-range input usage-exits here.
  options.session.max_sessions =
      flags.GetIntInRange("max-sessions", 64, 1, 1 << 20);
  options.session.max_bytes =
      flags.GetIntInRange("max-bytes", 64 * (1 << 20), 1, int64_t{1} << 40);
  options.max_pending_bytes =
      flags.GetIntInRange("max-pending-bytes", 1 << 20, 1, int64_t{1} << 40);
  options.retry_after_seconds =
      flags.GetDoubleInRange("retry-after", 0.05, 0.001, 60.0);

  // `--chaos=site@N,site@every` arms the sosed/* fault sites for the whole
  // serve loop (docs/robustness.md). The service must stay protocol-correct
  // under every armed site — that is what the CI service-smoke job pins.
  std::unique_ptr<sose::ScopedFaultInjection> chaos;
  const std::string chaos_spec = flags.GetString("chaos", "");
  if (!chaos_spec.empty()) {
    auto plan = sose::ParseFaultPlan(chaos_spec);
    plan.status().CheckOK();
    chaos = std::make_unique<sose::ScopedFaultInjection>(
        std::move(plan).value());
  }

  auto server = sose::sosed::SosedServer::Create(options);
  if (!server.ok()) {
    std::fprintf(stderr, "sosed: %s\n", server.status().ToString().c_str());
    return 1;
  }
  std::printf("ready,%s,%d\n", server.value()->unix_path().c_str(),
              server.value()->tcp_port());
  std::fflush(stdout);
  const sose::Status status = server.value()->Run();
  if (!status.ok()) {
    std::fprintf(stderr, "sosed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
