#include "workload/generators.h"

#include <cmath>

namespace sose {

Matrix RandomDenseMatrix(int64_t rows, int64_t cols, Rng* rng) {
  SOSE_CHECK(rng != nullptr);
  Matrix out(rows, cols);
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) out.At(i, j) = rng->Gaussian();
  }
  return out;
}

Result<CscMatrix> RandomSparseMatrix(int64_t rows, int64_t cols,
                                     int64_t nnz_per_col, Rng* rng) {
  if (nnz_per_col <= 0 || nnz_per_col > rows) {
    return Status::InvalidArgument(
        "RandomSparseMatrix: need 0 < nnz_per_col <= rows");
  }
  SOSE_CHECK(rng != nullptr);
  CooBuilder builder(rows, cols);
  builder.Reserve(cols * nnz_per_col);
  for (int64_t j = 0; j < cols; ++j) {
    for (int64_t row : rng->SampleWithoutReplacement(rows, nnz_per_col)) {
      builder.Add(row, j, rng->Gaussian());
    }
  }
  return builder.ToCsc();
}

Matrix CoherentMatrix(int64_t rows, int64_t cols, int64_t spikes,
                      double spike_magnitude, Rng* rng) {
  SOSE_CHECK(rng != nullptr);
  SOSE_CHECK(spikes <= rows);
  Matrix out(rows, cols);
  const double noise = 1.0 / std::sqrt(static_cast<double>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      out.At(i, j) = noise * rng->Gaussian();
    }
  }
  // Spike rows: one huge entry each, cycling through the columns.
  for (int64_t k = 0; k < spikes; ++k) {
    const int64_t row =
        static_cast<int64_t>(rng->UniformInt(static_cast<uint64_t>(rows)));
    out.At(row, k % cols) += spike_magnitude * rng->Rademacher();
  }
  return out;
}

Result<RegressionInstance> MakeRegressionInstance(int64_t n, int64_t d,
                                                  double noise_level,
                                                  DesignKind kind, Rng* rng) {
  if (n < d || d <= 0) {
    return Status::InvalidArgument("MakeRegressionInstance: need n >= d >= 1");
  }
  SOSE_CHECK(rng != nullptr);
  RegressionInstance instance;
  instance.noise_level = noise_level;
  instance.a = kind == DesignKind::kIncoherent
                   ? RandomDenseMatrix(n, d, rng)
                   : CoherentMatrix(n, d, /*spikes=*/d,
                                    /*spike_magnitude=*/8.0, rng);
  instance.x_true.resize(static_cast<size_t>(d));
  for (double& coefficient : instance.x_true) {
    coefficient = rng->Gaussian();
  }
  instance.b = MatVec(instance.a, instance.x_true);
  for (double& entry : instance.b) {
    entry += noise_level * rng->Gaussian();
  }
  return instance;
}

Result<Matrix> ClusteredPoints(int64_t n, int64_t dim, int64_t k,
                               double separation, Rng* rng,
                               std::vector<int64_t>* true_assignment) {
  if (k < 1 || k > n || dim < 1) {
    return Status::InvalidArgument("ClusteredPoints: need 1 <= k <= n, dim >= 1");
  }
  SOSE_CHECK(rng != nullptr);
  // Random unit directions scaled by `separation` as centers.
  Matrix centers(k, dim);
  for (int64_t c = 0; c < k; ++c) {
    double norm_sq = 0.0;
    for (int64_t j = 0; j < dim; ++j) {
      centers.At(c, j) = rng->Gaussian();
      norm_sq += centers.At(c, j) * centers.At(c, j);
    }
    const double scale = separation / std::sqrt(std::max(norm_sq, 1e-300));
    for (int64_t j = 0; j < dim; ++j) centers.At(c, j) *= scale;
  }
  Matrix points(n, dim);
  if (true_assignment != nullptr) {
    true_assignment->assign(static_cast<size_t>(n), 0);
  }
  for (int64_t i = 0; i < n; ++i) {
    const int64_t c = i % k;  // Balanced clusters.
    if (true_assignment != nullptr) {
      (*true_assignment)[static_cast<size_t>(i)] = c;
    }
    for (int64_t j = 0; j < dim; ++j) {
      points.At(i, j) = centers.At(c, j) + rng->Gaussian();
    }
  }
  return points;
}

Matrix PlantedLowRankMatrix(int64_t rows, int64_t cols, int64_t rank,
                            double noise_level, Rng* rng) {
  SOSE_CHECK(rng != nullptr);
  SOSE_CHECK(rank > 0 && rank <= std::min(rows, cols));
  const Matrix left = RandomDenseMatrix(rows, rank, rng);
  const Matrix right = RandomDenseMatrix(cols, rank, rng);
  Matrix out = MatMulTransposeB(left, right);
  out.Scale(1.0 / std::sqrt(static_cast<double>(rank)));
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      out.At(i, j) += noise_level * rng->Gaussian();
    }
  }
  return out;
}

}  // namespace sose
