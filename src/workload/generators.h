#ifndef SOSE_WORKLOAD_GENERATORS_H_
#define SOSE_WORKLOAD_GENERATORS_H_

#include <cstdint>

#include "core/matrix.h"
#include "core/random.h"
#include "core/sparse.h"
#include "core/status.h"

namespace sose {

/// Dense matrix of i.i.d. standard Gaussians.
Matrix RandomDenseMatrix(int64_t rows, int64_t cols, Rng* rng);

/// Column-sparse random matrix: each column holds `nnz_per_col` Gaussian
/// entries at distinct random rows. Requires nnz_per_col <= rows.
[[nodiscard]] Result<CscMatrix> RandomSparseMatrix(int64_t rows, int64_t cols,
                                                   int64_t nnz_per_col, Rng* rng);

/// A "coherent" tall matrix: mostly tiny Gaussian noise plus `spikes` rows
/// of large magnitude concentrated on single coordinates, giving the column
/// space high leverage scores. Row-sampling-style sketches degrade on these;
/// hash-based sketches do not — the workload contrast the paper's
/// introduction motivates.
Matrix CoherentMatrix(int64_t rows, int64_t cols, int64_t spikes,
                      double spike_magnitude, Rng* rng);

/// A planted least-squares instance b = A x* + noise.
struct RegressionInstance {
  Matrix a;                     ///< n x d design matrix.
  std::vector<double> b;        ///< Right-hand side.
  std::vector<double> x_true;   ///< The planted coefficient vector.
  double noise_level = 0.0;     ///< Stddev of the added Gaussian noise.
};

/// Kinds of design matrix for regression workloads.
enum class DesignKind {
  kIncoherent,  ///< i.i.d. Gaussian design.
  kCoherent,    ///< Spiky high-leverage design (CoherentMatrix).
};

/// Generates a planted regression instance with n rows and d columns.
/// Requires n >= d.
[[nodiscard]] Result<RegressionInstance> MakeRegressionInstance(int64_t n, int64_t d,
                                                                double noise_level,
                                                                DesignKind kind, Rng* rng);

/// Well-separated Gaussian clusters: n points in `dim` dimensions around k
/// centers at pairwise distance ~`separation`, unit within-cluster noise.
/// `true_assignment` (optional) receives the planted cluster of each point.
/// Requires 1 <= k <= n.
[[nodiscard]] Result<Matrix> ClusteredPoints(int64_t n, int64_t dim, int64_t k,
                                             double separation, Rng* rng,
                                             std::vector<int64_t>* true_assignment = nullptr);

/// A matrix with a planted low-rank structure: A = L Rᵀ + noise, with
/// L (rows x rank), R (cols x rank). The spectrum has a sharp knee at
/// `rank`, so the quality of sketched rank-k approximation is measurable.
Matrix PlantedLowRankMatrix(int64_t rows, int64_t cols, int64_t rank,
                            double noise_level, Rng* rng);

}  // namespace sose

#endif  // SOSE_WORKLOAD_GENERATORS_H_
