#include "apps/cca.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/random.h"
#include "sketch/count_sketch.h"
#include "sketch/gaussian.h"
#include "workload/generators.h"

namespace sose {
namespace {

TEST(ExactCcaTest, Validation) {
  Rng rng(1);
  const Matrix x = RandomDenseMatrix(10, 2, &rng);
  const Matrix y = RandomDenseMatrix(12, 2, &rng);
  EXPECT_FALSE(ExactCca(x, y).ok());  // Row mismatch.
}

TEST(ExactCcaTest, IdenticalViewsHaveUnitCorrelations) {
  Rng rng(2);
  const Matrix x = RandomDenseMatrix(30, 3, &rng);
  auto correlations = ExactCca(x, x);
  ASSERT_TRUE(correlations.ok());
  ASSERT_EQ(correlations.value().size(), 3u);
  for (double rho : correlations.value()) {
    EXPECT_NEAR(rho, 1.0, 1e-10);
  }
}

TEST(ExactCcaTest, OrthogonalViewsHaveZeroCorrelations) {
  // X lives on coordinates 0..2, Y on coordinates 3..5.
  Matrix x(12, 2);
  Matrix y(12, 2);
  Rng rng(3);
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 2; ++j) x.At(i, j) = rng.Gaussian();
  }
  for (int64_t i = 3; i < 6; ++i) {
    for (int64_t j = 0; j < 2; ++j) y.At(i, j) = rng.Gaussian();
  }
  auto correlations = ExactCca(x, y);
  ASSERT_TRUE(correlations.ok());
  for (double rho : correlations.value()) {
    EXPECT_NEAR(rho, 0.0, 1e-10);
  }
}

TEST(ExactCcaTest, SharedDirectionGivesOneLargeCorrelation) {
  Rng rng(4);
  const Matrix base = RandomDenseMatrix(40, 1, &rng);
  Matrix x(40, 2);
  Matrix y(40, 2);
  for (int64_t i = 0; i < 40; ++i) {
    x.At(i, 0) = base.At(i, 0);
    y.At(i, 0) = base.At(i, 0);
    x.At(i, 1) = rng.Gaussian();
    y.At(i, 1) = rng.Gaussian();
  }
  auto correlations = ExactCca(x, y);
  ASSERT_TRUE(correlations.ok());
  EXPECT_NEAR(correlations.value()[0], 1.0, 1e-9);
  EXPECT_LT(correlations.value()[1], 0.7);
}

TEST(ExactCcaTest, ValuesSortedDescendingInUnitInterval) {
  Rng rng(5);
  const Matrix x = RandomDenseMatrix(50, 4, &rng);
  const Matrix y = RandomDenseMatrix(50, 3, &rng);
  auto correlations = ExactCca(x, y);
  ASSERT_TRUE(correlations.ok());
  ASSERT_EQ(correlations.value().size(), 3u);
  for (size_t i = 0; i < correlations.value().size(); ++i) {
    EXPECT_GE(correlations.value()[i], 0.0);
    EXPECT_LE(correlations.value()[i], 1.0);
    if (i > 0) {
      EXPECT_LE(correlations.value()[i], correlations.value()[i - 1] + 1e-12);
    }
  }
}

TEST(SketchedCcaTest, Validation) {
  Rng rng(6);
  const Matrix x = RandomDenseMatrix(40, 2, &rng);
  const Matrix y = RandomDenseMatrix(40, 2, &rng);
  auto sketch = GaussianSketch::Create(20, 64, 1);
  ASSERT_TRUE(sketch.ok());
  EXPECT_FALSE(SketchedCca(sketch.value(), x, y).ok());
}

TEST(SketchedCcaTest, PreservesCorrelationsWithGoodSketch) {
  Rng rng(7);
  const int64_t n = 512;
  // Two views sharing a planted common signal.
  const Matrix common = RandomDenseMatrix(n, 2, &rng);
  Matrix x(n, 3);
  Matrix y(n, 3);
  for (int64_t i = 0; i < n; ++i) {
    x.At(i, 0) = common.At(i, 0);
    y.At(i, 0) = common.At(i, 0) + 0.3 * rng.Gaussian();
    x.At(i, 1) = common.At(i, 1);
    y.At(i, 1) = rng.Gaussian();
    x.At(i, 2) = rng.Gaussian();
    y.At(i, 2) = rng.Gaussian();
  }
  auto exact = ExactCca(x, y);
  ASSERT_TRUE(exact.ok());
  auto sketch = GaussianSketch::Create(256, n, 9);
  ASSERT_TRUE(sketch.ok());
  auto sketched = SketchedCca(sketch.value(), x, y);
  ASSERT_TRUE(sketched.ok());
  EXPECT_LT(MaxCorrelationError(exact.value(), sketched.value()), 0.15);
}

TEST(SketchedCcaTest, CountSketchPreservesTopCorrelation) {
  Rng rng(8);
  const int64_t n = 1024;
  const Matrix common = RandomDenseMatrix(n, 1, &rng);
  Matrix x(n, 2);
  Matrix y(n, 2);
  for (int64_t i = 0; i < n; ++i) {
    x.At(i, 0) = common.At(i, 0);
    y.At(i, 0) = common.At(i, 0);
    x.At(i, 1) = rng.Gaussian();
    y.At(i, 1) = rng.Gaussian();
  }
  auto sketch = CountSketch::Create(512, n, 11);
  ASSERT_TRUE(sketch.ok());
  auto sketched = SketchedCca(sketch.value(), x, y);
  ASSERT_TRUE(sketched.ok());
  EXPECT_GT(sketched.value()[0], 0.9);
}

TEST(MaxCorrelationErrorTest, Basics) {
  EXPECT_EQ(MaxCorrelationError({0.5, 0.2}, {0.5, 0.2}), 0.0);
  EXPECT_NEAR(MaxCorrelationError({0.9, 0.1}, {0.8, 0.3}), 0.2, 1e-12);
}

}  // namespace
}  // namespace sose
