#include "apps/iterative.h"

#include <gtest/gtest.h>

#include <cmath>

#include "apps/regression.h"
#include "core/random.h"
#include "core/vector_ops.h"
#include "sketch/count_sketch.h"
#include "sketch/gaussian.h"
#include "workload/generators.h"

namespace sose {
namespace {

// An ill-conditioned regression instance: columns with geometrically
// decaying scales.
RegressionInstance IllConditionedInstance(int64_t n, int64_t d,
                                          double decay, Rng* rng) {
  RegressionInstance instance =
      MakeRegressionInstance(n, d, 0.5, DesignKind::kIncoherent, rng)
          .ValueOrDie();
  double scale = 1.0;
  for (int64_t j = 0; j < d; ++j) {
    for (int64_t i = 0; i < n; ++i) instance.a.At(i, j) *= scale;
    scale *= decay;
  }
  instance.b = MatVec(instance.a, instance.x_true);
  Rng noise(99);
  for (double& v : instance.b) v += 0.5 * noise.Gaussian();
  return instance;
}

TEST(CglsTest, Validation) {
  Matrix a(4, 2);
  CglsOptions options;
  EXPECT_FALSE(SolveCgls(a, {1, 2, 3}, options).ok());  // Wrong b length.
  options.max_iterations = 0;
  EXPECT_FALSE(SolveCgls(a, {1, 2, 3, 4}, options).ok());
}

TEST(CglsTest, SolvesWellConditionedSystem) {
  Rng rng(1);
  auto instance =
      MakeRegressionInstance(100, 5, 0.3, DesignKind::kIncoherent, &rng);
  ASSERT_TRUE(instance.ok());
  CglsOptions options;
  auto solution = SolveCgls(instance.value().a, instance.value().b, options);
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(solution.value().converged);
  auto exact = SolveLeastSquares(instance.value().a, instance.value().b);
  ASSERT_TRUE(exact.ok());
  for (size_t j = 0; j < 5; ++j) {
    EXPECT_NEAR(solution.value().x[j], exact.value().x[j], 1e-6);
  }
}

TEST(CglsTest, ZeroRhsGivesZeroSolution) {
  Rng rng(2);
  const Matrix a = RandomDenseMatrix(20, 3, &rng);
  CglsOptions options;
  auto solution = SolveCgls(a, std::vector<double>(20, 0.0), options);
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(solution.value().converged);
  EXPECT_EQ(solution.value().iterations, 0);
  for (double v : solution.value().x) EXPECT_EQ(v, 0.0);
}

TEST(CglsTest, IterationsGrowWithConditionNumber) {
  Rng rng(3);
  RegressionInstance mild = IllConditionedInstance(200, 8, 0.8, &rng);
  RegressionInstance severe = IllConditionedInstance(200, 8, 0.2, &rng);
  CglsOptions options;
  options.tolerance = 1e-8;
  auto mild_solution = SolveCgls(mild.a, mild.b, options);
  auto severe_solution = SolveCgls(severe.a, severe.b, options);
  ASSERT_TRUE(mild_solution.ok());
  ASSERT_TRUE(severe_solution.ok());
  EXPECT_GT(severe_solution.value().iterations,
            mild_solution.value().iterations);
}

TEST(PreconditionedCglsTest, Validation) {
  Rng rng(4);
  const Matrix a = RandomDenseMatrix(50, 4, &rng);
  auto sketch = GaussianSketch::Create(20, 80, 1);  // Ambient mismatch.
  ASSERT_TRUE(sketch.ok());
  CglsOptions options;
  EXPECT_FALSE(SolveSketchPreconditionedCgls(sketch.value(), a,
                                             std::vector<double>(50, 1.0),
                                             options)
                   .ok());
}

TEST(PreconditionedCglsTest, RankDeficientSketchReported) {
  Rng rng(5);
  const Matrix a = RandomDenseMatrix(50, 4, &rng);
  auto sketch = GaussianSketch::Create(2, 50, 3);  // m < d.
  ASSERT_TRUE(sketch.ok());
  CglsOptions options;
  EXPECT_FALSE(SolveSketchPreconditionedCgls(sketch.value(), a,
                                             std::vector<double>(50, 1.0),
                                             options)
                   .ok());
}

TEST(PreconditionedCglsTest, MatchesExactSolution) {
  Rng rng(6);
  RegressionInstance instance = IllConditionedInstance(300, 6, 0.3, &rng);
  auto sketch = GaussianSketch::Create(60, 300, 7);
  ASSERT_TRUE(sketch.ok());
  CglsOptions options;
  options.tolerance = 1e-10;
  auto solution =
      SolveSketchPreconditionedCgls(sketch.value(), instance.a, instance.b,
                                    options);
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(solution.value().converged);
  auto exact = SolveLeastSquares(instance.a, instance.b);
  ASSERT_TRUE(exact.ok());
  for (size_t j = 0; j < 6; ++j) {
    EXPECT_NEAR(solution.value().x[j], exact.value().x[j],
                1e-5 * (1.0 + std::fabs(exact.value().x[j])));
  }
}

TEST(PreconditionedCglsTest, SlashesIterationsOnIllConditionedProblems) {
  Rng rng(7);
  RegressionInstance instance = IllConditionedInstance(400, 8, 0.15, &rng);
  CglsOptions options;
  options.tolerance = 1e-8;
  auto plain = SolveCgls(instance.a, instance.b, options);
  ASSERT_TRUE(plain.ok());
  auto sketch = GaussianSketch::Create(80, 400, 9);
  ASSERT_TRUE(sketch.ok());
  auto preconditioned = SolveSketchPreconditionedCgls(
      sketch.value(), instance.a, instance.b, options);
  ASSERT_TRUE(preconditioned.ok());
  EXPECT_TRUE(preconditioned.value().converged);
  EXPECT_LT(preconditioned.value().iterations,
            plain.value().iterations / 2 + 2);
  EXPECT_LE(preconditioned.value().iterations, 30);
}

TEST(PreconditionedCglsTest, CountSketchPreconditionerWorks) {
  Rng rng(8);
  RegressionInstance instance = IllConditionedInstance(500, 5, 0.2, &rng);
  auto sketch = CountSketch::Create(250, 500, 11);
  ASSERT_TRUE(sketch.ok());
  CglsOptions options;
  options.tolerance = 1e-8;
  auto solution = SolveSketchPreconditionedCgls(sketch.value(), instance.a,
                                                instance.b, options);
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(solution.value().converged);
  EXPECT_LE(solution.value().iterations, 40);
  EXPECT_LT(solution.value().relative_residual, 1e-6);
}

}  // namespace
}  // namespace sose
