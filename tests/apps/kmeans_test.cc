#include "apps/kmeans.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/random.h"
#include "sketch/gaussian.h"
#include "sketch/srht.h"
#include "workload/generators.h"

namespace sose {
namespace {

TEST(LloydKMeansTest, Validation) {
  Matrix points(5, 2);
  KMeansOptions options;
  options.k = 0;
  EXPECT_FALSE(LloydKMeans(points, options).ok());
  options.k = 6;
  EXPECT_FALSE(LloydKMeans(points, options).ok());
  options.k = 2;
  options.max_iterations = 0;
  EXPECT_FALSE(LloydKMeans(points, options).ok());
}

TEST(LloydKMeansTest, SingleClusterIsCentroid) {
  Matrix points(4, 2, {0, 0, 2, 0, 0, 2, 2, 2});
  KMeansOptions options;
  options.k = 1;
  options.seed = 1;
  auto result = LloydKMeans(points, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().centers.At(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(result.value().centers.At(0, 1), 1.0, 1e-12);
  // Cost = Σ‖p − mean‖² = 4 · 2 = 8.
  EXPECT_NEAR(result.value().cost, 8.0, 1e-12);
}

TEST(LloydKMeansTest, KEqualsNGivesZeroCost) {
  Rng rng(2);
  const Matrix points = RandomDenseMatrix(6, 3, &rng);
  KMeansOptions options;
  options.k = 6;
  options.seed = 3;
  auto result = LloydKMeans(points, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().cost, 0.0, 1e-9);
}

TEST(LloydKMeansTest, RecoversWellSeparatedClusters) {
  Rng rng(4);
  std::vector<int64_t> truth;
  auto points = ClusteredPoints(120, 8, 3, 40.0, &rng, &truth);
  ASSERT_TRUE(points.ok());
  KMeansOptions options;
  options.k = 3;
  options.seed = 5;
  auto result = LloydKMeans(points.value(), options);
  ASSERT_TRUE(result.ok());
  // Perfect recovery up to label permutation: every planted cluster maps to
  // exactly one found cluster.
  std::map<int64_t, int64_t> label_map;
  bool consistent = true;
  for (size_t i = 0; i < truth.size(); ++i) {
    auto [it, inserted] = label_map.try_emplace(
        truth[i], result.value().assignment[i]);
    if (!inserted && it->second != result.value().assignment[i]) {
      consistent = false;
    }
  }
  EXPECT_TRUE(consistent);
  EXPECT_EQ(label_map.size(), 3u);
  // Cost ≈ n · dim (unit noise): 120 · 8 = 960, very loosely.
  EXPECT_LT(result.value().cost, 2000.0);
}

TEST(LloydKMeansTest, CostDecreasesWithK) {
  Rng rng(6);
  const Matrix points = RandomDenseMatrix(60, 4, &rng);
  double previous = 1e300;
  for (int64_t k : {1, 2, 4, 8, 16}) {
    KMeansOptions options;
    options.k = k;
    options.seed = 7;
    auto result = LloydKMeans(points, options);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result.value().cost, previous * 1.05);  // Allow local-opt noise.
    previous = result.value().cost;
  }
}

TEST(KMeansCostForAssignmentTest, Validation) {
  Matrix points(4, 2);
  EXPECT_FALSE(KMeansCostForAssignment(points, {0, 1}, 2).ok());
  EXPECT_FALSE(KMeansCostForAssignment(points, {0, 1, 2, 5}, 3).ok());
}

TEST(KMeansCostForAssignmentTest, MatchesLloydCost) {
  Rng rng(8);
  const Matrix points = RandomDenseMatrix(40, 3, &rng);
  KMeansOptions options;
  options.k = 4;
  options.seed = 9;
  auto result = LloydKMeans(points, options);
  ASSERT_TRUE(result.ok());
  auto cost =
      KMeansCostForAssignment(points, result.value().assignment, 4);
  ASSERT_TRUE(cost.ok());
  // Lloyd's final cost uses the final centers which equal the centroids of
  // the final assignment up to the last update; allow small slack.
  EXPECT_NEAR(cost.value(), result.value().cost,
              0.05 * result.value().cost + 1e-9);
}

TEST(SketchedKMeansTest, Validation) {
  Rng rng(10);
  const Matrix points = RandomDenseMatrix(20, 8, &rng);
  auto sketch = GaussianSketch::Create(4, 16, 1);  // 16 != 8 features.
  ASSERT_TRUE(sketch.ok());
  KMeansOptions options;
  options.k = 2;
  EXPECT_FALSE(SketchedKMeans(sketch.value(), points, options).ok());
}

TEST(SketchedKMeansTest, NearOptimalCostOnSeparatedClusters) {
  Rng rng(11);
  const int64_t dim = 64;
  auto points = ClusteredPoints(150, dim, 3, 30.0, &rng);
  ASSERT_TRUE(points.ok());
  KMeansOptions options;
  options.k = 3;
  options.seed = 13;
  auto full = LloydKMeans(points.value(), options);
  ASSERT_TRUE(full.ok());
  auto sketch = GaussianSketch::Create(16, dim, 15);
  ASSERT_TRUE(sketch.ok());
  auto sketched = SketchedKMeans(sketch.value(), points.value(), options);
  ASSERT_TRUE(sketched.ok());
  // The induced partition's cost in the original space is near the full
  // run's cost.
  EXPECT_LE(sketched.value().cost, 1.3 * full.value().cost);
  EXPECT_EQ(sketched.value().assignment.size(), 150u);
  EXPECT_EQ(sketched.value().centers.cols(), dim);
}

TEST(SketchedKMeansTest, SrhtProjectionWorks) {
  Rng rng(12);
  const int64_t dim = 32;  // Power of two for SRHT.
  auto points = ClusteredPoints(90, dim, 3, 25.0, &rng);
  ASSERT_TRUE(points.ok());
  auto sketch = Srht::Create(8, dim, 17);
  ASSERT_TRUE(sketch.ok());
  KMeansOptions options;
  options.k = 3;
  options.seed = 19;
  auto full = LloydKMeans(points.value(), options);
  auto sketched = SketchedKMeans(sketch.value(), points.value(), options);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(sketched.ok());
  EXPECT_LE(sketched.value().cost, 1.5 * full.value().cost);
}

}  // namespace
}  // namespace sose
