#include "apps/leverage.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/random.h"
#include "sketch/count_sketch.h"
#include "sketch/gaussian.h"
#include "workload/generators.h"

namespace sose {
namespace {

TEST(ExactLeverageScoresTest, SumToRank) {
  Rng rng(1);
  const Matrix a = RandomDenseMatrix(30, 5, &rng);
  auto scores = ExactLeverageScores(a);
  ASSERT_TRUE(scores.ok());
  const double total =
      std::accumulate(scores.value().begin(), scores.value().end(), 0.0);
  EXPECT_NEAR(total, 5.0, 1e-9);
  for (double score : scores.value()) {
    EXPECT_GE(score, -1e-12);
    EXPECT_LE(score, 1.0 + 1e-12);
  }
}

TEST(ExactLeverageScoresTest, OrthonormalInputHasUniformRowNorms) {
  // For U itself an isometry, ℓ_i = ‖U_i‖² exactly.
  Matrix u(4, 2);
  u.At(0, 0) = 1.0;
  u.At(1, 1) = 1.0;
  auto scores = ExactLeverageScores(u);
  ASSERT_TRUE(scores.ok());
  EXPECT_NEAR(scores.value()[0], 1.0, 1e-12);
  EXPECT_NEAR(scores.value()[1], 1.0, 1e-12);
  EXPECT_NEAR(scores.value()[2], 0.0, 1e-12);
  EXPECT_NEAR(scores.value()[3], 0.0, 1e-12);
}

TEST(ExactLeverageScoresTest, SpikeHasMaximalLeverage) {
  Rng rng(2);
  Matrix a = RandomDenseMatrix(50, 3, &rng);
  // Make row 7 the only row touching a fresh direction: leverage 1.
  for (int64_t j = 0; j < 3; ++j) a.At(7, j) = 0.0;
  a.At(7, 0) = 100.0;
  for (int64_t i = 0; i < 50; ++i) {
    if (i != 7) a.At(i, 0) = 0.0;
  }
  auto scores = ExactLeverageScores(a);
  ASSERT_TRUE(scores.ok());
  EXPECT_NEAR(scores.value()[7], 1.0, 1e-9);
}

TEST(ApproximateLeverageScoresTest, Validation) {
  Rng rng(3);
  const Matrix a = RandomDenseMatrix(40, 4, &rng);
  auto sketch = GaussianSketch::Create(20, 40, 1);
  ASSERT_TRUE(sketch.ok());
  EXPECT_FALSE(
      ApproximateLeverageScores(sketch.value(), a, 0, 1).ok());
  auto mismatched = GaussianSketch::Create(20, 80, 1);
  ASSERT_TRUE(mismatched.ok());
  EXPECT_FALSE(
      ApproximateLeverageScores(mismatched.value(), a, 8, 1).ok());
}

TEST(ApproximateLeverageScoresTest, TracksExactScores) {
  Rng rng(4);
  const Matrix a = CoherentMatrix(300, 4, 6, 8.0, &rng);
  auto exact = ExactLeverageScores(a);
  ASSERT_TRUE(exact.ok());
  auto sketch = GaussianSketch::Create(120, 300, 5);
  ASSERT_TRUE(sketch.ok());
  auto approx = ApproximateLeverageScores(sketch.value(), a, 64, 7);
  ASSERT_TRUE(approx.ok());
  // High leverage rows must be identified as such.
  for (size_t i = 0; i < exact.value().size(); ++i) {
    if (exact.value()[i] > 0.5) {
      EXPECT_GT(approx.value()[i], 0.2) << "row " << i;
    }
  }
  // Sum is preserved within JL fluctuation.
  const double exact_sum =
      std::accumulate(exact.value().begin(), exact.value().end(), 0.0);
  const double approx_sum =
      std::accumulate(approx.value().begin(), approx.value().end(), 0.0);
  EXPECT_NEAR(approx_sum, exact_sum, 0.5 * exact_sum);
}

TEST(ApproximateLeverageScoresTest, CountSketchPipelineWorks) {
  Rng rng(6);
  const Matrix a = RandomDenseMatrix(400, 5, &rng);
  auto exact = ExactLeverageScores(a);
  ASSERT_TRUE(exact.ok());
  auto sketch = CountSketch::Create(200, 400, 9);
  ASSERT_TRUE(sketch.ok());
  auto approx = ApproximateLeverageScores(sketch.value(), a, 128, 11);
  ASSERT_TRUE(approx.ok());
  // Incoherent matrix: all scores ~ d/n; relative error should be modest.
  EXPECT_LT(LeverageScoreError(exact.value(), approx.value(), 0.005), 1.5);
}

TEST(ApproximateLeverageScoresTest, RankDeficientSketchIsReported) {
  Rng rng(7);
  const Matrix a = RandomDenseMatrix(64, 4, &rng);
  // m = 2 < d: ΠA cannot have full column rank.
  auto sketch = GaussianSketch::Create(2, 64, 13);
  ASSERT_TRUE(sketch.ok());
  auto approx = ApproximateLeverageScores(sketch.value(), a, 8, 15);
  EXPECT_FALSE(approx.ok());
}

TEST(LeverageScoreErrorTest, ZeroForIdenticalVectors) {
  std::vector<double> scores = {0.5, 0.25, 0.25};
  EXPECT_EQ(LeverageScoreError(scores, scores), 0.0);
}

TEST(LeverageScoreErrorTest, RelativeSemantics) {
  std::vector<double> exact = {0.5, 0.1};
  std::vector<double> approx = {0.55, 0.1};
  EXPECT_NEAR(LeverageScoreError(exact, approx), 0.1, 1e-12);
}

}  // namespace
}  // namespace sose
