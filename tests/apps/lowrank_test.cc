#include "apps/lowrank.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/linalg_svd.h"
#include "core/random.h"
#include "sketch/gaussian.h"
#include "workload/generators.h"

namespace sose {
namespace {

TEST(BestRankKTest, Validation) {
  Matrix a(4, 3);
  EXPECT_FALSE(BestRankK(a, 0).ok());
  EXPECT_FALSE(BestRankK(a, 4).ok());
}

TEST(BestRankKTest, FullRankIsExact) {
  Rng rng(1);
  const Matrix a = RandomDenseMatrix(6, 4, &rng);
  auto approx = BestRankK(a, 4);
  ASSERT_TRUE(approx.ok());
  EXPECT_NEAR(approx.value().error_frobenius, 0.0, 1e-8);
  EXPECT_TRUE(AlmostEqual(approx.value().approximant, a, 1e-8));
}

TEST(BestRankKTest, ErrorMatchesTailSingularValues) {
  Rng rng(2);
  const Matrix a = RandomDenseMatrix(10, 6, &rng);
  auto sigma = SingularValues(a);
  ASSERT_TRUE(sigma.ok());
  for (int64_t k = 1; k < 6; ++k) {
    auto approx = BestRankK(a, k);
    ASSERT_TRUE(approx.ok());
    double tail = 0.0;
    for (size_t i = static_cast<size_t>(k); i < 6; ++i) {
      tail += sigma.value()[i] * sigma.value()[i];
    }
    EXPECT_NEAR(approx.value().error_frobenius, std::sqrt(tail), 1e-8)
        << "k=" << k;
  }
}

TEST(BestRankKTest, WideMatrixSupported) {
  Rng rng(3);
  const Matrix a = RandomDenseMatrix(4, 9, &rng);
  auto approx = BestRankK(a, 2);
  ASSERT_TRUE(approx.ok());
  EXPECT_EQ(approx.value().approximant.rows(), 4);
  EXPECT_EQ(approx.value().approximant.cols(), 9);
  // Error is between σ_{3..} tail and the full norm.
  EXPECT_GT(approx.value().error_frobenius, 0.0);
  EXPECT_LT(approx.value().error_frobenius, a.FrobeniusNorm());
}

TEST(SketchedRankKTest, Validation) {
  Rng rng(4);
  const Matrix a = RandomDenseMatrix(20, 5, &rng);
  auto sketch = GaussianSketch::Create(10, 30, 1);  // Ambient mismatch.
  ASSERT_TRUE(sketch.ok());
  EXPECT_FALSE(SketchedRankK(sketch.value(), a, 2).ok());
}

TEST(SketchedRankKTest, RecoverNearlyLowRankMatrix) {
  Rng rng(5);
  const Matrix a = PlantedLowRankMatrix(60, 20, 3, 0.01, &rng);
  auto best = BestRankK(a, 3);
  ASSERT_TRUE(best.ok());
  auto sketch = GaussianSketch::Create(30, 60, 7);
  ASSERT_TRUE(sketch.ok());
  auto sketched = SketchedRankK(sketch.value(), a, 3);
  ASSERT_TRUE(sketched.ok());
  // Within a modest factor of optimal.
  EXPECT_LE(sketched.value().error_frobenius,
            3.0 * best.value().error_frobenius + 1e-9);
  // And a small fraction of the total energy.
  EXPECT_LT(sketched.value().error_frobenius, 0.1 * a.FrobeniusNorm());
}

TEST(SketchedRankKTest, ExactlyLowRankIsRecoveredExactly) {
  Rng rng(6);
  const Matrix a = PlantedLowRankMatrix(40, 12, 2, 0.0, &rng);
  auto sketch = GaussianSketch::Create(16, 40, 9);
  ASSERT_TRUE(sketch.ok());
  auto sketched = SketchedRankK(sketch.value(), a, 2);
  ASSERT_TRUE(sketched.ok());
  EXPECT_NEAR(sketched.value().error_frobenius, 0.0, 1e-7);
}

TEST(SketchedRankKTest, WideSketchOutputPath) {
  // m < cols(A) exercises the transpose branch.
  Rng rng(7);
  const Matrix a = PlantedLowRankMatrix(64, 24, 2, 0.0, &rng);
  auto sketch = GaussianSketch::Create(10, 64, 11);
  ASSERT_TRUE(sketch.ok());
  auto sketched = SketchedRankK(sketch.value(), a, 2);
  ASSERT_TRUE(sketched.ok());
  EXPECT_NEAR(sketched.value().error_frobenius, 0.0, 1e-7);
}

}  // namespace
}  // namespace sose
