#include "apps/matprod.h"

#include <gtest/gtest.h>

#include "core/random.h"
#include "core/stats.h"
#include "sketch/count_sketch.h"
#include "sketch/gaussian.h"
#include "workload/generators.h"

namespace sose {
namespace {

TEST(ApproxMatrixProductTest, Validation) {
  Rng rng(1);
  const Matrix a = RandomDenseMatrix(10, 3, &rng);
  const Matrix b = RandomDenseMatrix(12, 3, &rng);
  auto sketch = GaussianSketch::Create(8, 10, 1);
  ASSERT_TRUE(sketch.ok());
  EXPECT_FALSE(ApproximateMatrixProduct(sketch.value(), a, b).ok());
  auto wrong_dim = GaussianSketch::Create(8, 20, 1);
  ASSERT_TRUE(wrong_dim.ok());
  const Matrix b2 = RandomDenseMatrix(10, 3, &rng);
  EXPECT_FALSE(ApproximateMatrixProduct(wrong_dim.value(), a, b2).ok());
}

TEST(ApproxMatrixProductTest, ShapesAndExactError) {
  Rng rng(2);
  const Matrix a = RandomDenseMatrix(30, 4, &rng);
  const Matrix b = RandomDenseMatrix(30, 5, &rng);
  auto sketch = GaussianSketch::Create(20, 30, 3);
  ASSERT_TRUE(sketch.ok());
  auto result = ApproximateMatrixProduct(sketch.value(), a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().product.rows(), 4);
  EXPECT_EQ(result.value().product.cols(), 5);
  // Error field is consistent with the returned product.
  Matrix diff = MatMulTransposeA(a, b);
  diff.AddScaled(result.value().product, -1.0);
  EXPECT_NEAR(result.value().error_frobenius, diff.FrobeniusNorm(), 1e-10);
}

TEST(ApproxMatrixProductTest, ErrorShrinksWithM) {
  Rng rng(3);
  const Matrix a = RandomDenseMatrix(200, 3, &rng);
  const Matrix b = RandomDenseMatrix(200, 3, &rng);
  RunningStats small_m, large_m;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    auto small = GaussianSketch::Create(10, 200, seed);
    auto large = GaussianSketch::Create(160, 200, seed);
    ASSERT_TRUE(small.ok());
    ASSERT_TRUE(large.ok());
    auto rs = ApproximateMatrixProduct(small.value(), a, b);
    auto rl = ApproximateMatrixProduct(large.value(), a, b);
    ASSERT_TRUE(rs.ok());
    ASSERT_TRUE(rl.ok());
    small_m.Add(rs.value().relative_error);
    large_m.Add(rl.value().relative_error);
  }
  EXPECT_LT(large_m.Mean(), small_m.Mean());
  // Roughly 1/√m scaling → factor ~4 between m=10 and m=160.
  EXPECT_LT(large_m.Mean(), 0.6 * small_m.Mean());
}

TEST(ApproxMatrixProductTest, CountSketchIsUnbiased) {
  Rng rng(4);
  const Matrix a = RandomDenseMatrix(100, 2, &rng);
  const Matrix b = RandomDenseMatrix(100, 2, &rng);
  const Matrix exact = MatMulTransposeA(a, b);
  Matrix mean(2, 2);
  constexpr int kDraws = 400;
  for (uint64_t seed = 0; seed < kDraws; ++seed) {
    auto sketch = CountSketch::Create(16, 100, seed);
    ASSERT_TRUE(sketch.ok());
    auto result = ApproximateMatrixProduct(sketch.value(), a, b);
    ASSERT_TRUE(result.ok());
    mean.AddScaled(result.value().product, 1.0 / kDraws);
  }
  EXPECT_TRUE(AlmostEqual(mean, exact, 0.35 * exact.FrobeniusNorm() + 0.5));
}

TEST(ApproxMatrixProductTest, ZeroInputGivesZeroError) {
  auto sketch = GaussianSketch::Create(8, 20, 5);
  ASSERT_TRUE(sketch.ok());
  const Matrix zero_a(20, 2);
  const Matrix zero_b(20, 3);
  auto result = ApproximateMatrixProduct(sketch.value(), zero_a, zero_b);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().error_frobenius, 0.0);
  EXPECT_EQ(result.value().relative_error, 0.0);
}

}  // namespace
}  // namespace sose
