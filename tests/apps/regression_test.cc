#include "apps/regression.h"

#include <gtest/gtest.h>

#include "core/random.h"
#include "core/vector_ops.h"
#include "sketch/count_sketch.h"
#include "sketch/gaussian.h"
#include "sketch/osnap.h"
#include "workload/generators.h"

namespace sose {
namespace {

TEST(SolveLeastSquaresTest, ExactOnConsistentSystem) {
  Rng rng(1);
  auto instance =
      MakeRegressionInstance(50, 4, 0.0, DesignKind::kIncoherent, &rng);
  ASSERT_TRUE(instance.ok());
  auto solution = SolveLeastSquares(instance.value().a, instance.value().b);
  ASSERT_TRUE(solution.ok());
  EXPECT_NEAR(solution.value().residual_norm, 0.0, 1e-8);
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(solution.value().x[j], instance.value().x_true[j], 1e-8);
  }
}

TEST(SolveLeastSquaresTest, NoisyResidualIsPositive) {
  Rng rng(2);
  auto instance =
      MakeRegressionInstance(80, 5, 0.5, DesignKind::kIncoherent, &rng);
  ASSERT_TRUE(instance.ok());
  auto solution = SolveLeastSquares(instance.value().a, instance.value().b);
  ASSERT_TRUE(solution.ok());
  EXPECT_GT(solution.value().residual_norm, 0.1);
}

TEST(SketchAndSolveTest, ShapeValidation) {
  Rng rng(3);
  auto instance =
      MakeRegressionInstance(64, 3, 0.1, DesignKind::kIncoherent, &rng);
  ASSERT_TRUE(instance.ok());
  auto sketch = GaussianSketch::Create(32, 100, 1);  // Wrong ambient dim.
  ASSERT_TRUE(sketch.ok());
  EXPECT_FALSE(
      SketchAndSolve(sketch.value(), instance.value().a, instance.value().b)
          .ok());
}

TEST(SketchAndSolveTest, GaussianSketchNearOptimal) {
  Rng rng(4);
  auto instance =
      MakeRegressionInstance(400, 5, 1.0, DesignKind::kIncoherent, &rng);
  ASSERT_TRUE(instance.ok());
  auto sketch = GaussianSketch::Create(120, 400, 7);
  ASSERT_TRUE(sketch.ok());
  auto sketched =
      SketchAndSolve(sketch.value(), instance.value().a, instance.value().b);
  ASSERT_TRUE(sketched.ok());
  auto ratio = ResidualRatio(instance.value().a, instance.value().b,
                             sketched.value().x);
  ASSERT_TRUE(ratio.ok());
  EXPECT_GE(ratio.value(), 1.0 - 1e-12);
  EXPECT_LT(ratio.value(), 1.35);
}

TEST(SketchAndSolveTest, CountSketchNearOptimalWithLargeM) {
  Rng rng(5);
  auto instance =
      MakeRegressionInstance(500, 4, 1.0, DesignKind::kIncoherent, &rng);
  ASSERT_TRUE(instance.ok());
  // Count-Sketch needs m ~ d²/ε²-ish; take a generous 300.
  auto sketch = CountSketch::Create(300, 500, 11);
  ASSERT_TRUE(sketch.ok());
  auto sketched =
      SketchAndSolve(sketch.value(), instance.value().a, instance.value().b);
  ASSERT_TRUE(sketched.ok());
  auto ratio = ResidualRatio(instance.value().a, instance.value().b,
                             sketched.value().x);
  ASSERT_TRUE(ratio.ok());
  EXPECT_LT(ratio.value(), 1.6);
}

TEST(SketchAndSolveTest, OsnapOnCoherentDesign) {
  Rng rng(6);
  auto instance =
      MakeRegressionInstance(512, 4, 1.0, DesignKind::kCoherent, &rng);
  ASSERT_TRUE(instance.ok());
  auto sketch = Osnap::Create(256, 512, 4, 13);
  ASSERT_TRUE(sketch.ok());
  auto sketched =
      SketchAndSolve(sketch.value(), instance.value().a, instance.value().b);
  ASSERT_TRUE(sketched.ok());
  auto ratio = ResidualRatio(instance.value().a, instance.value().b,
                             sketched.value().x);
  ASSERT_TRUE(ratio.ok());
  EXPECT_LT(ratio.value(), 2.0);
}

TEST(ResidualRatioTest, ExactSolutionGivesOne) {
  Rng rng(7);
  auto instance =
      MakeRegressionInstance(60, 3, 0.4, DesignKind::kIncoherent, &rng);
  ASSERT_TRUE(instance.ok());
  auto exact = SolveLeastSquares(instance.value().a, instance.value().b);
  ASSERT_TRUE(exact.ok());
  auto ratio =
      ResidualRatio(instance.value().a, instance.value().b, exact.value().x);
  ASSERT_TRUE(ratio.ok());
  EXPECT_NEAR(ratio.value(), 1.0, 1e-9);
}

TEST(ResidualRatioTest, RejectsZeroResidualInstances) {
  Rng rng(8);
  auto instance =
      MakeRegressionInstance(30, 3, 0.0, DesignKind::kIncoherent, &rng);
  ASSERT_TRUE(instance.ok());
  auto exact = SolveLeastSquares(instance.value().a, instance.value().b);
  ASSERT_TRUE(exact.ok());
  EXPECT_FALSE(ResidualRatio(instance.value().a, instance.value().b,
                             exact.value().x)
                   .ok());
}

TEST(ResidualRatioTest, WorseVectorGivesLargerRatio) {
  Rng rng(9);
  auto instance =
      MakeRegressionInstance(60, 3, 0.3, DesignKind::kIncoherent, &rng);
  ASSERT_TRUE(instance.ok());
  std::vector<double> bad(3, 100.0);
  auto ratio = ResidualRatio(instance.value().a, instance.value().b, bad);
  ASSERT_TRUE(ratio.ok());
  EXPECT_GT(ratio.value(), 10.0);
}

}  // namespace
}  // namespace sose
