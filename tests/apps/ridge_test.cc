#include "apps/ridge.h"

#include <gtest/gtest.h>

#include <cmath>

#include "apps/regression.h"
#include "core/random.h"
#include "core/vector_ops.h"
#include "sketch/count_sketch.h"
#include "sketch/gaussian.h"
#include "workload/generators.h"

namespace sose {
namespace {

TEST(RidgeTest, Validation) {
  Matrix a(4, 2);
  EXPECT_FALSE(SolveRidge(a, {1, 2, 3}, 0.1).ok());       // Wrong b length.
  EXPECT_FALSE(SolveRidge(a, {1, 2, 3, 4}, -1.0).ok());   // Negative lambda.
}

TEST(RidgeTest, ZeroLambdaMatchesLeastSquares) {
  Rng rng(1);
  auto instance =
      MakeRegressionInstance(60, 4, 0.3, DesignKind::kIncoherent, &rng);
  ASSERT_TRUE(instance.ok());
  auto ridge = SolveRidge(instance.value().a, instance.value().b, 0.0);
  auto ls = SolveLeastSquares(instance.value().a, instance.value().b);
  ASSERT_TRUE(ridge.ok());
  ASSERT_TRUE(ls.ok());
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(ridge.value()[j], ls.value().x[j], 1e-9);
  }
}

TEST(RidgeTest, SolutionSatisfiesNormalEquations) {
  Rng rng(2);
  auto instance =
      MakeRegressionInstance(80, 5, 0.5, DesignKind::kIncoherent, &rng);
  ASSERT_TRUE(instance.ok());
  const double lambda = 2.5;
  auto x = SolveRidge(instance.value().a, instance.value().b, lambda);
  ASSERT_TRUE(x.ok());
  // (AᵀA + λI) x = Aᵀ b.
  const Matrix& a = instance.value().a;
  std::vector<double> lhs =
      MatVecTransposed(a, MatVec(a, x.value()));
  Axpy(lambda, x.value(), &lhs);
  const std::vector<double> rhs = MatVecTransposed(a, instance.value().b);
  for (size_t j = 0; j < 5; ++j) {
    EXPECT_NEAR(lhs[j], rhs[j], 1e-8 * (1.0 + std::fabs(rhs[j])));
  }
}

TEST(RidgeTest, ShrinksSolutionAsLambdaGrows) {
  Rng rng(3);
  auto instance =
      MakeRegressionInstance(100, 4, 0.2, DesignKind::kIncoherent, &rng);
  ASSERT_TRUE(instance.ok());
  double previous_norm = 1e300;
  for (double lambda : {0.0, 1.0, 10.0, 100.0, 1000.0}) {
    auto x = SolveRidge(instance.value().a, instance.value().b, lambda);
    ASSERT_TRUE(x.ok());
    const double norm = Norm2(x.value());
    EXPECT_LE(norm, previous_norm + 1e-9);
    previous_norm = norm;
  }
}

TEST(RidgeTest, LambdaRegularizesRankDeficientDesign) {
  // Rank-1 design: plain least squares fails, ridge succeeds.
  Matrix a(4, 2, {1, 2, 2, 4, 3, 6, 4, 8});
  std::vector<double> b = {1, 2, 3, 4};
  EXPECT_FALSE(SolveLeastSquares(a, b).ok());
  auto ridge = SolveRidge(a, b, 0.5);
  ASSERT_TRUE(ridge.ok());
  EXPECT_TRUE(std::isfinite(ridge.value()[0]));
}

TEST(SketchedRidgeTest, Validation) {
  Rng rng(4);
  auto instance =
      MakeRegressionInstance(64, 3, 0.3, DesignKind::kIncoherent, &rng);
  ASSERT_TRUE(instance.ok());
  auto sketch = GaussianSketch::Create(32, 100, 1);
  ASSERT_TRUE(sketch.ok());
  EXPECT_FALSE(SketchAndSolveRidge(sketch.value(), instance.value().a,
                                   instance.value().b, 1.0)
                   .ok());
}

TEST(SketchedRidgeTest, NearOptimalObjective) {
  Rng rng(5);
  auto instance =
      MakeRegressionInstance(512, 5, 1.0, DesignKind::kIncoherent, &rng);
  ASSERT_TRUE(instance.ok());
  const double lambda = 4.0;
  auto exact = SolveRidge(instance.value().a, instance.value().b, lambda);
  ASSERT_TRUE(exact.ok());
  const double exact_objective = RidgeObjective(
      instance.value().a, instance.value().b, lambda, exact.value());
  for (uint64_t seed = 0; seed < 5; ++seed) {
    auto sketch = CountSketch::Create(256, 512, seed);
    ASSERT_TRUE(sketch.ok());
    auto sketched = SketchAndSolveRidge(sketch.value(), instance.value().a,
                                        instance.value().b, lambda);
    ASSERT_TRUE(sketched.ok());
    const double objective = RidgeObjective(
        instance.value().a, instance.value().b, lambda, sketched.value());
    EXPECT_GE(objective, exact_objective - 1e-9);
    EXPECT_LE(objective, 1.5 * exact_objective);
  }
}

TEST(RidgeObjectiveTest, KnownValue) {
  Matrix a = Matrix::Identity(2);
  // x = (1, 0): ‖x − b‖² + λ‖x‖² with b = (0, 0), λ = 3 → 1 + 3 = 4.
  EXPECT_DOUBLE_EQ(RidgeObjective(a, {0, 0}, 3.0, {1, 0}), 4.0);
}

}  // namespace
}  // namespace sose
