#include "bench_util.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace sose::bench {
namespace {

// These tests exercise the BENCH_<exp>.json writer against a scratch
// experiment name in the test's working directory; each test removes its
// file so reruns start clean. The name embeds the test case: ctest runs
// gtest cases as concurrent processes sharing one working directory, so a
// shared filename would let one test's cleanup race another's assertions.
class WriteBenchJsonTest : public ::testing::Test {
 protected:
  void SetUp() override { std::remove(Path().c_str()); }
  void TearDown() override { std::remove(Path().c_str()); }
  static std::string Experiment() {
    return std::string("benchutiltest_") +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
  }
  static std::string Path() { return "BENCH_" + Experiment() + ".json"; }
  static std::string Contents() {
    auto text = ReadFileToString(Path());
    return text.ok() ? text.value() : std::string();
  }
};

// S2 regression: a `--threads=0` run that *resolves* to one core used to
// record itself as the serial baseline, so the next run reported speedup
// against an auto-threaded wall time. Only an explicit --threads=1 run may
// write the baseline.
TEST_F(WriteBenchJsonTest, AutoThreadedRunNeverWritesBaseline) {
  ASSERT_TRUE(WriteBenchJsonResolved(Experiment(), /*requested_threads=*/0,
                                     /*resolved_threads=*/1,
                                     /*wall_seconds=*/2.0, /*trials=*/100)
                  .ok());
  double baseline = 0.0;
  EXPECT_FALSE(
      FindJsonNumber(Contents(), "serial_baseline_seconds", &baseline));
  double speedup = 0.0;
  EXPECT_FALSE(FindJsonNumber(Contents(), "speedup_vs_serial", &speedup));
}

TEST_F(WriteBenchJsonTest, ExplicitSerialRunWritesBaselineAndThreadedRunUsesIt) {
  ASSERT_TRUE(WriteBenchJsonResolved(Experiment(), /*requested_threads=*/1,
                                     /*resolved_threads=*/1,
                                     /*wall_seconds=*/4.0, /*trials=*/100)
                  .ok());
  double baseline = 0.0;
  ASSERT_TRUE(
      FindJsonNumber(Contents(), "serial_baseline_seconds", &baseline));
  EXPECT_EQ(baseline, 4.0);
  double baseline_trials = 0.0;
  ASSERT_TRUE(
      FindJsonNumber(Contents(), "serial_baseline_trials", &baseline_trials));
  EXPECT_EQ(baseline_trials, 100.0);

  // A threaded run with the SAME trial count inherits the baseline.
  ASSERT_TRUE(WriteBenchJsonResolved(Experiment(), /*requested_threads=*/4,
                                     /*resolved_threads=*/4,
                                     /*wall_seconds=*/1.0, /*trials=*/100)
                  .ok());
  double speedup = 0.0;
  ASSERT_TRUE(FindJsonNumber(Contents(), "speedup_vs_serial", &speedup));
  EXPECT_EQ(speedup, 4.0);
}

// S2 regression, second half: a baseline recorded under a different trial
// count is a stale artifact of another workload; it must be dropped, not
// compared against.
TEST_F(WriteBenchJsonTest, BaselineFromDifferentTrialCountIsInvalidated) {
  ASSERT_TRUE(WriteBenchJsonResolved(Experiment(), /*requested_threads=*/1,
                                     /*resolved_threads=*/1,
                                     /*wall_seconds=*/4.0, /*trials=*/100)
                  .ok());
  ASSERT_TRUE(WriteBenchJsonResolved(Experiment(), /*requested_threads=*/4,
                                     /*resolved_threads=*/4,
                                     /*wall_seconds=*/1.0, /*trials=*/200)
                  .ok());
  double value = 0.0;
  EXPECT_FALSE(FindJsonNumber(Contents(), "serial_baseline_seconds", &value));
  EXPECT_FALSE(FindJsonNumber(Contents(), "speedup_vs_serial", &value));
}

// Legacy baselines written before serial_baseline_trials existed carry no
// provenance; they are dropped rather than trusted.
TEST_F(WriteBenchJsonTest, BaselineWithoutTrialProvenanceIsDropped) {
  JsonObjectWriter legacy;
  legacy.AddString("experiment", Experiment())
      .AddDouble("serial_baseline_seconds", 9.0);
  ASSERT_TRUE(legacy.WriteToFile(Path()).ok());
  ASSERT_TRUE(WriteBenchJsonResolved(Experiment(), /*requested_threads=*/4,
                                     /*resolved_threads=*/4,
                                     /*wall_seconds=*/1.0, /*trials=*/100)
                  .ok());
  double value = 0.0;
  EXPECT_FALSE(FindJsonNumber(Contents(), "serial_baseline_seconds", &value));
}

// A multi-process run is parallel regardless of its thread count: it must
// never record the serial baseline, and its worker count is part of the
// provenance the JSON carries.
TEST_F(WriteBenchJsonTest, MultiWorkerRunNeverWritesBaselineAndRecordsWorkers) {
  ASSERT_TRUE(WriteBenchJsonResolved(Experiment(), /*requested_threads=*/1,
                                     /*resolved_threads=*/1,
                                     /*wall_seconds=*/2.0, /*trials=*/100,
                                     /*workers=*/4)
                  .ok());
  double value = 0.0;
  ASSERT_TRUE(FindJsonNumber(Contents(), "workers", &value));
  EXPECT_EQ(value, 4.0);
  EXPECT_FALSE(FindJsonNumber(Contents(), "serial_baseline_seconds", &value));

  // A true serial run records the baseline, and a later worker run uses it.
  ASSERT_TRUE(WriteBenchJsonResolved(Experiment(), /*requested_threads=*/1,
                                     /*resolved_threads=*/1,
                                     /*wall_seconds=*/4.0, /*trials=*/100)
                  .ok());
  ASSERT_TRUE(FindJsonNumber(Contents(), "workers", &value));
  EXPECT_EQ(value, 1.0);
  ASSERT_TRUE(WriteBenchJsonResolved(Experiment(), /*requested_threads=*/1,
                                     /*resolved_threads=*/1,
                                     /*wall_seconds=*/1.0, /*trials=*/100,
                                     /*workers=*/4)
                  .ok());
  ASSERT_TRUE(FindJsonNumber(Contents(), "speedup_vs_serial", &value));
  EXPECT_EQ(value, 4.0);
}

TEST_F(WriteBenchJsonTest, EmbedsMetricsBlockAndKeepsTopLevelKeysReadable) {
  metrics::ResetAll();
  SOSE_COUNTER_ADD("trial.completed", 7);
  ASSERT_TRUE(WriteBenchJsonResolved(Experiment(), /*requested_threads=*/1,
                                     /*resolved_threads=*/1,
                                     /*wall_seconds=*/2.0, /*trials=*/50)
                  .ok());
  const std::string text = Contents();
  EXPECT_NE(text.find("\"metrics\": {"), std::string::npos);
#if !defined(SOSE_METRICS_DISABLED)
  EXPECT_NE(text.find("\"trial.completed\": 7"), std::string::npos);
#endif
  // The nested block repeats no top-level semantics: the flat keys still
  // parse via the top-level-only reader.
  double value = 0.0;
  ASSERT_TRUE(FindJsonNumber(text, "wall_seconds", &value));
  EXPECT_EQ(value, 2.0);
  ASSERT_TRUE(FindJsonNumber(text, "trials", &value));
  EXPECT_EQ(value, 50.0);
  metrics::ResetAll();
}

// Every BENCH file carries the SIMD dispatch decision that produced its
// numbers: the live ISA, who selected it, and what the host offered. Two
// runs are only comparable when these match.
TEST_F(WriteBenchJsonTest, EmbedsKernelsBlockRecordingDispatchDecision) {
  ASSERT_TRUE(WriteBenchJsonResolved(Experiment(), /*requested_threads=*/1,
                                     /*resolved_threads=*/1,
                                     /*wall_seconds=*/2.0, /*trials=*/50)
                  .ok());
  const std::string text = Contents();
  EXPECT_NE(text.find("\"kernels\": {"), std::string::npos);
  EXPECT_NE(text.find("\"isa\": \"" + std::string(simd::ActiveIsaName()) +
                      "\""),
            std::string::npos);
  EXPECT_NE(text.find("\"source\": "), std::string::npos);
  // `available` always ends with the scalar fallback, whatever the host.
  EXPECT_NE(text.find("scalar\""), std::string::npos);
}

// A `--quick` run is a smoke-sized workload; its JSON must say so, so a
// dashboard (or a reviewer) never compares its numbers against a full run.
TEST_F(WriteBenchJsonTest, RecordsQuickFlagAsProvenance) {
  ASSERT_TRUE(WriteBenchJsonResolved(Experiment(), /*requested_threads=*/1,
                                     /*resolved_threads=*/1,
                                     /*wall_seconds=*/2.0, /*trials=*/5,
                                     /*workers=*/1, /*quick=*/true)
                  .ok());
  EXPECT_NE(Contents().find("\"quick\": true"), std::string::npos);
  // The default (and the explicit full run) records false.
  ASSERT_TRUE(WriteBenchJsonResolved(Experiment(), /*requested_threads=*/1,
                                     /*resolved_threads=*/1,
                                     /*wall_seconds=*/2.0, /*trials=*/5)
                  .ok());
  EXPECT_NE(Contents().find("\"quick\": false"), std::string::npos);
}

}  // namespace
}  // namespace sose::bench
