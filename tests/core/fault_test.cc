#include "core/fault.h"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>

#include "core/linalg_cholesky.h"
#include "core/linalg_qr.h"
#include "core/linalg_svd.h"
#include "core/matrix.h"

namespace sose {
namespace {

// A minimal instrumented routine, standing in for a numerical kernel.
Status Probe() {
  SOSE_FAULT_POINT("fault_test/probe");
  return Status::OK();
}

double Value() { return SOSE_FAULT_VALUE("fault_test/value", 1.5); }

TEST(FaultTest, DisabledIsNoop) {
  EXPECT_FALSE(internal_fault::g_enabled);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(Probe().ok());
    EXPECT_EQ(Value(), 1.5);
  }
}

TEST(FaultTest, FiresOnExactNthCallAndOnlyOnce) {
  FaultPlan plan;
  plan.FailCall("fault_test/probe", 3);
  ScopedFaultInjection injection(std::move(plan));
  EXPECT_TRUE(internal_fault::g_enabled);
  EXPECT_TRUE(Probe().ok());
  EXPECT_TRUE(Probe().ok());
  const Status third = Probe();
  EXPECT_EQ(third.code(), StatusCode::kNumericalError);
  // A rule fires at most once; later calls pass.
  EXPECT_TRUE(Probe().ok());
  EXPECT_EQ(injection.CallCount("fault_test/probe"), 4);
  EXPECT_EQ(injection.FiredCount(), 1);
}

TEST(FaultTest, CustomCodeAndMessage) {
  FaultPlan plan;
  plan.FailCall("fault_test/probe", 1, StatusCode::kInternal, "planned");
  ScopedFaultInjection injection(std::move(plan));
  const Status status = Probe();
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(status.message(), "planned");
}

TEST(FaultTest, ValueCorruption) {
  FaultPlan plan;
  plan.CorruptCallNaN("fault_test/value", 2).CorruptCallInf("fault_test/value", 3);
  ScopedFaultInjection injection(std::move(plan));
  EXPECT_EQ(Value(), 1.5);
  EXPECT_TRUE(std::isnan(Value()));
  EXPECT_TRUE(std::isinf(Value()));
  EXPECT_EQ(Value(), 1.5);
  EXPECT_EQ(injection.FiredCount(), 2);
}

TEST(FaultTest, StatusRulesDoNotFireAtValueSitesAndViceVersa) {
  FaultPlan plan;
  plan.FailCall("fault_test/value", 1).CorruptCallNaN("fault_test/probe", 1);
  ScopedFaultInjection injection(std::move(plan));
  EXPECT_EQ(Value(), 1.5);
  EXPECT_TRUE(Probe().ok());
  EXPECT_EQ(injection.FiredCount(), 0);
}

TEST(FaultTest, ScopesNestAndRestore) {
  FaultPlan outer_plan;
  outer_plan.FailCall("fault_test/probe", 2);
  ScopedFaultInjection outer(std::move(outer_plan));
  EXPECT_TRUE(Probe().ok());  // Outer count: 1.
  {
    // The inner scope shadows the outer one: its (empty) plan sees the
    // calls, the outer's counts freeze.
    ScopedFaultInjection inner(FaultPlan{});
    EXPECT_TRUE(Probe().ok());
    EXPECT_TRUE(Probe().ok());
    EXPECT_EQ(inner.CallCount("fault_test/probe"), 2);
  }
  EXPECT_TRUE(internal_fault::g_enabled);
  EXPECT_EQ(outer.CallCount("fault_test/probe"), 1);
  // Outer scope resumes exactly where it left off: this is its 2nd call.
  EXPECT_EQ(Probe().code(), StatusCode::kNumericalError);
}

TEST(FaultTest, FlagClearsWhenLastScopeDies) {
  {
    ScopedFaultInjection injection(FaultPlan{});
    EXPECT_TRUE(internal_fault::g_enabled);
  }
  EXPECT_FALSE(internal_fault::g_enabled);
  EXPECT_TRUE(Probe().ok());
}

// The shipped kernels expose real fault sites: a plan targeting them makes
// the factorization fail deterministically on a healthy input.
TEST(FaultTest, KernelSitesAreInstrumented) {
  Matrix spd = Matrix::Identity(3);
  spd.At(0, 1) = spd.At(1, 0) = 0.25;
  {
    ScopedFaultInjection injection(
        FaultPlan().FailCall("linalg_svd/jacobi", 1));
    EXPECT_EQ(JacobiSvd(spd).status().code(), StatusCode::kNumericalError);
  }
  {
    ScopedFaultInjection injection(
        FaultPlan().FailCall("linalg_qr/factor", 1));
    EXPECT_EQ(HouseholderQr::Factor(spd).status().code(),
              StatusCode::kNumericalError);
  }
  {
    ScopedFaultInjection injection(
        FaultPlan().FailCall("linalg_cholesky/factor", 1));
    EXPECT_EQ(Cholesky::Factor(spd).status().code(),
              StatusCode::kNumericalError);
  }
  // And with no scope alive they all succeed.
  EXPECT_TRUE(JacobiSvd(spd).ok());
  EXPECT_TRUE(HouseholderQr::Factor(spd).ok());
  EXPECT_TRUE(Cholesky::Factor(spd).ok());
}

// ParseFaultPlan is the --chaos CLI surface: specs must round-trip into the
// same rules the fluent builder installs, and malformed specs must be
// rejected with the offending clause named.
TEST(ParseFaultPlanTest, ParsesCallCountAndEveryClauses) {
  auto parsed = ParseFaultPlan(
      "shard_worker/crash@3,shard_worker/hang@every,linalg_svd/jacobi@1");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const auto& rules = parsed.value().rules();
  ASSERT_EQ(rules.size(), 3u);
  EXPECT_EQ(rules[0].site, "shard_worker/crash");
  EXPECT_EQ(rules[0].trigger_call, 3);
  EXPECT_EQ(rules[0].action, FaultAction::kReturnStatus);
  EXPECT_EQ(rules[0].code, StatusCode::kNumericalError);
  EXPECT_EQ(rules[1].site, "shard_worker/hang");
  EXPECT_EQ(rules[1].trigger_call, 0);  // FailEveryCall sentinel.
  EXPECT_EQ(rules[2].site, "linalg_svd/jacobi");
  EXPECT_EQ(rules[2].trigger_call, 1);
}

TEST(ParseFaultPlanTest, ParsedPlanActuallyFires) {
  auto parsed = ParseFaultPlan("parse_fault_plan_test/site@2");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ScopedFaultInjection injection(std::move(parsed).value());
  auto probe = [] {
    SOSE_FAULT_POINT("parse_fault_plan_test/site");
    return Status::OK();
  };
  EXPECT_TRUE(probe().ok());
  const Status second = probe();
  EXPECT_EQ(second.code(), StatusCode::kNumericalError);
  EXPECT_TRUE(probe().ok());
}

TEST(ParseFaultPlanTest, RejectsMalformedSpecs) {
  const char* bad[] = {
      "",                       // empty spec
      "site-without-trigger",   // no '@'
      "@3",                     // empty site
      "site@",                  // empty trigger
      "site@0",                 // counts are 1-based
      "site@-1",                // negative count
      "site@3x",                // trailing garbage
      "site@sometimes",         // unknown keyword
      "a@1,,b@2",               // empty clause mid-list
      "a@1,",                   // trailing comma
  };
  for (const char* spec : bad) {
    const auto parsed = ParseFaultPlan(spec);
    EXPECT_FALSE(parsed.ok()) << "accepted '" << spec << "'";
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << spec;
  }
}

}  // namespace
}  // namespace sose
