#include "core/flags.h"

#include <gtest/gtest.h>

namespace sose {
namespace {

// Regression: strtoll-based parsing silently turned `--threads=abc` into 0 —
// a benchmark invoked with a typo'd flag would quietly run serial instead of
// failing loudly. Strict parsing exits with the usage message instead.
TEST(FlagParserStrictTest, MalformedIntExitsWithUsage) {
  const char* argv[] = {"prog", "--threads=abc"};
  FlagParser flags(2, const_cast<char**>(argv));
  EXPECT_EXIT((void)flags.GetInt("threads", 0),
              ::testing::ExitedWithCode(2), "invalid value for --threads");
}

// Regression: trailing garbage after a valid prefix ("8x") used to parse as
// 8. The whole value must now be one integer.
TEST(FlagParserStrictTest, TrailingGarbageIntExits) {
  const char* argv[] = {"prog", "--trials=8x"};
  FlagParser flags(2, const_cast<char**>(argv));
  EXPECT_EXIT((void)flags.GetInt("trials", 0),
              ::testing::ExitedWithCode(2), "expected an integer");
}

TEST(FlagParserStrictTest, MalformedDoubleExits) {
  const char* argv[] = {"prog", "--eps=0.1.2"};
  FlagParser flags(2, const_cast<char**>(argv));
  EXPECT_EXIT((void)flags.GetDouble("eps", 0.0),
              ::testing::ExitedWithCode(2), "expected a number");
}

TEST(FlagParserStrictTest, EmptyValueExits) {
  const char* argv[] = {"prog", "--trials="};
  FlagParser flags(2, const_cast<char**>(argv));
  EXPECT_EXIT((void)flags.GetInt("trials", 0),
              ::testing::ExitedWithCode(2), "invalid value");
}

TEST(FlagParserStrictTest, ValidValuesStillParse) {
  const char* argv[] = {"prog", "--trials=100", "--eps=0.125", "--off=-3"};
  FlagParser flags(4, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("trials", 0), 100);
  EXPECT_DOUBLE_EQ(flags.GetDouble("eps", 0.0), 0.125);
  EXPECT_EQ(flags.GetInt("off", 0), -3);
  // A numeric getter on an absent flag still returns its default silently.
  EXPECT_EQ(flags.GetInt("absent", 42), 42);
}

// `--workers=0` must fail loudly at the parser, not surface later as a
// confusing coordinator validation error (or worse, silently no-op).
TEST(FlagParserStrictTest, OutOfRangeIntExitsNamingTheRange) {
  const char* argv[] = {"prog", "--workers=0"};
  FlagParser flags(2, const_cast<char**>(argv));
  EXPECT_EXIT((void)flags.GetIntInRange("workers", 1, 1, 1024),
              ::testing::ExitedWithCode(2),
              "invalid value for --workers: '0'.*an integer in \\[1, 1024\\]");
}

TEST(FlagParserStrictTest, RangeCheckAcceptsBoundaryValues) {
  const char* argv[] = {"prog", "--workers=1", "--retries=16"};
  FlagParser flags(3, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetIntInRange("workers", 4, 1, 1024), 1);
  EXPECT_EQ(flags.GetIntInRange("retries", 0, 0, 16), 16);
}

TEST(FlagParserStrictTest, RangeCheckSkipsAbsentFlagDefaults) {
  // Sentinel defaults (0 = hardware concurrency) may lie outside the range
  // enforced on explicit input.
  const char* argv[] = {"prog"};
  FlagParser flags(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetIntInRange("threads", 0, 1, 1024), 0);
}

TEST(FlagParserStrictTest, RangeCheckStillRejectsMalformedInput) {
  const char* argv[] = {"prog", "--workers=two"};
  FlagParser flags(2, const_cast<char**>(argv));
  EXPECT_EXIT((void)flags.GetIntInRange("workers", 1, 1, 1024),
              ::testing::ExitedWithCode(2), "expected an integer");
}

// `--retry-after=0` must fail loudly: a zero or negative retry hint passed
// through unchecked turns every client's BUSY retry loop into a hot spin.
TEST(FlagParserStrictTest, OutOfRangeDoubleExitsNamingTheRange) {
  const char* argv[] = {"prog", "--retry-after=0"};
  FlagParser flags(2, const_cast<char**>(argv));
  EXPECT_EXIT(
      (void)flags.GetDoubleInRange("retry-after", 0.05, 0.001, 60.0),
      ::testing::ExitedWithCode(2),
      "invalid value for --retry-after: '0'.*a number in \\[0.001, 60\\]");
}

TEST(FlagParserStrictTest, NegativeAndNanDoublesAreRejectedByRange) {
  const char* argv[] = {"prog", "--retry-after=-0.5", "--backoff=nan"};
  FlagParser flags(3, const_cast<char**>(argv));
  EXPECT_EXIT((void)flags.GetDoubleInRange("retry-after", 0.05, 0.001, 60.0),
              ::testing::ExitedWithCode(2), "invalid value for --retry-after");
  // NaN parses as a double but is inside no range; it must exit too, never
  // leak into timing arithmetic.
  EXPECT_EXIT((void)flags.GetDoubleInRange("backoff", 0.05, 0.001, 60.0),
              ::testing::ExitedWithCode(2), "invalid value for --backoff");
}

TEST(FlagParserStrictTest, DoubleRangeAcceptsBoundariesAndSkipsDefaults) {
  const char* argv[] = {"prog", "--retry-after=0.001", "--pause=60"};
  FlagParser flags(3, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(flags.GetDoubleInRange("retry-after", 0.05, 0.001, 60.0),
                   0.001);
  EXPECT_DOUBLE_EQ(flags.GetDoubleInRange("pause", 0.05, 0.001, 60.0), 60.0);
  // Absent flags return sentinel defaults un-range-checked, like
  // GetIntInRange.
  EXPECT_DOUBLE_EQ(flags.GetDoubleInRange("absent", 0.0, 0.001, 60.0), 0.0);
}

// `--a --b` must parse as two booleans: a token that itself starts with
// `--` never binds as the preceding flag's value.
TEST(FlagParserStrictTest, FlagLikeTokenIsNeverSwallowedAsValue) {
  const char* argv[] = {"prog", "--verbose", "--trials", "5"};
  FlagParser flags(4, const_cast<char**>(argv));
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_EQ(flags.GetInt("trials", 0), 5);
  // And the space-separated value really did bind to --trials, not float
  // free as a positional (which would have exited in the constructor).
}

// Negative numbers are a deliberate casualty of the `--` guard when passed
// space-separated; `--off=-3` (covered above) is the supported spelling.
// `--off -3` leaves --off boolean and would treat `-3` as positional.
TEST(FlagParserStrictTest, BoolGetterIsStillLenient) {
  // GetBool never exits: any spelling other than true/1/yes reads false.
  const char* argv[] = {"prog", "--flag=maybe"};
  FlagParser flags(2, const_cast<char**>(argv));
  EXPECT_FALSE(flags.GetBool("flag", true));
}

}  // namespace
}  // namespace sose
