#include <gtest/gtest.h>

#include <cstdint>

#include "core/matrix.h"
#include "core/random.h"

namespace sose {
namespace {

Matrix RandomMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix out(rows, cols);
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) out.At(i, j) = rng.Gaussian();
  }
  return out;
}

// The blocked syrk Gram claims bitwise identity with the naive product,
// which is exactly MatMulTransposeA(a, a) — the previous implementation.
void ExpectBitwiseGram(const Matrix& a) {
  const Matrix blocked = Gram(a);
  const Matrix naive = MatMulTransposeA(a, a);
  ASSERT_EQ(blocked.rows(), naive.rows());
  ASSERT_EQ(blocked.cols(), naive.cols());
  for (int64_t i = 0; i < blocked.rows(); ++i) {
    for (int64_t j = 0; j < blocked.cols(); ++j) {
      EXPECT_EQ(blocked.At(i, j), naive.At(i, j))
          << "mismatch at (" << i << ", " << j << ")";
    }
  }
}

TEST(GramBlockedTest, MatchesNaiveOnRandomMatrices) {
  ExpectBitwiseGram(RandomMatrix(17, 5, 1));
  ExpectBitwiseGram(RandomMatrix(64, 64, 2));
  ExpectBitwiseGram(RandomMatrix(1, 1, 3));
}

TEST(GramBlockedTest, MatchesNaiveAcrossBlockBoundaries) {
  // 257 rows crosses the 128-row k panel twice; 130 columns crosses the
  // 64-column tile twice — both with remainder tiles.
  ExpectBitwiseGram(RandomMatrix(257, 7, 4));
  ExpectBitwiseGram(RandomMatrix(10, 130, 5));
  ExpectBitwiseGram(RandomMatrix(129, 65, 6));
  ExpectBitwiseGram(RandomMatrix(128, 64, 7));
}

TEST(GramBlockedTest, MatchesNaiveOnRankDeficientMatrices) {
  // Duplicate columns: the Gram is singular but must still match bitwise.
  Matrix a = RandomMatrix(40, 3, 8);
  Matrix wide(40, 6);
  for (int64_t i = 0; i < 40; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      wide.At(i, j) = a.At(i, j);
      wide.At(i, j + 3) = a.At(i, j);
    }
  }
  ExpectBitwiseGram(wide);
  // All-zero matrix.
  ExpectBitwiseGram(Matrix(12, 9));
}

TEST(GramBlockedTest, HandlesDegenerateShapes) {
  ExpectBitwiseGram(Matrix(0, 0));
  ExpectBitwiseGram(Matrix(5, 0));   // n x 0 → 0 x 0 Gram.
  ExpectBitwiseGram(Matrix(0, 7));   // 0 x d → all-zero d x d Gram.
  const Matrix zero_rows = Gram(Matrix(0, 7));
  for (int64_t i = 0; i < 7; ++i) {
    for (int64_t j = 0; j < 7; ++j) EXPECT_EQ(zero_rows.At(i, j), 0.0);
  }
}

TEST(GramBlockedTest, ResultIsBitwiseSymmetric) {
  const Matrix gram = Gram(RandomMatrix(100, 70, 9));
  for (int64_t i = 0; i < gram.rows(); ++i) {
    for (int64_t j = 0; j < gram.cols(); ++j) {
      EXPECT_EQ(gram.At(i, j), gram.At(j, i));
    }
  }
}

}  // namespace
}  // namespace sose
