#include "core/hexfloat.h"

#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

namespace sose {
namespace {

TEST(HexFloatTest, RoundTripsExactly) {
  const std::vector<double> values = {
      0.0,
      1.0,
      -1.0,
      0.1,
      0.1 + 0.2,  // the classic non-representable sum
      1.0 / 3.0,
      -123456.789,
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::min(),         // smallest normal
      std::numeric_limits<double>::denorm_min(),  // smallest subnormal
      std::numeric_limits<double>::epsilon(),
  };
  for (const double v : values) {
    double parsed = 0.0;
    ASSERT_TRUE(ParseHexDouble(FormatHexDouble(v), &parsed))
        << FormatHexDouble(v);
    EXPECT_EQ(std::memcmp(&parsed, &v, sizeof(double)), 0)
        << "bit-exact round trip failed for " << v;
  }
}

TEST(HexFloatTest, NegativeZeroKeepsItsSign) {
  const double negative_zero = -0.0;
  double parsed = 0.0;
  ASSERT_TRUE(ParseHexDouble(FormatHexDouble(negative_zero), &parsed));
  EXPECT_TRUE(std::signbit(parsed));
}

TEST(HexFloatTest, NonFiniteRoundTrips) {
  double parsed = 0.0;
  ASSERT_TRUE(ParseHexDouble(FormatHexDouble(INFINITY), &parsed));
  EXPECT_TRUE(std::isinf(parsed));
  EXPECT_FALSE(std::signbit(parsed));
  ASSERT_TRUE(ParseHexDouble(FormatHexDouble(-INFINITY), &parsed));
  EXPECT_TRUE(std::isinf(parsed));
  EXPECT_TRUE(std::signbit(parsed));
  ASSERT_TRUE(ParseHexDouble(FormatHexDouble(std::nan("")), &parsed));
  EXPECT_TRUE(std::isnan(parsed));
}

// Checkpoints written by the old printf("%a") path carry an explicit 0x /
// -0x prefix and sometimes uppercase 0X; both must keep parsing.
TEST(HexFloatTest, AcceptsLegacyPrefixedForms) {
  double parsed = 0.0;
  ASSERT_TRUE(ParseHexDouble("0x1.8p+1", &parsed));
  EXPECT_DOUBLE_EQ(parsed, 3.0);
  ASSERT_TRUE(ParseHexDouble("-0x1.8p+1", &parsed));
  EXPECT_DOUBLE_EQ(parsed, -3.0);
  ASSERT_TRUE(ParseHexDouble("0X1p+4", &parsed));
  EXPECT_DOUBLE_EQ(parsed, 16.0);
  ASSERT_TRUE(ParseHexDouble("+0x1p+0", &parsed));
  EXPECT_DOUBLE_EQ(parsed, 1.0);
}

TEST(HexFloatTest, RejectsGarbage) {
  double parsed = 0.0;
  EXPECT_FALSE(ParseHexDouble("", &parsed));
  EXPECT_FALSE(ParseHexDouble("zzz", &parsed));
  EXPECT_FALSE(ParseHexDouble("0x", &parsed));
  EXPECT_FALSE(ParseHexDouble("--1p+0", &parsed));
  EXPECT_FALSE(ParseHexDouble("0x-1p+0", &parsed));
  EXPECT_FALSE(ParseHexDouble("0x1p+0 trailing", &parsed));
  EXPECT_FALSE(ParseHexDouble("0x1p+0,5", &parsed));
}

// The reason this helper exists: printf("%a")/strtod honor LC_NUMERIC, so a
// comma-radix locale could write checkpoints no C-locale reader (or vice
// versa) could parse. to_chars/from_chars are locale-independent by
// specification; prove it under a comma locale when the host has one.
TEST(HexFloatTest, ImmuneToCommaDecimalLocale) {
  const char* previous = std::setlocale(LC_NUMERIC, "de_DE.UTF-8");
  if (previous == nullptr) {
    GTEST_SKIP() << "de_DE.UTF-8 locale not installed on this host";
  }
  const double value = 0.1 + 0.2;
  const std::string formatted = FormatHexDouble(value);
  EXPECT_EQ(formatted.find(','), std::string::npos);
  double parsed = 0.0;
  ASSERT_TRUE(ParseHexDouble(formatted, &parsed));
  EXPECT_EQ(std::memcmp(&parsed, &value, sizeof(double)), 0);
  std::setlocale(LC_NUMERIC, "C");
}

}  // namespace
}  // namespace sose
