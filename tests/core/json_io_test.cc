#include "core/json_io.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

namespace sose {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "sose_json_io_" + name;
}

TEST(JsonObjectWriterTest, EmitsFieldsInInsertionOrder) {
  JsonObjectWriter writer;
  writer.AddString("experiment", "e1")
      .AddInt("threads", 8)
      .AddDouble("wall_seconds", 1.5)
      .AddBool("partial", false);
  const std::string text = writer.ToString();
  EXPECT_NE(text.find("\"experiment\": \"e1\""), std::string::npos);
  EXPECT_NE(text.find("\"threads\": 8"), std::string::npos);
  EXPECT_NE(text.find("\"wall_seconds\": 1.5"), std::string::npos);
  EXPECT_NE(text.find("\"partial\": false"), std::string::npos);
  EXPECT_LT(text.find("experiment"), text.find("threads"));
  EXPECT_LT(text.find("threads"), text.find("wall_seconds"));
}

TEST(JsonObjectWriterTest, EscapesStringsAndHandlesNonFinite) {
  JsonObjectWriter writer;
  writer.AddString("msg", "a \"quoted\"\nline\tand \\ slash");
  writer.AddDouble("nan_field", std::nan(""));
  writer.AddDouble("inf_field", HUGE_VAL);
  const std::string text = writer.ToString();
  EXPECT_NE(text.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(text.find("\\n"), std::string::npos);
  EXPECT_NE(text.find("\\t"), std::string::npos);
  EXPECT_NE(text.find("\\\\ slash"), std::string::npos);
  EXPECT_NE(text.find("\"nan_field\": null"), std::string::npos);
  EXPECT_NE(text.find("\"inf_field\": null"), std::string::npos);
}

TEST(JsonObjectWriterTest, DoublesRoundTripThroughFindJsonNumber) {
  const double value = 0.1 + 0.2;  // 0.30000000000000004
  JsonObjectWriter writer;
  writer.AddDouble("x", value);
  double parsed = 0.0;
  ASSERT_TRUE(FindJsonNumber(writer.ToString(), "x", &parsed));
  EXPECT_EQ(parsed, value);  // %.17g preserves the exact double.
}

TEST(FindJsonNumberTest, FindsKeysAndRejectsMissingOrNonNumeric) {
  const std::string text =
      "{\n  \"name\": \"e5\",\n  \"threads\": 4,\n  \"rate\": 0.25\n}\n";
  double value = 0.0;
  ASSERT_TRUE(FindJsonNumber(text, "threads", &value));
  EXPECT_EQ(value, 4.0);
  ASSERT_TRUE(FindJsonNumber(text, "rate", &value));
  EXPECT_EQ(value, 0.25);
  EXPECT_FALSE(FindJsonNumber(text, "absent", &value));
  EXPECT_FALSE(FindJsonNumber(text, "name", &value));  // String, not number.
}

TEST(FindJsonNumberTest, KeyPrefixDoesNotFalseMatch) {
  // "thread" must not match the "threads" field's value.
  const std::string text = "{\"threads\": 9, \"thread\": 3}";
  double value = 0.0;
  ASSERT_TRUE(FindJsonNumber(text, "thread", &value));
  EXPECT_EQ(value, 3.0);
}

// Regression: the raw substring scanner matched the FIRST occurrence of the
// quoted key anywhere in the document, so a key inside a nested object (the
// `metrics` block) shadowed the identically named top-level key. Only
// top-level keys may match.
TEST(FindJsonNumberTest, NestedKeyDoesNotShadowTopLevelKey) {
  const std::string text =
      "{\"metrics\": {\"spans\": {\"seconds\": 1.5}}, \"seconds\": 9.25}";
  double value = 0.0;
  ASSERT_TRUE(FindJsonNumber(text, "seconds", &value));
  EXPECT_EQ(value, 9.25);
  // A key present ONLY inside the nested object is invisible at top level.
  EXPECT_FALSE(FindJsonNumber(text, "spans", &value));
}

TEST(FindJsonNumberTest, KeyInsideStringValueIsIgnored) {
  // The value of "note" contains an escaped "seconds" key-lookalike; the
  // scanner must treat string contents as opaque.
  const std::string text =
      "{\"note\": \"literal \\\"seconds\\\": 4 here\", \"seconds\": 7}";
  double value = 0.0;
  ASSERT_TRUE(FindJsonNumber(text, "seconds", &value));
  EXPECT_EQ(value, 7.0);
}

TEST(FindJsonNumberTest, RealisticBenchDocumentWithMetricsBlock) {
  // The exact shape WriteBenchJson emits: flat perf keys followed by the
  // nested metrics block, which repeats names like "count" and histogram
  // bucket keys. Top-level reads must be unaffected.
  JsonObjectWriter inner;
  inner.AddInt("trials", 999).AddDouble("wall_seconds", 123.0);
  JsonObjectWriter writer;
  writer.AddString("experiment", "eX")
      .AddDouble("wall_seconds", 2.5)
      .AddInt("trials", 64)
      .AddObject("metrics", inner);
  const std::string text = writer.ToString();
  double value = 0.0;
  ASSERT_TRUE(FindJsonNumber(text, "wall_seconds", &value));
  EXPECT_EQ(value, 2.5);
  ASSERT_TRUE(FindJsonNumber(text, "trials", &value));
  EXPECT_EQ(value, 64.0);
}

TEST(JsonObjectWriterTest, AddObjectNestsInline) {
  JsonObjectWriter child;
  child.AddInt("a", 1).AddDouble("b", 0.5);
  JsonObjectWriter writer;
  writer.AddString("experiment", "e0").AddObject("metrics", child);
  const std::string inline_child = child.ToInlineString();
  EXPECT_EQ(inline_child, "{\"a\": 1, \"b\": 0.5}");
  EXPECT_NE(writer.ToString().find("\"metrics\": {\"a\": 1, \"b\": 0.5}"),
            std::string::npos);
  // An empty nested object serializes as {}.
  JsonObjectWriter empty;
  EXPECT_EQ(empty.ToInlineString(), "{}");
}

TEST(JsonObjectWriterTest, WriteStringToFileRoundTrips) {
  const std::string path = TempPath("raw.txt");
  ASSERT_TRUE(WriteStringToFile(path, "line one\nline two\n").ok());
  auto text = ReadFileToString(path);
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_EQ(text.value(), "line one\nline two\n");
  std::remove(path.c_str());
}

TEST(JsonObjectWriterTest, WriteToFileRoundTrips) {
  const std::string path = TempPath("bench.json");
  JsonObjectWriter writer;
  writer.AddString("experiment", "e9").AddDouble("wall_seconds", 2.75);
  ASSERT_TRUE(writer.WriteToFile(path).ok());
  auto text = ReadFileToString(path);
  ASSERT_TRUE(text.ok()) << text.status();
  double value = 0.0;
  ASSERT_TRUE(FindJsonNumber(text.value(), "wall_seconds", &value));
  EXPECT_EQ(value, 2.75);
  std::remove(path.c_str());
}

TEST(ReadFileToStringTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadFileToString(TempPath("absent.json")).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace sose
