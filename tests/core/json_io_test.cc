#include "core/json_io.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

namespace sose {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "sose_json_io_" + name;
}

TEST(JsonObjectWriterTest, EmitsFieldsInInsertionOrder) {
  JsonObjectWriter writer;
  writer.AddString("experiment", "e1")
      .AddInt("threads", 8)
      .AddDouble("wall_seconds", 1.5)
      .AddBool("partial", false);
  const std::string text = writer.ToString();
  EXPECT_NE(text.find("\"experiment\": \"e1\""), std::string::npos);
  EXPECT_NE(text.find("\"threads\": 8"), std::string::npos);
  EXPECT_NE(text.find("\"wall_seconds\": 1.5"), std::string::npos);
  EXPECT_NE(text.find("\"partial\": false"), std::string::npos);
  EXPECT_LT(text.find("experiment"), text.find("threads"));
  EXPECT_LT(text.find("threads"), text.find("wall_seconds"));
}

TEST(JsonObjectWriterTest, EscapesStringsAndHandlesNonFinite) {
  JsonObjectWriter writer;
  writer.AddString("msg", "a \"quoted\"\nline\tand \\ slash");
  writer.AddDouble("nan_field", std::nan(""));
  writer.AddDouble("inf_field", HUGE_VAL);
  const std::string text = writer.ToString();
  EXPECT_NE(text.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(text.find("\\n"), std::string::npos);
  EXPECT_NE(text.find("\\t"), std::string::npos);
  EXPECT_NE(text.find("\\\\ slash"), std::string::npos);
  EXPECT_NE(text.find("\"nan_field\": null"), std::string::npos);
  EXPECT_NE(text.find("\"inf_field\": null"), std::string::npos);
}

TEST(JsonObjectWriterTest, DoublesRoundTripThroughFindJsonNumber) {
  const double value = 0.1 + 0.2;  // 0.30000000000000004
  JsonObjectWriter writer;
  writer.AddDouble("x", value);
  double parsed = 0.0;
  ASSERT_TRUE(FindJsonNumber(writer.ToString(), "x", &parsed));
  EXPECT_EQ(parsed, value);  // %.17g preserves the exact double.
}

TEST(FindJsonNumberTest, FindsKeysAndRejectsMissingOrNonNumeric) {
  const std::string text =
      "{\n  \"name\": \"e5\",\n  \"threads\": 4,\n  \"rate\": 0.25\n}\n";
  double value = 0.0;
  ASSERT_TRUE(FindJsonNumber(text, "threads", &value));
  EXPECT_EQ(value, 4.0);
  ASSERT_TRUE(FindJsonNumber(text, "rate", &value));
  EXPECT_EQ(value, 0.25);
  EXPECT_FALSE(FindJsonNumber(text, "absent", &value));
  EXPECT_FALSE(FindJsonNumber(text, "name", &value));  // String, not number.
}

TEST(FindJsonNumberTest, KeyPrefixDoesNotFalseMatch) {
  // "thread" must not match the "threads" field's value.
  const std::string text = "{\"threads\": 9, \"thread\": 3}";
  double value = 0.0;
  ASSERT_TRUE(FindJsonNumber(text, "thread", &value));
  EXPECT_EQ(value, 3.0);
}

TEST(JsonObjectWriterTest, WriteToFileRoundTrips) {
  const std::string path = TempPath("bench.json");
  JsonObjectWriter writer;
  writer.AddString("experiment", "e9").AddDouble("wall_seconds", 2.75);
  ASSERT_TRUE(writer.WriteToFile(path).ok());
  auto text = ReadFileToString(path);
  ASSERT_TRUE(text.ok()) << text.status();
  double value = 0.0;
  ASSERT_TRUE(FindJsonNumber(text.value(), "wall_seconds", &value));
  EXPECT_EQ(value, 2.75);
  std::remove(path.c_str());
}

TEST(ReadFileToStringTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadFileToString(TempPath("absent.json")).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace sose
