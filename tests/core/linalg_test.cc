#include <gtest/gtest.h>

#include <cmath>

#include "core/linalg_cholesky.h"
#include "core/linalg_eigen.h"
#include "core/linalg_lu.h"
#include "core/linalg_qr.h"
#include "core/linalg_svd.h"
#include "core/random.h"
#include "core/vector_ops.h"

namespace sose {
namespace {

Matrix RandomMatrix(int64_t rows, int64_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) m.At(i, j) = rng->Gaussian();
  }
  return m;
}

Matrix RandomSpd(int64_t n, Rng* rng) {
  Matrix a = RandomMatrix(n + 3, n, rng);
  Matrix spd = Gram(a);
  for (int64_t i = 0; i < n; ++i) spd.At(i, i) += 0.5;
  return spd;
}

// ---------- QR ----------

TEST(QrTest, RejectsWideMatrix) {
  EXPECT_FALSE(HouseholderQr::Factor(Matrix(2, 3)).ok());
}

TEST(QrTest, ReconstructsInput) {
  Rng rng(1);
  const Matrix a = RandomMatrix(8, 5, &rng);
  auto qr = HouseholderQr::Factor(a);
  ASSERT_TRUE(qr.ok());
  const Matrix reconstructed = MatMul(qr.value().ThinQ(), qr.value().R());
  EXPECT_TRUE(AlmostEqual(reconstructed, a, 1e-10));
}

TEST(QrTest, ThinQHasOrthonormalColumns) {
  Rng rng(2);
  const Matrix a = RandomMatrix(10, 4, &rng);
  auto qr = HouseholderQr::Factor(a);
  ASSERT_TRUE(qr.ok());
  Matrix gram = Gram(qr.value().ThinQ());
  for (int64_t i = 0; i < 4; ++i) gram.At(i, i) -= 1.0;
  EXPECT_LT(gram.MaxAbs(), 1e-10);
}

TEST(QrTest, RIsUpperTriangular) {
  Rng rng(3);
  auto qr = HouseholderQr::Factor(RandomMatrix(6, 6, &rng));
  ASSERT_TRUE(qr.ok());
  const Matrix r = qr.value().R();
  for (int64_t i = 1; i < 6; ++i) {
    for (int64_t j = 0; j < i; ++j) EXPECT_EQ(r.At(i, j), 0.0);
  }
}

TEST(QrTest, SolveLeastSquaresExactOnConsistentSystem) {
  Rng rng(4);
  const Matrix a = RandomMatrix(9, 3, &rng);
  const std::vector<double> x_true = {1.0, -2.0, 0.5};
  const std::vector<double> b = MatVec(a, x_true);
  auto qr = HouseholderQr::Factor(a);
  ASSERT_TRUE(qr.ok());
  auto x = qr.value().SolveLeastSquares(b);
  ASSERT_TRUE(x.ok());
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(x.value()[i], x_true[i], 1e-10);
}

TEST(QrTest, LeastSquaresResidualIsOrthogonalToRange) {
  Rng rng(5);
  const Matrix a = RandomMatrix(12, 4, &rng);
  std::vector<double> b(12);
  for (double& v : b) v = rng.Gaussian();
  auto qr = HouseholderQr::Factor(a);
  ASSERT_TRUE(qr.ok());
  auto x = qr.value().SolveLeastSquares(b);
  ASSERT_TRUE(x.ok());
  const std::vector<double> residual = Subtract(MatVec(a, x.value()), b);
  const std::vector<double> back = MatVecTransposed(a, residual);
  EXPECT_LT(NormInf(back), 1e-9);
}

TEST(QrTest, SingularRIsReported) {
  Matrix a(3, 2, {1, 2, 2, 4, 3, 6});  // Rank 1.
  auto qr = HouseholderQr::Factor(a);
  ASSERT_TRUE(qr.ok());
  EXPECT_EQ(qr.value().RankEstimate(), 1);
  auto x = qr.value().SolveLeastSquares({1, 1, 1});
  EXPECT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kNumericalError);
}

TEST(QrTest, WrongRhsLength) {
  Rng rng(6);
  auto qr = HouseholderQr::Factor(RandomMatrix(4, 2, &rng));
  ASSERT_TRUE(qr.ok());
  EXPECT_FALSE(qr.value().SolveLeastSquares({1, 2}).ok());
}

TEST(OrthonormalizeTest, ProducesSameSpan) {
  Rng rng(7);
  const Matrix a = RandomMatrix(10, 3, &rng);
  auto q = Orthonormalize(a);
  ASSERT_TRUE(q.ok());
  // Columns of a are in span(q): a = q (qᵀ a).
  const Matrix coeff = MatMulTransposeA(q.value(), a);
  EXPECT_TRUE(AlmostEqual(MatMul(q.value(), coeff), a, 1e-9));
}

TEST(OrthonormalizeTest, RejectsRankDeficient) {
  Matrix a(4, 2, {1, 1, 2, 2, 3, 3, 4, 4});
  EXPECT_FALSE(Orthonormalize(a).ok());
}

// ---------- Cholesky ----------

TEST(CholeskyTest, FactorsSpdAndReconstructs) {
  Rng rng(8);
  const Matrix spd = RandomSpd(5, &rng);
  auto chol = Cholesky::Factor(spd);
  ASSERT_TRUE(chol.ok());
  const Matrix l = chol.value().L();
  EXPECT_TRUE(AlmostEqual(MatMulTransposeB(l, l), spd, 1e-9));
}

TEST(CholeskyTest, RejectsNonSquare) {
  EXPECT_FALSE(Cholesky::Factor(Matrix(2, 3)).ok());
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix indefinite(2, 2, {1, 2, 2, 1});  // Eigenvalues 3 and -1.
  auto chol = Cholesky::Factor(indefinite);
  EXPECT_FALSE(chol.ok());
  EXPECT_EQ(chol.status().code(), StatusCode::kNumericalError);
}

TEST(CholeskyTest, SolveMatchesDirectSubstitution) {
  Rng rng(9);
  const Matrix spd = RandomSpd(6, &rng);
  auto chol = Cholesky::Factor(spd);
  ASSERT_TRUE(chol.ok());
  std::vector<double> b(6);
  for (double& v : b) v = rng.Gaussian();
  const std::vector<double> x = chol.value().Solve(b);
  const std::vector<double> back = MatVec(spd, x);
  for (size_t i = 0; i < 6; ++i) EXPECT_NEAR(back[i], b[i], 1e-9);
}

TEST(CholeskyTest, SolveLowerMatrixColumnwise) {
  Rng rng(10);
  const Matrix spd = RandomSpd(4, &rng);
  auto chol = Cholesky::Factor(spd);
  ASSERT_TRUE(chol.ok());
  const Matrix b = RandomMatrix(4, 3, &rng);
  const Matrix x = chol.value().SolveLowerMatrix(b);
  EXPECT_TRUE(AlmostEqual(MatMul(chol.value().L(), x), b, 1e-9));
}

TEST(CholeskyTest, LogDeterminantMatchesLu) {
  Rng rng(11);
  const Matrix spd = RandomSpd(5, &rng);
  auto chol = Cholesky::Factor(spd);
  auto lu = PartialPivLu::Factor(spd);
  ASSERT_TRUE(chol.ok());
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(chol.value().LogDeterminant(),
              std::log(lu.value().Determinant()), 1e-8);
}

// ---------- LU ----------

TEST(LuTest, SolvesKnownSystem) {
  Matrix a(2, 2, {2, 1, 1, 3});
  auto lu = PartialPivLu::Factor(a);
  ASSERT_TRUE(lu.ok());
  const std::vector<double> x = lu.value().Solve({3, 5});
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(LuTest, RejectsSingular) {
  Matrix a(2, 2, {1, 2, 2, 4});
  EXPECT_FALSE(PartialPivLu::Factor(a).ok());
}

TEST(LuTest, RejectsNonSquare) {
  EXPECT_FALSE(PartialPivLu::Factor(Matrix(2, 3)).ok());
}

TEST(LuTest, InverseTimesOriginalIsIdentity) {
  Rng rng(12);
  const Matrix a = RandomMatrix(6, 6, &rng);
  auto lu = PartialPivLu::Factor(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_TRUE(AlmostEqual(MatMul(a, lu.value().Inverse()),
                          Matrix::Identity(6), 1e-9));
}

TEST(LuTest, DeterminantOfKnownMatrix) {
  Matrix a(3, 3, {6, 1, 1, 4, -2, 5, 2, 8, 7});
  auto lu = PartialPivLu::Factor(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu.value().Determinant(), -306.0, 1e-9);
}

TEST(LuTest, DeterminantSignUnderPermutation) {
  Matrix a(2, 2, {0, 1, 1, 0});  // det = -1, requires pivoting.
  auto lu = PartialPivLu::Factor(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu.value().Determinant(), -1.0, 1e-12);
}

// ---------- Symmetric eigensolver ----------

TEST(EigenTest, DiagonalMatrix) {
  Matrix a(3, 3, {3, 0, 0, 0, 1, 0, 0, 0, 2});
  auto eigen = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eigen.ok());
  EXPECT_NEAR(eigen.value().values[0], 1.0, 1e-12);
  EXPECT_NEAR(eigen.value().values[1], 2.0, 1e-12);
  EXPECT_NEAR(eigen.value().values[2], 3.0, 1e-12);
}

TEST(EigenTest, KnownTwoByTwo) {
  Matrix a(2, 2, {2, 1, 1, 2});  // Eigenvalues 1 and 3.
  auto values = SymmetricEigenvalues(a);
  ASSERT_TRUE(values.ok());
  EXPECT_NEAR(values.value()[0], 1.0, 1e-12);
  EXPECT_NEAR(values.value()[1], 3.0, 1e-12);
}

TEST(EigenTest, RejectsNonSquare) {
  EXPECT_FALSE(JacobiEigenSymmetric(Matrix(2, 3)).ok());
}

TEST(EigenTest, EigenpairsSatisfyDefinition) {
  Rng rng(13);
  Matrix a = RandomSpd(6, &rng);
  auto eigen = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eigen.ok());
  const Matrix& v = eigen.value().vectors;
  for (int64_t k = 0; k < 6; ++k) {
    const std::vector<double> vec = v.Col(k);
    const std::vector<double> av = MatVec(a, vec);
    for (int64_t i = 0; i < 6; ++i) {
      EXPECT_NEAR(av[static_cast<size_t>(i)],
                  eigen.value().values[static_cast<size_t>(k)] *
                      vec[static_cast<size_t>(i)],
                  1e-8);
    }
  }
}

TEST(EigenTest, VectorsAreOrthonormal) {
  Rng rng(14);
  auto eigen = JacobiEigenSymmetric(RandomSpd(7, &rng));
  ASSERT_TRUE(eigen.ok());
  Matrix gram = Gram(eigen.value().vectors);
  for (int64_t i = 0; i < 7; ++i) gram.At(i, i) -= 1.0;
  EXPECT_LT(gram.MaxAbs(), 1e-9);
}

TEST(EigenTest, TraceAndSumOfEigenvaluesAgree) {
  Rng rng(15);
  const Matrix a = RandomSpd(8, &rng);
  auto values = SymmetricEigenvalues(a);
  ASSERT_TRUE(values.ok());
  double trace = 0.0, sum = 0.0;
  for (int64_t i = 0; i < 8; ++i) trace += a.At(i, i);
  for (double v : values.value()) sum += v;
  EXPECT_NEAR(trace, sum, 1e-8);
}

TEST(GeneralizedEigenTest, ReducesToOrdinaryWithIdentityB) {
  Rng rng(16);
  const Matrix a = RandomSpd(5, &rng);
  auto ordinary = SymmetricEigenvalues(a);
  auto generalized = GeneralizedSymmetricEigenvalues(a, Matrix::Identity(5));
  ASSERT_TRUE(ordinary.ok());
  ASSERT_TRUE(generalized.ok());
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(ordinary.value()[i], generalized.value()[i], 1e-8);
  }
}

TEST(GeneralizedEigenTest, ScalingBScalesEigenvaluesInversely) {
  Rng rng(17);
  const Matrix a = RandomSpd(4, &rng);
  Matrix b = Matrix::Identity(4);
  b.Scale(2.0);
  auto generalized = GeneralizedSymmetricEigenvalues(a, b);
  auto ordinary = SymmetricEigenvalues(a);
  ASSERT_TRUE(generalized.ok());
  ASSERT_TRUE(ordinary.ok());
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(generalized.value()[i], ordinary.value()[i] / 2.0, 1e-8);
  }
}

TEST(GeneralizedEigenTest, RejectsIndefiniteB) {
  Matrix a = Matrix::Identity(2);
  Matrix b(2, 2, {1, 2, 2, 1});
  EXPECT_FALSE(GeneralizedSymmetricEigenvalues(a, b).ok());
}

// ---------- SVD ----------

TEST(SvdTest, KnownSingularValues) {
  // diag(3, 2) embedded in 3x2.
  Matrix a(3, 2, {3, 0, 0, 2, 0, 0});
  auto svd = JacobiSvd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_NEAR(svd.value().singular_values[0], 3.0, 1e-12);
  EXPECT_NEAR(svd.value().singular_values[1], 2.0, 1e-12);
}

TEST(SvdTest, ReconstructsInput) {
  Rng rng(18);
  const Matrix a = RandomMatrix(7, 4, &rng);
  auto svd = JacobiSvd(a);
  ASSERT_TRUE(svd.ok());
  // A = U diag(σ) Vᵀ.
  Matrix us = svd.value().u;
  for (int64_t j = 0; j < 4; ++j) {
    for (int64_t i = 0; i < 7; ++i) {
      us.At(i, j) *= svd.value().singular_values[static_cast<size_t>(j)];
    }
  }
  EXPECT_TRUE(AlmostEqual(MatMulTransposeB(us, svd.value().v), a, 1e-9));
}

TEST(SvdTest, FactorsAreOrthonormal) {
  Rng rng(19);
  auto svd = JacobiSvd(RandomMatrix(9, 5, &rng));
  ASSERT_TRUE(svd.ok());
  Matrix gu = Gram(svd.value().u);
  Matrix gv = Gram(svd.value().v);
  for (int64_t i = 0; i < 5; ++i) {
    gu.At(i, i) -= 1.0;
    gv.At(i, i) -= 1.0;
  }
  EXPECT_LT(gu.MaxAbs(), 1e-9);
  EXPECT_LT(gv.MaxAbs(), 1e-9);
}

TEST(SvdTest, ValuesSortedDescendingAndNonNegative) {
  Rng rng(20);
  auto svd = JacobiSvd(RandomMatrix(8, 6, &rng));
  ASSERT_TRUE(svd.ok());
  const auto& sigma = svd.value().singular_values;
  for (size_t i = 0; i + 1 < sigma.size(); ++i) {
    EXPECT_GE(sigma[i], sigma[i + 1]);
  }
  EXPECT_GE(sigma.back(), 0.0);
}

TEST(SvdTest, SingularValuesOfWideMatrixViaTranspose) {
  Matrix a(2, 3, {1, 0, 0, 0, 5, 0});
  auto sigma = SingularValues(a);
  ASSERT_TRUE(sigma.ok());
  EXPECT_NEAR(sigma.value()[0], 5.0, 1e-12);
  EXPECT_NEAR(sigma.value()[1], 1.0, 1e-12);
}

TEST(SvdTest, SingularValuesMatchEigenOfGram) {
  Rng rng(21);
  const Matrix a = RandomMatrix(10, 4, &rng);
  auto sigma = SingularValues(a);
  auto eigenvalues = SymmetricEigenvalues(Gram(a));
  ASSERT_TRUE(sigma.ok());
  ASSERT_TRUE(eigenvalues.ok());
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(sigma.value()[i] * sigma.value()[i],
                eigenvalues.value()[3 - i], 1e-8);
  }
}

TEST(ConditionNumberTest, IdentityIsOne) {
  auto cond = ConditionNumber(Matrix::Identity(4));
  ASSERT_TRUE(cond.ok());
  EXPECT_NEAR(cond.value(), 1.0, 1e-12);
}

TEST(ConditionNumberTest, SingularIsRejected) {
  Matrix a(2, 2, {1, 1, 1, 1});
  EXPECT_FALSE(ConditionNumber(a).ok());
}

}  // namespace
}  // namespace sose
