#include "core/linalg_tridiag.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/linalg_cholesky.h"
#include "core/linalg_eigen.h"
#include "core/random.h"

namespace sose {
namespace {

Matrix RandomSymmetric(int64_t n, Rng* rng) {
  Matrix a(n, n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j <= i; ++j) {
      const double v = rng->Gaussian();
      a.At(i, j) = v;
      a.At(j, i) = v;
    }
  }
  return a;
}

TEST(TridiagonalizeTest, Validation) {
  EXPECT_FALSE(HouseholderTridiagonalize(Matrix(2, 3)).ok());
  EXPECT_FALSE(HouseholderTridiagonalize(Matrix()).ok());
}

TEST(TridiagonalizeTest, AlreadyTridiagonalIsFixedPoint) {
  Matrix a(4, 4);
  const double diag[] = {1, 2, 3, 4};
  const double off[] = {0.5, -0.25, 0.125};
  for (int64_t i = 0; i < 4; ++i) a.At(i, i) = diag[i];
  for (int64_t i = 0; i < 3; ++i) {
    a.At(i + 1, i) = off[i];
    a.At(i, i + 1) = off[i];
  }
  auto t = HouseholderTridiagonalize(a);
  ASSERT_TRUE(t.ok());
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(t.value().diagonal[static_cast<size_t>(i)], diag[i], 1e-12);
  }
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(std::fabs(t.value().off_diagonal[static_cast<size_t>(i)]),
                std::fabs(off[i]), 1e-12);
  }
}

TEST(TridiagonalizeTest, PreservesTraceAndFrobenius) {
  Rng rng(1);
  const Matrix a = RandomSymmetric(12, &rng);
  auto t = HouseholderTridiagonalize(a);
  ASSERT_TRUE(t.ok());
  double trace_a = 0.0;
  for (int64_t i = 0; i < 12; ++i) trace_a += a.At(i, i);
  double trace_t = 0.0;
  for (double v : t.value().diagonal) trace_t += v;
  EXPECT_NEAR(trace_a, trace_t, 1e-9);
  // ‖T‖_F² = ‖A‖_F² (orthogonal similarity).
  double frob_t = 0.0;
  for (double v : t.value().diagonal) frob_t += v * v;
  for (double v : t.value().off_diagonal) frob_t += 2.0 * v * v;
  EXPECT_NEAR(frob_t, a.FrobeniusNorm() * a.FrobeniusNorm(), 1e-8);
}

TEST(TridiagonalEigenvaluesTest, Validation) {
  Tridiagonal t;
  EXPECT_FALSE(TridiagonalEigenvalues(t).ok());
  t.diagonal = {1.0, 2.0};
  t.off_diagonal = {0.5, 0.5};  // Wrong length.
  EXPECT_FALSE(TridiagonalEigenvalues(t).ok());
}

TEST(TridiagonalEigenvaluesTest, DiagonalInput) {
  Tridiagonal t;
  t.diagonal = {3.0, 1.0, 2.0};
  t.off_diagonal = {0.0, 0.0};
  auto values = TridiagonalEigenvalues(t);
  ASSERT_TRUE(values.ok());
  EXPECT_NEAR(values.value()[0], 1.0, 1e-12);
  EXPECT_NEAR(values.value()[1], 2.0, 1e-12);
  EXPECT_NEAR(values.value()[2], 3.0, 1e-12);
}

TEST(TridiagonalEigenvaluesTest, DiscreteLaplacianSpectrum) {
  // diag 2, offdiag −1: eigenvalues 2 − 2cos(kπ/(n+1)), k = 1..n.
  const int64_t n = 24;
  Tridiagonal t;
  t.diagonal.assign(static_cast<size_t>(n), 2.0);
  t.off_diagonal.assign(static_cast<size_t>(n - 1), -1.0);
  auto values = TridiagonalEigenvalues(t);
  ASSERT_TRUE(values.ok());
  for (int64_t k = 1; k <= n; ++k) {
    const double expected =
        2.0 - 2.0 * std::cos(std::numbers::pi * static_cast<double>(k) /
                             static_cast<double>(n + 1));
    EXPECT_NEAR(values.value()[static_cast<size_t>(k - 1)], expected, 1e-10);
  }
}

TEST(SymmetricEigenvaluesQlTest, AgreesWithJacobiOnRandomMatrices) {
  Rng rng(2);
  for (int64_t n : {2, 3, 5, 8, 16, 33}) {
    const Matrix a = RandomSymmetric(n, &rng);
    auto ql = SymmetricEigenvaluesQl(a);
    auto jacobi = SymmetricEigenvalues(a);
    ASSERT_TRUE(ql.ok());
    ASSERT_TRUE(jacobi.ok());
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_NEAR(ql.value()[static_cast<size_t>(i)],
                  jacobi.value()[static_cast<size_t>(i)],
                  1e-8 * (1.0 + std::fabs(jacobi.value()[static_cast<size_t>(i)])))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(SymmetricEigenvaluesQlTest, OneByOne) {
  Matrix a(1, 1, {7.0});
  auto values = SymmetricEigenvaluesQl(a);
  ASSERT_TRUE(values.ok());
  EXPECT_DOUBLE_EQ(values.value()[0], 7.0);
}

TEST(SymmetricEigenvaluesQlTest, LargeMatrixSpectralIdentities) {
  Rng rng(3);
  const int64_t n = 100;
  const Matrix a = RandomSymmetric(n, &rng);
  auto values = SymmetricEigenvaluesQl(a);
  ASSERT_TRUE(values.ok());
  double trace = 0.0, frob_sq = 0.0;
  for (int64_t i = 0; i < n; ++i) trace += a.At(i, i);
  frob_sq = a.FrobeniusNorm() * a.FrobeniusNorm();
  double sum = 0.0, sum_sq = 0.0;
  for (double v : values.value()) {
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum, trace, 1e-7 * n);
  EXPECT_NEAR(sum_sq, frob_sq, 1e-7 * frob_sq);
}

TEST(SymmetricEigenvaluesQlTest, HilbertMatrixIsNumericallyNasty) {
  // The 8x8 Hilbert matrix: condition number ~1.5e10; smallest eigenvalue
  // ~1.1e-10. The solver must stay positive and ordered.
  const int64_t n = 8;
  Matrix hilbert(n, n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      hilbert.At(i, j) = 1.0 / static_cast<double>(i + j + 1);
    }
  }
  auto values = SymmetricEigenvaluesQl(hilbert);
  ASSERT_TRUE(values.ok());
  EXPECT_GT(values.value().front(), 0.0);
  EXPECT_LT(values.value().front(), 1e-8);
  EXPECT_NEAR(values.value().back(), 1.6959389, 1e-6);  // Known λ_max.
  // Cholesky should also succeed on this SPD matrix.
  EXPECT_TRUE(Cholesky::Factor(hilbert).ok());
}

TEST(SymmetricEigenvaluesQlTest, ClusteredEigenvalues) {
  // diag(1, 1, 1+1e-12, 5): near-degenerate cluster.
  Matrix a(4, 4);
  a.At(0, 0) = 1.0;
  a.At(1, 1) = 1.0;
  a.At(2, 2) = 1.0 + 1e-12;
  a.At(3, 3) = 5.0;
  auto values = SymmetricEigenvaluesQl(a);
  ASSERT_TRUE(values.ok());
  EXPECT_NEAR(values.value()[0], 1.0, 1e-11);
  EXPECT_NEAR(values.value()[2], 1.0, 1e-11);
  EXPECT_NEAR(values.value()[3], 5.0, 1e-11);
}

}  // namespace
}  // namespace sose
