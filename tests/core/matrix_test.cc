#include "core/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sose {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_EQ(m.size(), 0);
}

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 4; ++j) EXPECT_EQ(m.At(i, j), 0.0);
  }
}

TEST(MatrixTest, ConstructFromValuesRowMajor) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m.At(0, 0), 1.0);
  EXPECT_EQ(m.At(0, 2), 3.0);
  EXPECT_EQ(m.At(1, 0), 4.0);
  EXPECT_EQ(m.At(1, 2), 6.0);
}

TEST(MatrixTest, Identity) {
  Matrix eye = Matrix::Identity(4);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_EQ(eye.At(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, AtIsWritable) {
  Matrix m(2, 2);
  m.At(1, 0) = 7.5;
  EXPECT_EQ(m.At(1, 0), 7.5);
}

TEST(MatrixTest, RowPointerMatchesAt) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  const double* row1 = m.Row(1);
  EXPECT_EQ(row1[0], 4.0);
  EXPECT_EQ(row1[2], 6.0);
}

TEST(MatrixTest, ColExtraction) {
  Matrix m(3, 2, {1, 2, 3, 4, 5, 6});
  std::vector<double> col = m.Col(1);
  EXPECT_EQ(col, (std::vector<double>{2, 4, 6}));
}

TEST(MatrixTest, FillAndScale) {
  Matrix m(2, 2);
  m.Fill(3.0);
  m.Scale(0.5);
  EXPECT_EQ(m.At(0, 0), 1.5);
  EXPECT_EQ(m.At(1, 1), 1.5);
}

TEST(MatrixTest, AddScaled) {
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b(2, 2, {10, 20, 30, 40});
  a.AddScaled(b, 0.1);
  EXPECT_DOUBLE_EQ(a.At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.At(1, 1), 8.0);
}

TEST(MatrixTest, Transposed) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_EQ(t.At(2, 0), 3.0);
  EXPECT_EQ(t.At(0, 1), 4.0);
}

TEST(MatrixTest, DoubleTransposeIsIdentityOp) {
  Matrix m(3, 2, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(AlmostEqual(m.Transposed().Transposed(), m, 0.0));
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix m(2, 2, {3, 0, 0, 4});
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
}

TEST(MatrixTest, MaxAbs) {
  Matrix m(2, 2, {-7, 2, 3, 4});
  EXPECT_EQ(m.MaxAbs(), 7.0);
  EXPECT_EQ(Matrix().MaxAbs(), 0.0);
}

TEST(MatrixTest, ColNormSquaredAndColDot) {
  Matrix m(3, 2, {1, 2, 0, 3, 2, 0});
  EXPECT_DOUBLE_EQ(m.ColNormSquared(0), 5.0);
  EXPECT_DOUBLE_EQ(m.ColNormSquared(1), 13.0);
  EXPECT_DOUBLE_EQ(m.ColDot(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.ColDot(1, 0), 2.0);
}

TEST(MatMulTest, KnownProduct) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  Matrix c = MatMul(a, b);
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c.cols(), 2);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 154.0);
}

TEST(MatMulTest, IdentityIsNeutral) {
  Matrix a(3, 3, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_TRUE(AlmostEqual(MatMul(Matrix::Identity(3), a), a, 1e-15));
  EXPECT_TRUE(AlmostEqual(MatMul(a, Matrix::Identity(3)), a, 1e-15));
}

TEST(MatMulTest, TransposeVariantsAgree) {
  Matrix a(4, 3, {1, 2, 0, -1, 3, 2, 0, 1, 1, 2, -2, 4});
  Matrix b(4, 2, {1, 0, 2, 1, -1, 3, 0, 2});
  // aᵀ b via the dedicated kernel vs explicit transpose.
  EXPECT_TRUE(AlmostEqual(MatMulTransposeA(a, b),
                          MatMul(a.Transposed(), b), 1e-12));
  Matrix c(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(AlmostEqual(MatMulTransposeB(a, c),
                          MatMul(a, c.Transposed()), 1e-12));
}

TEST(MatMulTest, GramIsSymmetricPsd) {
  Matrix a(4, 2, {1, 2, -1, 0, 3, 1, 0, -2});
  Matrix g = Gram(a);
  EXPECT_EQ(g.rows(), 2);
  EXPECT_EQ(g.cols(), 2);
  EXPECT_DOUBLE_EQ(g.At(0, 1), g.At(1, 0));
  EXPECT_GE(g.At(0, 0), 0.0);
  EXPECT_GE(g.At(1, 1), 0.0);
  // Diagonal entries are column norms.
  EXPECT_DOUBLE_EQ(g.At(0, 0), a.ColNormSquared(0));
}

TEST(MatVecTest, KnownProduct) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  std::vector<double> y = MatVec(a, {1, 0, -1});
  EXPECT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(MatVecTest, TransposedMatchesExplicit) {
  Matrix a(3, 2, {1, 2, 3, 4, 5, 6});
  std::vector<double> x = {1, -1, 2};
  std::vector<double> via_kernel = MatVecTransposed(a, x);
  std::vector<double> via_transpose = MatVec(a.Transposed(), x);
  ASSERT_EQ(via_kernel.size(), via_transpose.size());
  for (size_t i = 0; i < via_kernel.size(); ++i) {
    EXPECT_DOUBLE_EQ(via_kernel[i], via_transpose[i]);
  }
}

TEST(AlmostEqualTest, DetectsShapeMismatch) {
  EXPECT_FALSE(AlmostEqual(Matrix(2, 2), Matrix(2, 3), 1.0));
}

TEST(AlmostEqualTest, RespectsTolerance) {
  Matrix a(1, 1, {1.0});
  Matrix b(1, 1, {1.05});
  EXPECT_TRUE(AlmostEqual(a, b, 0.1));
  EXPECT_FALSE(AlmostEqual(a, b, 0.01));
}

TEST(MatrixToStringTest, MentionsShapeAndTruncates) {
  Matrix m(20, 20);
  const std::string repr = m.ToString(4, 4);
  EXPECT_NE(repr.find("20x20"), std::string::npos);
  EXPECT_NE(repr.find("..."), std::string::npos);
}

}  // namespace
}  // namespace sose
