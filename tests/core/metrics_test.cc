#include "core/metrics/metrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/json_io.h"

// The registry is process-global, so every test uses names scoped by the
// test's own prefix and resets the world first; values are asserted as exact
// deltas from a Reset, never as absolute history.
namespace sose {
namespace {

TEST(MetricsCounterTest, AddsAndResets) {
  metrics::ResetAll();
  metrics::Counter* c =
      metrics::MetricsRegistry::Global().GetCounter("test.counter.basic");
  c->Add(3);
  c->Add(4);
  EXPECT_EQ(c->Value(), 7);
  // Same name returns the same handle: registration is idempotent.
  EXPECT_EQ(metrics::MetricsRegistry::Global().GetCounter("test.counter.basic"),
            c);
  metrics::ResetAll();
  EXPECT_EQ(c->Value(), 0);
}

TEST(MetricsGaugeTest, LastWriteWins) {
  metrics::ResetAll();
  metrics::Gauge* g =
      metrics::MetricsRegistry::Global().GetGauge("test.gauge.basic");
  g->Set(2.5);
  g->Set(-1.0);
  EXPECT_DOUBLE_EQ(g->Value(), -1.0);
}

TEST(MetricsHistogramTest, ExactBoundaryBucketing) {
  metrics::ResetAll();
  metrics::Histogram* h = metrics::MetricsRegistry::Global().GetHistogram(
      "test.hist.buckets", {1.0, 10.0, 100.0});
  // Bucket edges are inclusive upper bounds and the comparison is exact:
  // a value equal to an edge lands in that edge's bucket, deterministically.
  h->Observe(0.5);    // bucket 0 (<= 1)
  h->Observe(1.0);    // bucket 0 (== edge, inclusive)
  h->Observe(1.0000001);  // bucket 1
  h->Observe(100.0);  // bucket 2
  h->Observe(1e9);    // overflow bucket
  const std::vector<int64_t> counts = h->BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(h->Count(), 5);
  EXPECT_DOUBLE_EQ(h->Sum(), 0.5 + 1.0 + 1.0000001 + 100.0 + 1e9);
}

TEST(MetricsHistogramTest, BoundariesFixedAtRegistration) {
  metrics::ResetAll();
  metrics::Histogram* h = metrics::MetricsRegistry::Global().GetHistogram(
      "test.hist.fixed", {1.0, 2.0});
  // A second lookup with different edges returns the original series.
  metrics::Histogram* again = metrics::MetricsRegistry::Global().GetHistogram(
      "test.hist.fixed", {5.0});
  EXPECT_EQ(again, h);
  EXPECT_EQ(again->boundaries().size(), 2u);
}

TEST(MetricsSpanTest, SpanRecordsCallsAndSeconds) {
  metrics::ResetAll();
  for (int i = 0; i < 3; ++i) {
    SOSE_SPAN("test.span.unit");
  }
#if !defined(SOSE_METRICS_DISABLED)
  metrics::Counter* calls =
      metrics::MetricsRegistry::Global().GetCounter("test.span.unit.calls");
  EXPECT_EQ(calls->Value(), 3);
  metrics::Histogram* seconds = metrics::MetricsRegistry::Global().GetHistogram(
      "test.span.unit.seconds", metrics::DefaultLatencyBoundaries());
  EXPECT_EQ(seconds->Count(), 3);
  EXPECT_GE(seconds->Sum(), 0.0);
#endif
}

TEST(MetricsMacroTest, CounterAndGaugeMacros) {
  metrics::ResetAll();
  SOSE_COUNTER_INC("test.macro.inc");
  SOSE_COUNTER_ADD("test.macro.inc", 4);
  const std::string dynamic_name = "test.macro.dynamic";
  SOSE_COUNTER_ADD_DYNAMIC(dynamic_name, 2);
  SOSE_GAUGE_SET("test.macro.gauge", 8.0);
#if !defined(SOSE_METRICS_DISABLED)
  EXPECT_EQ(metrics::MetricsRegistry::Global()
                .GetCounter("test.macro.inc")
                ->Value(),
            5);
  EXPECT_EQ(metrics::MetricsRegistry::Global()
                .GetCounter("test.macro.dynamic")
                ->Value(),
            2);
  EXPECT_DOUBLE_EQ(
      metrics::MetricsRegistry::Global().GetGauge("test.macro.gauge")->Value(),
      8.0);
#endif
}

TEST(MetricsSnapshotTest, SortedByNameAndDeterministic) {
  metrics::ResetAll();
  // Register out of order; snapshots must come back sorted so identical
  // state always serializes identically.
  metrics::MetricsRegistry::Global().GetCounter("test.snap.zz")->Add(1);
  metrics::MetricsRegistry::Global().GetCounter("test.snap.aa")->Add(2);
  const metrics::MetricsSnapshot snapshot = metrics::Snapshot();
  for (size_t i = 1; i < snapshot.counters.size(); ++i) {
    EXPECT_LT(snapshot.counters[i - 1].first, snapshot.counters[i].first);
  }
  // Two snapshots of unchanged state format to identical text.
  EXPECT_EQ(metrics::FormatText(snapshot),
            metrics::FormatText(metrics::Snapshot()));
}

TEST(MetricsFormatTest, TextLinesAndJsonNesting) {
  metrics::ResetAll();
  metrics::MetricsRegistry::Global().GetCounter("test.fmt.events")->Add(12);
  metrics::MetricsRegistry::Global().GetGauge("test.fmt.level")->Set(1.5);
  metrics::MetricsRegistry::Global()
      .GetHistogram("test.fmt.latency", {1.0})
      ->Observe(0.5);
  const metrics::MetricsSnapshot snapshot = metrics::Snapshot();
  const std::string text = metrics::FormatText(snapshot);
  EXPECT_NE(text.find("counter test.fmt.events 12"), std::string::npos);
  EXPECT_NE(text.find("gauge test.fmt.level"), std::string::npos);
  EXPECT_NE(text.find("histogram test.fmt.latency count=1"),
            std::string::npos);

  const std::string json = metrics::ToJson(snapshot).ToInlineString();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.fmt.events\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  // The block embeds cleanly as a nested object in a parent document.
  JsonObjectWriter parent;
  parent.AddObject("metrics", metrics::ToJson(snapshot));
  const std::string doc = parent.ToString();
  EXPECT_NE(doc.find("\"metrics\": {"), std::string::npos);
}

TEST(MetricsQuantileTest, InterpolatesInsideTheCrossingBucket) {
  metrics::HistogramSnapshot h;
  h.boundaries = {1.0, 2.0, 4.0};
  h.bucket_counts = {0, 10, 0, 0};  // all mass in (1, 2]
  h.count = 10;
  // rank = 5 of 10, all in bucket 1: fraction 0.5 of (1, 2] → 1.5.
  EXPECT_DOUBLE_EQ(metrics::EstimateHistogramQuantile(h, 0.5), 1.5);
  // p100 is the bucket's upper edge, p~0 approaches its lower edge.
  EXPECT_DOUBLE_EQ(metrics::EstimateHistogramQuantile(h, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(metrics::EstimateHistogramQuantile(h, 0.0), 1.0);
}

TEST(MetricsQuantileTest, FirstBucketInterpolatesFromZero) {
  metrics::HistogramSnapshot h;
  h.boundaries = {8.0, 16.0};
  h.bucket_counts = {4, 0, 0};
  h.count = 4;
  EXPECT_DOUBLE_EQ(metrics::EstimateHistogramQuantile(h, 0.5), 4.0);
}

TEST(MetricsQuantileTest, OverflowBucketClampsToTopBoundary) {
  metrics::HistogramSnapshot h;
  h.boundaries = {1.0, 2.0};
  h.bucket_counts = {1, 0, 9};  // 90% of mass beyond the last edge
  h.count = 10;
  // The estimate never invents a value beyond the instrumented range.
  EXPECT_DOUBLE_EQ(metrics::EstimateHistogramQuantile(h, 0.99), 2.0);
}

TEST(MetricsQuantileTest, EmptyHistogramAndClampedQ) {
  metrics::HistogramSnapshot empty;
  empty.boundaries = {1.0};
  empty.bucket_counts = {0, 0};
  empty.count = 0;
  EXPECT_DOUBLE_EQ(metrics::EstimateHistogramQuantile(empty, 0.5), 0.0);

  metrics::HistogramSnapshot h;
  h.boundaries = {1.0};
  h.bucket_counts = {2, 0};
  h.count = 2;
  // Out-of-range q clamps instead of reading past the buckets.
  EXPECT_DOUBLE_EQ(metrics::EstimateHistogramQuantile(h, -1.0),
                   metrics::EstimateHistogramQuantile(h, 0.0));
  EXPECT_DOUBLE_EQ(metrics::EstimateHistogramQuantile(h, 7.0),
                   metrics::EstimateHistogramQuantile(h, 1.0));
}

TEST(MetricsQuantileTest, SurfacedInTextAndJsonExports) {
  metrics::ResetAll();
  metrics::Histogram* h = metrics::MetricsRegistry::Global().GetHistogram(
      "test.quantile.latency", {1.0, 2.0});
  for (int i = 0; i < 10; ++i) h->Observe(1.5);  // all mass in (1, 2]
  const metrics::MetricsSnapshot snapshot = metrics::Snapshot();
  const std::string text = metrics::FormatText(snapshot);
  EXPECT_NE(text.find(" p50="), std::string::npos);
  EXPECT_NE(text.find(" p95="), std::string::npos);
  EXPECT_NE(text.find(" p99="), std::string::npos);
  const std::string json = metrics::ToJson(snapshot).ToInlineString();
  EXPECT_NE(json.find("\"p50\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

TEST(MetricsFormatTest, WriteTextFileRoundTrips) {
  metrics::ResetAll();
  metrics::MetricsRegistry::Global().GetCounter("test.file.events")->Add(2);
  const std::string path =
      ::testing::TempDir() + "sose_metrics_test_dump.txt";
  const metrics::MetricsSnapshot snapshot = metrics::Snapshot();
  ASSERT_TRUE(metrics::WriteTextFile(path, snapshot).ok());
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), metrics::FormatText(snapshot));
  std::remove(path.c_str());
}

#if defined(SOSE_METRICS_DISABLED)
// OFF mode: the macros compile (proven by the tests above) and record
// nothing — the registry stays empty after macro-only traffic.
TEST(MetricsDisabledTest, MacrosRecordNothing) {
  metrics::ResetAll();
  SOSE_COUNTER_INC("test.off.counter");
  SOSE_SPAN("test.off.span");
  const metrics::MetricsSnapshot snapshot = metrics::Snapshot();
  for (const auto& [name, value] : snapshot.counters) {
    EXPECT_NE(name, "test.off.counter");
    EXPECT_NE(name, "test.off.span.calls");
  }
  for (const auto& histogram : snapshot.histograms) {
    EXPECT_NE(histogram.name, "test.off.span.seconds");
  }
}
#endif

}  // namespace
}  // namespace sose
