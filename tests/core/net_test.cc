// Tests for the RAII socket layer (src/core/net) — the only sanctioned
// home for raw descriptor networking (sose_lint R3). Everything here runs
// loopback-only and single-threaded: non-blocking sockets plus PollFds let
// one thread play both peers deterministically.

#include "core/net/net.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace sose::net {
namespace {

// Unique per test case: ctest runs gtest cases as concurrent processes, so
// a shared socket path would let one test unlink another's listener.
std::string TestSocketPath() {
  return ::testing::TempDir() + "sose_net_" +
         ::testing::UnitTest::GetInstance()->current_test_info()->name() +
         ".sock";
}

// Polls `socket` until `buffer` grows by at least `min_bytes` or ~1s
// elapses; returns the observed eof flag.
bool DrainUntil(Socket* socket, std::string* buffer, size_t min_bytes) {
  const size_t start = buffer->size();
  for (int round = 0; round < 200; ++round) {
    auto chunk = socket->ReadAvailable(buffer);
    if (!chunk.ok()) return false;
    if (chunk.value().eof) return true;
    if (buffer->size() - start >= min_bytes) return false;
    auto ready = PollFds({{socket->fd(), true, false}}, 0.005);
    if (!ready.ok()) return false;
  }
  return false;
}

TEST(NetUnixTest, ListenConnectAcceptRoundTrip) {
  const std::string path = TestSocketPath();
  auto listener = Listener::ListenUnix(path);
  ASSERT_TRUE(listener.ok()) << listener.status();
  EXPECT_EQ(listener.value().unix_path(), path);
  EXPECT_EQ(listener.value().port(), 0);

  auto client = Socket::ConnectUnix(path);
  ASSERT_TRUE(client.ok()) << client.status();

  // The connection is queued; Accept picks it up without blocking.
  Socket served;
  for (int round = 0; round < 200 && !served.valid(); ++round) {
    auto accepted = listener.value().Accept();
    ASSERT_TRUE(accepted.ok()) << accepted.status();
    if (accepted.value().has_value()) {
      served = std::move(accepted.value()).value();
    } else {
      ASSERT_TRUE(
          PollFds({{listener.value().fd(), true, false}}, 0.005).ok());
    }
  }
  ASSERT_TRUE(served.valid());

  ASSERT_TRUE(client.value().WriteAll("hello,service\n", 1.0).ok());
  std::string inbound;
  DrainUntil(&served, &inbound, 14);
  EXPECT_EQ(inbound, "hello,service\n");

  ASSERT_TRUE(served.WriteAll("hello,client\n", 1.0).ok());
  std::string reply;
  ASSERT_TRUE(client.value().ReadUntilNewline(&reply, 1.0).ok());
  EXPECT_EQ(reply, "hello,client\n");
}

TEST(NetUnixTest, ConnectToMissingPathIsNotFound) {
  auto client = Socket::ConnectUnix(TestSocketPath() + ".absent");
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kNotFound);
}

TEST(NetUnixTest, DestructorUnlinksPathSoReconnectFails) {
  const std::string path = TestSocketPath();
  {
    auto listener = Listener::ListenUnix(path);
    ASSERT_TRUE(listener.ok());
  }
  // The listener is gone and so is its socket file.
  EXPECT_FALSE(Socket::ConnectUnix(path).ok());
}

TEST(NetTcpTest, EphemeralPortRoundTrip) {
  auto listener = Listener::ListenTcp(0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  EXPECT_GT(listener.value().port(), 0);

  auto client = Socket::ConnectTcp("127.0.0.1", listener.value().port());
  ASSERT_TRUE(client.ok()) << client.status();

  Socket served;
  for (int round = 0; round < 200 && !served.valid(); ++round) {
    auto accepted = listener.value().Accept();
    ASSERT_TRUE(accepted.ok());
    if (accepted.value().has_value()) {
      served = std::move(accepted.value()).value();
    } else {
      ASSERT_TRUE(
          PollFds({{listener.value().fd(), true, false}}, 0.005).ok());
    }
  }
  ASSERT_TRUE(served.valid());

  ASSERT_TRUE(client.value().WriteAll("ping\n", 1.0).ok());
  std::string inbound;
  DrainUntil(&served, &inbound, 5);
  EXPECT_EQ(inbound, "ping\n");
}

TEST(NetTcpTest, AcceptWithNothingQueuedIsNullopt) {
  auto listener = Listener::ListenTcp(0);
  ASSERT_TRUE(listener.ok());
  auto accepted = listener.value().Accept();
  ASSERT_TRUE(accepted.ok());
  EXPECT_FALSE(accepted.value().has_value());
}

TEST(NetTcpTest, PeerCloseSurfacesAsEof) {
  auto listener = Listener::ListenTcp(0);
  ASSERT_TRUE(listener.ok());
  auto client = Socket::ConnectTcp("127.0.0.1", listener.value().port());
  ASSERT_TRUE(client.ok());
  Socket served;
  for (int round = 0; round < 200 && !served.valid(); ++round) {
    auto accepted = listener.value().Accept();
    ASSERT_TRUE(accepted.ok());
    if (accepted.value().has_value()) {
      served = std::move(accepted.value()).value();
    } else {
      ASSERT_TRUE(
          PollFds({{listener.value().fd(), true, false}}, 0.005).ok());
    }
  }
  ASSERT_TRUE(served.valid());

  ASSERT_TRUE(client.value().WriteAll("bye\n", 1.0).ok());
  client.value().Close();
  EXPECT_FALSE(client.value().valid());

  std::string inbound;
  EXPECT_TRUE(DrainUntil(&served, &inbound, 1 << 20));  // reads until eof
  EXPECT_EQ(inbound, "bye\n");
}

TEST(NetSocketTest, MoveTransfersOwnership) {
  auto listener = Listener::ListenTcp(0);
  ASSERT_TRUE(listener.ok());
  auto client = Socket::ConnectTcp("127.0.0.1", listener.value().port());
  ASSERT_TRUE(client.ok());
  Socket moved = std::move(client).value();
  EXPECT_TRUE(moved.valid());
  Socket assigned;
  assigned = std::move(moved);
  EXPECT_TRUE(assigned.valid());
  EXPECT_FALSE(moved.valid());  // NOLINT(bugprone-use-after-move)
}

TEST(NetPollTest, EmptyEntriesIsBoundedSleep) {
  auto ready = PollFds({}, 0.01);
  ASSERT_TRUE(ready.ok());
  EXPECT_TRUE(ready.value().empty());
}

TEST(NetPollTest, ReportsReadabilityPerEntry) {
  auto listener = Listener::ListenTcp(0);
  ASSERT_TRUE(listener.ok());
  auto client = Socket::ConnectTcp("127.0.0.1", listener.value().port());
  ASSERT_TRUE(client.ok());
  // The pending connection makes the listener readable; the idle client
  // socket is writable but has nothing to read.
  auto ready = PollFds({{listener.value().fd(), true, false},
                        {client.value().fd(), true, true}},
                       0.5);
  ASSERT_TRUE(ready.ok());
  ASSERT_EQ(ready.value().size(), 2u);
  EXPECT_TRUE(ready.value()[0].readable);
  EXPECT_FALSE(ready.value()[1].readable);
  EXPECT_TRUE(ready.value()[1].writable);
}

}  // namespace
}  // namespace sose::net
