#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <vector>

#include "core/parallel/sharded_range.h"
#include "core/parallel/thread_pool.h"

namespace sose {
namespace {

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_GE(HardwareConcurrency(), 1);
  EXPECT_EQ(ResolveThreadCount(0), HardwareConcurrency());
  EXPECT_EQ(ResolveThreadCount(1), 1);
  EXPECT_EQ(ResolveThreadCount(7), 7);
  // Negative requests clamp to a single worker rather than misbehaving.
  EXPECT_EQ(ResolveThreadCount(-3), 1);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int64_t> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.WaitIdle();
    EXPECT_EQ(counter.load(), 100);
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int64_t> counter{0};
  {
    // One worker and many tasks: most are still queued when the pool is
    // destroyed, and the drain-on-shutdown contract must run them all.
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, WaitIdleReturnsOnEmptyPool) {
  ThreadPool pool(2);
  pool.WaitIdle();  // No tasks submitted: must not hang.
}

TEST(ShardedRangeTest, SingleShardClaimsAscending) {
  ShardedRange range(3, 9, 1);
  int64_t index = 0;
  for (int64_t expected = 3; expected < 9; ++expected) {
    ASSERT_TRUE(range.Claim(0, &index));
    EXPECT_EQ(index, expected);
  }
  EXPECT_FALSE(range.Claim(0, &index));
  EXPECT_EQ(range.Remaining(), 0);
}

TEST(ShardedRangeTest, EveryIndexClaimedExactlyOnce) {
  constexpr int kShards = 4;
  ShardedRange range(0, 103, kShards);  // Not divisible by kShards.
  std::set<int64_t> claimed;
  int64_t index = 0;
  // Drain through a single shard: stealing must reach every other shard.
  while (range.Claim(2, &index)) {
    EXPECT_TRUE(claimed.insert(index).second) << "index claimed twice";
  }
  EXPECT_EQ(claimed.size(), 103u);
  EXPECT_EQ(*claimed.begin(), 0);
  EXPECT_EQ(*claimed.rbegin(), 102);
}

TEST(ShardedRangeTest, EmptyRangeClaimsNothing) {
  ShardedRange range(5, 5, 3);
  int64_t index = 0;
  for (int s = 0; s < 3; ++s) EXPECT_FALSE(range.Claim(s, &index));
  EXPECT_EQ(range.Remaining(), 0);
}

TEST(ShardedRangeTest, MoreShardsThanIndices) {
  ShardedRange range(0, 2, 8);
  std::set<int64_t> claimed;
  int64_t index = 0;
  for (int s = 0; s < 8; ++s) {
    while (range.Claim(s, &index)) claimed.insert(index);
  }
  EXPECT_EQ(claimed, (std::set<int64_t>{0, 1}));
}

TEST(ShardedRangeTest, ConcurrentClaimsArePartition) {
  // Workers hammer the range concurrently; the union of their claims must be
  // exactly [0, kTotal) with no duplicates.
  constexpr int kWorkers = 8;
  constexpr int64_t kTotal = 5000;
  ShardedRange range(0, kTotal, kWorkers);
  // Tests of the parallel primitives themselves may hold a raw mutex to
  // collect results from workers.
  std::mutex mu;  // sose-lint: allow(concurrency)
  std::vector<int64_t> all;
  {
    ThreadPool pool(kWorkers);
    for (int w = 0; w < kWorkers; ++w) {
      pool.Submit([&, w] {
        std::vector<int64_t> mine;
        int64_t index = 0;
        while (range.Claim(w, &index)) mine.push_back(index);
        std::lock_guard<std::mutex> lock(mu);  // sose-lint: allow(concurrency)
        all.insert(all.end(), mine.begin(), mine.end());
      });
    }
  }
  ASSERT_EQ(all.size(), static_cast<size_t>(kTotal));
  std::set<int64_t> unique(all.begin(), all.end());
  EXPECT_EQ(unique.size(), static_cast<size_t>(kTotal));
}

}  // namespace
}  // namespace sose
