#include "core/poly_hash.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

namespace sose {
namespace {

TEST(MersenneFieldTest, ReduceIdentities) {
  EXPECT_EQ(MersenneField::Reduce(0), 0u);
  EXPECT_EQ(MersenneField::Reduce(MersenneField::kPrime), 0u);
  EXPECT_EQ(MersenneField::Reduce(MersenneField::kPrime + 5), 5u);
  EXPECT_EQ(MersenneField::Reduce(MersenneField::kPrime - 1),
            MersenneField::kPrime - 1);
}

TEST(MersenneFieldTest, AddMod) {
  EXPECT_EQ(MersenneField::AddMod(MersenneField::kPrime - 1, 1), 0u);
  EXPECT_EQ(MersenneField::AddMod(3, 4), 7u);
}

TEST(MersenneFieldTest, MulModAgainstSmallCases) {
  EXPECT_EQ(MersenneField::MulMod(3, 4), 12u);
  EXPECT_EQ(MersenneField::MulMod(MersenneField::kPrime - 1, 2),
            MersenneField::kPrime - 2);
  // Fermat: a^(p-1) = 1 via repeated squaring for a = 2.
  uint64_t acc = 1;
  uint64_t base = 2;
  uint64_t exponent = MersenneField::kPrime - 1;
  while (exponent > 0) {
    if (exponent & 1) acc = MersenneField::MulMod(acc, base);
    base = MersenneField::MulMod(base, base);
    exponent >>= 1;
  }
  EXPECT_EQ(acc, 1u);
}

TEST(PolyHashTest, Validation) {
  Rng rng(1);
  EXPECT_FALSE(PolyHash::Create(0, 10, &rng).ok());
  EXPECT_FALSE(PolyHash::Create(2, 0, &rng).ok());
  EXPECT_TRUE(PolyHash::Create(2, 10, &rng).ok());
}

TEST(PolyHashTest, OutputsInRange) {
  Rng rng(2);
  auto hash = PolyHash::Create(4, 17, &rng);
  ASSERT_TRUE(hash.ok());
  for (uint64_t x = 0; x < 10000; ++x) {
    EXPECT_LT(hash.value().Eval(x), 17u);
  }
}

TEST(PolyHashTest, DeterministicGivenDraw) {
  Rng rng(3);
  auto hash = PolyHash::Create(3, 100, &rng);
  ASSERT_TRUE(hash.ok());
  EXPECT_EQ(hash.value().Eval(42), hash.value().Eval(42));
}

TEST(PolyHashTest, IndependenceParameterStored) {
  Rng rng(4);
  auto hash = PolyHash::Create(5, 10, &rng);
  ASSERT_TRUE(hash.ok());
  EXPECT_EQ(hash.value().independence(), 5);
  EXPECT_EQ(hash.value().range(), 10u);
}

TEST(PolyHashTest, MarginalIsApproximatelyUniform) {
  // Over random draws of the function, each point's value is uniform.
  constexpr uint64_t kRange = 8;
  constexpr int kDraws = 8000;
  std::vector<int> counts(kRange, 0);
  Rng rng(5);
  for (int i = 0; i < kDraws; ++i) {
    auto hash = PolyHash::Create(2, kRange, &rng);
    ASSERT_TRUE(hash.ok());
    ++counts[hash.value().Eval(12345)];
  }
  for (int count : counts) {
    EXPECT_NEAR(count, kDraws / static_cast<int>(kRange), 150);
  }
}

TEST(PolyHashTest, PairwiseIndependence) {
  // For k = 2, the joint distribution of (h(x), h(y)) over function draws
  // is uniform on pairs.
  constexpr uint64_t kRange = 4;
  constexpr int kDraws = 16000;
  std::map<std::pair<uint64_t, uint64_t>, int> counts;
  Rng rng(6);
  for (int i = 0; i < kDraws; ++i) {
    auto hash = PolyHash::Create(2, kRange, &rng);
    ASSERT_TRUE(hash.ok());
    ++counts[{hash.value().Eval(7), hash.value().Eval(12345678)}];
  }
  EXPECT_EQ(counts.size(), kRange * kRange);
  for (const auto& [pair, count] : counts) {
    EXPECT_NEAR(count, kDraws / static_cast<int>(kRange * kRange), 250)
        << pair.first << "," << pair.second;
  }
}

TEST(PolyHashTest, DegreeOnePolynomialIsConstant) {
  // k = 1: h(x) = c0 for all x — the degenerate but valid base case.
  Rng rng(7);
  auto hash = PolyHash::Create(1, 1000, &rng);
  ASSERT_TRUE(hash.ok());
  const uint64_t value = hash.value().Eval(0);
  for (uint64_t x = 1; x < 100; ++x) {
    EXPECT_EQ(hash.value().Eval(x), value);
  }
}

TEST(PolyHashTest, HighIndependenceStillUniform) {
  Rng rng(8);
  auto hash = PolyHash::Create(8, 1000, &rng);
  ASSERT_TRUE(hash.ok());
  double mean = 0.0;
  constexpr int kPoints = 20000;
  for (int x = 0; x < kPoints; ++x) {
    mean += static_cast<double>(hash.value().Eval(static_cast<uint64_t>(x)));
  }
  mean /= kPoints;
  EXPECT_NEAR(mean, 499.5, 15.0);
}

}  // namespace
}  // namespace sose
