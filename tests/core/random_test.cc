#include "core/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <set>

namespace sose {
namespace {

TEST(SplitMix64Test, KnownSequenceFromZeroSeed) {
  // Reference values from the public-domain splitmix64.c with seed 0.
  SplitMix64 gen(0);
  EXPECT_EQ(gen.Next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(gen.Next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(gen.Next(), 0x06c45d188009454fULL);
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(DeriveSeedTest, Deterministic) {
  EXPECT_EQ(DeriveSeed(7, 3), DeriveSeed(7, 3));
}

TEST(DeriveSeedTest, StreamsDiffer) {
  std::set<uint64_t> seeds;
  for (uint64_t stream = 0; stream < 1000; ++stream) {
    seeds.insert(DeriveSeed(42, stream));
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(DeriveSeedTest, MasterSeedsDiffer) {
  EXPECT_NE(DeriveSeed(1, 0), DeriveSeed(2, 0));
}

TEST(Xoshiro256Test, ReproducibleAcrossInstances) {
  Xoshiro256 a(99), b(99);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Xoshiro256Test, JumpChangesStream) {
  Xoshiro256 a(5), b(5);
  b.Jump();
  bool any_diff = false;
  for (int i = 0; i < 8; ++i) any_diff |= (a.Next() != b.Next());
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformInt(uint64_t{17}), 17u);
  }
}

TEST(RngTest, UniformIntIsApproximatelyUniform) {
  Rng rng(2);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.UniformInt(uint64_t{kBuckets})];
  }
  // Each bucket expects 10000; allow 5 sigma (~475).
  for (int count : counts) {
    EXPECT_NEAR(count, kSamples / kBuckets, 500);
  }
}

TEST(RngTest, UniformIntRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng(4);
  EXPECT_EQ(rng.UniformInt(7, 7), 7);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanIsHalf) {
  Rng rng(6);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.005);
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(7);
  constexpr int kSamples = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / kSamples, 1.0, 0.02);
}

TEST(RngTest, GaussianWithParameters) {
  Rng rng(8);
  constexpr int kSamples = 100000;
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) sum += rng.Gaussian(3.0, 0.5);
  EXPECT_NEAR(sum / kSamples, 3.0, 0.01);
}

TEST(RngTest, RademacherIsPlusMinusOneAndBalanced) {
  Rng rng(9);
  constexpr int kSamples = 100000;
  int64_t total = 0;
  for (int i = 0; i < kSamples; ++i) {
    const double r = rng.Rademacher();
    ASSERT_TRUE(r == 1.0 || r == -1.0);
    total += static_cast<int64_t>(r);
  }
  EXPECT_LT(std::abs(total), 5 * static_cast<int64_t>(std::sqrt(kSamples)));
}

TEST(RngTest, BernoulliRate) {
  Rng rng(10);
  constexpr int kSamples = 100000;
  int hits = 0;
  for (int i = 0; i < kSamples; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(11);
  std::vector<int> perm = rng.Permutation(100);
  std::vector<int> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
}

TEST(RngTest, PermutationOfZeroAndOne) {
  Rng rng(12);
  EXPECT_TRUE(rng.Permutation(0).empty());
  EXPECT_EQ(rng.Permutation(1), std::vector<int>{0});
}

TEST(RngTest, PermutationIsUniformOnThreeElements) {
  Rng rng(13);
  std::map<std::vector<int>, int> counts;
  constexpr int kSamples = 60000;
  for (int i = 0; i < kSamples; ++i) ++counts[rng.Permutation(3)];
  ASSERT_EQ(counts.size(), 6u);
  for (const auto& [perm, count] : counts) {
    EXPECT_NEAR(count, kSamples / 6, 600) << "permutation bias";
  }
}

TEST(RngTest, SampleWithoutReplacementProperties) {
  Rng rng(14);
  std::vector<int64_t> sample = rng.SampleWithoutReplacement(1000, 50);
  EXPECT_EQ(sample.size(), 50u);
  std::set<int64_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 50u);
  for (int64_t v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 1000);
  }
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(15);
  std::vector<int64_t> sample = rng.SampleWithoutReplacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(sample[static_cast<size_t>(i)], i);
}

TEST(RngTest, SampleWithoutReplacementEmpty) {
  Rng rng(16);
  EXPECT_TRUE(rng.SampleWithoutReplacement(10, 0).empty());
}

TEST(RngTest, SampleWithoutReplacementIsUniform) {
  // Each element of [5] should appear in a 2-subset with probability 2/5.
  Rng rng(17);
  constexpr int kSamples = 50000;
  std::vector<int> counts(5, 0);
  for (int i = 0; i < kSamples; ++i) {
    for (int64_t v : rng.SampleWithoutReplacement(5, 2)) {
      ++counts[static_cast<size_t>(v)];
    }
  }
  for (int count : counts) {
    EXPECT_NEAR(static_cast<double>(count) / kSamples, 0.4, 0.015);
  }
}

TEST(RngTest, ShuffleKeepsMultiset) {
  Rng rng(18);
  std::vector<int> values = {1, 1, 2, 3, 5, 8, 13};
  std::vector<int> original = values;
  rng.Shuffle(&values);
  std::sort(values.begin(), values.end());
  std::sort(original.begin(), original.end());
  EXPECT_EQ(values, original);
}

}  // namespace
}  // namespace sose
