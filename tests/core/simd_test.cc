#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/random.h"
#include "core/simd/cpu_features.h"
#include "core/simd/dispatch.h"
#include "core/simd/kernels.h"
#include "core/status.h"

namespace sose::simd {
namespace {

// Every vector kernel claims bitwise identity with the scalar reference.
// These tests pin that per ISA actually runnable on the host, across
// lengths straddling every lane-width boundary (scalar tails included).

const std::vector<int64_t>& TestLengths() {
  static const std::vector<int64_t> lengths = {0,  1,  2,  3,  7,  8,   9,
                                               15, 16, 17, 31, 33, 63,  64,
                                               65, 100, 255, 256, 1000};
  return lengths;
}

std::vector<double> RandomVector(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(static_cast<size_t>(n));
  for (double& x : v) x = rng.Gaussian() * 3.0;
  return v;
}

// The ISA variants both compiled into this binary and supported by the
// executing CPU — exactly the tables the dispatcher would consider.
std::vector<const KernelTable*> RunnableVectorTables() {
  const CpuFeatures& features = DetectCpuFeatures();
  std::vector<const KernelTable*> tables;
  if (features.avx2 && Avx2Kernels() != nullptr) {
    tables.push_back(Avx2Kernels());
  }
  if (features.avx512 && Avx512Kernels() != nullptr) {
    tables.push_back(Avx512Kernels());
  }
  if (features.neon && NeonKernels() != nullptr) {
    tables.push_back(NeonKernels());
  }
  return tables;
}

TEST(SimdKernelsTest, AxpyBitwiseMatchesScalarOnEveryRunnableIsa) {
  for (const KernelTable* table : RunnableVectorTables()) {
    for (int64_t n : TestLengths()) {
      const std::vector<double> x = RandomVector(n, 101 + static_cast<uint64_t>(n));
      std::vector<double> expected = RandomVector(n, 202 + static_cast<uint64_t>(n));
      std::vector<double> actual = expected;
      ScalarKernels()->axpy(1.7, x.data(), expected.data(), n);
      table->axpy(1.7, x.data(), actual.data(), n);
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(expected[static_cast<size_t>(i)], actual[static_cast<size_t>(i)])
            << table->name << " axpy, n=" << n << ", i=" << i;
      }
    }
  }
}

TEST(SimdKernelsTest, ScaleBitwiseMatchesScalarOnEveryRunnableIsa) {
  for (const KernelTable* table : RunnableVectorTables()) {
    for (int64_t n : TestLengths()) {
      std::vector<double> expected = RandomVector(n, 303 + static_cast<uint64_t>(n));
      std::vector<double> actual = expected;
      ScalarKernels()->scale(0.3141, expected.data(), n);
      table->scale(0.3141, actual.data(), n);
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(expected[static_cast<size_t>(i)], actual[static_cast<size_t>(i)])
            << table->name << " scale, n=" << n << ", i=" << i;
      }
    }
  }
}

TEST(SimdKernelsTest, MultiplyBitwiseMatchesScalarOnEveryRunnableIsa) {
  for (const KernelTable* table : RunnableVectorTables()) {
    for (int64_t n : TestLengths()) {
      const std::vector<double> x = RandomVector(n, 404 + static_cast<uint64_t>(n));
      std::vector<double> expected = RandomVector(n, 505 + static_cast<uint64_t>(n));
      std::vector<double> actual = expected;
      ScalarKernels()->multiply(x.data(), expected.data(), n);
      table->multiply(x.data(), actual.data(), n);
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(expected[static_cast<size_t>(i)], actual[static_cast<size_t>(i)])
            << table->name << " multiply, n=" << n << ", i=" << i;
      }
    }
  }
}

TEST(SimdKernelsTest, ButterflyBitwiseMatchesScalarOnEveryRunnableIsa) {
  for (const KernelTable* table : RunnableVectorTables()) {
    for (int64_t n : TestLengths()) {
      std::vector<double> expected_lo = RandomVector(n, 606 + static_cast<uint64_t>(n));
      std::vector<double> expected_hi = RandomVector(n, 707 + static_cast<uint64_t>(n));
      std::vector<double> actual_lo = expected_lo;
      std::vector<double> actual_hi = expected_hi;
      ScalarKernels()->butterfly(expected_lo.data(), expected_hi.data(), n);
      table->butterfly(actual_lo.data(), actual_hi.data(), n);
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(expected_lo[static_cast<size_t>(i)],
                  actual_lo[static_cast<size_t>(i)])
            << table->name << " butterfly lo, n=" << n << ", i=" << i;
        ASSERT_EQ(expected_hi[static_cast<size_t>(i)],
                  actual_hi[static_cast<size_t>(i)])
            << table->name << " butterfly hi, n=" << n << ", i=" << i;
      }
    }
  }
}

TEST(SimdKernelsTest, ScalarTableIsAlwaysAvailableAndNamed) {
  ASSERT_NE(ScalarKernels(), nullptr);
  EXPECT_STREQ(ScalarKernels()->name, "scalar");
  EXPECT_NE(ScalarKernels()->axpy, nullptr);
  EXPECT_NE(ScalarKernels()->scale, nullptr);
  EXPECT_NE(ScalarKernels()->multiply, nullptr);
  EXPECT_NE(ScalarKernels()->butterfly, nullptr);
}

TEST(SimdDispatchTest, AvailableIsasEndWithScalarAndAutoPicksTheFirst) {
  const std::vector<std::string> isas = AvailableKernelIsas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.back(), "scalar");
  ASSERT_TRUE(SelectKernels("auto", KernelSelectionSource::kAuto).ok());
  EXPECT_EQ(std::string(ActiveIsaName()), isas.front());
}

TEST(SimdDispatchTest, SelectScalarAndBackToAuto) {
  ASSERT_TRUE(SelectKernels("scalar", KernelSelectionSource::kFlag).ok());
  EXPECT_STREQ(ActiveIsaName(), "scalar");
  EXPECT_EQ(ActiveSelectionSource(), KernelSelectionSource::kFlag);
  ASSERT_TRUE(SelectKernels("auto", KernelSelectionSource::kFlag).ok());
  EXPECT_EQ(ActiveSelectionSource(), KernelSelectionSource::kAuto);
  EXPECT_EQ(std::string(ActiveIsaName()), AvailableKernelIsas().front());
}

TEST(SimdDispatchTest, UnknownSpecIsInvalidArgument) {
  const Status status =
      SelectKernels("sse9000", KernelSelectionSource::kFlag);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(SimdDispatchTest, UnavailableIsaIsInvalidArgumentNotSilentFallback) {
  // Every host misses at least one of these (no CPU has both AVX-512 and
  // NEON); asking for a missing one must fail loudly.
  const std::vector<std::string> available = AvailableKernelIsas();
  for (const char* isa : {"avx2", "avx512", "neon"}) {
    bool is_available = false;
    for (const std::string& name : available) {
      if (name == isa) is_available = true;
    }
    if (is_available) continue;
    const Status status = SelectKernels(isa, KernelSelectionSource::kFlag);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << isa;
    return;  // One missing ISA suffices.
  }
  GTEST_SKIP() << "host exposes every ISA variant";
}

TEST(SimdDispatchTest, FlagSpecOverridesEnvVar) {
  ASSERT_EQ(setenv("SOSE_KERNELS", "auto", /*overwrite=*/1), 0);
  ASSERT_TRUE(SelectKernelsFromSpec("scalar").ok());
  EXPECT_STREQ(ActiveIsaName(), "scalar");
  EXPECT_EQ(ActiveSelectionSource(), KernelSelectionSource::kFlag);
  ASSERT_EQ(unsetenv("SOSE_KERNELS"), 0);
  ASSERT_TRUE(SelectKernels("auto", KernelSelectionSource::kAuto).ok());
}

TEST(SimdDispatchTest, EnvVarAppliesWhenFlagIsEmpty) {
  ASSERT_EQ(setenv("SOSE_KERNELS", "scalar", /*overwrite=*/1), 0);
  ASSERT_TRUE(SelectKernelsFromSpec("").ok());
  EXPECT_STREQ(ActiveIsaName(), "scalar");
  EXPECT_EQ(ActiveSelectionSource(), KernelSelectionSource::kEnv);
  ASSERT_EQ(unsetenv("SOSE_KERNELS"), 0);
  ASSERT_TRUE(SelectKernels("auto", KernelSelectionSource::kAuto).ok());
}

TEST(SimdDispatchTest, InvalidEnvVarIsReportedByFromSpec) {
  ASSERT_EQ(setenv("SOSE_KERNELS", "vliw", /*overwrite=*/1), 0);
  EXPECT_EQ(SelectKernelsFromSpec("").code(), StatusCode::kInvalidArgument);
  ASSERT_EQ(unsetenv("SOSE_KERNELS"), 0);
  ASSERT_TRUE(SelectKernels("auto", KernelSelectionSource::kAuto).ok());
}

TEST(SimdDispatchTest, SelectionSourceNamesAreStable) {
  EXPECT_STREQ(KernelSelectionSourceName(KernelSelectionSource::kAuto),
               "auto");
  EXPECT_STREQ(KernelSelectionSourceName(KernelSelectionSource::kEnv), "env");
  EXPECT_STREQ(KernelSelectionSourceName(KernelSelectionSource::kFlag),
               "flag");
}

TEST(SimdCpuFeaturesTest, ToStringListsDetectedFeatures) {
  CpuFeatures none;
  EXPECT_EQ(CpuFeaturesToString(none), "none");
  CpuFeatures x86;
  x86.avx2 = true;
  x86.avx512 = true;
  EXPECT_EQ(CpuFeaturesToString(x86), "avx2,avx512");
  CpuFeatures arm;
  arm.neon = true;
  EXPECT_EQ(CpuFeaturesToString(arm), "neon");
}

TEST(SimdCpuFeaturesTest, DetectionIsStableAcrossCalls) {
  const CpuFeatures& first = DetectCpuFeatures();
  const CpuFeatures& second = DetectCpuFeatures();
  EXPECT_EQ(&first, &second);
}

}  // namespace
}  // namespace sose::simd
