#include "core/sparse.h"

#include <gtest/gtest.h>

#include "core/random.h"

namespace sose {
namespace {

CooBuilder SmallBuilder() {
  // [ 1 0 2 ]
  // [ 0 3 0 ]
  // [ 4 0 5 ]
  CooBuilder builder(3, 3);
  builder.Add(0, 0, 1.0);
  builder.Add(0, 2, 2.0);
  builder.Add(1, 1, 3.0);
  builder.Add(2, 0, 4.0);
  builder.Add(2, 2, 5.0);
  return builder;
}

TEST(CooBuilderTest, TracksEntryCount) {
  CooBuilder builder = SmallBuilder();
  EXPECT_EQ(builder.num_entries(), 5);
  EXPECT_EQ(builder.rows(), 3);
  EXPECT_EQ(builder.cols(), 3);
}

TEST(CooBuilderTest, DuplicatesAreSummed) {
  CooBuilder builder(2, 2);
  builder.Add(0, 0, 1.0);
  builder.Add(0, 0, 2.5);
  CsrMatrix csr = builder.ToCsr();
  EXPECT_EQ(csr.nnz(), 1);
  EXPECT_DOUBLE_EQ(csr.ToDense().At(0, 0), 3.5);
}

TEST(CooBuilderTest, CancellingDuplicatesAreDropped) {
  CooBuilder builder(2, 2);
  builder.Add(1, 1, 2.0);
  builder.Add(1, 1, -2.0);
  EXPECT_EQ(builder.ToCsr().nnz(), 0);
  EXPECT_EQ(builder.ToCsc().nnz(), 0);
}

TEST(CsrMatrixTest, DenseRoundTrip) {
  Matrix dense = SmallBuilder().ToCsr().ToDense();
  Matrix expected(3, 3, {1, 0, 2, 0, 3, 0, 4, 0, 5});
  EXPECT_TRUE(AlmostEqual(dense, expected, 0.0));
}

TEST(CscMatrixTest, DenseRoundTrip) {
  Matrix dense = SmallBuilder().ToCsc().ToDense();
  Matrix expected(3, 3, {1, 0, 2, 0, 3, 0, 4, 0, 5});
  EXPECT_TRUE(AlmostEqual(dense, expected, 0.0));
}

TEST(CsrMatrixTest, EmptyMatrix) {
  CooBuilder builder(4, 5);
  CsrMatrix csr = builder.ToCsr();
  EXPECT_EQ(csr.nnz(), 0);
  EXPECT_EQ(csr.rows(), 4);
  EXPECT_EQ(csr.cols(), 5);
  std::vector<double> y = csr.MatVec({1, 1, 1, 1, 1});
  for (double v : y) EXPECT_EQ(v, 0.0);
}

TEST(CsrMatrixTest, MatVecMatchesDense) {
  CsrMatrix csr = SmallBuilder().ToCsr();
  const std::vector<double> x = {1, -2, 3};
  const std::vector<double> sparse_y = csr.MatVec(x);
  const std::vector<double> dense_y = MatVec(csr.ToDense(), x);
  ASSERT_EQ(sparse_y.size(), dense_y.size());
  for (size_t i = 0; i < sparse_y.size(); ++i) {
    EXPECT_DOUBLE_EQ(sparse_y[i], dense_y[i]);
  }
}

TEST(CsrMatrixTest, MatVecTransposedMatchesDense) {
  CsrMatrix csr = SmallBuilder().ToCsr();
  const std::vector<double> x = {2, 0, -1};
  const std::vector<double> sparse_y = csr.MatVecTransposed(x);
  const std::vector<double> dense_y =
      MatVecTransposed(csr.ToDense(), x);
  for (size_t i = 0; i < sparse_y.size(); ++i) {
    EXPECT_DOUBLE_EQ(sparse_y[i], dense_y[i]);
  }
}

TEST(CsrMatrixTest, MultiplyMatchesDense) {
  CsrMatrix csr = SmallBuilder().ToCsr();
  Matrix dense_rhs(3, 2, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(AlmostEqual(csr.Multiply(dense_rhs),
                          MatMul(csr.ToDense(), dense_rhs), 1e-12));
}

TEST(CscMatrixTest, MultiplyMatchesDense) {
  CscMatrix csc = SmallBuilder().ToCsc();
  Matrix dense_rhs(3, 2, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(AlmostEqual(csc.Multiply(dense_rhs),
                          MatMul(csc.ToDense(), dense_rhs), 1e-12));
}

TEST(CscMatrixTest, MatVecMatchesDense) {
  CscMatrix csc = SmallBuilder().ToCsc();
  const std::vector<double> x = {1, -2, 3};
  const std::vector<double> sparse_y = csc.MatVec(x);
  const std::vector<double> dense_y = MatVec(csc.ToDense(), x);
  for (size_t i = 0; i < sparse_y.size(); ++i) {
    EXPECT_DOUBLE_EQ(sparse_y[i], dense_y[i]);
  }
}

TEST(CscMatrixTest, ColumnQueries) {
  CscMatrix csc = SmallBuilder().ToCsc();
  EXPECT_EQ(csc.ColNnz(0), 2);
  EXPECT_EQ(csc.ColNnz(1), 1);
  EXPECT_EQ(csc.ColNnz(2), 2);
  EXPECT_DOUBLE_EQ(csc.ColNormSquared(0), 17.0);  // 1 + 16
  EXPECT_DOUBLE_EQ(csc.ColNormSquared(2), 29.0);  // 4 + 25
  EXPECT_DOUBLE_EQ(csc.ColDot(0, 2), 22.0);       // 1*2 + 4*5
  EXPECT_DOUBLE_EQ(csc.ColDot(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(csc.ColDot(1, 1), 9.0);
}

TEST(CscMatrixTest, FrobeniusNormMatchesDense) {
  CscMatrix csc = SmallBuilder().ToCsc();
  EXPECT_NEAR(csc.FrobeniusNorm(), csc.ToDense().FrobeniusNorm(), 1e-12);
  EXPECT_NEAR(SmallBuilder().ToCsr().FrobeniusNorm(),
              csc.FrobeniusNorm(), 1e-12);
}

TEST(SparseRandomizedTest, CsrCscAgreeOnRandomMatrices) {
  Rng rng(71);
  for (int round = 0; round < 10; ++round) {
    const int64_t rows = 1 + static_cast<int64_t>(rng.UniformInt(uint64_t{20}));
    const int64_t cols = 1 + static_cast<int64_t>(rng.UniformInt(uint64_t{20}));
    CooBuilder builder(rows, cols);
    const int64_t entries = static_cast<int64_t>(rng.UniformInt(uint64_t{40}));
    for (int64_t e = 0; e < entries; ++e) {
      builder.Add(static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(rows))),
                  static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(cols))),
                  rng.Gaussian());
    }
    EXPECT_TRUE(AlmostEqual(builder.ToCsr().ToDense(),
                            builder.ToCsc().ToDense(), 1e-13));
  }
}

TEST(SparseRandomizedTest, HugeRowSpaceNoAllocation) {
  // CSC over an astronomically large row space: only nonzeros stored.
  const int64_t n = int64_t{1} << 40;
  CooBuilder builder(n, 2);
  builder.Add(n - 1, 0, 1.0);
  builder.Add(12345678901LL, 1, -2.0);
  CscMatrix csc = builder.ToCsc();
  EXPECT_EQ(csc.rows(), n);
  EXPECT_EQ(csc.nnz(), 2);
  EXPECT_DOUBLE_EQ(csc.ColNormSquared(1), 4.0);
  EXPECT_DOUBLE_EQ(csc.ColDot(0, 1), 0.0);
}

}  // namespace
}  // namespace sose
