#include "core/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/random.h"

namespace sose {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0);
  EXPECT_EQ(stats.Mean(), 0.0);
  EXPECT_EQ(stats.Variance(), 0.0);
  EXPECT_EQ(stats.StdError(), 0.0);
}

TEST(RunningStatsTest, SingleObservation) {
  RunningStats stats;
  stats.Add(5.0);
  EXPECT_EQ(stats.count(), 1);
  EXPECT_EQ(stats.Mean(), 5.0);
  EXPECT_EQ(stats.Variance(), 0.0);
  EXPECT_EQ(stats.Min(), 5.0);
  EXPECT_EQ(stats.Max(), 5.0);
}

TEST(RunningStatsTest, KnownSample) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(x);
  EXPECT_DOUBLE_EQ(stats.Mean(), 5.0);
  EXPECT_NEAR(stats.Variance(), 32.0 / 7.0, 1e-12);  // Unbiased.
  EXPECT_EQ(stats.Min(), 2.0);
  EXPECT_EQ(stats.Max(), 9.0);
}

TEST(RunningStatsTest, NegativeValuesTrackMinMax) {
  RunningStats stats;
  stats.Add(-3.0);
  stats.Add(1.0);
  stats.Add(-7.0);
  EXPECT_EQ(stats.Min(), -7.0);
  EXPECT_EQ(stats.Max(), 1.0);
}

TEST(RunningStatsTest, StableUnderLargeOffset) {
  // Welford should not lose the variance under a big common offset.
  RunningStats stats;
  const double offset = 1e12;
  for (double x : {1.0, 2.0, 3.0}) stats.Add(offset + x);
  EXPECT_NEAR(stats.Variance(), 1.0, 1e-3);
}

TEST(WilsonIntervalTest, ZeroTrials) {
  ConfidenceInterval ci = WilsonInterval(0, 0);
  EXPECT_EQ(ci.lo, 0.0);
  EXPECT_EQ(ci.hi, 1.0);
}

TEST(WilsonIntervalTest, ContainsPointEstimate) {
  ConfidenceInterval ci = WilsonInterval(30, 100);
  EXPECT_LE(ci.lo, 0.3);
  EXPECT_GE(ci.hi, 0.3);
  EXPECT_GE(ci.lo, 0.0);
  EXPECT_LE(ci.hi, 1.0);
}

TEST(WilsonIntervalTest, ZeroSuccessesHasPositiveUpperBound) {
  ConfidenceInterval ci = WilsonInterval(0, 100);
  EXPECT_EQ(ci.lo, 0.0);
  EXPECT_GT(ci.hi, 0.0);
  EXPECT_LT(ci.hi, 0.1);
}

TEST(WilsonIntervalTest, AllSuccesses) {
  ConfidenceInterval ci = WilsonInterval(100, 100);
  EXPECT_GT(ci.lo, 0.9);
  // The Wilson upper bound at p̂ = 1 is fractionally below 1.
  EXPECT_GT(ci.hi, 0.999);
  EXPECT_LE(ci.hi, 1.0);
}

TEST(WilsonIntervalTest, ShrinksWithMoreTrials) {
  ConfidenceInterval small = WilsonInterval(5, 10);
  ConfidenceInterval large = WilsonInterval(500, 1000);
  EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
}

TEST(WilsonIntervalTest, CoversTrueRate) {
  // Frequentist sanity: the 95% interval should cover p = 0.2 nearly always
  // over repeated simulations.
  Rng rng(31);
  int covered = 0;
  constexpr int kRounds = 300;
  for (int round = 0; round < kRounds; ++round) {
    int successes = 0;
    constexpr int kTrials = 150;
    for (int t = 0; t < kTrials; ++t) successes += rng.Bernoulli(0.2) ? 1 : 0;
    ConfidenceInterval ci = WilsonInterval(successes, kTrials);
    if (ci.lo <= 0.2 && 0.2 <= ci.hi) ++covered;
  }
  EXPECT_GE(covered, kRounds * 90 / 100);
}

TEST(QuantileTest, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(Quantile({3, 1, 2}, 0.5), 2.0);
}

TEST(QuantileTest, Extremes) {
  std::vector<double> data = {5, 1, 9, 3};
  EXPECT_DOUBLE_EQ(Quantile(data, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(data, 1.0), 9.0);
}

TEST(QuantileTest, LinearInterpolation) {
  // Sorted: 0, 10. q=0.25 -> 2.5.
  EXPECT_DOUBLE_EQ(Quantile({10, 0}, 0.25), 2.5);
}

TEST(QuantileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(Quantile({7.0}, 0.3), 7.0);
}

TEST(FitLineTest, ExactLine) {
  LinearFit fit = FitLine({1, 2, 3, 4}, {3, 5, 7, 9});  // y = 2x + 1.
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLineTest, NoisyLineHasHighR2) {
  Rng rng(32);
  std::vector<double> x, y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i - 2.0 + 0.1 * rng.Gaussian());
  }
  LinearFit fit = FitLine(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 0.01);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(FitLineTest, FlatData) {
  LinearFit fit = FitLine({1, 2, 3}, {5, 5, 5});
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 5.0, 1e-12);
}

TEST(FitPowerLawTest, RecoversExponent) {
  // y = 4 x^2.
  std::vector<double> x = {1, 2, 4, 8, 16};
  std::vector<double> y;
  for (double v : x) y.push_back(4.0 * v * v);
  LinearFit fit = FitPowerLaw(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-10);
  EXPECT_NEAR(std::exp(fit.intercept), 4.0, 1e-8);
}

TEST(FitPowerLawTest, InverseLaw) {
  std::vector<double> x = {1, 2, 4, 8};
  std::vector<double> y;
  for (double v : x) y.push_back(10.0 / v);
  EXPECT_NEAR(FitPowerLaw(x, y).slope, -1.0, 1e-10);
}

TEST(BinomialUpperTailTest, DegenerateCases) {
  EXPECT_DOUBLE_EQ(BinomialUpperTail(10, 0.5, 0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialUpperTail(10, 0.5, 11), 0.0);
}

TEST(BinomialUpperTailTest, SymmetricAtHalf) {
  // Pr[Bin(9, 1/2) >= 5] = 1/2 by symmetry (odd n).
  EXPECT_NEAR(BinomialUpperTail(9, 0.5, 5), 0.5, 1e-10);
}

TEST(BinomialUpperTailTest, MatchesDirectComputation) {
  // Pr[Bin(4, 0.3) >= 3] = C(4,3)(.3)^3(.7) + (.3)^4.
  const double expected = 4 * 0.027 * 0.7 + 0.0081;
  EXPECT_NEAR(BinomialUpperTail(4, 0.3, 3), expected, 1e-12);
}

TEST(BinomialUpperTailTest, ExtremeProbabilities) {
  EXPECT_NEAR(BinomialUpperTail(5, 0.0, 1), 0.0, 1e-12);
  EXPECT_NEAR(BinomialUpperTail(5, 1.0, 5), 1.0, 1e-12);
}

}  // namespace
}  // namespace sose
