#include "core/status.h"

#include <gtest/gtest.h>

#include <sstream>

namespace sose {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.message(), "");
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad shape");
  EXPECT_EQ(status.ToString(), "invalid-argument: bad shape");
}

TEST(StatusTest, AllErrorFactories) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::NumericalError("x").code(), StatusCode::kNumericalError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CopyPreservesState) {
  Status original = Status::NotFound("missing");
  Status copy = original;
  EXPECT_EQ(copy.code(), StatusCode::kNotFound);
  EXPECT_EQ(copy.message(), "missing");
  // The original is unaffected.
  EXPECT_EQ(original.message(), "missing");
}

TEST(StatusTest, CopyAssignOverwrites) {
  Status status = Status::NotFound("missing");
  status = Status::OK();
  EXPECT_TRUE(status.ok());
  status = Status::Internal("oops");
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST(StatusTest, MovePreservesState) {
  Status original = Status::NumericalError("singular");
  Status moved = std::move(original);
  EXPECT_EQ(moved.code(), StatusCode::kNumericalError);
  EXPECT_EQ(moved.message(), "singular");
}

TEST(StatusTest, SelfAssignmentIsSafe) {
  Status status = Status::Internal("x");
  Status& alias = status;
  status = alias;
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(status.message(), "x");
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream out;
  out << Status::OutOfRange("idx");
  EXPECT_EQ(out.str(), "out-of-range: idx");
}

TEST(StatusCodeToStringTest, CoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "invalid-argument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNumericalError),
               "numerical-error");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::InvalidArgument("nope"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  std::string value = std::move(result).value();
  EXPECT_EQ(value, "payload");
}

TEST(ResultTest, MutableValueAccess) {
  Result<std::vector<int>> result(std::vector<int>{1, 2});
  result.value().push_back(3);
  EXPECT_EQ(result.value().size(), 3u);
}

namespace helpers {

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UsePositive(int x, int* out) {
  SOSE_ASSIGN_OR_RETURN(int value, ParsePositive(x));
  *out = value * 2;
  return Status::OK();
}

Status Chained(int x) {
  int unused = 0;
  SOSE_RETURN_IF_ERROR(UsePositive(x, &unused));
  return Status::OK();
}

}  // namespace helpers

TEST(ResultMacrosTest, AssignOrReturnSuccess) {
  int out = 0;
  ASSERT_TRUE(helpers::UsePositive(21, &out).ok());
  EXPECT_EQ(out, 42);
}

TEST(ResultMacrosTest, AssignOrReturnPropagatesError) {
  int out = 0;
  Status status = helpers::UsePositive(-1, &out);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(out, 0);
}

TEST(ResultMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(helpers::Chained(5).ok());
  EXPECT_FALSE(helpers::Chained(0).ok());
}

}  // namespace
}  // namespace sose
